// Command errprofile characterizes a chip's correctable-error profile
// from its machine-check logs, the way the paper's firmware hooks did
// (§IV-A4): run a workload at a chosen voltage offset for a while, then
// reconstruct which cache lines reported errors, how often, and confirm
// that the same few lines dominate — the determinism the speculation
// design rests on.
//
// Usage:
//
//	errprofile [-seed N] [-offset mV] [-seconds S] [-top K] [-full]
package main

import (
	"flag"
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "chip seed")
	offsetMV := flag.Float64("offset", 150, "voltage offset below nominal, in mV")
	seconds := flag.Float64("seconds", 2.0, "simulated run time")
	top := flag.Int("top", 12, "show the K most active lines")
	full := flag.Bool("full", false, "full Table I cache geometry")
	flag.Parse()

	c := chip.New(chip.DefaultParams(*seed, true, *full))
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), *seed)
	}
	v := c.P.Point.NominalVdd - *offsetMV/1000
	for _, d := range c.Domains {
		d.Rail.SetTarget(v)
	}

	ticks := int(*seconds / c.P.TickSeconds)
	engine.Ticks(c, nil, ticks, func(_ int, _ chip.TickReport, _ []control.Action) bool {
		for _, co := range c.Cores {
			if !co.Alive() {
				co.Revive() // keep characterizing, as a reboot loop would
			}
		}
		return true
	})

	reported, suppressed := c.MCA.Counts()
	fmt.Printf("chip seed %d at %.0f mV below nominal for %.1f s\n", *seed, *offsetMV, *seconds)
	fmt.Printf("%d reports logged, %d raw events folded by CMCI throttling\n\n",
		reported, suppressed)

	prof := c.MCA.Profile()
	if len(prof) == 0 {
		fmt.Println("no correctable errors at this offset — try a larger -offset")
		return
	}
	fmt.Printf("%-6s %-8s %-5s %-4s %-8s %-7s\n", "core", "bank", "set", "way", "reports", "events")
	shown := *top
	if shown > len(prof) {
		shown = len(prof)
	}
	for _, pe := range prof[:shown] {
		fmt.Printf("core%-2d %-8s %-5d %-4d %-8d %-7d\n",
			pe.Core, pe.Bank, pe.Set, pe.Way, pe.Events, pe.Total)
	}
	if len(prof) > shown {
		fmt.Printf("... and %d more lines\n", len(prof)-shown)
	}
	fmt.Printf("\ndistinct lines reporting: %d (out of %d L2 lines per core)\n",
		len(prof), c.P.Hier.L2D.Sets*c.P.Hier.L2D.Ways+c.P.Hier.L2I.Sets*c.P.Hier.L2I.Ways)
}
