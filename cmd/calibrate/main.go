// Command calibrate runs the boot-time calibration procedure (§III-C) on
// a simulated chip and dumps the resulting weak-line map: for every
// voltage domain, the cache line whose ECC monitor will guide
// speculation, with its onset voltage and how it compares to the
// domain's crash-relevant floors.
//
// Usage:
//
//	calibrate [-seed N] [-full] [-high] [-aged hours]
package main

import (
	"flag"
	"fmt"
	"os"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "chip seed")
	full := flag.Bool("full", false, "full Table I cache geometry")
	high := flag.Bool("high", false, "use the 2.53 GHz / 1.1 V operating point")
	aged := flag.Float64("aged", 0, "pre-age the SRAM arrays by this many hours")
	flag.Parse()

	c := chip.New(chip.DefaultParams(*seed, !*high, *full))
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), *seed)
		if *aged > 0 {
			co.Hier.L2D.Array().SetAge(*aged)
			co.Hier.L2I.Array().SetAge(*aged)
			co.InvalidateSensitivity()
		}
	}
	ctl := control.New(c, control.DefaultConfig())
	assigns, err := ctl.Calibrate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	fmt.Printf("chip seed %d, %s point, %d domains", *seed, c.P.Point.Name, len(c.Domains))
	if *aged > 0 {
		fmt.Printf(", aged %.0f h", *aged)
	}
	fmt.Println()
	fmt.Println()
	for _, a := range assigns {
		co := c.Cores[a.Core]
		arr := co.CacheOf(a.Kind).Array()
		p := arr.LineProfile(a.Set, a.Way)
		fmt.Printf("%s\n", a)
		fmt.Printf("  weakest cell Vcrit %.3f V, double-bit point %.3f V, logic floor %.3f V\n",
			p.Vmax(), p.PairVcrit(), co.LogicVmin())
		fmt.Printf("  speculation margin below onset: %.0f mV\n\n",
			1000*(a.OnsetV-maxf(p.PairVcrit(), co.LogicVmin())))
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
