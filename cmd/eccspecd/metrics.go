package main

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's monotonic counters. Queue-state gauges
// are read off the job table at scrape time; only the counters that
// must survive job deletion live here.
type metrics struct {
	start          time.Time
	jobsSubmitted  atomic.Int64
	jobsDone       atomic.Int64
	jobsFailed     atomic.Int64
	jobsEvicted    atomic.Int64
	jobsShed       atomic.Int64
	jobsCanceled   atomic.Int64
	rateLimited    atomic.Int64
	notModified    atomic.Int64
	resultEncodes  atomic.Int64
	chipsSimulated atomic.Int64
	chipsFailed    atomic.Int64
	simTicks       atomic.Int64
	// Adaptive-fidelity telemetry, accumulated from each finished chip's
	// counters (full-fidelity chips contribute zeros).
	fidelityFFTicks   atomic.Int64
	fidelityDropbacks atomic.Int64
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

// clusterScrape is the coordinator's scheduling state sampled at scrape
// time; nil when the daemon is not a coordinator.
type clusterScrape struct {
	workersHealthy     int
	workersDegraded    int
	workersQuarantined int
	workersDead        int
	dispatches         int64
	chipsDone          int64
	remoteTicks        int64
	chipsStolen        int64
	chipsMigrated      int64
	retries            int64
	streamsStalled     int64
	dupEvents          int64
	quarantines        int64
}

// scrape carries the state sampled off the live server at scrape time,
// as opposed to the monotonic counters the metrics struct owns.
type scrape struct {
	queued, running      int
	queueDepth, queueCap int
	degraded             bool
	storeRetries         int64
	cluster              *clusterScrape
}

// write renders the Prometheus text exposition format (version 0.0.4).
// sc holds the gauges sampled at scrape time: job-table counts, the
// admission queue's depth/capacity, journal health, and (on a
// coordinator) the cluster section.
func (m *metrics) write(w io.Writer, sc scrape) {
	queued, running := sc.queued, sc.running
	degraded, storeRetries, cl := sc.degraded, sc.storeRetries, sc.cluster
	up := time.Since(m.start).Seconds()
	ticks := m.simTicks.Load()
	rate := 0.0
	if up > 0 {
		rate = float64(ticks) / up
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("eccspecd_jobs_queued", "Fleet jobs waiting for the runner.", float64(queued))
	gauge("eccspecd_jobs_running", "Fleet jobs currently simulating.", float64(running))
	gauge("eccspecd_queue_depth", "Jobs currently held in the bounded admission queue.", float64(sc.queueDepth))
	gauge("eccspecd_queue_capacity", "Admission queue bound; submissions past it are shed with 429.", float64(sc.queueCap))
	counter("eccspecd_jobs_submitted_total", "Fleet jobs accepted since start.", m.jobsSubmitted.Load())
	counter("eccspecd_jobs_done_total", "Fleet jobs completed successfully.", m.jobsDone.Load())
	counter("eccspecd_jobs_failed_total", "Fleet jobs that failed or were cancelled.", m.jobsFailed.Load())
	counter("eccspecd_jobs_evicted_total", "Completed fleet jobs evicted by the retention policy.", m.jobsEvicted.Load())
	counter("eccspecd_jobs_shed_total", "Submissions refused with 429 because the admission queue was full.", m.jobsShed.Load())
	counter("eccspecd_jobs_canceled_total", "Jobs canceled by client DELETE.", m.jobsCanceled.Load())
	counter("eccspecd_rate_limited_total", "Requests refused with 429 by the per-client rate limit.", m.rateLimited.Load())
	counter("eccspecd_http_not_modified_total", "Conditional GETs answered 304 without re-serializing results.", m.notModified.Load())
	counter("eccspecd_result_encodes_total", "Full serializations of a /results response body.", m.resultEncodes.Load())
	counter("eccspecd_chips_simulated_total", "Chip simulations completed.", m.chipsSimulated.Load())
	counter("eccspecd_chips_failed_total", "Chip simulations that ended in an error (including recovered worker panics).", m.chipsFailed.Load())
	counter("eccspecd_store_retries_total", "Journal commit points that needed the bounded-retry path.", storeRetries)
	degradedV := 0.0
	if degraded {
		degradedV = 1
	}
	gauge("eccspecd_degraded", "1 while the journal is unwritable and new fleets get 503s.", degradedV)
	counter("eccspecd_sim_ticks_total", "Control ticks simulated across all fleets.", ticks)
	counter("eccspecd_fidelity_fastforward_ticks_total", "Control ticks simulated in adaptive fast-forward mode.", m.fidelityFFTicks.Load())
	counter("eccspecd_fidelity_dropback_total", "Adaptive-fidelity drop-backs to full event sampling.", m.fidelityDropbacks.Load())
	gauge("eccspecd_sim_ticks_per_second", "Lifetime average simulation throughput.", rate)
	gauge("eccspecd_uptime_seconds", "Seconds since the daemon started.", up)
	if cl != nil {
		gauge("eccspecd_cluster_workers_healthy", "Registered workers accepting work.", float64(cl.workersHealthy))
		gauge("eccspecd_cluster_workers_degraded", "Registered workers reporting degraded; no new work.", float64(cl.workersDegraded))
		gauge("eccspecd_cluster_workers_quarantined", "Workers tripped by the dispatch circuit breaker, awaiting a half-open probe.", float64(cl.workersQuarantined))
		gauge("eccspecd_cluster_workers_dead", "Registered workers past the heartbeat TTL or failed mid-batch.", float64(cl.workersDead))
		counter("eccspecd_cluster_dispatches_total", "Chip batches dispatched to workers.", cl.dispatches)
		counter("eccspecd_cluster_chips_done_total", "Chips completed on remote workers.", cl.chipsDone)
		counter("eccspecd_cluster_remote_ticks_total", "Control ticks simulated on remote workers.", cl.remoteTicks)
		counter("eccspecd_cluster_chips_stolen_total", "Chips moved from a loaded worker's queue to an idle one.", cl.chipsStolen)
		counter("eccspecd_cluster_chips_migrated_total", "In-flight chips re-queued off a dead, degraded, or failed-dispatch worker.", cl.chipsMigrated)
		counter("eccspecd_cluster_dispatch_retries_total", "Dispatch re-attempts scheduled by the backoff loop after a failure.", cl.retries)
		counter("eccspecd_cluster_streams_stalled_total", "Exec streams the stall watchdog canceled for silence.", cl.streamsStalled)
		counter("eccspecd_cluster_dup_events_total", "Stream events dropped by sequence-number dedupe.", cl.dupEvents)
		counter("eccspecd_cluster_quarantines_total", "Workers quarantined by the dispatch circuit breaker since start.", cl.quarantines)
	}
}
