package main

// Cluster acceptance tests: real coordinator and worker daemons as
// subprocesses, a worker SIGKILLed mid-job, and the merged results
// byte-compared against an uninterrupted single-node daemon. Also the
// home of the cluster bench harness: set ECCSPEC_BENCH_OUT to a path
// and the kill test writes a BENCH_cluster.json snapshot of cluster
// throughput.
//
// These tests ride the same re-exec trick as persist_test.go: the test
// binary doubles as eccspecd via ECCSPECD_MAIN=1.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"eccspec/internal/store"
)

const clusterFleetBody = `{"seeds":[81,82,83,84,85,86],"workload":"jbb-8wh","seconds":0.06,"trace_every":10}`

// waitClusterHealthy polls the coordinator's members endpoint until n
// workers report healthy.
func waitClusterHealthy(t *testing.T, coord *daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		code, body := coord.get(t, "/v1/cluster/members")
		if code == http.StatusOK {
			var out struct {
				Workers []struct {
					State string `json:"state"`
				} `json:"workers"`
			}
			if json.Unmarshal(body, &out) == nil {
				healthy := 0
				for _, w := range out.Workers {
					if w.State == "healthy" {
						healthy++
					}
				}
				if healthy >= n {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%d workers never turned healthy", n)
}

// placementWorkers fetches the seed->worker map of a job and returns
// the distinct workers holding seeds.
func placementWorkers(t *testing.T, coord *daemon, id string) map[string]int {
	t.Helper()
	code, body := coord.get(t, "/v1/cluster/jobs/"+id+"/placement")
	if code != http.StatusOK {
		return nil
	}
	var out struct {
		Placement map[string]string `json:"placement"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("placement decode: %v", err)
	}
	got := map[string]int{}
	for _, w := range out.Placement {
		got[w]++
	}
	return got
}

// metricValue scrapes one sample from a Prometheus text page.
func metricValue(t *testing.T, page []byte, name string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(string(page), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, rest, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestClusterWorkerKillByteIdenticalResults is the tentpole acceptance
// test: a coordinator with two worker daemons runs a fleet; one worker
// is SIGKILLed while it provably holds checkpointed, unfinished chips;
// the survivor absorbs the migrated chips; and the merged results and
// trace are byte-identical to a single-node daemon's uninterrupted run.
func TestClusterWorkerKillByteIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}

	// Reference output: one plain daemon, no cluster anywhere.
	single := startDaemon(t, "-workers 2")
	code, sub := single.post(t, "/v1/fleets", clusterFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("single-node submit: HTTP %d: %v", code, sub)
	}
	id := sub["id"].(string)
	if st := single.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("single-node run finished as %v", st["status"])
	}
	code, wantResults := single.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("single-node results: HTTP %d", code)
	}
	code, wantTrace := single.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("single-node trace: HTTP %d", code)
	}
	single.sigkill(t)

	// Cluster topology: coordinator (journaling) + two workers.
	dir := t.TempDir()
	coord := startDaemon(t, "-coordinator -data-dir "+dir+" -checkpoint-interval 20 -worker-ttl 2s")
	joinArgs := fmt.Sprintf("-join http://%s -workers 2 -heartbeat 100ms", coord.addr)
	w1 := startDaemon(t, joinArgs+" -worker-id w1")
	startDaemon(t, joinArgs+" -worker-id w2")
	waitClusterHealthy(t, coord, 2)

	start := time.Now()
	code, sub = coord.post(t, "/v1/fleets", clusterFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("cluster submit: HTTP %d: %v", code, sub)
	}
	if cid := sub["id"].(string); cid != id {
		t.Fatalf("cluster job id %s, single-node %s", cid, id)
	}

	// Kill w1 only once the kill provably interrupts real work: the
	// coordinator journal holds a checkpoint (so migration resumes
	// mid-chip, not from scratch) and the placement shows both workers
	// assigned. If the fleet finishes first the scenario proved
	// nothing — fail loudly.
	journal := filepath.Join(dir, store.JournalName)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("kill window never arrived (no checkpoint + dual placement)")
		}
		data, err := os.ReadFile(journal)
		if err == nil && strings.Contains(string(data), `"t":"done"`) {
			t.Fatal("fleet finished before the kill; lower seconds or the checkpoint interval")
		}
		if err == nil && strings.Contains(string(data), `"t":"ckpt"`) {
			placed := placementWorkers(t, coord, id)
			if placed["w1"] > 0 && placed["w2"] > 0 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	w1.sigkill(t)

	if st := coord.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("cluster run finished as %v", st["status"])
	}
	elapsed := time.Since(start)

	code, gotResults := coord.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("cluster results: HTTP %d", code)
	}
	if string(gotResults) != string(wantResults) {
		t.Fatalf("cluster results differ from single-node run:\nsingle:\n%s\ncluster:\n%s", wantResults, gotResults)
	}
	code, gotTrace := coord.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("cluster trace: HTTP %d", code)
	}
	if string(gotTrace) != string(wantTrace) {
		t.Fatalf("cluster trace differs from single-node run")
	}

	// The scheduler must have actually migrated chips off the corpse.
	code, page := coord.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	migrated, ok := metricValue(t, page, "eccspecd_cluster_chips_migrated_total")
	if !ok || migrated < 1 {
		t.Errorf("eccspecd_cluster_chips_migrated_total = %v (present=%v), want >= 1", migrated, ok)
	}
	remoteChips, ok := metricValue(t, page, "eccspecd_cluster_chips_done_total")
	if !ok || remoteChips != 6 {
		t.Errorf("eccspecd_cluster_chips_done_total = %v, want 6", remoteChips)
	}
	// A mid-stream failure quarantines the worker first; "dead" is the
	// TTL's verdict, so give the 2s TTL room to pass before asserting.
	deadBy := time.Now().Add(10 * time.Second)
	for {
		if dead, ok := metricValue(t, page, "eccspecd_cluster_workers_dead"); ok && dead >= 1 {
			break
		}
		if time.Now().After(deadBy) {
			dead, _ := metricValue(t, page, "eccspecd_cluster_workers_dead")
			t.Errorf("eccspecd_cluster_workers_dead = %v, want >= 1", dead)
			break
		}
		time.Sleep(100 * time.Millisecond)
		if code, page = coord.get(t, "/metrics"); code != http.StatusOK {
			t.Fatalf("metrics: HTTP %d", code)
		}
	}

	// Satellite check: healthz reports the cluster role and membership.
	code, body := coord.get(t, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["role"] != "coordinator" {
		t.Errorf("coordinator healthz role = %v", hz["role"])
	}
	cl, _ := hz["cluster"].(map[string]any)
	if cl == nil || cl["workers_total"].(float64) != 2 {
		t.Errorf("coordinator healthz cluster block = %v", hz["cluster"])
	}

	// Placement survives job completion (journaled assignments), and
	// every seed has a home.
	placed := placementWorkers(t, coord, id)
	if placed["w1"]+placed["w2"] != 6 {
		t.Errorf("placement after completion covers %v, want all 6 seeds", placed)
	}

	remoteTicks, _ := metricValue(t, page, "eccspecd_cluster_remote_ticks_total")
	writeClusterBench(t, elapsed, remoteTicks, int(remoteChips), int(migrated))
}

// writeClusterBench records cluster throughput to ECCSPEC_BENCH_OUT
// (no-op when unset) — the `make cluster-smoke` harness.
func writeClusterBench(t *testing.T, elapsed time.Duration, ticks float64, chips, migrated int) {
	t.Helper()
	out := os.Getenv("ECCSPEC_BENCH_OUT")
	if out == "" {
		return
	}
	blob, err := json.MarshalIndent(map[string]any{
		"bench":          "cluster",
		"topology":       "1 coordinator + 2 workers (one SIGKILLed mid-job), localhost",
		"chips":          chips,
		"elapsed_s":      elapsed.Seconds(),
		"ticks_per_sec":  ticks / elapsed.Seconds(),
		"chips_per_min":  float64(chips) / elapsed.Minutes(),
		"chips_migrated": migrated,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestWorkerHealthzReportsCoordinator checks a worker daemon's healthz
// names its role and coordinator.
func TestWorkerHealthzReportsCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	coord := startDaemon(t, "-coordinator")
	w := startDaemon(t, fmt.Sprintf("-join http://%s -worker-id wz -heartbeat 100ms", coord.addr))
	waitClusterHealthy(t, coord, 1)
	code, body := w.get(t, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["role"] != "worker" || hz["coordinator"] != "http://"+coord.addr {
		t.Errorf("worker healthz = %v", hz)
	}
}

// TestHealthzDegradedReason checks the enriched healthz surfaces the
// degraded cause and clears it on recovery.
func TestHealthzDegradedReason(t *testing.T) {
	s, ts := newTestServer(t)
	s.noteStore(errors.New("disk on fire"))
	code, h := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h["status"] != "degraded" || h["degraded"] != true {
		t.Fatalf("healthz while degraded = %v", h)
	}
	reason, _ := h["degraded_reason"].(string)
	if !strings.Contains(reason, "disk on fire") {
		t.Fatalf("degraded_reason = %q", reason)
	}
	s.noteStore(nil)
	_, h = getJSON(t, ts.URL+"/healthz")
	if h["status"] != "ok" {
		t.Fatalf("healthz after recovery = %v", h)
	}
	if _, present := h["degraded_reason"]; present {
		t.Fatalf("degraded_reason survived recovery: %v", h)
	}
}
