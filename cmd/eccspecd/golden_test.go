package main

// Golden /v1/fleets responses. The files were captured before the
// control loop was refactored onto the speculation-policy registry
// (internal/policy): a default-policy fleet must keep serving /results
// and /trace byte-for-byte as it did pre-refactor. The results JSON is
// compared after stripping the wall-clock status line; the trace CSV is
// compared raw.
//
// Regenerate deliberately with:
//
//	go test ./cmd/eccspecd -run TestGoldenFleetEndpoints -update-golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden fleet endpoint captures from the current code")

// goldenFleetBody is the pinned submission: two specimens, a short
// closed-loop run, sparse tracing. Small enough to simulate in seconds,
// rich enough that every per-chip field and the trace CSV have content.
const goldenFleetBody = `{"seeds":[1,2],"workload":"mcf","seconds":0.05,"trace_every":10}`

// canonicalResults strips the fields that carry no simulation output:
// the daemon's own status string, and the policy echo the response
// gained after the goldens were captured (default-policy metadata, not
// simulated bytes).
func canonicalResults(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("results JSON: %v", err)
	}
	delete(m, "status")
	delete(m, "policy")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestGoldenFleetEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	code, st := postFleet(t, ts, goldenFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, st)
	}
	id := st["id"].(string)
	waitDone(t, ts, id)

	fetch := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	results := canonicalResults(t, fetch("/v1/fleets/"+id+"/results"))
	trace := fetch("/v1/fleets/" + id + "/trace")

	check := func(name string, got []byte) {
		path := filepath.Join("testdata", "golden", name)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update-golden): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverged from the pre-policy-refactor golden\n--- got ---\n%s\n--- want ---\n%s",
				name, got, want)
		}
	}
	check("results.json", results)
	check("trace.csv", trace)
}
