package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// postRaw submits a fleet and returns the full response (the degraded
// tests need headers, not just the decoded body).
func postRaw(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/fleets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestChaosDegradedModeRoundTrip drives the daemon through a journal
// outage in-process: writes start failing, a submission gets 503 +
// Retry-After and flips the daemon degraded (healthz + metrics agree,
// recorded results stay served), then the disk heals and the next
// submission both clears the flag and is accepted.
func TestChaosDegradedModeRoundTrip(t *testing.T) {
	var failing atomic.Bool
	st, err := store.Open(t.TempDir(), store.Options{
		WriteHook: func(op string) error {
			if failing.Load() {
				return errors.New("injected journal outage")
			}
			return nil
		},
		Retry: store.RetryPolicy{MaxAttempts: 2},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := newServer(fleet.New(fleet.Config{Workers: 2}), serverConfig{queueDepth: 4, store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Healthy: a fleet runs to completion and is recorded.
	resp, sub := postRaw(t, ts.URL, `{"seeds":[91],"seconds":0.02}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy submit: HTTP %d: %v", resp.StatusCode, sub)
	}
	id := sub["id"].(string)
	if st := waitDone(t, ts, id); st["status"] != statusDone {
		t.Fatalf("healthy fleet finished as %v", st["status"])
	}

	// Outage: the journal refuses every write.
	failing.Store(true)
	resp, body := postRaw(t, ts.URL, `{"seeds":[92],"seconds":0.02}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit: HTTP %d: %v, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	if code, h := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK || h["status"] != "degraded" || h["degraded"] != true {
		t.Fatalf("healthz while degraded: %d %v", code, h)
	}
	if m := metricsText(t, ts.URL); !strings.Contains(m, "eccspecd_degraded 1") {
		t.Fatalf("metrics do not report degraded:\n%s", m)
	}
	// Recorded results stay available throughout the outage.
	if code, res := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results"); code != http.StatusOK || res["failed"] != float64(0) {
		t.Fatalf("results during outage: HTTP %d: %v", code, res)
	}
	// The failed submission must leave no phantom job behind.
	if code, list := getJSON(t, ts.URL+"/v1/fleets"); code != http.StatusOK {
		t.Fatalf("list during outage: HTTP %d", code)
	} else if fleets, _ := list["fleets"].([]any); len(fleets) != 1 {
		t.Fatalf("phantom job after failed submit: %v", list)
	}

	// Heal: the next submission is the recovery probe — accepted, flag
	// cleared.
	failing.Store(false)
	resp, sub = postRaw(t, ts.URL, `{"seeds":[93],"seconds":0.02}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healed submit: HTTP %d: %v", resp.StatusCode, sub)
	}
	if code, h := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz after heal: %d %v", code, h)
	}
	if m := metricsText(t, ts.URL); !strings.Contains(m, "eccspecd_degraded 0") {
		t.Fatalf("metrics still degraded after heal:\n%s", m)
	}
	if st := waitDone(t, ts, sub["id"].(string)); st["status"] != statusDone {
		t.Fatalf("healed fleet finished as %v", st["status"])
	}
}

// TestChaosSubmitBodyLimit sends an oversized POST body and expects a
// 413 JSON error instead of an unbounded read.
func TestChaosSubmitBodyLimit(t *testing.T) {
	_, ts := newTestServer(t)
	big := `{"seeds":[` + strings.Repeat("1,", maxBodyBytes/2) + `1],"seconds":0.02}`
	resp, body := postRaw(t, ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: HTTP %d: %v, want 413", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "exceeds") {
		t.Fatalf("413 body = %v", body)
	}
}

// makeUnwritable forces the store's journal to reject write-opens while
// staying readable, surviving even a root test runner (chmod first,
// chattr +i as the root fallback). Returns false if the environment
// supports neither.
func makeUnwritable(t *testing.T, dir string) bool {
	t.Helper()
	journal := filepath.Join(dir, store.JournalName)
	writable := func() bool {
		f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return false
		}
		f.Close()
		return true
	}
	if err := os.Chmod(journal, 0o444); err == nil {
		t.Cleanup(func() { os.Chmod(journal, 0o644) })
		if !writable() {
			return true
		}
	}
	// Root ignores permission bits; the immutable flag stops even root.
	if err := exec.Command("chattr", "+i", journal).Run(); err != nil {
		return false
	}
	t.Cleanup(func() { exec.Command("chattr", "-i", journal).Run() })
	return !writable()
}

// TestChaosSurvivabilitySubprocess is the robustness acceptance test:
// one daemon process is driven through a planned worker panic and a
// journal error burst and must finish the fleet with a per-chip error,
// reflect both events in /metrics, and exit cleanly on SIGTERM; a
// second daemon then starts against the same data dir gone read-only
// and must serve the recorded results in degraded mode, refuse new
// fleets with 503 + Retry-After, and again exit cleanly.
func TestChaosSurvivabilitySubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()

	// Fault plan: chip 82's worker panics at tick 30; journal operations
	// 2-4 fail (the ops right after the job-accept commit), so the first
	// chip record must ride the burst out through the bounded retry.
	plan := filepath.Join(dir, "plan.json")
	planJSON := `{"seed":7,"faults":[
		{"kind":"worker-panic","chip":82,"start":30},
		{"kind":"store-error","start":2,"duration":3},
		{"kind":"store-slow","start":6,"duration":1,"delay_ms":1}
	]}`
	if err := os.WriteFile(plan, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	data := filepath.Join(dir, "data")

	d := startDaemon(t, "-data-dir "+data+" -checkpoint-interval 0 -chaos-plan "+plan)
	code, sub := d.post(t, "/v1/fleets", `{"seeds":[81,82,83],"seconds":0.05}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, sub)
	}
	id := sub["id"].(string)
	if st := d.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("fleet finished as %v (panic must not take the job down)", st["status"])
	}

	code, body := d.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d", code)
	}
	var res map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["failed"] != float64(1) {
		t.Fatalf("failed = %v, want exactly the panicked chip", res["failed"])
	}
	for _, pc := range res["per_chip"].([]any) {
		chip := pc.(map[string]any)
		errMsg, _ := chip["error"].(string)
		if chip["seed"] == float64(82) {
			if !strings.Contains(errMsg, "worker panic") {
				t.Fatalf("chip 82 error = %q, want the recovered panic", errMsg)
			}
		} else if errMsg != "" {
			t.Fatalf("healthy chip %v failed: %s", chip["seed"], errMsg)
		}
	}

	code, mBody := d.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	metrics := string(mBody)
	for _, want := range []string{
		"eccspecd_chips_failed_total 1",
		"eccspecd_store_retries_total 1",
		"eccspecd_degraded 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}

	// Graceful exit despite everything the plan threw at the process.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-gracefully after chaos run: %v", err)
	}

	// --- Read-only data dir: recover, serve, refuse, exit cleanly. ---
	if !makeUnwritable(t, data) {
		t.Skip("cannot make the journal unwritable in this environment")
	}
	d2 := startDaemon(t, "-data-dir "+data)
	code, body = d2.get(t, "/healthz")
	var h map[string]any
	json.Unmarshal(body, &h)
	if code != http.StatusOK || h["status"] != "degraded" {
		t.Fatalf("healthz on read-only dir: %d %v", code, h)
	}
	code, roBody := d2.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("read-only results: HTTP %d", code)
	}
	var roRes map[string]any
	if err := json.Unmarshal(roBody, &roRes); err != nil {
		t.Fatal(err)
	}
	if roRes["chips"] != float64(3) || roRes["failed"] != float64(1) {
		t.Fatalf("recovered results wrong: %v", roRes)
	}
	resp, errBody := postRaw(t, "http://"+d2.addr, `{"seeds":[99],"seconds":0.02}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read-only submit: HTTP %d: %v, want 503", resp.StatusCode, errBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("read-only 503 missing Retry-After")
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("read-only daemon exited non-gracefully: %v", err)
	}
}
