package main

// Cluster HTTP handlers: the coordinator's registry endpoints
// (register / heartbeat / members / placement) and the worker's
// execution endpoint. Mounted by newServer only for the matching role.

import (
	"encoding/json"
	"log"
	"net/http"

	"eccspec/internal/cluster"
)

// maxClusterBodyBytes bounds a registry request body; registrations and
// heartbeats are a few hundred bytes.
const maxClusterBodyBytes = 64 << 10

// handleClusterRegister admits a worker into the membership (or
// revives/updates one that already registered) and tells it the TTL it
// must heartbeat within.
func (s *server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	body := http.MaxBytesReader(w, r.Body, maxClusterBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	if req.ID == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, "register needs id and url")
		return
	}
	m := s.cfg.coordinator.Membership()
	if m.Join(req) {
		log.Printf("eccspecd: cluster worker %s joined from %s (%d slots)", req.ID, req.URL, req.Slots)
	}
	writeJSON(w, http.StatusOK, cluster.RegisterResponse{TTLSeconds: m.TTL().Seconds()})
}

// handleClusterHeartbeat refreshes a worker's liveness. An unknown ID
// answers 404, which tells the worker to re-register — that is how
// workers find their way back after a coordinator restart.
func (s *server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	body := http.MaxBytesReader(w, r.Body, maxClusterBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	if !s.cfg.coordinator.Membership().Heartbeat(req) {
		writeError(w, http.StatusNotFound, "unknown worker %q; re-register", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleClusterMembers lists the membership, expiry applied, with live
// in-flight counts.
func (s *server) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	c := s.cfg.coordinator
	now := s.now()
	members := c.Membership().Snapshot()
	out := make([]cluster.MemberView, 0, len(members))
	for _, m := range members {
		v := cluster.MemberView{
			ID:            m.ID,
			URL:           m.URL,
			State:         m.State,
			Reason:        m.Reason,
			Slots:         m.Slots,
			Version:       m.Version,
			AgeSeconds:    now.Sub(m.Registered).Seconds(),
			LastBeatAgoS:  now.Sub(m.LastBeat).Seconds(),
			ChipsDone:     m.ChipsDone,
			ChipsInFlight: c.InFlightOn(m.ID),
			ConsecFails:   m.ConsecFails,
		}
		if m.State == cluster.StateQuarantined && m.ProbeAt.After(now) {
			v.ProbeInSeconds = m.ProbeAt.Sub(now).Seconds()
		}
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": out})
}

// handleClusterPlacement reports which worker each of a job's seeds was
// last assigned to. The journaled assignments (which survive coordinator
// restarts and job completion) are the base; for the currently running
// job the coordinator's live map is overlaid, so a store-less
// coordinator still answers for in-flight work.
func (s *server) handleClusterPlacement(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	status := j.Status
	s.mu.Unlock()

	placement := make(map[uint64]string)
	if st := s.cfg.store; st != nil {
		if rec, ok := st.Job(j.Num); ok {
			for seed, worker := range rec.Assignments {
				placement[seed] = worker
			}
		}
	}
	if status == statusRunning {
		for seed, worker := range s.cfg.coordinator.Placement() {
			placement[seed] = worker
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        j.ID,
		"status":    status,
		"placement": placement,
	})
}

// handleClusterExec runs a dispatched chip range, streaming events back
// to the coordinator. A draining worker refuses new batches so shutdown
// is not held open by arbitrarily long tasks; the coordinator migrates
// the refused chips elsewhere.
func (s *server) handleClusterExec(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "worker is draining; not accepting new batches")
		return
	}
	s.cfg.executor.HandleExec(w, r)
}
