package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"eccspec/internal/fleet"
)

// TestMain lets the test binary double as the daemon so the shutdown
// test can exercise the real signal path in a subprocess.
func TestMain(m *testing.M) {
	if os.Getenv("ECCSPECD_MAIN") == "1" {
		os.Args = []string{"eccspecd", "-addr", "127.0.0.1:0", "-workers", "1"}
		if extra := os.Getenv("ECCSPECD_ARGS"); extra != "" {
			os.Args = append(os.Args, strings.Fields(extra)...)
		}
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(fleet.New(fleet.Config{Workers: 2}), serverConfig{queueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postFleet(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/fleets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, m
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, m
}

// waitDone polls a job's status endpoint until it leaves the
// queued/running states.
func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, st := getJSON(t, ts.URL+"/v1/fleets/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %v", id, code, st)
		}
		switch st["status"] {
		case statusDone, statusFailed, statusCanceled:
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

// TestFleetLifecycle drives the full happy path over HTTP: submit,
// poll progress, fetch aggregated results and the telemetry trace.
func TestFleetLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	code, sub := postFleet(t, ts, `{"seeds":[11,12],"workload":"jbb-8wh","seconds":0.02,"trace_every":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, sub)
	}
	id, _ := sub["id"].(string)
	if id == "" || sub["status"] != statusQueued || sub["chips_total"] != float64(2) {
		t.Fatalf("unexpected submit response: %v", sub)
	}

	st := waitDone(t, ts, id)
	if st["status"] != statusDone {
		t.Fatalf("job finished as %v: %v", st["status"], st)
	}
	if st["chips_done"] != float64(2) {
		t.Fatalf("chips_done = %v, want 2", st["chips_done"])
	}

	code, res := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d: %v", code, res)
	}
	if res["chips"] != float64(2) || res["failed"] != float64(0) {
		t.Fatalf("results counts: %v", res)
	}
	if mr, _ := res["mean_reduction"].(float64); mr <= 0 || mr >= 1 {
		t.Fatalf("mean_reduction = %v", res["mean_reduction"])
	}
	hist, _ := res["domain_vdd_hist"].(map[string]any)
	if hist == nil {
		t.Fatalf("missing domain_vdd_hist: %v", res)
	}
	if counts, _ := hist["counts"].([]any); len(counts) != fleet.HistBins {
		t.Fatalf("histogram has %d bins, want %d", len(counts), fleet.HistBins)
	}
	perChip, _ := res["per_chip"].([]any)
	if len(perChip) != 2 {
		t.Fatalf("per_chip has %d entries: %v", len(perChip), res)
	}

	resp, err := http.Get(ts.URL + "/v1/fleets/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("trace content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() || sc.Text() != "seed,time,vdd_mean_v,vdd_min_v,err_rate,power_w" {
		t.Fatalf("trace header = %q", sc.Text())
	}
	rows := 0
	seeds := map[string]bool{}
	for sc.Scan() {
		rows++
		seeds[strings.SplitN(sc.Text(), ",", 2)[0]] = true
	}
	if rows == 0 || !seeds["11"] || !seeds["12"] {
		t.Fatalf("trace rows=%d seeds=%v", rows, seeds)
	}

	// The list endpoint sees the job too.
	code, list := getJSON(t, ts.URL+"/v1/fleets")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if fleets, _ := list["fleets"].([]any); len(fleets) != 1 {
		t.Fatalf("list has %d fleets: %v", len(fleets), list)
	}
}

// TestSubmitValidation covers the 400 paths and the 404 for unknown
// ids.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []string{
		`not json`,
		`{"seconds":1}`,             // no seeds
		`{"seeds":[1],"seconds":0}`, // no duration
		`{"seeds":[1],"seconds":1,"workload":"nope"}`, // unknown workload
		`{"chips":99999,"seconds":1}`,                 // over the chip cap
	}
	for _, body := range cases {
		if code, resp := postFleet(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d (%v), want 400", body, code, resp)
		}
	}
	if code, _ := getJSON(t, ts.URL+"/v1/fleets/f-99"); code != http.StatusNotFound {
		t.Errorf("unknown id: HTTP %d, want 404", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/fleets/f-99/results"); code != http.StatusNotFound {
		t.Errorf("unknown id results: HTTP %d, want 404", code)
	}
}

// TestResultsBeforeDone hits the results/trace endpoints of a job that
// cannot have started (the runner is saturated by a long job) and
// expects 409 Conflict.
func TestResultsBeforeDone(t *testing.T) {
	_, ts := newTestServer(t)
	// First job occupies the single runner; the second stays queued.
	code, first := postFleet(t, ts, `{"seeds":[21,22,23,24],"seconds":0.05}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	code, second := postFleet(t, ts, `{"seeds":[31],"seconds":0.02}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	id := second["id"].(string)
	if code, resp := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results"); code != http.StatusConflict {
		t.Errorf("queued results: HTTP %d (%v), want 409", code, resp)
	}
	if code, resp := getJSON(t, ts.URL+"/v1/fleets/"+id+"/trace"); code != http.StatusConflict {
		t.Errorf("queued trace: HTTP %d (%v), want 409", code, resp)
	}
	// Untraced finished jobs 404 on the trace endpoint.
	fid := first["id"].(string)
	waitDone(t, ts, fid)
	waitDone(t, ts, id)
	if code, resp := getJSON(t, ts.URL+"/v1/fleets/"+fid+"/trace"); code != http.StatusNotFound {
		t.Errorf("untraced trace: HTTP %d (%v), want 404", code, resp)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition after a job.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, sub := postFleet(t, ts, `{"seeds":[41],"seconds":0.02}`)
	waitDone(t, ts, sub["id"].(string))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"eccspecd_jobs_queued 0",
		"eccspecd_jobs_running 0",
		"eccspecd_jobs_submitted_total 1",
		"eccspecd_jobs_done_total 1",
		"eccspecd_jobs_failed_total 0",
		"eccspecd_chips_simulated_total 1",
		"# TYPE eccspecd_sim_ticks_total counter",
		"eccspecd_sim_ticks_per_second",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestGracefulDrain submits work, begins a drain, and checks that the
// accepted job still completes, that new submissions are refused with
// 503, and that the drained channel closes.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t)
	code, sub := postFleet(t, ts, `{"seeds":[51,52],"seconds":0.02}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["id"].(string)

	s.beginDrain()
	if code, resp := postFleet(t, ts, `{"seeds":[61],"seconds":0.02}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d (%v), want 503", code, resp)
	}
	if code, h := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK || h["status"] != "draining" {
		t.Fatalf("healthz while draining: %d %v", code, h)
	}

	select {
	case <-s.drained():
	case <-time.After(2 * time.Minute):
		t.Fatal("drain did not complete")
	}
	code, st := getJSON(t, ts.URL+"/v1/fleets/"+id)
	if code != http.StatusOK || st["status"] != statusDone {
		t.Fatalf("drained job state: %d %v", code, st)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results"); code != http.StatusOK {
		t.Fatalf("results after drain: HTTP %d", code)
	}
}

// TestSignalShutdown runs the real daemon in a subprocess, submits a
// fleet, sends SIGTERM mid-run, and verifies the process drains the
// job and exits 0 — the end-to-end signal path main() wires up.
func TestSignalShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "ECCSPECD_MAIN=1")
	var stderr bytes.Buffer
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its bound address; find it.
	sc := bufio.NewScanner(io.TeeReader(stderrPipe, &stderr))
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address; stderr:\n%s", stderr.String())
	}
	// Capture the rest of stderr until the process exits (pipe EOF),
	// so the drain log is fully read before Wait closes the pipe.
	copyDone := make(chan struct{})
	go func() {
		io.Copy(&stderr, stderrPipe)
		close(copyDone)
	}()

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/fleets", "application/json",
		strings.NewReader(`{"seeds":[71,72],"seconds":0.02}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", resp.StatusCode, sub)
	}

	// SIGTERM while the job is (at latest) just finishing: the daemon
	// must drain it and exit cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		<-copyDone
		done <- cmd.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "drained") {
		t.Fatalf("daemon did not report draining; stderr:\n%s", out)
	}
}
