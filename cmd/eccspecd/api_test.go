package main

// Tests for the admission-control tier: priority-ordered bounded
// queueing with shed headers, per-client rate limiting, DELETE
// cancellation, pagination, and ETag/304 caching on completed results.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eccspec/internal/cluster"
	"eccspec/internal/fleet"
)

// stubRunner is a controllable runner: when gated, each Run blocks
// until release is signalled (or its context is canceled), and every
// started job's priority is recorded in order.
type stubRunner struct {
	gate chan struct{} // nil = complete immediately; else one receive per job

	mu      sync.Mutex
	started []int // priorities in pop order
}

func (r *stubRunner) Run(ctx context.Context, job fleet.Job, onProgress func(done, total int)) ([]fleet.ChipResult, error) {
	r.mu.Lock()
	r.started = append(r.started, job.Priority)
	r.mu.Unlock()
	if r.gate != nil {
		select {
		case <-r.gate:
		case <-ctx.Done():
			out := make([]fleet.ChipResult, len(job.Seeds))
			for i, seed := range job.Seeds {
				out[i] = fleet.ChipResult{Seed: seed, Err: ctx.Err()}
			}
			return out, ctx.Err()
		}
	}
	out := make([]fleet.ChipResult, len(job.Seeds))
	for i, seed := range job.Seeds {
		out[i] = fleet.ChipResult{
			Seed: seed, NominalV: 0.8, AvgReduction: 0.1,
			DomainVdd: []float64{0.72}, UncoreVdd: 0.8, AvgPowerW: 20, Ticks: 10,
		}
		if onProgress != nil {
			onProgress(i+1, len(job.Seeds))
		}
	}
	return out, nil
}

func (r *stubRunner) order() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.started...)
}

func newStubServer(t *testing.T, stub *stubRunner, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(stub, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// waitStatus polls until the job reaches the wanted state.
func waitStatus(t *testing.T, ts *httptest.Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		_, st := getJSON(t, ts.URL+"/v1/fleets/"+id)
		if st["status"] == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
}

// TestPriorityOrderingAndShedHeaders fills the bounded queue behind a
// gated runner and checks that (a) an over-capacity submission is shed
// with 429 + Retry-After + queue-depth headers, and (b) queued jobs
// pop highest-priority first, FIFO within a class.
func TestPriorityOrderingAndShedHeaders(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{})}
	_, ts := newStubServer(t, stub, serverConfig{queueDepth: 3})

	submit := func(pri int) string {
		t.Helper()
		code, sub := postFleet(t, ts, fmt.Sprintf(`{"seeds":[%d],"seconds":0.01,"priority":%d}`, pri+100, pri))
		if code != http.StatusAccepted {
			t.Fatalf("submit pri %d: HTTP %d: %v", pri, code, sub)
		}
		return sub["id"].(string)
	}

	first := submit(1)
	waitStatus(t, ts, first, statusRunning) // occupies the runner
	submit(0)
	submit(5)
	lowB := submit(0) // queue now holds pri 0, 5, 0 (full at depth 3)

	resp, err := http.Post(ts.URL+"/v1/fleets", "application/json",
		strings.NewReader(`{"seeds":[9],"seconds":0.01,"priority":9}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: HTTP %d, want 429", resp.StatusCode)
	}
	for _, h := range []string{"Retry-After", "X-Queue-Depth", "X-Queue-Capacity"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("shed response missing %s header", h)
		}
	}
	if d := resp.Header.Get("X-Queue-Depth"); d != "3" {
		t.Errorf("X-Queue-Depth = %s, want 3", d)
	}
	if c := resp.Header.Get("X-Queue-Capacity"); c != "3" {
		t.Errorf("X-Queue-Capacity = %s, want 3", c)
	}

	// Release every job and verify pop order: running first, then the
	// high-priority job, then the two pri-0 jobs in submission order.
	close(stub.gate)
	waitStatus(t, ts, lowB, statusDone)
	got := stub.order()
	want := []int{1, 5, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("ran %d jobs (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run order %v, want %v", got, want)
		}
	}

	// The shed shows up in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, wantLine := range []string{"eccspecd_jobs_shed_total 1", "eccspecd_queue_capacity 3"} {
		if !strings.Contains(string(body), wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}
}

// TestPriorityValidation rejects out-of-range priorities at submit.
func TestPriorityValidation(t *testing.T) {
	_, ts := newStubServer(t, &stubRunner{}, serverConfig{queueDepth: 4})
	for _, body := range []string{
		`{"seeds":[1],"seconds":1,"priority":10}`,
		`{"seeds":[1],"seconds":1,"priority":-1}`,
	} {
		if code, resp := postFleet(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s: HTTP %d (%v), want 400", body, code, resp)
		}
	}
}

// TestRateLimiting exercises the per-client token bucket: a client
// that exhausts its burst gets 429 + Retry-After while a different
// API key sails through.
func TestRateLimiting(t *testing.T) {
	_, ts := newStubServer(t, &stubRunner{}, serverConfig{queueDepth: 4, rateLimit: 1, rateBurst: 2})

	get := func(key string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/v1/fleets", nil)
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := get("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: HTTP %d", i, resp.StatusCode)
		}
	}
	resp := get("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 missing Retry-After")
	}
	if resp := get("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: HTTP %d, want 200", resp.StatusCode)
	}
	// /healthz and /metrics stay outside the limit, and /healthz
	// advertises the limiter config.
	code, h := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	rl, _ := h["rate_limit"].(map[string]any)
	if rl == nil || rl["rate"] != float64(1) || rl["burst"] != float64(2) {
		t.Errorf("healthz rate_limit = %v", h["rate_limit"])
	}
}

// TestCancelQueuedJob is the regression test for queued-job
// cancellation: DELETE on a fleet still waiting in the queue removes
// it immediately — it transitions to canceled without ever starting.
func TestCancelQueuedJob(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{})}
	_, ts := newStubServer(t, stub, serverConfig{queueDepth: 4})

	code, sub := postFleet(t, ts, `{"seeds":[1],"seconds":0.01,"priority":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	first := sub["id"].(string)
	waitStatus(t, ts, first, statusRunning)
	code, sub = postFleet(t, ts, `{"seeds":[2],"seconds":0.01,"priority":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit queued: HTTP %d", code)
	}
	queued := sub["id"].(string)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/fleets/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d, want 200", resp.StatusCode)
	}
	// Immediately canceled — no waiting for the runner.
	if _, st := getJSON(t, ts.URL+"/v1/fleets/"+queued); st["status"] != statusCanceled {
		t.Fatalf("canceled queued job is %v, want %s", st["status"], statusCanceled)
	}

	close(stub.gate)
	waitStatus(t, ts, first, statusDone)
	// Only the first job ever reached the runner.
	if got := stub.order(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("runner executed %v, want just the pri-1 job", got)
	}

	// Unknown id still 404s.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/fleets/f-999", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: HTTP %d, want 404", resp2.StatusCode)
	}
}

// TestCancelRunningJob aborts an in-flight job via DELETE and checks
// it lands in canceled, then deletes the record entirely.
func TestCancelRunningJob(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{})}
	defer close(stub.gate)
	_, ts := newStubServer(t, stub, serverConfig{queueDepth: 4})

	code, sub := postFleet(t, ts, `{"seeds":[1],"seconds":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["id"].(string)
	waitStatus(t, ts, id, statusRunning)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/fleets/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: HTTP %d, want 202", resp.StatusCode)
	}
	waitStatus(t, ts, id, statusCanceled)

	// DELETE on the now-terminal job removes it.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/fleets/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete finished: HTTP %d, want 200", resp.StatusCode)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/fleets/"+id); code != http.StatusNotFound {
		t.Fatalf("deleted job still serves status: HTTP %d", code)
	}
}

// TestResultsETag304SkipsEncoding proves the caching contract: a
// conditional GET on a completed fleet's results returns 304 with no
// body and, crucially, without re-serializing the response — counted
// by the daemon's encode counter.
func TestResultsETag304SkipsEncoding(t *testing.T) {
	s, ts := newStubServer(t, &stubRunner{}, serverConfig{queueDepth: 4})
	code, sub := postFleet(t, ts, `{"seeds":[1,2,3],"seconds":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["id"].(string)
	waitStatus(t, ts, id, statusDone)

	resp, err := http.Get(ts.URL + "/v1/fleets/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("results: HTTP %d, %d body bytes", resp.StatusCode, len(body))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("completed results carry no ETag")
	}
	encodes := s.metrics.resultEncodes.Load()
	if encodes == 0 {
		t.Fatal("encode counter did not move on the full response")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/fleets/"+id+"/results", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: HTTP %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if got := s.metrics.resultEncodes.Load(); got != encodes {
		t.Fatalf("304 re-serialized the results (encodes %d -> %d)", encodes, got)
	}
	if s.metrics.notModified.Load() == 0 {
		t.Fatal("304 counter did not move")
	}

	// A different representation (a page window) has a different tag,
	// so the stale full-body tag misses and the page is served.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/fleets/"+id+"/results?limit=1", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	pageTag := resp.Header.Get("ETag")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paged conditional GET with full-body tag: HTTP %d, want 200", resp.StatusCode)
	}
	if pageTag == etag {
		t.Fatal("page window shares the full-body ETag")
	}

	// The daemon reissues the identical tag on a later GET — the tag is
	// stable, not per-response.
	resp, err = http.Get(ts.URL + "/v1/fleets/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("ETag drifted: %q then %q", etag, resp.Header.Get("ETag"))
	}
}

// TestTraceETag304 covers the conditional-GET path of the streamed
// trace endpoint, including the seed-filter variant tags.
func TestTraceETag304(t *testing.T) {
	_, ts := newTestServer(t) // real engine: the stub records no trace
	code, sub := postFleet(t, ts, `{"seeds":[5],"seconds":0.02,"trace_every":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["id"].(string)
	waitDone(t, ts, id)

	resp, err := http.Get(ts.URL + "/v1/fleets/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("trace: HTTP %d, etag %q", resp.StatusCode, etag)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/fleets/"+id+"/trace", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional trace GET: HTTP %d with %d bytes, want bare 304", resp.StatusCode, len(body))
	}

	// The seed-filtered representation carries a different tag.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/fleets/"+id+"/trace?seed=5", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered trace with unfiltered tag: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestCoordinatorModeSharesQueue proves the admission queue guards the
// cluster path too: a coordinator daemon with no workers sheds
// over-capacity submissions with the same 429 + queue headers.
func TestCoordinatorModeSharesQueue(t *testing.T) {
	coord := cluster.New(cluster.Config{
		Membership: cluster.NewMembership(time.Second),
		WorkerWait: 30 * time.Second, // first job parks here, keeping the runner busy
	})
	s := newServer(coord, serverConfig{queueDepth: 1, coordinator: coord})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.cancelJobs() // unpark the no-worker wait so the runner exits
		ts.Close()
	})

	code, sub := postFleet(t, ts, `{"seeds":[1],"seconds":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d: %v", code, sub)
	}
	waitStatus(t, ts, sub["id"].(string), statusRunning)
	if code, _ = postFleet(t, ts, `{"seeds":[2],"seconds":0.01}`); code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/fleets", "application/json",
		strings.NewReader(`{"seeds":[3],"seconds":0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("coordinator over-capacity submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-Queue-Capacity") != "1" || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("coordinator shed headers: %v", resp.Header)
	}
}

// TestPagination drives limit/offset on the fleet listing and the
// per-chip results window.
func TestPagination(t *testing.T) {
	_, ts := newStubServer(t, &stubRunner{}, serverConfig{queueDepth: 8})
	var last string
	for i := 0; i < 3; i++ {
		code, sub := postFleet(t, ts, fmt.Sprintf(`{"seeds":[%d,%d,%d,%d,%d],"seconds":0.01}`,
			i*10+1, i*10+2, i*10+3, i*10+4, i*10+5))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		last = sub["id"].(string)
	}
	waitStatus(t, ts, last, statusDone)

	code, list := getJSON(t, ts.URL+"/v1/fleets?limit=2")
	if code != http.StatusOK {
		t.Fatalf("paged list: HTTP %d", code)
	}
	if fleets, _ := list["fleets"].([]any); len(fleets) != 2 {
		t.Fatalf("paged list returned %d fleets: %v", len(fleets), list)
	}
	if list["total"] != float64(3) || list["next_offset"] != float64(2) {
		t.Fatalf("paged list envelope: %v", list)
	}
	code, list = getJSON(t, ts.URL+"/v1/fleets?offset=2")
	if code != http.StatusOK {
		t.Fatalf("offset list: HTTP %d", code)
	}
	if fleets, _ := list["fleets"].([]any); len(fleets) != 1 {
		t.Fatalf("offset list returned %d fleets", len(fleets))
	}
	if _, hasNext := list["next_offset"]; hasNext {
		t.Fatalf("final page advertises next_offset: %v", list)
	}

	code, res := getJSON(t, ts.URL+"/v1/fleets/"+last+"/results?offset=1&limit=2")
	if code != http.StatusOK {
		t.Fatalf("paged results: HTTP %d", code)
	}
	chips, _ := res["per_chip"].([]any)
	if len(chips) != 2 {
		t.Fatalf("paged per_chip has %d entries: %v", len(chips), res)
	}
	if first, _ := chips[0].(map[string]any); first["seed"] != float64(22) {
		t.Fatalf("page starts at seed %v, want 22", first["seed"])
	}
	page, _ := res["page"].(map[string]any)
	if page == nil || page["next_offset"] != float64(3) {
		t.Fatalf("results page envelope: %v", res["page"])
	}
	// Aggregates describe the whole fleet regardless of the window.
	if res["chips"] != float64(5) {
		t.Fatalf("paged results chips = %v, want 5", res["chips"])
	}

	for _, q := range []string{"?limit=0", "?limit=x", "?offset=-1"} {
		if code, _ := getJSON(t, ts.URL+"/v1/fleets"+q); code != http.StatusBadRequest {
			t.Errorf("list%s: HTTP %d, want 400", q, code)
		}
		if code, _ := getJSON(t, ts.URL+"/v1/fleets/"+last+"/results"+q); code != http.StatusBadRequest {
			t.Errorf("results%s: HTTP %d, want 400", q, code)
		}
	}
}
