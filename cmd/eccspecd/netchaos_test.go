package main

// Network-plane chaos acceptance: real coordinator and worker daemons
// as subprocesses with a seeded net-fault plan armed on the
// coordinator's RPC transport, byte-compared against an uninterrupted
// single-node daemon. This is the `make cluster-chaos` harness; with
// ECCSPEC_BENCH_OUT set, the chaos run refreshes BENCH_cluster.json.
//
// Rides the same re-exec trick as persist_test.go (ECCSPECD_MAIN=1).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

const netChaosFleetBody = `{"seeds":[41,42,43,44,45,46],"workload":"jbb-8wh","seconds":0.06,"trace_every":10}`

// writeChaosPlan drops a plan JSON into a temp dir and returns its path.
func writeChaosPlan(t *testing.T, plan string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// stop shuts a daemon down gracefully and asserts a clean exit — the
// chaos contract includes not wedging shutdown.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Errorf("daemon exited dirty: %v", err)
	}
}

// singleNodeReference runs the fleet on one plain daemon and returns
// the results and trace bytes every cluster run must reproduce.
func singleNodeReference(t *testing.T, body string) (id string, results, trace []byte) {
	t.Helper()
	single := startDaemon(t, "-workers 2")
	code, sub := single.post(t, "/v1/fleets", body)
	if code != http.StatusAccepted {
		t.Fatalf("single-node submit: HTTP %d: %v", code, sub)
	}
	id = sub["id"].(string)
	if st := single.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("single-node run finished as %v", st["status"])
	}
	code, results = single.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("single-node results: HTTP %d", code)
	}
	code, trace = single.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("single-node trace: HTTP %d", code)
	}
	single.sigkill(t)
	return id, results, trace
}

// TestClusterNetChaosByteIdenticalResults is the network-plane
// acceptance test: a coordinator whose dispatch transport carries a
// seeded gauntlet — partition window, torn stream, duplicated stream,
// slow link — must still merge results and trace byte-identical to a
// single-node daemon, exercise its retry and dedupe paths, and shut
// everything down cleanly.
func TestClusterNetChaosByteIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	id, wantResults, wantTrace := singleNodeReference(t, netChaosFleetBody)

	plan := writeChaosPlan(t, `{"seed":42,"faults":[
		{"kind":"net-partition","target":"exec","start":0,"duration":2},
		{"kind":"net-reset-stream","target":"exec","start":2,"duration":1,"line":2},
		{"kind":"net-dup-events","target":"exec","start":3,"duration":1},
		{"kind":"net-slow","target":"exec","start":4,"duration":2,"delay_ms":10}
	]}`)
	coord := startDaemon(t, "-coordinator -cluster-batch 2 -worker-ttl 5s -stall-timeout 30s -chaos-plan "+plan)
	joinArgs := fmt.Sprintf("-join http://%s -workers 2 -heartbeat 100ms", coord.addr)
	w1 := startDaemon(t, joinArgs+" -worker-id w1")
	w2 := startDaemon(t, joinArgs+" -worker-id w2")
	waitClusterHealthy(t, coord, 2)

	start := time.Now()
	code, sub := coord.post(t, "/v1/fleets", netChaosFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("cluster submit: HTTP %d: %v", code, sub)
	}
	if cid := sub["id"].(string); cid != id {
		t.Fatalf("cluster job id %s, single-node %s", cid, id)
	}
	if st := coord.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("cluster run finished as %v", st["status"])
	}
	elapsed := time.Since(start)

	code, gotResults := coord.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("cluster results: HTTP %d", code)
	}
	if string(gotResults) != string(wantResults) {
		t.Fatalf("results differ from single-node run under net chaos:\nsingle:\n%s\ncluster:\n%s", wantResults, gotResults)
	}
	code, gotTrace := coord.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("cluster trace: HTTP %d", code)
	}
	if string(gotTrace) != string(wantTrace) {
		t.Fatalf("trace differs from single-node run under net chaos")
	}

	// The plan must have actually forced the hardening paths.
	code, page := coord.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	retries, ok := metricValue(t, page, "eccspecd_cluster_dispatch_retries_total")
	if !ok || retries < 1 {
		t.Errorf("eccspecd_cluster_dispatch_retries_total = %v (present=%v), want >= 1", retries, ok)
	}
	dups, ok := metricValue(t, page, "eccspecd_cluster_dup_events_total")
	if !ok || dups < 1 {
		t.Errorf("eccspecd_cluster_dup_events_total = %v (present=%v), want >= 1", dups, ok)
	}
	if chips, ok := metricValue(t, page, "eccspecd_cluster_chips_done_total"); !ok || chips != 6 {
		t.Errorf("eccspecd_cluster_chips_done_total = %v, want 6", chips)
	}

	// Everyone drains and exits clean despite the chaos plan.
	w1.stop(t)
	w2.stop(t)
	coord.stop(t)

	writeNetChaosBench(t, elapsed, int(retries), int(dups))
}

// writeNetChaosBench records the chaos run to ECCSPEC_BENCH_OUT (no-op
// when unset) — the `make cluster-chaos` harness refreshing
// BENCH_cluster.json.
func writeNetChaosBench(t *testing.T, elapsed time.Duration, retries, dups int) {
	t.Helper()
	out := os.Getenv("ECCSPEC_BENCH_OUT")
	if out == "" {
		return
	}
	blob, err := json.MarshalIndent(map[string]any{
		"bench":            "cluster-chaos",
		"topology":         "1 coordinator + 2 workers under a seeded net-fault gauntlet, localhost",
		"chips":            6,
		"elapsed_s":        elapsed.Seconds(),
		"chips_per_min":    6 / elapsed.Minutes(),
		"dispatch_retries": retries,
		"dup_events":       dups,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestClusterNetChaosQuarantineRecovers drives the circuit breaker end
// to end across processes: with -quarantine-after 1, the partitioned
// first dispatch quarantines a worker (visible in metrics, healthz, and
// the members view), the half-open probe revives it once the window
// passes, and the fleet still matches single-node bytes.
func TestClusterNetChaosQuarantineRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	id, wantResults, _ := singleNodeReference(t, netChaosFleetBody)

	plan := writeChaosPlan(t, `{"seed":7,"faults":[
		{"kind":"net-partition","target":"exec","start":0,"duration":1}
	]}`)
	coord := startDaemon(t, "-coordinator -cluster-batch 2 -quarantine-after 1 -probe-delay 100ms -chaos-plan "+plan)
	w := startDaemon(t, fmt.Sprintf("-join http://%s -workers 2 -heartbeat 100ms -worker-id solo", coord.addr))
	waitClusterHealthy(t, coord, 1)

	code, sub := coord.post(t, "/v1/fleets", netChaosFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("cluster submit: HTTP %d: %v", code, sub)
	}
	if st := coord.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("cluster run finished as %v: %v", st["status"], sub)
	}

	code, gotResults := coord.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("cluster results: HTTP %d", code)
	}
	if string(gotResults) != string(wantResults) {
		t.Fatalf("results differ after quarantine round-trip:\nsingle:\n%s\ncluster:\n%s", wantResults, gotResults)
	}

	code, page := coord.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if q, ok := metricValue(t, page, "eccspecd_cluster_quarantines_total"); !ok || q < 1 {
		t.Errorf("eccspecd_cluster_quarantines_total = %v (present=%v), want >= 1", q, ok)
	}
	// The job only finishes if the probe revived the quarantined worker,
	// so by now the gauge must be back to zero.
	if g, ok := metricValue(t, page, "eccspecd_cluster_workers_quarantined"); !ok || g != 0 {
		t.Errorf("eccspecd_cluster_workers_quarantined = %v (present=%v), want 0 after recovery", g, ok)
	}

	w.stop(t)
	coord.stop(t)
}
