package main

import (
	"net/http"
	"strings"
	"testing"
)

// TestSubmitWithPolicy drives a non-default policy through the HTTP
// surface: accepted, echoed on status and results, and the chips
// actually ran it (the conservative policy never leaves nominal).
func TestSubmitWithPolicy(t *testing.T) {
	_, ts := newTestServer(t)
	code, st := postFleet(t, ts, `{"seeds":[1],"workload":"mcf","seconds":0.03,"policy":"conservative"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, st)
	}
	if st["policy"] != "conservative" {
		t.Fatalf("submit status echoes policy %v, want conservative", st["policy"])
	}
	id := st["id"].(string)
	fin := waitDone(t, ts, id)
	if fin["status"] != statusDone {
		t.Fatalf("fleet finished %v: %v", fin["status"], fin["error"])
	}
	code, res := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d: %v", code, res)
	}
	if res["policy"] != "conservative" {
		t.Fatalf("results echo policy %v, want conservative", res["policy"])
	}
	if red := res["mean_reduction"].(float64); red != 0 {
		t.Fatalf("conservative fleet reports %.4f mean reduction, want 0 (never leaves nominal)", red)
	}
}

// TestSubmitDefaultPolicyEchoesResolvedName: an unspecified policy
// resolves to the paper ladder in the results echo.
func TestSubmitDefaultPolicyEchoesResolvedName(t *testing.T) {
	_, ts := newTestServer(t)
	code, st := postFleet(t, ts, `{"seeds":[1],"seconds":0.02}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, st)
	}
	if _, present := st["policy"]; present {
		t.Fatalf("default submit status carries policy %v, want omitted", st["policy"])
	}
	id := st["id"].(string)
	waitDone(t, ts, id)
	_, res := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results")
	if res["policy"] != "paper" {
		t.Fatalf("results echo policy %v, want paper", res["policy"])
	}
}

// TestSubmitUnknownPolicyRejected: validation happens at submission,
// and the error lists the registered names.
func TestSubmitUnknownPolicyRejected(t *testing.T) {
	_, ts := newTestServer(t)
	code, m := postFleet(t, ts, `{"seeds":[1],"seconds":0.02,"policy":"nosuch"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown policy: HTTP %d, want 400", code)
	}
	msg, _ := m["error"].(string)
	for _, want := range []string{"nosuch", "paper", "conservative"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}

// TestHealthzListsPolicies: the registry is discoverable from /healthz.
func TestHealthzListsPolicies(t *testing.T) {
	_, ts := newTestServer(t)
	code, m := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	names, ok := m["policies"].([]any)
	if !ok {
		t.Fatalf("healthz has no policies list: %v", m)
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n.(string)] = true
	}
	for _, want := range []string{"conservative", "guardband", "paper", "tscache"} {
		if !found[want] {
			t.Fatalf("healthz policies %v missing %q", names, want)
		}
	}
}
