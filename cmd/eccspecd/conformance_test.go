package main

// HTTP conformance: one table over every /v1/* endpoint pinning the
// protocol edges — wrong method (405 + Allow), malformed JSON (400),
// oversize body (413), unknown fleet (404), bad query parameters
// (400) — and the shape of the error envelope itself. The table is
// the API contract in executable form; a route or status change that
// isn't deliberate fails here first.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eccspec/internal/cluster"
	"eccspec/internal/fleet"
)

func TestHTTPConformance(t *testing.T) {
	_, ts := newTestServer(t)

	// One completed fleet so the id-bearing routes have a real target
	// for their bad-parameter cases.
	code, sub := postFleet(t, ts, `{"seeds":[7],"seconds":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("seed fleet: HTTP %d", code)
	}
	id := sub["id"].(string)
	waitDone(t, ts, id)

	oversize := `{"seeds":[7],"pad":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`

	cases := []conformanceCase{
		// Method discipline: the Go 1.22 mux must answer 405 and name
		// the methods the route does serve.
		{name: "collection rejects PUT", method: "PUT", path: "/v1/fleets", want: http.StatusMethodNotAllowed, allow: []string{"GET", "POST"}},
		{name: "collection rejects DELETE", method: "DELETE", path: "/v1/fleets", want: http.StatusMethodNotAllowed, allow: []string{"GET", "POST"}},
		{name: "status rejects POST", method: "POST", path: "/v1/fleets/" + id, want: http.StatusMethodNotAllowed, allow: []string{"GET", "DELETE"}},
		{name: "status rejects PUT", method: "PUT", path: "/v1/fleets/" + id, want: http.StatusMethodNotAllowed, allow: []string{"GET", "DELETE"}},
		{name: "results rejects POST", method: "POST", path: "/v1/fleets/" + id + "/results", want: http.StatusMethodNotAllowed, allow: []string{"GET"}},
		{name: "results rejects DELETE", method: "DELETE", path: "/v1/fleets/" + id + "/results", want: http.StatusMethodNotAllowed, allow: []string{"GET"}},
		{name: "trace rejects POST", method: "POST", path: "/v1/fleets/" + id + "/trace", want: http.StatusMethodNotAllowed, allow: []string{"GET"}},
		{name: "metrics rejects POST", method: "POST", path: "/metrics", want: http.StatusMethodNotAllowed, allow: []string{"GET"}},
		{name: "healthz rejects DELETE", method: "DELETE", path: "/healthz", want: http.StatusMethodNotAllowed, allow: []string{"GET"}},

		// Body discipline on submit.
		{name: "submit malformed JSON", method: "POST", path: "/v1/fleets", body: `{"seeds":[1`, want: http.StatusBadRequest, errJSON: true},
		{name: "submit non-JSON body", method: "POST", path: "/v1/fleets", body: `chips please`, want: http.StatusBadRequest, errJSON: true},
		{name: "submit empty fleet", method: "POST", path: "/v1/fleets", body: `{}`, want: http.StatusBadRequest, errJSON: true},
		{name: "submit priority out of range", method: "POST", path: "/v1/fleets", body: `{"seeds":[1],"priority":10}`, want: http.StatusBadRequest, errJSON: true},
		{name: "submit oversize body", method: "POST", path: "/v1/fleets", body: oversize, want: http.StatusRequestEntityTooLarge, errJSON: true},

		// Unknown fleet ids on every id-bearing route.
		{name: "status unknown fleet", method: "GET", path: "/v1/fleets/f-999999", want: http.StatusNotFound, errJSON: true},
		{name: "cancel unknown fleet", method: "DELETE", path: "/v1/fleets/f-999999", want: http.StatusNotFound, errJSON: true},
		{name: "results unknown fleet", method: "GET", path: "/v1/fleets/f-999999/results", want: http.StatusNotFound, errJSON: true},
		{name: "trace unknown fleet", method: "GET", path: "/v1/fleets/f-999999/trace", want: http.StatusNotFound, errJSON: true},
		{name: "unrouted path", method: "GET", path: "/v1/nope", want: http.StatusNotFound},

		// Query-parameter discipline on the paged and filtered reads.
		{name: "list non-numeric limit", method: "GET", path: "/v1/fleets?limit=lots", want: http.StatusBadRequest, errJSON: true},
		{name: "list zero limit", method: "GET", path: "/v1/fleets?limit=0", want: http.StatusBadRequest, errJSON: true},
		{name: "list negative offset", method: "GET", path: "/v1/fleets?offset=-1", want: http.StatusBadRequest, errJSON: true},
		{name: "results bad limit", method: "GET", path: "/v1/fleets/" + id + "/results?limit=-3", want: http.StatusBadRequest, errJSON: true},
		{name: "results bad offset", method: "GET", path: "/v1/fleets/" + id + "/results?offset=x", want: http.StatusBadRequest, errJSON: true},
		{name: "trace non-numeric seed", method: "GET", path: "/v1/fleets/" + id + "/trace?seed=abc", want: http.StatusBadRequest, errJSON: true},
	}

	runConformanceCases(t, ts, cases)
}

// conformanceCase is one protocol-edge probe: a request and the status,
// Allow header, and error-envelope shape it must come back with.
type conformanceCase struct {
	name   string
	method string
	path   string
	body   string
	want   int
	// allow, when set, must be a subset of the 405 Allow header.
	allow []string
	// errJSON asserts the body is the {"error": ...} envelope.
	errJSON bool
}

func runConformanceCases(t *testing.T, ts *httptest.Server, cases []conformanceCase) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s = HTTP %d, want %d (body %q)", tc.method, tc.path, resp.StatusCode, tc.want, raw)
			}
			if len(tc.allow) > 0 {
				allow := resp.Header.Get("Allow")
				if allow == "" {
					t.Fatalf("405 without an Allow header")
				}
				for _, m := range tc.allow {
					if !allowLists(allow, m) {
						t.Errorf("Allow %q does not list %s", allow, m)
					}
				}
			}
			if tc.errJSON {
				var e struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
					t.Errorf("error body is not the JSON envelope: %q", raw)
				}
			}
		})
	}
}

// TestHTTPConformanceCluster pins the same protocol edges on the
// /v1/cluster/* routes — the registry endpoints a coordinator serves
// and the exec endpoint a worker serves. Cluster RPCs are machine-to-
// machine, but they hold to the same contract humans debug against:
// 405 + Allow, 400 with a JSON error envelope, 404 for unknown names.
func TestHTTPConformanceCluster(t *testing.T) {
	coord := cluster.New(cluster.Config{
		Membership: cluster.NewMembership(time.Minute),
		WorkerWait: time.Second,
	})
	cs := newServer(coord, serverConfig{queueDepth: 1, coordinator: coord})
	cts := httptest.NewServer(cs.Handler())
	t.Cleanup(cts.Close)

	oversize := `{"id":"w1","url":"http://x","pad":"` + strings.Repeat("x", maxClusterBodyBytes+1) + `"}`
	runConformanceCases(t, cts, []conformanceCase{
		// Method discipline on the registry.
		{name: "register rejects GET", method: "GET", path: cluster.PathRegister, want: http.StatusMethodNotAllowed, allow: []string{"POST"}},
		{name: "heartbeat rejects GET", method: "GET", path: cluster.PathHeartbeat, want: http.StatusMethodNotAllowed, allow: []string{"POST"}},
		{name: "members rejects POST", method: "POST", path: cluster.PathMembers, want: http.StatusMethodNotAllowed, allow: []string{"GET"}},
		{name: "placement rejects POST", method: "POST", path: "/v1/cluster/jobs/f-1/placement", want: http.StatusMethodNotAllowed, allow: []string{"GET"}},

		// Body discipline.
		{name: "register malformed JSON", method: "POST", path: cluster.PathRegister, body: `{"id":`, want: http.StatusBadRequest, errJSON: true},
		{name: "register missing fields", method: "POST", path: cluster.PathRegister, body: `{"slots":4}`, want: http.StatusBadRequest, errJSON: true},
		{name: "register oversize body", method: "POST", path: cluster.PathRegister, body: oversize, want: http.StatusBadRequest, errJSON: true},
		{name: "heartbeat malformed JSON", method: "POST", path: cluster.PathHeartbeat, body: `not json`, want: http.StatusBadRequest, errJSON: true},

		// Unknown names.
		{name: "heartbeat unknown worker", method: "POST", path: cluster.PathHeartbeat, body: `{"id":"ghost"}`, want: http.StatusNotFound, errJSON: true},
		{name: "placement unknown job", method: "GET", path: "/v1/cluster/jobs/f-999999/placement", want: http.StatusNotFound, errJSON: true},

		// A worker-only route on a coordinator is unrouted.
		{name: "coordinator does not serve exec", method: "POST", path: cluster.PathExec, body: `{}`, want: http.StatusNotFound},
	})

	engine := fleet.New(fleet.Config{Workers: 1})
	ws := newServer(engine, serverConfig{
		queueDepth:     1,
		executor:       &cluster.Executor{Engine: engine},
		coordinatorURL: "http://coordinator",
	})
	wts := httptest.NewServer(ws.Handler())
	t.Cleanup(wts.Close)

	runConformanceCases(t, wts, []conformanceCase{
		{name: "exec rejects GET", method: "GET", path: cluster.PathExec, want: http.StatusMethodNotAllowed, allow: []string{"POST"}},
		{name: "exec malformed JSON", method: "POST", path: cluster.PathExec, body: `{"spec":`, want: http.StatusBadRequest, errJSON: true},
		{name: "exec invalid job", method: "POST", path: cluster.PathExec, body: `{"spec":{"seeds":[],"seconds":1}}`, want: http.StatusBadRequest, errJSON: true},
		// A coordinator-only route on a worker is unrouted.
		{name: "worker does not serve members", method: "GET", path: cluster.PathMembers, want: http.StatusNotFound},
	})
}

// allowLists reports whether a comma-separated Allow header names the
// method.
func allowLists(allow, method string) bool {
	for _, m := range strings.Split(allow, ",") {
		if strings.TrimSpace(m) == method {
			return true
		}
	}
	return false
}
