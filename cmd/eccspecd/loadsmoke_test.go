package main

// Load-test smoke: drive a real eccspecd subprocess (true TCP stack,
// not httptest) with sustained mixed traffic through the
// internal/loadtest harness and hold the API tier to its SLOs. This is
// also the home of the `make load-smoke` bench: set
// ECCSPEC_BENCH_API_OUT to a path and TestLoadSmoke writes the
// BENCH_api.json snapshot there.

import (
	"context"
	"os"
	"testing"
	"time"

	"eccspec/internal/loadtest"
)

// loadSmokeSLO is the bar the smoke run must clear. Submit p99 covers
// both accepted and shed submissions — backpressure must be as fast as
// admission. The bounds are loose enough for a loaded CI runner but
// tight enough that an accidental O(n) scan or lock convoy in the
// admission path fails the gate.
var loadSmokeSLO = loadtest.SLO{
	SubmitP99Ms:   50,
	ReadP99Ms:     50,
	MinThroughput: 1000,
}

func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess load test")
	}
	// A small queue forces real shedding under the storm so the 429
	// contract is exercised, not just reachable.
	d := startDaemon(t, "-workers 2 -queue 32")

	cfg := loadtest.Config{
		BaseURL:       "http://" + d.addr,
		Duration:      3 * time.Second,
		RPS:           1200,
		Workers:       48,
		SubmitSeconds: 0.01,
		Priority:      3,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	report, err := loadtest.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf testLogWriter
	buf.t = t
	report.Format(&buf)

	if out := os.Getenv("ECCSPEC_BENCH_API_OUT"); out != "" {
		if err := loadtest.WriteSnapshot(out, loadSmokeSLO, report); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}

	if err := report.CheckSLO(loadSmokeSLO); err != nil {
		t.Fatal(err)
	}

	// The storm must actually have exercised the admission paths it
	// claims to prove: conditional reads revalidated, and the mix
	// carried real submission pressure.
	if report.NotModified == 0 {
		t.Error("no conditional read returned 304; caching path not exercised")
	}
	if report.AcceptedSubmits == 0 {
		t.Error("no submission was accepted")
	}
	if report.OpStat(loadtest.OpResults).Count == 0 || report.OpStat(loadtest.OpList).Count == 0 {
		t.Error("mix did not cover all read operations")
	}
}

// testLogWriter routes the report table through t.Log so it lands in
// verbose output and failure dumps.
type testLogWriter struct {
	t   *testing.T
	buf []byte
}

func (w *testLogWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := -1
		for j, b := range w.buf {
			if b == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			return len(p), nil
		}
		w.t.Log(string(w.buf[:i]))
		w.buf = w.buf[i+1:]
	}
}
