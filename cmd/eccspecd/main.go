// Command eccspecd serves fleet simulations over HTTP: a long-running
// daemon that accepts fleet jobs (many chip specimens under one
// workload), fans them out across a worker pool, and reports progress,
// aggregated statistics, per-tick telemetry, and Prometheus metrics.
//
// Usage:
//
//	eccspecd [-addr host:port] [-workers N] [-queue N] [-drain-timeout D]
//	         [-data-dir DIR] [-checkpoint-interval N]
//	         [-retention D] [-max-jobs N] [-chaos-plan FILE]
//	         [-rate-limit R] [-rate-burst N]
//	         [-coordinator | -join URL] [-worker-id ID] [-public-url URL]
//	         [-heartbeat D] [-worker-ttl D] [-worker-wait D]
//	         [-cluster-batch N] [-quarantine-after N] [-probe-delay D]
//	         [-stall-timeout D] [-version]
//
// With -data-dir, the daemon journals every accepted job, per-chip
// result, and periodic simulator checkpoint to DIR/journal.jsonl with
// fsync at commit points. After a crash or kill, restarting on the
// same directory replays the journal: completed fleets serve their
// recorded results, and unfinished fleets resume from each chip's last
// checkpoint — producing final results byte-identical to an
// uninterrupted run. -retention and -max-jobs bound memory by evicting
// old completed jobs.
//
// The daemon degrades rather than dies when the journal stops taking
// writes: if the data dir cannot be opened for writing it is recovered
// read-only, and whenever a commit fails past the store's bounded
// retries the daemon keeps serving recorded results while answering new
// submissions with 503 + Retry-After until writes succeed again
// (watch eccspecd_degraded in /metrics). -chaos-plan arms a
// deterministic fault-injection plan (see internal/faultinject) against
// every run — simulated hardware faults, journal I/O faults, and
// network faults (partitions, slow links, torn or duplicated cluster
// exec streams) alike — for resilience testing. Network faults ride
// the daemon's own RPC clients and listener, so a coordinator or
// worker under a net plan misbehaves exactly where a real network
// would.
//
// Cluster mode scales a fleet past one box. A -coordinator daemon
// accepts the same /v1/fleets API but shards each job's chips across
// the worker daemons registered with it, stealing work from loaded
// workers for idle ones and migrating in-flight chips (with their
// freshest checkpoints) off dead or degraded workers — merged results
// stay byte-identical to a single-node run. A -join URL daemon is a
// worker: it registers with the coordinator, heartbeats its health, and
// executes dispatched chip ranges. With -data-dir, a coordinator also
// journals jobs and chip placement, so restarting it resumes the job as
// its workers re-register.
//
// Admission control keeps the daemon answering under load. Submissions
// enter a bounded priority queue (-queue deep; the request's "priority"
// field, 0..9, orders admissions, FIFO within a class) and a full queue
// sheds with 429 + Retry-After and X-Queue-Depth/X-Queue-Capacity
// headers. -rate-limit applies a per-client token bucket (keyed on the
// Authorization or X-API-Key header, else the remote address) across
// the /v1/fleets endpoints. Fleet listings and per-chip results accept
// limit/offset pagination, and completed /results and /trace responses
// carry ETags, answering If-None-Match with a bodyless 304.
//
// Endpoints:
//
//	POST   /v1/fleets                       submit a fleet job
//	GET    /v1/fleets                       list jobs (limit/offset)
//	GET    /v1/fleets/{id}                  job status and progress
//	DELETE /v1/fleets/{id}                  cancel a queued/running job, or delete a finished one
//	GET    /v1/fleets/{id}/results          aggregated + per-chip results (limit/offset, ETag)
//	GET    /v1/fleets/{id}/trace            per-tick telemetry as CSV (streamed, ETag)
//	GET  /metrics                           Prometheus text format
//	GET  /healthz                           liveness (status, version, role, cluster)
//	POST /v1/cluster/register               (coordinator) worker registration
//	POST /v1/cluster/heartbeat              (coordinator) worker liveness
//	GET  /v1/cluster/members                (coordinator) membership listing
//	GET  /v1/cluster/jobs/{id}/placement    (coordinator) seed -> worker map
//	POST /v1/cluster/exec                   (worker) execute a chip range
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains everything
// already accepted (up to -drain-timeout, then cancels), and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eccspec/internal/cluster"
	"eccspec/internal/faultinject"
	"eccspec/internal/fleet"
	"eccspec/internal/store"
	"eccspec/internal/version"
)

// options carries every flag; run consumes it whole so the flag list
// can grow without the call signature keeping pace.
type options struct {
	addr               string
	workers            int
	queueDepth         int
	drainTimeout       time.Duration
	dataDir            string
	checkpointInterval int
	retention          time.Duration
	maxJobs            int
	chaosPlan          string
	rateLimit          float64
	rateBurst          int

	coordinator     bool
	join            string
	workerID        string
	publicURL       string
	heartbeat       time.Duration
	workerTTL       time.Duration
	workerWait      time.Duration
	clusterBatch    int
	quarantineAfter int
	probeDelay      time.Duration
	stallTimeout    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8347", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "concurrent chip simulations (0 = GOMAXPROCS)")
	flag.IntVar(&o.queueDepth, "queue", 16, "max accepted-but-unstarted fleet jobs")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Minute,
		"how long shutdown waits for in-flight jobs before cancelling them")
	flag.StringVar(&o.dataDir, "data-dir", "",
		"directory for the crash-safe job journal (empty = in-memory only)")
	flag.IntVar(&o.checkpointInterval, "checkpoint-interval", 1000,
		"ticks between per-chip checkpoints when -data-dir is set (0 disables)")
	flag.DurationVar(&o.retention, "retention", 0,
		"evict completed jobs this long after they finish (0 = keep forever)")
	flag.IntVar(&o.maxJobs, "max-jobs", 0,
		"max completed jobs retained, oldest evicted first (0 = unlimited)")
	flag.StringVar(&o.chaosPlan, "chaos-plan", "",
		"JSON fault-injection plan applied to every run (see internal/faultinject)")
	flag.Float64Var(&o.rateLimit, "rate-limit", 0,
		"per-client request rate over /v1/fleets endpoints in req/s (0 = unlimited)")
	flag.IntVar(&o.rateBurst, "rate-burst", 0,
		"per-client burst on top of -rate-limit (0 = derived from the rate)")
	flag.BoolVar(&o.coordinator, "coordinator", false,
		"run as a cluster coordinator: shard fleets across joined workers")
	flag.StringVar(&o.join, "join", "",
		"coordinator URL to join as a worker (e.g. http://coord:8347)")
	flag.StringVar(&o.workerID, "worker-id", "",
		"this worker's cluster identity (default hostname-pid)")
	flag.StringVar(&o.publicURL, "public-url", "",
		"base URL the coordinator dials this worker back on (default http://<listen addr>)")
	flag.DurationVar(&o.heartbeat, "heartbeat", 2*time.Second,
		"worker heartbeat interval in cluster mode")
	flag.DurationVar(&o.workerTTL, "worker-ttl", cluster.DefaultTTL,
		"coordinator declares a worker dead after this long without a heartbeat")
	flag.DurationVar(&o.workerWait, "worker-wait", 30*time.Second,
		"how long a coordinator job waits for a healthy worker before failing")
	flag.IntVar(&o.clusterBatch, "cluster-batch", 16, "max chips per cluster dispatch")
	flag.IntVar(&o.quarantineAfter, "quarantine-after", cluster.DefaultQuarantineAfter,
		"consecutive dispatch failures before a worker is quarantined")
	flag.DurationVar(&o.probeDelay, "probe-delay", cluster.DefaultProbeDelay,
		"wait before a quarantined worker gets a half-open trial dispatch (doubles per failed trial)")
	flag.DurationVar(&o.stallTimeout, "stall-timeout", time.Minute,
		"cancel and re-dispatch an exec stream silent for this long")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("eccspecd %s\n", version.String())
		return
	}
	if err := run(o); err != nil {
		log.Fatalf("eccspecd: %v", err)
	}
}

func run(o options) error {
	if o.coordinator && o.join != "" {
		return fmt.Errorf("-coordinator and -join are mutually exclusive")
	}
	engine := fleet.New(fleet.Config{Workers: o.workers})

	cfg := serverConfig{
		queueDepth:      o.queueDepth,
		checkpointEvery: o.checkpointInterval,
		retention:       o.retention,
		maxJobs:         o.maxJobs,
		rateLimit:       o.rateLimit,
		rateBurst:       o.rateBurst,
	}
	var storeOpts store.Options
	var injector *faultinject.Injector
	var rpcRetry store.RetryPolicy
	if o.chaosPlan != "" {
		plan, err := faultinject.LoadPlan(o.chaosPlan)
		if err != nil {
			return err
		}
		in, err := faultinject.New(plan)
		if err != nil {
			return err
		}
		injector = in
		cfg.injector = in
		storeOpts.WriteHook = in.StoreHook()
		storeOpts.Retry.JitterSeed = plan.Seed
		rpcRetry.JitterSeed = plan.Seed
		log.Printf("eccspecd: chaos plan %s armed (%d faults, seed %d)",
			o.chaosPlan, len(plan.Faults), plan.Seed)
	}
	if o.dataDir != "" {
		st, err := store.Open(o.dataDir, storeOpts)
		if err != nil {
			// A data dir we cannot write (permissions, full or failing
			// disk) must not keep recorded results hostage: fall back to
			// read-only recovery and serve them in degraded mode.
			ro, roErr := store.OpenReadOnly(o.dataDir)
			if roErr != nil {
				return err
			}
			log.Printf("eccspecd: %v; recovered journal read-only", err)
			st = ro
		}
		defer st.Close()
		cfg.store = st
		log.Printf("eccspecd: journaling to %s (checkpoint every %d ticks)", o.dataDir, o.checkpointInterval)
	}

	// Every cluster RPC — coordinator dispatch and worker
	// register/heartbeat alike — rides the bounded transport, wrapped
	// by the chaos injector when a plan carries network faults (the
	// wrapper is the identity otherwise).
	var rpcTransport http.RoundTripper = cluster.NewTransport()
	if injector != nil {
		rpcTransport = injector.Transport(rpcTransport)
	}

	// Pick the runner: jobs simulate on the local worker pool, unless
	// this daemon coordinates a cluster — then they shard across it.
	var jobRunner runner = engine
	if o.coordinator {
		membership := cluster.NewMembership(o.workerTTL)
		membership.SetQuarantinePolicy(o.quarantineAfter, o.probeDelay)
		coord := cluster.New(cluster.Config{
			Membership:   membership,
			MaxBatch:     o.clusterBatch,
			WorkerWait:   o.workerWait,
			StallTimeout: o.stallTimeout,
			Retry:        rpcRetry,
			Transport:    rpcTransport,
		})
		cfg.coordinator = coord
		jobRunner = coord
	}
	if o.join != "" {
		cfg.executor = &cluster.Executor{Engine: engine}
		cfg.coordinatorURL = o.join
	}
	s := newServer(jobRunner, cfg)

	// Install the signal handler before announcing the address: tooling
	// (and tests) treat the "listening on" line as ready-to-signal, so a
	// SIGTERM must never hit the default kill action after it prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if injector != nil {
		// Listener-side partition faults (target "accept") close matched
		// inbound connections at accept time; the wrapper is the
		// identity when the plan has none.
		ln = injector.Listener(ln)
	}
	switch {
	case o.coordinator:
		log.Printf("eccspecd: %s coordinator listening on %s", version.String(), ln.Addr())
	case o.join != "":
		log.Printf("eccspecd: %s worker listening on %s (%d sim workers, coordinator %s)",
			version.String(), ln.Addr(), engine.Workers(), o.join)
	default:
		log.Printf("eccspecd: %s listening on %s (%d sim workers)", version.String(), ln.Addr(), engine.Workers())
	}

	// Slow-client protection: a stalled or malicious peer must not pin
	// connections (and eventually file descriptors) forever. Writes get
	// the most room — result payloads for large fleets take a while on
	// slow links. A cluster worker gets no write timeout at all: its
	// exec streams legitimately stay open for as long as a batch
	// simulates, and cutting one mid-batch would force a pointless
	// migration.
	writeTimeout := 5 * time.Minute
	if o.join != "" {
		writeTimeout = 0
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// A worker announces itself to its coordinator once the listener is
	// up, then heartbeats until shutdown.
	if o.join != "" {
		id := o.workerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		pub := o.publicURL
		if pub == "" {
			pub = "http://" + ln.Addr().String()
		}
		go cluster.RunMember(ctx, cluster.MemberConfig{
			Coordinator: o.join,
			Interval:    o.heartbeat,
			Degraded:    s.health,
			Client:      &http.Client{Timeout: 10 * time.Second, Transport: rpcTransport},
			Info: cluster.RegisterRequest{
				ID:      id,
				URL:     pub,
				Slots:   engine.Workers(),
				Version: version.String(),
			},
		})
	}

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process outright

	log.Printf("eccspecd: shutdown signal; draining in-flight jobs (timeout %v)", o.drainTimeout)
	s.beginDrain()
	select {
	case <-s.drained():
		log.Printf("eccspecd: drained cleanly")
	case <-time.After(o.drainTimeout):
		log.Printf("eccspecd: drain timeout; cancelling in-flight jobs")
		s.cancelJobs()
		<-s.drained()
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}
