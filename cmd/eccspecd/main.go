// Command eccspecd serves fleet simulations over HTTP: a long-running
// daemon that accepts fleet jobs (many chip specimens under one
// workload), fans them out across a worker pool, and reports progress,
// aggregated statistics, per-tick telemetry, and Prometheus metrics.
//
// Usage:
//
//	eccspecd [-addr host:port] [-workers N] [-queue N] [-drain-timeout D]
//
// Endpoints:
//
//	POST /v1/fleets               submit a fleet job
//	GET  /v1/fleets               list jobs
//	GET  /v1/fleets/{id}          job status and progress
//	GET  /v1/fleets/{id}/results  aggregated + per-chip results
//	GET  /v1/fleets/{id}/trace    per-tick telemetry as CSV
//	GET  /metrics                 Prometheus text format
//	GET  /healthz                 liveness (reports "draining" during shutdown)
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains everything
// already accepted (up to -drain-timeout, then cancels), and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eccspec/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	workers := flag.Int("workers", 0, "concurrent chip simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "max accepted-but-unstarted fleet jobs")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute,
		"how long shutdown waits for in-flight jobs before cancelling them")
	flag.Parse()

	if err := run(*addr, *workers, *queue, *drainTimeout); err != nil {
		log.Fatalf("eccspecd: %v", err)
	}
}

func run(addr string, workers, queueDepth int, drainTimeout time.Duration) error {
	engine := fleet.New(fleet.Config{Workers: workers})
	s := newServer(engine, queueDepth)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("eccspecd: listening on %s (%d sim workers)", ln.Addr(), engine.Workers())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process outright

	log.Printf("eccspecd: shutdown signal; draining in-flight jobs (timeout %v)", drainTimeout)
	s.beginDrain()
	select {
	case <-s.drained():
		log.Printf("eccspecd: drained cleanly")
	case <-time.After(drainTimeout):
		log.Printf("eccspecd: drain timeout; cancelling in-flight jobs")
		s.cancelJobs()
		<-s.drained()
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}
