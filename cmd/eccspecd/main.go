// Command eccspecd serves fleet simulations over HTTP: a long-running
// daemon that accepts fleet jobs (many chip specimens under one
// workload), fans them out across a worker pool, and reports progress,
// aggregated statistics, per-tick telemetry, and Prometheus metrics.
//
// Usage:
//
//	eccspecd [-addr host:port] [-workers N] [-queue N] [-drain-timeout D]
//	         [-data-dir DIR] [-checkpoint-interval N]
//	         [-retention D] [-max-jobs N] [-chaos-plan FILE] [-version]
//
// With -data-dir, the daemon journals every accepted job, per-chip
// result, and periodic simulator checkpoint to DIR/journal.jsonl with
// fsync at commit points. After a crash or kill, restarting on the
// same directory replays the journal: completed fleets serve their
// recorded results, and unfinished fleets resume from each chip's last
// checkpoint — producing final results byte-identical to an
// uninterrupted run. -retention and -max-jobs bound memory by evicting
// old completed jobs.
//
// The daemon degrades rather than dies when the journal stops taking
// writes: if the data dir cannot be opened for writing it is recovered
// read-only, and whenever a commit fails past the store's bounded
// retries the daemon keeps serving recorded results while answering new
// submissions with 503 + Retry-After until writes succeed again
// (watch eccspecd_degraded in /metrics). -chaos-plan arms a
// deterministic fault-injection plan (see internal/faultinject) against
// every run — simulated hardware faults and journal I/O faults alike —
// for resilience testing.
//
// Endpoints:
//
//	POST /v1/fleets               submit a fleet job
//	GET  /v1/fleets               list jobs
//	GET  /v1/fleets/{id}          job status and progress
//	GET  /v1/fleets/{id}/results  aggregated + per-chip results
//	GET  /v1/fleets/{id}/trace    per-tick telemetry as CSV
//	GET  /metrics                 Prometheus text format
//	GET  /healthz                 liveness (status, version, persistence)
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains everything
// already accepted (up to -drain-timeout, then cancels), and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eccspec/internal/faultinject"
	"eccspec/internal/fleet"
	"eccspec/internal/store"
	"eccspec/internal/version"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	workers := flag.Int("workers", 0, "concurrent chip simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "max accepted-but-unstarted fleet jobs")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute,
		"how long shutdown waits for in-flight jobs before cancelling them")
	dataDir := flag.String("data-dir", "",
		"directory for the crash-safe job journal (empty = in-memory only)")
	checkpointInterval := flag.Int("checkpoint-interval", 1000,
		"ticks between per-chip checkpoints when -data-dir is set (0 disables)")
	retention := flag.Duration("retention", 0,
		"evict completed jobs this long after they finish (0 = keep forever)")
	maxJobs := flag.Int("max-jobs", 0,
		"max completed jobs retained, oldest evicted first (0 = unlimited)")
	chaosPlan := flag.String("chaos-plan", "",
		"JSON fault-injection plan applied to every run (see internal/faultinject)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("eccspecd %s\n", version.String())
		return
	}
	if err := run(*addr, *workers, *queue, *drainTimeout,
		*dataDir, *checkpointInterval, *retention, *maxJobs, *chaosPlan); err != nil {
		log.Fatalf("eccspecd: %v", err)
	}
}

func run(addr string, workers, queueDepth int, drainTimeout time.Duration,
	dataDir string, checkpointInterval int, retention time.Duration, maxJobs int,
	chaosPlan string) error {
	engine := fleet.New(fleet.Config{Workers: workers})

	cfg := serverConfig{
		queueDepth:      queueDepth,
		checkpointEvery: checkpointInterval,
		retention:       retention,
		maxJobs:         maxJobs,
	}
	var storeOpts store.Options
	if chaosPlan != "" {
		plan, err := faultinject.LoadPlan(chaosPlan)
		if err != nil {
			return err
		}
		in, err := faultinject.New(plan)
		if err != nil {
			return err
		}
		cfg.injector = in
		storeOpts.WriteHook = in.StoreHook()
		storeOpts.Retry.JitterSeed = plan.Seed
		log.Printf("eccspecd: chaos plan %s armed (%d faults, seed %d)",
			chaosPlan, len(plan.Faults), plan.Seed)
	}
	if dataDir != "" {
		st, err := store.Open(dataDir, storeOpts)
		if err != nil {
			// A data dir we cannot write (permissions, full or failing
			// disk) must not keep recorded results hostage: fall back to
			// read-only recovery and serve them in degraded mode.
			ro, roErr := store.OpenReadOnly(dataDir)
			if roErr != nil {
				return err
			}
			log.Printf("eccspecd: %v; recovered journal read-only", err)
			st = ro
		}
		defer st.Close()
		cfg.store = st
		log.Printf("eccspecd: journaling to %s (checkpoint every %d ticks)", dataDir, checkpointInterval)
	}
	s := newServer(engine, cfg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("eccspecd: %s listening on %s (%d sim workers)", version.String(), ln.Addr(), engine.Workers())

	// Slow-client protection: a stalled or malicious peer must not pin
	// connections (and eventually file descriptors) forever. Writes get
	// the most room — result payloads for large fleets take a while on
	// slow links.
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process outright

	log.Printf("eccspecd: shutdown signal; draining in-flight jobs (timeout %v)", drainTimeout)
	s.beginDrain()
	select {
	case <-s.drained():
		log.Printf("eccspecd: drained cleanly")
	case <-time.After(drainTimeout):
		log.Printf("eccspecd: drain timeout; cancelling in-flight jobs")
		s.cancelJobs()
		<-s.drained()
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}
