package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eccspec"
	"eccspec/internal/admission"
	"eccspec/internal/cluster"
	"eccspec/internal/engine"
	"eccspec/internal/faultinject"
	"eccspec/internal/fleet"
	"eccspec/internal/policy"
	"eccspec/internal/store"
	"eccspec/internal/version"
)

// runner abstracts where a fleet's chips actually simulate: the local
// worker pool (fleet.Engine) or a cluster of worker daemons
// (cluster.Coordinator). Both return ordered, byte-identical results,
// so the rest of the daemon cannot tell them apart.
type runner interface {
	Run(ctx context.Context, job fleet.Job, onProgress func(done, total int)) ([]fleet.ChipResult, error)
}

// maxFleetChips bounds a single submission so one request cannot pin
// the daemon's memory with millions of per-chip results.
const maxFleetChips = 4096

// maxBodyBytes bounds a request body; a fleet submission within the
// chip cap fits comfortably in 1 MiB.
const maxBodyBytes = 1 << 20

// degradedRetryAfter is the Retry-After hint sent with 503s while the
// journal is unwritable.
const degradedRetryAfter = "30"

// shedRetryAfter is the Retry-After hint sent with 429s when the job
// queue sheds a submission: jobs take seconds, so a short client
// backoff is the right order of magnitude.
const shedRetryAfter = "5"

// Job lifecycle states.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
)

// fleetRequest is the POST /v1/fleets body. Seeds may be given
// explicitly, or as a contiguous range via chips + base_seed.
type fleetRequest struct {
	Seeds            []uint64 `json:"seeds,omitempty"`
	Chips            int      `json:"chips,omitempty"`
	BaseSeed         uint64   `json:"base_seed,omitempty"`
	Workload         string   `json:"workload,omitempty"`
	Policy           string   `json:"policy,omitempty"`
	Fidelity         string   `json:"fidelity,omitempty"`
	Priority         int      `json:"priority,omitempty"`
	Seconds          float64  `json:"seconds"`
	HighVoltagePoint bool     `json:"high_voltage_point,omitempty"`
	FullGeometry     bool     `json:"full_geometry,omitempty"`
	Uncore           bool     `json:"uncore,omitempty"`
	TraceEvery       int      `json:"trace_every,omitempty"`
}

// job converts the request into a fleet.Job.
func (r fleetRequest) job() (fleet.Job, error) {
	seeds := r.Seeds
	if len(seeds) == 0 && r.Chips > 0 {
		for i := 0; i < r.Chips; i++ {
			seeds = append(seeds, r.BaseSeed+uint64(i))
		}
	}
	if len(seeds) > maxFleetChips {
		return fleet.Job{}, fmt.Errorf("fleet of %d chips exceeds the %d-chip cap", len(seeds), maxFleetChips)
	}
	j := fleet.Job{
		Seeds:            seeds,
		Workload:         r.Workload,
		Policy:           r.Policy,
		Fidelity:         r.Fidelity,
		Priority:         r.Priority,
		Seconds:          r.Seconds,
		HighVoltagePoint: r.HighVoltagePoint,
		FullGeometry:     r.FullGeometry,
		Uncore:           r.Uncore,
		TraceEvery:       r.TraceEvery,
	}
	return j, j.Validate()
}

// fleetJob is one tracked submission. All mutable fields are guarded
// by the server mutex.
type fleetJob struct {
	ID        string
	Num       uint64 // numeric id (the store key); ID is "f-<Num>"
	Req       fleetRequest
	Job       fleet.Job
	Status    string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	ChipsDone int
	Results   []fleet.ChipResult
	Summary   *fleet.Summary
	Err       string

	// Etag is set once the job reaches a terminal immutable state
	// (done/failed): completed results never change, so conditional
	// GETs can skip re-serializing them.
	Etag string
	// cancel aborts this job's in-flight simulation; set while running.
	cancel context.CancelFunc
	// userCanceled marks a DELETE-initiated cancellation: the job is
	// evicted from the store instead of resuming on restart.
	userCanceled bool
}

// serverConfig tunes a server beyond its engine.
type serverConfig struct {
	// queueDepth bounds accepted-but-unstarted jobs; <= 0 selects 16.
	queueDepth int
	// store, when non-nil, persists jobs and checkpoints across daemon
	// restarts.
	store *store.Store
	// checkpointEvery is the per-chip snapshot interval in control
	// ticks when a store is attached; <= 0 disables checkpointing.
	checkpointEvery int
	// retention evicts completed jobs this long after they finish;
	// 0 disables the TTL.
	retention time.Duration
	// maxJobs caps retained completed jobs, evicting the oldest first;
	// 0 disables the cap.
	maxJobs int
	// rateLimit grants each client this many requests/second across the
	// /v1/fleets endpoints; 0 disables rate limiting.
	rateLimit float64
	// rateBurst is the per-client burst above rateLimit; 0 derives it
	// from the rate.
	rateBurst int
	// injector, when non-nil, delivers a chaos plan's simulated-hardware
	// faults into every chip run (-chaos-plan).
	injector *faultinject.Injector
	// coordinator, when non-nil, marks this daemon a cluster
	// coordinator: jobs run through it instead of the local engine,
	// and the /v1/cluster registry endpoints are served.
	coordinator *cluster.Coordinator
	// executor, when non-nil, marks this daemon a cluster worker: it
	// serves POST /v1/cluster/exec for its coordinator.
	executor *cluster.Executor
	// coordinatorURL is the coordinator a worker daemon reports to
	// (shown on /healthz).
	coordinatorURL string
	// now substitutes the clock (tests); nil selects time.Now.
	now func() time.Time
}

// server is the eccspecd HTTP daemon: a job table, a bounded queue,
// and a single runner goroutine dispatching fleets onto the engine's
// worker pool. With a store attached, accepted jobs and per-chip
// progress survive daemon crashes: on startup the journal is replayed,
// completed fleets serve their recorded results, and unfinished fleets
// re-enter the queue to continue from their last checkpoints.
type server struct {
	engine  runner
	metrics *metrics
	mux     *http.ServeMux
	cfg     serverConfig
	now     func() time.Time

	runCtx    context.Context
	cancelRun context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*fleetJob
	order    []string
	nextID   uint64
	draining bool

	// degraded is set while the journal cannot take writes (persistent
	// I/O failure or a read-only data dir): existing results keep being
	// served, new submissions get 503 + Retry-After, and the flag clears
	// on the next successful commit. degradedReason holds the cause
	// (a string) for /healthz and cluster heartbeats.
	degraded       atomic.Bool
	degradedReason atomic.Value

	// queue is the bounded admission queue feeding the runner: higher
	// Job.Priority pops first, FIFO within a class, and a full queue
	// sheds submissions with 429 + queue-depth headers.
	queue *admission.Queue[*fleetJob]
	// limiter is the per-client token bucket over /v1/fleets traffic;
	// nil when rate limiting is disabled.
	limiter    *admission.Limiter
	runnerDone chan struct{}
}

// newServer wires the routes, recovers persisted jobs, and starts the
// runner.
func newServer(engine runner, cfg serverConfig) *server {
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 16
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		engine:     engine,
		metrics:    newMetrics(),
		mux:        http.NewServeMux(),
		cfg:        cfg,
		now:        cfg.now,
		runCtx:     ctx,
		cancelRun:  cancel,
		jobs:       make(map[string]*fleetJob),
		runnerDone: make(chan struct{}),
	}
	s.degradedReason.Store("")

	// Recover persisted jobs before sizing the queue: every unfinished
	// job must fit back into it without blocking startup.
	var resume []*fleetJob
	if cfg.store != nil {
		if cfg.store.ReadOnly() {
			s.degraded.Store(true)
			s.degradedReason.Store("data directory is read-only")
			log.Printf("eccspecd: data dir is read-only; serving existing results only (degraded)")
		}
		resume = s.recover()
	}
	depth := cfg.queueDepth
	if depth < len(resume) {
		depth = len(resume)
	}
	s.queue = admission.NewQueue[*fleetJob](depth)
	for _, j := range resume {
		s.queue.Push(j, j.Job.Priority)
	}
	s.limiter = admission.NewLimiter(cfg.rateLimit, cfg.rateBurst)
	s.evict()

	s.mux.HandleFunc("POST /v1/fleets", s.limited(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/fleets", s.limited(s.handleList))
	s.mux.HandleFunc("GET /v1/fleets/{id}", s.limited(s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/fleets/{id}", s.limited(s.handleCancel))
	s.mux.HandleFunc("GET /v1/fleets/{id}/results", s.limited(s.handleResults))
	s.mux.HandleFunc("GET /v1/fleets/{id}/trace", s.limited(s.handleTrace))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.coordinator != nil {
		s.mux.HandleFunc("POST "+cluster.PathRegister, s.handleClusterRegister)
		s.mux.HandleFunc("POST "+cluster.PathHeartbeat, s.handleClusterHeartbeat)
		s.mux.HandleFunc("GET "+cluster.PathMembers, s.handleClusterMembers)
		s.mux.HandleFunc("GET /v1/cluster/jobs/{id}/placement", s.handleClusterPlacement)
	}
	if cfg.executor != nil {
		// The worker shares its local observability with dispatched
		// chips: tick metrics move and a configured chaos plan fires
		// exactly as for locally submitted fleets.
		cfg.executor.Observers = s.chipObservers
		s.mux.HandleFunc("POST "+cluster.PathExec, s.handleClusterExec)
	}
	go s.runner()
	return s
}

// role names what this daemon is in a cluster, if anything.
func (s *server) role() string {
	switch {
	case s.cfg.coordinator != nil:
		return "coordinator"
	case s.cfg.executor != nil:
		return "worker"
	default:
		return ""
	}
}

// chipObservers builds the per-chip engine observers every simulation
// on this daemon carries — local fleets and cluster-dispatched chips
// alike: batched tick counting for /metrics, plus the chaos injector
// when one is armed.
func (s *server) chipObservers(seed uint64) []engine.Observer {
	obs := []engine.Observer{&engine.CountTicks{Add: func(delta int64) { s.metrics.simTicks.Add(delta) }}}
	if in := s.cfg.injector; in != nil {
		obs = append(obs, in.Observer(seed))
	}
	return obs
}

// recover rebuilds the job table from the store: completed jobs come
// back with their recorded results, unfinished jobs are returned for
// re-enqueueing (their finished chips are served from the store and
// the rest resume from their last checkpoints in runJob). The caller
// must not yet have started the runner.
func (s *server) recover() []*fleetJob {
	var resume []*fleetJob
	for _, rec := range s.cfg.store.Jobs() {
		j := &fleetJob{
			ID:  fmt.Sprintf("f-%d", rec.ID),
			Num: rec.ID,
			Job: rec.Spec,
		}
		if rec.Completed {
			at := time.Unix(rec.CompletedUnix, 0)
			j.Submitted, j.Started, j.Finished = at, at, at
			j.ChipsDone = len(rec.Chips)
			j.Results = resultsFromRecord(rec)
			sum := fleet.Summarize(j.Results)
			j.Summary = &sum
			if sum.Failed == sum.Chips {
				j.Status = statusFailed
				j.Err = "all chips failed"
			} else {
				j.Status = statusDone
			}
			// Completed results are immutable, and the tag's inputs
			// (id, chip count, completion stamp) are journaled, so a
			// restarted daemon reissues the same ETag and client caches
			// stay valid across restarts.
			j.Etag = etagFor(j)
		} else {
			j.Submitted = s.now()
			j.Status = statusQueued
			j.ChipsDone = len(rec.Chips)
			resume = append(resume, j)
			log.Printf("eccspecd: recovered unfinished fleet %s (%d/%d chips done, %d checkpoints)",
				j.ID, len(rec.Chips), len(rec.Spec.Seeds), len(rec.Checkpoints))
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if rec.ID > s.nextID {
			s.nextID = rec.ID
		}
	}
	return resume
}

// resultsFromRecord reconstructs the ordered per-chip results of a
// stored job. A seed whose record is missing or unreadable carries an
// error result rather than poisoning the whole job.
func resultsFromRecord(rec store.JobRecord) []fleet.ChipResult {
	out := make([]fleet.ChipResult, 0, len(rec.Spec.Seeds))
	for _, seed := range rec.Spec.Seeds {
		ch, ok := rec.Chips[seed]
		if !ok {
			out = append(out, fleet.ChipResult{Seed: seed, Err: fmt.Errorf("result missing from store")})
			continue
		}
		r, err := ch.ToResult()
		if err != nil {
			r = fleet.ChipResult{Seed: seed, Err: fmt.Errorf("stored result unreadable: %v", err)}
		}
		out = append(out, r)
	}
	return out
}

// evict applies the retention policy: completed jobs past the TTL go
// first, then the oldest completed jobs beyond the max-jobs cap.
// Queued and running jobs are never evicted.
func (s *server) evict() {
	now := s.now()
	s.mu.Lock()
	type cand struct {
		id  string
		num uint64
		fin time.Time
	}
	var completed []cand
	for _, id := range s.order {
		j := s.jobs[id]
		if j.Status == statusDone || j.Status == statusFailed || j.Status == statusCanceled {
			completed = append(completed, cand{id: id, num: j.Num, fin: j.Finished})
		}
	}
	sort.Slice(completed, func(i, k int) bool { return completed[i].fin.Before(completed[k].fin) })
	doomed := make(map[string]cand)
	if ttl := s.cfg.retention; ttl > 0 {
		for _, c := range completed {
			if now.Sub(c.fin) > ttl {
				doomed[c.id] = c
			}
		}
	}
	if cap := s.cfg.maxJobs; cap > 0 {
		keep := len(completed) - len(doomed)
		for _, c := range completed {
			if keep <= cap {
				break
			}
			if _, dup := doomed[c.id]; !dup {
				doomed[c.id] = c
				keep--
			}
		}
	}
	var evicted []cand
	if len(doomed) > 0 {
		kept := s.order[:0]
		for _, id := range s.order {
			if c, ok := doomed[id]; ok {
				delete(s.jobs, id)
				evicted = append(evicted, c)
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	s.mu.Unlock()
	for _, c := range evicted {
		s.metrics.jobsEvicted.Add(1)
		if s.cfg.store != nil {
			if err := s.cfg.store.EvictJob(c.num); err != nil {
				log.Printf("eccspecd: evicting fleet %s from store: %v", c.id, err)
			}
		}
	}
}

func (s *server) Handler() http.Handler { return s.mux }

// beginDrain stops accepting new jobs and lets the runner finish the
// queue. Safe to call more than once.
func (s *server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	s.queue.Close()
}

// drained is closed once the runner has finished every accepted job.
func (s *server) drained() <-chan struct{} { return s.runnerDone }

// cancelJobs aborts in-flight simulation (drain-timeout escape hatch).
func (s *server) cancelJobs() { s.cancelRun() }

// noteStore tracks journal health from commit outcomes: any write error
// (after the store's own bounded retries) flips the daemon into degraded
// mode, the next success lifts it. Returns err for convenience.
func (s *server) noteStore(err error) error {
	if err != nil {
		s.degradedReason.Store("journal write failed: " + err.Error())
		if !s.degraded.Swap(true) {
			log.Printf("eccspecd: journal write failed; entering degraded mode: %v", err)
		}
	} else if s.degraded.Swap(false) {
		s.degradedReason.Store("")
		log.Printf("eccspecd: journal writes recovered; leaving degraded mode")
	}
	return err
}

// health reports the degraded flag together with its cause.
func (s *server) health() (degraded bool, reason string) {
	reason, _ = s.degradedReason.Load().(string)
	return s.degraded.Load(), reason
}

// runner executes queued fleets one at a time, highest priority first;
// each fleet fans its chips out across the engine's worker pool.
func (s *server) runner() {
	defer close(s.runnerDone)
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

func (s *server) runJob(j *fleetJob) {
	s.mu.Lock()
	// A DELETE that raced the pop (the job left the queue before Remove
	// could see it) lands here: honor it before simulating anything.
	if j.userCanceled {
		j.Status = statusCanceled
		j.Err = "canceled by client"
		j.Finished = s.now()
		num := j.Num
		s.mu.Unlock()
		s.dropFromStore(num)
		return
	}
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	j.cancel = cancel
	j.Status = statusRunning
	j.Started = s.now()
	s.mu.Unlock()

	// With a store attached: serve already-finished chips from their
	// records, resume the rest from their last checkpoints, and persist
	// chips and checkpoints as the run progresses.
	job := j.Job
	prior := make(map[uint64]fleet.ChipResult)
	if st := s.cfg.store; st != nil {
		if rec, ok := st.Job(j.Num); ok {
			for seed, ch := range rec.Chips {
				if r, err := ch.ToResult(); err == nil {
					prior[seed] = r
				}
			}
			var remaining []uint64
			for _, seed := range job.Seeds {
				if _, done := prior[seed]; !done {
					remaining = append(remaining, seed)
				}
			}
			job.Seeds = remaining
			if len(rec.Checkpoints) > 0 {
				job.Resume = make(map[uint64][]byte)
				for _, seed := range remaining {
					if blob, ok := rec.Checkpoints[seed]; ok {
						job.Resume[seed] = blob
					}
				}
			}
		}
		job.CheckpointEvery = s.cfg.checkpointEvery
		job.OnCheckpoint = func(seed uint64, ticks int, blob []byte) {
			if err := s.noteStore(st.RecordCheckpoint(j.Num, seed, ticks, blob)); err != nil {
				log.Printf("eccspecd: checkpointing %s seed %d: %v", j.ID, seed, err)
			}
		}
		job.OnResult = func(res fleet.ChipResult) {
			// Cancelled or errored chips stay unrecorded so a restart
			// re-runs them; a recorded chip never re-runs.
			if res.Err != nil {
				return
			}
			if err := s.noteStore(st.RecordChip(j.Num, store.FromResult(res))); err != nil {
				log.Printf("eccspecd: recording %s seed %d: %v", j.ID, res.Seed, err)
			}
		}
		// Cluster placement rides the journal too (the coordinator
		// calls OnAssign on every dispatch; the local engine never
		// does), so `eccspec cluster placement` works across a
		// coordinator restart. Not a commit point — losing one costs
		// placement history only.
		job.OnAssign = func(seed uint64, worker string) {
			if err := s.noteStore(st.RecordAssignment(j.Num, seed, worker)); err != nil {
				log.Printf("eccspecd: recording assignment %s seed %d -> %s: %v", j.ID, seed, worker, err)
			}
		}
	}

	// Live simulation telemetry: each chip's run carries a batched
	// tick-counting observer feeding the Prometheus counter, so
	// /metrics moves while fleets are in flight instead of jumping at
	// job completion. A configured chaos plan rides the same hook.
	// (In coordinator mode the chips simulate on the workers, which
	// wire the same observers into their own runs; the coordinator
	// ignores this hook.)
	job.Observers = s.chipObservers

	priorDone := len(prior)
	s.mu.Lock()
	j.ChipsDone = priorDone
	s.mu.Unlock()

	var fresh []fleet.ChipResult
	var err error
	if len(job.Seeds) > 0 {
		fresh, err = s.engine.Run(ctx, job, func(done, total int) {
			s.metrics.chipsSimulated.Add(1)
			s.mu.Lock()
			j.ChipsDone = priorDone + done
			s.mu.Unlock()
		})
	}
	for _, r := range fresh {
		if r.Err != nil {
			s.metrics.chipsFailed.Add(1)
		}
		s.metrics.fidelityFFTicks.Add(r.FastForwardTicks)
		s.metrics.fidelityDropbacks.Add(r.FidelityDropbacks)
	}

	// Merge stored and fresh results back into submission seed order so
	// a recovered run reports chips identically to an uninterrupted one.
	bySeed := make(map[uint64]fleet.ChipResult, len(fresh))
	for _, r := range fresh {
		bySeed[r.Seed] = r
	}
	results := make([]fleet.ChipResult, 0, len(j.Job.Seeds))
	for _, sd := range j.Job.Seeds {
		if r, ok := prior[sd]; ok {
			results = append(results, r)
		} else if r, ok := bySeed[sd]; ok {
			results = append(results, r)
		} else {
			results = append(results, fleet.ChipResult{Seed: sd, Err: fmt.Errorf("chip was not simulated")})
		}
	}
	sum := fleet.Summarize(results)

	s.mu.Lock()
	j.Finished = s.now()
	j.Results = results
	j.Summary = &sum
	j.cancel = nil
	switch {
	case err != nil:
		j.Status = statusCanceled
		if j.userCanceled {
			j.Err = "canceled by client"
		} else {
			j.Err = err.Error()
		}
		s.metrics.jobsFailed.Add(1)
	case sum.Failed == sum.Chips:
		j.Status = statusFailed
		j.Err = "all chips failed"
		s.metrics.jobsFailed.Add(1)
	default:
		j.Status = statusDone
		s.metrics.jobsDone.Add(1)
	}
	if j.Status == statusDone || j.Status == statusFailed {
		j.Etag = etagFor(j)
	}
	status := j.Status
	finished := j.Finished
	userCanceled := j.userCanceled
	s.mu.Unlock()

	// A cancelled job is deliberately NOT marked done: a restarted
	// daemon re-enqueues it and continues from its checkpoints — unless
	// the client canceled it, in which case it leaves the store too.
	switch {
	case s.cfg.store != nil && status != statusCanceled:
		if err := s.noteStore(s.cfg.store.MarkJobDone(j.Num, finished.Unix())); err != nil {
			log.Printf("eccspecd: marking %s done: %v", j.ID, err)
		}
	case status == statusCanceled && userCanceled:
		s.dropFromStore(j.Num)
	}
	s.evict()
}

// dropFromStore removes a client-canceled job's record so a restarted
// daemon does not resurrect it.
func (s *server) dropFromStore(num uint64) {
	if s.cfg.store == nil {
		return
	}
	if err := s.cfg.store.EvictJob(num); err != nil {
		log.Printf("eccspecd: evicting canceled fleet f-%d from store: %v", num, err)
	}
}

// --- HTTP handlers ------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// clientKey identifies a client for rate limiting: the API token when
// one is presented (Authorization or X-API-Key header), otherwise the
// remote address without its ephemeral port.
func clientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		return auth
	}
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// limited wraps a /v1 handler with the per-client rate limit. A nil
// limiter (rate limiting disabled) admits everything.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ok, retry := s.limiter.Allow(clientKey(r))
		if !ok {
			secs := int(retry/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			s.metrics.rateLimited.Add(1)
			writeError(w, http.StatusTooManyRequests,
				"client rate limit exceeded (%g req/s, burst %d); retry in %ds",
				s.limiter.Rate(), s.limiter.Burst(), secs)
			return
		}
		h(w, r)
	}
}

// etagFor derives a completed job's entity tag. Every input is stable
// across daemon restarts (the completion stamp is journaled), so the
// tag is too.
func etagFor(j *fleetJob) string {
	return fmt.Sprintf("%q", fmt.Sprintf("%s-%d-%d-%s", j.ID, len(j.Results), j.Finished.Unix(), j.Status))
}

// etagVariant derives a tag for an alternate representation of the
// same resource (a page window, a filtered trace) by folding the
// variant discriminator into the base tag.
func etagVariant(base, variant string) string {
	if variant == "" {
		return base
	}
	return base[:len(base)-1] + ";" + variant + `"`
}

// etagMatches implements the If-None-Match comparison: a literal `*`
// or any listed tag equal to etag.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// pageParams parses the limit/offset pagination query parameters.
// set reports whether the client asked for a window at all; limit 0
// with set=true means "from offset to the end".
func pageParams(r *http.Request) (offset, limit int, set bool, err error) {
	q := r.URL.Query()
	if v := q.Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, false, fmt.Errorf("bad offset %q", v)
		}
		set = true
	}
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, 0, false, fmt.Errorf("bad limit %q (want a positive integer)", v)
		}
		set = true
	}
	return offset, limit, set, nil
}

// pageWindow clips [offset, offset+limit) to n items, returning the
// window bounds; limit 0 extends to the end.
func pageWindow(n, offset, limit int) (lo, hi int) {
	if offset > n {
		offset = n
	}
	hi = n
	if limit > 0 && offset+limit < n {
		hi = offset + limit
	}
	return offset, hi
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := req.job()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining; not accepting new fleets")
		return
	}
	s.nextID++
	j := &fleetJob{
		ID:        fmt.Sprintf("f-%d", s.nextID),
		Num:       s.nextID,
		Req:       req,
		Job:       job,
		Status:    statusQueued,
		Submitted: s.now(),
	}
	// Persist the accepted job before acknowledging it: once the client
	// sees 202, a daemon crash no longer loses the submission. A commit
	// failure (the store has already burned its retry budget, or is
	// read-only) flips the daemon degraded and answers 503 + Retry-After;
	// the store rolls the job back out of memory, so nothing phantom
	// remains on either side. The attempt doubles as the recovery probe:
	// the first submission the healed journal commits clears the flag.
	if s.cfg.store != nil {
		if err := s.noteStore(s.cfg.store.AddJob(j.Num, job)); err != nil {
			s.nextID--
			s.mu.Unlock()
			w.Header().Set("Retry-After", degradedRetryAfter)
			writeError(w, http.StatusServiceUnavailable,
				"degraded: persisting job: %v; existing results remain available", err)
			return
		}
	}
	if err := s.queue.Push(j, job.Priority); err != nil {
		if s.cfg.store != nil {
			s.cfg.store.EvictJob(j.Num)
		}
		s.nextID--
		s.mu.Unlock()
		depth, capacity := s.queue.Depth(), s.queue.Capacity()
		w.Header().Set("Retry-After", shedRetryAfter)
		w.Header().Set("X-Queue-Depth", strconv.Itoa(depth))
		w.Header().Set("X-Queue-Capacity", strconv.Itoa(capacity))
		s.metrics.jobsShed.Add(1)
		writeError(w, http.StatusTooManyRequests, "job queue is full (%d/%d); retry later", depth, capacity)
		return
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.metrics.jobsSubmitted.Add(1)
	st := s.statusLocked(j)
	s.mu.Unlock()

	w.Header().Set("Location", "/v1/fleets/"+j.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// jobStatus is the wire form of a job's progress.
type jobStatus struct {
	ID         string  `json:"id"`
	Status     string  `json:"status"`
	Workload   string  `json:"workload,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	Fidelity   string  `json:"fidelity,omitempty"`
	Priority   int     `json:"priority,omitempty"`
	Seconds    float64 `json:"seconds"`
	ChipsTotal int     `json:"chips_total"`
	ChipsDone  int     `json:"chips_done"`
	Submitted  string  `json:"submitted_at"`
	ElapsedS   float64 `json:"elapsed_s,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// statusLocked snapshots a job; the caller holds s.mu.
func (s *server) statusLocked(j *fleetJob) jobStatus {
	st := jobStatus{
		ID:         j.ID,
		Status:     j.Status,
		Workload:   j.Job.Workload,
		Policy:     j.Job.Policy,
		Fidelity:   j.Job.Fidelity,
		Priority:   j.Job.Priority,
		Seconds:    j.Job.Seconds,
		ChipsTotal: len(j.Job.Seeds),
		ChipsDone:  j.ChipsDone,
		Submitted:  j.Submitted.UTC().Format(time.RFC3339Nano),
		Error:      j.Err,
	}
	switch {
	case !j.Finished.IsZero():
		st.ElapsedS = j.Finished.Sub(j.Started).Seconds()
	case !j.Started.IsZero():
		st.ElapsedS = time.Since(j.Started).Seconds()
	}
	return st
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	offset, limit, paged, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	total := len(s.order)
	lo, hi := pageWindow(total, offset, limit)
	out := make([]jobStatus, 0, hi-lo)
	for _, id := range s.order[lo:hi] {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	resp := map[string]any{"fleets": out, "total": total}
	if paged {
		resp["offset"] = lo
		if hi < total {
			resp["next_offset"] = hi
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCancel implements DELETE /v1/fleets/{id}. A job still waiting
// in the queue is removed immediately (it never starts), a running job
// has its simulation canceled, and a finished job is deleted from the
// table and the store.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	if j == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no fleet %q", r.PathValue("id"))
		return
	}
	switch j.Status {
	case statusQueued:
		j.userCanceled = true
		if _, ok := s.queue.Remove(func(x *fleetJob) bool { return x == j }); ok {
			j.Status = statusCanceled
			j.Err = "canceled by client"
			j.Finished = s.now()
			num := j.Num
			st := s.statusLocked(j)
			s.mu.Unlock()
			s.metrics.jobsCanceled.Add(1)
			s.dropFromStore(num)
			writeJSON(w, http.StatusOK, st)
			return
		}
		// The runner popped the job between our status read and the
		// Remove; userCanceled is already set, so runJob either skips
		// it at startup or the cancel below catches it mid-flight.
		fallthrough
	case statusRunning:
		j.userCanceled = true
		cancel := j.cancel
		st := s.statusLocked(j)
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.metrics.jobsCanceled.Add(1)
		// 202: cancellation is underway; the job reaches "canceled"
		// once the workers unwind.
		writeJSON(w, http.StatusAccepted, st)
	default:
		// Terminal states: DELETE removes the record entirely.
		delete(s.jobs, j.ID)
		for i, id := range s.order {
			if id == j.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		num := j.Num
		s.mu.Unlock()
		s.dropFromStore(num)
		writeJSON(w, http.StatusOK, map[string]string{"id": j.ID, "status": "deleted"})
	}
}

// lookup fetches a job by path id, writing a 404 on a miss.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *fleetJob {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no fleet %q", r.PathValue("id"))
	}
	return j
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// chipJSON is the wire form of one chip's outcome.
type chipJSON struct {
	Seed         uint64    `json:"seed"`
	Error        string    `json:"error,omitempty"`
	AvgReduction float64   `json:"avg_reduction,omitempty"`
	DomainVdd    []float64 `json:"domain_vdd,omitempty"`
	UncoreVdd    float64   `json:"uncore_vdd,omitempty"`
	AvgPowerW    float64   `json:"avg_power_w,omitempty"`
	Ticks        int       `json:"ticks"`
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	offset, limit, paged, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.Summary == nil {
		writeError(w, http.StatusConflict, "fleet %s is %s; results are available once it finishes", j.ID, j.Status)
		return
	}
	// Completed results are immutable: answer conditional GETs with a
	// bare 304 before any of the response is serialized. The tag varies
	// with the page window because the representation does.
	if j.Etag != "" {
		variant := ""
		if paged {
			variant = fmt.Sprintf("o%d-l%d", offset, limit)
		}
		etag := etagVariant(j.Etag, variant)
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			s.metrics.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	sum := j.Summary
	resp := map[string]any{
		"id":             j.ID,
		"status":         j.Status,
		"policy":         policy.Resolve(j.Job.Policy),
		"chips":          sum.Chips,
		"failed":         sum.Failed,
		"nominal_v":      sum.NominalV,
		"mean_reduction": sum.MeanReduction,
		"min_reduction":  sum.MinReduction,
		"max_reduction":  sum.MaxReduction,
		"mean_power_w":   sum.MeanPowerW,
		"total_ticks":    sum.TotalTicks,
		"errors":         sum.Errors,
	}
	if sum.DomainVddHist != nil {
		resp["domain_vdd_hist"] = map[string]any{
			"lo_v":   sum.DomainVddHist.Lo,
			"hi_v":   sum.DomainVddHist.Hi,
			"counts": sum.DomainVddHist.Counts,
		}
	}
	lo, hi := pageWindow(len(j.Results), offset, limit)
	if !paged {
		lo, hi = 0, len(j.Results)
	}
	chips := make([]chipJSON, 0, hi-lo)
	for _, c := range j.Results[lo:hi] {
		cj := chipJSON{Seed: c.Seed, Ticks: c.Ticks}
		if c.Err != nil {
			cj.Error = c.Err.Error()
		} else {
			cj.AvgReduction = c.AvgReduction
			cj.DomainVdd = c.DomainVdd
			cj.UncoreVdd = c.UncoreVdd
			cj.AvgPowerW = c.AvgPowerW
		}
		chips = append(chips, cj)
	}
	resp["per_chip"] = chips
	if paged {
		page := map[string]any{"offset": lo, "returned": hi - lo}
		if hi < len(j.Results) {
			page["next_offset"] = hi
		}
		resp["page"] = page
	}
	s.metrics.resultEncodes.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	var seedFilter *uint64
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q", q)
			return
		}
		seedFilter = &v
	}

	s.mu.Lock()
	if j.Summary == nil {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "fleet %s is %s; the trace is available once it finishes", j.ID, j.Status)
		return
	}
	results := j.Results
	etag := j.Etag
	s.mu.Unlock()

	// A completed fleet's trace is as immutable as its results; the tag
	// varies with the seed filter because the representation does.
	if etag != "" {
		variant := "trace"
		if seedFilter != nil {
			variant = fmt.Sprintf("trace-s%d", *seedFilter)
		}
		etag = etagVariant(etag, variant)
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			s.metrics.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}

	found := false
	for _, c := range results {
		if c.Trace != nil && (seedFilter == nil || c.Seed == *seedFilter) {
			found = true
			break
		}
	}
	if !found {
		writeError(w, http.StatusNotFound, "fleet %s recorded no matching trace (submit with trace_every > 0)", j.ID)
		return
	}

	// Stream the CSV in chunks instead of letting it pile up in the
	// response buffer: a million-chip trace is gigabytes, so rows are
	// rendered into a small reused buffer and pushed to the client
	// (bufio flush + http.Flusher) every traceFlushRows rows. The
	// daemon's memory use is bounded by one chunk regardless of fleet
	// size, and slow clients see data immediately.
	w.Header().Set("Content-Type", "text/csv")
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriterSize(w, 64<<10)
	fmt.Fprintf(bw, "seed,time,%s\n", joinColumns())
	rows := 0
	var buf []byte
	for _, c := range results {
		if c.Trace == nil || (seedFilter != nil && c.Seed != *seedFilter) {
			continue
		}
		for i := 0; i < c.Trace.Len(); i++ {
			buf = strconv.AppendUint(buf[:0], c.Seed, 10)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, c.Trace.Time(i), 'g', -1, 64)
			for col := range fleet.TraceColumns {
				buf = append(buf, ',')
				buf = strconv.AppendFloat(buf, c.Trace.Value(i, col), 'g', -1, 64)
			}
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return // client went away; nothing sensible left to do
			}
			rows++
			if rows%traceFlushRows == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	}
	bw.Flush()
}

// traceFlushRows is how many CSV rows accumulate between explicit
// flushes of the trace stream.
const traceFlushRows = 4096

func joinColumns() string {
	out := ""
	for i, c := range fleet.TraceColumns {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, running := 0, 0
	for _, j := range s.jobs {
		switch j.Status {
		case statusQueued:
			queued++
		case statusRunning:
			running++
		}
	}
	s.mu.Unlock()
	var retries int64
	if s.cfg.store != nil {
		retries = s.cfg.store.Retries()
	}
	var cl *clusterScrape
	if c := s.cfg.coordinator; c != nil {
		st := c.Stats()
		cl = &clusterScrape{
			dispatches:     st.Dispatches,
			chipsDone:      st.ChipsDone,
			remoteTicks:    st.RemoteTicks,
			chipsStolen:    st.ChipsStolen,
			chipsMigrated:  st.ChipsMigrated,
			retries:        st.Retries,
			streamsStalled: st.StreamsStalled,
			dupEvents:      st.DupEvents,
			quarantines:    c.Membership().Quarantines(),
		}
		counts := c.Membership().Counts()
		cl.workersHealthy = counts.Healthy
		cl.workersDegraded = counts.Degraded
		cl.workersQuarantined = counts.Quarantined
		cl.workersDead = counts.Dead
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, scrape{
		queued:       queued,
		running:      running,
		queueDepth:   s.queue.Depth(),
		queueCap:     s.queue.Capacity(),
		degraded:     s.degraded.Load(),
		storeRetries: retries,
		cluster:      cl,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	degraded, reason := s.health()
	status := "ok"
	switch {
	case draining:
		status = "draining"
	case degraded:
		status = "degraded"
	}
	resp := map[string]any{
		"status":     status,
		"version":    version.String(),
		"persistent": s.cfg.store != nil,
		"degraded":   degraded,
		"policies":   policy.Names(),
		"fidelities": []string{eccspec.FidelityFull, eccspec.FidelityAdaptive},
		"queue": map[string]int{
			"depth":    s.queue.Depth(),
			"capacity": s.queue.Capacity(),
		},
	}
	if s.limiter != nil {
		resp["rate_limit"] = map[string]any{
			"rate":  s.limiter.Rate(),
			"burst": s.limiter.Burst(),
		}
	}
	if degraded {
		resp["degraded_reason"] = reason
	}
	if role := s.role(); role != "" {
		resp["role"] = role
	}
	if c := s.cfg.coordinator; c != nil {
		counts := c.Membership().Counts()
		resp["cluster"] = map[string]any{
			"workers_total":       counts.Healthy + counts.Degraded + counts.Quarantined + counts.Dead,
			"workers_healthy":     counts.Healthy,
			"workers_degraded":    counts.Degraded,
			"workers_quarantined": counts.Quarantined,
			"workers_dead":        counts.Dead,
		}
	}
	if s.cfg.executor != nil {
		resp["coordinator"] = s.cfg.coordinatorURL
	}
	writeJSON(w, http.StatusOK, resp)
}
