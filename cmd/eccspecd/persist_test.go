package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// daemon is one subprocess instance of eccspecd started through the
// re-exec trick in TestMain.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches the test binary as eccspecd with extra flags
// and waits for its listen address.
func startDaemon(t *testing.T, extraArgs string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "ECCSPECD_MAIN=1", "ECCSPECD_ARGS="+extraArgs)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.Fields(line[i+len("listening on "):])[0]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, addr: addr}
	case <-time.After(time.Minute):
		t.Fatal("daemon never reported its address")
		return nil
	}
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// sigkill kills the daemon outright — no drain, no flush beyond what
// the journal already pushed to the kernel.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func (d *daemon) post(t *testing.T, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(d.url(path), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.url(path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// waitStatus polls a fleet until it reaches a terminal state.
func (d *daemon) waitStatus(t *testing.T, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, body := d.get(t, "/v1/fleets/"+id)
		if code == http.StatusOK {
			var st map[string]any
			json.Unmarshal(body, &st)
			switch st["status"] {
			case statusDone, statusFailed, statusCanceled:
				return st
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("fleet %s did not finish", id)
	return nil
}

const persistFleetBody = `{"seeds":[81,82,83],"workload":"jbb-8wh","seconds":0.06,"trace_every":10}`

// TestKillRestartByteIdenticalResults is the subsystem's acceptance
// test: a daemon SIGKILLed mid-fleet and restarted on the same data
// directory must finish the fleet from its checkpoints and serve final
// per-chip results byte-identical to a never-interrupted daemon's. It
// also proves completed results survive a kill: the baseline daemon is
// killed after finishing and must serve its recorded results on
// restart.
func TestKillRestartByteIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}

	// --- Baseline: uninterrupted run, then kill-after-done. ---
	dirA := t.TempDir()
	d1 := startDaemon(t, "-data-dir "+dirA+" -checkpoint-interval 20")
	code, sub := d1.post(t, "/v1/fleets", persistFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: HTTP %d: %v", code, sub)
	}
	id := sub["id"].(string)
	if st := d1.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("baseline finished as %v", st["status"])
	}
	code, baseline := d1.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("baseline results: HTTP %d", code)
	}
	code, baselineTrace := d1.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("baseline trace: HTTP %d", code)
	}
	d1.sigkill(t)

	// Restart on the same directory: the finished fleet must be served
	// from the journal without re-simulation, byte-identically.
	d2 := startDaemon(t, "-data-dir "+dirA)
	code, body := d2.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results after restart: HTTP %d: %s", code, body)
	}
	if string(body) != string(baseline) {
		t.Fatalf("recovered results differ from original:\noriginal:\n%s\nrecovered:\n%s", baseline, body)
	}
	code, traceBody := d2.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK || string(traceBody) != string(baselineTrace) {
		t.Fatalf("recovered trace differs (HTTP %d)", code)
	}
	d2.sigkill(t)

	// --- Interrupted run: SIGKILL mid-fleet, restart, resume. ---
	dirB := t.TempDir()
	d3 := startDaemon(t, "-data-dir "+dirB+" -checkpoint-interval 20")
	code, sub = d3.post(t, "/v1/fleets", persistFleetBody)
	if code != http.StatusAccepted {
		t.Fatalf("interrupted submit: HTTP %d: %v", code, sub)
	}
	if iid := sub["id"].(string); iid != id {
		t.Fatalf("interrupted run got id %s, baseline %s", iid, id)
	}

	// Kill as soon as the journal holds at least one checkpoint, so the
	// restart genuinely resumes mid-chip. If the fleet finishes first
	// the test still passes but exercises only the completed path, so
	// fail loudly instead.
	journal := filepath.Join(dirB, store.JournalName)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared in the journal")
		}
		data, err := os.ReadFile(journal)
		if err == nil && strings.Contains(string(data), `"t":"ckpt"`) {
			if strings.Contains(string(data), `"t":"done"`) {
				t.Fatal("fleet finished before the kill; lower seconds or the checkpoint interval")
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	d3.sigkill(t)

	d4 := startDaemon(t, "-data-dir "+dirB+" -checkpoint-interval 20")
	if st := d4.waitStatus(t, id); st["status"] != statusDone {
		t.Fatalf("resumed fleet finished as %v", st["status"])
	}
	code, resumed := d4.get(t, "/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("resumed results: HTTP %d", code)
	}
	if string(resumed) != string(baseline) {
		t.Fatalf("resumed results differ from uninterrupted run:\nuninterrupted:\n%s\nresumed:\n%s", baseline, resumed)
	}
	code, resumedTrace := d4.get(t, "/v1/fleets/"+id+"/trace")
	if code != http.StatusOK || string(resumedTrace) != string(baselineTrace) {
		t.Fatalf("resumed trace differs (HTTP %d):\nuninterrupted:\n%s\nresumed:\n%s", code, baselineTrace, resumedTrace)
	}
}

// fakeClock is a mutable test clock safe for concurrent reads.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestCompletedJobEviction exercises the memory bound: the max-jobs
// cap evicts the oldest completed fleets, and the retention TTL evicts
// once the (injected) clock passes it. Running/queued jobs are immune.
func TestCompletedJobEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	st, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := newServer(fleet.New(fleet.Config{Workers: 2}), serverConfig{
		queueDepth: 8,
		store:      st,
		retention:  time.Hour,
		maxJobs:    2,
		now:        clk.now,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	submit := func(seed int) string {
		t.Helper()
		code, sub := postFleet(t, ts, fmt.Sprintf(`{"seeds":[%d],"seconds":0.01}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d: %v", code, sub)
		}
		id := sub["id"].(string)
		waitDone(t, ts, id)
		return id
	}

	// Four quick fleets; the cap of 2 must leave only the newest two.
	ids := []string{submit(201), submit(202), submit(203), submit(204)}
	code, list := getJSON(t, ts.URL+"/v1/fleets")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	fleets, _ := list["fleets"].([]any)
	if len(fleets) != 2 {
		t.Fatalf("retained %d fleets, want 2 (cap): %v", len(fleets), list)
	}
	for _, id := range ids[:2] {
		if code, _ := getJSON(t, ts.URL+"/v1/fleets/"+id); code != http.StatusNotFound {
			t.Errorf("evicted fleet %s still served (HTTP %d)", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code, _ := getJSON(t, ts.URL+"/v1/fleets/"+id+"/results"); code != http.StatusOK {
			t.Errorf("retained fleet %s not served (HTTP %d)", id, code)
		}
	}
	// The store agrees with the job table.
	if got := len(st.Jobs()); got != 2 {
		t.Fatalf("store retains %d jobs, want 2", got)
	}

	// Advance past the TTL; the next completion sweeps the rest.
	clk.advance(2 * time.Hour)
	last := submit(205)
	code, list = getJSON(t, ts.URL+"/v1/fleets")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	fleets, _ = list["fleets"].([]any)
	if len(fleets) != 1 {
		t.Fatalf("retained %d fleets after TTL, want 1: %v", len(fleets), list)
	}
	if first, _ := fleets[0].(map[string]any); first["id"] != last {
		t.Fatalf("survivor is %v, want %s", first["id"], last)
	}

	// The eviction counter made it to the metrics page.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "eccspecd_jobs_evicted_total 4") {
		t.Fatalf("metrics missing eviction count:\n%s", body)
	}
}

// TestHealthzVersion checks the daemon reports its version and
// persistence mode.
func TestHealthzVersion(t *testing.T) {
	_, ts := newTestServer(t)
	code, h := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if v, _ := h["version"].(string); v == "" {
		t.Fatalf("healthz has no version: %v", h)
	}
	if p, ok := h["persistent"].(bool); !ok || p {
		t.Fatalf("persistent = %v, want false without a store", h["persistent"])
	}
}
