package main

// FuzzSubmitFleet throws arbitrary bytes at the submit endpoint — the
// daemon's only write path — and holds it to the admission contract:
// the response is always one of {202, 400, 413, 429}, always a JSON
// envelope, a 202 always carries an id and Location, and the handler
// never panics or wedges regardless of input. Runs in `make
// fuzz-smoke` alongside the snapshot/journal corruption targets.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func FuzzSubmitFleet(f *testing.F) {
	// Seeds: the legitimate shapes, each protocol edge, and a few
	// near-misses around the validation boundaries.
	seeds := []string{
		`{"seeds":[1,2,3],"seconds":0.01}`,
		`{"chips":4,"base_seed":100,"seconds":0.01,"priority":9}`,
		`{"seeds":[1],"priority":10}`,
		`{"seeds":[1],"priority":-1}`,
		`{"seeds":[],"seconds":1}`,
		`{}`,
		``,
		`{"seeds":[1`,
		`not json at all`,
		`{"seeds":[1],"seconds":-5}`,
		`{"seeds":[1],"trace_every":100,"workload":"mcf"}`,
		`{"seeds":[18446744073709551615],"seconds":0.01}`,
		`[1,2,3]`,
		`"seeds"`,
		`{"seeds":[1],"unknown_field":{"a":[null]}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	stub := &stubRunner{} // nil gate: jobs complete immediately
	s := newServer(stub, serverConfig{queueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(ts.Close)

	allowed := map[int]bool{
		http.StatusAccepted:              true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
	}

	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(ts.URL+"/v1/fleets", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		if !allowed[resp.StatusCode] {
			t.Fatalf("submit %q = HTTP %d (body %q), want one of 202/400/413/429", clip(body), resp.StatusCode, raw)
		}
		var env map[string]any
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("submit %q: response is not JSON: %q", clip(body), raw)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			id, _ := env["id"].(string)
			if id == "" {
				t.Fatalf("202 without an id: %q", raw)
			}
			if loc := resp.Header.Get("Location"); loc != "/v1/fleets/"+id {
				t.Fatalf("202 Location = %q, want /v1/fleets/%s", loc, id)
			}
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After")
			}
		default:
			if msg, _ := env["error"].(string); msg == "" {
				t.Fatalf("HTTP %d without an error envelope: %q", resp.StatusCode, raw)
			}
		}
	})
}

// clip bounds a fuzz input in failure messages.
func clip(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
