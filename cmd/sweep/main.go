// Command sweep characterizes a simulated chip the way §II of the paper
// characterizes the Itanium: it runs the stress test on one core at a
// time, lowers that core's rail in 5 mV steps, and prints the first-
// correctable-error voltage, the minimum safe voltage, and the
// speculation ranges for every core.
//
// Usage:
//
//	sweep [-seed N] [-full] [-high] [-ticks N]
package main

import (
	"flag"
	"fmt"
	"os"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "chip seed")
	full := flag.Bool("full", false, "full Table I cache geometry")
	high := flag.Bool("high", false, "use the 2.53 GHz / 1.1 V operating point")
	ticks := flag.Int("ticks", 30, "control ticks to dwell per voltage level")
	flag.Parse()

	c := chip.New(chip.DefaultParams(*seed, !*high, *full))
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), *seed)
	}
	nominal := c.P.Point.NominalVdd
	fmt.Printf("chip seed %d, %s point, nominal %.3f V, %d ticks/level\n\n",
		*seed, c.P.Point.Name, nominal, *ticks)
	fmt.Printf("%-6s  %-11s  %-10s  %-14s  %-10s\n",
		"core", "first error", "min safe", "error-free", "corr range")

	for id := range c.Cores {
		s := sweep(c, id, *ticks, *seed)
		errFree, corr := "n/a", "n/a"
		if s.firstErr > 0 {
			errFree = fmt.Sprintf("%.0f mV", 1000*(nominal-s.firstErr))
			corr = fmt.Sprintf("%.0f mV", 1000*(s.firstErr-s.minSafe))
		}
		fmt.Printf("core %d  %-11s  %-10s  %-14s  %-10s\n",
			id, fmtV(s.firstErr), fmtV(s.minSafe), errFree, corr)
	}
}

func fmtV(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f V", v)
}

type result struct {
	firstErr float64
	minSafe  float64
}

// sweep runs the per-core characterization protocol.
func sweep(c *chip.Chip, coreID, ticks int, seed uint64) result {
	co := c.Cores[coreID]
	co.SetWorkload(workload.StressTest(), seed)
	dom := c.DomainOf(coreID)
	nominal := c.P.Point.NominalVdd
	out := result{minSafe: nominal}
	for v := nominal; v > 0.3; v -= dom.Rail.Params().StepV {
		dom.Rail.SetTarget(v)
		for _, cid := range dom.CoreIDs {
			if cid != coreID {
				c.Cores[cid].Revive()
			}
		}
		crashed := false
		engine.Ticks(c, nil, ticks, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			cr := rep.Cores[coreID]
			if cr.CorrectedD+cr.CorrectedI+cr.CorrectedRF > 0 && out.firstErr == 0 {
				out.firstErr = v
			}
			crashed = cr.Fatal
			return !crashed
		})
		if crashed {
			break
		}
		out.minSafe = v
	}
	dom.Rail.SetTarget(nominal)
	for _, cid := range dom.CoreIDs {
		c.Cores[cid].Revive()
	}
	co.SetWorkload(workload.Idle(), seed)
	if out.minSafe == nominal {
		fmt.Fprintf(os.Stderr, "sweep: core %d never crashed above 0.3 V\n", coreID)
	}
	return out
}
