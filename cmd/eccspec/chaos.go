package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"eccspec/internal/cluster"
	"eccspec/internal/engine"
	"eccspec/internal/faultinject"
	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// chaosCmd runs a fault-injection scenario end to end and prints a
// deterministic report: the same scenario and seed produce byte-for-byte
// identical output, which is the injector's replayability contract.
func chaosCmd(ctx context.Context, args []string) error {
	if len(args) > 0 && args[0] == "list" {
		for _, sc := range faultinject.Scenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Description)
		}
		return nil
	}

	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	planPath := fs.String("plan", "", "JSON fault plan to run instead of a named scenario")
	seed := fs.Uint64("seed", 0, "replace the scenario's chip seeds with this one (0 = keep)")
	seconds := fs.Float64("seconds", 0, "override the simulated duration (0 = keep)")
	wl := fs.String("workload", "", "override the scenario workload (empty = keep)")
	var name string
	rest := args
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		name, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}

	var sc faultinject.Scenario
	switch {
	case name != "" && *planPath != "":
		return fmt.Errorf("chaos: give a scenario name or -plan, not both")
	case name != "":
		var ok bool
		if sc, ok = faultinject.ScenarioByName(name); !ok {
			var names []string
			for _, s := range faultinject.Scenarios() {
				names = append(names, s.Name)
			}
			return fmt.Errorf("chaos: unknown scenario %q (valid: %s)", name, strings.Join(names, ", "))
		}
	case *planPath != "":
		plan, err := faultinject.LoadPlan(*planPath)
		if err != nil {
			return err
		}
		sc = faultinject.Scenario{Name: "custom", Workload: "stress-test",
			Seconds: 0.3, Seeds: []uint64{42}, Plan: plan}
	default:
		return fmt.Errorf("chaos: a scenario name or -plan is required (try `eccspec chaos list`)")
	}
	if *seed != 0 {
		sc.Seeds = []uint64{*seed}
	}
	if *seconds != 0 {
		sc.Seconds = *seconds
	}
	if *wl != "" {
		sc.Workload = *wl
	}

	in, err := faultinject.New(sc.Plan)
	if err != nil {
		return err
	}
	fmt.Printf("chaos scenario %s: workload=%s seconds=%g seeds=%v plan-seed=%d\n",
		sc.Name, sc.Workload, sc.Seconds, sc.Seeds, sc.Plan.Seed)
	for _, f := range sc.Plan.Faults {
		fmt.Printf("  fault: %-28s start=%d duration=%d\n", f, f.Start, f.Duration)
	}

	// Simulation plane: one worker so chips run in a fixed order.
	results, err := fleet.New(fleet.Config{Workers: 1}).Run(ctx, fleet.Job{
		Seeds:    sc.Seeds,
		Workload: sc.Workload,
		Seconds:  sc.Seconds,
		Observers: func(chipSeed uint64) []engine.Observer {
			return []engine.Observer{in.Observer(chipSeed)}
		},
	}, nil)
	if err != nil {
		return err
	}

	// Journal plane: persist the run through the same injector's store
	// hook, so planned I/O faults hit real commit points, then prove the
	// journal survived by replaying it fresh.
	var retries int64
	replayed := -1
	if sc.Plan.HasStoreFaults() {
		dir, err := os.MkdirTemp("", "eccspec-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{
			WriteHook: in.StoreHook(),
			Retry:     store.RetryPolicy{JitterSeed: sc.Plan.Seed},
		})
		if err != nil {
			return err
		}
		spec := fleet.Job{Seeds: sc.Seeds, Workload: sc.Workload, Seconds: sc.Seconds}
		if err := st.AddJob(1, spec); err != nil {
			return fmt.Errorf("chaos: journaling job: %w", err)
		}
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			if err := st.RecordChip(1, store.FromResult(r)); err != nil {
				return fmt.Errorf("chaos: journaling chip %d: %w", r.Seed, err)
			}
		}
		if err := st.MarkJobDone(1, 0); err != nil {
			return fmt.Errorf("chaos: journaling completion: %w", err)
		}
		retries = st.Retries()
		if err := st.Close(); err != nil {
			return err
		}
		re, err := store.Open(dir, store.Options{})
		if err != nil {
			return fmt.Errorf("chaos: journal did not replay: %w", err)
		}
		if jobs := re.Jobs(); len(jobs) == 1 {
			replayed = len(jobs[0].Chips)
		}
		re.Close()
	}

	// Network plane: re-run the fleet through an in-process loopback
	// cluster whose dispatch transport rides the same injector, then
	// byte-compare the merged results against the single-node run.
	var netReport *clusterPlaneReport
	if sc.Plan.HasNetFaults() {
		netReport, err = runClusterPlane(ctx, sc, in, results)
		if err != nil {
			return err
		}
	}

	fmt.Println("injected events:")
	for _, ev := range in.Events() {
		switch {
		case ev.Fault.Kind == faultinject.StoreError || ev.Fault.Kind == faultinject.StoreSlow:
			fmt.Printf("  op %-4d %-5s %s\n", ev.Tick, ev.Phase, ev.Fault)
		case strings.HasPrefix(string(ev.Fault.Kind), "net-"):
			fmt.Printf("  rpc %-4d %-5s %s\n", ev.Tick, ev.Phase, ev.Fault)
		default:
			fmt.Printf("  chip %d tick %-4d %-5s %s\n", ev.Chip, ev.Tick, ev.Phase, ev.Fault)
		}
	}

	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("chip %d: ERROR: %v\n", r.Seed, r.Err)
			continue
		}
		var vdd []string
		for _, v := range r.DomainVdd {
			vdd = append(vdd, fmt.Sprintf("%.3f", v))
		}
		fmt.Printf("chip %d: ticks=%d vdd=[%s] emergencies=%d fail-safe=%v reduction=%.1f%%\n",
			r.Seed, r.Ticks, strings.Join(vdd, " "), r.Emergencies, r.FailSafe,
			100*r.AvgReduction)
	}
	if sc.Plan.HasStoreFaults() {
		fmt.Printf("journal: %d retried commit points", retries)
		if replayed >= 0 {
			fmt.Printf("; clean replay with %d chip records\n", replayed)
		} else {
			fmt.Println("; REPLAY FAILED")
		}
	}
	if netReport != nil {
		st := netReport.stats
		// DupEvents counts raw duplicated stream lines, which include
		// timing-dependent keepalives — report engagement, not the count,
		// so the output stays byte-identical across runs.
		dedupe := "idle"
		if st.DupEvents > 0 {
			dedupe = "engaged"
		}
		fmt.Printf("cluster: %d dispatches, %d retries, %d migrated, %d stalled, dedupe %s, %d quarantines\n",
			st.Dispatches, st.Retries, st.ChipsMigrated, st.StreamsStalled, dedupe, netReport.quarantines)
		for _, w := range netReport.members {
			fmt.Printf("  worker %-4s %s (%d chips done)\n", w.ID, w.State, w.ChipsDone)
		}
		if !netReport.identical {
			return fmt.Errorf("chaos: cluster results DIVERGED from the single-node run")
		}
		fmt.Println("cluster results byte-identical to the single-node run")
	}
	return nil
}

// clusterPlaneReport is what the network plane contributes to the
// chaos report.
type clusterPlaneReport struct {
	stats       cluster.Stats
	members     []cluster.Member
	quarantines int64
	identical   bool
}

// runClusterPlane re-runs the scenario's fleet through an in-process
// loopback cluster — a coordinator plus sc.Workers real Executors over
// real TCP — with the injector armed on the dispatch transport, and
// byte-compares the merged results against the single-node run.
func runClusterPlane(ctx context.Context, sc faultinject.Scenario, in *faultinject.Injector, want []fleet.ChipResult) (*clusterPlaneReport, error) {
	workers := sc.Workers
	if workers == 0 {
		workers = 2
	}
	m := cluster.NewMembership(time.Minute)
	m.SetQuarantinePolicy(sc.QuarantineAfter, sc.ProbeDelay)
	var servers []*http.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < workers; i++ {
		ex := &cluster.Executor{
			Engine: fleet.New(fleet.Config{Workers: 2}),
			Observers: func(seed uint64) []engine.Observer {
				return []engine.Observer{in.Observer(seed)}
			},
			KeepAlive: 100 * time.Millisecond,
		}
		mux := http.NewServeMux()
		mux.HandleFunc("POST "+cluster.PathExec, ex.HandleExec)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: mux}
		servers = append(servers, srv)
		go srv.Serve(ln)
		m.Join(cluster.RegisterRequest{
			ID: fmt.Sprintf("w%d", i+1), URL: "http://" + ln.Addr().String(), Slots: 2,
		})
	}
	coord := cluster.New(cluster.Config{
		Membership:   m,
		MaxBatch:     2,
		WorkerWait:   10 * time.Second,
		Poll:         5 * time.Millisecond,
		StallTimeout: 5 * time.Second,
		Retry: store.RetryPolicy{
			BaseDelay:  10 * time.Millisecond,
			MaxDelay:   200 * time.Millisecond,
			JitterSeed: sc.Plan.Seed,
		},
		Transport: in.Transport(cluster.NewTransport()),
		Logf:      func(string, ...any) {},
	})
	got, err := coord.Run(ctx, fleet.Job{
		Seeds: sc.Seeds, Workload: sc.Workload, Seconds: sc.Seconds,
	}, nil)
	if err != nil {
		return nil, err
	}
	identical := len(got) == len(want)
	for i := 0; identical && i < len(got); i++ {
		a, _ := json.Marshal(store.FromResult(got[i]))
		b, _ := json.Marshal(store.FromResult(want[i]))
		identical = bytes.Equal(a, b)
	}
	return &clusterPlaneReport{
		stats:       coord.Stats(),
		members:     m.Snapshot(),
		quarantines: m.Quarantines(),
		identical:   identical,
	}, nil
}
