package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// stubCoordinator serves canned membership and placement responses.
func stubCoordinator(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/members", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"workers":[
			{"id":"w1","url":"http://h1:1","state":"healthy","slots":4,"age_s":60,"last_heartbeat_ago_s":1.5,"chips_done":12,"chips_in_flight":2},
			{"id":"w2","url":"http://h2:1","state":"dead","reason":"heartbeat TTL expired","slots":2,"age_s":60,"last_heartbeat_ago_s":31,"chips_done":3,"chips_in_flight":0}
		]}`))
	})
	mux.HandleFunc("GET /v1/cluster/jobs/f-1/placement", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"f-1","status":"done","placement":{"81":"w1","82":"w2","83":"w1"}}`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no fleet \"f-9\""}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestClusterMembersCommand(t *testing.T) {
	ts := stubCoordinator(t)
	out, err := capture(t, func() error {
		return run([]string{"cluster", "members", "-addr", ts.URL})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"w1", "healthy", "w2", "dead (heartbeat TTL expired)", "http://h1:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("members output missing %q:\n%s", want, out)
		}
	}
}

func TestClusterPlacementCommand(t *testing.T) {
	ts := stubCoordinator(t)
	out, err := capture(t, func() error {
		return run([]string{"cluster", "placement", "f-1", "-addr", ts.URL})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fleet f-1 (done): 3 placed seeds") {
		t.Errorf("placement header wrong:\n%s", out)
	}
	// Seeds print in ascending order with their workers.
	i81, i82, i83 := strings.Index(out, "81"), strings.Index(out, "82"), strings.Index(out, "83")
	if i81 < 0 || i82 < i81 || i83 < i82 {
		t.Errorf("placement rows out of order:\n%s", out)
	}
}

func TestClusterCommandErrors(t *testing.T) {
	ts := stubCoordinator(t)
	if err := run([]string{"cluster"}); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("bare cluster: err = %v", err)
	}
	if err := run([]string{"cluster", "placement", "-addr", ts.URL}); err == nil ||
		!strings.Contains(err.Error(), "fleet id required") {
		t.Errorf("placement without id: err = %v", err)
	}
	// A coordinator-side error surfaces its JSON message.
	err := run([]string{"cluster", "placement", "f-9", "-addr", ts.URL})
	if err == nil || !strings.Contains(err.Error(), "no fleet") {
		t.Errorf("missing fleet: err = %v", err)
	}
}
