package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"eccspec"
	"eccspec/internal/experiments"
)

// compareCmd races speculation policies head to head:
//
//	eccspec compare [-policies a,b,c] [-workloads w1,w2] [-seed N] [-fast] [-full] [-json]
//
// With no -policies every registered policy runs; with no -workloads the
// default set does. Output is a text table, or the full machine-readable
// report with -json.
func compareCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	policies := fs.String("policies", "",
		"comma-separated policy names (empty = all registered: "+strings.Join(eccspec.PolicyNames(), ",")+")")
	workloads := fs.String("workloads", "",
		"comma-separated workload names (empty = "+strings.Join(experiments.DefaultCompareWorkloads, ",")+")")
	seed := fs.Uint64("seed", 1, "chip seed (selects the simulated specimen)")
	fast := fs.Bool("fast", false, "shorten measurement windows ~10x")
	full := fs.Bool("full", false, "use the full Table I cache geometry")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("compare: unexpected arguments %s (policies and workloads are flags)",
			strings.Join(fs.Args(), " "))
	}
	rep, err := experiments.RunPolicyCompare(ctx, experiments.PolicyCompareOptions{
		Seed:      *seed,
		Policies:  splitList(*policies),
		Workloads: splitList(*workloads),
		Fast:      *fast,
		Full:      *full,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("== policy race: seed %d, %d measure ticks ==\n", rep.Seed, rep.MeasureTicks)
	return rep.Table().Render(os.Stdout)
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
