// Command eccspec runs the paper-reproduction experiments.
//
// Usage:
//
//	eccspec list
//	eccspec run <id>... [-seed N] [-full] [-fast] [-csv dir] [-plot] [-json]
//	eccspec run all
//	eccspec run -checkpoint f [-seconds S] [-workload W] [-seed N] [-full] [-uncore]
//	eccspec run -resume f [-seconds S] [-checkpoint f2]
//	eccspec seeds <id> [-n N]    # distribution across chip specimens
//	eccspec report [-fast]       # Markdown summary of every experiment
//	eccspec chaos list           # fault-injection scenario catalog
//	eccspec chaos <scenario>     # replay a scenario deterministically
//	eccspec cluster members [-addr URL]
//	eccspec cluster placement <fleet-id> [-addr URL]
//	eccspec version
//
// Each experiment id corresponds to one table or figure of the paper
// (fig1..fig18, tab1, tab2) or an auxiliary study (retention, aging,
// temp). See DESIGN.md for the experiment index.
//
// With -checkpoint and no experiment ids, run performs a direct
// closed-loop simulation (calibrate, then speculate for -seconds) and
// writes a versioned, CRC-protected snapshot of the full simulator
// state to the file. -resume loads such a snapshot and continues for
// -seconds more; a resumed run is byte-identical to one that was never
// interrupted, so the two can be split at any checkpoint boundary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"eccspec"
	"eccspec/internal/experiments"
	"eccspec/internal/plot"
	"eccspec/internal/snapshot"
	"eccspec/internal/version"
)

func main() {
	// A first Ctrl-C stops cleanly between experiments/seeds and prints
	// the partial results; stop() restores the default handler so a
	// second Ctrl-C kills a run that is stuck inside one experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eccspec:", err)
		os.Exit(1)
	}
}

// run keeps the context-free entry point used by tests.
func run(args []string) error { return runCtx(context.Background(), args) }

func runCtx(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no command")
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	case "run":
		return runCmd(ctx, args[1:])
	case "compare":
		return compareCmd(ctx, args[1:])
	case "seeds":
		return seedsCmd(ctx, args[1:])
	case "report":
		return reportCmd(ctx, args[1:])
	case "chaos":
		return chaosCmd(ctx, args[1:])
	case "cluster":
		return clusterCmd(args[1:])
	case "loadtest":
		return loadtestCmd(ctx, args[1:])
	case "version", "-version", "--version":
		fmt.Printf("eccspec %s\n", version.String())
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// interrupted reports whether the user asked to stop, and says so once
// on stderr when they did.
func interrupted(ctx context.Context, what string, done, total int) bool {
	if ctx.Err() == nil {
		return false
	}
	fmt.Fprintf(os.Stderr, "eccspec: interrupted after %d/%d %s; partial results follow\n", done, total, what)
	return true
}

// seedsCmd runs one experiment across many chip seeds and reports the
// distribution of every metric — the process-variation view of a result.
// Ctrl-C stops after the current seed and reports the seeds finished so
// far.
func seedsCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("seeds", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of chip seeds to sample")
	full := fs.Bool("full", false, "use the full Table I cache geometry")
	fast := fs.Bool("fast", true, "shorten measurement windows ~10x")
	var ids []string
	rest := args
	for len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if len(ids) != 1 {
		return fmt.Errorf("seeds: exactly one experiment id required")
	}
	e, ok := experiments.ByID(ids[0])
	if !ok {
		return fmt.Errorf("unknown experiment %q", ids[0])
	}
	agg := map[string][]float64{}
	var names []string
	seedsDone := 0
	for seed := 1; seed <= *n; seed++ {
		if interrupted(ctx, "seeds", seedsDone, *n) {
			break
		}
		res, err := e.Run(experiments.Options{Seed: uint64(seed), Full: *full, Fast: *fast})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		for name, v := range res.Metrics {
			if _, seen := agg[name]; !seen {
				names = append(names, name)
			}
			agg[name] = append(agg[name], v)
		}
		seedsDone++
		fmt.Fprintf(os.Stderr, "seed %d/%d done\n", seed, *n)
	}
	if seedsDone == 0 {
		return fmt.Errorf("interrupted before any seed finished")
	}
	sort.Strings(names)
	fmt.Printf("%s across %d chip seeds:\n", ids[0], seedsDone)
	fmt.Printf("%-28s %12s %12s %12s\n", "metric", "mean", "min", "max")
	for _, name := range names {
		vs := agg[name]
		mean, lo, hi := vs[0], vs[0], vs[0]
		sum := 0.0
		for _, v := range vs {
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mean = sum / float64(len(vs))
		fmt.Printf("%-28s %12.5g %12.5g %12.5g\n", name, mean, lo, hi)
	}
	return nil
}

// reportCmd runs every experiment and emits a Markdown summary table —
// the raw material for refreshing EXPERIMENTS.md after model changes.
// Ctrl-C stops after the current experiment, leaving a valid partial
// table.
func reportCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "chip seed")
	full := fs.Bool("full", false, "use the full Table I cache geometry")
	fast := fs.Bool("fast", false, "shorten measurement windows ~10x")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, Full: *full, Fast: *fast}
	fmt.Println("| Id | Paper | Result |")
	fmt.Println("|---|---|---|")
	all := experiments.All()
	for i, e := range all {
		if interrupted(ctx, "experiments", i, len(all)) {
			break
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Printf("| %s | %s | ERROR: %v |\n", e.ID, e.Paper, err)
			continue
		}
		fmt.Printf("| %s | %s | %s |\n", e.ID, e.Paper, res.Headline)
	}
	return nil
}

func runCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "chip seed (selects the simulated specimen)")
	full := fs.Bool("full", false, "use the full Table I cache geometry (slower)")
	fast := fs.Bool("fast", false, "shorten measurement windows ~10x")
	csvDir := fs.String("csv", "", "directory to write time-series CSVs into")
	doPlot := fs.Bool("plot", false, "render time-series results as ASCII charts")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of text tables")
	checkpoint := fs.String("checkpoint", "", "write a simulator snapshot to this file after a direct run")
	resume := fs.String("resume", "", "continue a direct run from a snapshot file")
	seconds := fs.Float64("seconds", 0.5, "simulated seconds for a direct -checkpoint/-resume run")
	workloadName := fs.String("workload", "", "workload for a direct run (empty = characterization stress test)")
	policyName := fs.String("policy", "", "speculation policy for a direct run (empty = paper; see `eccspec compare` for the registry)")
	fidelity := fs.String("fidelity", "", "event-sampling fidelity for a direct run: full (default) or adaptive")
	uncore := fs.Bool("uncore", false, "extend speculation to the uncore rail in a direct run")

	// Accept ids before flags: `run fig10 -seed 2`.
	var ids []string
	rest := args
	for len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	ids = append(ids, fs.Args()...)
	if *checkpoint != "" || *resume != "" {
		if len(ids) > 0 {
			return fmt.Errorf("run: -checkpoint/-resume run a direct simulation and take no experiment ids (got %s)",
				strings.Join(ids, " "))
		}
		if *resume != "" {
			// The snapshot fixes the specimen; overriding it would
			// silently simulate a different chip.
			var conflict []string
			fs.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "seed", "full", "workload", "policy", "fidelity", "uncore":
					conflict = append(conflict, "-"+f.Name)
				}
			})
			if len(conflict) > 0 {
				return fmt.Errorf("run: %s conflict with -resume (the snapshot fixes the specimen)",
					strings.Join(conflict, " "))
			}
		}
		return directRun(ctx, directOptions{
			Resume:     *resume,
			Checkpoint: *checkpoint,
			Seconds:    *seconds,
			Seed:       *seed,
			Full:       *full,
			Workload:   *workloadName,
			Policy:     *policyName,
			Fidelity:   *fidelity,
			Uncore:     *uncore,
		})
	}
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment ids given (try `eccspec list`)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	opts := experiments.Options{Seed: *seed, Full: *full, Fast: *fast}
	for done, id := range ids {
		if interrupted(ctx, "experiments", done, len(ids)) {
			break
		}
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				ID       string             `json:"id"`
				Title    string             `json:"title"`
				Headline string             `json:"headline"`
				Metrics  map[string]float64 `json:"metrics"`
			}{res.ID, res.Title, res.Headline, res.Metrics}); err != nil {
				return err
			}
		} else if err := res.Write(os.Stdout); err != nil {
			return err
		}
		if *doPlot {
			for i, rec := range res.Series {
				for _, col := range rec.Columns() {
					xs := make([]float64, rec.Len())
					for s := 0; s < rec.Len(); s++ {
						xs[s] = rec.Time(s)
					}
					chart := plot.Chart{
						Title:  fmt.Sprintf("%s series %d: %s", id, i, col),
						Width:  72,
						Height: 14,
					}
					err := chart.Render(os.Stdout, plot.Series{
						Name: col, X: xs, Y: rec.Column(col)})
					if err != nil {
						return err
					}
				}
			}
		}
		fmt.Println()
		if *csvDir != "" {
			for i, rec := range res.Series {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_series%d.csv", id, i))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := rec.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	return nil
}

// directOptions configures a direct closed-loop simulation (no
// experiment harness): used by `run -checkpoint` / `run -resume`.
type directOptions struct {
	Resume     string  // snapshot file to continue from ("" = fresh run)
	Checkpoint string  // snapshot file to write afterwards ("" = none)
	Seconds    float64 // simulated seconds to run
	Seed       uint64
	Full       bool
	Workload   string
	Policy     string
	Fidelity   string
	Uncore     bool
}

// directRun simulates one chip under closed-loop speculation, either
// from scratch (calibrating first) or from a snapshot, and optionally
// writes a snapshot at the end. Because the simulator is deterministic,
// a -checkpoint/-resume pair splits a run without changing its result.
func directRun(ctx context.Context, o directOptions) error {
	var sim *eccspec.Simulator
	if o.Resume != "" {
		blob, err := os.ReadFile(o.Resume)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		var st *snapshot.State
		sim, st, err = snapshot.RestoreBlob(blob)
		if err != nil {
			return fmt.Errorf("resume %s: %w", o.Resume, err)
		}
		fidNote := ""
		if sim.Opts().Fidelity != "" {
			fidNote = ", fidelity " + sim.Opts().Fidelity
		}
		fmt.Printf("resumed seed %d (%s, policy %s%s) at tick %d\n",
			sim.Opts().Seed, sim.Opts().Workload, sim.Opts().Policy, fidNote, st.Ticks)
	} else {
		var err error
		sim, err = eccspec.NewSimulator(eccspec.Options{
			Seed: o.Seed, FullGeometry: o.Full, Workload: o.Workload, Policy: o.Policy,
			Fidelity: o.Fidelity,
		})
		if err != nil {
			return err
		}
		if err := sim.Calibrate(); err != nil {
			return fmt.Errorf("calibrate: %w", err)
		}
		if o.Uncore {
			if err := sim.EnableUncoreSpeculation(); err != nil {
				return fmt.Errorf("uncore: %w", err)
			}
		}
	}

	ticks := int(o.Seconds / sim.TickSeconds())
	start := sim.Ticks()
	rep, err := sim.RunEngine(ctx, ticks)
	ran := rep.Tick - start
	if rep.Stopped {
		return fmt.Errorf("core died at tick %d: speculation drove a rail below the crash margin", sim.Ticks())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "eccspec: interrupted after %d/%d ticks; checkpoint still written\n", ran, ticks)
	}

	fmt.Printf("seed %d workload %s policy %s: ran %d ticks (%.4g s simulated, now at tick %d)\n",
		sim.Opts().Seed, sim.Opts().Workload, sim.Opts().Policy, ran, float64(ran)*sim.TickSeconds(), sim.Ticks())
	for d := 0; d < sim.NumDomains(); d++ {
		fmt.Printf("domain %d: %.3f V  (monitor error rate %.2g)\n",
			d, sim.DomainVoltage(d), sim.MonitorErrorRate(d))
	}
	fmt.Printf("average reduction %.1f%%   total power %.2f W\n",
		100*sim.AverageReduction(), sim.TotalPower())

	if o.Checkpoint != "" {
		blob, err := snapshot.CaptureBlob(sim)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if err := os.WriteFile(o.Checkpoint, blob, 0o644); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Printf("wrote checkpoint %s (%d bytes at tick %d)\n", o.Checkpoint, len(blob), sim.Ticks())
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  eccspec list
  eccspec run <id>... [-seed N] [-full] [-fast] [-csv dir] [-plot] [-json]
  eccspec run all [flags]
  eccspec run -checkpoint f [-seconds S] [-workload W] [-policy P] [-fidelity F] [-seed N] [-full] [-uncore]
  eccspec run -resume f [-seconds S] [-checkpoint f2]
  eccspec compare [-policies a,b,c] [-workloads w1,w2] [-seed N] [-fast] [-full] [-json]
  eccspec seeds <id> [-n N] [-full] [-fast=false]
  eccspec report [-seed N] [-full] [-fast]
  eccspec chaos list
  eccspec chaos <scenario>|-plan f [-seed N] [-seconds S] [-workload W]
  eccspec cluster members [-addr URL]
  eccspec cluster placement <fleet-id> [-addr URL]
  eccspec loadtest -addr URL [-rps N] [-duration D] [-workers N] [-mix s:st:r:l] [-json f] [-slo-submit-p99 MS] [-slo-read-p99 MS] [-slo-min-rps N]
  eccspec version

speculation policies (for -policy / -policies): %s
`, strings.Join(eccspec.PolicyNames(), ", "))
}
