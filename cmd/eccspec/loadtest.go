package main

// The loadtest subcommand: drive a live eccspecd with sustained mixed
// traffic and assert the API tier's SLOs (see internal/loadtest).

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"eccspec/internal/loadtest"
)

// loadtestCmd runs `eccspec loadtest` against a daemon.
func loadtestCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8347", "daemon base URL")
	rps := fs.Int("rps", 1000, "offered request rate across all workers")
	duration := fs.Duration("duration", 5*time.Second, "storm duration")
	workers := fs.Int("workers", 32, "maximum in-flight requests")
	mixSpec := fs.String("mix", "", "traffic mix as submit:status:results:list weights (default 2:4:3:1)")
	priority := fs.Int("priority", 0, "admission priority on submitted jobs")
	seconds := fs.Float64("seconds", 0.01, "simulated seconds per submitted job")
	apiKeys := fs.Int("api-keys", 0, "spread requests over N distinct X-API-Key identities")
	jsonOut := fs.String("json", "", "write the BENCH_api.json snapshot to this path")
	sloSubmit := fs.Float64("slo-submit-p99", 0, "fail if submit p99 exceeds this many ms (0 = no bound)")
	sloRead := fs.Float64("slo-read-p99", 0, "fail if completed-results p99 exceeds this many ms (0 = no bound)")
	sloMinRPS := fs.Float64("slo-min-rps", 0, "fail if achieved throughput is below this (0 = no floor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	cfg := loadtest.Config{
		BaseURL:       *addr,
		Duration:      *duration,
		RPS:           *rps,
		Workers:       *workers,
		Mix:           mix,
		SubmitSeconds: *seconds,
		Priority:      *priority,
		APIKeys:       *apiKeys,
	}
	report, err := loadtest.Run(ctx, cfg)
	if err != nil {
		return err
	}
	report.Format(os.Stdout)
	slo := loadtest.SLO{SubmitP99Ms: *sloSubmit, ReadP99Ms: *sloRead, MinThroughput: *sloMinRPS}
	if *jsonOut != "" {
		if err := loadtest.WriteSnapshot(*jsonOut, slo, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if err := report.CheckSLO(slo); err != nil {
		return err
	}
	fmt.Println("SLO: pass")
	return nil
}

// parseMix reads "s:st:r:l" weights; empty selects the default mix.
func parseMix(spec string) (loadtest.Mix, error) {
	if spec == "" {
		return loadtest.Mix{}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return loadtest.Mix{}, fmt.Errorf("loadtest: -mix wants 4 colon-separated weights, got %q", spec)
	}
	ws := make([]int, 4)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return loadtest.Mix{}, fmt.Errorf("loadtest: bad mix weight %q", p)
		}
		ws[i] = n
	}
	m := loadtest.Mix{Submit: ws[0], Status: ws[1], Results: ws[2], List: ws[3]}
	if m.Submit+m.Status+m.Results+m.List == 0 {
		return loadtest.Mix{}, fmt.Errorf("loadtest: mix weights sum to zero")
	}
	return m, nil
}
