package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestChaosListAndErrors covers the catalog listing and the argument
// error paths.
func TestChaosListAndErrors(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"chaos", "list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"burst-due", "dead-monitor", "virus-transient", "flaky-disk"} {
		if !strings.Contains(out, name) {
			t.Errorf("chaos list missing %q:\n%s", name, out)
		}
	}
	if err := run([]string{"chaos"}); err == nil {
		t.Error("bare chaos should fail")
	}
	if err := run([]string{"chaos", "no-such-scenario"}); err == nil ||
		!strings.Contains(err.Error(), "burst-due") {
		t.Errorf("unknown scenario error should list valid names, got %v", err)
	}
}

// TestChaosRunByteIdentical runs the same scenario twice and requires
// byte-for-byte identical reports — the CLI surface of the injector's
// determinism contract. The scenario is shortened so the fault windows
// still land but the test stays quick.
func TestChaosRunByteIdentical(t *testing.T) {
	args := []string{"chaos", "dead-monitor", "-seconds", "0.35"}
	first, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	second, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("chaos runs differ:\n--- first\n%s--- second\n%s", first, second)
	}
	if !strings.Contains(first, "fail-safe=[0 2]") {
		t.Fatalf("dead-monitor report missing fail-safe domains:\n%s", first)
	}
	if !strings.Contains(first, "apply monitor-stuck-zero domain 0") {
		t.Fatalf("dead-monitor report missing event log:\n%s", first)
	}
}

// TestChaosCustomPlanStorePath runs a -plan file with journal faults
// and checks the store plane's report: retried commits and a clean
// replay.
func TestChaosCustomPlanStorePath(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(plan, []byte(`{"seed":5,"faults":[{"kind":"store-error","start":2,"duration":2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"chaos", "-plan", plan, "-seed", "9", "-seconds", "0.05"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "retried commit points; clean replay with 1 chip records") {
		t.Fatalf("store-plane report missing or replay failed:\n%s", out)
	}
	if !strings.Contains(out, "chip 9: ticks=50") {
		t.Fatalf("seed override not applied:\n%s", out)
	}
}
