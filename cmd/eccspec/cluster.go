package main

// The cluster subcommand: operator views of a coordinator daemon —
// worker membership and per-job chip placement.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"

	"eccspec/internal/cluster"
)

// clusterCmd dispatches `eccspec cluster members|placement`.
func clusterCmd(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8347", "coordinator base URL")
	var sub string
	rest := args
	if len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		sub, rest = rest[0], rest[1:]
	}
	var id string
	if sub == "placement" && len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		id, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	switch sub {
	case "members":
		return clusterMembers(*addr)
	case "placement":
		if id == "" {
			id = fs.Arg(0)
		}
		if id == "" {
			return fmt.Errorf("cluster placement: fleet id required (e.g. f-1)")
		}
		return clusterPlacement(*addr, id)
	default:
		return fmt.Errorf("cluster: unknown subcommand %q (want members or placement)", sub)
	}
}

// clusterGet fetches a coordinator endpoint into v, surfacing the
// server's JSON error message on a non-200.
func clusterGet(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", url, e.Error)
		}
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// clusterMembers prints the coordinator's worker table.
func clusterMembers(addr string) error {
	var out struct {
		Workers []cluster.MemberView `json:"workers"`
	}
	if err := clusterGet(addr+cluster.PathMembers, &out); err != nil {
		return err
	}
	if len(out.Workers) == 0 {
		fmt.Println("no workers registered")
		return nil
	}
	fmt.Printf("%-20s %-10s %6s %9s %10s %8s  %s\n",
		"ID", "STATE", "SLOTS", "DONE", "IN-FLIGHT", "BEAT-AGO", "URL")
	for _, w := range out.Workers {
		state := w.State
		if w.Reason != "" {
			state += " (" + w.Reason + ")"
		}
		fmt.Printf("%-20s %-10s %6d %9d %10d %7.1fs  %s\n",
			w.ID, state, w.Slots, w.ChipsDone, w.ChipsInFlight, w.LastBeatAgoS, w.URL)
	}
	return nil
}

// clusterPlacement prints which worker each of a fleet's seeds was last
// assigned to.
func clusterPlacement(addr, id string) error {
	var out struct {
		ID        string            `json:"id"`
		Status    string            `json:"status"`
		Placement map[uint64]string `json:"placement"`
	}
	if err := clusterGet(addr+"/v1/cluster/jobs/"+id+"/placement", &out); err != nil {
		return err
	}
	fmt.Printf("fleet %s (%s): %d placed seeds\n", out.ID, out.Status, len(out.Placement))
	seeds := make([]uint64, 0, len(out.Placement))
	for s := range out.Placement {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	w := os.Stdout
	for _, s := range seeds {
		fmt.Fprintf(w, "%-20s %s\n", strconv.FormatUint(s, 10), out.Placement[s])
	}
	return nil
}
