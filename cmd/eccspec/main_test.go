package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout during f and returns what was written.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig10", "tab1", "compare", "uncorespec"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunCommandText(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "tab1", "-fast"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Itanium") || !strings.Contains(out, "metric") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunCommandJSON(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "tab2", "-fast", "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"id": "tab2"`) || !strings.Contains(out, `"benchmarks"`) {
		t.Fatalf("JSON output malformed:\n%s", out)
	}
}

func TestRunCommandCSV(t *testing.T) {
	dir := t.TempDir()
	_, err := capture(t, func() error {
		return run([]string{"run", "fig13", "-fast", "-csv", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "fig13_series*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV series written: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,") {
		t.Fatalf("CSV header missing: %q", string(data[:20]))
	}
}

func TestRunCommandPlot(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "fig13", "-fast", "-plot"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "errProb") || !strings.Contains(out, "|") {
		t.Fatalf("plot output missing chart:\n%s", out[:200])
	}
}

func TestRunCommandErrors(t *testing.T) {
	if err := run([]string{"run"}); err == nil {
		t.Error("run with no ids accepted")
	}
	if err := run([]string{"run", "not-an-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
}

func TestSeedsCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"seeds", "tab1", "-n", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "across 2 chip seeds") || !strings.Contains(out, "cores") {
		t.Fatalf("seeds output malformed:\n%s", out)
	}
}

func TestSeedsCommandErrors(t *testing.T) {
	if err := run([]string{"seeds"}); err == nil {
		t.Error("seeds with no id accepted")
	}
	if err := run([]string{"seeds", "a", "b"}); err == nil {
		t.Error("seeds with two ids accepted")
	}
	if err := run([]string{"seeds", "nope", "-n", "1"}); err == nil {
		t.Error("seeds with unknown id accepted")
	}
}

// TestInterruptedRun simulates Ctrl-C (an already-cancelled context):
// multi-experiment commands must stop between items with partial
// output instead of dying, and a seeds sweep that never completed a
// seed must say so.
func TestInterruptedRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	out, err := capture(t, func() error {
		return runCtx(ctx, []string{"report", "-fast"})
	})
	if err != nil {
		t.Fatalf("interrupted report errored: %v", err)
	}
	if !strings.Contains(out, "| Id | Paper | Result |") {
		t.Fatalf("interrupted report lost its header:\n%s", out)
	}

	if _, err := capture(t, func() error {
		return runCtx(ctx, []string{"seeds", "tab1", "-n", "2"})
	}); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("seeds with no finished seed returned %v", err)
	}

	if _, err := capture(t, func() error {
		return runCtx(ctx, []string{"run", "tab1", "-fast"})
	}); err != nil {
		t.Fatalf("interrupted run errored: %v", err)
	}
}

func TestVersionCommand(t *testing.T) {
	for _, arg := range []string{"version", "-version", "--version"} {
		out, err := capture(t, func() error { return run([]string{arg}) })
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if !strings.HasPrefix(out, "eccspec ") || len(strings.TrimSpace(out)) <= len("eccspec") {
			t.Fatalf("%s printed %q, want a non-empty version", arg, out)
		}
	}
}

// TestRunCheckpointResume splits a direct closed-loop run in half via a
// checkpoint file and checks the final snapshot is byte-identical to an
// uninterrupted run of the same length — the CLI face of the snapshot
// subsystem's determinism guarantee.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.snap")
	half := filepath.Join(dir, "half.snap")
	final := filepath.Join(dir, "final.snap")

	base := []string{"run", "-seed", "3", "-workload", "gcc"}
	if _, err := capture(t, func() error {
		return run(append(base, "-seconds", "0.06", "-checkpoint", whole))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run(append(base, "-seconds", "0.03", "-checkpoint", half))
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"run", "-resume", half, "-seconds", "0.03", "-checkpoint", final})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "resumed seed 3 (gcc, policy paper) at tick 30") {
		t.Fatalf("resume banner missing:\n%s", out)
	}

	a, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("resumed snapshot differs from uninterrupted run (%d vs %d bytes)", len(a), len(b))
	}
}

func TestRunCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"run", "fig1", "-checkpoint", filepath.Join(dir, "x.snap")}); err == nil {
		t.Error("-checkpoint with experiment ids accepted")
	}
	if err := run([]string{"run", "-resume", filepath.Join(dir, "missing.snap")}); err == nil {
		t.Error("-resume of a missing file accepted")
	}
	if err := run([]string{"run", "-resume", filepath.Join(dir, "x.snap"), "-seed", "9"}); err == nil ||
		!strings.Contains(err.Error(), "-seed") {
		t.Errorf("-resume with -seed override returned %v, want a conflict error", err)
	}
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-resume", bad}); err == nil {
		t.Error("-resume of a corrupt file accepted")
	}
}

func TestReportCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out, err := capture(t, func() error {
		return run([]string{"report", "-fast"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| Id | Paper | Result |") {
		t.Fatalf("report header missing:\n%s", out[:100])
	}
	if strings.Contains(out, "ERROR:") {
		t.Fatalf("report contains failures:\n%s", out)
	}
	for _, id := range []string{"| fig10 |", "| compare |", "| validate |"} {
		if !strings.Contains(out, id) {
			t.Errorf("report missing row %s", id)
		}
	}
}
