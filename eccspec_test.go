package eccspec_test

import (
	"errors"
	"io"
	"strings"
	"testing"

	"eccspec"
)

func TestSimulatorLifecycle(t *testing.T) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumCores() != 8 || sim.NumDomains() != 4 {
		t.Fatalf("topology %d cores / %d domains", sim.NumCores(), sim.NumDomains())
	}
	if sim.NominalVoltage() != 0.800 {
		t.Fatalf("nominal %v", sim.NominalVoltage())
	}
	if err := sim.Calibrate(); err != nil {
		t.Fatal(err)
	}
	ticks := sim.Run(1.5)
	if ticks != 1500 {
		t.Fatalf("run stopped early at tick %d: a core died under speculation", ticks)
	}
	if sim.Time() < 1.49 {
		t.Fatalf("time %v", sim.Time())
	}
	red := sim.AverageReduction()
	if red < 0.05 || red > 0.35 {
		t.Fatalf("average reduction %.3f implausible", red)
	}
	for d := 0; d < sim.NumDomains(); d++ {
		if sim.DomainVoltage(d) >= sim.NominalVoltage() {
			t.Errorf("domain %d never speculated below nominal", d)
		}
	}
	if sim.CoreVoltage(0) != sim.DomainVoltage(0) {
		t.Error("core voltage should equal its domain's setpoint")
	}
	if sim.TotalPower() <= 0 {
		t.Error("no power accounted")
	}
	if sim.CoreEnergy(0) <= 0 {
		t.Error("no core energy accounted")
	}
	if sim.Chip() == nil || sim.Control() == nil {
		t.Error("accessors returned nil")
	}
}

func TestMonitorErrorRateBeforeCalibration(t *testing.T) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sim.MonitorErrorRate(0) != 0 {
		t.Fatal("error rate nonzero before calibration")
	}
}

func TestNewSimulatorHighPoint(t *testing.T) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 7, HighVoltagePoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if sim.NominalVoltage() != 1.100 {
		t.Fatalf("nominal %v", sim.NominalVoltage())
	}
}

func TestNewSimulatorWorkloadSelection(t *testing.T) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 7, Workload: "mcf"})
	if err != nil || sim == nil {
		t.Fatalf("known workload rejected: %v", err)
	}
	sim, err = eccspec.NewSimulator(eccspec.Options{Seed: 7, Workload: "not-a-benchmark"})
	if sim != nil || !errors.Is(err, eccspec.ErrUnknownWorkload) {
		t.Fatalf("unknown workload: sim=%v err=%v", sim, err)
	}
	if !strings.Contains(err.Error(), "not-a-benchmark") || !strings.Contains(err.Error(), "stress-test") {
		t.Fatalf("error should name the workload and list valid ones: %v", err)
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := eccspec.ExperimentIDs()
	if len(ids) < 18 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
}

func TestRunExperiment(t *testing.T) {
	var sb strings.Builder
	if err := eccspec.RunExperiment("tab1", 1, true, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Itanium") {
		t.Fatalf("unexpected report: %q", sb.String())
	}
	if err := eccspec.RunExperiment("bogus", 1, true, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUncoreSpeculationFacade(t *testing.T) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 9, Workload: "jbb-8wh"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Calibrate(); err != nil {
		t.Fatal(err)
	}
	before := sim.UncoreVoltage()
	if before != sim.NominalVoltage() {
		t.Fatalf("uncore starts at %v", before)
	}
	if err := sim.EnableUncoreSpeculation(); err != nil {
		t.Fatal(err)
	}
	sim.Run(1.5)
	if sim.UncoreVoltage() >= before {
		t.Fatalf("uncore rail never speculated: %v", sim.UncoreVoltage())
	}
}
