package eccspec_test

import (
	"fmt"

	"eccspec"
)

// ExampleNewSimulator runs the complete speculation flow on one chip:
// build, calibrate, speculate, read back the savings.
func ExampleNewSimulator() {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42, Workload: "mcf"})
	if err != nil {
		panic(err)
	}
	if err := sim.Calibrate(); err != nil {
		panic(err)
	}
	sim.Run(1.0)

	fmt.Printf("domains: %d\n", sim.NumDomains())
	fmt.Printf("all rails below nominal: %v\n", allBelow(sim))
	fmt.Printf("savings in the expected band: %v\n",
		sim.AverageReduction() > 0.05 && sim.AverageReduction() < 0.35)
	// Output:
	// domains: 4
	// all rails below nominal: true
	// savings in the expected band: true
}

func allBelow(sim *eccspec.Simulator) bool {
	for d := 0; d < sim.NumDomains(); d++ {
		if sim.DomainVoltage(d) >= sim.NominalVoltage() {
			return false
		}
	}
	return true
}

// ExampleRunExperiment reproduces one of the paper's tables directly.
func ExampleRunExperiment() {
	err := eccspec.RunExperiment("tab2", 1, true, discard{})
	fmt.Println("experiment ran:", err == nil)
	// Output:
	// experiment ran: true
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
