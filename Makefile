# Tier-1 verification plus the concurrency-sensitive targets that the
# fleet engine and eccspecd daemon make load-bearing.

GO ?= go

# Stamp binaries with the checkout's version; `go install`ed builds fall
# back to runtime/debug.ReadBuildInfo inside internal/version.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X eccspec/internal/version.version=$(VERSION)"

.PHONY: verify build test race vet bench bench-snapshot staticcheck chaos fuzz-smoke cluster-smoke cluster-chaos load-smoke all

all: verify

# Tier-1: the whole tree builds and every test passes.
verify: build test

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

# The concurrent packages under the race detector, plus the run loop
# they are built on (root Simulator and internal/engine).
race:
	$(GO) test -race . ./internal/engine/... ./internal/fleet/... ./internal/cluster/... ./internal/admission/... ./internal/loadtest/... ./cmd/eccspecd/...

# Cluster smoke: one coordinator + two worker daemons on localhost, one
# worker SIGKILLed mid-job, merged results diffed byte-for-byte against
# a single-node run. Writes a BENCH_cluster.json throughput snapshot.
cluster-smoke:
	ECCSPEC_BENCH_OUT=$(CURDIR)/BENCH_cluster.json \
		$(GO) test ./cmd/eccspecd/ -run TestClusterWorkerKillByteIdenticalResults -count=1 -v

# Cluster network chaos: one coordinator + two worker daemons with a
# seeded net-fault plan (partition window, torn stream, duplicated
# stream, slow link) armed on the coordinator's RPC transport, plus the
# quarantine-and-recover breaker scenario; merged results are diffed
# byte-for-byte against a single-node run and every daemon must exit
# clean. Refreshes the BENCH_cluster.json snapshot.
cluster-chaos:
	ECCSPEC_BENCH_OUT=$(CURDIR)/BENCH_cluster.json \
		$(GO) test ./cmd/eccspecd/ -run 'TestClusterNetChaos' -count=1 -v

# Load smoke: a real eccspecd subprocess under ~1200 req/s of mixed
# API traffic for 3s, held to the SLOs in loadSmokeSLO (submit p99,
# completed-read p99, throughput floor, well-formed 429s, zero failed
# completed-result reads). Writes a BENCH_api.json snapshot.
load-smoke:
	ECCSPEC_BENCH_API_OUT=$(CURDIR)/BENCH_api.json \
		$(GO) test ./cmd/eccspecd/ -run TestLoadSmoke -count=1 -v

# Staticcheck without taking a module dependency: the CI image resolves
# the tool at its pinned @latest; run `make staticcheck` locally when
# the network allows.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@latest ./...

# One iteration of every benchmark — a smoke test so bench code can't rot.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Performance snapshot: single-chip tick latency (BenchmarkEngineTick)
# plus fleet chips/min from a parallel micro-run, written to
# BENCH_ticks.json so CI archives a comparable number per commit.
bench-snapshot:
	ECCSPEC_BENCH_TICKS_OUT=$(CURDIR)/BENCH_ticks.json \
		$(GO) test ./internal/engine/ -run TestBenchSnapshot -count=1 -v

# Chaos smoke: every fault-injection and chaos suite, twice, so any
# nondeterminism in the replayability contract fails the build.
chaos:
	$(GO) test ./... -run 'Chaos|Fault' -count=2

# Short fuzz passes over the corruption-facing decoders and the
# daemon's submit endpoint; the seeded corpora alone already cover the
# real capture formats.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSnapshotRestore -fuzztime=10s -run '^$$' ./internal/snapshot
	$(GO) test -fuzz=FuzzJournalRecover -fuzztime=10s -run '^$$' ./internal/store
	$(GO) test -fuzz=FuzzSubmitFleet -fuzztime=10s -run '^$$' ./cmd/eccspecd

vet:
	$(GO) vet ./...
