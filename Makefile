# Tier-1 verification plus the concurrency-sensitive targets that the
# fleet engine and eccspecd daemon make load-bearing.

GO ?= go

.PHONY: verify build test race vet all

all: verify

# Tier-1: the whole tree builds and every test passes.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages under the race detector.
race:
	$(GO) test -race ./internal/fleet/... ./cmd/eccspecd/...

vet:
	$(GO) vet ./...
