// Package eccspec is a simulation-based reproduction of "Using ECC
// Feedback to Guide Voltage Speculation in Low-Voltage Processors"
// (Bacha and Teodorescu, MICRO 2014).
//
// The paper proposes running a processor's supply voltage far below its
// rated level by continuously probing the chip's weakest ECC-protected
// cache lines: a small hardware monitor per cache controller writes and
// reads a designated weak line, and a voltage controller keeps that
// line's correctable-error rate inside a benign band (1-5%), stepping
// the rail 5 mV at a time. Correctable errors are early, harmless and —
// on real silicon — deterministic, so they make a precise live gauge of
// the remaining voltage margin.
//
// The original work ran on an HP Integrity server with Intel Itanium
// 9560 processors. This package substitutes a detailed simulation of
// that platform: SRAM cells with process variation, SECDED-protected
// caches, per-core-pair voltage rails with a resonant power-delivery
// model, workload demand profiles, and both the proposed hardware
// speculation system and the firmware-only baseline it is compared
// against. See DESIGN.md for the substitution map and EXPERIMENTS.md
// for measured-vs-paper results.
//
// # Quick start
//
//	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42})
//	if err != nil { ... }
//	if err := sim.Calibrate(); err != nil { ... }
//	sim.Run(2.0) // simulate two seconds under closed-loop speculation
//	fmt.Printf("domain 0 now at %.3f V\n", sim.DomainVoltage(0))
//
// The underlying subsystems are available for finer control via the
// Chip and Control accessors; the reproduction experiments themselves
// live behind RunExperiment and the eccspec CLI.
package eccspec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/experiments"
	"eccspec/internal/policy"
	"eccspec/internal/workload"
)

// ErrUnknownWorkload is returned by NewSimulator when Options.Workload
// names no known benchmark profile. Use errors.Is to test for it; the
// wrapped message lists the valid names.
var ErrUnknownWorkload = errors.New("eccspec: unknown workload")

// ErrUnknownPolicy is returned by NewSimulator when Options.Policy names
// no registered speculation policy. Use errors.Is to test for it; the
// wrapped message lists the valid names.
var ErrUnknownPolicy = errors.New("eccspec: unknown policy")

// ErrUnknownFidelity is returned by NewSimulator when Options.Fidelity
// names no known fidelity mode. Use errors.Is to test for it.
var ErrUnknownFidelity = errors.New("eccspec: unknown fidelity")

// Fidelity modes accepted by Options.Fidelity.
const (
	// FidelityFull runs the exact per-line sampling kernels every tick;
	// outputs are byte-identical to the pre-kernel implementation.
	FidelityFull = "full"
	// FidelityAdaptive lets the chip fast-forward through aggregate
	// per-bank sampling once the control loop has been stable for
	// several decision windows, dropping back to full fidelity on any
	// control-loop event. Deterministic (same seed, same decisions
	// across runs) but statistically rather than bitwise equivalent to
	// full fidelity.
	FidelityAdaptive = "adaptive"
)

// PolicyNames lists the registered speculation policies, sorted.
func PolicyNames() []string { return policy.Names() }

// Options selects the simulated platform.
type Options struct {
	// Seed fixes the chip specimen: the entire weak-cell map, logic
	// floors and rail resonances derive from it. Two simulators with
	// the same seed are identical chips.
	Seed uint64
	// HighVoltagePoint selects the nominal 2.53 GHz / 1.1 V operating
	// point instead of the default low-voltage 340 MHz / 800 mV point.
	HighVoltagePoint bool
	// FullGeometry uses the paper's full Table I cache sizes instead of
	// the 1/8-scaled default (slower to characterize, same shapes).
	FullGeometry bool
	// Workload names the benchmark each core runs (see
	// internal/workload's Table II inventory); empty selects the
	// characterization stress test.
	Workload string
	// Policy names the speculation policy driving the voltage control
	// system (see internal/policy's registry); empty selects the paper's
	// floor/ceiling ladder.
	Policy string
	// Fidelity selects the event-sampling fidelity: FidelityFull (or
	// empty) for exact per-line sampling, FidelityAdaptive for
	// stability-gated fast-forward. Anything else is rejected with
	// ErrUnknownFidelity.
	Fidelity string
}

// Simulator couples a simulated chip with the paper's voltage
// speculation system.
type Simulator struct {
	opts Options
	chip *chip.Chip
	ctl  *control.System
}

// NewSimulator builds a chip and its control system and assigns the
// configured workload to every core. The rails start at nominal; call
// Calibrate and then Run to engage speculation. An unrecognized
// Options.Workload returns an error wrapping ErrUnknownWorkload.
func NewSimulator(o Options) (*Simulator, error) {
	name := o.Workload
	if name == "" {
		name = workload.StressTest().Name
	}
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w %q (valid: %s)", ErrUnknownWorkload, name,
			strings.Join(workload.Names(), ", "))
	}
	polName := policy.Resolve(o.Policy)
	pol, err := policy.New(polName)
	if err != nil {
		return nil, fmt.Errorf("%w %q (valid: %s)", ErrUnknownPolicy, polName,
			strings.Join(policy.Names(), ", "))
	}
	switch o.Fidelity {
	case "", FidelityFull:
		// Full fidelity is recorded as the empty string so checkpoints
		// of full-fidelity runs keep their historical shape.
		o.Fidelity = ""
	case FidelityAdaptive:
	default:
		return nil, fmt.Errorf("%w %q (valid: %s, %s)", ErrUnknownFidelity,
			o.Fidelity, FidelityFull, FidelityAdaptive)
	}
	c := chip.New(chip.DefaultParams(o.Seed, !o.HighVoltagePoint, o.FullGeometry))
	if o.Fidelity == FidelityAdaptive {
		c.SetAdaptiveFidelity(true)
	}
	for _, co := range c.Cores {
		co.SetWorkload(p, o.Seed)
	}
	o.Workload = name  // record the resolved names for Opts/checkpoints
	o.Policy = polName //
	return &Simulator{
		opts: o,
		chip: c,
		ctl:  control.NewWithPolicy(c, control.DefaultConfig(), pol),
	}, nil
}

// Opts returns the options the simulator was built from, with the
// workload and policy names resolved (never empty). Checkpointing uses
// this to rebuild an identical specimen before restoring mutable state.
func (s *Simulator) Opts() Options { return s.opts }

// Chip exposes the underlying chip model.
func (s *Simulator) Chip() *chip.Chip { return s.chip }

// Control exposes the underlying voltage control system.
func (s *Simulator) Control() *control.System { return s.ctl }

// FidelityAdaptive reports whether the simulator was built with
// adaptive fidelity (Options.Fidelity == FidelityAdaptive).
func (s *Simulator) FidelityAdaptive() bool { return s.chip.AdaptiveFidelity() }

// Calibrate runs the boot-time calibration: each voltage domain sweeps
// its L2 caches to locate its weakest line, de-configures it, and points
// the domain's ECC monitor at it.
func (s *Simulator) Calibrate() error {
	_, err := s.ctl.Calibrate()
	return err
}

// EnableUncoreSpeculation extends speculation to the uncore rail (an
// extension beyond the paper, which leaves the uncore at nominal): the
// shared L3 is swept for its weakest line and the uncore supply is then
// regulated from that line's error rate alongside the core domains.
func (s *Simulator) EnableUncoreSpeculation() error {
	_, err := s.ctl.AttachUncore()
	return err
}

// UncoreVoltage returns the uncore rail's current setpoint in volts.
func (s *Simulator) UncoreVoltage() float64 {
	return s.chip.UncoreRail.Target()
}

// Step advances the simulation by one control tick (chip activity, then
// one controller iteration) and reports whether all cores remain alive.
func (s *Simulator) Step() bool {
	s.chip.Step()
	s.ctl.Tick()
	for _, co := range s.chip.Cores {
		if !co.Alive() {
			return false
		}
	}
	return true
}

// Run simulates the given number of seconds under closed-loop
// speculation and returns the number of ticks executed. It stops early
// if a core dies (which, with calibration in place, indicates a
// misconfigured experiment). Run is a thin wrapper over engine.Run; use
// RunEngine to attach observers.
func (s *Simulator) Run(seconds float64) int {
	start := s.Ticks()
	rep, _ := engine.Run(context.Background(), s, engine.Config{
		Start: start,
		Until: start + int(seconds/s.chip.P.TickSeconds),
	})
	return rep.Tick - start
}

// RunContext is Run with cooperative cancellation: it checks ctx
// between control ticks and returns early with ctx.Err() when the
// context is cancelled. The returned tick count covers the work
// actually done, so partial results (voltages, energy, error rates)
// remain valid after an interrupted run.
func (s *Simulator) RunContext(ctx context.Context, seconds float64) (int, error) {
	start := s.Ticks()
	rep, err := engine.Run(ctx, s, engine.Config{
		Start: start,
		Until: start + int(seconds/s.chip.P.TickSeconds),
	})
	return rep.Tick - start, err
}

// RunEngine exposes the canonical loop with observer composition: it
// advances the simulator ticks control ticks from wherever it currently
// stands, firing the observers each tick. See internal/engine for the
// observer contract; the fleet engine, the CLI and the daemon all build
// on this entry point.
func (s *Simulator) RunEngine(ctx context.Context, ticks int, obs ...engine.Observer) (engine.Report, error) {
	start := s.Ticks()
	return engine.Run(ctx, s, engine.Config{
		Start:     start,
		Until:     start + ticks,
		Observers: obs,
	})
}

// TickSeconds returns the simulated duration of one control tick.
func (s *Simulator) TickSeconds() float64 { return s.chip.P.TickSeconds }

// Ticks returns the number of control ticks executed so far, counted by
// the chip's integer tick counter.
func (s *Simulator) Ticks() int { return s.chip.Ticks() }

// CoresAlive reports whether every core is still functioning; false
// means speculation drove a rail below a core's crash margin.
func (s *Simulator) CoresAlive() bool {
	for _, co := range s.chip.Cores {
		if !co.Alive() {
			return false
		}
	}
	return true
}

// Time returns the simulated time elapsed, in seconds.
func (s *Simulator) Time() float64 { return s.chip.Time() }

// NumDomains returns the number of core voltage domains.
func (s *Simulator) NumDomains() int { return len(s.chip.Domains) }

// NumCores returns the core count.
func (s *Simulator) NumCores() int { return len(s.chip.Cores) }

// NominalVoltage returns the operating point's rated supply in volts.
func (s *Simulator) NominalVoltage() float64 { return s.chip.P.Point.NominalVdd }

// DomainVoltage returns a domain's current regulator setpoint in volts.
func (s *Simulator) DomainVoltage(domain int) float64 {
	return s.chip.Domains[domain].Rail.Target()
}

// CoreVoltage returns the setpoint of the domain supplying the core.
func (s *Simulator) CoreVoltage(core int) float64 {
	return s.chip.DomainOf(core).Rail.Target()
}

// AverageReduction returns the mean relative voltage reduction across
// domains, e.g. 0.18 for the paper's headline 18%.
func (s *Simulator) AverageReduction() float64 {
	sum := 0.0
	for _, d := range s.chip.Domains {
		sum += 1 - d.Rail.Target()/s.NominalVoltage()
	}
	return sum / float64(len(s.chip.Domains))
}

// CoreEnergy returns a core's accumulated energy in joules.
func (s *Simulator) CoreEnergy(core int) float64 {
	return s.chip.Cores[core].Energy()
}

// TotalPower returns the chip's current average power in watts (cores
// plus uncore) since accounting began.
func (s *Simulator) TotalPower() float64 {
	if s.chip.Time() == 0 {
		return 0
	}
	return s.chip.TotalEnergy() / s.chip.Time()
}

// MonitorErrorRate returns the correctable-error rate of the domain's
// ECC monitor at the most recent controller decision (0 before
// calibration or the first decision).
func (s *Simulator) MonitorErrorRate(domain int) float64 {
	return s.ctl.LastErrorRate(domain)
}

// ExperimentIDs lists the paper-reproduction experiments.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment executes one table/figure reproduction by id and writes
// its report to w. Fast shortens the measurement windows ~10x.
func RunExperiment(id string, seed uint64, fast bool, w io.Writer) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("eccspec: unknown experiment %q", id)
	}
	res, err := e.Run(experiments.Options{Seed: seed, Fast: fast})
	if err != nil {
		return err
	}
	return res.Write(w)
}
