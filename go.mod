module eccspec

go 1.22
