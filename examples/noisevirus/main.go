// Noisevirus reproduces the paper's voltage-noise study (§IV-B, §V-D2)
// interactively: a calibrated main core runs the targeted self-test on
// its weak line while its rail sibling executes FMA/NOP "voltage virus"
// variants. The virus's NOP count sets its power-oscillation frequency;
// near the power delivery network's resonance the droop — and therefore
// the self-test error count — spikes, even though the mean power of the
// virus *falls* with every added NOP.
//
// Run with:
//
//	go run ./examples/noisevirus
package main

import (
	"fmt"
	"log"
	"strings"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/workload"
)

func main() {
	const seed = 7
	c := chip.New(chip.DefaultParams(seed, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), seed)
	}
	ctl := control.New(c, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		log.Fatal(err)
	}
	a, _ := ctl.Assignment(0)
	mon := ctl.ActiveMonitor(0)
	fmt.Printf("monitoring %s\n", a)
	fmt.Printf("rail resonance: %.1f MHz\n\n", c.Domains[0].Rail.Resonance()/1e6)

	// Park the rail just above the monitored line's onset: quiet
	// conditions produce near-zero errors, so whatever the virus adds
	// is pure voltage noise.
	c.Domains[0].Rail.SetTarget(a.OnsetV + 0.015)

	clock := c.P.Point.FrequencyHz
	const accesses = 500
	fmt.Printf("%-6s %-12s %-8s %s\n", "NOPs", "osc (MHz)", "errors", "")
	for nops := 0; nops <= 20; nops++ {
		virus := workload.Virus(nops, clock)
		c.Cores[1].SetWorkload(virus, seed)
		c.Step() // let the PDN see this virus's oscillation
		mon.ResetCounters()
		mon.ProbeN(accesses, c.Domains[0].LastEffective())
		mon.TakeEmergency()
		_, errs := mon.Counters()
		bar := strings.Repeat("#", int(errs)/12)
		fmt.Printf("%-6d %-12.1f %-8d %s\n", nops, virus.OscFreqHz/1e6, errs, bar)
	}

	fmt.Println("\nthe spike sits where the virus period matches the PDN resonance —")
	fmt.Println("the same line that guides speculation doubles as a noise sensor.")
}
