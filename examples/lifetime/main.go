// Lifetime fast-forwards a chip through years of operation to show why
// the paper recalibrates periodically (§III-D): NBTI-like aging raises
// cells' critical voltages at different rates, so the identity of a
// domain's weakest line can change, and the safe operating point drifts
// upward. Each simulated "service interval" the system recalibrates,
// re-targets its ECC monitors if needed, and re-converges.
//
// Run with:
//
//	go run ./examples/lifetime [-years N]
package main

import (
	"flag"
	"fmt"
	"log"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/workload"
)

func main() {
	years := flag.Int("years", 5, "operating lifetime to simulate")
	flag.Parse()

	const seed = 11
	c := chip.New(chip.DefaultParams(seed, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.SPECjbb()[0], seed)
	}
	ctl := control.New(c, control.DefaultConfig())

	fmt.Printf("chip seed %d over %d years, recalibrating every 6 months\n\n", seed, *years)
	fmt.Printf("%-10s %-26s %-10s %-14s\n", "age", "domain 0 monitored line", "onset", "converged Vdd")

	hoursPerInterval := 6 * 730.0 // six months
	intervals := *years * 2
	var prev control.Assignment
	for i := 0; i <= intervals; i++ {
		age := float64(i) * hoursPerInterval
		for _, co := range c.Cores {
			co.Hier.L2D.Array().SetAge(age)
			co.Hier.L2I.Array().SetAge(age)
			co.InvalidateSensitivity()
		}
		a, err := ctl.CalibrateDomain(c.Domains[0])
		if err != nil {
			log.Fatal(err)
		}
		// Re-converge the domain's rail after recalibration.
		for t := 0; t < 800; t++ {
			c.Step()
			ctl.Tick()
		}
		marker := ""
		if i > 0 && (a.Core != prev.Core || a.Kind != prev.Kind ||
			a.Set != prev.Set || a.Way != prev.Way) {
			marker = "  <- weakest line changed"
		}
		prev = a
		fmt.Printf("%5.1f yr   core %d %s set %-3d way %d   %.3f V    %.3f V%s\n",
			age/8760, a.Core, a.Kind, a.Set, a.Way, a.OnsetV,
			c.Domains[0].Rail.Target(), marker)
	}

	fmt.Println("\naging raises the onset (and the safe operating point) over the")
	fmt.Println("chip's life; recalibration keeps the monitor on whichever line is")
	fmt.Println("weakest *now*, so speculation stays both safe and maximally deep.")
}
