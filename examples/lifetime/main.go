// Lifetime fast-forwards a chip through years of operation to show why
// the paper recalibrates periodically (§III-D): NBTI-like aging raises
// cells' critical voltages at different rates, so the identity of a
// domain's weakest line can change, and the safe operating point drifts
// upward. Each simulated "service interval" the system recalibrates,
// re-targets its ECC monitors if needed, and re-converges.
//
// Run with:
//
//	go run ./examples/lifetime [-years N] [-state file]
//
// With -state, the example checkpoints after every service interval
// (using the snapshot package's versioned, CRC-protected envelope) and
// resumes from the file if it already exists — so a multi-year sweep
// can be interrupted and picked up where it left off, even with a
// larger -years to extend the study.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/snapshot"
	"eccspec/internal/workload"
)

// stateVersion tags this example's checkpoint payload inside the
// snapshot envelope; bump it when savedState changes shape.
const stateVersion = 1

// savedState is everything needed to restart the sweep at the next
// service interval: the specimen seed (to rebuild the chip), the full
// mutable chip and controller state, and the loop's own position.
type savedState struct {
	Seed     uint64             `json:"seed"`
	Interval int                `json:"interval"` // next interval to simulate
	Prev     control.Assignment `json:"prev"`
	Chip     chip.State         `json:"chip"`
	Control  control.State      `json:"control"`
}

func main() {
	years := flag.Int("years", 5, "operating lifetime to simulate")
	statePath := flag.String("state", "", "checkpoint file: saved each interval, resumed from if present")
	flag.Parse()

	const seed = 11
	c := chip.New(chip.DefaultParams(seed, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.SPECjbb()[0], seed)
	}
	ctl := control.New(c, control.DefaultConfig())

	start := 0
	var prev control.Assignment
	if *statePath != "" {
		if st, ok := loadState(*statePath, seed); ok {
			if err := c.RestoreState(st.Chip); err != nil {
				log.Fatalf("restore chip: %v", err)
			}
			if err := ctl.RestoreState(st.Control); err != nil {
				log.Fatalf("restore control: %v", err)
			}
			start, prev = st.Interval, st.Prev
			fmt.Printf("resumed from %s at interval %d\n", *statePath, start)
		}
	}

	fmt.Printf("chip seed %d over %d years, recalibrating every 6 months\n\n", seed, *years)
	fmt.Printf("%-10s %-26s %-10s %-14s\n", "age", "domain 0 monitored line", "onset", "converged Vdd")

	hoursPerInterval := 6 * 730.0 // six months
	intervals := *years * 2
	if start > intervals {
		fmt.Printf("checkpoint already covers %d intervals; raise -years to extend\n", start-1)
		return
	}
	for i := start; i <= intervals; i++ {
		age := float64(i) * hoursPerInterval
		for _, co := range c.Cores {
			co.Hier.L2D.Array().SetAge(age)
			co.Hier.L2I.Array().SetAge(age)
			co.InvalidateSensitivity()
		}
		a, err := ctl.CalibrateDomain(c.Domains[0])
		if err != nil {
			log.Fatal(err)
		}
		// Re-converge the domain's rail after recalibration.
		engine.Ticks(c, ctl, 800, nil)
		marker := ""
		if i > 0 && (a.Core != prev.Core || a.Kind != prev.Kind ||
			a.Set != prev.Set || a.Way != prev.Way) {
			marker = "  <- weakest line changed"
		}
		prev = a
		fmt.Printf("%5.1f yr   core %d %s set %-3d way %d   %.3f V    %.3f V%s\n",
			age/8760, a.Core, a.Kind, a.Set, a.Way, a.OnsetV,
			c.Domains[0].Rail.Target(), marker)
		if *statePath != "" {
			if err := saveState(*statePath, savedState{
				Seed: seed, Interval: i + 1, Prev: prev,
				Chip: c.CaptureState(),
			}, ctl); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
		}
	}

	fmt.Println("\naging raises the onset (and the safe operating point) over the")
	fmt.Println("chip's life; recalibration keeps the monitor on whichever line is")
	fmt.Println("weakest *now*, so speculation stays both safe and maximally deep.")
}

// loadState reads and validates a checkpoint; a missing file means a
// fresh start, anything else (corruption, wrong version, wrong seed)
// is fatal rather than silently restarting a half-finished sweep.
func loadState(path string, seed uint64) (savedState, bool) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return savedState{}, false
	}
	if err != nil {
		log.Fatalf("state: %v", err)
	}
	ver, payload, err := snapshot.DecodePayload(blob)
	if err != nil {
		log.Fatalf("state %s: %v", path, err)
	}
	if ver != stateVersion {
		log.Fatalf("state %s: version %d, this build reads %d", path, ver, stateVersion)
	}
	var st savedState
	if err := json.Unmarshal(payload, &st); err != nil {
		log.Fatalf("state %s: %v", path, err)
	}
	if st.Seed != seed {
		log.Fatalf("state %s: seed %d, this example simulates seed %d", path, st.Seed, seed)
	}
	return st, true
}

// saveState atomically replaces the checkpoint file: a kill mid-write
// leaves the previous interval's checkpoint intact.
func saveState(path string, st savedState, ctl *control.System) error {
	cs, err := ctl.CaptureState()
	if err != nil {
		return err
	}
	st.Control = cs
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, snapshot.EncodePayload(stateVersion, payload), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
