// Quickstart: build a simulated low-voltage chip, calibrate the ECC
// monitors, run closed-loop voltage speculation for a few simulated
// seconds, and print where every voltage domain settled.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eccspec"
)

func main() {
	// Each seed is a different manufactured chip: its weak cache lines,
	// logic floors and rail resonances all derive from it.
	sim, err := eccspec.NewSimulator(eccspec.Options{
		Seed:     42,
		Workload: "mcf", // any Table II benchmark name works here
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip with %d cores across %d voltage domains, nominal %.0f mV\n",
		sim.NumCores(), sim.NumDomains(), 1000*sim.NominalVoltage())

	// Boot-time calibration: sweep the L2 caches of every domain to
	// find its weakest line and point that cache's ECC monitor at it.
	if err := sim.Calibrate(); err != nil {
		log.Fatal(err)
	}
	for d := 0; d < sim.NumDomains(); d++ {
		if a, ok := sim.Control().Assignment(d); ok {
			fmt.Printf("  calibrated %s\n", a)
		}
	}

	// Engage speculation: the controller keeps each monitored line's
	// correctable-error rate between 1% and 5%, stepping rails 5 mV at
	// a time.
	fmt.Println("\nrunning 3 simulated seconds under closed-loop speculation...")
	sim.Run(3.0)

	for d := 0; d < sim.NumDomains(); d++ {
		fmt.Printf("  domain %d: %.0f mV (monitor error rate %.1f%%)\n",
			d, 1000*sim.DomainVoltage(d), 100*sim.MonitorErrorRate(d))
	}
	fmt.Printf("\naverage voltage reduction: %.1f%% below nominal\n",
		100*sim.AverageReduction())
	fmt.Printf("average chip power: %.1f W\n", sim.TotalPower())
}
