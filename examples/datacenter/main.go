// Datacenter surveys a fleet of simulated chips: every seed is a
// different manufactured specimen, so running the speculation system
// across many seeds shows the distribution of achievable voltage and
// power savings under process variation — the population-level view
// behind the paper's single-chip 18%/33% headline numbers.
//
// Run with:
//
//	go run ./examples/datacenter [-chips N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"eccspec"
	"eccspec/internal/stats"
)

func main() {
	chips := flag.Int("chips", 8, "fleet size (one seed per chip)")
	flag.Parse()

	fmt.Printf("surveying %d chips under SPECjbb-like load...\n\n", *chips)
	var reductions, domainVs []float64
	for seed := 0; seed < *chips; seed++ {
		sim := eccspec.NewSimulator(eccspec.Options{
			Seed:     uint64(1000 + seed),
			Workload: "jbb-8wh",
		})
		if err := sim.Calibrate(); err != nil {
			log.Fatalf("chip %d: %v", seed, err)
		}
		sim.Run(1.5)
		red := sim.AverageReduction()
		reductions = append(reductions, red)
		for d := 0; d < sim.NumDomains(); d++ {
			domainVs = append(domainVs, sim.DomainVoltage(d))
		}
		bar := strings.Repeat("#", int(red*200))
		fmt.Printf("chip %2d: avg reduction %5.1f%%  %s\n", seed, 100*red, bar)
	}

	fmt.Printf("\nfleet of %d chips (%d voltage domains):\n", *chips, len(domainVs))
	fmt.Printf("  mean reduction:   %5.1f%%\n", 100*stats.Mean(reductions))
	fmt.Printf("  best chip:        %5.1f%%\n", 100*stats.Max(reductions))
	fmt.Printf("  worst chip:       %5.1f%%\n", 100*stats.Min(reductions))
	fmt.Printf("  domain Vdd range: %.0f..%.0f mV (nominal 800 mV)\n",
		1000*stats.Min(domainVs), 1000*stats.Max(domainVs))
	fmt.Printf("  implied dynamic-power saving at the mean: %.0f%%\n",
		100*(1-sq(1-stats.Mean(reductions))))
}

func sq(x float64) float64 { return x * x }
