// Datacenter surveys a fleet of simulated chips: every seed is a
// different manufactured specimen, so running the speculation system
// across many seeds shows the distribution of achievable voltage and
// power savings under process variation — the population-level view
// behind the paper's single-chip 18%/33% headline numbers.
//
// The survey runs on the internal/fleet worker pool, so chips simulate
// in parallel while the output stays in seed order; a chip that fails
// (or a Ctrl-C mid-survey) is reported per chip instead of aborting
// the fleet, and the exit status is non-zero only when no chip at all
// produced a result.
//
// Run with:
//
//	go run ./examples/datacenter [-chips N] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"eccspec/internal/fleet"
)

func main() {
	chips := flag.Int("chips", 8, "fleet size (one seed per chip)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	job := fleet.Job{
		Workload: "jbb-8wh",
		Seconds:  1.5,
	}
	for seed := 0; seed < *chips; seed++ {
		job.Seeds = append(job.Seeds, uint64(1000+seed))
	}

	eng := fleet.New(fleet.Config{Workers: *workers})
	fmt.Printf("surveying %d chips under SPECjbb-like load (%d workers)...\n\n", *chips, eng.Workers())
	results, err := eng.Run(ctx, job, func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rchip %d/%d done", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	})
	if err != nil && results == nil {
		fmt.Fprintln(os.Stderr, "datacenter:", err)
		os.Exit(1)
	}

	for i, r := range results {
		if r.Err != nil {
			fmt.Printf("chip %2d: FAILED: %v\n", i, r.Err)
			continue
		}
		bar := strings.Repeat("#", int(r.AvgReduction*200))
		fmt.Printf("chip %2d: avg reduction %5.1f%%  %s\n", i, 100*r.AvgReduction, bar)
	}

	sum := fleet.Summarize(results)
	fmt.Println()
	if err := sum.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datacenter:", err)
		os.Exit(1)
	}
	if sum.Healthy() == 0 {
		fmt.Fprintln(os.Stderr, "datacenter: every chip failed")
		os.Exit(1)
	}
}
