package firmware

import (
	"testing"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/workload"
)

func testChip(seed uint64) *chip.Chip {
	c := chip.New(chip.DefaultParams(seed, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), seed)
	}
	return c
}

func TestAdaptLowersVoltageWhenQuiet(t *testing.T) {
	c := testChip(1)
	fw := New(c, DefaultConfig())
	for i := 0; i < fw.Cfg.QuietTicksToLower+2; i++ {
		fw.Adapt(c.Step())
	}
	if c.Domains[0].Rail.Target() >= c.P.Point.NominalVdd {
		t.Fatalf("rail never lowered: %v", c.Domains[0].Rail.Target())
	}
}

func TestAdaptBacksOffOnErrors(t *testing.T) {
	c := testChip(2)
	fw := New(c, DefaultConfig())
	// Force the domain near the error region, then feed a synthetic
	// report with errors and confirm the rail rises by BackoffSteps.
	d := c.Domains[0]
	d.Rail.SetTarget(0.700)
	before := d.Rail.Target()
	rep := chip.TickReport{Cores: make([]chip.CoreReport, len(c.Cores))}
	for i := range rep.Cores {
		rep.Cores[i].CoreID = i
	}
	rep.Cores[0].CorrectedD = 3
	rep.Cores[0].TrueCorrected = 3000
	fw.Adapt(rep)
	want := before + float64(fw.Cfg.BackoffSteps)*d.Rail.Params().StepV
	if got := d.Rail.Target(); got < want-1e-9 {
		t.Fatalf("rail %v after errors, want >= %v", got, want)
	}
}

func TestAdaptHoldsAfterBackoff(t *testing.T) {
	c := testChip(3)
	cfg := DefaultConfig()
	cfg.HoldTicksAfterBackoff = 10
	fw := New(c, cfg)
	d := c.Domains[0]
	d.Rail.SetTarget(0.700)

	errRep := chip.TickReport{Cores: make([]chip.CoreReport, len(c.Cores))}
	for i := range errRep.Cores {
		errRep.Cores[i].CoreID = i
	}
	errRep.Cores[0].CorrectedI = 1
	errRep.Cores[0].TrueCorrected = 1000
	fw.Adapt(errRep)
	after := d.Rail.Target()

	cleanRep := chip.TickReport{Cores: make([]chip.CoreReport, len(c.Cores))}
	for i := range cleanRep.Cores {
		cleanRep.Cores[i].CoreID = i
	}
	for i := 0; i < cfg.HoldTicksAfterBackoff-1; i++ {
		fw.Adapt(cleanRep)
	}
	if d.Rail.Target() != after {
		t.Fatalf("rail moved during hold: %v -> %v", after, d.Rail.Target())
	}
}

func TestApplyOverheadChargesCores(t *testing.T) {
	c := testChip(4)
	fw := New(c, DefaultConfig())
	rep := chip.TickReport{Cores: make([]chip.CoreReport, len(c.Cores))}
	for i := range rep.Cores {
		rep.Cores[i].CoreID = i
	}
	rep.Cores[2].CorrectedD = 5
	rep.Cores[2].TrueCorrected = 5000
	if n := fw.ApplyOverhead(rep); n != 5 {
		t.Fatalf("reported %d errors, want 5", n)
	}
	// The charged core must now do less work per tick than a peer.
	c.Step()
	w2 := c.Cores[2].Work()
	w3 := c.Cores[3].Work()
	if w2 >= w3 {
		t.Fatalf("overhead-charged core did %v work vs peer %v", w2, w3)
	}
}

func TestSoftwareSettlesAboveHardware(t *testing.T) {
	// The headline Fig. 17 relationship: the firmware baseline operates
	// at a higher voltage than the hardware monitor system on the same
	// chip under the same workload.
	if testing.Short() {
		t.Skip("long convergence run")
	}
	seed := uint64(5)

	// Hardware system.
	hw := chip.New(chip.DefaultParams(seed, true, false))
	for _, co := range hw.Cores {
		co.SetWorkload(workload.StressTest(), seed)
	}
	ctl := control.New(hw, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		hw.Step()
		ctl.Tick()
	}

	// Software system on an identical chip.
	sw := chip.New(chip.DefaultParams(seed, true, false))
	for _, co := range sw.Cores {
		co.SetWorkload(workload.StressTest(), seed)
	}
	fw := New(sw, DefaultConfig())
	for i := 0; i < 1500; i++ {
		fw.Adapt(sw.Step())
	}

	for d := range hw.Domains {
		vh := hw.Domains[d].Rail.Target()
		vs := sw.Domains[d].Rail.Target()
		if vs < vh-1e-9 {
			t.Fatalf("domain %d: software %v below hardware %v", d, vs, vh)
		}
	}
	// And strictly above somewhere: the techniques must actually differ.
	strict := false
	for d := range hw.Domains {
		if sw.Domains[d].Rail.Target() > hw.Domains[d].Rail.Target()+1e-9 {
			strict = true
		}
	}
	if !strict {
		t.Fatal("software baseline matched hardware everywhere; conservatism missing")
	}
	for _, co := range sw.Cores {
		if !co.Alive() {
			t.Fatalf("software speculation crashed core %d", co.ID)
		}
	}
}
