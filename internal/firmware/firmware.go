// Package firmware implements the software/firmware-only voltage
// speculation baseline the paper compares against (its reference [4],
// the authors' earlier system).
//
// Unlike the hardware design (internal/monitor + internal/control), the
// firmware system has no targeted probing. It watches the correctable
// errors that the *running workload* happens to trigger when it touches
// sensitive cache lines, and it pays a firmware trap cost for every
// handled error. Two consequences, both demonstrated in the paper's
// Figs. 17 and 18:
//
//   - Conservatism. Because a workload may not exercise the weakest
//     lines (or may idle), silence is ambiguous: the system cannot tell
//     a healthy margin from an untested one. It therefore refuses to go
//     below a per-domain safe floor determined by off-line calibration
//     (the voltage at which a calibration sweep first sees correctable
//     errors), lowers voltage only after long error-free periods, and
//     backs off several steps the moment any error appears. Most
//     domains end up pinned at their calibrated floor, well above the
//     hardware system's operating point — exactly the behaviour the
//     paper reports for [4].
//   - Overhead. Each correctable error costs HandlingSeconds of firmware
//     time on the affected core. Pushed to low voltages the error rate
//     explodes and the energy *per unit of work* turns back up — the
//     divergence in Fig. 18.
package firmware

import (
	"eccspec/internal/chip"
	"eccspec/internal/rng"
	"eccspec/internal/stats"
)

// Config tunes the firmware baseline.
type Config struct {
	// QuietTicksToLower is how many consecutive error-free ticks a
	// domain needs before lowering its rail one step.
	QuietTicksToLower int
	// BackoffSteps is the immediate rail increase on any observed
	// error ("raise the voltage to a safe level").
	BackoffSteps int
	// HoldTicksAfterBackoff freezes downward speculation after a
	// backoff.
	HoldTicksAfterBackoff int
	// HandlingSeconds is the firmware cost of servicing one
	// correctable-error trap (context save, logging, decision). Unlike
	// the logging path, the firmware handler runs for *every* corrected
	// event, so overhead is charged on the chip's true event rate.
	HandlingSeconds float64
	// MaxOverhead caps the lost-cycle fraction per tick; even a core
	// drowning in error traps retires some instructions between them.
	MaxOverhead float64
}

// DefaultConfig returns parameters representative of the prior-work
// firmware system: cautious stepping and a ~60 microsecond handler.
func DefaultConfig() Config {
	return Config{
		QuietTicksToLower:     100,
		BackoffSteps:          4,
		HoldTicksAfterBackoff: 1000,
		HandlingSeconds:       60e-6,
		MaxOverhead:           0.95,
	}
}

// System is the firmware speculation baseline for one chip.
type System struct {
	Chip *chip.Chip
	Cfg  Config

	quiet  []int
	hold   []int
	floors []float64
	stream *rng.Stream
}

// New attaches the firmware system to a chip. Floors default to zero
// (no off-line calibration); feed SetFloor with per-domain onset
// voltages (e.g. from control.FindOnset) to model the safe levels
// of [4].
func New(c *chip.Chip, cfg Config) *System {
	return &System{
		Chip:   c,
		Cfg:    cfg,
		quiet:  make([]int, len(c.Domains)),
		hold:   make([]int, len(c.Domains)),
		floors: make([]float64, len(c.Domains)),
		stream: rng.NewStream(c.P.Seed, 0xF1A4),
	}
}

// SetFloor sets one domain's off-line calibrated safe level: Adapt never
// steps the rail below it.
func (s *System) SetFloor(domain int, v float64) {
	s.floors[domain] = v
}

// Floor returns a domain's calibrated safe level.
func (s *System) Floor(domain int) float64 { return s.floors[domain] }

// domainTrueErrors samples the tick's *trap-visible* correctable-error
// count over a domain's cores. The firmware handler is invoked for every
// corrected event — there is no logging throttle in front of it — so the
// policy reacts to draws from the true event rate, which is what makes
// the baseline so much jumpier than the monitor-driven controller.
func (s *System) domainTrueErrors(rep chip.TickReport, d *chip.Domain) int {
	total := 0
	for _, id := range d.CoreIDs {
		total += stats.SamplePoisson(s.stream, rep.Cores[id].TrueCorrected)
	}
	return total
}

// overheadFor converts a core's true corrected-event rate into the
// lost-cycle fraction of the next tick, capped at MaxOverhead.
func (s *System) overheadFor(cr chip.CoreReport) float64 {
	frac := cr.TrueCorrected * s.Cfg.HandlingSeconds / s.Chip.P.TickSeconds
	if frac > s.Cfg.MaxOverhead {
		frac = s.Cfg.MaxOverhead
	}
	return frac
}

// ApplyOverhead charges each core the firmware handling cost for the
// errors it incurred this tick, expressed as a lost-cycle fraction of
// the next tick. It returns the total reported errors. Use it alone when
// the voltage is being forced externally (energy-vs-voltage sweeps).
func (s *System) ApplyOverhead(rep chip.TickReport) int {
	total := 0
	for _, cr := range rep.Cores {
		s.Chip.Cores[cr.CoreID].SetOverheadFraction(s.overheadFor(cr))
		total += cr.CorrectedD + cr.CorrectedI + cr.CorrectedRF
	}
	return total
}

// Adapt runs one firmware policy iteration on the tick's report: charge
// handling overhead, then adjust each domain's rail. Call it after
// chip.Step.
func (s *System) Adapt(rep chip.TickReport) {
	for _, d := range s.Chip.Domains {
		total := s.domainTrueErrors(rep, d)
		for _, id := range d.CoreIDs {
			s.Chip.Cores[id].SetOverheadFraction(s.overheadFor(rep.Cores[id]))
		}
		switch {
		case total > 0:
			d.Rail.StepUp(s.Cfg.BackoffSteps)
			s.hold[d.ID] = s.Cfg.HoldTicksAfterBackoff
			s.quiet[d.ID] = 0
		case s.hold[d.ID] > 0:
			s.hold[d.ID]--
		default:
			s.quiet[d.ID]++
			if s.quiet[d.ID] >= s.Cfg.QuietTicksToLower &&
				d.Rail.Target() > s.floors[d.ID]+1e-9 {
				d.Rail.StepDown(1)
				s.quiet[d.ID] = 0
			}
		}
	}
}
