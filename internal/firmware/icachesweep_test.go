package firmware

import (
	"testing"

	"eccspec/internal/cache"
	"eccspec/internal/variation"
)

func sweepHierarchy(seed uint64) *cache.Hierarchy {
	m := variation.New(seed, variation.LowVoltage())
	cfg := cache.HierarchyConfig{
		L1I:        cache.Config{Name: "L1I", Kind: variation.KindL1I, Sets: 8, Ways: 4, HitLatency: 1},
		L1D:        cache.Config{Name: "L1D", Kind: variation.KindL1D, Sets: 8, Ways: 4, HitLatency: 1},
		L2I:        cache.Config{Name: "L2I", Kind: variation.KindL2I, Sets: 64, Ways: 8, HitLatency: 9},
		L2D:        cache.Config{Name: "L2D", Kind: variation.KindL2D, Sets: 32, Ways: 8, HitLatency: 9},
		MemLatency: 100,
	}
	return cache.NewHierarchy(cfg, 0, m, nil)
}

func TestInstructionSweepCoversWholeL2I(t *testing.T) {
	h := sweepHierarchy(1)
	sw := NewInstructionSweep(h, 0)
	res := sw.Run(0.95)
	total := h.L2I.Config().Sets * h.L2I.Config().Ways
	if got := sw.Coverage(); got != total {
		t.Fatalf("sweep covered %d/%d L2I lines", got, total)
	}
	if res.Fetches != 2*total {
		t.Fatalf("fetches %d, want %d", res.Fetches, 2*total)
	}
	if res.Fatal || res.FirstErrSet != -1 {
		t.Fatalf("errors at safe voltage: %+v", res)
	}
}

func TestInstructionSweepExercisesL2NotJustL1(t *testing.T) {
	h := sweepHierarchy(2)
	sw := NewInstructionSweep(h, 0)
	h.L2I.ResetStats()
	sw.Run(0.95)
	st := h.L2I.Stats()
	// Pass 2 must hit resident L2I lines (the L1 is far too small to
	// shield them).
	if st.Hits < uint64(h.L2I.Config().Sets*h.L2I.Config().Ways/2) {
		t.Fatalf("only %d L2I hits; the sweep is not exercising the L2", st.Hits)
	}
}

func TestInstructionSweepFindsWeakLine(t *testing.T) {
	h := sweepHierarchy(3)
	set, way, p := h.L2I.Array().WeakestLine()
	sw := NewInstructionSweep(h, 0)
	// Probe a few millivolts below the weakest cell's onset so its
	// flip probability is high on every fetch.
	found := false
	for pass := 0; pass < 6 && !found; pass++ {
		res := sw.Run(p.Vmax() - 0.005)
		for _, ev := range res.Events {
			if ev.Cache == "L2I" && ev.Set == set && ev.Way == way {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("sweep never reported the weakest L2I line (%d,%d)", set, way)
	}
}

func TestInstructionSweepFirstErrorCoordinates(t *testing.T) {
	h := sweepHierarchy(4)
	_, _, p := h.L2I.Array().WeakestLine()
	sw := NewInstructionSweep(h, 0)
	res := sw.Run(p.Vmax() - 0.010)
	if res.FirstErrSet < 0 {
		t.Skip("no error this pass; probabilistic")
	}
	if res.FirstErrSet >= h.L2I.Config().Sets || res.FirstErrWay >= h.L2I.Config().Ways {
		t.Fatalf("first-error coordinates out of range: (%d,%d)",
			res.FirstErrSet, res.FirstErrWay)
	}
}

func TestDataSweepCoversWholeL2D(t *testing.T) {
	h := sweepHierarchy(6)
	sw := NewDataSweep(h, 0)
	res := sw.Run(0.95)
	total := h.L2D.Config().Sets * h.L2D.Config().Ways
	if got := sw.Coverage(); got != total {
		t.Fatalf("sweep covered %d/%d L2D lines", got, total)
	}
	if res.Fatal || res.FirstErrSet != -1 {
		t.Fatalf("errors at safe voltage: %+v", res)
	}
}

func TestDataSweepFindsWeakLine(t *testing.T) {
	h := sweepHierarchy(7)
	set, way, p := h.L2D.Array().WeakestLine()
	sw := NewDataSweep(h, 0)
	found := false
	for pass := 0; pass < 6 && !found; pass++ {
		res := sw.Run(p.Vmax() - 0.005)
		for _, ev := range res.Events {
			if ev.Cache == "L2D" && ev.Set == set && ev.Way == way {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("sweep never reported the weakest L2D line (%d,%d)", set, way)
	}
}

func TestDataSweepDoesNotTouchInstructionSide(t *testing.T) {
	h := sweepHierarchy(8)
	h.L2I.ResetStats()
	NewDataSweep(h, 0).Run(0.95)
	st := h.L2I.Stats()
	if st.Hits+st.Misses != 0 {
		t.Fatal("data sweep leaked into the instruction caches")
	}
}
