package firmware

import (
	"eccspec/internal/cache"
	"eccspec/internal/sram"
)

// InstructionSweep implements the paper's Fig. 6 instruction-cache sweep
// mechanically: System Firmware flashes a cache-line-sized template of
// straight-line instructions in ROM, copies it sequentially across a
// region of physical memory at boot, and then *executes* through the
// replicas — each template ends in a conditional branch to the next
// cache-line-aligned copy — until every set and way of the instruction
// caches has been exercised. The data-side sweep (§III-C) is the simpler
// loads-and-stores analogue.
//
// In the simulation the executed templates become instruction-fetch
// accesses through the core's hierarchy. The sweep walks enough
// consecutive line addresses to cover every L2I set, repeated for every
// way with distinct tags, so each L2I line is filled and then re-fetched
// at the probe voltage (the re-fetch hits the L2 after the L1 replicas
// are evicted by the walk itself — the L1 is much smaller than the L2).
type InstructionSweep struct {
	hier *cache.Hierarchy
	// Region is the base physical address of the replicated templates.
	Region uint64
}

// NewInstructionSweep prepares a sweep over the core's instruction-side
// caches.
func NewInstructionSweep(h *cache.Hierarchy, region uint64) *InstructionSweep {
	return &InstructionSweep{hier: h, Region: region}
}

// SweepResult reports one full pass.
type SweepResult struct {
	// Fetches is the number of template executions (line fetches).
	Fetches int
	// Events is every ECC event raised during the pass.
	Events []cache.Event
	// FirstErrSet / FirstErrWay locate the first L2I line that reported
	// an event (-1 if none).
	FirstErrSet, FirstErrWay int
	// Fatal reports an uncorrectable fault during the sweep.
	Fatal bool
}

// Run executes one full sweep at effective voltage v: the walk covers
// l2Sets x l2Ways distinct line addresses twice — first to populate the
// L2I, then to re-execute every template so each resident line is
// re-fetched from the L2.
func (s *InstructionSweep) Run(v float64) SweepResult {
	cfg := s.hier.L2I.Config()
	lineSpan := uint64(sram.LineBytes)
	span := uint64(cfg.Sets) * lineSpan
	res := SweepResult{FirstErrSet: -1, FirstErrWay: -1}

	fetch := func(addr uint64) {
		r := s.hier.AccessInstr(addr, v)
		res.Fetches++
		for _, ev := range r.Events {
			if ev.Cache == "L2I" && res.FirstErrSet < 0 {
				res.FirstErrSet, res.FirstErrWay = ev.Set, ev.Way
			}
		}
		res.Events = append(res.Events, r.Events...)
		res.Fatal = res.Fatal || r.Fatal
	}
	// Pass 1: sequential execution through the replicated templates,
	// one tag per way, populating the whole L2I.
	for way := 0; way < cfg.Ways; way++ {
		base := s.Region + uint64(way)*span
		for set := 0; set < cfg.Sets; set++ {
			fetch(base + uint64(set)*lineSpan)
		}
	}
	// Pass 2: branch back through every template; the tiny L1I holds
	// only the tail of the walk, so these fetches hit the L2I lines
	// under test.
	for way := 0; way < cfg.Ways; way++ {
		base := s.Region + uint64(way)*span
		for set := 0; set < cfg.Sets; set++ {
			fetch(base + uint64(set)*lineSpan)
		}
	}
	return res
}

// Coverage reports how many L2I lines currently hold sweep templates
// (valid lines within the sweep's address region), letting tests verify
// the walk filled the entire array.
func (s *InstructionSweep) Coverage() int {
	cfg := s.hier.L2I.Config()
	lineSpan := uint64(sram.LineBytes)
	span := uint64(cfg.Sets) * lineSpan
	n := 0
	for way := 0; way < cfg.Ways; way++ {
		base := s.Region + uint64(way)*span
		for set := 0; set < cfg.Sets; set++ {
			if _, hit := s.hier.L2I.Lookup(base + uint64(set)*lineSpan); hit {
				n++
			}
		}
	}
	return n
}
