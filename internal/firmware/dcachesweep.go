package firmware

import (
	"eccspec/internal/cache"
	"eccspec/internal/sram"
)

// DataSweep is the data-cache half of the §III-C calibration sweep: "a
// set of loads and stores are performed in cache line sized increments"
// across enough addresses to cover every set and way of the L2 data
// cache. Like the instruction sweep it runs through the core's normal
// access path, so the L1 filters the stream and the second pass hits the
// resident L2 lines under test.
type DataSweep struct {
	hier *cache.Hierarchy
	// Region is the base physical address of the swept buffer.
	Region uint64
}

// NewDataSweep prepares a sweep over the core's data-side caches.
func NewDataSweep(h *cache.Hierarchy, region uint64) *DataSweep {
	return &DataSweep{hier: h, Region: region}
}

// Run performs one full pass at effective voltage v and returns the same
// report shape as the instruction sweep.
func (s *DataSweep) Run(v float64) SweepResult {
	cfg := s.hier.L2D.Config()
	lineSpan := uint64(sram.LineBytes)
	span := uint64(cfg.Sets) * lineSpan
	res := SweepResult{FirstErrSet: -1, FirstErrWay: -1}

	access := func(addr uint64) {
		r := s.hier.AccessData(addr, v)
		res.Fetches++
		for _, ev := range r.Events {
			if ev.Cache == "L2D" && res.FirstErrSet < 0 {
				res.FirstErrSet, res.FirstErrWay = ev.Set, ev.Way
			}
		}
		res.Events = append(res.Events, r.Events...)
		res.Fatal = res.Fatal || r.Fatal
	}
	for pass := 0; pass < 2; pass++ {
		for way := 0; way < cfg.Ways; way++ {
			base := s.Region + uint64(way)*span
			for set := 0; set < cfg.Sets; set++ {
				access(base + uint64(set)*lineSpan)
			}
		}
	}
	return res
}

// Coverage reports how many L2D lines currently hold swept buffer lines.
func (s *DataSweep) Coverage() int {
	cfg := s.hier.L2D.Config()
	lineSpan := uint64(sram.LineBytes)
	span := uint64(cfg.Sets) * lineSpan
	n := 0
	for way := 0; way < cfg.Ways; way++ {
		base := s.Region + uint64(way)*span
		for set := 0; set < cfg.Sets; set++ {
			if _, hit := s.hier.L2D.Lookup(base + uint64(set)*lineSpan); hit {
				n++
			}
		}
	}
	return n
}
