// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every stochastic quantity in the simulation — a bit cell's critical
// voltage, a per-access fault draw, a workload phase boundary — must be a
// pure function of the chip seed and a stable identity (structure id, set,
// way, bit, access counter). That way a simulated chip has a fixed
// "personality": the same weak cache lines trip the same errors run after
// run, which is the empirical property the paper's speculation system
// depends on (MICRO 2014, §II-D).
//
// The package offers two layers:
//
//   - Hash: a stateless SplitMix64-style mixing function over a key tuple.
//     Use it when the identity of the draw is naturally a coordinate
//     (e.g. "bit 13 of way 2 of set 77 of the L2D on core 3").
//   - Stream: a cheap sequential generator seeded from a Hash, for code
//     that needs many draws in a row (e.g. a workload's arrival process).
package rng

import "math"

// mix64 is the SplitMix64 finalizer: a bijective mixing of a 64-bit value
// with good avalanche behaviour. It is the core primitive for both the
// stateless hash and the sequential stream.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// golden is the SplitMix64 sequence increment (2^64 / phi, odd).
const golden = 0x9e3779b97f4a7c15

// Hash mixes a seed with an arbitrary-length key tuple into a uniformly
// distributed 64-bit value. Hash is stateless: the same inputs always
// produce the same output, and flipping any single input bit reshuffles
// the output completely.
func Hash(seed uint64, key ...uint64) uint64 {
	h := mix64(seed + golden)
	for _, k := range key {
		h = mix64(h ^ mix64(k+golden))
	}
	return h
}

// Uniform converts a hash value to a float64 uniformly distributed in
// [0, 1). It uses the top 53 bits, so every representable value is an
// exact multiple of 2^-53.
func Uniform(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// UniformAt is shorthand for Uniform(Hash(seed, key...)).
func UniformAt(seed uint64, key ...uint64) float64 {
	return Uniform(Hash(seed, key...))
}

// Normal converts a pair of hash-derived uniforms into a standard normal
// deviate using the Box-Muller transform. Deterministic in its inputs.
func Normal(h1, h2 uint64) float64 {
	u1 := Uniform(h1)
	u2 := Uniform(h2)
	// Guard against log(0): Uniform can return exactly 0.
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalAt draws a standard normal deviate identified by (seed, key...).
// The two Box-Muller uniforms are derived by extending the key, so distinct
// keys give independent deviates.
func NormalAt(seed uint64, key ...uint64) float64 {
	h1 := Hash(seed, key...)
	h2 := mix64(h1 ^ golden)
	return Normal(h1, h2)
}

// NormalInv converts a single hash value to a standard normal deviate via
// the Acklam inverse-CDF approximation (max relative error ~1.15e-9). It
// is roughly 3x cheaper than Box-Muller and needs only one hash, which
// matters when scanning millions of SRAM cells.
func NormalInv(h uint64) float64 {
	p := Uniform(h)
	// Keep p strictly inside (0,1); the tails beyond ~1e-16 map to
	// about +/-8.2 sigma, far beyond any cell this simulation can meet.
	if p < 1e-16 {
		p = 1e-16
	} else if p > 1-1e-16 {
		p = 1 - 1e-16
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}

// NormalInvAt draws a standard normal deviate identified by (seed, key...)
// using the single-hash inverse-CDF path.
func NormalInvAt(seed uint64, key ...uint64) float64 {
	return NormalInv(Hash(seed, key...))
}

// Stream is a sequential SplitMix64 generator for hot loops that need many
// draws under one identity. The zero value is a valid generator seeded
// with 0; prefer NewStream to tie the stream to a hashed identity.
type Stream struct {
	state uint64
}

// NewStream returns a Stream whose sequence is determined by
// Hash(seed, key...).
func NewStream(seed uint64, key ...uint64) *Stream {
	return &Stream{state: Hash(seed, key...)}
}

// Uint64 returns the next 64-bit value in the stream.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Float64 returns the next uniform deviate in [0, 1).
func (s *Stream) Float64() float64 {
	return Uniform(s.Uint64())
}

// Normal returns the next standard normal deviate.
func (s *Stream) Normal() float64 {
	return Normal(s.Uint64(), s.Uint64())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Fork derives an independent child stream. The child's sequence depends
// on the parent's current state and the supplied key, so forks taken at
// different points or with different keys do not collide.
func (s *Stream) Fork(key uint64) *Stream {
	return &Stream{state: Hash(s.state, key)}
}

// State returns the stream's internal state word. Together with SetState
// it lets a checkpoint capture a stream mid-sequence and resume it with
// bit-exact continuation.
func (s *Stream) State() uint64 { return s.state }

// SetState overwrites the stream's internal state word, positioning the
// sequence exactly where a previous State call observed it.
func (s *Stream) SetState(state uint64) { s.state = state }
