package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash(42, 1, 2, 3)
	b := Hash(42, 1, 2, 3)
	if a != b {
		t.Fatalf("Hash not deterministic: %x vs %x", a, b)
	}
}

func TestHashDistinctKeys(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Hash(7, i)
		if seen[h] {
			t.Fatalf("collision at key %d", i)
		}
		seen[h] = true
	}
}

func TestHashSeedSensitivity(t *testing.T) {
	if Hash(1, 5) == Hash(2, 5) {
		t.Fatal("different seeds produced identical hash")
	}
}

func TestHashKeyLengthSensitivity(t *testing.T) {
	// A key tuple must not collide with its prefix.
	if Hash(9, 1) == Hash(9, 1, 0) {
		t.Fatal("key (1) collides with key (1,0)")
	}
}

func TestHashOrderSensitivity(t *testing.T) {
	if Hash(9, 1, 2) == Hash(9, 2, 1) {
		t.Fatal("hash insensitive to key order")
	}
}

func TestUniformRange(t *testing.T) {
	for i := uint64(0); i < 100000; i++ {
		u := UniformAt(3, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
}

func TestUniformMean(t *testing.T) {
	const n = 200000
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += UniformAt(11, i)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := uint64(0); i < n; i++ {
		x := NormalAt(13, i)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormalAtDeterministic(t *testing.T) {
	if NormalAt(5, 6, 7) != NormalAt(5, 6, 7) {
		t.Fatal("NormalAt not deterministic")
	}
}

func TestNormalInvMoments(t *testing.T) {
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := uint64(0); i < n; i++ {
		x := NormalInvAt(29, i)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormalInv mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("NormalInv variance %v too far from 1", variance)
	}
}

func TestNormalInvMonotoneInUniform(t *testing.T) {
	// The inverse CDF must be monotone: larger uniform, larger deviate.
	// Probe via hashes whose Uniform values we can order.
	type pair struct {
		u float64
		z float64
	}
	var pairs []pair
	for i := uint64(0); i < 2000; i++ {
		h := Hash(31, i)
		pairs = append(pairs, pair{Uniform(h), NormalInv(h)})
	}
	for i := range pairs {
		for j := i + 1; j < len(pairs); j++ {
			if (pairs[i].u < pairs[j].u) != (pairs[i].z < pairs[j].z) {
				t.Fatalf("NormalInv not monotone: u=%v,%v z=%v,%v",
					pairs[i].u, pairs[j].u, pairs[i].z, pairs[j].z)
			}
		}
		if j := len(pairs); j > 200 && i > 200 {
			break // O(n^2) guard; 200 pairs is plenty
		}
	}
}

func TestNormalInvTailAccuracy(t *testing.T) {
	// Check a few known quantiles of the standard normal.
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9772498680518208, 2},
		{0.9986501019683699, 3},
		{1 - 0.9986501019683699, -3},
	}
	for _, c := range cases {
		// Find a hash whose uniform is close to p by direct construction:
		// Uniform uses the top 53 bits, so build the hash value directly.
		h := uint64(c.p*(1<<53)) << 11
		z := NormalInv(h)
		if math.Abs(z-c.z) > 0.001 {
			t.Errorf("NormalInv at p=%v: z=%v, want %v", c.p, z, c.z)
		}
	}
}

func TestQuickNormalInvFinite(t *testing.T) {
	f := func(h uint64) bool {
		z := NormalInv(h)
		return !math.IsNaN(z) && !math.IsInf(z, 0) && math.Abs(z) < 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterministic(t *testing.T) {
	s1 := NewStream(99, 1)
	s2 := NewStream(99, 1)
	for i := 0; i < 1000; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	s1 := NewStream(99, 1)
	s2 := NewStream(99, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently-keyed streams matched %d times", same)
	}
}

func TestStreamIntnRange(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestStreamIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestStreamBernoulliExtremes(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 1000; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestStreamBernoulliRate(t *testing.T) {
	s := NewStream(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewStream(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children with distinct keys produced same first value")
	}
}

func TestForkDeterministic(t *testing.T) {
	a := NewStream(7).Fork(9).Uint64()
	b := NewStream(7).Fork(9).Uint64()
	if a != b {
		t.Fatal("Fork not deterministic")
	}
}

// Property: Uniform always lands in [0,1) for arbitrary hash inputs.
func TestQuickUniformRange(t *testing.T) {
	f := func(h uint64) bool {
		u := Uniform(h)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hash is a pure function (same inputs, same output).
func TestQuickHashPure(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		return Hash(seed, a, b) == Hash(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Normal is finite for arbitrary inputs.
func TestQuickNormalFinite(t *testing.T) {
	f := func(h1, h2 uint64) bool {
		v := Normal(h1, h2)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash(42, uint64(i), 3, 7)
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(42)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkNormalAt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalAt(42, uint64(i))
	}
}
