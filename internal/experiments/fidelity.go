package experiments

// Adaptive-fidelity validation: every workload in the table runs twice
// on the same chip specimen — once at full per-event fidelity and once
// with adaptive fast-forward enabled — and the harness reports how far
// the cheap path drifts. Adaptive mode replaces per-line error sampling
// with one aggregate Poisson draw per (core, bank) while the control
// loop holds steady, so its trajectory is NOT byte-identical to full
// fidelity; the claim this table defends is statistical: mean Vdd
// within 1% and DUE counts within sampling noise, at a large tick-rate
// speedup.
//
// Chips and control systems are built directly (like the policy race)
// because this package is imported by the public Simulator.

import (
	"fmt"
	"time"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fidelity",
		Title: "(extension) Adaptive fast-forward fidelity vs full event sampling",
		Paper: "Extension",
		Run:   runFidelity,
	})
}

// fidelityWorkloads is the validation set: cache-hostile and
// cache-friendly SPEC benchmarks, the server load, and two firmware
// kernels with very different footprints.
var fidelityWorkloads = []string{
	"mcf", "gcc", "equake", "swim", "jbb-8wh", "crc", "stress-kernel",
}

// fidelityCell is one (workload, fidelity) run's outcome.
type fidelityCell struct {
	avgVddV     float64
	due         uint64
	emergencies int
	ffTicks     int64 // ticks simulated in fast-forward (adaptive only)
	dropbacks   int64
	ticks       int
	elapsed     time.Duration
}

// runFidelityCell measures one workload at one fidelity: build,
// calibrate, converge, then measure with fresh DUE accounting. The
// wall-clock measure-window duration feeds the speedup column.
func runFidelityCell(seed uint64, full, adaptive bool, wlName string, converge, measure int) (fidelityCell, error) {
	var out fidelityCell
	wl, _ := workload.ByName(wlName)
	c := chip.New(chip.DefaultParams(seed, true, full))
	if adaptive {
		c.SetAdaptiveFidelity(true)
	}
	for _, co := range c.Cores {
		co.SetWorkload(wl, seed)
	}
	ctl := control.New(c, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		return out, fmt.Errorf("calibrate: %w", err)
	}
	engine.Ticks(c, ctl, converge, nil)
	for _, co := range c.Cores {
		co.ResetAccounting()
	}
	dueBase := sumUncorrectable(c)
	ffBase := c.FastForwardTicks()
	dropBase := c.FidelityDropbacks()

	sumV := 0.0
	start := time.Now()
	ran := engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, _ []control.Action) bool {
		for _, d := range c.Domains {
			sumV += d.Rail.Target()
		}
		return true
	})
	out.elapsed = time.Since(start)
	out.ticks = ran
	out.avgVddV = sumV / float64(ran*len(c.Domains))
	out.due = sumUncorrectable(c) - dueBase
	out.emergencies = ctl.Emergencies()
	out.ffTicks = c.FastForwardTicks() - ffBase
	out.dropbacks = c.FidelityDropbacks() - dropBase
	for i, co := range c.Cores {
		if !co.Alive() {
			return out, fmt.Errorf("core %d died under %s", i, wlName)
		}
	}
	return out, nil
}

// runFidelity runs the full-vs-adaptive pair on every workload in the
// validation set and tabulates the deltas.
func runFidelity(o Options) (*Result, error) {
	converge := o.scale(1800, 250)
	measure := o.scale(1800, 250)

	tbl := NewTextTable("workload", "full Vdd", "adaptive Vdd", "dVdd",
		"DUE f/a", "emerg f/a", "ff ticks", "dropbacks", "speedup")
	metrics := map[string]float64{}
	worstDelta := 0.0
	sumSpeedup := 0.0
	for _, wlName := range fidelityWorkloads {
		fc, err := runFidelityCell(o.Seed, o.Full, false, wlName, converge, measure)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", wlName, err)
		}
		ac, err := runFidelityCell(o.Seed, o.Full, true, wlName, converge, measure)
		if err != nil {
			return nil, fmt.Errorf("%s adaptive: %w", wlName, err)
		}
		deltaPct := 100 * (ac.avgVddV - fc.avgVddV) / fc.avgVddV
		if d := deltaPct; d < 0 {
			d = -d
			if d > worstDelta {
				worstDelta = d
			}
		} else if d > worstDelta {
			worstDelta = d
		}
		ffFrac := float64(ac.ffTicks) / float64(ac.ticks)
		speedup := fc.elapsed.Seconds() / ac.elapsed.Seconds()
		sumSpeedup += speedup
		tbl.AddRow(wlName,
			fmt.Sprintf("%.4f V", fc.avgVddV),
			fmt.Sprintf("%.4f V", ac.avgVddV),
			fmt.Sprintf("%+.3f%%", deltaPct),
			fmt.Sprintf("%d/%d", fc.due, ac.due),
			fmt.Sprintf("%d/%d", fc.emergencies, ac.emergencies),
			fmt.Sprintf("%d (%.0f%%)", ac.ffTicks, 100*ffFrac),
			fmt.Sprintf("%d", ac.dropbacks),
			fmt.Sprintf("%.1fx", speedup))
		metrics["vdd_delta_pct_"+wlName] = deltaPct
		metrics["due_full_"+wlName] = float64(fc.due)
		metrics["due_adaptive_"+wlName] = float64(ac.due)
		metrics["ff_frac_"+wlName] = ffFrac
		metrics["speedup_"+wlName] = speedup
	}
	metrics["worst_vdd_delta_pct"] = worstDelta
	metrics["mean_speedup"] = sumSpeedup / float64(len(fidelityWorkloads))
	return &Result{
		ID: "fidelity", Title: "Adaptive-fidelity validation",
		Headline: fmt.Sprintf(
			"adaptive fast-forward tracks full fidelity within %.2f%% mean Vdd at a %.1fx measure-window speedup",
			worstDelta, metrics["mean_speedup"]),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}
