package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
)

func init() {
	register(Experiment{
		ID:    "pareto",
		Title: "Energy-performance frontier with and without ECC-guided speculation",
		Paper: "Section I (extension)",
		Run:   runPareto,
	})
}

// runPareto casts the paper's motivation (§I: handheld systems want both
// performance and battery life) as an explicit frontier: at each
// operating frequency the chip delivers a fixed performance (in
// instructions per second) and some energy per instruction; speculation
// moves every point down the energy axis without touching performance.
// The headline metric is the iso-energy performance gain: how much
// faster the speculated chip can run on the unspeculated chip's energy
// budget.
func runPareto(o Options) (*Result, error) {
	freqs := []float64{340e6, 500e6, 750e6, 1000e6}
	converge := o.scale(1500, 200)
	measure := o.scale(1500, 200)

	type point struct {
		freq    float64
		gips    float64 // delivered instructions per second, chip-wide
		epwBase float64 // joules per instruction, nominal voltage
		epwSpec float64 // joules per instruction, speculated
	}
	var pts []point
	for _, f := range freqs {
		params := chip.DefaultParamsAt(o.Seed, f, o.Full)
		measureRun := func(speculate bool) (epw, work float64, err error) {
			c := chip.New(params)
			assignSuite(c, "SPECint", o.Seed)
			var ctl *control.System
			if speculate {
				ctl = control.New(c, control.DefaultConfig())
				if _, err := ctl.Calibrate(); err != nil {
					return 0, 0, err
				}
				engine.Ticks(c, ctl, converge, nil)
			}
			for _, co := range c.Cores {
				co.ResetAccounting()
			}
			// ctl is nil in the baseline run, which Ticks treats as
			// "no controller".
			engine.Ticks(c, ctl, measure, nil)
			var e float64
			for i, co := range c.Cores {
				if !co.Alive() {
					return 0, 0, fmt.Errorf("core %d died at %.0f MHz (spec=%v)", i, f/1e6, speculate)
				}
				e += co.Energy()
				work += co.Work()
			}
			return e / work, work, nil
		}
		epwB, work, err := measureRun(false)
		if err != nil {
			return nil, err
		}
		epwS, _, err := measureRun(true)
		if err != nil {
			return nil, err
		}
		seconds := float64(measure) * params.TickSeconds
		pts = append(pts, point{freq: f, gips: work / seconds / 1e9,
			epwBase: epwB, epwSpec: epwS})
	}

	tbl := NewTextTable("frequency", "performance", "nJ/inst (nominal)", "nJ/inst (speculated)", "energy saved")
	metrics := map[string]float64{}
	for _, p := range pts {
		key := fmt.Sprintf("%.0f", p.freq/1e6)
		metrics["epw_base_mhz"+key] = p.epwBase
		metrics["epw_spec_mhz"+key] = p.epwSpec
		metrics["gips_mhz"+key] = p.gips
		tbl.AddRow(fmt.Sprintf("%.0f MHz", p.freq/1e6),
			fmt.Sprintf("%.2f GIPS", p.gips),
			fmt.Sprintf("%.3f", p.epwBase*1e9),
			fmt.Sprintf("%.3f", p.epwSpec*1e9),
			fmt.Sprintf("%.1f%%", 100*(1-p.epwSpec/p.epwBase)))
	}
	// Iso-energy gain: the fastest speculated tier whose energy per
	// instruction undercuts the *slowest* nominal tier's.
	baseBudget := pts[0].epwBase
	gain := 1.0
	for _, p := range pts {
		if p.epwSpec <= baseBudget && p.gips/pts[0].gips > gain {
			gain = p.gips / pts[0].gips
		}
	}
	metrics["iso_energy_perf_gain"] = gain
	return &Result{
		ID: "pareto", Title: "Energy-performance frontier",
		Headline: fmt.Sprintf(
			"at the 340 MHz nominal energy budget, speculation affords %.2fx the performance",
			gain),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}
