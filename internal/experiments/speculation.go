package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/stats"
	"eccspec/internal/trace"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Average core voltages achieved through hardware voltage speculation",
		Paper: "Figure 10",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Total power relative to the low-voltage nominal",
		Paper: "Figure 11",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Dynamic adaptation of supply voltage (mcf followed by crafty)",
		Paper: "Figure 12",
		Run:   runFig12,
	})
}

// suiteRun holds the measured outcome of running one benchmark suite
// under hardware speculation, alongside a no-speculation baseline run of
// the same chip and workloads at nominal voltage.
type suiteRun struct {
	Suite string
	// CoreV is each core's time-averaged rail setpoint during the
	// measurement window.
	CoreV []float64
	// PowerSpec / PowerBase are the chip's average core power with and
	// without speculation.
	PowerSpec float64
	PowerBase float64
	// EnergyPerWorkSpec / Base are joules per unit of work.
	EnergyPerWorkSpec float64
	EnergyPerWorkBase float64
}

// suiteCache memoizes suite runs per option set: fig10, fig11 and fig17
// share the same underlying measurement.
var suiteCache = map[string]suiteRun{}

func suiteKey(o Options, suite string) string {
	return fmt.Sprintf("%d/%v/%v/%s", o.Seed, o.Full, o.Fast, suite)
}

// runSuiteHW measures one suite under the hardware speculation system.
func runSuiteHW(o Options, suite string) (suiteRun, error) {
	if r, ok := suiteCache[suiteKey(o, suite)]; ok {
		return r, nil
	}
	// Speculated run.
	c := newChip(o, true)
	assignSuite(c, suite, o.Seed)
	ctl := control.New(c, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		return suiteRun{}, err
	}
	converge := o.scale(1500, 200)
	measure := o.scale(2500, 300)
	engine.Ticks(c, ctl, converge, nil)
	for _, co := range c.Cores {
		co.ResetAccounting()
	}
	sumV := make([]float64, len(c.Cores))
	engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, _ []control.Action) bool {
		for i := range c.Cores {
			sumV[i] += c.DomainOf(i).Rail.Target()
		}
		return true
	})
	run := suiteRun{Suite: suite, CoreV: make([]float64, len(c.Cores))}
	var eSpec, wSpec float64
	for i, co := range c.Cores {
		if !co.Alive() {
			return suiteRun{}, fmt.Errorf("experiments: core %d crashed under %s speculation", i, suite)
		}
		run.CoreV[i] = sumV[i] / float64(measure)
		run.PowerSpec += co.AveragePower()
		eSpec += co.Energy()
		wSpec += co.Work()
	}
	run.EnergyPerWorkSpec = eSpec / wSpec

	// Baseline run: identical chip and workloads at nominal voltage.
	b := newChip(o, true)
	assignSuite(b, suite, o.Seed)
	engine.Ticks(b, nil, measure, nil)
	var eBase, wBase float64
	for _, co := range b.Cores {
		run.PowerBase += co.AveragePower()
		eBase += co.Energy()
		wBase += co.Work()
	}
	run.EnergyPerWorkBase = eBase / wBase
	suiteCache[suiteKey(o, suite)] = run
	return run, nil
}

func runFig10(o Options) (*Result, error) {
	suites := workload.SuiteNames()
	runs := make([]suiteRun, len(suites))
	for i, s := range suites {
		r, err := runSuiteHW(o, s)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	nominal := 0.800
	tbl := NewTextTable("core", "CoreMark", "SPECjbb2005", "SPECint", "SPECfp", "avg reduction")
	var allRel []float64
	for core := 0; core < len(runs[0].CoreV); core++ {
		cells := []string{fmt.Sprintf("core %d", core)}
		rel := 0.0
		for _, r := range runs {
			cells = append(cells, fmt.Sprintf("%.3f V", r.CoreV[core]))
			rel += 1 - r.CoreV[core]/nominal
		}
		rel /= float64(len(runs))
		allRel = append(allRel, rel)
		cells = append(cells, fmt.Sprintf("%.1f%%", 100*rel))
		tbl.AddRow(cells...)
	}
	// Suite-to-suite variability of the chip-wide average voltage.
	var suiteAvg []float64
	for _, r := range runs {
		suiteAvg = append(suiteAvg, stats.Mean(r.CoreV))
	}
	return &Result{
		ID: "fig10", Title: "Average core voltages under speculation",
		Headline: fmt.Sprintf("Vdd lowered by %.1f%% on average (core range %.1f%%..%.1f%%); suite-to-suite spread %.1f mV",
			100*stats.Mean(allRel), 100*stats.Min(allRel), 100*stats.Max(allRel),
			1000*(stats.Max(suiteAvg)-stats.Min(suiteAvg))),
		Table: tbl,
		Metrics: map[string]float64{
			"avg_reduction":    stats.Mean(allRel),
			"min_reduction":    stats.Min(allRel),
			"max_reduction":    stats.Max(allRel),
			"suite_spread_v":   stats.Max(suiteAvg) - stats.Min(suiteAvg),
			"avg_core_voltage": stats.Mean(suiteAvg),
		},
	}, nil
}

func runFig11(o Options) (*Result, error) {
	suites := workload.SuiteNames()
	tbl := NewTextTable("suite", "power (speculated)", "power (nominal)", "relative")
	var rels []float64
	for _, s := range suites {
		r, err := runSuiteHW(o, s)
		if err != nil {
			return nil, err
		}
		rel := r.PowerSpec / r.PowerBase
		rels = append(rels, rel)
		tbl.AddRow(s, fmt.Sprintf("%.1f W", r.PowerSpec),
			fmt.Sprintf("%.1f W", r.PowerBase), fmt.Sprintf("%.3f", rel))
	}
	return &Result{
		ID: "fig11", Title: "Relative total power",
		Headline: fmt.Sprintf("average power savings %.1f%% across suites",
			100*(1-stats.Mean(rels))),
		Table: tbl,
		Metrics: map[string]float64{
			"avg_relative_power": stats.Mean(rels),
			"avg_power_savings":  1 - stats.Mean(rels),
			"max_relative_power": stats.Max(rels),
		},
	}, nil
}

func runFig12(o Options) (*Result, error) {
	c := newChip(o, true)
	parkAll(c, o.Seed)
	mcf, _ := workload.ByName("mcf")
	crafty, _ := workload.ByName("crafty")
	c.Cores[0].SetWorkload(mcf, o.Seed)
	ctl := control.New(c, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		return nil, err
	}

	converge := o.scale(1200, 200)
	half := o.scale(5000, 500)
	engine.Ticks(c, ctl, converge, nil)
	rec := trace.NewRecorder("vdd", "errRate")
	inBand, decisions := 0, 0
	var mcfV, craftyV []float64
	runHalf := func(collect *[]float64) {
		engine.Ticks(c, ctl, half, func(_ int, _ chip.TickReport, acts []control.Action) bool {
			for _, a := range acts {
				if a.Domain != 0 {
					continue
				}
				if a.Kind != control.Pending {
					decisions++
					if a.Kind == control.Hold {
						inBand++
					}
					rec.Add(c.Time(), a.NewTarget, a.ErrorRate)
				}
			}
			*collect = append(*collect, c.Domains[0].Rail.Target())
			return true
		})
	}
	runHalf(&mcfV)
	c.Cores[0].SetWorkload(crafty, o.Seed) // context switch
	runHalf(&craftyV)

	if !c.Cores[0].Alive() {
		return nil, fmt.Errorf("experiments: core crashed during fig12 trace")
	}
	tbl := NewTextTable("phase", "avg Vdd", "min Vdd", "max Vdd")
	tbl.AddRow("mcf", fmt.Sprintf("%.3f V", stats.Mean(mcfV)),
		fmt.Sprintf("%.3f V", stats.Min(mcfV)), fmt.Sprintf("%.3f V", stats.Max(mcfV)))
	tbl.AddRow("crafty", fmt.Sprintf("%.3f V", stats.Mean(craftyV)),
		fmt.Sprintf("%.3f V", stats.Min(craftyV)), fmt.Sprintf("%.3f V", stats.Max(craftyV)))
	frac := 0.0
	if decisions > 0 {
		frac = float64(inBand) / float64(decisions)
	}
	return &Result{
		ID: "fig12", Title: "Dynamic adaptation across a context switch",
		Headline: fmt.Sprintf("error rate held in band for %.0f%% of decisions; mcf avg %.3f V, crafty avg %.3f V",
			100*frac, stats.Mean(mcfV), stats.Mean(craftyV)),
		Table:  tbl,
		Series: []*trace.Recorder{rec},
		Metrics: map[string]float64{
			"in_band_fraction": frac,
			"mcf_avg_v":        stats.Mean(mcfV),
			"crafty_avg_v":     stats.Mean(craftyV),
			"decisions":        float64(decisions),
		},
	}, nil
}
