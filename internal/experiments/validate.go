package experiments

import (
	"fmt"
	"math"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "validate",
		Title: "Statistical error model vs functional per-access replay",
		Paper: "Internal validation",
		Run:   runValidate,
	})
}

// runValidate cross-checks the simulation's central shortcut. The chip
// converts workload access counts into Poisson-sampled ECC event counts
// (fast); the Replayer performs every access as a physical read of a
// real line with per-access fault injection and SECDED decoding (slow,
// ground truth). The two must produce the same error rates across the
// voltage range, or every downstream experiment is suspect.
func runValidate(o Options) (*Result, error) {
	// Statistical side: one core under stress at a fixed voltage.
	statRate := func(v float64, ticks int) (float64, error) {
		c := newChip(o, true)
		parkAll(c, o.Seed)
		co := c.Cores[0]
		co.SetWorkload(workload.StressTest(), o.Seed)
		c.DomainOf(0).Rail.SetTarget(v)
		total := 0
		engine.Ticks(c, nil, ticks, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			total += rep.Cores[0].CorrectedD
			if rep.Cores[0].Fatal {
				co.Revive()
			}
			return true
		})
		// The statistical path samples at the *effective* voltage; the
		// replayer below is driven at the same effective level.
		return float64(total) / (float64(ticks) * c.P.TickSeconds), nil
	}
	// Matching effective voltage for the replayer.
	effectiveOf := func(v float64) float64 {
		c := newChip(o, true)
		parkAll(c, o.Seed)
		c.Cores[0].SetWorkload(workload.StressTest(), o.Seed)
		c.DomainOf(0).Rail.SetTarget(v)
		rep := c.Step()
		return rep.Cores[0].Effective
	}
	// Functional side: replay the same profile against the same chip's
	// L2D at the effective voltage.
	funcRate := func(v float64, ticks int) float64 {
		c := newChip(o, true)
		dt := c.P.TickSeconds
		r := workload.NewReplayer(workload.StressTest(),
			c.Cores[0].Hier.L2D, variation.KindL2D, o.Seed)
		veff := effectiveOf(v)
		total := 0
		engine.Loop(ticks, func(int) bool {
			total += r.Tick(dt, veff)
			return true
		})
		return float64(total) / (float64(ticks) * dt)
	}

	ticks := o.scale(20000, 2500)
	c0 := newChip(o, true)
	_, _, p := c0.Cores[0].Hier.L2D.Array().WeakestLine()
	onset := p.Vmax()
	// Probe around the weak line's onset, where the control system
	// lives. (Voltages are rail targets; droop is matched across paths.)
	voltages := []float64{onset + 0.025, onset + 0.015, onset + 0.008}

	tbl := NewTextTable("rail target", "statistical (err/s)", "functional (err/s)", "ratio")
	metrics := map[string]float64{}
	worst := 1.0
	for i, v := range voltages {
		sr, err := statRate(v, ticks)
		if err != nil {
			return nil, err
		}
		fr := funcRate(v, ticks)
		ratio := math.NaN()
		if fr > 0 {
			ratio = sr / fr
		}
		tbl.AddRow(fmt.Sprintf("%.3f V", v),
			fmt.Sprintf("%.2f", sr), fmt.Sprintf("%.2f", fr), fmt.Sprintf("%.2f", ratio))
		metrics[fmt.Sprintf("ratio_%d", i)] = ratio
		if !math.IsNaN(ratio) {
			if d := math.Abs(ratio - 1); d > math.Abs(worst-1) {
				worst = ratio
			}
		}
	}
	metrics["worst_ratio"] = worst
	return &Result{
		ID: "validate", Title: "Statistical vs functional error model",
		Headline: fmt.Sprintf(
			"statistical and per-access functional error rates agree within a factor of %.2f across the control range",
			worst),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}
