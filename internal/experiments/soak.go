package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/rng"
	"eccspec/internal/sram"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "soak",
		Title: "Reliability soak: many chips, churning workloads, no crashes, no corruption",
		Paper: "Section I / IV-C",
		Run:   runSoak,
	})
}

// runSoak reproduces the paper's reliability claim — "dozens of hours of
// testing of multiple chips and cores... our speculation system [operates]
// reliably and without data corruption" (§I), with benchmarks run
// back-to-back to stress context switches (§IV-C). Several chip specimens
// each run the full speculation loop while workloads churn; sentinel data
// is parked in known cache lines and verified at the end. The experiment
// reports total simulated core-hours, crashes, and corrupted sentinels —
// all of which must be zero for the claim to hold.
func runSoak(o Options) (*Result, error) {
	numChips := 4
	phases := []string{"mcf", "crafty", "swim", "jbb-8wh", "stress-test"}
	phaseTicks := o.scale(1200, 150)
	converge := o.scale(1200, 150)

	crashes, corrupted := 0, 0
	var coreSeconds float64
	for i := 0; i < numChips; i++ {
		seed := o.Seed + uint64(i)*101
		c := chip.New(chip.DefaultParams(seed, true, o.Full))
		ctl := control.New(c, control.DefaultConfig())
		parkAll(c, seed)
		if _, err := ctl.Calibrate(); err != nil {
			return nil, fmt.Errorf("chip %d: %w", i, err)
		}

		// Park sentinel data in a handful of L2D lines per core —
		// including each cache's weakest *enabled* line — to verify no
		// silent corruption at the end.
		type sentinel struct {
			core, set, way int
			data           [sram.WordsPerLine]uint64
		}
		var sentinels []sentinel
		for _, co := range c.Cores {
			l2d := co.Hier.L2D
			for s := 0; s < 3; s++ {
				set := int(rng.Hash(seed, uint64(co.ID), uint64(s)) % uint64(l2d.Config().Sets))
				way := int(rng.Hash(seed, uint64(co.ID), uint64(s), 7) % uint64(l2d.Config().Ways))
				if l2d.LineDisabled(set, way) {
					continue
				}
				var data [sram.WordsPerLine]uint64
				for w := range data {
					data[w] = rng.Hash(seed, 0x5E17, uint64(co.ID), uint64(s), uint64(w))
				}
				l2d.WriteLine(set, way, data)
				sentinels = append(sentinels, sentinel{co.ID, set, way, data})
			}
		}

		engine.Ticks(c, ctl, converge, nil)
		for _, name := range phases {
			p, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %s", name)
			}
			for _, co := range c.Cores {
				co.SetWorkload(p, seed)
			}
			engine.Ticks(c, ctl, phaseTicks, func(_ int, rep chip.TickReport, _ []control.Action) bool {
				for _, cr := range rep.Cores {
					if cr.Fatal {
						crashes++
						c.Cores[cr.CoreID].Revive()
					}
				}
				return true
			})
		}
		coreSeconds += c.Time() * float64(len(c.Cores))

		// Verify the sentinels at a safe read voltage: decoded contents
		// must match exactly what was written.
		for _, sn := range sentinels {
			res := c.Cores[sn.core].Hier.L2D.ReadLine(sn.set, sn.way, 0.95)
			if res.Data != sn.data {
				corrupted++
			}
		}
	}

	tbl := NewTextTable("metric", "value")
	tbl.AddRow("chips", fmt.Sprintf("%d", numChips))
	tbl.AddRow("simulated core-time", fmt.Sprintf("%.1f core-seconds", coreSeconds))
	tbl.AddRow("workload phases per chip", fmt.Sprintf("%d (back-to-back)", len(phases)))
	tbl.AddRow("crashes", fmt.Sprintf("%d", crashes))
	tbl.AddRow("corrupted sentinel lines", fmt.Sprintf("%d", corrupted))
	return &Result{
		ID: "soak", Title: "Reliability soak",
		Headline: fmt.Sprintf(
			"%d chips, %.0f simulated core-seconds of churning workloads: %d crashes, %d corrupted lines",
			numChips, coreSeconds, crashes, corrupted),
		Table: tbl,
		Metrics: map[string]float64{
			"chips":        float64(numChips),
			"core_seconds": coreSeconds,
			"crashes":      float64(crashes),
			"corrupted":    float64(corrupted),
		},
	}, nil
}
