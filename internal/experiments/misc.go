package experiments

import (
	"fmt"
	"math"

	"eccspec/internal/control"
	"eccspec/internal/sram"
)

func init() {
	register(Experiment{
		ID:    "retention",
		Title: "Characterizing the source of errors: access faults, not retention faults",
		Paper: "Section V-E",
		Run:   runRetention,
	})
	register(Experiment{
		ID:    "aging",
		Title: "Recalibration after aging retargets the ECC monitor",
		Paper: "Section III-D",
		Run:   runAging,
	})
	register(Experiment{
		ID:    "temp",
		Title: "Temperature insensitivity of the correctable-error distribution",
		Paper: "Section III-D",
		Run:   runTemp,
	})
}

// runRetention reproduces the §V-E experiment. Test pattern data is
// written into the weakest line at a voltage 80 mV above nominal
// (guaranteeing clean writes), the core then dwells at a voltage that
// reliably triggers correctable errors *on access* for one minute
// without touching the line, and finally the line is read back at the
// raised voltage. Zero errors on the high-voltage read-back shows the
// low-voltage dwell did not decay the stored bits: the errors are timing
// or read-disturb faults on the access path.
func runRetention(o Options) (*Result, error) {
	c := newChip(o, true)
	l2d := c.Cores[0].Hier.L2D
	set, way, p := l2d.Array().WeakestLine()
	nominal := c.P.Point.NominalVdd
	highV := nominal + 0.080
	lowV := p.Vmax() // ~50% error probability per read at the onset

	reads := o.scale(200, 50)
	var data [sram.WordsPerLine]uint64
	for i := range data {
		data[i] = 0xA5A5A5A5A5A5A5A5
	}

	// Phase 1: write at raised voltage.
	l2d.WriteLine(set, way, data)
	// Phase 2: dwell for one simulated minute at the error-prone
	// voltage *without accessing the line*. (The rail setting is
	// symbolic here: retention behaviour is what is under test.)
	c.DomainOf(0).Rail.SetTarget(lowV)
	for t := 0; t < o.scale(60000, 600); t++ {
		// The line is deliberately not read during the dwell.
	}
	// Phase 3: read back at the raised voltage.
	c.DomainOf(0).Rail.SetTarget(nominal)
	retentionErrors := 0
	for i := 0; i < reads; i++ {
		res := l2d.ReadLine(set, way, highV)
		retentionErrors += len(res.Events)
		if res.Data != data {
			return nil, fmt.Errorf("experiments: stored data corrupted during dwell")
		}
	}
	// Contrast: the same line *accessed at* the low voltage errors
	// readily — confirming the faults are access faults.
	accessErrors := 0
	for i := 0; i < reads; i++ {
		res := l2d.ReadLine(set, way, lowV)
		accessErrors += len(res.Events)
	}

	tbl := NewTextTable("phase", "reads", "errors")
	tbl.AddRow("read-back at +80 mV after 1 min low-V dwell", fmt.Sprintf("%d", reads),
		fmt.Sprintf("%d", retentionErrors))
	tbl.AddRow(fmt.Sprintf("reads at the low voltage (%.3f V)", lowV), fmt.Sprintf("%d", reads),
		fmt.Sprintf("%d", accessErrors))
	return &Result{
		ID: "retention", Title: "Access faults vs retention faults",
		Headline: fmt.Sprintf("0 retention errors after dwell; %d/%d reads error when accessed at low voltage",
			accessErrors, reads),
		Table: tbl,
		Metrics: map[string]float64{
			"retention_errors": float64(retentionErrors),
			"access_errors":    float64(accessErrors),
		},
	}, nil
}

// runAging ages the chip's SRAM (NBTI-like per-cell drift), recalibrates,
// and reports whether the monitored line moved — the §III-D scenario
// that motivates periodic recalibration.
func runAging(o Options) (*Result, error) {
	c := newChip(o, true)
	parkAll(c, o.Seed)
	ctl := control.New(c, control.DefaultConfig())
	before, err := ctl.CalibrateDomain(c.Domains[0])
	if err != nil {
		return nil, err
	}

	const hours = 40000 // ~4.5 years of operation
	for _, id := range c.Domains[0].CoreIDs {
		co := c.Cores[id]
		co.Hier.L2D.Array().SetAge(hours)
		co.Hier.L2I.Array().SetAge(hours)
		co.InvalidateSensitivity()
	}
	after, err := ctl.CalibrateDomain(c.Domains[0])
	if err != nil {
		return nil, err
	}

	moved := 0.0
	if before.Core != after.Core || before.Kind != after.Kind ||
		before.Set != after.Set || before.Way != after.Way {
		moved = 1
	}
	// The old line must be back in service unless it was re-selected.
	oldCache := c.Cores[before.Core].CacheOf(before.Kind)
	oldStillDisabled := oldCache.LineDisabled(before.Set, before.Way)
	if moved == 1 && oldStillDisabled {
		return nil, fmt.Errorf("experiments: aged-out line not returned to service")
	}

	tbl := NewTextTable("when", "monitored line", "onset V")
	tbl.AddRow("before aging", fmt.Sprintf("core %d %s set %d way %d",
		before.Core, before.Kind, before.Set, before.Way), fmt.Sprintf("%.3f V", before.OnsetV))
	tbl.AddRow(fmt.Sprintf("after %d h", hours), fmt.Sprintf("core %d %s set %d way %d",
		after.Core, after.Kind, after.Set, after.Way), fmt.Sprintf("%.3f V", after.OnsetV))
	return &Result{
		ID: "aging", Title: "Recalibration under aging",
		Headline: fmt.Sprintf("onset drifted %.0f mV upward; monitored line %s",
			1000*(after.OnsetV-before.OnsetV),
			map[float64]string{0: "unchanged", 1: "retargeted"}[moved]),
		Table: tbl,
		Metrics: map[string]float64{
			"onset_before_v": before.OnsetV,
			"onset_after_v":  after.OnsetV,
			"onset_drift_v":  after.OnsetV - before.OnsetV,
			"line_moved":     moved,
		},
	}, nil
}

// runTemp probes the designated weak line across a +/-20C temperature
// excursion and confirms the error-rate distribution is effectively
// unchanged (§III-D: fan-speed experiments showed no measurable effect).
func runTemp(o Options) (*Result, error) {
	c := newChip(o, true)
	l2d := c.Cores[0].Hier.L2D
	set, way, p := l2d.Array().WeakestLine()
	probeV := p.Vmax()
	reads := o.scale(3000, 500)

	rate := func(tempC float64) float64 {
		l2d.Array().SetTemperature(tempC)
		errs := 0
		for i := 0; i < reads; i++ {
			res := l2d.ReadLine(set, way, probeV)
			if len(res.Events) > 0 {
				errs++
			}
		}
		return float64(errs) / float64(reads)
	}
	r20 := rate(20)
	r40 := rate(40)
	r60 := rate(60)
	l2d.Array().SetTemperature(40)

	tbl := NewTextTable("temperature", "error rate")
	tbl.AddRow("20 C", fmt.Sprintf("%.3f", r20))
	tbl.AddRow("40 C (reference)", fmt.Sprintf("%.3f", r40))
	tbl.AddRow("60 C", fmt.Sprintf("%.3f", r60))
	maxDelta := math.Max(math.Abs(r20-r40), math.Abs(r60-r40))
	return &Result{
		ID: "temp", Title: "Temperature sensitivity",
		Headline: fmt.Sprintf("error rate moves at most %.3f across +/-20 C — below the control band width", maxDelta),
		Table:    tbl,
		Metrics: map[string]float64{
			"rate_20c":  r20,
			"rate_40c":  r40,
			"rate_60c":  r60,
			"max_delta": maxDelta,
		},
	}, nil
}
