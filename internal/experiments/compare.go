package experiments

import (
	"fmt"

	"eccspec/internal/alt"
	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/firmware"
)

func init() {
	register(Experiment{
		ID:    "compare",
		Title: "Margin-reduction techniques compared on one chip (related work, §VI)",
		Paper: "Section VI",
		Run:   runCompare,
	})
}

// compareOutcome summarizes one technique's run.
type compareOutcome struct {
	name      string
	avgV      float64
	reduction float64
	epw       float64 // energy per unit work
	work      float64
}

// runCompare executes five margin-management strategies on identical
// chips under the SPECint mix: no speculation, a critical-path-monitor
// scheme (Lefurgy-style), the firmware ECC baseline [4], the paper's
// hardware ECC monitors, and Razor-style detect-and-replay. It reports
// where each settles and what it costs — the quantitative version of the
// paper's related-work discussion: CPMs can't see SRAM weakness, the
// firmware scheme is workload-hostage, the hardware monitors measure the
// true binding constraint cheaply, and Razor digs deeper still but only
// by adding recovery hardware and replay overhead.
func runCompare(o Options) (*Result, error) {
	converge := o.scale(1800, 250)
	measure := o.scale(1800, 250)

	run := func(name string, params chip.Params,
		adapt func(c *chip.Chip) func(chip.TickReport)) (compareOutcome, error) {
		c := chip.New(params)
		assignSuite(c, "SPECint", o.Seed)
		step := adapt(c)
		engine.Ticks(c, nil, converge, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			step(rep)
			return true
		})
		for _, co := range c.Cores {
			co.ResetAccounting()
		}
		sumV := 0.0
		engine.Ticks(c, nil, measure, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			step(rep)
			for _, d := range c.Domains {
				sumV += d.Rail.Target()
			}
			return true
		})
		out := compareOutcome{name: name}
		out.avgV = sumV / float64(measure*len(c.Domains))
		out.reduction = 1 - out.avgV/c.P.Point.NominalVdd
		var e, w float64
		for i, co := range c.Cores {
			if !co.Alive() {
				return out, fmt.Errorf("experiments: core %d died under %s", i, name)
			}
			e += co.Energy()
			w += co.Work()
		}
		out.epw = e / w
		out.work = w
		return out, nil
	}

	base := chip.DefaultParams(o.Seed, true, o.Full)
	var outs []compareOutcome

	// 1. No speculation: rails stay at nominal.
	o1, err := run("none", base, func(c *chip.Chip) func(chip.TickReport) {
		return func(chip.TickReport) {}
	})
	if err != nil {
		return nil, err
	}
	outs = append(outs, o1)

	// 2. Critical path monitors: logic margin sensing + static cache
	// guardband.
	o2, err := run("cpm", base, func(c *chip.Chip) func(chip.TickReport) {
		cfg := alt.DefaultCPMConfig()
		cfg.DecisionTicks = o.scale(cfg.DecisionTicks, 4)
		m := alt.NewCPM(c, cfg)
		return m.Adapt
	})
	if err != nil {
		return nil, err
	}
	outs = append(outs, o2)

	// 3. Firmware ECC baseline [4] with off-line calibrated floors.
	o3, err := run("ecc-firmware", base, func(c *chip.Chip) func(chip.TickReport) {
		ctl := control.New(c, control.DefaultConfig())
		// Fast mode accelerates the (slow) firmware policy clock along
		// with the shortened run.
		fwCfg := firmware.DefaultConfig()
		fwCfg.QuietTicksToLower = o.scale(fwCfg.QuietTicksToLower, 8)
		fwCfg.HoldTicksAfterBackoff = o.scale(fwCfg.HoldTicksAfterBackoff, 80)
		fw := firmware.New(c, fwCfg)
		for _, d := range c.Domains {
			if a, err := ctl.FindOnset(d); err == nil {
				fw.SetFloor(d.ID, a.OnsetV)
			}
		}
		return fw.Adapt
	})
	if err != nil {
		return nil, err
	}
	outs = append(outs, o3)

	// 4. The paper's hardware ECC monitors.
	o4, err := run("ecc-hardware", base, func(c *chip.Chip) func(chip.TickReport) {
		ctl := control.New(c, control.DefaultConfig())
		if _, err := ctl.Calibrate(); err != nil {
			panic(err)
		}
		return func(chip.TickReport) { ctl.Tick() }
	})
	if err != nil {
		return nil, err
	}
	outs = append(outs, o4)

	// 5. Razor: detect-and-replay through the logic floor.
	razorCfg := alt.DefaultRazorConfig()
	razorCfg.DecisionTicks = o.scale(razorCfg.DecisionTicks, 4)
	razorParams := base
	razorParams.RazorWindowV = razorCfg.WindowV
	o5, err := run("razor", razorParams, func(c *chip.Chip) func(chip.TickReport) {
		rz := alt.NewRazor(c, razorCfg)
		return rz.Adapt
	})
	if err != nil {
		return nil, err
	}
	outs = append(outs, o5)

	baseEPW := outs[0].epw
	baseWork := outs[0].work
	tbl := NewTextTable("technique", "avg Vdd", "reduction", "rel energy/work", "perf cost")
	metrics := map[string]float64{}
	for _, out := range outs {
		perfCost := 1 - out.work/baseWork
		tbl.AddRow(out.name,
			fmt.Sprintf("%.3f V", out.avgV),
			fmt.Sprintf("%.1f%%", 100*out.reduction),
			fmt.Sprintf("%.3f", out.epw/baseEPW),
			fmt.Sprintf("%.2f%%", 100*perfCost))
		metrics["reduction_"+out.name] = out.reduction
		metrics["energy_"+out.name] = out.epw / baseEPW
		metrics["perfcost_"+out.name] = perfCost
	}
	var reds []float64
	for _, out := range outs {
		reds = append(reds, out.reduction)
	}
	return &Result{
		ID: "compare", Title: "Related-work technique comparison",
		Headline: fmt.Sprintf(
			"Vdd reductions: none %.0f%%, CPM %.1f%%, ECC-firmware %.1f%%, ECC-hardware %.1f%%, Razor %.1f%%",
			100*reds[0], 100*reds[1], 100*reds[2], 100*reds[3], 100*reds[4]),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}
