package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "uncorespec",
		Title: "Extending speculation to the uncore rail via the L3's weak lines",
		Paper: "Section IV-A4 (extension)",
		Run:   runUncoreSpec,
	})
}

// runUncoreSpec quantifies the extension the paper leaves unexplored:
// its system scales only the four core rails while the uncore (L3 and
// memory controllers) stays at the 800 mV nominal. The L3 is ECC SRAM
// like the L2s, so the identical calibrate-monitor-regulate mechanism
// applies to the uncore supply. Two runs on the same chip — cores-only
// vs cores+uncore — show how much of the remaining chip power the
// extension recovers.
func runUncoreSpec(o Options) (*Result, error) {
	converge := o.scale(1800, 250)
	measure := o.scale(1800, 250)

	run := func(withUncore bool) (coreV, uncoreV, totalPower float64, err error) {
		c := newChip(o, true)
		assignSuite(c, "SPECjbb2005", o.Seed)
		ctl := control.New(c, control.DefaultConfig())
		if _, err := ctl.Calibrate(); err != nil {
			return 0, 0, 0, err
		}
		if withUncore {
			if _, err := ctl.AttachUncore(); err != nil {
				return 0, 0, 0, err
			}
		}
		engine.Ticks(c, ctl, converge, nil)
		for _, co := range c.Cores {
			co.ResetAccounting()
		}
		e0 := c.TotalEnergy()
		t0 := c.Time()
		var sumCore, sumUncore float64
		engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, _ []control.Action) bool {
			for _, d := range c.Domains {
				sumCore += d.Rail.Target()
			}
			sumUncore += c.UncoreRail.Target()
			return true
		})
		if !c.UncoreAlive() {
			return 0, 0, 0, fmt.Errorf("experiments: uncore died under speculation")
		}
		for i, co := range c.Cores {
			if !co.Alive() {
				return 0, 0, 0, fmt.Errorf("experiments: core %d died", i)
			}
		}
		coreV = sumCore / float64(measure*len(c.Domains))
		uncoreV = sumUncore / float64(measure)
		totalPower = (c.TotalEnergy() - e0) / (c.Time() - t0)
		return coreV, uncoreV, totalPower, nil
	}

	coreV1, uncoreV1, p1, err := run(false)
	if err != nil {
		return nil, err
	}
	coreV2, uncoreV2, p2, err := run(true)
	if err != nil {
		return nil, err
	}

	nominal := 0.800
	tbl := NewTextTable("configuration", "avg core Vdd", "uncore Vdd", "chip power")
	tbl.AddRow("cores only (paper)",
		fmt.Sprintf("%.3f V", coreV1), fmt.Sprintf("%.3f V", uncoreV1),
		fmt.Sprintf("%.1f W", p1))
	tbl.AddRow("cores + uncore",
		fmt.Sprintf("%.3f V", coreV2), fmt.Sprintf("%.3f V", uncoreV2),
		fmt.Sprintf("%.1f W", p2))
	extra := 1 - p2/p1
	return &Result{
		ID: "uncorespec", Title: "Uncore speculation extension",
		Headline: fmt.Sprintf(
			"uncore rail drops from %.0f mV to %.0f mV (%.1f%%), saving another %.1f%% of chip power over cores-only speculation",
			1000*uncoreV1, 1000*uncoreV2, 100*(1-uncoreV2/nominal), 100*extra),
		Table: tbl,
		Metrics: map[string]float64{
			"uncore_v":            uncoreV2,
			"uncore_reduction":    1 - uncoreV2/nominal,
			"extra_power_savings": extra,
			"core_v_shift":        stats.Max([]float64{coreV2 - coreV1, coreV1 - coreV2}),
		},
	}, nil
}
