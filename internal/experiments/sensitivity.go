package experiments

import (
	"fmt"

	"eccspec/internal/control"
	"eccspec/internal/stats"
	"eccspec/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Probability of a single-bit error vs supply voltage (four cores)",
		Paper: "Figure 13",
		Run:   runFig13,
	})
}

// runFig13 reproduces the cache-line sensitivity study: on four cores
// with different error profiles, run the targeted self-test on the
// designated weak line while lowering the probe voltage, and measure the
// per-access single-bit error probability curve.
func runFig13(o Options) (*Result, error) {
	c := newChip(o, true)
	parkAll(c, o.Seed)
	ctl := control.New(c, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		return nil, err
	}

	probes := o.scale(400, 100)
	type curve struct {
		core     int
		onset    float64 // highest V with measurable errors
		v50      float64 // ~50% crossing
		rampMV   float64 // 1%..99% span
		fullAt   float64
		recorder *trace.Recorder
	}
	var curves []curve
	tbl := NewTextTable("domain", "core", "onset V", "50% V", "ramp width")

	for d, dom := range c.Domains {
		a, ok := ctl.Assignment(dom.ID)
		if !ok {
			continue
		}
		mon := ctl.ActiveMonitor(dom.ID)
		rec := trace.NewRecorder("errProb")
		cv := curve{core: a.Core, recorder: rec}
		for v := c.P.Point.NominalVdd; v >= 0.45; v -= 0.005 {
			mon.ResetCounters()
			mon.ProbeN(probes, v)
			rate := mon.ErrorRate()
			mon.TakeEmergency() // drain the latch; this is a probe study
			rec.Add(v, rate)
			if rate > 0.01 && cv.onset == 0 {
				cv.onset = v
			}
			if rate >= 0.5 && cv.v50 == 0 {
				cv.v50 = v
			}
			if rate >= 0.99 && cv.fullAt == 0 {
				cv.fullAt = v
				break
			}
		}
		if cv.onset > 0 && cv.fullAt > 0 {
			cv.rampMV = 1000 * (cv.onset - cv.fullAt)
		}
		curves = append(curves, cv)
		tbl.AddRow(fmt.Sprintf("domain %d", d), fmt.Sprintf("core %d", cv.core),
			fmt.Sprintf("%.3f V", cv.onset), fmt.Sprintf("%.3f V", cv.v50),
			fmt.Sprintf("%.0f mV", cv.rampMV))
	}
	if len(curves) < 2 {
		return nil, fmt.Errorf("experiments: fig13 needs at least two calibrated domains")
	}

	var v50s, ramps []float64
	var recs []*trace.Recorder
	for _, cv := range curves {
		if cv.v50 > 0 {
			v50s = append(v50s, cv.v50)
		}
		if cv.rampMV > 0 {
			ramps = append(ramps, cv.rampMV)
		}
		recs = append(recs, cv.recorder)
	}
	return &Result{
		ID: "fig13", Title: "Cache line sensitivity at low voltage",
		Headline: fmt.Sprintf("error ramps span %.0f-%.0f mV; 50%% points spread over %.0f mV across cores",
			stats.Min(ramps), stats.Max(ramps), 1000*(stats.Max(v50s)-stats.Min(v50s))),
		Table:  tbl,
		Series: recs,
		Metrics: map[string]float64{
			"ramp_min_mv":  stats.Min(ramps),
			"ramp_max_mv":  stats.Max(ramps),
			"v50_spread_v": stats.Max(v50s) - stats.Min(v50s),
			"curves":       float64(len(curves)),
		},
	}, nil
}
