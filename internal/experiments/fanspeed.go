package experiments

import (
	"fmt"
	"math"

	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/server"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fanspeed",
		Title: "Fan-slowdown temperature excursion on a two-socket blade",
		Paper: "Section III-D",
		Run:   runFanSpeed,
	})
}

// runFanSpeed reruns the paper's §III-D temperature experiment at system
// scope: a two-socket blade converges under closed-loop speculation at
// full fan speed, then the enclosure fans are slowed until the chips run
// ~15-20 C hotter, and the converged voltages are compared. The paper
// "did not observe a measurable effect" for up to 20 C; here the rails
// should move by at most a regulator step or two (leakage rises, so a
// small upward nudge is physical).
func runFanSpeed(o Options) (*Result, error) {
	blade := server.New(server.DefaultParams(o.Seed))
	var ctls []*control.System
	for _, c := range blade.Chips {
		if o.Fast {
			// Fast mode shortens the run below the thermal settling
			// time; accelerate the thermal clock instead (the steady
			// state, which is what the experiment compares, is
			// unchanged).
			c.P.ThermalTau = 0.15
		}
		for _, co := range c.Cores {
			co.SetWorkload(workload.SPECjbb()[0], o.Seed)
		}
		ctl := control.New(c, control.DefaultConfig())
		if _, err := ctl.Calibrate(); err != nil {
			return nil, err
		}
		ctls = append(ctls, ctl)
	}
	tick := func(int) bool {
		blade.Step()
		for _, ctl := range ctls {
			ctl.Tick()
		}
		return true
	}
	converge := o.scale(2000, 250)
	measure := o.scale(1500, 200)

	record := func() ([]float64, float64) {
		var sums []float64
		for range blade.Chips {
			sums = append(sums, 0, 0, 0, 0)
		}
		tempSum := 0.0
		engine.Loop(measure, func(t int) bool {
			tick(t)
			for ci, c := range blade.Chips {
				for di, d := range c.Domains {
					sums[ci*4+di] += d.Rail.Target()
				}
			}
			tempSum += blade.Chips[0].Cores[0].Temperature()
			return true
		})
		for i := range sums {
			sums[i] /= float64(measure)
		}
		return sums, tempSum / float64(measure)
	}

	engine.Loop(converge, tick)
	coolV, coolT := record()

	blade.SetFanSpeed(0.15)
	engine.Loop(converge, tick)
	hotV, hotT := record()

	maxShift := 0.0
	for i := range coolV {
		if d := math.Abs(hotV[i] - coolV[i]); d > maxShift {
			maxShift = d
		}
	}
	for _, c := range blade.Chips {
		for _, co := range c.Cores {
			if !co.Alive() {
				return nil, fmt.Errorf("experiments: core died during fan excursion")
			}
		}
	}

	tbl := NewTextTable("condition", "core temp", "example domain Vdd", "max Vdd shift")
	tbl.AddRow("full fan speed", fmt.Sprintf("%.1f C", coolT),
		fmt.Sprintf("%.3f V", coolV[0]), "-")
	tbl.AddRow("fans slowed to 15%", fmt.Sprintf("%.1f C", hotT),
		fmt.Sprintf("%.3f V", hotV[0]), fmt.Sprintf("%.1f mV", 1000*maxShift))
	return &Result{
		ID: "fanspeed", Title: "Fan-slowdown temperature excursion",
		Headline: fmt.Sprintf(
			"+%.0f C from slowed fans moves converged rails at most %.1f mV — within a couple of regulator steps",
			hotT-coolT, 1000*maxShift),
		Table: tbl,
		Metrics: map[string]float64{
			"temp_rise_c":   hotT - coolT,
			"max_shift_v":   maxShift,
			"cool_temp_c":   coolT,
			"hot_temp_c":    hotT,
			"cool_domain_v": coolV[0],
		},
	}, nil
}
