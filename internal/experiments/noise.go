package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/stats"
	"eccspec/internal/trace"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Dynamic adaptation to stress-kernel load swings (main core idle / SPECfp)",
		Paper: "Figure 14",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Cache line sensitivity to voltage noise vs virus NOP count",
		Paper: "Figure 15",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Error rate vs supply voltage under different auxiliary loads",
		Paper: "Figure 16",
		Run:   runFig16,
	})
}

// runFig14 reproduces the §V-D1 robustness test: the auxiliary core of a
// domain runs the 30 s on / 30 s off stress kernel while the main core is
// either idle (a) or running SPECfp (b); the controller must track the
// square-wave load.
func runFig14(o Options) (*Result, error) {
	runCase := func(mainFP bool) (*trace.Recorder, []float64, []float64, []float64, error) {
		c := newChip(o, true)
		// A coarser tick keeps the two-minute trace tractable; the
		// stress kernel's 30-second phases are far slower than either.
		c.P.TickSeconds = 10e-3
		parkAll(c, o.Seed)
		if mainFP {
			fp := workload.SPECfp()
			c.Cores[0].SetWorkload(fp[0], o.Seed)
		}
		c.Cores[1].SetWorkload(workload.StressKernel(), o.Seed)
		ctl := control.New(c, control.DefaultConfig())
		if _, err := ctl.Calibrate(); err != nil {
			return nil, nil, nil, nil, err
		}
		converge := o.scale(1200, 200)
		engine.Ticks(c, ctl, converge, nil)
		ticks := o.scale(12000, 1200) // 120 simulated seconds
		rec := trace.NewRecorder("vdd", "errRate")
		var vHigh, vLow, vEff []float64
		kernel := c.Cores[1].Workload()
		engine.Ticks(c, ctl, ticks, func(_ int, _ chip.TickReport, acts []control.Action) bool {
			for _, a := range acts {
				if a.Domain == 0 && a.Kind != control.Pending {
					rec.Add(c.Time(), a.NewTarget, a.ErrorRate)
				}
			}
			// Classify the setpoint sample by the kernel's phase: the
			// square wave shows up in the regulator target, which rises
			// while the kernel loads the rail and falls when it idles.
			inHigh := int(kernel.Elapsed()/30)%2 == 0
			if inHigh {
				vHigh = append(vHigh, c.Domains[0].Rail.Target())
			} else {
				vLow = append(vLow, c.Domains[0].Rail.Target())
			}
			// The sensed (drooped) voltage is what the paper's power
			// telemetry reports; its average is lower in the loaded-
			// main-core case.
			vEff = append(vEff, c.Domains[0].LastEffective())
			return true
		})
		if !c.Cores[0].Alive() || !c.Cores[1].Alive() {
			return nil, nil, nil, nil, fmt.Errorf("experiments: crash during fig14 (mainFP=%v)", mainFP)
		}
		return rec, vHigh, vLow, vEff, nil
	}

	recIdle, hiIdle, loIdle, effIdle, err := runCase(false)
	if err != nil {
		return nil, err
	}
	recFP, hiFP, loFP, effFP, err := runCase(true)
	if err != nil {
		return nil, err
	}

	tbl := NewTextTable("case", "setpoint (kernel on)", "setpoint (kernel off)", "swing", "avg sensed V")
	tbl.AddRow("main idle",
		fmt.Sprintf("%.3f V", stats.Mean(hiIdle)), fmt.Sprintf("%.3f V", stats.Mean(loIdle)),
		fmt.Sprintf("%.1f mV", 1000*(stats.Mean(hiIdle)-stats.Mean(loIdle))),
		fmt.Sprintf("%.3f V", stats.Mean(effIdle)))
	tbl.AddRow("main SPECfp",
		fmt.Sprintf("%.3f V", stats.Mean(hiFP)), fmt.Sprintf("%.3f V", stats.Mean(loFP)),
		fmt.Sprintf("%.1f mV", 1000*(stats.Mean(hiFP)-stats.Mean(loFP))),
		fmt.Sprintf("%.3f V", stats.Mean(effFP)))
	swingIdle := stats.Mean(hiIdle) - stats.Mean(loIdle)
	swingFP := stats.Mean(hiFP) - stats.Mean(loFP)
	return &Result{
		ID: "fig14", Title: "Adaptation to abrupt load swings",
		Headline: fmt.Sprintf("Vdd tracks the 30 s square wave: swing %.1f mV (idle), %.1f mV (SPECfp)",
			1000*swingIdle, 1000*swingFP),
		Table:  tbl,
		Series: []*trace.Recorder{recIdle, recFP},
		Metrics: map[string]float64{
			"swing_idle_v":        swingIdle,
			"swing_specfp_v":      swingFP,
			"avg_on_idle_v":       stats.Mean(hiIdle),
			"avg_off_idle_v":      stats.Mean(loIdle),
			"avg_on_specfp_v":     stats.Mean(hiFP),
			"avg_sensed_idle_v":   stats.Mean(effIdle),
			"avg_sensed_specfp_v": stats.Mean(effFP),
		},
	}, nil
}

// fig15Setup calibrates a chip and parks the main domain at a probing
// voltage with a small margin above the monitored line's onset, where
// the error rate is near zero without extra droop.
func fig15Setup(o Options) (*chipWithControl, error) {
	c := newChip(o, true)
	parkAll(c, o.Seed)
	ctl := control.New(c, control.DefaultConfig())
	if _, err := ctl.Calibrate(); err != nil {
		return nil, err
	}
	a, _ := ctl.Assignment(0)
	// Position the rail so the quiescent effective voltage sits just
	// above the monitored line's onset.
	c.Domains[0].Rail.SetTarget(a.OnsetV + 0.015)
	return &chipWithControl{c: c, ctl: ctl}, nil
}

type chipWithControl struct {
	c   *chip.Chip
	ctl *control.System
}

func runFig15(o Options) (*Result, error) {
	s, err := fig15Setup(o)
	if err != nil {
		return nil, err
	}
	c, ctl := s.c, s.ctl
	mon := ctl.ActiveMonitor(0)
	clock := c.P.Point.FrequencyHz
	accesses := o.scale(500, 100)

	tbl := NewTextTable("NOP count", "errors", "osc freq (MHz)")
	var nops []float64
	var errs []float64
	for n := 0; n <= 20; n++ {
		prof := workload.Virus(n, clock)
		c.Cores[1].SetWorkload(prof, o.Seed)
		c.Step() // establish this virus's droop
		mon.ResetCounters()
		mon.ProbeN(accesses, c.Domains[0].LastEffective())
		mon.TakeEmergency()
		_, e := mon.Counters()
		nops = append(nops, float64(n))
		errs = append(errs, float64(e))
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", e),
			fmt.Sprintf("%.1f", prof.OscFreqHz/1e6))
	}

	// Locate the peak.
	peakN, peakE := 0, -1.0
	for i := range nops {
		if errs[i] > peakE {
			peakE = errs[i]
			peakN = int(nops[i])
		}
	}
	return &Result{
		ID: "fig15", Title: "Voltage-noise sensitivity vs virus NOP count",
		Headline: fmt.Sprintf("error count peaks at NOP-%d (%d errors / %d accesses): the resonance-frequency virus",
			peakN, int(peakE), accesses),
		Table: tbl,
		Metrics: map[string]float64{
			"peak_nop":    float64(peakN),
			"peak_errors": peakE,
			"nop0_errors": errs[0],
			"nop20_errors": func() float64 {
				return errs[len(errs)-1]
			}(),
		},
	}, nil
}

func runFig16(o Options) (*Result, error) {
	s, err := fig15Setup(o)
	if err != nil {
		return nil, err
	}
	c, ctl := s.c, s.ctl
	mon := ctl.ActiveMonitor(0)
	clock := c.P.Point.FrequencyHz
	accesses := o.scale(500, 100)
	a, _ := ctl.Assignment(0)

	cases := []struct {
		name string
		load workload.Profile
	}{
		{"Aux NOP-8", workload.Virus(8, clock)},
		{"Aux NOP-0", workload.Virus(0, clock)},
		{"No aux load", workload.Idle()},
	}
	recs := make([]*trace.Recorder, len(cases))
	sums := make([]float64, len(cases))
	tbl := NewTextTable("Vdd", cases[0].name, cases[1].name, cases[2].name)

	type row struct {
		v     float64
		rates [3]float64
	}
	var rows []row
	for v := a.OnsetV + 0.030; v >= a.OnsetV-0.020; v -= 0.005 {
		r := row{v: v}
		for i, cs := range cases {
			if recs[i] == nil {
				recs[i] = trace.NewRecorder("errRate")
			}
			c.Cores[1].SetWorkload(cs.load, o.Seed)
			c.Domains[0].Rail.SetTarget(v)
			c.Step()
			mon.ResetCounters()
			mon.ProbeN(accesses, c.Domains[0].LastEffective())
			mon.TakeEmergency()
			r.rates[i] = mon.ErrorRate()
			recs[i].Add(v, r.rates[i])
			sums[i] += r.rates[i]
		}
		rows = append(rows, r)
		tbl.AddRow(fmt.Sprintf("%.3f V", v),
			fmt.Sprintf("%.3f", r.rates[0]), fmt.Sprintf("%.3f", r.rates[1]),
			fmt.Sprintf("%.3f", r.rates[2]))
	}
	return &Result{
		ID: "fig16", Title: "Error rate vs Vdd under auxiliary loads",
		Headline: fmt.Sprintf("NOP-8 curve dominates across the range (mean rate %.3f vs NOP-0 %.3f vs idle %.3f)",
			sums[0]/float64(len(rows)), sums[1]/float64(len(rows)), sums[2]/float64(len(rows))),
		Table:  tbl,
		Series: recs,
		Metrics: map[string]float64{
			"mean_rate_nop8": sums[0] / float64(len(rows)),
			"mean_rate_nop0": sums[1] / float64(len(rows)),
			"mean_rate_idle": sums[2] / float64(len(rows)),
		},
	}, nil
}
