package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/stats"
	"eccspec/internal/workload"
)

// Ablation studies for the design parameters the paper fixes by fiat:
// the error-rate band (§III-B picks 1%/5% and explicitly leaves tuning
// "for future work"), the monitor probe rate, the regulator step size,
// and the rail-sharing granularity (§II-A argues core-level tuning is
// attractive at low voltage). Each ablation runs the full closed-loop
// system with one knob varied and reports where the domains settle and
// how safely.

func init() {
	register(Experiment{
		ID:    "ablate-band",
		Title: "Ablation: floor/ceiling error-rate band vs converged voltage",
		Paper: "Section V-C (future work)",
		Run:   runAblateBand,
	})
	register(Experiment{
		ID:    "ablate-proberate",
		Title: "Ablation: monitor probe rate vs control stability",
		Paper: "Section III-A",
		Run:   runAblateProbeRate,
	})
	register(Experiment{
		ID:    "ablate-step",
		Title: "Ablation: regulator step size vs regulation quality",
		Paper: "Section III-B",
		Run:   runAblateStep,
	})
	register(Experiment{
		ID:    "ablate-rails",
		Title: "Ablation: rail sharing granularity vs achievable reduction",
		Paper: "Section II-A",
		Run:   runAblateRails,
	})
}

// ablationRun drives one chip/controller configuration to convergence
// and measures the settled voltages.
type ablationOutcome struct {
	avgReduction float64
	minTarget    float64
	crashes      int
	inBand       float64
	stepDevMV    float64 // stddev of a domain's target over the window
}

func runAblationConfig(o Options, cp chip.Params, cc control.Config) (ablationOutcome, error) {
	c := chip.New(cp)
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), o.Seed)
	}
	ctl := control.New(c, cc)
	if _, err := ctl.Calibrate(); err != nil {
		return ablationOutcome{}, err
	}
	converge := o.scale(1500, 200)
	measure := o.scale(1500, 200)
	engine.Ticks(c, ctl, converge, nil)
	var out ablationOutcome
	var targets []float64
	decisions, holds := 0, 0
	dom0 := make([]float64, 0, measure)
	engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, acts []control.Action) bool {
		for _, a := range acts {
			if a.Kind != control.Pending {
				decisions++
				if a.Kind == control.Hold {
					holds++
				}
			}
		}
		dom0 = append(dom0, c.Domains[0].Rail.Target())
		return true
	})
	nominal := cp.Point.NominalVdd
	out.minTarget = nominal
	for _, d := range c.Domains {
		targets = append(targets, d.Rail.Target())
		if d.Rail.Target() < out.minTarget {
			out.minTarget = d.Rail.Target()
		}
		out.avgReduction += (1 - d.Rail.Target()/nominal) / float64(len(c.Domains))
	}
	for _, co := range c.Cores {
		if !co.Alive() {
			out.crashes++
		}
	}
	if decisions > 0 {
		out.inBand = float64(holds) / float64(decisions)
	}
	out.stepDevMV = 1000 * stats.StdDev(dom0)
	_ = targets
	return out, nil
}

func runAblateBand(o Options) (*Result, error) {
	bands := []struct {
		name        string
		floor, ceil float64
	}{
		{"0.2%..1%", 0.002, 0.01},
		{"1%..5% (paper)", 0.01, 0.05},
		{"5%..20%", 0.05, 0.20},
		{"20%..50%", 0.20, 0.50},
	}
	tbl := NewTextTable("band", "avg reduction", "min target", "crashes")
	metrics := map[string]float64{}
	var reductions []float64
	crashes := 0
	for i, b := range bands {
		cc := control.DefaultConfig()
		cc.FloorRate, cc.CeilRate = b.floor, b.ceil
		out, err := runAblationConfig(o, chip.DefaultParams(o.Seed, true, o.Full), cc)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(b.name, fmt.Sprintf("%.1f%%", 100*out.avgReduction),
			fmt.Sprintf("%.3f V", out.minTarget), fmt.Sprintf("%d", out.crashes))
		metrics[fmt.Sprintf("reduction_band%d", i)] = out.avgReduction
		reductions = append(reductions, out.avgReduction)
		crashes += out.crashes
	}
	metrics["crashes_total"] = float64(crashes)
	metrics["reduction_gain_widest"] = reductions[len(reductions)-1] - reductions[0]
	return &Result{
		ID: "ablate-band", Title: "Error-rate band ablation",
		Headline: fmt.Sprintf(
			"raising the band from 0.2-1%% to 20-50%% buys %.1f points of Vdd reduction (%d crashes across all bands)",
			100*metrics["reduction_gain_widest"], crashes),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}

func runAblateProbeRate(o Options) (*Result, error) {
	rates := []int{5, 50, 500}
	tbl := NewTextTable("probes/tick", "avg reduction", "target stddev", "crashes")
	metrics := map[string]float64{}
	for _, r := range rates {
		cc := control.DefaultConfig()
		cc.ProbesPerTick = r
		out, err := runAblationConfig(o, chip.DefaultParams(o.Seed, true, o.Full), cc)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%.1f%%", 100*out.avgReduction),
			fmt.Sprintf("%.1f mV", out.stepDevMV), fmt.Sprintf("%d", out.crashes))
		metrics[fmt.Sprintf("stddev_mv_rate%d", r)] = out.stepDevMV
		metrics[fmt.Sprintf("reduction_rate%d", r)] = out.avgReduction
		metrics[fmt.Sprintf("crashes_rate%d", r)] = float64(out.crashes)
	}
	return &Result{
		ID: "ablate-proberate", Title: "Probe rate ablation",
		Headline: fmt.Sprintf(
			"slow probing (5/tick) wanders (stddev %.1f mV); fast probing (500/tick) pins the rail (%.1f mV)",
			metrics["stddev_mv_rate5"], metrics["stddev_mv_rate500"]),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}

func runAblateStep(o Options) (*Result, error) {
	steps := []float64{0.0025, 0.005, 0.010, 0.020}
	tbl := NewTextTable("step", "avg reduction", "in-band fraction", "crashes")
	metrics := map[string]float64{}
	for _, st := range steps {
		cp := chip.DefaultParams(o.Seed, true, o.Full)
		cp.Rail.StepV = st
		out, err := runAblationConfig(o, cp, control.DefaultConfig())
		if err != nil {
			return nil, err
		}
		key := int(st * 10000)
		tbl.AddRow(fmt.Sprintf("%.1f mV", st*1000), fmt.Sprintf("%.1f%%", 100*out.avgReduction),
			fmt.Sprintf("%.2f", out.inBand), fmt.Sprintf("%d", out.crashes))
		metrics[fmt.Sprintf("inband_step%d", key)] = out.inBand
		metrics[fmt.Sprintf("reduction_step%d", key)] = out.avgReduction
	}
	return &Result{
		ID: "ablate-step", Title: "Regulator step ablation",
		Headline: fmt.Sprintf(
			"fine steps regulate best: in-band fraction %.2f at 2.5 mV vs %.2f at 20 mV",
			metrics["inband_step25"], metrics["inband_step200"]),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}

func runAblateRails(o Options) (*Result, error) {
	configs := []struct {
		name         string
		coresPerRail int
	}{
		{"per-core rails", 1},
		{"core pairs (paper)", 2},
		{"quad sharing", 4},
		{"one chip rail", 8},
	}
	tbl := NewTextTable("granularity", "domains", "avg reduction", "crashes")
	metrics := map[string]float64{}
	for _, cfg := range configs {
		cp := chip.DefaultParams(o.Seed, true, o.Full)
		cp.CoresPerRail = cfg.coresPerRail
		out, err := runAblationConfig(o, cp, control.DefaultConfig())
		if err != nil {
			return nil, err
		}
		tbl.AddRow(cfg.name, fmt.Sprintf("%d", 8/cfg.coresPerRail),
			fmt.Sprintf("%.1f%%", 100*out.avgReduction), fmt.Sprintf("%d", out.crashes))
		metrics[fmt.Sprintf("reduction_per%d", cfg.coresPerRail)] = out.avgReduction
		metrics[fmt.Sprintf("crashes_per%d", cfg.coresPerRail)] = float64(out.crashes)
	}
	return &Result{
		ID: "ablate-rails", Title: "Rail granularity ablation",
		Headline: fmt.Sprintf(
			"finer rails speculate deeper: %.1f%% per-core vs %.1f%% chip-wide (a domain is only as low as its weakest line)",
			100*metrics["reduction_per1"], 100*metrics["reduction_per8"]),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}
