package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
)

func init() {
	register(Experiment{
		ID:    "freqscale",
		Title: "Speculation benefit vs operating frequency (the §II-A production range)",
		Paper: "Section II-A (extension)",
		Run:   runFreqScale,
	})
}

// runFreqScale quantifies the paper's §II-A remark that a production
// low-voltage system would run at 500 MHz - 1 GHz rather than the
// characterization floor of 340 MHz: at each interpolated operating
// point the full calibrate-and-speculate loop runs and reports the Vdd
// reduction and power savings achieved. The benefit shrinks as frequency
// grows — the correctable-error range narrows back toward the thin
// high-voltage margins that made nominal-voltage speculation ([4])
// conservative in the first place.
func runFreqScale(o Options) (*Result, error) {
	freqs := []float64{340e6, 500e6, 750e6, 1000e6, 1500e6}
	converge := o.scale(1500, 200)
	measure := o.scale(1500, 200)

	tbl := NewTextTable("frequency", "nominal Vdd", "avg speculated Vdd", "reduction", "power saving")
	metrics := map[string]float64{}
	var reductions []float64
	for _, f := range freqs {
		params := chip.DefaultParamsAt(o.Seed, f, o.Full)
		c := chip.New(params)
		assignSuite(c, "SPECint", o.Seed)
		ctl := control.New(c, control.DefaultConfig())
		if _, err := ctl.Calibrate(); err != nil {
			return nil, fmt.Errorf("%.0f MHz: %w", f/1e6, err)
		}
		engine.Ticks(c, ctl, converge, nil)
		for _, co := range c.Cores {
			co.ResetAccounting()
		}
		sumV := 0.0
		engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, _ []control.Action) bool {
			for _, d := range c.Domains {
				sumV += d.Rail.Target()
			}
			return true
		})
		avgV := sumV / float64(measure*len(c.Domains))
		nominal := params.Point.NominalVdd
		reduction := 1 - avgV/nominal

		// Power relative to the same chip at its own nominal.
		b := chip.New(params)
		assignSuite(b, "SPECint", o.Seed)
		engine.Ticks(b, nil, measure, nil)
		var pSpec, pBase float64
		for i, co := range c.Cores {
			if !co.Alive() {
				return nil, fmt.Errorf("%.0f MHz: core %d died", f/1e6, i)
			}
			pSpec += co.AveragePower()
			pBase += b.Cores[i].AveragePower()
		}
		saving := 1 - pSpec/pBase

		key := fmt.Sprintf("%.0f", f/1e6)
		metrics["reduction_mhz"+key] = reduction
		metrics["power_saving_mhz"+key] = saving
		reductions = append(reductions, reduction)
		tbl.AddRow(fmt.Sprintf("%.0f MHz", f/1e6),
			fmt.Sprintf("%.0f mV", 1000*nominal),
			fmt.Sprintf("%.0f mV", 1000*avgV),
			fmt.Sprintf("%.1f%%", 100*reduction),
			fmt.Sprintf("%.1f%%", 100*saving))
	}
	return &Result{
		ID: "freqscale", Title: "Speculation benefit vs frequency",
		Headline: fmt.Sprintf(
			"Vdd reduction shrinks from %.1f%% at 340 MHz to %.1f%% at 1.5 GHz as margins re-tighten",
			100*reductions[0], 100*reductions[len(reductions)-1]),
		Table:   tbl,
		Metrics: metrics,
	}, nil
}
