package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/stats"
	"eccspec/internal/workload"
)

// coreSweep is the §II characterization protocol for one core: run the
// stress test on the core (rail sibling parked in the firmware spin
// loop, as in §IV-A4), lower its rail 5 mV at a time, and record the
// highest voltage that produced a correctable error and the lowest
// voltage at which the core still functioned.
type coreSweep struct {
	FirstErrV float64 // highest V with a correctable error (0 if none)
	MinSafeV  float64 // lowest V with no crash
	ErrD      int     // correctable errors seen in the whole sweep, by type
	ErrI      int
	ErrRF     int
}

// sweepCore runs the protocol. It restores the rail to nominal and
// revives the core before returning.
func sweepCore(c *chip.Chip, coreID int, ticksPerLevel int, seed uint64) coreSweep {
	co := c.Cores[coreID]
	co.SetWorkload(workload.StressTest(), seed)
	dom := c.DomainOf(coreID)
	nominal := c.P.Point.NominalVdd
	step := dom.Rail.Params().StepV

	out := coreSweep{MinSafeV: nominal}
	for v := nominal; v > 0.3; v -= step {
		dom.Rail.SetTarget(v)
		// The rail sibling (parked in the firmware spin loop) may hit
		// its own limit before the core under test does; per-core
		// characterization keeps it alive so the sweep measures only
		// the target core.
		for _, id := range dom.CoreIDs {
			if id != coreID {
				c.Cores[id].Revive()
			}
		}
		crashed := false
		engine.Ticks(c, nil, ticksPerLevel, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			cr := rep.Cores[coreID]
			out.ErrD += cr.CorrectedD
			out.ErrI += cr.CorrectedI
			out.ErrRF += cr.CorrectedRF
			if (cr.CorrectedD > 0 || cr.CorrectedI > 0 || cr.CorrectedRF > 0) && out.FirstErrV == 0 {
				out.FirstErrV = v
			}
			crashed = cr.Fatal
			return !crashed
		})
		if crashed {
			break
		}
		out.MinSafeV = v
	}
	dom.Rail.SetTarget(nominal)
	for _, id := range dom.CoreIDs {
		c.Cores[id].Revive()
	}
	co.SetWorkload(workload.Idle(), seed)
	return out
}

// sweepAllCores characterizes every core of a chip.
func sweepAllCores(o Options, low bool, ticksPerLevel int) (*chip.Chip, []coreSweep) {
	c := newChip(o, low)
	parkAll(c, o.Seed)
	sweeps := make([]coreSweep, len(c.Cores))
	for i := range c.Cores {
		sweeps[i] = sweepCore(c, i, ticksPerLevel, o.Seed)
	}
	return c, sweeps
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Lowest safe Vdd per core at high and low frequency",
		Paper: "Figure 1",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Voltage speculation range per core (error-free vs correctable-error range)",
		Paper: "Figure 2",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Average correctable errors vs speculation range",
		Paper: "Figure 3",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Correctable error counts and types per core under load",
		Paper: "Figure 4",
		Run:   runFig4,
	})
}

func runFig1(o Options) (*Result, error) {
	ticks := o.scale(200, 30)
	chipHi, hi := sweepAllCores(o, false, ticks)
	chipLo, lo := sweepAllCores(o, true, ticks)
	nomHi := chipHi.P.Point.NominalVdd
	nomLo := chipLo.P.Point.NominalVdd

	tbl := NewTextTable("core", "minV@2.53GHz", "rel.high", "minV@340MHz", "rel.low")
	var relHi, relLo []float64
	for i := range hi {
		rh := hi[i].MinSafeV / nomHi
		rl := lo[i].MinSafeV / nomLo
		relHi = append(relHi, rh)
		relLo = append(relLo, rl)
		tbl.AddRow(fmt.Sprintf("core %d", i),
			fmt.Sprintf("%.3f V", hi[i].MinSafeV), fmt.Sprintf("%.3f", rh),
			fmt.Sprintf("%.3f V", lo[i].MinSafeV), fmt.Sprintf("%.3f", rl))
	}
	spreadHi := stats.Max(relHi) - stats.Min(relHi)
	spreadLo := stats.Max(relLo) - stats.Min(relLo)
	res := &Result{
		ID: "fig1", Title: "Lowest safe Vdd per core",
		Headline: fmt.Sprintf(
			"high-f min safe avg %.1f%% below nominal; low-f avg %.1f%% below; core spread %.1f%% vs %.1f%%",
			100*(1-stats.Mean(relHi)), 100*(1-stats.Mean(relLo)),
			100*spreadHi, 100*spreadLo),
		Table: tbl,
		Metrics: map[string]float64{
			"avg_rel_high":     stats.Mean(relHi),
			"avg_rel_low":      stats.Mean(relLo),
			"spread_rel_high":  spreadHi,
			"spread_rel_low":   spreadLo,
			"avg_minv_high":    stats.Mean(sweepField(hi, func(s coreSweep) float64 { return s.MinSafeV })),
			"avg_minv_low":     stats.Mean(sweepField(lo, func(s coreSweep) float64 { return s.MinSafeV })),
			"guardband_high_v": nomHi - stats.Max(sweepField(hi, func(s coreSweep) float64 { return s.FirstErrV })),
			"guardband_low_v":  nomLo - stats.Max(sweepField(lo, func(s coreSweep) float64 { return s.FirstErrV })),
		},
	}
	return res, nil
}

func sweepField(ss []coreSweep, f func(coreSweep) float64) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = f(s)
	}
	return out
}

func runFig2(o Options) (*Result, error) {
	ticks := o.scale(200, 30)
	_, hi := sweepAllCores(o, false, ticks)
	_, lo := sweepAllCores(o, true, ticks)

	tbl := NewTextTable("core",
		"errFreeRange.high", "corrRange.high",
		"errFreeRange.low", "corrRange.low")
	nomHi := 1.100
	nomLo := 0.800
	var corrHi, corrLo []float64
	cell := func(s coreSweep, nominal float64) (errFree, corr string, rangeV float64, ok bool) {
		if s.FirstErrV == 0 {
			// The core crashed before any correctable error surfaced —
			// never observed in the paper's data, and excluded from
			// the range statistics if a pathological seed produces it.
			return "n/a", "n/a", 0, false
		}
		return fmt.Sprintf("%.0f mV", 1000*(nominal-s.FirstErrV)),
			fmt.Sprintf("%.0f mV", 1000*(s.FirstErrV-s.MinSafeV)),
			s.FirstErrV - s.MinSafeV, true
	}
	for i := range hi {
		efH, cHs, cH, okH := cell(hi[i], nomHi)
		efL, cLs, cL, okL := cell(lo[i], nomLo)
		if okH {
			corrHi = append(corrHi, cH)
		}
		if okL {
			corrLo = append(corrLo, cL)
		}
		tbl.AddRow(fmt.Sprintf("core %d", i), efH, cHs, efL, cLs)
	}
	ratio := stats.Mean(corrLo) / stats.Mean(corrHi)
	return &Result{
		ID: "fig2", Title: "Voltage speculation ranges",
		Headline: fmt.Sprintf(
			"correctable-error range averages %.0f mV at low Vdd vs %.0f mV at high Vdd (%.1fx)",
			1000*stats.Mean(corrLo), 1000*stats.Mean(corrHi), ratio),
		Table: tbl,
		Metrics: map[string]float64{
			"corr_range_high_v": stats.Mean(corrHi),
			"corr_range_low_v":  stats.Mean(corrLo),
			"range_ratio":       ratio,
		},
	}, nil
}

// fig3Sweep measures average correctable errors per (simulated) 5-minute
// interval as every rail is lowered together.
func fig3Sweep(o Options, low bool, maxOffset float64) ([]float64, []float64) {
	c := newChip(o, low)
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), o.Seed)
	}
	ticksPerLevel := o.scale(400, 50)
	scaleTo5Min := 300.0 / (float64(ticksPerLevel) * c.P.TickSeconds)
	nominal := c.P.Point.NominalVdd

	var offsets, avgErrs []float64
	for off := 0.0; off <= maxOffset; off += 0.010 {
		for _, d := range c.Domains {
			d.Rail.SetTarget(nominal - off)
		}
		for _, co := range c.Cores {
			co.Revive()
		}
		errs := make([]int, len(c.Cores))
		dead := make([]bool, len(c.Cores))
		engine.Ticks(c, nil, ticksPerLevel, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			for i, cr := range rep.Cores {
				errs[i] += cr.CorrectedD + cr.CorrectedI + cr.CorrectedRF
				if cr.Fatal {
					dead[i] = true
				}
			}
			return true
		})
		// Average across cores still active at this level (§II-B).
		var sum float64
		n := 0
		for i := range errs {
			if !dead[i] {
				sum += float64(errs[i])
				n++
			}
		}
		if n == 0 {
			break
		}
		offsets = append(offsets, off)
		avgErrs = append(avgErrs, sum/float64(n)*scaleTo5Min)
	}
	return offsets, avgErrs
}

func runFig3(o Options) (*Result, error) {
	offHi, errHi := fig3Sweep(o, false, 0.17)
	offLo, errLo := fig3Sweep(o, true, 0.22)

	tbl := NewTextTable("offset below nominal", "errors/5min @2.53GHz", "errors/5min @340MHz")
	n := len(offHi)
	if len(offLo) > n {
		n = len(offLo)
	}
	for i := 0; i < n; i++ {
		h, l := "-", "-"
		off := 0.0
		if i < len(offHi) {
			h = fmt.Sprintf("%.0f", errHi[i])
			off = offHi[i]
		}
		if i < len(offLo) {
			l = fmt.Sprintf("%.0f", errLo[i])
			off = offLo[i]
		}
		tbl.AddRow(fmt.Sprintf("%.0f mV", off*1000), h, l)
	}

	// Error-free range: widest offset with zero errors on both curves.
	errFree := 0.0
	for i := range offLo {
		if errLo[i] > 0 {
			break
		}
		errFree = offLo[i]
	}
	return &Result{
		ID: "fig3", Title: "Correctable errors vs speculation range",
		Headline: fmt.Sprintf(
			"error-free for the first %.0f mV below nominal; peak rate %.0f/5min at low Vdd vs %.0f/5min at high",
			1000*errFree, stats.Max(errLo), stats.Max(errHi)),
		Table: tbl,
		Metrics: map[string]float64{
			"error_free_range_v": errFree,
			"peak_errors_high":   stats.Max(errHi),
			"peak_errors_low":    stats.Max(errLo),
			"peak_ratio":         stats.Max(errLo) / (stats.Max(errHi) + 1),
		},
	}, nil
}

func runFig4(o Options) (*Result, error) {
	ticks := o.scale(200, 30)
	c, sweeps := sweepAllCores(o, true, ticks)

	// Run every core at its own lowest safe level (plus one step of
	// margin) with the mixed workload and count error types over a
	// simulated 5-minute interval (time-scaled). Cores sharing a rail
	// cannot sit at different voltages simultaneously, so the
	// measurement proceeds in passes: one core per domain at a time,
	// with rail siblings kept alive as in the per-core sweeps.
	runTicks := o.scale(4000, 400)
	scaleTo5Min := 300.0 / (float64(runTicks) * c.P.TickSeconds)
	errD := make([]int, len(c.Cores))
	errI := make([]int, len(c.Cores))
	for pass := 0; pass < c.P.CoresPerRail; pass++ {
		targets := make([]int, 0, len(c.Domains))
		isTarget := make(map[int]bool)
		for _, d := range c.Domains {
			id := d.CoreIDs[pass]
			targets = append(targets, id)
			isTarget[id] = true
			d.Rail.SetTarget(sweeps[id].MinSafeV + d.Rail.Params().StepV)
		}
		// Targets run the workload mix; rail siblings park in the
		// firmware spin loop, matching the §II characterization
		// conditions under which the minimum safe levels were found.
		for _, co := range c.Cores {
			if isTarget[co.ID] {
				co.SetWorkload(workload.StressTest(), o.Seed)
			} else {
				co.SetWorkload(workload.Idle(), o.Seed)
			}
		}
		for _, co := range c.Cores {
			co.Revive()
		}
		engine.Ticks(c, nil, runTicks, func(_ int, rep chip.TickReport, _ []control.Action) bool {
			for _, id := range targets {
				errD[id] += rep.Cores[id].CorrectedD
				errI[id] += rep.Cores[id].CorrectedI
			}
			// Non-target cores may sit below their own limits; keep
			// them alive so domain loading stays comparable.
			for _, co := range c.Cores {
				if !co.Alive() {
					co.Revive()
				}
			}
			return true
		})
	}

	tbl := NewTextTable("core", "data cache errors", "instr cache errors")
	total := 0.0
	coresWithErrors := 0
	for i := range c.Cores {
		d := float64(errD[i]) * scaleTo5Min
		ins := float64(errI[i]) * scaleTo5Min
		total += d + ins
		if d+ins > 0 {
			coresWithErrors++
		}
		tbl.AddRow(fmt.Sprintf("core %d", i),
			fmt.Sprintf("%.0f", d), fmt.Sprintf("%.0f", ins))
	}
	return &Result{
		ID: "fig4", Title: "Error counts and types per core (5-minute run)",
		Headline: fmt.Sprintf("%d/%d cores report L2 errors; %.0f total errors/5min, all in L2 caches",
			coresWithErrors, len(c.Cores), total),
		Table: tbl,
		Metrics: map[string]float64{
			"total_errors_5min": total,
			"cores_with_errors": float64(coresWithErrors),
		},
	}, nil
}
