package experiments

import (
	"fmt"
	"strings"

	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Architectural and system configuration",
		Paper: "Table I",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "tab2",
		Title: "Applications and benchmarks used in the evaluation",
		Paper: "Table II",
		Run:   runTab2,
	})
}

func runTab1(o Options) (*Result, error) {
	c := newChip(o, true)
	h := c.P.Hier
	geom := "scaled 1/8"
	if o.Full {
		geom = "full Table I"
	}
	tbl := NewTextTable("parameter", "value")
	rows := [][2]string{
		{"Processor", "Itanium II 9560 (simulated)"},
		{"Cores", fmt.Sprintf("%d, in-order", c.P.NumCores)},
		{"Frequency", "2.53 GHz (high), 340 MHz (low)"},
		{"Nominal Vdd", "1.10 V (high), 800 mV (low)"},
		{"Register file", fmt.Sprintf("%d lines x 64 B per core", c.P.RegFileLines)},
		{"L1 data cache", describeCache(h.L1D.Ways, h.L1D.SizeBytes(), h.L1D.HitLatency)},
		{"L1 instruction cache", describeCache(h.L1I.Ways, h.L1I.SizeBytes(), h.L1I.HitLatency)},
		{"L2 data cache", describeCache(h.L2D.Ways, h.L2D.SizeBytes(), h.L2D.HitLatency)},
		{"L2 instruction cache", describeCache(h.L2I.Ways, h.L2I.SizeBytes(), h.L2I.HitLatency)},
		{"L3 unified", describeCache(h.L3.Ways, h.L3.SizeBytes(), h.L3.HitLatency)},
		{"Voltage domains", fmt.Sprintf("%d core domains (%d cores each) + uncore",
			len(c.Domains), c.P.CoresPerRail)},
		{"Regulator step", fmt.Sprintf("%.0f mV", 1000*c.P.Rail.StepV)},
		{"PDN resonance", fmt.Sprintf("%.1f MHz nominal", c.P.Rail.FRes/1e6)},
		{"Cache geometry", geom},
	}
	for _, r := range rows {
		tbl.AddRow(r[0], r[1])
	}
	return &Result{
		ID: "tab1", Title: "System configuration",
		Headline: fmt.Sprintf("8-core CMP, %d voltage domains, %s cache geometry",
			len(c.Domains), geom),
		Table: tbl,
		Metrics: map[string]float64{
			"cores":   float64(c.P.NumCores),
			"domains": float64(len(c.Domains)),
			"l2i_kb":  float64(h.L2I.SizeBytes()) / 1024,
			"l2d_kb":  float64(h.L2D.SizeBytes()) / 1024,
		},
	}, nil
}

func describeCache(ways, size, latency int) string {
	unit := "KB"
	sz := float64(size) / 1024
	if sz >= 1024 {
		unit = "MB"
		sz /= 1024
	}
	return fmt.Sprintf("%d-way %.0f %s, %d-cycle", ways, sz, unit, latency)
}

func runTab2(o Options) (*Result, error) {
	tbl := NewTextTable("suite", "benchmarks")
	count := 0
	for _, suite := range workload.SuiteNames() {
		var names []string
		for _, p := range workload.Suites()[suite] {
			names = append(names, p.Name)
			count++
		}
		tbl.AddRow(suite, strings.Join(names, ", "))
	}
	tbl.AddRow("Stress test", workload.StressTest().Name+" (CPU, cache and memory intensive kernels)")
	return &Result{
		ID: "tab2", Title: "Benchmark inventory",
		Headline: fmt.Sprintf("%d benchmarks across %d suites plus the stress test",
			count, len(workload.SuiteNames())),
		Table: tbl,
		Metrics: map[string]float64{
			"benchmarks": float64(count),
			"suites":     float64(len(workload.SuiteNames())),
		},
	}, nil
}
