package experiments

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/firmware"
	"eccspec/internal/stats"
	"eccspec/internal/trace"
	"eccspec/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig17",
		Title: "Energy of hardware vs software speculation, relative to nominal",
		Paper: "Figure 17",
		Run:   runFig17,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Core energy as a function of Vdd for hardware and software speculation",
		Paper: "Figure 18",
		Run:   runFig18,
	})
}

// runSuiteSW measures one suite under the firmware (software) baseline.
// Off-line calibration (the onset sweep) sets each domain's safe floor
// before the workloads start, as in [4].
func runSuiteSW(o Options, suite string) (energyPerWork float64, err error) {
	c := newChip(o, true)
	ctl := control.New(c, control.DefaultConfig())
	fw := firmware.New(c, firmware.DefaultConfig())
	for _, d := range c.Domains {
		a, err := ctl.FindOnset(d)
		if err != nil {
			return 0, err
		}
		fw.SetFloor(d.ID, a.OnsetV)
	}
	assignSuite(c, suite, o.Seed)
	converge := o.scale(1500, 200)
	measure := o.scale(2500, 300)
	adapt := func(_ int, rep chip.TickReport, _ []control.Action) bool {
		fw.Adapt(rep)
		return true
	}
	engine.Ticks(c, nil, converge, adapt)
	for _, co := range c.Cores {
		co.ResetAccounting()
	}
	engine.Ticks(c, nil, measure, adapt)
	var e, w float64
	for i, co := range c.Cores {
		if !co.Alive() {
			return 0, fmt.Errorf("experiments: core %d crashed under %s software speculation", i, suite)
		}
		e += co.Energy()
		w += co.Work()
	}
	return e / w, nil
}

func runFig17(o Options) (*Result, error) {
	suites := workload.SuiteNames()
	tbl := NewTextTable("suite", "software speculation", "hardware speculation")
	var hwRel, swRel []float64
	for _, s := range suites {
		hw, err := runSuiteHW(o, s)
		if err != nil {
			return nil, err
		}
		swEPW, err := runSuiteSW(o, s)
		if err != nil {
			return nil, err
		}
		h := hw.EnergyPerWorkSpec / hw.EnergyPerWorkBase
		sw := swEPW / hw.EnergyPerWorkBase
		hwRel = append(hwRel, h)
		swRel = append(swRel, sw)
		tbl.AddRow(s, fmt.Sprintf("%.3f", sw), fmt.Sprintf("%.3f", h))
	}
	return &Result{
		ID: "fig17", Title: "Hardware vs software speculation energy",
		Headline: fmt.Sprintf("hardware saves %.0f%% energy vs software's %.0f%% (an extra %.0f points)",
			100*(1-stats.Mean(hwRel)), 100*(1-stats.Mean(swRel)),
			100*(stats.Mean(swRel)-stats.Mean(hwRel))),
		Table: tbl,
		Metrics: map[string]float64{
			"hw_relative_energy": stats.Mean(hwRel),
			"sw_relative_energy": stats.Mean(swRel),
			"hw_extra_savings":   stats.Mean(swRel) - stats.Mean(hwRel),
		},
	}, nil
}

// runFig18 forces one core's rail through a voltage ladder and measures
// energy per unit of work for both techniques at each point. The
// software technique pays the firmware handling cost for every
// correctable error, so its energy curve turns back up once the error
// rate ramps; the hardware curve keeps falling until the crash point.
func runFig18(o Options) (*Result, error) {
	measure := o.scale(600, 80)
	run := func(software bool) (*trace.Recorder, []float64, []float64, error) {
		c := newChip(o, true)
		parkAll(c, o.Seed)
		c.Cores[0].SetWorkload(workload.StressTest(), o.Seed)
		var fw *firmware.System
		if software {
			fw = firmware.New(c, firmware.DefaultConfig())
		}
		rec := trace.NewRecorder("energyPerWork")
		var vs, epws []float64
		nominal := c.P.Point.NominalVdd
		for v := nominal; v >= 0.45; v -= 0.010 {
			c.Domains[0].Rail.SetTarget(v)
			c.Cores[0].Revive()
			c.Cores[0].ResetAccounting()
			c.Cores[0].SetOverheadFraction(0)
			crashed := false
			engine.Ticks(c, nil, measure, func(_ int, rep chip.TickReport, _ []control.Action) bool {
				if software {
					fw.ApplyOverhead(rep)
				}
				crashed = rep.Cores[0].Fatal
				return !crashed
			})
			if crashed {
				break
			}
			if c.Cores[0].Work() <= 0 {
				continue
			}
			epw := c.Cores[0].Energy() / c.Cores[0].Work()
			vs = append(vs, v)
			epws = append(epws, epw)
			rec.Add(v, epw)
		}
		return rec, vs, epws, nil
	}

	recHW, vHW, eHW, err := run(false)
	if err != nil {
		return nil, err
	}
	recSW, vSW, eSW, err := run(true)
	if err != nil {
		return nil, err
	}
	if len(eHW) == 0 || len(eSW) == 0 {
		return nil, fmt.Errorf("experiments: fig18 collected no points")
	}

	// Normalize both curves to the hardware curve's nominal point.
	base := eHW[0]
	tbl := NewTextTable("Vdd", "hardware energy (rel)", "software energy (rel)")
	for i := range vHW {
		sw := "-"
		for j := range vSW {
			if vSW[j] == vHW[i] {
				sw = fmt.Sprintf("%.3f", eSW[j]/base)
			}
		}
		tbl.AddRow(fmt.Sprintf("%.3f V", vHW[i]), fmt.Sprintf("%.3f", eHW[i]/base), sw)
	}

	// Where do the curves bottom out?
	minAt := func(vs, es []float64) (float64, float64) {
		bi := 0
		for i := range es {
			if es[i] < es[bi] {
				bi = i
			}
		}
		return vs[bi], es[bi] / base
	}
	vMinHW, eMinHW := minAt(vHW, eHW)
	vMinSW, eMinSW := minAt(vSW, eSW)
	// Software divergence: its energy at its lowest reached voltage vs
	// its own minimum.
	swEnd := eSW[len(eSW)-1] / base
	return &Result{
		ID: "fig18", Title: "Energy vs Vdd for both techniques",
		Headline: fmt.Sprintf("hardware bottoms at %.3f V (%.3f rel); software bottoms at %.3f V (%.3f rel) then climbs to %.3f",
			vMinHW, eMinHW, vMinSW, eMinSW, swEnd),
		Table:  tbl,
		Series: []*trace.Recorder{recHW, recSW},
		Metrics: map[string]float64{
			"hw_min_energy_rel": eMinHW,
			"sw_min_energy_rel": eMinSW,
			"hw_min_v":          vMinHW,
			"sw_min_v":          vMinSW,
			"sw_end_energy_rel": swEnd,
			"sw_divergence":     swEnd - eMinSW,
		},
	}, nil
}
