package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "tab1", "tab2",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "retention", "aging", "temp",
		"ablate-band", "ablate-proberate", "ablate-step", "ablate-rails",
		"methodology", "compare", "freqscale", "uncorespec", "fanspeed", "validate", "soak", "pareto",
		"policies", "fidelity"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestTextTable(t *testing.T) {
	tbl := NewTextTable("a", "bb")
	tbl.AddRow("1", "2")
	tbl.AddRowf([]string{"%d", "%.1f"}, 3, 4.5)
	if tbl.NumRows() != 2 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "4.5") {
		t.Fatalf("render output %q", out)
	}
}

func TestTextTablePanics(t *testing.T) {
	tbl := NewTextTable("a")
	for _, f := range []func(){
		func() { tbl.AddRow("1", "2") },
		func() { tbl.AddRowf([]string{"%d", "%d"}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOptionsScale(t *testing.T) {
	o := Options{Fast: true}
	if got := o.scale(1000, 50); got != 100 {
		t.Fatalf("scale 1000 -> %d", got)
	}
	if got := o.scale(200, 50); got != 50 {
		t.Fatalf("scale floor: %d", got)
	}
	o.Fast = false
	if got := o.scale(1000, 50); got != 1000 {
		t.Fatalf("non-fast scale: %d", got)
	}
}

// fastOpts are the smoke-test options shared below.
var fastOpts = Options{Seed: 1, Fast: true}

// runFor runs an experiment in fast mode and fails the test on error.
func runFor(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	res, err := e.Run(fastOpts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || res.Headline == "" {
		t.Fatalf("%s: malformed result %+v", id, res)
	}
	var sb strings.Builder
	if err := res.Write(&sb); err != nil {
		t.Fatalf("%s: write: %v", id, err)
	}
	return res
}

func TestTab1Shape(t *testing.T) {
	res := runFor(t, "tab1")
	if res.Metric("cores") != 8 || res.Metric("domains") != 4 {
		t.Fatalf("topology metrics wrong: %+v", res.Metrics)
	}
	if res.Metric("l2i_kb") != 2*res.Metric("l2d_kb") {
		t.Fatal("L2I should be twice L2D, as in Table I")
	}
}

func TestTab2Shape(t *testing.T) {
	res := runFor(t, "tab2")
	if res.Metric("benchmarks") != 29 || res.Metric("suites") != 4 {
		t.Fatalf("benchmark inventory wrong: %+v", res.Metrics)
	}
}

func TestFig1Shape(t *testing.T) {
	res := runFor(t, "fig1")
	// Low-voltage minimum safe levels sit far lower, relatively, than
	// high-voltage ones, and vary more across cores.
	if res.Metric("avg_rel_low") >= res.Metric("avg_rel_high") {
		t.Error("low point should allow deeper relative reduction")
	}
	if res.Metric("avg_rel_high") > 0.95 || res.Metric("avg_rel_high") < 0.85 {
		t.Errorf("high-point min safe %.3f outside the ~10%% guardband story",
			res.Metric("avg_rel_high"))
	}
	if res.Metric("avg_rel_low") > 0.85 || res.Metric("avg_rel_low") < 0.65 {
		t.Errorf("low-point min safe %.3f outside the ~quarter-reduction story",
			res.Metric("avg_rel_low"))
	}
	if res.Metric("spread_rel_low") <= 2*res.Metric("spread_rel_high") {
		t.Error("core-to-core variation should be much larger at low voltage")
	}
}

func TestFig2Shape(t *testing.T) {
	res := runFor(t, "fig2")
	if r := res.Metric("range_ratio"); r < 2 || r > 12 {
		t.Errorf("correctable range ratio %.2f not in the several-x regime", r)
	}
	if res.Metric("corr_range_low_v") < 0.03 {
		t.Error("low-point correctable range implausibly narrow")
	}
}

func TestFig3Shape(t *testing.T) {
	res := runFor(t, "fig3")
	if res.Metric("error_free_range_v") < 0.05 {
		t.Errorf("error-free range %.3f V too narrow", res.Metric("error_free_range_v"))
	}
	if res.Metric("peak_errors_low") <= res.Metric("peak_errors_high") {
		t.Error("low point should raise far more errors than high point")
	}
}

func TestFig4Shape(t *testing.T) {
	res := runFor(t, "fig4")
	if res.Metric("cores_with_errors") < 6 {
		t.Errorf("only %.0f cores reported errors", res.Metric("cores_with_errors"))
	}
	if res.Metric("total_errors_5min") <= 0 {
		t.Error("no errors at the lowest safe voltages")
	}
}

func TestFig10Shape(t *testing.T) {
	res := runFor(t, "fig10")
	if r := res.Metric("avg_reduction"); r < 0.08 || r > 0.30 {
		t.Errorf("average reduction %.3f outside the ~18%% regime", r)
	}
	if res.Metric("suite_spread_v") > 0.02 {
		t.Error("suite-to-suite spread should be small (targeted probing)")
	}
	if res.Metric("min_reduction") <= 0 {
		t.Error("some core failed to speculate at all")
	}
}

func TestFig11Shape(t *testing.T) {
	res := runFor(t, "fig11")
	if s := res.Metric("avg_power_savings"); s < 0.15 || s > 0.45 {
		t.Errorf("power savings %.3f outside the ~33%% regime", s)
	}
}

func TestFig12Shape(t *testing.T) {
	res := runFor(t, "fig12")
	if res.Metric("in_band_fraction") < 0.5 {
		t.Errorf("in-band fraction %.2f: controller not holding the rate",
			res.Metric("in_band_fraction"))
	}
	if res.Metric("decisions") < 10 {
		t.Error("too few controller decisions recorded")
	}
}

func TestFig13Shape(t *testing.T) {
	res := runFor(t, "fig13")
	if res.Metric("curves") < 2 {
		t.Fatal("not enough sensitivity curves")
	}
	if res.Metric("ramp_min_mv") < 5 || res.Metric("ramp_max_mv") > 120 {
		t.Errorf("ramp widths [%v, %v] mV outside the 20-50 mV story",
			res.Metric("ramp_min_mv"), res.Metric("ramp_max_mv"))
	}
	if res.Metric("v50_spread_v") <= 0 {
		t.Error("no core-to-core spread in 50% points")
	}
}

func TestFig14Shape(t *testing.T) {
	res := runFor(t, "fig14")
	if res.Metric("swing_idle_v") < 0.004 {
		t.Errorf("idle-case setpoint swing %.4f V: square wave not tracked",
			res.Metric("swing_idle_v"))
	}
	if res.Metric("swing_specfp_v") < 0.003 {
		t.Errorf("SPECfp-case swing %.4f V: square wave not tracked",
			res.Metric("swing_specfp_v"))
	}
}

func TestFig15Shape(t *testing.T) {
	res := runFor(t, "fig15")
	peak := res.Metric("peak_nop")
	if peak < 6 || peak > 10 {
		t.Errorf("error peak at NOP-%d, want near the NOP-8 resonance", int(peak))
	}
	if res.Metric("peak_errors") <= 3*res.Metric("nop0_errors") {
		t.Error("resonance peak not clearly above the NOP-0 virus")
	}
	if res.Metric("peak_errors") <= 3*res.Metric("nop20_errors") {
		t.Error("resonance peak not clearly above the NOP-20 virus")
	}
}

func TestFig16Shape(t *testing.T) {
	res := runFor(t, "fig16")
	if res.Metric("mean_rate_nop8") <= res.Metric("mean_rate_nop0") {
		t.Error("NOP-8 should out-error the higher-power NOP-0 virus")
	}
	if res.Metric("mean_rate_nop0") <= res.Metric("mean_rate_idle") {
		t.Error("NOP-0 should out-error the idle auxiliary")
	}
}

func TestFig17Shape(t *testing.T) {
	res := runFor(t, "fig17")
	if res.Metric("hw_relative_energy") >= res.Metric("sw_relative_energy") {
		t.Error("hardware speculation should save more energy than software")
	}
	if res.Metric("hw_relative_energy") > 0.85 {
		t.Errorf("hardware relative energy %.3f: savings too small",
			res.Metric("hw_relative_energy"))
	}
}

func TestFig18Shape(t *testing.T) {
	res := runFor(t, "fig18")
	if res.Metric("hw_min_v") > res.Metric("sw_min_v") {
		t.Error("hardware should keep gaining below the software minimum")
	}
	if res.Metric("sw_divergence") <= 0 {
		t.Error("software energy should climb below its optimum")
	}
	if res.Metric("hw_min_energy_rel") >= res.Metric("sw_min_energy_rel") {
		t.Error("hardware's energy floor should undercut software's")
	}
}

func TestMethodologyShape(t *testing.T) {
	res := runFor(t, "methodology")
	if res.Metric("max_target_diff_v") > 0.012 {
		t.Errorf("firmware approximation diverges %.1f mV from the hardware monitor",
			1000*res.Metric("max_target_diff_v"))
	}
	if p := res.Metric("fw_energy_penalty"); p <= 0 || p > 0.15 {
		t.Errorf("firmware probing penalty %.3f implausible", p)
	}
}

func TestCompareShape(t *testing.T) {
	res := runFor(t, "compare")
	// The related-work ordering: CPM < ECC hardware < Razor, with the
	// firmware baseline between CPM and the hardware design.
	if res.Metric("reduction_cpm") >= res.Metric("reduction_ecc-hardware") {
		t.Error("CPM should be more conservative than ECC hardware monitors")
	}
	if res.Metric("reduction_ecc-firmware") >= res.Metric("reduction_ecc-hardware") {
		t.Error("the firmware baseline should trail the hardware design")
	}
	if res.Metric("reduction_ecc-hardware") >= res.Metric("reduction_razor") {
		t.Error("Razor's detect-and-replay should dig deeper than ECC feedback")
	}
	if res.Metric("perfcost_razor") <= 0 {
		t.Error("Razor must pay a replay performance cost")
	}
	if r := res.Metric("reduction_none"); r > 1e-9 || r < -1e-9 {
		t.Error("the no-speculation baseline moved")
	}
}

func TestFreqScaleShape(t *testing.T) {
	res := runFor(t, "freqscale")
	// Benefit must shrink monotonically-ish with frequency, staying
	// positive across the production range.
	r340 := res.Metric("reduction_mhz340")
	r1000 := res.Metric("reduction_mhz1000")
	r1500 := res.Metric("reduction_mhz1500")
	if !(r340 > r1000 && r1000 > r1500) {
		t.Errorf("reduction not shrinking with frequency: %.3f, %.3f, %.3f",
			r340, r1000, r1500)
	}
	if r1500 <= 0.02 {
		t.Errorf("speculation should still help at 1.5 GHz: %.3f", r1500)
	}
}

func TestUncoreSpecShape(t *testing.T) {
	res := runFor(t, "uncorespec")
	if res.Metric("uncore_reduction") < 0.10 {
		t.Errorf("uncore reduction %.3f too small; the L3's margin went unused",
			res.Metric("uncore_reduction"))
	}
	if res.Metric("extra_power_savings") <= 0.03 {
		t.Errorf("extra power savings %.3f; extension not paying off",
			res.Metric("extra_power_savings"))
	}
	if res.Metric("core_v_shift") > 0.01 {
		t.Error("uncore speculation perturbed the core rails")
	}
}

func TestFanSpeedShape(t *testing.T) {
	res := runFor(t, "fanspeed")
	if res.Metric("temp_rise_c") < 5 {
		t.Errorf("fan slowdown raised temps only %.1f C; excursion too weak",
			res.Metric("temp_rise_c"))
	}
	if res.Metric("max_shift_v") > 0.012 {
		t.Errorf("converged rails moved %.1f mV under the excursion; should be a step or two",
			1000*res.Metric("max_shift_v"))
	}
}

func TestValidateShape(t *testing.T) {
	res := runFor(t, "validate")
	// Fast mode collects ~10x fewer events, so tolerance is loose here;
	// the full-length run (EXPERIMENTS.md) agrees within a few percent.
	if w := res.Metric("worst_ratio"); w < 0.35 || w > 2.5 {
		t.Errorf("statistical/functional agreement ratio %.2f out of tolerance", w)
	}
}

func TestAblateBandShape(t *testing.T) {
	res := runFor(t, "ablate-band")
	if res.Metric("crashes_total") != 0 {
		t.Error("crashes during the band ablation")
	}
	if res.Metric("reduction_band3") <= res.Metric("reduction_band0") {
		t.Error("wider error-rate bands should buy deeper voltage")
	}
}

func TestAblateRailsShape(t *testing.T) {
	res := runFor(t, "ablate-rails")
	if !(res.Metric("reduction_per1") > res.Metric("reduction_per2") &&
		res.Metric("reduction_per2") > res.Metric("reduction_per4") &&
		res.Metric("reduction_per4") > res.Metric("reduction_per8")) {
		t.Error("reduction should grow monotonically with rail granularity")
	}
}

func TestAblateStepShape(t *testing.T) {
	res := runFor(t, "ablate-step")
	if res.Metric("inband_step25") <= res.Metric("inband_step200") {
		t.Error("finer regulator steps should regulate better")
	}
}

func TestAblateProbeRateShape(t *testing.T) {
	res := runFor(t, "ablate-proberate")
	if res.Metric("crashes_rate5")+res.Metric("crashes_rate500") != 0 {
		t.Error("crashes during the probe-rate ablation")
	}
}

func TestSoakShape(t *testing.T) {
	res := runFor(t, "soak")
	if res.Metric("crashes") != 0 {
		t.Errorf("%.0f crashes during the reliability soak", res.Metric("crashes"))
	}
	if res.Metric("corrupted") != 0 {
		t.Errorf("%.0f corrupted sentinel lines", res.Metric("corrupted"))
	}
	if res.Metric("core_seconds") <= 0 {
		t.Error("no simulated time accumulated")
	}
}

func TestParetoShape(t *testing.T) {
	res := runFor(t, "pareto")
	// Speculation saves energy at every tier...
	for _, mhz := range []string{"340", "500", "1000"} {
		if res.Metric("epw_spec_mhz"+mhz) >= res.Metric("epw_base_mhz"+mhz) {
			t.Errorf("no energy saving at %s MHz", mhz)
		}
	}
	// ...and buys real performance at the base energy budget.
	if res.Metric("iso_energy_perf_gain") < 1.2 {
		t.Errorf("iso-energy performance gain %.2f too small",
			res.Metric("iso_energy_perf_gain"))
	}
}

func TestRetentionShape(t *testing.T) {
	res := runFor(t, "retention")
	if res.Metric("retention_errors") != 0 {
		t.Errorf("%.0f retention errors; faults must be access faults",
			res.Metric("retention_errors"))
	}
	if res.Metric("access_errors") <= 0 {
		t.Error("no access errors at the low voltage; contrast missing")
	}
}

func TestAgingShape(t *testing.T) {
	res := runFor(t, "aging")
	if res.Metric("onset_drift_v") < 0 {
		t.Error("aging should not lower the onset voltage")
	}
}

func TestTempShape(t *testing.T) {
	res := runFor(t, "temp")
	// The mid-ramp rate shift for +/-20C must stay small — the
	// equivalent voltage shift is ~2 mV, below one regulator step.
	if res.Metric("max_delta") > 0.2 {
		t.Errorf("temperature sensitivity %.3f too large", res.Metric("max_delta"))
	}
}
