package experiments

// Head-to-head speculation-policy race: every registered policy
// (internal/policy) drives an identical chip specimen through identical
// workloads, and the harness reports where each settles — mean Vdd and
// reduction, energy per unit work, uncorrectable (DUE) events,
// emergency services, fail-safe reversion and core deaths. The race is
// the quantitative companion to the registry: the paper's ladder,
// TS-Cache-style timing speculation, static guardband reduction and the
// no-speculation baseline measured on the same silicon under the same
// load.
//
// The harness builds chips and control systems directly (like the
// related-work "compare" experiment) rather than through the public
// Simulator, because this package is imported by it.

import (
	"context"
	"fmt"
	"strings"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/policy"
	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

// DefaultCompareWorkloads is the workload set a policy race runs when
// none is named: a cache-hostile SPECint benchmark and the SPECjbb
// server load.
var DefaultCompareWorkloads = []string{"mcf", "jbb-8wh"}

// PolicyCompareOptions configures RunPolicyCompare.
type PolicyCompareOptions struct {
	// Seed selects the chip specimen every cell of the race shares.
	Seed uint64
	// Policies names the racers; empty selects every registered policy.
	Policies []string
	// Workloads names the benchmarks; empty selects
	// DefaultCompareWorkloads.
	Workloads []string
	// Fast shortens the converge/measure windows ~10x.
	Fast bool
	// Full selects the full Table I cache geometry.
	Full bool
}

// PolicyRun is one (policy, workload) cell's outcome.
type PolicyRun struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	// Err captures a cell failure (calibration, mid-run) without
	// aborting the rest of the race.
	Err string `json:"error,omitempty"`

	// AvgVddV is the mean domain setpoint over the measure window.
	AvgVddV float64 `json:"avg_vdd_v"`
	// Reduction is 1 - AvgVddV/nominal.
	Reduction float64 `json:"reduction"`
	// EnergyPerWork is core energy divided by work units completed.
	EnergyPerWork float64 `json:"energy_per_work"`
	// RelEnergy is EnergyPerWork relative to the same workload's
	// baseline cell (the conservative policy when racing, else the
	// first policy raced).
	RelEnergy float64 `json:"rel_energy"`
	// DUE counts uncorrectable ECC events over the measure window,
	// summed across every core's cache hierarchy and the shared L3;
	// DUEPerSecond normalizes by simulated time.
	DUE          uint64  `json:"due"`
	DUEPerSecond float64 `json:"due_per_s"`
	// Emergencies counts serviced emergency interrupts; FailSafe lists
	// domains the controller reverted to nominal after a monitor fault.
	Emergencies int   `json:"emergencies"`
	FailSafe    []int `json:"fail_safe,omitempty"`
	// CoreDied reports that speculation drove a rail below a core's
	// crash margin — a comparative outcome, not a harness error.
	CoreDied bool `json:"core_died,omitempty"`
	// SpecHits/Replays carry the tscache policy's speculation
	// accounting (zero for other policies).
	SpecHits uint64 `json:"spec_hits,omitempty"`
	Replays  uint64 `json:"replays,omitempty"`
}

// PolicyCompareReport is a full race: one PolicyRun per (workload,
// policy) pair, in workload-major order.
type PolicyCompareReport struct {
	Seed         uint64      `json:"seed"`
	MeasureTicks int         `json:"measure_ticks"`
	Policies     []string    `json:"policies"`
	Workloads    []string    `json:"workloads"`
	Runs         []PolicyRun `json:"runs"`
}

// RunPolicyCompare races the named policies across the named workloads
// on one chip specimen. Unknown policy or workload names error up front,
// listing the registered names; per-cell failures land in the cell's
// Err. ctx cancellation stops between cells, returning the partial
// report alongside ctx's error.
func RunPolicyCompare(ctx context.Context, o PolicyCompareOptions) (*PolicyCompareReport, error) {
	pols := o.Policies
	if len(pols) == 0 {
		pols = policy.Names()
	}
	for _, name := range pols {
		if _, ok := policy.Get(name); !ok {
			return nil, fmt.Errorf("experiments: unknown policy %q (registered: %s)",
				name, strings.Join(policy.Names(), ", "))
		}
	}
	wls := o.Workloads
	if len(wls) == 0 {
		wls = DefaultCompareWorkloads
	}
	for _, name := range wls {
		if _, ok := workload.ByName(name); !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q (valid: %s)",
				name, strings.Join(workload.Names(), ", "))
		}
	}

	opts := Options{Seed: o.Seed, Full: o.Full, Fast: o.Fast}
	converge := opts.scale(1800, 250)
	measure := opts.scale(1800, 250)
	rep := &PolicyCompareReport{
		Seed: o.Seed, MeasureTicks: measure,
		Policies: pols, Workloads: wls,
	}
	for _, wl := range wls {
		base := -1.0
		for _, pol := range pols {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			cell := runPolicyCell(o.Seed, o.Full, pol, wl, converge, measure)
			// The workload's first healthy cell anchors relative energy;
			// the conservative baseline anchors it whenever it races.
			if cell.Err == "" && (base < 0 || pol == "conservative") {
				base = cell.EnergyPerWork
			}
			rep.Runs = append(rep.Runs, cell)
		}
		if base > 0 {
			for i := range rep.Runs {
				if r := &rep.Runs[i]; r.Workload == wl && r.Err == "" {
					r.RelEnergy = r.EnergyPerWork / base
				}
			}
		}
	}
	return rep, nil
}

// runPolicyCell measures one policy on one workload: build, calibrate,
// converge, then measure with fresh energy/work/DUE accounting.
func runPolicyCell(seed uint64, full bool, polName, wlName string, converge, measure int) PolicyRun {
	out := PolicyRun{Policy: polName, Workload: wlName}
	pol, err := policy.New(polName)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	wl, _ := workload.ByName(wlName)
	c := chip.New(chip.DefaultParams(seed, true, full))
	for _, co := range c.Cores {
		co.SetWorkload(wl, seed)
	}
	ctl := control.NewWithPolicy(c, control.DefaultConfig(), pol)
	if _, err := ctl.Calibrate(); err != nil {
		out.Err = fmt.Sprintf("calibrate: %v", err)
		return out
	}
	engine.Ticks(c, ctl, converge, nil)
	for _, co := range c.Cores {
		co.ResetAccounting()
	}
	dueBase := sumUncorrectable(c)

	sumV := 0.0
	ran := engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, _ []control.Action) bool {
		for _, d := range c.Domains {
			sumV += d.Rail.Target()
		}
		return true
	})

	out.AvgVddV = sumV / float64(ran*len(c.Domains))
	out.Reduction = 1 - out.AvgVddV/c.P.Point.NominalVdd
	out.DUE = sumUncorrectable(c) - dueBase
	out.DUEPerSecond = float64(out.DUE) / (float64(ran) * c.P.TickSeconds)
	out.Emergencies = ctl.Emergencies()
	out.FailSafe = ctl.FailSafeDomains()
	var e, w float64
	for _, co := range c.Cores {
		if !co.Alive() {
			out.CoreDied = true
		}
		e += co.Energy()
		w += co.Work()
	}
	if w > 0 {
		out.EnergyPerWork = e / w
	}
	if ts, ok := ctl.Policy().(*policy.TSCache); ok {
		st := ts.Stats()
		out.SpecHits, out.Replays = st.SpecHits, st.Replays
	}
	return out
}

// sumUncorrectable totals uncorrectable ECC events across every core's
// cache hierarchy and the shared L3 — the race's DUE count.
func sumUncorrectable(c *chip.Chip) uint64 {
	var n uint64
	kinds := []variation.Kind{variation.KindL1I, variation.KindL1D,
		variation.KindL2I, variation.KindL2D}
	for _, co := range c.Cores {
		for _, k := range kinds {
			n += co.CacheOf(k).Stats().Uncorrectable
		}
	}
	return n + c.L3.Stats().Uncorrectable
}

// Table renders the race as the text table `eccspec compare` prints.
func (r *PolicyCompareReport) Table() *TextTable {
	tbl := NewTextTable("workload", "policy", "avg Vdd", "reduction",
		"rel energy", "DUE", "emerg", "fail-safe", "notes")
	for _, run := range r.Runs {
		if run.Err != "" {
			tbl.AddRow(run.Workload, run.Policy, "-", "-", "-", "-", "-", "-", "ERROR: "+run.Err)
			continue
		}
		notes := ""
		if run.Replays > 0 || run.SpecHits > 0 {
			notes = fmt.Sprintf("replays %d/%d", run.Replays, run.SpecHits+run.Replays)
		}
		if run.CoreDied {
			if notes != "" {
				notes += "; "
			}
			notes += "CORE DIED"
		}
		tbl.AddRow(run.Workload, run.Policy,
			fmt.Sprintf("%.3f V", run.AvgVddV),
			fmt.Sprintf("%.1f%%", 100*run.Reduction),
			fmt.Sprintf("%.3f", run.RelEnergy),
			fmt.Sprintf("%d", run.DUE),
			fmt.Sprintf("%d", run.Emergencies),
			fmt.Sprintf("%d", len(run.FailSafe)),
			notes)
	}
	return tbl
}

func init() {
	register(Experiment{
		ID:    "policies",
		Title: "(extension) Speculation-policy registry raced head to head",
		Paper: "Extension",
		Run:   runPoliciesExperiment,
	})
}

// runPoliciesExperiment is the registered-experiment wrapper: every
// registered policy races on the default workload set.
func runPoliciesExperiment(o Options) (*Result, error) {
	rep, err := RunPolicyCompare(context.Background(), PolicyCompareOptions{
		Seed: o.Seed, Fast: o.Fast, Full: o.Full,
	})
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{}
	best, bestRed := "", -1.0
	for _, run := range rep.Runs {
		if run.Err != "" {
			continue
		}
		key := run.Policy + "_" + run.Workload
		metrics["reduction_"+key] = run.Reduction
		metrics["rel_energy_"+key] = run.RelEnergy
		metrics["due_"+key] = float64(run.DUE)
		if run.Reduction > bestRed && !run.CoreDied {
			best, bestRed = run.Policy, run.Reduction
		}
	}
	return &Result{
		ID:    "policies",
		Title: "Speculation-policy head-to-head",
		Headline: fmt.Sprintf("%d policies x %d workloads; deepest safe reduction: %s at %.1f%%",
			len(rep.Policies), len(rep.Workloads), best, 100*bestRed),
		Table:   rep.Table(),
		Metrics: metrics,
	}, nil
}
