// Package experiments contains one runnable reproduction per table and
// figure in the paper's evaluation, plus the auxiliary characterization
// experiments from §III and §V.
//
// Each experiment builds its own chip(s) from a seed, runs the relevant
// protocol, and returns a Result holding a rendered text table, optional
// time series, a one-line headline, and a map of named metrics that
// tests and EXPERIMENTS.md assert against. Experiments are registered in
// All() and addressable by id (e.g. "fig10") from the eccspec CLI and
// the benchmark harness.
//
// Absolute numbers are not expected to match the paper — the substrate
// is a simulator, not the authors' Itanium server — but the shapes are:
// who wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"eccspec/internal/chip"
	"eccspec/internal/trace"
	"eccspec/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Seed selects the simulated chip specimen.
	Seed uint64
	// Full selects the full Table I cache geometry instead of the 1/8
	// scaled default.
	Full bool
	// Fast shortens measurement windows ~10x (benchmarks, smoke tests).
	Fast bool
}

// scale returns d, or d/10 (at least lo) in fast mode.
func (o Options) scale(d, lo int) int {
	if !o.Fast {
		return d
	}
	if d/10 < lo {
		return lo
	}
	return d / 10
}

// Result is an experiment's output.
type Result struct {
	ID       string
	Title    string
	Headline string
	Table    *TextTable
	// Series holds optional time-series traces (voltage/error-rate
	// figures).
	Series []*trace.Recorder
	// Metrics are named scalar outcomes; tests and the experiment index
	// assert on these.
	Metrics map[string]float64
}

// Metric fetches a named metric, panicking if absent (experiment
// contract violation).
func (r *Result) Metric(name string) float64 {
	v, ok := r.Metrics[name]
	if !ok {
		panic(fmt.Sprintf("experiments: %s has no metric %q", r.ID, name))
	}
	return v
}

// Write renders the result to w.
func (r *Result) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n%s\n", r.ID, r.Title, r.Headline); err != nil {
		return err
	}
	if r.Table != nil {
		if err := r.Table.Render(w); err != nil {
			return err
		}
	}
	if len(r.Metrics) > 0 {
		names := make([]string, 0, len(r.Metrics))
		for n := range r.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "metric %-28s %.6g\n", n, r.Metrics[n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	// Paper names the table/figure reproduced ("Figure 10", ...).
	Paper string
	Run   func(Options) (*Result, error)
}

// registry is populated by the per-experiment files' init functions.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// paperOrder lists experiment ids in the order they appear in the paper;
// unlisted ids sort after these, alphabetically.
var paperOrder = []string{
	"fig1", "fig2", "fig3", "fig4", "tab1", "tab2",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"fig17", "fig18", "retention", "aging", "temp", "methodology", "compare", "freqscale", "uncorespec", "fanspeed", "validate", "soak", "pareto", "fidelity",
}

func orderOf(id string) int {
	for i, o := range paperOrder {
		if o == id {
			return i
		}
	}
	return len(paperOrder)
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		oi, oj := orderOf(out[i].ID), orderOf(out[j].ID)
		if oi != oj {
			return oi < oj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TextTable renders aligned rows.
type TextTable struct {
	header []string
	rows   [][]string
}

// NewTextTable creates a table with the given column headers.
func NewTextTable(header ...string) *TextTable {
	return &TextTable{header: header}
}

// AddRow appends a row; cells beyond the header width panic.
func (t *TextTable) AddRow(cells ...string) {
	if len(cells) != len(t.header) {
		panic("experiments: row width mismatch")
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells.
func (t *TextTable) AddRowf(format []string, args ...interface{}) {
	if len(format) != len(args) {
		panic("experiments: format/arg mismatch")
	}
	cells := make([]string, len(args))
	for i := range args {
		cells[i] = fmt.Sprintf(format[i], args[i])
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *TextTable) NumRows() int { return len(t.rows) }

// Render writes the aligned table.
func (t *TextTable) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(t.header)))); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// --- shared chip-building helpers --------------------------------------

// newChip builds a chip at the requested operating point and geometry.
func newChip(o Options, low bool) *chip.Chip {
	return chip.New(chip.DefaultParams(o.Seed, low, o.Full))
}

// assignSuite puts a suite's benchmarks on the chip's cores. CoreMark and
// SPECjbb run a full instance per core; SPEC CPU benchmarks are assigned
// round-robin, matching the paper's per-core runs.
func assignSuite(c *chip.Chip, suite string, seed uint64) {
	ps := workload.Suites()[suite]
	if len(ps) == 0 {
		panic("experiments: unknown suite " + suite)
	}
	for i, co := range c.Cores {
		co.SetWorkload(ps[i%len(ps)], seed)
	}
}

// parkAll assigns the firmware idle spin loop to every core.
func parkAll(c *chip.Chip, seed uint64) {
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), seed)
	}
}
