package experiments

// Golden outputs for every paper-numbered experiment table. These files
// were captured before the control loop was refactored onto the
// speculation-policy registry (internal/policy) and prove that the
// default paper policy still produces byte-identical tables: rendering a
// different byte here means the refactor changed a simulated decision.
//
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenPaperTables -update-golden

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden experiment tables from the current code")

// goldenIDs are the paper-numbered reproductions (tables and figures of
// the source paper's evaluation) whose rendered output is pinned.
var goldenIDs = []string{
	"fig1", "fig2", "fig3", "fig4", "tab1", "tab2",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"fig17", "fig18",
}

func TestGoldenPaperTables(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q is not registered", id)
			}
			res, err := e.Run(Options{Seed: 1, Fast: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Write(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s output diverged from the pre-policy-refactor golden\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.Bytes(), want)
			}
		})
	}
}
