package experiments

import (
	"fmt"
	"math"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
)

func init() {
	register(Experiment{
		ID:    "methodology",
		Title: "Hardware ECC monitor vs the paper's firmware self-test approximation",
		Paper: "Section IV-A",
		Run:   runMethodology,
	})
}

// runMethodology validates the paper's evaluation methodology: the
// authors could not add a real ECC monitor to production silicon, so
// they approximated it with a firmware self-test running on each core's
// second hardware thread (§IV-A2). This experiment runs the identical
// chip under both configurations and verifies (a) the converged voltages
// match step-for-step — the approximation measures the same physical
// quantity — while (b) the firmware version pays a measurable
// useful-work cost for probing with core cycles instead of idle cache
// cycles (the overhead §V-F cites as one reason to build the hardware).
func runMethodology(o Options) (*Result, error) {
	type outcome struct {
		targets []float64
		epw     float64
	}
	run := func(firmwareProbe bool) (outcome, error) {
		c := newChip(o, true)
		assignSuite(c, "SPECint", o.Seed)
		var ctl *control.System
		if firmwareProbe {
			ctl = control.NewFirmwareApproximation(c, control.DefaultConfig())
		} else {
			ctl = control.New(c, control.DefaultConfig())
		}
		if _, err := ctl.Calibrate(); err != nil {
			return outcome{}, err
		}
		converge := o.scale(1500, 200)
		measure := o.scale(1500, 200)
		engine.Ticks(c, ctl, converge, nil)
		for _, co := range c.Cores {
			co.ResetAccounting()
		}
		sums := make([]float64, len(c.Domains))
		engine.Ticks(c, ctl, measure, func(_ int, _ chip.TickReport, _ []control.Action) bool {
			for d := range c.Domains {
				sums[d] += c.Domains[d].Rail.Target()
			}
			return true
		})
		var out outcome
		var e, w float64
		for d := range sums {
			out.targets = append(out.targets, sums[d]/float64(measure))
		}
		for i, co := range c.Cores {
			if !co.Alive() {
				return outcome{}, fmt.Errorf("experiments: core %d died (firmware=%v)", i, firmwareProbe)
			}
			e += co.Energy()
			w += co.Work()
		}
		out.epw = e / w
		return out, nil
	}

	hw, err := run(false)
	if err != nil {
		return nil, err
	}
	fw, err := run(true)
	if err != nil {
		return nil, err
	}

	tbl := NewTextTable("domain", "hardware monitor", "firmware self-test", "difference")
	maxDiff := 0.0
	for d := range hw.targets {
		diff := fw.targets[d] - hw.targets[d]
		if math.Abs(diff) > maxDiff {
			maxDiff = math.Abs(diff)
		}
		tbl.AddRow(fmt.Sprintf("domain %d", d),
			fmt.Sprintf("%.3f V", hw.targets[d]),
			fmt.Sprintf("%.3f V", fw.targets[d]),
			fmt.Sprintf("%+.1f mV", 1000*diff))
	}
	penalty := fw.epw/hw.epw - 1
	return &Result{
		ID: "methodology", Title: "Monitor vs firmware self-test approximation",
		Headline: fmt.Sprintf(
			"converged voltages agree within %.1f mV; firmware probing costs %.2f%% extra energy per unit of work",
			1000*maxDiff, 100*penalty),
		Table: tbl,
		Metrics: map[string]float64{
			"max_target_diff_v":  maxDiff,
			"fw_energy_penalty":  penalty,
			"hw_energy_per_work": hw.epw,
			"fw_energy_per_work": fw.epw,
		},
	}, nil
}
