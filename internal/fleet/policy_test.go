package fleet

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestFleetPolicyDrivesChips proves Job.Policy reaches the per-chip
// control loops: a conservative fleet never leaves nominal, while the
// same seeds under the default ladder do.
func TestFleetPolicyDrivesChips(t *testing.T) {
	base := Job{Seeds: []uint64{31, 32}, Workload: "mcf", Seconds: 0.03}
	eng := New(Config{Workers: 2})

	pinned := base
	pinned.Policy = "conservative"
	results, err := eng.Run(context.Background(), pinned, nil)
	if err != nil {
		t.Fatalf("conservative fleet: %v", err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("chip %d failed: %v", r.Seed, r.Err)
		}
		if r.AvgReduction != 0 {
			t.Errorf("chip %d: conservative policy reduced Vdd by %.4f, want 0", r.Seed, r.AvgReduction)
		}
		for d, v := range r.DomainVdd {
			if v != r.NominalV {
				t.Errorf("chip %d domain %d settled at %.3f V, want nominal %.3f V", r.Seed, d, v, r.NominalV)
			}
		}
	}

	ladder, err := eng.Run(context.Background(), base, nil)
	if err != nil {
		t.Fatalf("default fleet: %v", err)
	}
	for _, r := range ladder {
		if r.Err != nil {
			t.Fatalf("chip %d failed: %v", r.Seed, r.Err)
		}
		if r.AvgReduction <= 0 {
			t.Errorf("chip %d: default ladder reduction %.4f, want > 0", r.Seed, r.AvgReduction)
		}
	}
}

// TestFleetRejectsUnknownPolicy: validation fails before any chip runs,
// and the error lists the registered names.
func TestFleetRejectsUnknownPolicy(t *testing.T) {
	_, err := New(Config{Workers: 1}).Run(context.Background(),
		Job{Seeds: []uint64{1}, Seconds: 0.01, Policy: "nosuch"}, nil)
	if err == nil {
		t.Fatal("fleet accepted unknown policy")
	}
	for _, want := range []string{"nosuch", "paper", "tscache"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestResumeRejectsPolicyMismatch: a checkpoint captured under one
// policy cannot silently continue under another — the chip errors,
// naming both policies.
func TestResumeRejectsPolicyMismatch(t *testing.T) {
	job := Job{
		Seeds:           []uint64{601},
		Seconds:         0.03,
		Policy:          "guardband",
		CheckpointEvery: 25,
	}
	var (
		mu   sync.Mutex
		blob []byte
	)
	job.OnCheckpoint = func(_ uint64, _ int, b []byte) {
		mu.Lock()
		defer mu.Unlock()
		if blob == nil {
			blob = b
		}
	}
	eng := New(Config{Workers: 1})
	if _, err := eng.Run(context.Background(), job, nil); err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}

	mismatch := Job{
		Seeds:   job.Seeds,
		Seconds: job.Seconds,
		Policy:  "tscache",
		Resume:  map[uint64][]byte{601: blob},
	}
	results, err := eng.Run(context.Background(), mismatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("policy-mismatched resume did not error")
	}
	msg := results[0].Err.Error()
	if !strings.Contains(msg, "guardband") || !strings.Contains(msg, "tscache") {
		t.Fatalf("mismatch error %q does not name both policies", msg)
	}
}
