// Package fleet runs many independent chip simulations concurrently.
//
// Every manufactured chip is a different specimen — a different
// weak-cell map, different logic floors, different rail resonances —
// so the population-level object of interest is the *distribution* of
// voltage and power savings across a fleet of seeds. This package is
// the engine behind that view: a bounded worker pool that takes a Job
// (seeds, workload, duration, controller options), simulates each seed
// through the full seed → calibrate → speculate pipeline, and collects
// per-chip results with per-chip error capture instead of aborting the
// whole survey.
//
// Determinism: each chip derives all of its randomness from its own
// seed and shares no state with its siblings, and results are stored
// by input position, so a parallel run is byte-identical to a serial
// run of the same Job — only wall-clock time changes.
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"eccspec"
	"eccspec/internal/engine"
	"eccspec/internal/policy"
	"eccspec/internal/snapshot"
	"eccspec/internal/trace"
	"eccspec/internal/workload"
)

// TraceColumns names the per-tick telemetry series recorded when a
// Job requests tracing: mean and minimum domain Vdd, mean monitor
// error rate at the last controller decision, and average chip power.
var TraceColumns = []string{"vdd_mean_v", "vdd_min_v", "err_rate", "power_w"}

// Priority bounds for Job.Priority: ten admission classes, 0 (default,
// lowest) through 9 (highest).
const (
	MinPriority = 0
	MaxPriority = 9
)

// Job describes one fleet simulation: the same platform and workload
// across many chip specimens.
type Job struct {
	// Seeds lists the chip specimens to simulate, one simulation per
	// seed. Order is preserved in the results.
	Seeds []uint64 `json:"seeds"`
	// Workload names the benchmark every core runs (empty selects the
	// characterization stress test).
	Workload string `json:"workload,omitempty"`
	// Policy names the speculation policy driving every chip's control
	// system (empty selects the paper's floor/ceiling ladder). The field
	// serializes with the job, so cluster workers run the same policy.
	Policy string `json:"policy,omitempty"`
	// Fidelity selects every chip's event-sampling fidelity ("full" or
	// empty for exact per-line sampling, "adaptive" for stability-gated
	// fast-forward). Serializes with the job, so cluster workers run at
	// the same fidelity.
	Fidelity string `json:"fidelity,omitempty"`
	// Priority is the job's admission class (0..9, higher first). The
	// engine itself runs whatever it is handed; the field lives on the
	// Job so the daemon's bounded queue can order admissions and so the
	// class serializes with the job — through the store's journal and
	// across cluster dispatch — instead of being daemon-local state.
	Priority int `json:"priority,omitempty"`
	// Seconds is the simulated duration of the closed-loop speculation
	// run after calibration.
	Seconds float64 `json:"seconds"`
	// HighVoltagePoint selects the nominal 2.53 GHz / 1.1 V operating
	// point instead of the low-voltage 340 MHz / 800 mV default.
	HighVoltagePoint bool `json:"high_voltage_point,omitempty"`
	// FullGeometry uses the paper's full Table I cache sizes.
	FullGeometry bool `json:"full_geometry,omitempty"`
	// Uncore extends speculation to the uncore rail.
	Uncore bool `json:"uncore,omitempty"`
	// TraceEvery samples per-tick telemetry (TraceColumns) every N
	// ticks into each chip's Trace recorder; 0 disables tracing.
	TraceEvery int `json:"trace_every,omitempty"`
	// CheckpointEvery emits a full simulator snapshot through
	// OnCheckpoint every N ticks; 0 disables checkpointing.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// OnCheckpoint, when set with CheckpointEvery > 0, receives each
	// chip's serialized snapshot (a snapshot blob including any partial
	// trace) as the simulation passes checkpoint boundaries. It may be
	// called concurrently from worker goroutines.
	OnCheckpoint func(seed uint64, ticks int, blob []byte) `json:"-"`
	// OnResult, when set, is called with each chip's final result as it
	// completes, before Run returns. It may be called concurrently from
	// worker goroutines.
	OnResult func(res ChipResult) `json:"-"`
	// Resume maps seeds to snapshot blobs previously emitted by
	// OnCheckpoint. A seed present here skips construction and
	// calibration and continues from the captured tick; the completed
	// run is byte-identical to one that was never interrupted.
	Resume map[uint64][]byte `json:"-"`
	// Observers, when set, supplies extra engine observers for each
	// chip's run — live metrics, custom stop conditions — composed
	// after the job's own trace and checkpoint observers. It is called
	// once per chip and may be called concurrently from worker
	// goroutines; the returned observers are used by one run only.
	Observers func(seed uint64) []engine.Observer `json:"-"`
	// OnAssign, when set, is told which executor a chip has been placed
	// on before it runs. The local engine never calls it — placement is
	// a cluster concept (internal/cluster invokes it with the worker id
	// on every dispatch, including re-dispatch after a migration) — but
	// it lives on the Job so a cluster run is driven through exactly
	// the same hook surface as a local one. It may be called
	// concurrently.
	OnAssign func(seed uint64, worker string) `json:"-"`
}

// WithSeeds returns a copy of the job scoped to the given seeds — the
// remote-executable chip range a cluster coordinator ships to a worker
// daemon. Callbacks, observers, and resume blobs are stripped: none of
// them serialize, and the executing side wires its own. The returned
// job is safe to JSON-encode and fully describes the simulation, so a
// worker that runs it produces chips byte-identical to a local run of
// the same range.
func (j Job) WithSeeds(seeds []uint64) Job {
	j.Seeds = seeds
	j.OnCheckpoint, j.OnResult, j.Observers, j.OnAssign = nil, nil, nil, nil
	j.Resume = nil
	return j
}

// Validate checks a Job before any simulation is built.
func (j Job) Validate() error {
	if len(j.Seeds) == 0 {
		return fmt.Errorf("fleet: job has no seeds")
	}
	if j.Seconds <= 0 {
		return fmt.Errorf("fleet: non-positive duration %g s", j.Seconds)
	}
	if j.TraceEvery < 0 {
		return fmt.Errorf("fleet: negative trace interval %d", j.TraceEvery)
	}
	if j.CheckpointEvery < 0 {
		return fmt.Errorf("fleet: negative checkpoint interval %d", j.CheckpointEvery)
	}
	if j.Priority < MinPriority || j.Priority > MaxPriority {
		return fmt.Errorf("fleet: priority %d out of range [%d, %d]", j.Priority, MinPriority, MaxPriority)
	}
	if j.Workload != "" {
		if _, ok := workload.ByName(j.Workload); !ok {
			return fmt.Errorf("fleet: unknown workload %q", j.Workload)
		}
	}
	if j.Policy != "" {
		if _, ok := policy.Get(j.Policy); !ok {
			return fmt.Errorf("fleet: unknown policy %q (registered: %s)",
				j.Policy, strings.Join(policy.Names(), ", "))
		}
	}
	switch j.Fidelity {
	case "", eccspec.FidelityFull, eccspec.FidelityAdaptive:
	default:
		return fmt.Errorf("fleet: unknown fidelity %q (valid: %s, %s)",
			j.Fidelity, eccspec.FidelityFull, eccspec.FidelityAdaptive)
	}
	return nil
}

// resolveFidelity maps a job fidelity spec onto its canonical Options
// form (full fidelity is recorded as the empty string).
func resolveFidelity(f string) string {
	if f == eccspec.FidelityFull {
		return ""
	}
	return f
}

// ChipResult is the outcome of one chip's simulation. Exactly one of
// Err or the measurement fields is meaningful: a failed chip carries
// its error and zero measurements.
type ChipResult struct {
	// Seed identifies the specimen.
	Seed uint64
	// Err captures this chip's failure (calibration error, core death,
	// cancellation, or a panic in the simulation) without aborting the
	// rest of the fleet.
	Err error
	// NominalV is the operating point's rated supply in volts.
	NominalV float64
	// AvgReduction is the mean relative Vdd reduction across domains.
	AvgReduction float64
	// DomainVdd holds each core domain's final setpoint in volts.
	DomainVdd []float64
	// UncoreVdd is the uncore rail's final setpoint (nominal unless the
	// job enabled uncore speculation).
	UncoreVdd float64
	// AvgPowerW is the chip's average power over the run.
	AvgPowerW float64
	// Ticks is the number of control ticks executed.
	Ticks int
	// Emergencies counts the emergency interrupts the chip's controller
	// serviced during this process's run (live telemetry — not carried
	// through checkpoints or the store).
	Emergencies int
	// FailSafe lists the voltage domains the controller reverted to
	// nominal after a monitor fault (sorted; nil in healthy runs). Like
	// Emergencies, live telemetry only.
	FailSafe []int
	// FastForwardTicks and FidelityDropbacks report adaptive-fidelity
	// activity: ticks advanced on the aggregate kernel and the number of
	// drop-backs to full fidelity. Zero for full-fidelity jobs.
	FastForwardTicks  int64
	FidelityDropbacks int64
	// Trace holds per-tick telemetry when the job requested it.
	Trace *trace.Recorder
}

// Config sizes an Engine.
type Config struct {
	// Workers caps concurrent chip simulations; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the dispatch queue feeding the workers; <= 0
	// selects twice the worker count.
	QueueDepth int
}

// Engine is a reusable worker pool for fleet jobs.
type Engine struct {
	workers int
	queue   int
}

// New builds an engine from cfg.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := cfg.QueueDepth
	if q <= 0 {
		q = 2 * w
	}
	return &Engine{workers: w, queue: q}
}

// Workers returns the concurrency cap.
func (e *Engine) Workers() int { return e.workers }

// simulateFn indirects the per-chip simulation so tests can observe
// scheduling (saturation, cancellation) without paying for real chips.
var simulateFn = simulateChip

// Run simulates every seed of the job and returns one ChipResult per
// seed, in seed (input) order. A chip's failure is captured in its
// result's Err; Run itself only errors on an invalid job or a
// cancelled context. On cancellation the returned slice is still fully
// populated: finished chips keep their results, unstarted and
// interrupted chips carry ctx's error.
//
// onProgress, if non-nil, is called after each chip completes with the
// number of finished chips and the fleet size; it must be safe to call
// from worker goroutines (calls are serialized).
func (e *Engine) Run(ctx context.Context, job Job, onProgress func(done, total int)) ([]ChipResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	n := len(job.Seeds)
	results := make([]ChipResult, n)

	workers := e.workers
	if workers > n {
		workers = n
	}
	depth := e.queue
	if depth > n {
		depth = n
	}
	jobs := make(chan int, depth)

	var (
		wg       sync.WaitGroup
		progMu   sync.Mutex
		finished int
	)
	// runOne isolates one chip's full turn — simulation plus the
	// OnResult and onProgress callbacks — behind a recover, so a panic
	// anywhere in it (an observer, a callback, the simulator itself)
	// becomes that chip's error instead of killing the worker and
	// deadlocking the pool. The progress mutex is released by defer for
	// the same reason.
	runOne := func(idx int) {
		defer func() {
			if r := recover(); r != nil {
				results[idx] = ChipResult{Seed: job.Seeds[idx],
					Err: fmt.Errorf("fleet: chip %d: worker panic: %v", job.Seeds[idx], r)}
			}
		}()
		results[idx] = simulateFn(ctx, job, job.Seeds[idx])
		if job.OnResult != nil {
			job.OnResult(results[idx])
		}
		if onProgress != nil {
			progMu.Lock()
			defer progMu.Unlock()
			finished++
			onProgress(finished, n)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := ctx.Err(); err != nil {
					// Drain the queue quickly once cancelled, marking
					// every unstarted chip.
					results[idx] = ChipResult{Seed: job.Seeds[idx], Err: err}
					continue
				}
				runOne(idx)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, ctx.Err()
}

// simulateChip runs one specimen through the full pipeline. All
// failure modes — calibration errors, core death, cancellation, a
// corrupt resume blob, even a panic in the simulator — land in the
// result's Err.
func simulateChip(ctx context.Context, job Job, seed uint64) (res ChipResult) {
	res.Seed = seed
	defer func() {
		if r := recover(); r != nil {
			res = ChipResult{Seed: seed, Err: fmt.Errorf("fleet: chip %d panicked: %v", seed, r)}
		}
	}()

	// Build the simulator: either fresh (construct + calibrate) or
	// restored from a checkpoint blob, which carries the calibration and
	// any partial trace inside it.
	var sim *eccspec.Simulator
	start := 0
	if blob, ok := job.Resume[seed]; ok {
		restored, st, err := snapshot.RestoreBlob(blob)
		if err != nil {
			res.Err = fmt.Errorf("resume: %w", err)
			return res
		}
		if got := restored.Opts().Seed; got != seed {
			res.Err = fmt.Errorf("resume: checkpoint is for seed %d, not %d", got, seed)
			return res
		}
		if got, want := restored.Opts().Policy, policy.Resolve(job.Policy); got != want {
			res.Err = fmt.Errorf("resume: checkpoint ran policy %q, job wants %q", got, want)
			return res
		}
		if got, want := restored.Opts().Fidelity, resolveFidelity(job.Fidelity); got != want {
			res.Err = fmt.Errorf("resume: checkpoint ran fidelity %q, job wants %q", got, want)
			return res
		}
		sim = restored
		start = st.Ticks
		if job.TraceEvery > 0 {
			rec, err := st.Trace.RestoreTrace()
			if err != nil {
				res.Err = fmt.Errorf("resume: %w", err)
				return res
			}
			if rec == nil {
				rec = trace.NewRecorder(TraceColumns...)
			}
			res.Trace = rec
		}
	} else {
		var err error
		sim, err = eccspec.NewSimulator(eccspec.Options{
			Seed:             seed,
			Workload:         job.Workload,
			Policy:           job.Policy,
			Fidelity:         job.Fidelity,
			HighVoltagePoint: job.HighVoltagePoint,
			FullGeometry:     job.FullGeometry,
		})
		if err != nil {
			res.Err = err
			return res
		}
		if err := sim.Calibrate(); err != nil {
			res.Err = fmt.Errorf("calibrate: %w", err)
			return res
		}
		if job.Uncore {
			if err := sim.EnableUncoreSpeculation(); err != nil {
				res.Err = fmt.Errorf("uncore calibrate: %w", err)
				return res
			}
		}
		if job.TraceEvery > 0 {
			res.Trace = trace.NewRecorder(TraceColumns...)
		}
	}

	// One engine run carries tracing and checkpointing as observers on
	// absolute tick numbering, so the modulo boundaries stay aligned
	// across an interruption: tick t of a resumed run is tick t of the
	// uninterrupted run.
	ticks := int(job.Seconds / sim.TickSeconds())
	var obs []engine.Observer
	if job.TraceEvery > 0 {
		obs = append(obs, engine.EveryN{N: job.TraceEvery, Fn: func(engine.View) error {
			res.Trace.Add(sim.Time(), traceSample(sim)...)
			return nil
		}})
	}
	if job.CheckpointEvery > 0 && job.OnCheckpoint != nil {
		obs = append(obs, engine.EveryN{N: job.CheckpointEvery, Fn: func(v engine.View) error {
			if v.Tick >= v.Until {
				// The final tick's state is the result itself; no
				// checkpoint needed.
				return nil
			}
			if blob, err := checkpointBlob(sim, res.Trace); err == nil {
				job.OnCheckpoint(seed, v.Tick, blob)
			}
			return nil
		}})
	}
	if job.Observers != nil {
		obs = append(obs, job.Observers(seed)...)
	}
	rep, err := engine.Run(ctx, sim, engine.Config{Start: start, Until: ticks, Observers: obs})
	res.Ticks = rep.Tick
	res.Emergencies = sim.Control().Emergencies()
	res.FailSafe = sim.Control().FailSafeDomains()
	res.FastForwardTicks = sim.Chip().FastForwardTicks()
	res.FidelityDropbacks = sim.Chip().FidelityDropbacks()
	if err != nil {
		res.Err = err
		return res
	}

	if !sim.CoresAlive() {
		res.Err = fmt.Errorf("core died after %d ticks (rail below crash margin)", res.Ticks)
		return res
	}

	res.NominalV = sim.NominalVoltage()
	res.AvgReduction = sim.AverageReduction()
	res.DomainVdd = make([]float64, sim.NumDomains())
	for d := 0; d < sim.NumDomains(); d++ {
		res.DomainVdd[d] = sim.DomainVoltage(d)
	}
	res.UncoreVdd = sim.UncoreVoltage()
	res.AvgPowerW = sim.TotalPower()
	return res
}

// checkpointBlob serializes a live simulator plus its partial trace.
func checkpointBlob(sim *eccspec.Simulator, rec *trace.Recorder) ([]byte, error) {
	st, err := snapshot.Capture(sim)
	if err != nil {
		return nil, err
	}
	st.Trace = snapshot.CaptureTrace(rec)
	return snapshot.Marshal(st)
}

// traceSample reads one telemetry row (TraceColumns order) off a live
// simulator.
func traceSample(sim *eccspec.Simulator) []float64 {
	nd := sim.NumDomains()
	meanV, minV, meanErr := 0.0, sim.DomainVoltage(0), 0.0
	for d := 0; d < nd; d++ {
		v := sim.DomainVoltage(d)
		meanV += v
		if v < minV {
			minV = v
		}
		meanErr += sim.MonitorErrorRate(d)
	}
	meanV /= float64(nd)
	meanErr /= float64(nd)
	return []float64{meanV, minV, meanErr, sim.TotalPower()}
}
