// Fleet aggregation: the population-level statistics a survey is run
// for, computed purely from the ordered ChipResult slice so that a
// parallel run summarizes byte-identically to a serial one.
package fleet

import (
	"fmt"
	"io"

	"eccspec/internal/stats"
)

// HistBins is the resolution of the domain-Vdd histogram: bins of 1%
// of nominal spanning 70%..105% of the rated supply.
const HistBins = 35

// Summary aggregates a fleet's results.
type Summary struct {
	// Chips is the fleet size; Failed counts chips whose result
	// carries an error (they contribute nothing else to the summary).
	Chips  int
	Failed int
	// NominalV is the rated supply shared by the fleet's chips.
	NominalV float64
	// MeanReduction/MinReduction/MaxReduction summarize the per-chip
	// average Vdd reductions across the healthy chips.
	MeanReduction float64
	MinReduction  float64
	MaxReduction  float64
	// MinDomainVdd/MaxDomainVdd bound the individual domain setpoints.
	MinDomainVdd float64
	MaxDomainVdd float64
	// MeanPowerW is the mean of the per-chip average powers.
	MeanPowerW float64
	// TotalTicks counts control ticks simulated across the fleet.
	TotalTicks int64
	// DomainVddHist bins every healthy domain setpoint over
	// [0.70, 1.05) × NominalV in HistBins uniform bins.
	DomainVddHist *stats.Histogram
	// Errors lists failed chips as "seed N: msg", in seed order.
	Errors []string
}

// Summarize aggregates results (as returned by Engine.Run) into a
// Summary. Failed chips are counted and listed but excluded from the
// statistics.
func Summarize(results []ChipResult) Summary {
	s := Summary{Chips: len(results)}
	var reductions, powers, domainVs []float64
	for _, r := range results {
		s.TotalTicks += int64(r.Ticks)
		if r.Err != nil {
			s.Failed++
			s.Errors = append(s.Errors, fmt.Sprintf("seed %d: %v", r.Seed, r.Err))
			continue
		}
		if s.NominalV == 0 {
			s.NominalV = r.NominalV
		}
		reductions = append(reductions, r.AvgReduction)
		powers = append(powers, r.AvgPowerW)
		domainVs = append(domainVs, r.DomainVdd...)
	}
	s.MeanReduction = stats.Mean(reductions)
	s.MinReduction = stats.Min(reductions)
	s.MaxReduction = stats.Max(reductions)
	s.MinDomainVdd = stats.Min(domainVs)
	s.MaxDomainVdd = stats.Max(domainVs)
	s.MeanPowerW = stats.Mean(powers)
	if s.NominalV > 0 {
		s.DomainVddHist = stats.NewHistogram(0.70*s.NominalV, 1.05*s.NominalV, HistBins)
		for _, v := range domainVs {
			s.DomainVddHist.Add(v)
		}
	}
	return s
}

// Healthy returns the number of chips that completed without error.
func (s Summary) Healthy() int { return s.Chips - s.Failed }

// Write renders the summary as aligned text. The rendering is a pure
// function of the Summary, so it doubles as the byte-identity witness
// for parallel-vs-serial determinism tests.
func (s Summary) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "fleet of %d chips (%d failed):\n", s.Chips, s.Failed); err != nil {
		return err
	}
	if s.Healthy() > 0 {
		dyn := 1 - (1-s.MeanReduction)*(1-s.MeanReduction)
		_, err := fmt.Fprintf(w,
			"  mean reduction:   %5.1f%%\n"+
				"  best chip:        %5.1f%%\n"+
				"  worst chip:       %5.1f%%\n"+
				"  domain Vdd range: %.0f..%.0f mV (nominal %.0f mV)\n"+
				"  mean chip power:  %.2f W\n"+
				"  implied dynamic-power saving at the mean: %.0f%%\n",
			100*s.MeanReduction, 100*s.MaxReduction, 100*s.MinReduction,
			1000*s.MinDomainVdd, 1000*s.MaxDomainVdd, 1000*s.NominalV,
			s.MeanPowerW, 100*dyn)
		if err != nil {
			return err
		}
	}
	for _, e := range s.Errors {
		if _, err := fmt.Fprintf(w, "  FAILED %s\n", e); err != nil {
			return err
		}
	}
	return nil
}
