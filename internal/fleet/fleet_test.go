package fleet

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelSerialDeterminism is the engine's core contract: a fleet
// of 32 seeds run through a parallel worker pool must produce results
// — per-chip, aggregated, and rendered — byte-identical to the same
// seeds run serially.
func TestParallelSerialDeterminism(t *testing.T) {
	job := Job{
		Workload:   "jbb-8wh",
		Seconds:    0.05,
		TraceEvery: 20,
	}
	for seed := uint64(2000); seed < 2032; seed++ {
		job.Seeds = append(job.Seeds, seed)
	}

	serial, err := New(Config{Workers: 1}).Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := New(Config{Workers: 4}).Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}

	if len(serial) != len(job.Seeds) || len(parallel) != len(job.Seeds) {
		t.Fatalf("result count: serial %d, parallel %d, want %d", len(serial), len(parallel), len(job.Seeds))
	}
	for i := range serial {
		if serial[i].Err != nil {
			t.Fatalf("serial chip %d failed: %v", serial[i].Seed, serial[i].Err)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("chip %d: serial and parallel results differ:\n  serial:   %+v\n  parallel: %+v",
				serial[i].Seed, serial[i], parallel[i])
		}
		var sCSV, pCSV bytes.Buffer
		if err := serial[i].Trace.WriteCSV(&sCSV); err != nil {
			t.Fatal(err)
		}
		if err := parallel[i].Trace.WriteCSV(&pCSV); err != nil {
			t.Fatal(err)
		}
		if sCSV.String() != pCSV.String() {
			t.Errorf("chip %d: traces differ", serial[i].Seed)
		}
	}

	var sOut, pOut bytes.Buffer
	if err := Summarize(serial).Write(&sOut); err != nil {
		t.Fatal(err)
	}
	if err := Summarize(parallel).Write(&pOut); err != nil {
		t.Fatal(err)
	}
	if sOut.String() != pOut.String() {
		t.Fatalf("aggregated summaries differ:\nserial:\n%s\nparallel:\n%s", sOut.String(), pOut.String())
	}
	if !strings.Contains(sOut.String(), "fleet of 32 chips (0 failed)") {
		t.Fatalf("unexpected summary header:\n%s", sOut.String())
	}
}

// TestCancellationMidRun cancels a fleet while chips are in flight:
// Run must return promptly with the context's error and a fully
// populated result slice in which interrupted chips carry that error.
func TestCancellationMidRun(t *testing.T) {
	job := Job{
		Seeds:   []uint64{1, 2, 3, 4, 5, 6},
		Seconds: 30, // far longer than the test allows to run
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	results, err := New(Config{Workers: 2}).Run(ctx, job, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// Cancellation latency is bounded by one calibration plus one tick.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(results) != len(job.Seeds) {
		t.Fatalf("got %d results, want %d", len(results), len(job.Seeds))
	}
	cancelled := 0
	for i, r := range results {
		if r.Seed != job.Seeds[i] {
			t.Errorf("result %d has seed %d, want %d", i, r.Seed, job.Seeds[i])
		}
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		} else if r.Err != nil {
			t.Errorf("chip %d: unexpected error %v", r.Seed, r.Err)
		}
	}
	if cancelled == 0 {
		t.Fatal("no chip observed the cancellation")
	}
	s := Summarize(results)
	if s.Failed != cancelled || s.Chips != len(job.Seeds) {
		t.Fatalf("summary counts %d/%d, want %d/%d", s.Failed, s.Chips, cancelled, len(job.Seeds))
	}
}

// TestWorkerPoolSaturation floods a small pool with many chips and
// checks that concurrency never exceeds the worker cap, that the pool
// actually saturates, and that progress reporting is monotonic.
func TestWorkerPoolSaturation(t *testing.T) {
	const workers, chips = 3, 24
	var cur, peak atomic.Int32
	orig := simulateFn
	simulateFn = func(ctx context.Context, job Job, seed uint64) ChipResult {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return ChipResult{Seed: seed, NominalV: 0.8, Ticks: 1}
	}
	defer func() { simulateFn = orig }()

	job := Job{Seconds: 0.001}
	for seed := uint64(0); seed < chips; seed++ {
		job.Seeds = append(job.Seeds, seed)
	}
	var lastDone int
	results, err := New(Config{Workers: workers}).Run(context.Background(), job, func(done, total int) {
		if total != chips {
			t.Errorf("progress total = %d, want %d", total, chips)
		}
		if done != lastDone+1 {
			t.Errorf("progress done = %d after %d", done, lastDone)
		}
		lastDone = done
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != chips {
		t.Fatalf("progress reached %d, want %d", lastDone, chips)
	}
	for i, r := range results {
		if r.Seed != uint64(i) || r.Err != nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("concurrency peaked at %d, cap is %d", p, workers)
	} else if p < workers {
		t.Errorf("pool never saturated: peak %d of %d workers", p, workers)
	}
}

// TestJobValidation rejects malformed jobs before any chip is built.
func TestJobValidation(t *testing.T) {
	eng := New(Config{})
	bad := []Job{
		{Seconds: 1},         // no seeds
		{Seeds: []uint64{1}}, // no duration
		{Seeds: []uint64{1}, Seconds: 1, Workload: "nope"}, // unknown workload
		{Seeds: []uint64{1}, Seconds: 1, TraceEvery: -1},   // bad trace interval
	}
	for i, j := range bad {
		if _, err := eng.Run(context.Background(), j, nil); err == nil {
			t.Errorf("job %d: Run accepted invalid job %+v", i, j)
		}
	}
	if New(Config{}).Workers() < 1 {
		t.Error("default engine has no workers")
	}
}

// TestUncoreFleet runs a single specimen with uncore speculation and
// checks the extra rail is reported.
func TestUncoreFleet(t *testing.T) {
	results, err := New(Config{Workers: 1}).Run(context.Background(),
		Job{Seeds: []uint64{7}, Seconds: 0.02, Uncore: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatalf("chip failed: %v", r.Err)
	}
	if r.UncoreVdd <= 0 {
		t.Fatalf("uncore Vdd not reported: %+v", r)
	}
	if len(r.DomainVdd) == 0 || r.NominalV <= 0 || r.Ticks <= 0 {
		t.Fatalf("incomplete result: %+v", r)
	}
}

// TestCheckpointResumeByteIdentical is the fleet-level resume contract:
// a job resumed from mid-run checkpoint blobs finishes with per-chip
// results (voltages, power, tick counts, traces) deep-equal to the same
// job run uninterrupted.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	base := Job{
		Seeds:      []uint64{9001, 9002, 9003},
		Workload:   "jbb-8wh",
		Seconds:    0.05,
		TraceEvery: 10,
	}
	eng := New(Config{Workers: 2})

	uninterrupted, err := eng.Run(context.Background(), base, nil)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	for _, r := range uninterrupted {
		if r.Err != nil {
			t.Fatalf("uninterrupted chip %d failed: %v", r.Seed, r.Err)
		}
	}

	// Run again with checkpointing, harvesting each chip's *first*
	// checkpoint so the resumed run has real work left to do.
	var (
		mu    sync.Mutex
		blobs = map[uint64][]byte{}
		at    = map[uint64]int{}
	)
	ckpt := base
	ckpt.CheckpointEvery = 25
	ckpt.OnCheckpoint = func(seed uint64, ticks int, blob []byte) {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := blobs[seed]; !ok {
			blobs[seed] = blob
			at[seed] = ticks
		}
	}
	if _, err := eng.Run(context.Background(), ckpt, nil); err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	if len(blobs) != len(base.Seeds) {
		t.Fatalf("collected %d checkpoints, want %d", len(blobs), len(base.Seeds))
	}
	for seed, ticks := range at {
		if ticks != 25 {
			t.Errorf("seed %d first checkpoint at tick %d, want 25", seed, ticks)
		}
	}

	resume := base
	resume.Resume = blobs
	resumed, err := eng.Run(context.Background(), resume, nil)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for i := range uninterrupted {
		if resumed[i].Err != nil {
			t.Fatalf("resumed chip %d failed: %v", resumed[i].Seed, resumed[i].Err)
		}
		if !reflect.DeepEqual(uninterrupted[i], resumed[i]) {
			t.Errorf("chip %d: resumed result differs from uninterrupted:\n  uninterrupted: %+v\n  resumed:       %+v",
				uninterrupted[i].Seed, uninterrupted[i], resumed[i])
		}
	}

	// Summaries (the user-visible artifact) must match byte-for-byte.
	var a, b bytes.Buffer
	if err := Summarize(uninterrupted).Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := Summarize(resumed).Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("summaries differ:\nuninterrupted:\n%s\nresumed:\n%s", a.String(), b.String())
	}
}

// TestResumeRejectsBadBlob routes a corrupt resume blob and a blob for
// the wrong seed into per-chip errors without aborting the fleet.
func TestResumeRejectsBadBlob(t *testing.T) {
	job := Job{
		Seeds:   []uint64{501, 502},
		Seconds: 0.02,
		Resume: map[uint64][]byte{
			501: []byte("not a snapshot"),
		},
	}
	results, err := New(Config{Workers: 1}).Run(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("corrupt resume blob did not error")
	}
	if !strings.Contains(results[0].Err.Error(), "resume") {
		t.Fatalf("error %q does not mention resume", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("healthy sibling failed: %v", results[1].Err)
	}
}

// TestOnResultDelivery checks every completed chip is delivered through
// the OnResult hook exactly once.
func TestOnResultDelivery(t *testing.T) {
	orig := simulateFn
	simulateFn = func(ctx context.Context, job Job, seed uint64) ChipResult {
		return ChipResult{Seed: seed, NominalV: 0.8, Ticks: 1}
	}
	defer func() { simulateFn = orig }()

	job := Job{Seeds: []uint64{1, 2, 3, 4, 5}, Seconds: 0.01}
	var mu sync.Mutex
	got := map[uint64]int{}
	job.OnResult = func(res ChipResult) {
		mu.Lock()
		got[res.Seed]++
		mu.Unlock()
	}
	if _, err := New(Config{Workers: 3}).Run(context.Background(), job, nil); err != nil {
		t.Fatal(err)
	}
	for _, seed := range job.Seeds {
		if got[seed] != 1 {
			t.Errorf("seed %d delivered %d times, want 1", seed, got[seed])
		}
	}
}
