// Package stats provides the small statistical toolbox used by the
// simulator: summary statistics, histograms, and samplers for the
// binomial/Poisson event counts that the statistical workload model
// draws each control tick.
package stats

import (
	"math"
	"sort"

	"eccspec/internal/rng"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation (0 for fewer than two
// elements).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using nearest-
// rank on a sorted copy. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c[rank]
}

// SamplePoisson draws from a Poisson distribution with the given mean.
// It uses Knuth's method for small means and a rounded normal
// approximation for large ones.
func SamplePoisson(s *rng.Stream, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*s.Normal()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// SamplePoissonFast draws from a Poisson distribution with the given
// mean, producing the same value and consuming the same stream draws as
// SamplePoisson for every (state, mean) pair — the two are drop-in
// interchangeable mid-stream.
//
// The speedup is the n = 0 case, which dominates the per-line event
// sampling of the chip's hot tick path (per-line means are ~1e-3): the
// first uniform is drawn before exp(-mean) is computed, and when it
// already sits at or below 1 - mean - eps it must also sit at or below
// exp(-mean) (exp(-m) >= 1 - m, with eps covering the float rounding of
// the exp call), so the draw resolves to zero with one comparison and
// no exp. Only draws that land inside the mean-wide acceptance window
// pay for the exponential.
func SamplePoissonFast(s *rng.Stream, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		// Normal-approximation regime: delegate before any draw so the
		// stream position stays aligned with SamplePoisson.
		return SamplePoisson(s, mean)
	}
	u := s.Float64()
	// exp(-m) computed in float64 is at least exp(-m)(1 - 2^-52)
	// >= (1 - m) - 2^-52, so u <= 1 - m - 1e-15 implies u <= exp(-m)
	// under the exact comparison Knuth's loop would have made.
	if u <= 1-mean-1e-15 {
		return 0
	}
	// Resume Knuth's loop exactly where SamplePoisson would be after
	// its first multiplication (p = 1 * u).
	l := math.Exp(-mean)
	k := 0
	p := u
	for {
		if p <= l {
			return k
		}
		k++
		p *= s.Float64()
	}
}

// SampleBinomial draws from Binomial(n, p). It dispatches on the regime:
// exact Bernoulli loop for small n, Poisson approximation for rare
// events, normal approximation otherwise, and symmetry for p > 1/2.
func SampleBinomial(s *rng.Stream, n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - SampleBinomial(s, n, 1-p)
	case n <= 32:
		k := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				k++
			}
		}
		return k
	case float64(n)*p < 25:
		k := SamplePoisson(s, float64(n)*p)
		if k > n {
			return n
		}
		return k
	default:
		mean := float64(n) * p
		sd := math.Sqrt(mean * (1 - p))
		v := mean + sd*s.Normal()
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return int(v + 0.5)
	}
}

// Histogram counts values into uniform bins over [lo, hi); values outside
// the range clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
