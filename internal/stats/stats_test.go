package stats

import (
	"math"
	"testing"
	"testing/quick"

	"eccspec/internal/rng"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("min %v max %v", Min(xs), Max(xs))
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-slice results should be 0")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if math.Abs(StdDev(xs)-2) > 1e-12 {
		t.Fatalf("stddev %v", StdDev(xs))
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single element stddev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 0) != 1 {
		t.Fatalf("p0 %v", Percentile(xs, 0))
	}
	if Percentile(xs, 100) != 10 {
		t.Fatalf("p100 %v", Percentile(xs, 100))
	}
	if Percentile(xs, 50) != 5 {
		t.Fatalf("p50 %v", Percentile(xs, 50))
	}
	// Must not mutate the input.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Fatal("Percentile mutated input")
	}
}

func TestSamplePoissonMean(t *testing.T) {
	s := rng.NewStream(1)
	for _, mean := range []float64{0.5, 5, 80} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += SamplePoisson(s, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
	if SamplePoisson(s, 0) != 0 || SamplePoisson(s, -1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestSampleBinomialMoments(t *testing.T) {
	s := rng.NewStream(2)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},     // exact loop
		{1000, 0.001}, // Poisson regime
		{1000, 0.3},   // normal regime
		{1000, 0.9},   // symmetry + normal
	}
	for _, c := range cases {
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			k := SampleBinomial(s, c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", c.n, c.p, k)
			}
			sum += k
		}
		mean := float64(sum) / trials
		want := float64(c.n) * c.p
		tol := 0.05*want + 0.1
		if math.Abs(mean-want) > tol {
			t.Fatalf("Binomial(%d,%v) mean %v, want %v", c.n, c.p, mean, want)
		}
	}
}

func TestSampleBinomialEdges(t *testing.T) {
	s := rng.NewStream(3)
	if SampleBinomial(s, 0, 0.5) != 0 {
		t.Fatal("n=0")
	}
	if SampleBinomial(s, 10, 0) != 0 {
		t.Fatal("p=0")
	}
	if SampleBinomial(s, 10, 1) != 10 {
		t.Fatal("p=1")
	}
}

func TestQuickBinomialInRange(t *testing.T) {
	s := rng.NewStream(4)
	f := func(n uint16, praw uint16) bool {
		n2 := int(n % 2000)
		p := float64(praw) / 65535
		k := SampleBinomial(s, n2, p)
		return k >= 0 && k <= n2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(9.5)
	h.Add(-3) // clamps to first bin
	h.Add(42) // clamps to last bin
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("total %d", h.Total())
	}
	if h.BinCenter(0) != 0.5 {
		t.Fatalf("bin center %v", h.BinCenter(0))
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func BenchmarkSampleBinomialNormalRegime(b *testing.B) {
	s := rng.NewStream(5)
	for i := 0; i < b.N; i++ {
		SampleBinomial(s, 100000, 0.01)
	}
}

// TestSamplePoissonFastEquivalence checks the drop-in contract: for any
// (stream state, mean), SamplePoissonFast must return the same value AND
// leave the stream at the same position as SamplePoisson, so the two can
// be interchanged mid-stream without perturbing a reproducible run.
func TestSamplePoissonFastEquivalence(t *testing.T) {
	means := []float64{0, -1, 1e-12, 1e-6, 1e-3, 0.05, 0.3, 1, 3.7, 20, 49.9, 50, 50.5, 400}
	for _, mean := range means {
		for seed := uint64(1); seed <= 300; seed++ {
			a, b := rng.NewStream(seed), rng.NewStream(seed)
			// Offset the starting position so the comparison also covers
			// mid-stream states, not just fresh ones.
			for i := uint64(0); i < seed%5; i++ {
				a.Float64()
				b.Float64()
			}
			na := SamplePoisson(a, mean)
			nb := SamplePoissonFast(b, mean)
			if na != nb {
				t.Fatalf("mean %g seed %d: SamplePoisson %d, SamplePoissonFast %d", mean, seed, na, nb)
			}
			if a.State() != b.State() {
				t.Fatalf("mean %g seed %d: stream states diverge (%#x vs %#x)", mean, seed, a.State(), b.State())
			}
		}
	}
}
