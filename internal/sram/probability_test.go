package sram

import (
	"testing"
)

func TestUncorrectableBelowSingleProbability(t *testing.T) {
	a := testArray(51)
	for _, v := range []float64{0.75, 0.70, 0.65, 0.60, 0.55} {
		pu := a.UncorrectableProbability(0, 0, v)
		pf := a.FlipProbability(0, 0, v)
		if pu < 0 || pu > 1 {
			t.Fatalf("pu %v out of range at %v", pu, v)
		}
		if pu > pf+1e-12 {
			t.Fatalf("pu %v above any-flip probability %v at %v", pu, pf, v)
		}
	}
}

func TestSingleErrorProbabilityDecomposition(t *testing.T) {
	a := testArray(53)
	for _, v := range []float64{0.72, 0.66, 0.60} {
		ps := a.SingleErrorProbability(1, 1, v)
		pu := a.UncorrectableProbability(1, 1, v)
		pf := a.FlipProbability(1, 1, v)
		if diff := ps + pu - pf; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ps+pu != pf at %v: %v + %v vs %v", v, ps, pu, pf)
		}
		if ps < 0 {
			t.Fatalf("negative single-error probability at %v", v)
		}
	}
}

func TestUncorrectableNegligibleAtOnset(t *testing.T) {
	// At the line's error-onset voltage (weakest cell's Vcrit), single
	// errors flip ~50% of the time while double errors must remain
	// rare — that separation is the speculation safety margin.
	a := testArray(57)
	p := a.LineProfile(0, 0)
	ps := a.SingleErrorProbability(0, 0, p.Vmax())
	pu := a.UncorrectableProbability(0, 0, p.Vmax())
	if ps < 0.2 {
		t.Fatalf("single-error probability %v at onset, want ~0.5", ps)
	}
	if pu > ps/10 {
		t.Fatalf("uncorrectable probability %v not well below single %v at onset", pu, ps)
	}
}

func TestUncorrectableMonotone(t *testing.T) {
	a := testArray(59)
	prev := 1.1
	for v := 0.40; v <= 0.85; v += 0.005 {
		pu := a.UncorrectableProbability(4, 2, v)
		if pu > prev+1e-12 {
			t.Fatalf("uncorrectable probability not monotone at %v", v)
		}
		prev = pu
	}
}
