package sram

import "eccspec/internal/variation"

// SingleErrorProbability returns the probability that one read of the
// line at voltage v produces at least one correctable (single-bit-per-
// word) error and no uncorrectable one. For the operating regimes the
// speculation system targets this is dominated by the line's weakest
// cell.
func (a *Array) SingleErrorProbability(set, way int, v float64) float64 {
	ps, _ := a.ErrorProbabilities(set, way, v)
	return ps
}

// UncorrectableProbability returns the probability that one read of the
// line at voltage v flips two or more bits within a single codeword — a
// detected-uncorrectable, fatal error. With two profiled cells per word
// this is exact to the profile's resolution.
func (a *Array) UncorrectableProbability(set, way int, v float64) float64 {
	_, pu := a.ErrorProbabilities(set, way, v)
	return pu
}

// ErrorProbabilities returns, for one read of the line at voltage v, the
// probability of a correctable event (at least one flip, but no word
// with two) and of an uncorrectable event (some word with two flips).
// One pass, no allocation — this is the hot call of the per-tick
// statistical workload model.
func (a *Array) ErrorProbabilities(set, way int, v float64) (pSingle, pUncorrectable float64) {
	p := a.LineProfile(set, way)
	vEff := v - a.Model.TempShift(a.tempC)
	var first, second [WordsPerLine]float64
	anyClean := 1.0
	for _, b := range p.Bits {
		pf := variation.FlipProbability(b.Vcrit, b.Width, vEff)
		if pf == 0 {
			continue
		}
		anyClean *= 1 - pf
		w := b.Word()
		if first[w] == 0 {
			first[w] = pf
		} else if second[w] == 0 {
			second[w] = pf
		}
	}
	uncClean := 1.0
	for w := 0; w < WordsPerLine; w++ {
		if second[w] > 0 {
			uncClean *= 1 - first[w]*second[w]
		}
	}
	pAny := 1 - anyClean
	pUncorrectable = 1 - uncClean
	return pAny - pUncorrectable, pUncorrectable
}
