// Package sram models the fault behaviour of on-chip SRAM arrays under
// low-voltage operation.
//
// An Array represents one physical structure (e.g. core 3's L2 data
// cache). Each 64-byte cache line is stored as eight SECDED codewords of
// 72 bits, so a line spans 576 bit cells. Each cell has a fixed critical
// voltage from the process-variation model (internal/variation); reading
// the line at an effective voltage near or below a cell's critical
// voltage flips that cell's stored bit with a probability that ramps up
// as the voltage deficit grows.
//
// Faults in this model are access faults — timing failures or read
// disturbs — not retention failures: a line that is merely *holding* data
// at low voltage does not decay, matching the paper's §V-E experiment
// (write high, dwell low, read high, observe zero errors).
//
// Enumerating 576 cells per read would be wasteful: at operating voltages
// all but the weakest few cells have flip probabilities that are zero to
// double precision. Each line therefore carries a lazily-computed profile
// of its weakest cells — the top two per codeword — which exactly
// captures both single-bit (correctable) behaviour, governed by the
// line's weakest cell, and double-bit (uncorrectable) behaviour, governed
// by the strongest *pair* within one codeword.
package sram

import (
	"sort"

	"eccspec/internal/ecc"
	"eccspec/internal/rng"
	"eccspec/internal/variation"
)

// LineBytes is the cache line size in bytes.
const LineBytes = 64

// WordsPerLine is the number of SECDED codewords per line.
const WordsPerLine = LineBytes / 8

// BitsPerLine is the number of stored bit cells per line (data + check).
const BitsPerLine = WordsPerLine * ecc.CodewordBits

// weakBitsPerWord is how many of each codeword's weakest cells the line
// profile retains. Two per word is exact for single- and double-bit
// statistics; triple-bit events at operating voltages are negligible
// because the third-weakest cell of a word sits far down the tail.
const weakBitsPerWord = 2

// WeakBit describes one vulnerable cell within a line.
type WeakBit struct {
	// Pos is the bit position within the line, 0..575. Word index is
	// Pos / 72; position within the codeword is Pos % 72.
	Pos int
	// Vcrit is the cell's critical voltage (aging included), in volts.
	Vcrit float64
	// Width is the cell's flip-probability sigmoid width, in volts.
	Width float64
}

// Word returns the codeword index (0..7) containing the bit.
func (b WeakBit) Word() int { return b.Pos / ecc.CodewordBits }

// CodewordPos returns the bit's position within its codeword (0..71).
func (b WeakBit) CodewordPos() int { return b.Pos % ecc.CodewordBits }

// Profile is a line's cached weak-cell summary, ordered by descending
// Vcrit (weakest cell first).
type Profile struct {
	Bits []WeakBit
}

// Vmax returns the line's highest critical voltage — the voltage at which
// this line first begins to produce errors. Returns 0 for an empty
// profile.
func (p *Profile) Vmax() float64 {
	if len(p.Bits) == 0 {
		return 0
	}
	return p.Bits[0].Vcrit
}

// PairVcrit returns, over all codewords of the line, the best double-flip
// voltage: the maximum over words of the *second*-weakest cell's Vcrit.
// Reads at or below this voltage can plausibly flip two bits in one
// codeword, producing an uncorrectable error. Returns 0 if no word has
// two profiled cells.
func (p *Profile) PairVcrit() float64 {
	second := make(map[int][]float64, WordsPerLine)
	for _, b := range p.Bits {
		second[b.Word()] = append(second[b.Word()], b.Vcrit)
	}
	best := 0.0
	for _, vs := range second {
		if len(vs) >= 2 {
			sort.Sort(sort.Reverse(sort.Float64Slice(vs)))
			if vs[1] > best {
				best = vs[1]
			}
		}
	}
	return best
}

// Array is one SRAM structure: a (sets x ways) grid of cache lines with a
// fixed weak-cell map derived from the chip's variation model.
type Array struct {
	Model *variation.Model
	Core  int
	Kind  variation.Kind
	Sets  int
	Ways  int

	// tempC is the current operating temperature in Celsius. The shift
	// it induces is uniform across cells, so it is applied at sample
	// time rather than baked into profiles.
	tempC float64
	// ageHours is the accumulated operating age; changing it rebuilds
	// profiles lazily because aging is per-cell.
	ageHours float64

	profiles map[int]*Profile
	// lastKey/lastProf short-circuit the profile map lookup for the
	// most recently profiled line — the monitor reads its watched line
	// dozens of times per tick. Cleared by SetAge with the map.
	lastKey  int
	lastProf *Profile
	stream   *rng.Stream

	// flips is SampleFlips' scratch, reused so steady-state fault
	// sampling allocates nothing.
	flips []int

	// memo caches the flip probabilities of the most recently sampled
	// line at one operating point; see SampleFlips.
	memo flipMemo
}

// flipMemo holds the per-bit flip probabilities of one line at one
// (voltage, temperature) operating point. The monitor reads its watched
// line dozens of times per tick at a fixed point and calibration reads
// each line several times per step, so the erf evaluations behind the
// probabilities are recomputed only when the line, the voltage, or the
// temperature actually changes. The profile pointer doubles as the age
// invalidation: SetAge rebuilds the profile map, so a stale entry can
// never match.
type flipMemo struct {
	profile *Profile
	v       float64
	tempC   float64
	pfs     []float64 // flip probability per active (pf > 0) bit
	pos     []int     // bit position per active bit
}

// NewArray constructs an SRAM array backed by the given variation model.
func NewArray(m *variation.Model, core int, kind variation.Kind, sets, ways int) *Array {
	if sets <= 0 || ways <= 0 {
		panic("sram: non-positive geometry")
	}
	return &Array{
		Model:    m,
		Core:     core,
		Kind:     kind,
		Sets:     sets,
		Ways:     ways,
		tempC:    40,
		profiles: make(map[int]*Profile),
		stream:   rng.NewStream(m.Seed, 0x5a17, uint64(core), uint64(kind)),
	}
}

// Lines returns the total number of lines in the array.
func (a *Array) Lines() int { return a.Sets * a.Ways }

// SetTemperature sets the operating temperature in Celsius.
func (a *Array) SetTemperature(c float64) { a.tempC = c }

// Temperature returns the current operating temperature in Celsius.
func (a *Array) Temperature() float64 { return a.tempC }

// SetAge sets the array's operating age in hours and invalidates cached
// profiles, because aging drift is per-cell.
func (a *Array) SetAge(hours float64) {
	if hours != a.ageHours {
		a.ageHours = hours
		a.profiles = make(map[int]*Profile)
		a.lastProf = nil
	}
}

// Age returns the array's operating age in hours.
func (a *Array) Age() float64 { return a.ageHours }

// StreamState returns the fault-sampling stream's position; capturing it
// lets a restored array reproduce the exact flip sequence an
// uninterrupted run would have seen.
func (a *Array) StreamState() uint64 { return a.stream.State() }

// SetStreamState repositions the fault-sampling stream (checkpoint
// restore).
func (a *Array) SetStreamState(state uint64) { a.stream.SetState(state) }

// lineKey maps (set, way) to the profile cache key.
func (a *Array) lineKey(set, way int) int { return set*a.Ways + way }

// LineProfile returns the weak-cell profile of a line, computing and
// caching it on first use. The scan is the expensive step (576 Gaussian
// draws), so sweeping a whole L2 is O(millions) of draws but each line is
// only ever scanned once per age epoch.
func (a *Array) LineProfile(set, way int) *Profile {
	a.checkCoords(set, way)
	key := a.lineKey(set, way)
	if a.lastProf != nil && a.lastKey == key {
		return a.lastProf
	}
	p, ok := a.profiles[key]
	if !ok {
		p = a.scanLine(set, way)
		a.profiles[key] = p
	}
	a.lastKey, a.lastProf = key, p
	return p
}

// scanLine evaluates every cell of a line and keeps the top
// weakBitsPerWord cells of each codeword. The systematic offset is
// hoisted out of the loop and sigmoid widths are only drawn for the
// selected cells, so the scan costs one hashed draw per cell.
func (a *Array) scanLine(set, way int) *Profile {
	base := a.Model.P.Kinds[a.Kind].Mu + a.Model.Systematic(a.Core, a.Kind)
	bitsOut := make([]WeakBit, 0, WordsPerLine*weakBitsPerWord)
	for w := 0; w < WordsPerLine; w++ {
		var top [weakBitsPerWord]WeakBit // descending by Vcrit
		n := 0
		for cw := 0; cw < ecc.CodewordBits; cw++ {
			pos := w*ecc.CodewordBits + cw
			v := base + a.Model.CellRandom(a.Core, a.Kind, set, way, pos)
			if a.ageHours > 0 {
				v += a.Model.AgingShift(a.Core, a.Kind, set, way, pos, a.ageHours)
			}
			if n == weakBitsPerWord && v <= top[n-1].Vcrit {
				continue
			}
			wb := WeakBit{Pos: pos, Vcrit: v}
			for i := 0; i < weakBitsPerWord; i++ {
				if i >= n || wb.Vcrit > top[i].Vcrit {
					copy(top[i+1:], top[i:weakBitsPerWord-1])
					top[i] = wb
					if n < weakBitsPerWord {
						n++
					}
					break
				}
			}
		}
		bitsOut = append(bitsOut, top[:n]...)
	}
	for i := range bitsOut {
		bitsOut[i].Width = a.Model.CellWidth(a.Core, a.Kind, set, way, bitsOut[i].Pos)
	}
	sort.Sort(byVcritDesc(bitsOut))
	return &Profile{Bits: bitsOut}
}

// byVcritDesc orders weak bits by descending critical voltage. A typed
// sorter instead of a sort.Slice closure: scanLine runs once per line
// per age epoch, but a whole-array characterization sweep scans
// millions of cells and the closure-based swap was measurable there.
type byVcritDesc []WeakBit

func (s byVcritDesc) Len() int           { return len(s) }
func (s byVcritDesc) Less(i, j int) bool { return s[i].Vcrit > s[j].Vcrit }
func (s byVcritDesc) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// SampleFlips simulates one read of the line at effective voltage v and
// returns the positions (0..575) of the bits that flip on this access.
// The returned slice is empty when nothing flips — the overwhelmingly
// common case at safe voltages — and is scratch owned by the array,
// overwritten by the next SampleFlips; callers that need the positions
// beyond the current access must copy them.
func (a *Array) SampleFlips(set, way int, v float64) []int {
	p := a.LineProfile(set, way)
	m := &a.memo
	if m.profile != p || m.v != v || m.tempC != a.tempC {
		// Rebuild the active-bit table for this (line, operating point).
		// Cells with pf == 0 consume no stream draws in the sampling
		// loop below, so caching only the active cells replays the
		// exact draw sequence an unmemoized scan would produce.
		m.profile, m.v, m.tempC = p, v, a.tempC
		m.pfs, m.pos = m.pfs[:0], m.pos[:0]
		vEff := v - a.Model.TempShift(a.tempC)
		for _, b := range p.Bits {
			pf := variation.FlipProbability(b.Vcrit, b.Width, vEff)
			if pf <= 0 {
				// Profile is sorted by descending Vcrit: once a cell
				// is certainly safe, every later cell is safer still
				// only if widths were equal; widths differ, so keep
				// scanning while the deficit could matter. A cheap
				// cutoff: cells more than 10 standard widths above v
				// cannot flip.
				if b.Vcrit < vEff-10*a.Model.P.WidthMax {
					break
				}
				continue
			}
			m.pfs = append(m.pfs, pf)
			m.pos = append(m.pos, b.Pos)
		}
	}
	flips := a.flips[:0]
	for i, pf := range m.pfs {
		if a.stream.Bernoulli(pf) {
			flips = append(flips, m.pos[i])
		}
	}
	a.flips = flips
	return flips
}

// FlipProbability returns the probability that a specific profiled line
// produces at least one flipped bit on a single read at voltage v. Used
// for analytic characterization (Fig. 13-style curves) without sampling.
func (a *Array) FlipProbability(set, way int, v float64) float64 {
	p := a.LineProfile(set, way)
	vEff := v - a.Model.TempShift(a.tempC)
	clean := 1.0
	for _, b := range p.Bits {
		clean *= 1 - variation.FlipProbability(b.Vcrit, b.Width, vEff)
	}
	return 1 - clean
}

// WeakestLine scans the whole array and returns the coordinates and
// profile of the line with the highest Vmax — the line that will report
// correctable errors at the highest supply voltage. This is what the
// calibration cache sweep discovers empirically; tests use it as ground
// truth.
func (a *Array) WeakestLine() (set, way int, p *Profile) {
	best := -1.0
	for s := 0; s < a.Sets; s++ {
		for w := 0; w < a.Ways; w++ {
			lp := a.LineProfile(s, w)
			if lp.Vmax() > best {
				best = lp.Vmax()
				set, way, p = s, w, lp
			}
		}
	}
	return set, way, p
}

// checkCoords panics on out-of-range line coordinates.
func (a *Array) checkCoords(set, way int) {
	if set < 0 || set >= a.Sets || way < 0 || way >= a.Ways {
		panic("sram: line coordinates out of range")
	}
}
