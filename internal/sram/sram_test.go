package sram

import (
	"math"
	"testing"

	"eccspec/internal/ecc"
	"eccspec/internal/variation"
)

func testArray(seed uint64) *Array {
	m := variation.New(seed, variation.LowVoltage())
	return NewArray(m, 0, variation.KindL2D, 64, 8)
}

func TestNewArrayPanicsOnBadGeometry(t *testing.T) {
	m := variation.New(1, variation.LowVoltage())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArray(m, 0, variation.KindL2D, 0, 8)
}

func TestLineProfileShape(t *testing.T) {
	a := testArray(42)
	p := a.LineProfile(3, 2)
	if len(p.Bits) != WordsPerLine*weakBitsPerWord {
		t.Fatalf("profile has %d bits, want %d", len(p.Bits), WordsPerLine*weakBitsPerWord)
	}
	// Sorted descending by Vcrit.
	for i := 1; i < len(p.Bits); i++ {
		if p.Bits[i].Vcrit > p.Bits[i-1].Vcrit {
			t.Fatal("profile not sorted by descending Vcrit")
		}
	}
	// Exactly two entries per word.
	perWord := map[int]int{}
	for _, b := range p.Bits {
		perWord[b.Word()]++
		if b.Pos < 0 || b.Pos >= BitsPerLine {
			t.Fatalf("bit position %d out of range", b.Pos)
		}
		if b.CodewordPos() < 0 || b.CodewordPos() >= ecc.CodewordBits {
			t.Fatalf("codeword position %d out of range", b.CodewordPos())
		}
	}
	for w, n := range perWord {
		if n != weakBitsPerWord {
			t.Fatalf("word %d has %d profiled bits", w, n)
		}
	}
}

func TestLineProfileCached(t *testing.T) {
	a := testArray(42)
	p1 := a.LineProfile(1, 1)
	p2 := a.LineProfile(1, 1)
	if p1 != p2 {
		t.Fatal("profile not cached")
	}
}

func TestLineProfileDeterministic(t *testing.T) {
	a1 := testArray(7)
	a2 := testArray(7)
	p1 := a1.LineProfile(5, 3)
	p2 := a2.LineProfile(5, 3)
	if len(p1.Bits) != len(p2.Bits) {
		t.Fatal("profiles differ in size")
	}
	for i := range p1.Bits {
		if p1.Bits[i] != p2.Bits[i] {
			t.Fatalf("profiles differ at %d: %+v vs %+v", i, p1.Bits[i], p2.Bits[i])
		}
	}
}

func TestProfileVmaxIsTop(t *testing.T) {
	a := testArray(11)
	p := a.LineProfile(0, 0)
	if p.Vmax() != p.Bits[0].Vcrit {
		t.Fatal("Vmax is not the weakest cell's Vcrit")
	}
	empty := &Profile{}
	if empty.Vmax() != 0 {
		t.Fatal("empty profile Vmax should be 0")
	}
}

func TestPairVcritBelowVmax(t *testing.T) {
	a := testArray(13)
	p := a.LineProfile(2, 4)
	pv := p.PairVcrit()
	if pv <= 0 {
		t.Fatal("pair Vcrit should exist with 2 bits/word profiles")
	}
	if pv > p.Vmax() {
		t.Fatalf("pair Vcrit %v above Vmax %v", pv, p.Vmax())
	}
	if (&Profile{}).PairVcrit() != 0 {
		t.Fatal("empty profile PairVcrit should be 0")
	}
}

func TestSampleFlipsCleanAtHighVoltage(t *testing.T) {
	a := testArray(17)
	for i := 0; i < 1000; i++ {
		if f := a.SampleFlips(i%64, i%8, 0.95); f != nil {
			t.Fatalf("flips at 950mV (far above any Vcrit): %v", f)
		}
	}
}

func TestSampleFlipsCertainAtVeryLowVoltage(t *testing.T) {
	a := testArray(17)
	f := a.SampleFlips(0, 0, 0.30)
	if len(f) == 0 {
		t.Fatal("no flips at 300mV, far below every Vcrit")
	}
}

func TestSampleFlipsRateMatchesSigmoid(t *testing.T) {
	a := testArray(19)
	p := a.LineProfile(0, 0)
	weak := p.Bits[0]
	// Probe right at the weakest cell's Vcrit: it alone should flip
	// ~50% of the time (other cells are far weaker contributors as long
	// as the gap to the second cell is large).
	gap := weak.Vcrit - p.Bits[1].Vcrit
	if gap < 5*weak.Width {
		t.Skip("weakest two cells too close for isolated-rate check on this seed")
	}
	const n = 4000
	hits := 0
	for i := 0; i < n; i++ {
		if len(a.SampleFlips(0, 0, weak.Vcrit)) > 0 {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("flip rate at Vcrit = %v, want ~0.5", rate)
	}
}

func TestFlipProbabilityMonotone(t *testing.T) {
	a := testArray(23)
	prev := 1.1
	for v := 0.40; v <= 0.90; v += 0.005 {
		p := a.FlipProbability(7, 3, v)
		if p > prev+1e-12 {
			t.Fatalf("line flip probability not monotone decreasing at %v", v)
		}
		prev = p
	}
}

func TestFlipProbabilityRampWidth(t *testing.T) {
	// Fig. 13: the 0->100% ramp of a line's error probability spans
	// roughly 20-50 mV. Our per-cell widths (2-6 mV) with logistic tails
	// put the 1%..99% ramp in that ballpark.
	a := testArray(29)
	var v1, v99 float64
	for v := 0.90; v >= 0.30; v -= 0.0005 {
		p := a.FlipProbability(0, 0, v)
		if v1 == 0 && p >= 0.01 {
			v1 = v
		}
		if v99 == 0 && p >= 0.99 {
			v99 = v
			break
		}
	}
	ramp := v1 - v99
	if ramp < 0.005 || ramp > 0.120 {
		t.Fatalf("ramp width %v V outside plausible range", ramp)
	}
}

func TestWeakestLineIsGlobalMax(t *testing.T) {
	a := testArray(31)
	set, way, p := a.WeakestLine()
	for s := 0; s < a.Sets; s++ {
		for w := 0; w < a.Ways; w++ {
			if a.LineProfile(s, w).Vmax() > p.Vmax() {
				t.Fatalf("line (%d,%d) weaker than reported weakest (%d,%d)", s, w, set, way)
			}
		}
	}
}

func TestWeakestLineDiffersAcrossCores(t *testing.T) {
	// Paper §II-D: weak line addresses vary core to core.
	m := variation.New(101, variation.LowVoltage())
	coords := map[[2]int]bool{}
	for core := 0; core < 8; core++ {
		a := NewArray(m, core, variation.KindL2D, 64, 8)
		s, w, _ := a.WeakestLine()
		coords[[2]int{s, w}] = true
	}
	if len(coords) < 4 {
		t.Fatalf("weakest lines suspiciously clustered: %d distinct of 8", len(coords))
	}
}

func TestAgingInvalidatesProfiles(t *testing.T) {
	a := testArray(37)
	before := a.LineProfile(1, 1).Vmax()
	a.SetAge(20000)
	after := a.LineProfile(1, 1).Vmax()
	if after < before {
		t.Fatalf("aging lowered Vmax: %v -> %v", before, after)
	}
	if after == before {
		t.Fatalf("aging left Vmax unchanged: %v", after)
	}
	if a.Age() != 20000 {
		t.Fatal("Age not recorded")
	}
}

func TestTemperatureShiftsEffectiveVoltage(t *testing.T) {
	a := testArray(41)
	probeV := a.LineProfile(0, 0).Vmax() // mid-ramp, where shifts are visible
	p40 := a.FlipProbability(0, 0, probeV)
	a.SetTemperature(90) // far beyond the paper's 20C excursion
	p90 := a.FlipProbability(0, 0, probeV)
	if p90 <= p40 {
		t.Fatalf("hotter array should fail more: %v vs %v", p90, p40)
	}
	if a.Temperature() != 90 {
		t.Fatal("Temperature not recorded")
	}
}

func TestTemperature20CNoMeasurableEffect(t *testing.T) {
	// Paper §III-D: +/-20C did not measurably change error behaviour.
	// Verify the error-onset voltage moves by less than one 5 mV step.
	a := testArray(43)
	onset := func() float64 {
		for v := 0.90; v >= 0.30; v -= 0.001 {
			if a.FlipProbability(0, 0, v) >= 0.5 {
				return v
			}
		}
		return 0
	}
	v40 := onset()
	a.SetTemperature(60)
	v60 := onset()
	if math.Abs(v60-v40) >= 0.005 {
		t.Fatalf("onset moved %v V over 20C, exceeds one control step", v60-v40)
	}
}

func TestSampleFlipsPanicsOutOfRange(t *testing.T) {
	a := testArray(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.SampleFlips(64, 0, 0.7)
}

func TestLinesCount(t *testing.T) {
	a := testArray(1)
	if a.Lines() != 64*8 {
		t.Fatalf("Lines() = %d", a.Lines())
	}
}

func BenchmarkLineProfileScan(b *testing.B) {
	m := variation.New(42, variation.LowVoltage())
	for i := 0; i < b.N; i++ {
		a := NewArray(m, 0, variation.KindL2D, 64, 8)
		a.LineProfile(i%64, i%8)
	}
}

func BenchmarkSampleFlips(b *testing.B) {
	a := testArray(42)
	a.LineProfile(0, 0) // warm the profile cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SampleFlips(0, 0, 0.66)
	}
}
