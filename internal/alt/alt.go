// Package alt implements the margin-reduction techniques the paper
// positions itself against in §VI, as runnable controllers over the same
// simulated chip:
//
//   - Razor (Ernst et al.): shadow latches detect timing faults in flight
//     and replay the pipeline, so voltage can drop through the normal
//     crash floor down to a metastability wall — at a per-fault replay
//     cost and a hardware/design cost the paper's ECC scheme avoids.
//   - Critical path monitors (Lefurgy et al., POWER7): replica delay
//     paths sense the *logic* margin directly. They see nothing of SRAM
//     weakness, so the cache side must keep a designer-chosen static
//     guardband — which is exactly the conservatism ECC feedback removes.
//
// The compare experiment runs these alongside the paper's hardware
// monitors and firmware baseline on identical chips.
package alt

import (
	"eccspec/internal/chip"
	"eccspec/internal/rng"
)

// RazorConfig tunes the Razor controller.
type RazorConfig struct {
	// ReplayCycles is the pipeline cost of one detected fault.
	ReplayCycles float64
	// TargetOverhead is the replay-overhead fraction the controller
	// regulates toward (classic Razor operates around ~0.1-1%).
	TargetOverhead float64
	// DecisionTicks is how many ticks of replay data feed one voltage
	// decision.
	DecisionTicks int
	// WindowV is the metastability window below the logic floor; must
	// match chip.Params.RazorWindowV.
	WindowV float64
}

// DefaultRazorConfig returns representative constants.
func DefaultRazorConfig() RazorConfig {
	return RazorConfig{
		ReplayCycles:   12,
		TargetOverhead: 0.005,
		DecisionTicks:  20,
		WindowV:        0.025,
	}
}

// Razor drives per-domain voltage from observed replay rates.
type Razor struct {
	Chip *chip.Chip
	Cfg  RazorConfig

	replays []float64 // accumulated replays per domain since decision
	ticks   int
}

// NewRazor attaches a Razor controller. The chip must have been built
// with Params.RazorWindowV = cfg.WindowV.
func NewRazor(c *chip.Chip, cfg RazorConfig) *Razor {
	if c.P.RazorWindowV != cfg.WindowV {
		panic("alt: chip not configured for this Razor window")
	}
	return &Razor{Chip: c, Cfg: cfg, replays: make([]float64, len(c.Domains))}
}

// Adapt consumes one tick report: charge replay overhead to each core
// and, every DecisionTicks, steer each domain toward the target replay
// overhead.
func (r *Razor) Adapt(rep chip.TickReport) {
	f := r.Chip.P.Point.FrequencyHz
	dt := r.Chip.P.TickSeconds
	cyclesPerTick := f * dt
	for _, d := range r.Chip.Domains {
		for _, id := range d.CoreIDs {
			cr := rep.Cores[id]
			ov := cr.ReplayRate * r.Cfg.ReplayCycles / cyclesPerTick
			if ov > 0.95 {
				ov = 0.95
			}
			r.Chip.Cores[id].SetOverheadFraction(ov)
			r.replays[d.ID] += cr.ReplayRate
		}
	}
	r.ticks++
	if r.ticks < r.Cfg.DecisionTicks {
		return
	}
	window := float64(r.Cfg.DecisionTicks) * cyclesPerTick * float64(r.Chip.P.CoresPerRail)
	for _, d := range r.Chip.Domains {
		overhead := r.replays[d.ID] * r.Cfg.ReplayCycles / window
		if overhead > r.Cfg.TargetOverhead {
			d.Rail.StepUp(1)
		} else if overhead < r.Cfg.TargetOverhead/4 {
			d.Rail.StepDown(1)
		}
		r.replays[d.ID] = 0
	}
	r.ticks = 0
}

// CPMConfig tunes the critical-path-monitor controller.
type CPMConfig struct {
	// GuardV is the logic margin the controller maintains above the
	// sensed critical-path failure point.
	GuardV float64
	// SensorNoiseV is the 1-sigma error of the replica path sensor.
	SensorNoiseV float64
	// CacheGuardbandV is the static margin below nominal that the
	// designers reserve for the structures the CPM cannot see (the
	// SRAM arrays). The rail never goes below nominal minus this.
	CacheGuardbandV float64
	// DecisionTicks spaces voltage decisions.
	DecisionTicks int
}

// DefaultCPMConfig returns representative constants: a 25 mV logic
// guard and a 100 mV static cache guardband (one conventional
// guardband, §I).
func DefaultCPMConfig() CPMConfig {
	return CPMConfig{
		GuardV:          0.025,
		SensorNoiseV:    0.002,
		CacheGuardbandV: 0.100,
		DecisionTicks:   20,
	}
}

// CPM drives per-domain voltage from replica critical-path sensors.
type CPM struct {
	Chip *chip.Chip
	Cfg  CPMConfig

	noise *rng.Stream
	ticks int
}

// NewCPM attaches a critical-path-monitor controller.
func NewCPM(c *chip.Chip, cfg CPMConfig) *CPM {
	return &CPM{Chip: c, Cfg: cfg, noise: rng.NewStream(c.P.Seed, 0xC9A1)}
}

// Floor returns the lowest setpoint the CPM configuration permits.
func (m *CPM) Floor() float64 {
	return m.Chip.P.Point.NominalVdd - m.Cfg.CacheGuardbandV
}

// Adapt consumes one tick report and, every DecisionTicks, adjusts each
// domain: hold the sensed logic margin at GuardV, but never below the
// static cache guardband floor.
func (m *CPM) Adapt(rep chip.TickReport) {
	m.ticks++
	if m.ticks < m.Cfg.DecisionTicks {
		return
	}
	m.ticks = 0
	for _, d := range m.Chip.Domains {
		// The domain's binding constraint is its slowest core's path.
		worst := 0.0
		for _, id := range d.CoreIDs {
			co := m.Chip.Cores[id]
			sensed := co.LogicVmin() + m.Cfg.SensorNoiseV*m.noise.Normal()
			if sensed > worst {
				worst = sensed
			}
		}
		margin := d.LastEffective() - worst
		floor := m.Floor()
		switch {
		case margin < m.Cfg.GuardV:
			d.Rail.StepUp(1)
		case margin > m.Cfg.GuardV+d.Rail.Params().StepV &&
			d.Rail.Target() > floor+1e-9:
			d.Rail.StepDown(1)
		}
	}
}
