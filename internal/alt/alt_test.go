package alt

import (
	"testing"

	"eccspec/internal/chip"
	"eccspec/internal/workload"
)

func razorChip(seed uint64, cfg RazorConfig) *chip.Chip {
	p := chip.DefaultParams(seed, true, false)
	p.RazorWindowV = cfg.WindowV
	c := chip.New(p)
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), seed)
	}
	return c
}

func TestNewRazorPanicsOnMismatchedWindow(t *testing.T) {
	c := chip.New(chip.DefaultParams(1, true, false)) // window 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRazor(c, DefaultRazorConfig())
}

func TestRazorSurvivesBelowLogicFloor(t *testing.T) {
	cfg := DefaultRazorConfig()
	c := razorChip(2, cfg)
	co := c.Cores[0]
	// Park the idle core just below the normal crash floor but above
	// the metastability wall (stress-load droop would eat the whole
	// window): Razor must replay, not crash.
	co.SetWorkload(workload.Idle(), 2)
	c.Cores[1].SetWorkload(workload.Idle(), 2)
	v := co.LogicVmin() - 0.008
	c.DomainOf(0).Rail.SetTarget(v)
	sawReplays := false
	for i := 0; i < 100; i++ {
		rep := c.Step()
		if rep.Cores[0].Fatal {
			t.Fatalf("core crashed at %v despite Razor window", v)
		}
		if rep.Cores[0].ReplayRate > 0 {
			sawReplays = true
		}
	}
	if !sawReplays {
		t.Fatal("no replays below the logic floor")
	}
}

func TestRazorStillCrashesBelowMetastabilityWall(t *testing.T) {
	cfg := DefaultRazorConfig()
	c := razorChip(3, cfg)
	co := c.Cores[0]
	c.DomainOf(0).Rail.SetTarget(co.LogicVmin() - cfg.WindowV - 0.02)
	rep := c.Step()
	if !rep.Cores[0].Fatal {
		t.Fatal("core survived below the metastability wall")
	}
}

func TestRazorConvergesBelowPlainCrashFloor(t *testing.T) {
	cfg := DefaultRazorConfig()
	c := razorChip(4, cfg)
	rz := NewRazor(c, cfg)
	for i := 0; i < 2500; i++ {
		rz.Adapt(c.Step())
	}
	for _, co := range c.Cores {
		if !co.Alive() {
			t.Fatalf("core %d died under Razor control", co.ID)
		}
	}
	// Razor's descent is bounded by replay overhead, not by the crash
	// floor, so it digs well past where the ECC scheme settles: expect
	// an average reduction beyond ~18% of nominal.
	sum := 0.0
	for _, d := range c.Domains {
		sum += 1 - d.Rail.Target()/c.P.Point.NominalVdd
	}
	if avg := sum / float64(len(c.Domains)); avg < 0.18 {
		t.Fatalf("Razor average reduction %.3f; detect-and-replay headroom unused", avg)
	}
}

func TestRazorChargesReplayOverhead(t *testing.T) {
	cfg := DefaultRazorConfig()
	c := razorChip(5, cfg)
	rz := NewRazor(c, cfg)
	co := c.Cores[0]
	c.DomainOf(0).Rail.SetTarget(co.LogicVmin() - 0.005)
	// One adapt step at a replay-heavy voltage must reduce work
	// relative to an unloaded peer on a nominal rail.
	for i := 0; i < 50; i++ {
		rz.Adapt(c.Step())
	}
	w0 := co.Work()
	w6 := c.Cores[6].Work() // untouched domain at nominal
	if w0 >= w6 {
		t.Fatalf("replay overhead not charged: %v vs %v", w0, w6)
	}
}

func TestCPMHoldsLogicGuard(t *testing.T) {
	cfg := DefaultCPMConfig()
	cfg.CacheGuardbandV = 0.30 // effectively disable the cache floor
	c := chip.New(chip.DefaultParams(6, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), 6)
	}
	m := NewCPM(c, cfg)
	for i := 0; i < 2000; i++ {
		m.Adapt(c.Step())
	}
	for _, d := range c.Domains {
		worst := 0.0
		for _, id := range d.CoreIDs {
			if f := c.Cores[id].LogicVmin(); f > worst {
				worst = f
			}
		}
		margin := d.LastEffective() - worst
		if margin < cfg.GuardV-0.012 || margin > cfg.GuardV+0.020 {
			t.Fatalf("domain %d margin %v, want near %v", d.ID, margin, cfg.GuardV)
		}
	}
}

func TestCPMRespectsCacheGuardband(t *testing.T) {
	cfg := DefaultCPMConfig()
	c := chip.New(chip.DefaultParams(7, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), 7)
	}
	m := NewCPM(c, cfg)
	for i := 0; i < 2000; i++ {
		m.Adapt(c.Step())
	}
	floor := m.Floor()
	for _, d := range c.Domains {
		if d.Rail.Target() < floor-1e-9 {
			t.Fatalf("domain %d went below the cache guardband floor: %v < %v",
				d.ID, d.Rail.Target(), floor)
		}
	}
	// With the default 100 mV guardband the floor binds before the
	// logic guard does, so every domain should sit exactly at it.
	for _, d := range c.Domains {
		if d.Rail.Target() > floor+0.011 {
			t.Fatalf("domain %d stuck high: %v, floor %v", d.ID, d.Rail.Target(), floor)
		}
	}
}

func TestCPMCannotSeeCacheWeakness(t *testing.T) {
	// The structural limitation: a CPM with a small cache guardband
	// will happily drive into the L2 correctable/uncorrectable region,
	// because replica paths say nothing about SRAM. This is the failure
	// mode ECC feedback exists to prevent.
	cfg := DefaultCPMConfig()
	cfg.CacheGuardbandV = 0.30
	c := chip.New(chip.DefaultParams(8, true, false))
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), 8)
	}
	m := NewCPM(c, cfg)
	crashed := false
	for i := 0; i < 3000 && !crashed; i++ {
		rep := c.Step()
		m.Adapt(rep)
		for _, cr := range rep.Cores {
			if cr.Fatal && cr.FatalCause == "uncorrectable" {
				crashed = true
			}
		}
	}
	if !crashed {
		t.Fatal("CPM with a thin cache guardband never hit an uncorrectable fault; " +
			"the cache-blindness failure mode is missing")
	}
}
