package server

import (
	"testing"

	"eccspec/internal/workload"
)

func testServer(seed uint64) *Server {
	s := New(DefaultParams(seed))
	for _, c := range s.Chips {
		for _, co := range c.Cores {
			co.SetWorkload(workload.SPECjbb()[0], seed)
		}
	}
	return s
}

func TestNewTopology(t *testing.T) {
	s := testServer(1)
	if len(s.Chips) != 2 {
		t.Fatalf("%d sockets", len(s.Chips))
	}
	if s.AliveCores() != 16 {
		t.Fatalf("%d cores alive", s.AliveCores())
	}
	if s.FanSpeed() != 1.0 {
		t.Fatalf("fan %v", s.FanSpeed())
	}
}

func TestNewPanicsOnZeroSockets(t *testing.T) {
	p := DefaultParams(1)
	p.Sockets = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(p)
}

func TestSocketsAreDistinctSpecimens(t *testing.T) {
	s := testServer(2)
	a := s.Chips[0].Cores[0].Hier.L2D.Array()
	b := s.Chips[1].Cores[0].Hier.L2D.Array()
	sa, wa, pa := a.WeakestLine()
	sb, wb, pb := b.WeakestLine()
	if sa == sb && wa == wb && pa.Vmax() == pb.Vmax() {
		t.Fatal("two sockets share a weak-cell map")
	}
}

func TestStepHeatsEnclosureUnderLoad(t *testing.T) {
	s := testServer(3)
	for i := 0; i < 200; i++ {
		s.Step()
	}
	after := s.Chips[0].P.AmbientC
	// The blade burns tens of watts, so enclosure air must sit well
	// above the cold-aisle inlet.
	if after <= s.P.InletC+3 {
		t.Fatalf("enclosure air %v barely above inlet %v", after, s.P.InletC)
	}
	if s.Chips[0].P.AmbientC != s.Chips[1].P.AmbientC {
		t.Fatal("sockets see different enclosure air")
	}
	if s.TotalPower() <= 0 {
		t.Fatal("no blade power accounted")
	}
}

func TestFanSlowdownRaisesAmbient(t *testing.T) {
	fast := testServer(4)
	slow := testServer(4)
	slow.SetFanSpeed(0.2)
	for i := 0; i < 300; i++ {
		fast.Step()
		slow.Step()
	}
	df := fast.Chips[0].P.AmbientC
	ds := slow.Chips[0].P.AmbientC
	if ds <= df+3 {
		t.Fatalf("slowed fans raised ambient only %v -> %v", df, ds)
	}
}

func TestFanSpeedClamped(t *testing.T) {
	s := testServer(5)
	s.SetFanSpeed(-1)
	if s.FanSpeed() != 0 {
		t.Fatal("negative fan speed not clamped")
	}
	s.SetFanSpeed(7)
	if s.FanSpeed() != 1 {
		t.Fatal("fan speed above 1 not clamped")
	}
}

func TestStringSummary(t *testing.T) {
	s := testServer(6)
	if got := s.String(); got == "" {
		t.Fatal("empty summary")
	}
}
