// Package server models the evaluation platform one level above the
// chip: the HP BL860c-i4 Integrity blade with two Itanium 9560 sockets
// sharing an enclosure (Table I).
//
// The enclosure couples the chips thermally: inlet air plus a term
// proportional to total blade power, scaled by fan speed. Slowing the
// fans is exactly how the paper probed temperature sensitivity
// ("experiments under different temperatures by slowing system
// enclosure fan speeds", §III-D), so the fan model lets that experiment
// run at system scope.
package server

import (
	"fmt"

	"eccspec/internal/chip"
	"eccspec/internal/rng"
)

// Params configures a blade.
type Params struct {
	// Seed fixes the blade; each socket's chip derives its own seed
	// from it (different sockets are different specimens).
	Seed uint64
	// Sockets is the processor count (Table I: 2).
	Sockets int
	// LowVoltagePoint selects the 340 MHz point (default true mirrors
	// the evaluation).
	LowVoltagePoint bool
	// FullGeometry selects the full Table I cache sizes.
	FullGeometry bool
	// InletC is the cold-aisle air temperature.
	InletC float64
	// EnclosureRes is the enclosure's thermal resistance at full fan
	// speed (K per W of blade power).
	EnclosureRes float64
	// FanSlowdownFactor is how much EnclosureRes grows at zero fan
	// speed (linearly interpolated).
	FanSlowdownFactor float64
}

// DefaultParams returns a two-socket blade at the low-voltage point.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:              seed,
		Sockets:           2,
		LowVoltagePoint:   true,
		InletC:            25,
		EnclosureRes:      0.12,
		FanSlowdownFactor: 5.0,
	}
}

// Server is a running blade.
type Server struct {
	P     Params
	Chips []*chip.Chip

	fanSpeed float64
}

// New builds the blade: one chip per socket, each with its own derived
// seed (two sockets never share a weak-cell map).
func New(p Params) *Server {
	if p.Sockets <= 0 {
		panic("server: non-positive socket count")
	}
	s := &Server{P: p, fanSpeed: 1.0}
	for i := 0; i < p.Sockets; i++ {
		cp := chip.DefaultParams(rng.Hash(p.Seed, 0x50C7, uint64(i)), p.LowVoltagePoint, p.FullGeometry)
		s.Chips = append(s.Chips, chip.New(cp))
	}
	return s
}

// SetFanSpeed sets the enclosure fan speed in [0, 1]; 1 is full speed.
func (s *Server) SetFanSpeed(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	s.fanSpeed = f
}

// FanSpeed returns the current fan speed.
func (s *Server) FanSpeed() float64 { return s.fanSpeed }

// ambient returns the in-enclosure air temperature for the current
// blade power and fan speed.
func (s *Server) ambient(bladePower float64) float64 {
	res := s.P.EnclosureRes * (1 + (s.P.FanSlowdownFactor-1)*(1-s.fanSpeed))
	return s.P.InletC + res*bladePower
}

// Step advances every socket by one control tick and updates the shared
// thermal environment from the blade's current power draw. It returns
// the per-socket tick reports.
func (s *Server) Step() []chip.TickReport {
	reps := make([]chip.TickReport, len(s.Chips))
	var power float64
	for i, c := range s.Chips {
		reps[i] = c.Step()
		for _, cr := range reps[i].Cores {
			power += cr.PowerW
		}
		power += c.LastUncoreWatts()
	}
	amb := s.ambient(power)
	for _, c := range s.Chips {
		c.P.AmbientC = amb
	}
	return reps
}

// TotalPower returns the blade's average power so far (all sockets,
// cores plus uncore).
func (s *Server) TotalPower() float64 {
	t := 0.0
	for _, c := range s.Chips {
		if c.Time() > 0 {
			t += c.TotalEnergy() / c.Time()
		}
	}
	return t
}

// AliveCores returns the number of functioning cores across sockets.
func (s *Server) AliveCores() int {
	n := 0
	for _, c := range s.Chips {
		for _, co := range c.Cores {
			if co.Alive() {
				n++
			}
		}
	}
	return n
}

// String summarizes the blade.
func (s *Server) String() string {
	return fmt.Sprintf("blade seed %d: %d sockets, %d cores alive, fan %.0f%%",
		s.P.Seed, len(s.Chips), s.AliveCores(), 100*s.fanSpeed)
}
