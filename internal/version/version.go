// Package version reports the build's version string: the value baked
// in by the Makefile's -ldflags, or, failing that, whatever the Go
// toolchain embedded in the binary's build info.
package version

import "runtime/debug"

// version is stamped at link time:
//
//	-ldflags "-X eccspec/internal/version.version=v1.2.3"
var version string

// String returns the best available version identifier.
func String() string {
	if version != "" {
		return version
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if v == "" || v == "(devel)" {
			return rev + modified
		}
		return v + "+" + rev + modified
	}
	if v == "" {
		return "unknown"
	}
	return v
}
