package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"eccspec/internal/fleet"
)

// appendBytes appends raw bytes to a file (used to simulate torn
// journal tails left by a crash).
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// failNext returns a WriteHook that fails its first n calls and then
// heals, plus the counter for inspection.
func failNext(n int64) (func(op string) error, *atomic.Int64) {
	var calls atomic.Int64
	return func(op string) error {
		if calls.Add(1) <= n {
			return fmt.Errorf("injected %s failure", op)
		}
		return nil
	}, &calls
}

// TestFaultStoreRetriesTransientErrors drives a commit point through a
// short error burst: the bounded retry must absorb it, the record must
// land durably, and the retry counter must reflect the event.
func TestFaultStoreRetriesTransientErrors(t *testing.T) {
	dir := t.TempDir()
	hook, _ := failNext(2)
	var waits []time.Duration
	st, err := Open(dir, Options{
		WriteHook: hook,
		Retry:     RetryPolicy{JitterSeed: 7},
		Sleep:     func(d time.Duration) { waits = append(waits, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddJob(1, fleet.Job{Seeds: []uint64{5}, Seconds: 0.1}); err != nil {
		t.Fatalf("AddJob should survive a 2-op error burst: %v", err)
	}
	if got := st.Retries(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if len(waits) != 2 {
		t.Fatalf("expected 2 backoff waits, got %v", waits)
	}
	if waits[1] < waits[0]/2 {
		t.Fatalf("backoff should grow (modulo jitter): %v", waits)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if jobs := re.Jobs(); len(jobs) != 1 || jobs[0].ID != 1 {
		t.Fatalf("journal did not replay the retried record: %+v", jobs)
	}
}

// TestFaultStoreExhaustedRetriesRollBack exhausts the retry budget: the
// error must surface, the journal must stay at the last committed
// boundary, and the in-memory state must not contain the failed job —
// then a later attempt with the hook healed must succeed.
func TestFaultStoreExhaustedRetriesRollBack(t *testing.T) {
	dir := t.TempDir()
	var failing atomic.Bool
	failing.Store(true)
	st, err := Open(dir, Options{
		WriteHook: func(op string) error {
			if failing.Load() {
				return errors.New("disk on fire")
			}
			return nil
		},
		Retry: RetryPolicy{MaxAttempts: 3},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	spec := fleet.Job{Seeds: []uint64{5}, Seconds: 0.1}
	if err := st.AddJob(1, spec); err == nil {
		t.Fatal("AddJob should fail when every attempt errors")
	}
	if jobs := st.Jobs(); len(jobs) != 0 {
		t.Fatalf("failed job must not linger in memory: %+v", jobs)
	}

	failing.Store(false)
	if err := st.AddJob(1, spec); err != nil {
		t.Fatalf("retrying the same id after healing: %v", err)
	}
	if jobs := st.Jobs(); len(jobs) != 1 {
		t.Fatalf("healed AddJob did not apply: %+v", jobs)
	}
}

// TestFaultStoreBackoffDeterministic pins the replayability contract:
// the same jitter seed produces the same retry schedule.
func TestFaultStoreBackoffDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		hook, _ := failNext(4)
		var waits []time.Duration
		st, err := Open(t.TempDir(), Options{
			WriteHook: hook,
			Retry:     RetryPolicy{JitterSeed: 42, MaxAttempts: 6},
			Sleep:     func(d time.Duration) { waits = append(waits, d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if err := st.AddJob(1, fleet.Job{Seeds: []uint64{5}, Seconds: 0.1}); err != nil {
			t.Fatal(err)
		}
		return waits
	}
	a, b := schedule(), schedule()
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("retry schedules differ for the same seed:\n%v\n%v", a, b)
	}
}

// TestFaultStoreReadOnly opens a populated store read-only: reads must
// serve the recovered state, every mutation must return ErrReadOnly.
func TestFaultStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddJob(3, fleet.Job{Seeds: []uint64{9}, Seconds: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkJobDone(3, 1234); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	jobs := ro.Jobs()
	if len(jobs) != 1 || jobs[0].ID != 3 || !jobs[0].Completed {
		t.Fatalf("read-only store lost state: %+v", jobs)
	}
	for name, err := range map[string]error{
		"AddJob":      ro.AddJob(4, fleet.Job{Seeds: []uint64{1}, Seconds: 0.1}),
		"RecordChip":  ro.RecordChip(3, ChipRecord{Seed: 9}),
		"Checkpoint":  ro.RecordCheckpoint(3, 9, 10, []byte("x")),
		"MarkJobDone": ro.MarkJobDone(3, 99),
		"EvictJob":    ro.EvictJob(3),
		"Compact":     ro.Compact(),
	} {
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s = %v, want ErrReadOnly", name, err)
		}
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultStoreReadOnlyToleratesCorruptTail verifies that read-only
// recovery ignores (rather than truncates) a torn tail — the backing
// filesystem may itself be read-only.
func TestFaultStoreReadOnlyToleratesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddJob(1, fleet.Job{Seeds: []uint64{9}, Seconds: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, JournalName)
	appendBytes(t, path, []byte(`{"t":"chip","job":1,`)) // torn line

	before := fileSize(t, path)
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Jobs()) != 1 {
		t.Fatalf("good prefix lost: %+v", ro.Jobs())
	}
	if after := fileSize(t, path); after != before {
		t.Fatalf("read-only open modified the journal: %d -> %d bytes", before, after)
	}
}
