// Package store is a crash-safe, append-only job store for the
// eccspecd fleet daemon.
//
// Everything lives in one JSON-lines journal: job specs, per-chip
// completion records, periodic per-chip simulator snapshots, job
// completion marks, and evictions. Appends at commit points (job
// accepted, chip finished, job done, job evicted) are fsynced; the
// high-rate checkpoint records are not — losing one to an OS crash
// costs at most one checkpoint interval of re-simulation, never
// correctness, because every chip result is reproducible from its seed.
//
// Recovery reads the journal back, applies records in order, and
// truncates the file at the first corrupt or partial line (the torn
// tail a crash mid-append leaves behind), so a recovered store is
// always exactly some prefix of committed history. When the journal
// grows past a threshold of dead weight — superseded checkpoints,
// evicted jobs — it is compacted: current state is rewritten to a
// temporary file, fsynced, and atomically renamed over the journal.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"eccspec/internal/fleet"
	"eccspec/internal/rng"
)

// ErrReadOnly is returned by every mutating method of a store opened
// with OpenReadOnly. Use errors.Is to test for it.
var ErrReadOnly = errors.New("store: read-only")

// JournalName is the journal's filename inside the data directory.
const JournalName = "journal.jsonl"

// DefaultCompactEvery is the default number of appended records between
// automatic compactions.
const DefaultCompactEvery = 4096

// record is one journal line. T selects the kind; the other fields are
// kind-specific.
type record struct {
	T string `json:"t"` // "job", "chip", "ckpt", "assign", "done", "evict"

	Job  uint64     `json:"job"`
	Spec *fleet.Job `json:"spec,omitempty"` // t=job

	Chip *ChipRecord `json:"chip,omitempty"` // t=chip

	Seed  uint64 `json:"seed,omitempty"`  // t=ckpt, t=assign
	Ticks int    `json:"ticks,omitempty"` // t=ckpt
	Blob  []byte `json:"blob,omitempty"`  // t=ckpt (base64 in JSON)

	Worker string `json:"worker,omitempty"` // t=assign

	CompletedUnix int64 `json:"completed_unix,omitempty"` // t=done
}

// JobRecord is one job's recovered state.
type JobRecord struct {
	// ID is the daemon-assigned job id.
	ID uint64
	// Spec is the job as submitted (callback and resume fields are not
	// serialized and come back zero).
	Spec fleet.Job
	// Chips holds the completion record of every finished chip, keyed
	// by seed.
	Chips map[uint64]ChipRecord
	// Checkpoints holds the latest snapshot blob per unfinished seed;
	// CheckpointTicks the tick count each blob was taken at. Cleared
	// when the job completes.
	Checkpoints     map[uint64][]byte
	CheckpointTicks map[uint64]int
	// Assignments maps each seed to the cluster worker it was last
	// placed on (empty for single-node jobs). Unlike checkpoints the
	// map survives completion: it is the job's placement history, and
	// a migrated chip's entry is simply overwritten by its new home.
	Assignments map[uint64]string
	// Completed reports whether the whole job finished; CompletedUnix
	// is the wall-clock completion time recorded by the daemon.
	Completed     bool
	CompletedUnix int64
}

// RetryPolicy bounds the retry-with-exponential-backoff loop the store
// runs around journal commit points: a transient write or fsync error
// (full disk pressure, a flaky device, an injected fault) is retried
// with growing, jittered waits before it surfaces to the caller.
type RetryPolicy struct {
	// MaxAttempts is the total tries per journal operation, first
	// attempt included; <= 0 selects 6.
	MaxAttempts int
	// BaseDelay is the wait before the first retry, doubling each
	// subsequent retry up to MaxDelay; <= 0 selects 2ms / 250ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed seeds the deterministic jitter stream (internal/rng):
	// each wait is uniformly drawn from [d/2, d]. A fixed seed makes
	// retry schedules replayable in chaos tests.
	JitterSeed uint64
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 6
	}
	return p.MaxAttempts
}

// Attempts returns the effective total tries per operation, with the
// zero value's default applied. Exported so other retry loops (the
// cluster RPC layer) can share one policy shape.
func (p RetryPolicy) Attempts() int { return p.maxAttempts() }

// Delay computes the wait before retry number attempt (1-based),
// drawing jitter from the caller's seeded stream.
func (p RetryPolicy) Delay(jitter *rng.Stream, attempt int) time.Duration {
	base, max := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(jitter.Uint64()%uint64(half+1))
}

// Options tunes a store.
type Options struct {
	// CompactEvery triggers automatic compaction after that many
	// journal appends; <= 0 selects DefaultCompactEvery.
	CompactEvery int
	// NoSync disables fsync entirely (tests only).
	NoSync bool
	// Retry bounds the retry loop around journal writes.
	Retry RetryPolicy
	// WriteHook, when set, runs before every journal write ("append"),
	// fsync ("sync"), and compaction rewrite ("compact"); a returned
	// error is treated exactly like the underlying I/O failing. Fault
	// injection (internal/faultinject) and tests plug in here.
	WriteHook func(op string) error
	// Sleep substitutes the backoff wait; nil selects time.Sleep.
	// Tests use it to run retry schedules instantly.
	Sleep func(time.Duration)
}

// Store is the journal-backed job store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	goodOff int64 // byte offset just past the last committed record
	jobs    map[uint64]*JobRecord
	order   []uint64 // job ids in acceptance order
	appends int      // records since the last compaction

	readOnly bool
	retries  int64 // journal operations that needed at least one retry
	jitter   *rng.Stream
}

// Open opens (creating if needed) the store in dir, replaying the
// journal and truncating any corrupt tail.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, jobs: make(map[uint64]*JobRecord),
		jitter: rng.NewStream(opts.Retry.JitterSeed, 0xFA17)}
	path := filepath.Join(dir, JournalName)
	if err := s.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.goodOff = info.Size()
	return s, nil
}

// OpenReadOnly opens an existing store without write access: the
// journal is replayed (without truncating a corrupt tail — the
// filesystem may itself be read-only) and every mutating method returns
// ErrReadOnly. A daemon whose data directory has gone read-only uses
// this to keep serving recovered results in degraded mode.
func OpenReadOnly(dir string) (*Store, error) {
	s := &Store{dir: dir, opts: Options{}, readOnly: true,
		jobs:   make(map[uint64]*JobRecord),
		jitter: rng.NewStream(0, 0xFA17)}
	if err := s.replay(filepath.Join(dir, JournalName)); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.readOnly }

// Retries returns how many journal operations needed at least one
// retry — the daemon's /metrics exposes it.
func (s *Store) Retries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

// replay loads the journal, applying records in order. The file is
// truncated at the first line that is torn or fails to decode, so a
// crash mid-append never poisons recovery.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	var (
		valid int64 // byte offset just past the last good line
		r     = bufio.NewReaderSize(f, 1<<20)
	)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial line is a torn append — even if the
			// fragment happens to decode, the missing newline means the
			// write never completed, and keeping it would glue the next
			// append onto it. Truncate here.
			break
		}
		var rec record
		if err := json.Unmarshal(line[:len(line)-1], &rec); err != nil {
			break // corrupt line: truncate here
		}
		if !s.apply(rec) {
			break // structurally invalid record: truncate here
		}
		valid += int64(len(line))
	}
	// A torn or corrupt tail is dropped. In read-only mode the tail is
	// merely ignored — the filesystem may not allow truncation.
	if s.readOnly {
		return nil
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() > valid {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("store: truncating corrupt journal tail: %w", err)
		}
	}
	return nil
}

// apply folds one record into the in-memory state, reporting whether it
// was structurally valid.
func (s *Store) apply(rec record) bool {
	switch rec.T {
	case "job":
		if rec.Spec == nil {
			return false
		}
		if _, dup := s.jobs[rec.Job]; dup {
			return false
		}
		s.jobs[rec.Job] = &JobRecord{
			ID:              rec.Job,
			Spec:            *rec.Spec,
			Chips:           make(map[uint64]ChipRecord),
			Checkpoints:     make(map[uint64][]byte),
			CheckpointTicks: make(map[uint64]int),
			Assignments:     make(map[uint64]string),
		}
		s.order = append(s.order, rec.Job)
	case "chip":
		j := s.jobs[rec.Job]
		if j == nil || rec.Chip == nil {
			return false
		}
		j.Chips[rec.Chip.Seed] = *rec.Chip
		delete(j.Checkpoints, rec.Chip.Seed)
		delete(j.CheckpointTicks, rec.Chip.Seed)
	case "ckpt":
		j := s.jobs[rec.Job]
		if j == nil || len(rec.Blob) == 0 {
			return false
		}
		if _, done := j.Chips[rec.Seed]; done {
			return true // stale checkpoint racing a completion; ignore
		}
		j.Checkpoints[rec.Seed] = rec.Blob
		j.CheckpointTicks[rec.Seed] = rec.Ticks
	case "assign":
		j := s.jobs[rec.Job]
		if j == nil || rec.Worker == "" {
			return false
		}
		j.Assignments[rec.Seed] = rec.Worker
	case "done":
		j := s.jobs[rec.Job]
		if j == nil {
			return false
		}
		j.Completed = true
		j.CompletedUnix = rec.CompletedUnix
		j.Checkpoints = make(map[uint64][]byte)
		j.CheckpointTicks = make(map[uint64]int)
	case "evict":
		if _, ok := s.jobs[rec.Job]; !ok {
			return false
		}
		delete(s.jobs, rec.Job)
		for i, id := range s.order {
			if id == rec.Job {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	default:
		return false
	}
	return true
}

// append writes one record with bounded retry. Every record goes to
// the kernel in a single write, so nothing is lost to a process kill;
// sync additionally fsyncs (the commit points), so those records also
// survive an OS crash. A transient write/fsync failure is retried with
// exponential backoff and seeded jitter (Options.Retry); on exhaustion
// the file is rolled back to the last committed boundary so a torn
// line never precedes later good ones, and the last error surfaces.
// Caller holds s.mu.
func (s *Store) append(rec record, sync bool) error {
	if s.readOnly {
		return ErrReadOnly
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	buf := append(line, '\n')
	var lastErr error
	for attempt := 0; attempt < s.opts.Retry.maxAttempts(); attempt++ {
		if attempt > 0 {
			if attempt == 1 {
				s.retries++
			}
			s.sleep(s.opts.Retry.Delay(s.jitter, attempt))
			// A failed attempt may have left a partial line (or a whole
			// unsynced one); cut back to the committed boundary before
			// writing again so the record never appears twice.
			if err := s.f.Truncate(s.goodOff); err != nil {
				lastErr = fmt.Errorf("store: rolling back torn write: %w", err)
				continue
			}
		}
		if err := s.writeOnce(buf, sync); err != nil {
			lastErr = fmt.Errorf("store: %w", err)
			continue
		}
		s.goodOff += int64(len(buf))
		s.appends++
		if s.appends >= s.opts.CompactEvery {
			return s.compactLocked()
		}
		return nil
	}
	// Exhausted: leave the journal at the last committed boundary.
	s.f.Truncate(s.goodOff)
	return lastErr
}

// writeOnce performs one write (+ optional fsync) attempt, consulting
// the fault-injection hook before each underlying operation.
func (s *Store) writeOnce(buf []byte, sync bool) error {
	if h := s.opts.WriteHook; h != nil {
		if err := h("append"); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	if sync && !s.opts.NoSync {
		if h := s.opts.WriteHook; h != nil {
			if err := h("sync"); err != nil {
				return err
			}
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// sleep waits for the backoff delay via Options.Sleep or time.Sleep.
func (s *Store) sleep(d time.Duration) {
	if s.opts.Sleep != nil {
		s.opts.Sleep(d)
		return
	}
	time.Sleep(d)
}

// AddJob records a newly accepted job under the daemon's id. It is a
// commit point (fsynced).
func (s *Store) AddJob(id uint64, spec fleet.Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if _, dup := s.jobs[id]; dup {
		return fmt.Errorf("store: job %d already exists", id)
	}
	spec.OnCheckpoint, spec.OnResult, spec.Resume = nil, nil, nil
	if !s.apply(record{T: "job", Job: id, Spec: &spec}) {
		return fmt.Errorf("store: invalid job %d", id)
	}
	if err := s.append(record{T: "job", Job: id, Spec: &spec}, true); err != nil {
		// The accept never committed: roll the job back out of memory
		// so a rejected submission leaves no trace (and the id can be
		// retried once the journal heals).
		s.apply(record{T: "evict", Job: id})
		return err
	}
	return nil
}

// RecordChip records one chip's completion. It is a commit point
// (fsynced): a chip never re-runs after its record hits the journal.
func (s *Store) RecordChip(id uint64, chip ChipRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.jobs[id] == nil {
		return fmt.Errorf("store: unknown job %d", id)
	}
	rec := record{T: "chip", Job: id, Chip: &chip}
	s.apply(rec)
	return s.append(rec, true)
}

// RecordCheckpoint records a chip's latest snapshot blob. It is not a
// commit point: losing a checkpoint to an OS crash costs re-simulation
// from the previous one, never correctness.
func (s *Store) RecordCheckpoint(id, seed uint64, ticks int, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("store: unknown job %d", id)
	}
	if _, done := j.Chips[seed]; done {
		return nil
	}
	rec := record{T: "ckpt", Job: id, Seed: seed, Ticks: ticks, Blob: blob}
	s.apply(rec)
	return s.append(rec, false)
}

// RecordAssignment records which cluster worker a seed was last placed
// on. Like checkpoints it is not a commit point: losing an assignment
// to an OS crash costs nothing but placement history, and the cluster
// coordinator re-derives live placement when it resumes a job.
func (s *Store) RecordAssignment(id, seed uint64, worker string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("store: unknown job %d", id)
	}
	if worker == "" {
		return fmt.Errorf("store: empty worker id for job %d seed %d", id, seed)
	}
	if j.Assignments[seed] == worker {
		return nil // re-dispatch to the same home; nothing new to record
	}
	rec := record{T: "assign", Job: id, Seed: seed, Worker: worker}
	s.apply(rec)
	return s.append(rec, false)
}

// MarkJobDone records job completion at the given wall-clock time and
// drops the job's now-useless checkpoints. It is a commit point.
func (s *Store) MarkJobDone(id uint64, completedUnix int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.jobs[id] == nil {
		return fmt.Errorf("store: unknown job %d", id)
	}
	rec := record{T: "done", Job: id, CompletedUnix: completedUnix}
	s.apply(rec)
	return s.append(rec, true)
}

// EvictJob removes a job outright. It is a commit point; compaction
// later reclaims the space.
func (s *Store) EvictJob(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.jobs[id] == nil {
		return fmt.Errorf("store: unknown job %d", id)
	}
	rec := record{T: "evict", Job: id}
	s.apply(rec)
	return s.append(rec, true)
}

// Jobs returns every live job in acceptance order. The records share no
// mutable state with the store (maps are copied).
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].clone())
	}
	return out
}

// Job returns one job's record by id.
func (s *Store) Job(id uint64) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobRecord{}, false
	}
	return j.clone(), true
}

// MaxID returns the highest live job id (0 when empty), so a daemon can
// continue its id sequence across restarts.
func (s *Store) MaxID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max uint64
	for id := range s.jobs {
		if id > max {
			max = id
		}
	}
	return max
}

func (j *JobRecord) clone() JobRecord {
	out := *j
	out.Chips = make(map[uint64]ChipRecord, len(j.Chips))
	for k, v := range j.Chips {
		out.Chips[k] = v
	}
	out.Checkpoints = make(map[uint64][]byte, len(j.Checkpoints))
	for k, v := range j.Checkpoints {
		out.Checkpoints[k] = v
	}
	out.CheckpointTicks = make(map[uint64]int, len(j.CheckpointTicks))
	for k, v := range j.CheckpointTicks {
		out.CheckpointTicks[k] = v
	}
	out.Assignments = make(map[uint64]string, len(j.Assignments))
	for k, v := range j.Assignments {
		out.Assignments[k] = v
	}
	return out
}

// Compact rewrites the journal to hold exactly the current state:
// per live job its spec, chip records, surviving checkpoints, and
// completion mark. The rewrite goes to a temporary file which is
// fsynced and atomically renamed over the journal.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if h := s.opts.WriteHook; h != nil {
		if err := h("compact"); err != nil {
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	tmpPath := filepath.Join(s.dir, JournalName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(tmp)
	var written int64
	writeRec := func(rec record) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		written += int64(len(line)) + 1
		return w.WriteByte('\n')
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compacting: %w", err)
	}
	for _, id := range s.order {
		j := s.jobs[id]
		spec := j.Spec
		if err := writeRec(record{T: "job", Job: id, Spec: &spec}); err != nil {
			return fail(err)
		}
		for _, seed := range sortedSeeds(j.Chips) {
			chip := j.Chips[seed]
			if err := writeRec(record{T: "chip", Job: id, Chip: &chip}); err != nil {
				return fail(err)
			}
		}
		for _, seed := range sortedBlobSeeds(j.Checkpoints) {
			if err := writeRec(record{T: "ckpt", Job: id, Seed: seed,
				Ticks: j.CheckpointTicks[seed], Blob: j.Checkpoints[seed]}); err != nil {
				return fail(err)
			}
		}
		for _, seed := range sortedAssignSeeds(j.Assignments) {
			if err := writeRec(record{T: "assign", Job: id, Seed: seed,
				Worker: j.Assignments[seed]}); err != nil {
				return fail(err)
			}
		}
		if j.Completed {
			if err := writeRec(record{T: "done", Job: id, CompletedUnix: j.CompletedUnix}); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	path := filepath.Join(s.dir, JournalName)
	if err := os.Rename(tmpPath, path); err != nil {
		return fail(err)
	}
	if !s.opts.NoSync {
		if dir, err := os.Open(s.dir); err == nil {
			dir.Sync()
			dir.Close()
		}
	}
	// Reopen the journal handle on the new file.
	s.f.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted journal: %w", err)
	}
	s.f = f
	s.goodOff = written
	s.appends = 0
	return nil
}

// Close syncs and closes the journal (a no-op for read-only stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return nil
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	return s.f.Close()
}

func sortedSeeds(m map[uint64]ChipRecord) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAssignSeeds(m map[uint64]string) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedBlobSeeds(m map[uint64][]byte) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
