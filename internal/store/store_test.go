package store

import (
	"bytes"
	"errors"

	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eccspec/internal/fleet"
	"eccspec/internal/trace"
)

func testOpts() Options { return Options{NoSync: true} }

func sampleSpec() fleet.Job {
	return fleet.Job{
		Seeds:           []uint64{10, 11, 12},
		Workload:        "gcc",
		Seconds:         0.5,
		TraceEvery:      5,
		CheckpointEvery: 50,
	}
}

func sampleChip(seed uint64) ChipRecord {
	rec := trace.NewRecorder(fleet.TraceColumns...)
	rec.Add(0.001, 0.79, 0.78, 0.02, 31.5)
	rec.Add(0.002, 0.785, 0.775, 0.031, 31.2)
	return FromResult(fleet.ChipResult{
		Seed:         seed,
		NominalV:     0.8,
		AvgReduction: 0.18,
		DomainVdd:    []float64{0.655, 0.66, 0.67, 0.675},
		UncoreVdd:    0.8,
		AvgPowerW:    31.25,
		Ticks:        500,
		Trace:        rec,
	})
}

// TestRecoverAcrossReopen writes jobs, chips, checkpoints and a
// completion, reopens the store, and expects identical state back.
func TestRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(1, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(2, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordChip(1, sampleChip(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordCheckpoint(1, 11, 100, []byte("blob-11-100")); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordCheckpoint(1, 11, 150, []byte("blob-11-150")); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordChip(2, sampleChip(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordChip(2, sampleChip(11)); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordChip(2, sampleChip(12)); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkJobDone(2, 1754500000); err != nil {
		t.Fatal(err)
	}
	before := s.Jobs()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := r.Jobs()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state differs after reopen:\nbefore: %+v\nafter:  %+v", before, after)
	}

	j1, ok := r.Job(1)
	if !ok {
		t.Fatal("job 1 missing")
	}
	if got := string(j1.Checkpoints[11]); got != "blob-11-150" {
		t.Fatalf("checkpoint for seed 11 = %q, want latest", got)
	}
	if j1.CheckpointTicks[11] != 150 {
		t.Fatalf("checkpoint ticks = %d, want 150", j1.CheckpointTicks[11])
	}
	if _, done := j1.Chips[10]; !done {
		t.Fatal("chip 10 completion lost")
	}
	j2, _ := r.Job(2)
	if !j2.Completed || j2.CompletedUnix != 1754500000 {
		t.Fatalf("job 2 completion lost: %+v", j2)
	}
	if len(j2.Checkpoints) != 0 {
		t.Fatal("completed job retains checkpoints")
	}
	if r.MaxID() != 2 {
		t.Fatalf("MaxID = %d, want 2", r.MaxID())
	}
}

// TestCorruptTailTruncation simulates a crash mid-append: a torn final
// line must be dropped on recovery and the journal usable afterwards.
func TestCorruptTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(1, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordChip(1, sampleChip(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, JournalName)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tails := map[string][]byte{
		"torn line":                  []byte(`{"t":"chip","job":1,"chip":{"se`),
		"garbage":                    {0xFF, 0x00, 0x13, 0x37},
		"valid JSON, invalid record": []byte(`{"t":"chip","job":99}` + "\n"),
		"unknown kind":               []byte(`{"t":"wat","job":1}` + "\n"),
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte(nil), intact...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(dir, testOpts())
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			jobs := r.Jobs()
			if len(jobs) != 1 || len(jobs[0].Chips) != 1 {
				t.Fatalf("recovered state wrong: %+v", jobs)
			}
			// The journal must have been truncated back to the good
			// prefix, and stay appendable.
			if err := r.RecordChip(1, sampleChip(11)); err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			rr, err := Open(dir, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			j, _ := rr.Job(1)
			if len(j.Chips) != 2 {
				t.Fatalf("append after recovery lost: %+v", j)
			}
			rr.Close()
			// Restore the two-record journal for the next subtest.
			if err := os.WriteFile(path, intact, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompaction drops superseded checkpoints and evicted jobs from the
// journal while preserving state exactly.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(1, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(2, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	for ticks := 10; ticks <= 1000; ticks += 10 {
		if err := s.RecordCheckpoint(1, 11, ticks, bytes.Repeat([]byte("x"), 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EvictJob(2); err != nil {
		t.Fatal(err)
	}
	before := s.Jobs()
	path := filepath.Join(dir, JournalName)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	sizeAfter := fileSize(t, path)
	after := s.Jobs()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("compaction changed live state")
	}
	// 100 superseded checkpoints collapse to 1: the compacted journal
	// must be far smaller than 100 blob records.
	if sizeAfter > 4096 {
		t.Fatalf("compacted journal is %d bytes, expected the superseded checkpoints gone", sizeAfter)
	}
	// Appends still work after the handle swap, and survive a reopen.
	if err := s.RecordChip(1, sampleChip(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	j, ok := r.Job(1)
	if !ok || len(j.Chips) != 1 || string(j.Checkpoints[11]) == "" {
		t.Fatalf("post-compaction state wrong: %+v", j)
	}
	if _, ok := r.Job(2); ok {
		t.Fatal("evicted job resurrected by compaction")
	}
}

// TestAutoCompaction verifies the append-count trigger fires without an
// explicit Compact call.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CompactEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AddJob(1, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("y"), 1024)
	for i := 0; i < 200; i++ {
		if err := s.RecordCheckpoint(1, 11, i+1, blob); err != nil {
			t.Fatal(err)
		}
	}
	// 200 checkpoint records would be >270 KB raw; auto-compaction must
	// have kept the journal near one record's size.
	if size := fileSize(t, filepath.Join(dir, JournalName)); size > 64*1024 {
		t.Fatalf("journal is %d bytes; auto-compaction did not fire", size)
	}
	j, _ := s.Job(1)
	if j.CheckpointTicks[11] != 200 {
		t.Fatalf("latest checkpoint lost: %+v", j.CheckpointTicks)
	}
}

// TestChipRecordRoundTrip converts results to records and back; the
// fleet summary — the user-visible artifact — must be byte-identical.
func TestChipRecordRoundTrip(t *testing.T) {
	results := []fleet.ChipResult{
		sampleMustResult(t, sampleChip(10)),
		{Seed: 11, Err: errors.New("calibrate: domain 1 has no viable line")},
		sampleMustResult(t, sampleChip(12)),
	}
	var recovered []fleet.ChipResult
	for _, r := range results {
		back, err := FromResult(r).ToResult()
		if err != nil {
			t.Fatal(err)
		}
		recovered = append(recovered, back)
	}
	var a, b bytes.Buffer
	if err := fleet.Summarize(results).Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Summarize(recovered).Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("summary differs after round-trip:\noriginal:\n%s\nrecovered:\n%s", a.String(), b.String())
	}
	var origCSV, backCSV bytes.Buffer
	if err := results[0].Trace.WriteCSV(&origCSV); err != nil {
		t.Fatal(err)
	}
	if err := recovered[0].Trace.WriteCSV(&backCSV); err != nil {
		t.Fatal(err)
	}
	if origCSV.String() != backCSV.String() {
		t.Fatal("trace differs after round-trip")
	}
}

func sampleMustResult(t *testing.T, rec ChipRecord) fleet.ChipResult {
	t.Helper()
	r, err := rec.ToResult()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestInvalidOperations exercises the error paths.
func TestInvalidOperations(t *testing.T) {
	s, err := Open(t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RecordChip(9, sampleChip(1)); err == nil {
		t.Error("RecordChip accepted unknown job")
	}
	if err := s.RecordCheckpoint(9, 1, 1, []byte("b")); err == nil {
		t.Error("RecordCheckpoint accepted unknown job")
	}
	if err := s.MarkJobDone(9, 0); err == nil {
		t.Error("MarkJobDone accepted unknown job")
	}
	if err := s.EvictJob(9); err == nil {
		t.Error("EvictJob accepted unknown job")
	}
	if err := s.AddJob(1, sampleSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(1, sampleSpec()); err == nil {
		t.Error("AddJob accepted duplicate id")
	}
	// Checkpoints for an already-finished chip are dropped silently.
	if err := s.RecordChip(1, sampleChip(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordCheckpoint(1, 10, 50, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Job(1)
	if _, ok := j.Checkpoints[10]; ok {
		t.Error("stale checkpoint for finished chip retained")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}
