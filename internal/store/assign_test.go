package store

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestAssignmentsJournalAndRecover covers the cluster placement
// journal: assignments replay across a reopen, migration overwrites a
// seed's worker, re-dispatch to the same worker appends nothing, and
// the records survive both compaction and job completion (unlike
// checkpoints, which MarkJobDone drops).
func TestAssignmentsJournalAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(1, sampleSpec()); err != nil {
		t.Fatal(err)
	}

	if err := s.RecordAssignment(1, 10, "w-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordAssignment(1, 11, "w-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordAssignment(1, 12, "w-b"); err != nil {
		t.Fatal(err)
	}
	// Migration: seed 11 moves to w-b; latest assignment wins.
	if err := s.RecordAssignment(1, 11, "w-b"); err != nil {
		t.Fatal(err)
	}
	// Re-dispatch to the same home is dropped before the journal.
	sizeBefore := fileSize(t, filepath.Join(dir, JournalName))
	if err := s.RecordAssignment(1, 12, "w-b"); err != nil {
		t.Fatal(err)
	}
	if got := fileSize(t, filepath.Join(dir, JournalName)); got != sizeBefore {
		t.Fatalf("same-worker re-assignment grew the journal: %d -> %d bytes", sizeBefore, got)
	}

	want := map[uint64]string{10: "w-a", 11: "w-b", 12: "w-b"}
	check := func(st *Store, when string) {
		t.Helper()
		j, ok := st.Job(1)
		if !ok {
			t.Fatalf("%s: job 1 missing", when)
		}
		if !reflect.DeepEqual(j.Assignments, want) {
			t.Fatalf("%s: assignments = %v, want %v", when, j.Assignments, want)
		}
	}
	check(s, "live")

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	check(s, "after reopen")

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	check(s, "after compaction")

	// Completion keeps placement history (operators ask "where did that
	// chip run" after the fact) even as it drops checkpoints.
	if err := s.MarkJobDone(1, 1_700_000_000); err != nil {
		t.Fatal(err)
	}
	check(s, "after completion")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	check(s, "completed job after reopen")

	// Guard-rail errors: unknown job, empty worker.
	if err := s.RecordAssignment(9, 10, "w-a"); err == nil {
		t.Fatal("assignment to unknown job succeeded")
	}
	if err := s.RecordAssignment(1, 10, ""); err == nil {
		t.Fatal("empty worker id accepted")
	}
}
