package store

// ChipRecord is the JSON wire form of a fleet.ChipResult: the error
// flattened to its message and the trace recorder flattened to its
// rows. Round-tripping a result through a record and back preserves
// every number bit-for-bit (encoding/json renders float64 in shortest-
// round-trip form), so summaries computed from recovered results are
// byte-identical to the originals.

import (
	"errors"

	"eccspec/internal/fleet"
	"eccspec/internal/snapshot"
)

// ChipRecord is one chip's persisted completion record.
type ChipRecord struct {
	Seed         uint64               `json:"seed"`
	Err          string               `json:"err,omitempty"`
	NominalV     float64              `json:"nominal_v,omitempty"`
	AvgReduction float64              `json:"avg_reduction,omitempty"`
	DomainVdd    []float64            `json:"domain_vdd,omitempty"`
	UncoreVdd    float64              `json:"uncore_vdd,omitempty"`
	AvgPowerW    float64              `json:"avg_power_w,omitempty"`
	Ticks        int                  `json:"ticks,omitempty"`
	Trace        *snapshot.TraceState `json:"trace,omitempty"`
}

// FromResult converts a live result into its wire form.
func FromResult(r fleet.ChipResult) ChipRecord {
	rec := ChipRecord{
		Seed:         r.Seed,
		NominalV:     r.NominalV,
		AvgReduction: r.AvgReduction,
		DomainVdd:    r.DomainVdd,
		UncoreVdd:    r.UncoreVdd,
		AvgPowerW:    r.AvgPowerW,
		Ticks:        r.Ticks,
		Trace:        snapshot.CaptureTrace(r.Trace),
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

// ToResult reconstructs the live result.
func (c ChipRecord) ToResult() (fleet.ChipResult, error) {
	rec, err := c.Trace.RestoreTrace()
	if err != nil {
		return fleet.ChipResult{}, err
	}
	r := fleet.ChipResult{
		Seed:         c.Seed,
		NominalV:     c.NominalV,
		AvgReduction: c.AvgReduction,
		DomainVdd:    c.DomainVdd,
		UncoreVdd:    c.UncoreVdd,
		AvgPowerW:    c.AvgPowerW,
		Ticks:        c.Ticks,
		Trace:        rec,
	}
	if c.Err != "" {
		r.Err = errors.New(c.Err)
	}
	return r, nil
}
