package store

import (
	"os"
	"path/filepath"
	"testing"

	"eccspec/internal/fleet"
)

// FuzzJournalRecover throws arbitrary bytes at the journal replay path:
// Open must never panic and must always come back in a usable state
// (the journal it leaves behind must itself replay cleanly).
func FuzzJournalRecover(f *testing.F) {
	// Seed the corpus with a real journal capture plus classic tails.
	dir := f.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := st.AddJob(1, fleet.Job{Seeds: []uint64{5, 6}, Seconds: 0.1, Workload: "stress-test"}); err != nil {
		f.Fatal(err)
	}
	if err := st.RecordChip(1, ChipRecord{Seed: 5, NominalV: 0.9, AvgReduction: 0.08, DomainVdd: []float64{0.81}, Ticks: 100}); err != nil {
		f.Fatal(err)
	}
	if err := st.MarkJobDone(1, 1700000000); err != nil {
		f.Fatal(err)
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	capture, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(capture)
	f.Add([]byte{})
	f.Add(append(append([]byte(nil), capture...), `{"t":"chip","job":1,"chip":{"se`...))
	f.Add([]byte("{\"t\":\"job\",\"job\":1}\n{\"t\":\"done\",\"job\":1}\n"))
	f.Add([]byte{0xFF, 0x00, 0x13, 0x37, '\n'})

	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalName), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			// Rejecting the journal outright is acceptable; crashing
			// or wedging is not.
			return
		}
		// Whatever survived replay must still accept writes...
		id := uint64(1 << 62) // clear of any fuzz-recovered ids
		if err := s.AddJob(id, fleet.Job{Seeds: []uint64{9}, Seconds: 0.1}); err != nil {
			t.Fatalf("recovered store rejected a fresh job: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// ...and the truncated/repaired journal must replay cleanly.
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("journal written by recovery failed to replay: %v", err)
		}
		found := false
		for _, j := range r.Jobs() {
			if j.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatal("job appended after recovery was lost")
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
