package engine

// Bare-chip loops: the experiment reproductions and examples drive a
// chip.Chip (and usually a control.System) directly, without the full
// Simulator wrapper — calibration sweeps, convergence windows,
// measurement windows with per-tick collection. These helpers are the
// engine-owned form of those loops; call sites supply only the per-tick
// consumption. Unlike Run, a dead core does not stop these loops:
// chip.Step skips dead cores but still consumes the same randomness, so
// characterization sweeps that ride through crashes (reviving cores,
// counting fatalities) stay byte-identical to the historical behavior.

import (
	"eccspec/internal/chip"
	"eccspec/internal/control"
)

// TickFunc consumes one bare-chip tick: t is the 0-based loop index,
// rep the chip's report (valid until the next Step), and acts the
// controller's actions this tick (nil when the loop runs without a
// controller; valid until the next Tick). Returning false stops the
// loop after this tick.
type TickFunc func(t int, rep chip.TickReport, acts []control.Action) bool

// Ticks advances c by n control ticks, driving ctl after each chip step
// when non-nil, and invoking fn (when non-nil) with each tick's report
// and actions. It returns the number of ticks completed, which is less
// than n only if fn stopped the loop.
func Ticks(c *chip.Chip, ctl *control.System, n int, fn TickFunc) int {
	for t := 0; t < n; t++ {
		rep := c.Step()
		var acts []control.Action
		if ctl != nil {
			acts = ctl.Tick()
		}
		if fn != nil && !fn(t, rep, acts) {
			return t + 1
		}
	}
	return n
}

// Loop drives an arbitrary step function n times — the engine-owned
// form of loops whose step is not a single chip (a blade of chips, a
// firmware adaptation cycle). step returns false to stop early; Loop
// returns the number of steps completed.
func Loop(n int, step func(t int) bool) int {
	for t := 0; t < n; t++ {
		if !step(t) {
			return t + 1
		}
	}
	return n
}
