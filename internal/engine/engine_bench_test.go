package engine_test

// Black-box tests that drive the engine through the real simulator: the
// zero-allocation guarantee for the steady-state tick path, and the
// checkpoint-observer resume contract. This file is in package
// engine_test so it can import the root eccspec package (which itself
// imports internal/engine) without a cycle.

import (
	"bytes"
	"context"
	"testing"

	"eccspec"
	"eccspec/internal/engine"
	"eccspec/internal/snapshot"
)

// BenchmarkEngineTick measures the full per-tick path — chip step,
// controller tick, observer dispatch — on a calibrated simulator. The
// steady state must not allocate: chip, control, cache and sram all
// reuse per-instance scratch, and the engine keeps the loop and View on
// the stack. CI's bench smoke runs this with -benchtime=1x; the
// zero-alloc assertion itself lives in TestEngineTickDoesNotAllocate so
// a regression fails `go test` too.
func BenchmarkEngineTick(b *testing.B) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42, Workload: "jbb-8wh"})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Calibrate(); err != nil {
		b.Fatal(err)
	}
	sim.Run(0.2) // converge into the steady state first
	obs := engine.Funcs{Tick: func(engine.View) error { return nil }}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := sim.RunEngine(context.Background(), b.N, obs); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChipStep isolates the chip's per-tick sampling path — the
// batch-kernel walk over every core's arrays plus the monitor probes —
// from the controller and observer overhead BenchmarkEngineTick adds on
// top, so kernel-level optimizations can be measured directly.
func BenchmarkChipStep(b *testing.B) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42, Workload: "jbb-8wh"})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Calibrate(); err != nil {
		b.Fatal(err)
	}
	sim.Run(0.2)
	c := sim.Chip()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func TestEngineTickDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name     string
		fidelity string
	}{
		{"full", eccspec.FidelityFull},
		{"adaptive", eccspec.FidelityAdaptive},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42, Workload: "jbb-8wh", Fidelity: tc.fidelity})
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Calibrate(); err != nil {
				t.Fatal(err)
			}
			sim.Run(0.2)
			ctx := context.Background()
			if tc.fidelity == eccspec.FidelityAdaptive {
				// Advance until the chip has actually entered fast-forward
				// so the aggregate-rate tick path is what gets measured
				// (alongside full ticks on either side of drop-backs).
				c := sim.Chip()
				if _, err := sim.RunEngine(ctx, 20000,
					engine.StopWhen(func(engine.View) bool { return c.FastForward() })); err != nil {
					t.Fatal(err)
				}
				if !c.FastForward() {
					t.Fatal("chip never entered fast-forward in 20000 ticks")
				}
			}
			// Build the run configuration once: RunEngine's variadic observer
			// slice is a per-run setup cost, amortized to zero in the benchmark;
			// the per-tick path below must be allocation-free outright.
			cfg := engine.Config{Observers: []engine.Observer{
				engine.Funcs{Tick: func(engine.View) error { return nil }},
			}}
			ffBefore := sim.Chip().FastForwardTicks()
			avg := testing.AllocsPerRun(200, func() {
				cfg.Start = sim.Ticks()
				cfg.Until = cfg.Start + 1
				if _, err := engine.Run(ctx, sim, cfg); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state tick allocates %.2f times per run, want 0", avg)
			}
			if tc.fidelity == eccspec.FidelityAdaptive && sim.Chip().FastForwardTicks() == ffBefore {
				t.Fatal("no fast-forward tick executed inside the measured window")
			}
		})
	}
}

// TestCheckpointObserverResume interrupts a run at a checkpoint
// boundary, restores a fresh simulator from the blob the observer
// captured, finishes the run there, and requires the final snapshot to
// be byte-identical to an uninterrupted run of the same length.
func TestCheckpointObserverResume(t *testing.T) {
	const seed, total, cut = 77, 600, 300
	newSim := func() *eccspec.Simulator {
		sim, err := eccspec.NewSimulator(eccspec.Options{Seed: seed, Workload: "mcf"})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Calibrate(); err != nil {
			t.Fatal(err)
		}
		return sim
	}

	// Reference: one uninterrupted run.
	ref := newSim()
	if _, err := ref.RunEngine(context.Background(), total); err != nil {
		t.Fatal(err)
	}
	want, err := snapshot.CaptureBlob(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: a checkpoint observer captures the state at the
	// cut boundary and a stop condition ends the run right there.
	var blob []byte
	interrupted := newSim()
	rep, err := interrupted.RunEngine(context.Background(), total,
		engine.EveryN{N: cut, Fn: func(v engine.View) error {
			b, err := snapshot.CaptureBlob(interrupted)
			if err != nil {
				return err
			}
			blob = b
			return nil
		}},
		engine.StopWhen(func(v engine.View) bool { return v.Tick >= cut }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tick != cut || blob == nil {
		t.Fatalf("interrupted run stopped at %d (blob captured: %v), want %d", rep.Tick, blob != nil, cut)
	}

	// Resume from the blob and finish the remaining ticks.
	resumed, _, err := snapshot.RestoreBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Ticks() != cut {
		t.Fatalf("restored simulator at tick %d, want %d", resumed.Ticks(), cut)
	}
	if _, err := resumed.RunEngine(context.Background(), total-cut); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.CaptureBlob(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed run diverged: snapshot %d bytes vs %d, contents differ", len(got), len(want))
	}
}
