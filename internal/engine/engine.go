// Package engine owns the canonical simulation run loop.
//
// The paper's contribution is one closed loop — chip activity, ECC
// monitor sampling, controller Vdd step — and every layer of this repo
// ultimately drives that loop: the public Simulator, the fleet worker,
// the CLI's checkpointed runs, the experiment reproductions, and the
// examples. This package writes the loop exactly once and lets the
// layers differ only in what they *observe*: tracing, checkpointing,
// Prometheus counters, progress reporting and stop conditions are all
// composable Observers rather than per-call-site plumbing.
//
// The steady-state tick path is allocation-free: Run keeps no per-tick
// state on the heap, observers receive a View by value, and the
// simulation packages reuse their per-tick scratch (see chip.Step,
// control.Tick, cache.ReadLine). BenchmarkEngineTick proves 0 B/op.
//
// Determinism: the engine adds no randomness and consumes none. A run
// through the engine executes the same Step sequence as the hand-rolled
// loops it replaced, so results are byte-identical for the same seeds.
package engine

import (
	"context"
	"errors"
)

// Sim is the minimal stepping contract the engine drives. Step advances
// one control tick and reports whether the simulation should continue;
// false means a terminal condition (a core died) and stops the run
// after the tick's observers have fired.
type Sim interface {
	Step() bool
}

// ErrStop is returned by an Observer's OnTick to stop the run cleanly:
// the engine treats it as "done", not as a failure, and Run returns a
// nil error. Any other observer error aborts the run with that error.
var ErrStop = errors.New("engine: stop requested")

// View is the snapshot-lite the engine hands to observers. It is passed
// by value; observers needing telemetry (voltages, error rates, energy)
// type-assert Sim to the richer interface they were composed with.
type View struct {
	// Tick is the absolute index of the last completed tick, 1-based:
	// after the first Step of a fresh run Tick is 1. A resumed run
	// continues the original numbering (Config.Start), so modulo-based
	// observers (tracing every N, checkpointing every N) stay aligned
	// across an interruption.
	Tick int
	// Until is the run's exclusive end tick from Config. Tick == Until
	// on the final tick of an uninterrupted run.
	Until int
	// Alive is Step's return for this tick; false on the tick that
	// killed a core (observers still see that final tick).
	Alive bool
	// Sim is the simulation being stepped.
	Sim Sim
}

// Observer hooks into the run loop. OnStart fires once before the first
// Step (Tick = Config.Start); an error aborts the run before any
// stepping. OnTick fires after every completed tick, in composition
// order; returning ErrStop ends the run cleanly, any other error aborts
// it with that error. OnStop fires exactly once when a started loop
// exits for any reason (completion, core death, cancellation, observer
// error) — it receives the final View and the error Run will return,
// and is the place to flush buffers or finalize counters. If an OnStart
// fails, the run never starts and no OnStop fires.
type Observer interface {
	OnStart(v View) error
	OnTick(v View) error
	OnStop(v View, err error)
}

// Config parameterizes one run.
type Config struct {
	// Start is the absolute tick the simulation has already reached
	// (non-zero when resuming from a checkpoint); stepping begins at
	// Start and continues to Until.
	Start int
	// Until is the exclusive end tick: the run completes after tick
	// Until has executed (Until - Start steps from here).
	Until int
	// Observers fire in slice order on every tick.
	Observers []Observer
}

// Report summarizes a run.
type Report struct {
	// Tick is the absolute tick the simulation reached: Until after an
	// uninterrupted run, less if the run stopped early. Partial results
	// (voltages, energy, error rates) are valid at any stopping point.
	Tick int
	// Stopped reports that Step returned false (a core died) before
	// Until.
	Stopped bool
}

// Run drives sim from cfg.Start to cfg.Until, checking ctx before each
// tick and firing observers after each tick. It returns the context's
// error on cancellation, an observer's error if one aborted the run,
// and nil otherwise (including clean early stops via ErrStop or core
// death). The inner loop allocates nothing.
func Run(ctx context.Context, sim Sim, cfg Config) (Report, error) {
	rep := Report{Tick: cfg.Start}
	v := View{Tick: cfg.Start, Until: cfg.Until, Alive: true, Sim: sim}
	for _, o := range cfg.Observers {
		if err := o.OnStart(v); err != nil {
			return rep, err
		}
	}
	var runErr error
	done := ctx.Done()
	for t := cfg.Start; t < cfg.Until; t++ {
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		alive := sim.Step()
		rep.Tick = t + 1
		v.Tick, v.Alive = t+1, alive
		for _, o := range cfg.Observers {
			if err := o.OnTick(v); err != nil {
				if errors.Is(err, ErrStop) {
					err = nil
				}
				runErr = err
				goto stop
			}
		}
		if !alive {
			rep.Stopped = true
			break
		}
	}
stop:
	v.Tick = rep.Tick
	for _, o := range cfg.Observers {
		o.OnStop(v, runErr)
	}
	return rep, runErr
}
