package engine

// Stock observers: the cross-cutting concerns the hand-rolled loops
// used to wire inline — periodic actions, stop conditions, progress and
// counter reporting — expressed as composable Observer values. Layers
// with richer needs (snapshot checkpointing, trace sampling off a full
// Simulator) build on Funcs and EveryN rather than re-implementing the
// loop.

import "time"

// Funcs adapts plain functions to Observer; nil fields are no-ops.
type Funcs struct {
	Start func(v View) error
	Tick  func(v View) error
	Stop  func(v View, err error)
}

// OnStart implements Observer.
func (f Funcs) OnStart(v View) error {
	if f.Start == nil {
		return nil
	}
	return f.Start(v)
}

// OnTick implements Observer.
func (f Funcs) OnTick(v View) error {
	if f.Tick == nil {
		return nil
	}
	return f.Tick(v)
}

// OnStop implements Observer.
func (f Funcs) OnStop(v View, err error) {
	if f.Stop != nil {
		f.Stop(v, err)
	}
}

// EveryN invokes Fn after every N-th completed tick (absolute tick
// numbering, so a resumed run fires on the same boundaries as an
// uninterrupted one). N <= 0 disables it.
type EveryN struct {
	N  int
	Fn func(v View) error
}

// OnStart implements Observer.
func (e EveryN) OnStart(View) error { return nil }

// OnTick implements Observer.
func (e EveryN) OnTick(v View) error {
	if e.N <= 0 || v.Tick%e.N != 0 {
		return nil
	}
	return e.Fn(v)
}

// OnStop implements Observer.
func (e EveryN) OnStop(View, error) {}

// StopWhen ends the run cleanly (ErrStop) once the predicate holds —
// an error-rate ceiling, a convergence test, any condition readable
// off the View.
type StopWhen func(v View) bool

// OnStart implements Observer.
func (s StopWhen) OnStart(View) error { return nil }

// OnTick implements Observer.
func (s StopWhen) OnTick(v View) error {
	if s(v) {
		return ErrStop
	}
	return nil
}

// OnStop implements Observer.
func (s StopWhen) OnStop(View, error) {}

// Deadline ends the run cleanly once wall-clock time exceeds the
// budget, checking the clock every CheckEvery ticks (default 1000) to
// keep time.Now off the hot path.
type Deadline struct {
	Budget     time.Duration
	CheckEvery int

	start time.Time
}

// OnStart implements Observer.
func (d *Deadline) OnStart(View) error {
	d.start = time.Now()
	return nil
}

// OnTick implements Observer.
func (d *Deadline) OnTick(v View) error {
	every := d.CheckEvery
	if every <= 0 {
		every = 1000
	}
	if v.Tick%every != 0 {
		return nil
	}
	if time.Since(d.start) > d.Budget {
		return ErrStop
	}
	return nil
}

// OnStop implements Observer.
func (d *Deadline) OnStop(View, error) {}

// Progress reports run progress through Fn(done, total) every Every
// ticks and once more at stop. done counts ticks completed this run
// (relative to Start), total the ticks requested.
type Progress struct {
	Every int
	Fn    func(done, total int)

	start int
}

// OnStart implements Observer.
func (p *Progress) OnStart(v View) error {
	p.start = v.Tick
	return nil
}

// OnTick implements Observer.
func (p *Progress) OnTick(v View) error {
	if p.Every > 0 && (v.Tick-p.start)%p.Every == 0 {
		p.Fn(v.Tick-p.start, v.Until-p.start)
	}
	return nil
}

// OnStop implements Observer.
func (p *Progress) OnStop(v View, _ error) {
	p.Fn(v.Tick-p.start, v.Until-p.start)
}

// CountTicks batches completed-tick counts into Add — typically an
// atomic counter behind a Prometheus metric — every Every ticks
// (default 256), flushing the remainder at stop. Batching keeps the
// shared counter off the per-tick path when many chips run in
// parallel.
type CountTicks struct {
	Every int
	Add   func(delta int64)

	pending int64
}

// OnStart implements Observer.
func (c *CountTicks) OnStart(View) error { return nil }

// OnTick implements Observer.
func (c *CountTicks) OnTick(View) error {
	c.pending++
	every := int64(c.Every)
	if every <= 0 {
		every = 256
	}
	if c.pending >= every {
		c.Add(c.pending)
		c.pending = 0
	}
	return nil
}

// OnStop implements Observer.
func (c *CountTicks) OnStop(View, error) {
	if c.pending > 0 {
		c.Add(c.pending)
		c.pending = 0
	}
}
