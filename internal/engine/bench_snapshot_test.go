package engine_test

// `make bench-snapshot` harness: set ECCSPEC_BENCH_TICKS_OUT to a path
// and TestBenchSnapshot writes a BENCH_ticks.json performance snapshot
// — single-chip tick latency from BenchmarkEngineTick plus fleet
// throughput from a parallel micro-run — so CI archives a comparable
// number per commit. Without the env var the test skips, keeping plain
// `go test ./...` fast.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"eccspec/internal/fleet"
)

// regressionFactor is the ns/tick slack the gate allows over the
// committed snapshot before failing: generous enough to absorb the
// ±10% run-to-run noise of shared CI machines, tight enough that a
// real hot-path regression (the kind the batch kernels exist to
// prevent) cannot land silently.
const regressionFactor = 1.25

func TestBenchSnapshot(t *testing.T) {
	out := os.Getenv("ECCSPEC_BENCH_TICKS_OUT")
	if out == "" {
		t.Skip("set ECCSPEC_BENCH_TICKS_OUT to write a benchmark snapshot")
	}

	// The committed snapshot at the destination path, if any, is the
	// regression baseline.
	var baseline float64
	if prev, err := os.ReadFile(out); err == nil {
		var old struct {
			NsPerTick float64 `json:"ns_per_tick"`
		}
		if err := json.Unmarshal(prev, &old); err == nil {
			baseline = old.NsPerTick
		}
	}

	// The default 1s benchtime leaves only a few thousand ticks per
	// round, which over-weights the post-convergence transient and
	// scheduler noise; 3s keeps snapshot-to-snapshot jitter well inside
	// the regression slack.
	if err := flag.Set("test.benchtime", "3s"); err != nil {
		t.Fatal(err)
	}
	tick := testing.Benchmark(BenchmarkEngineTick)
	nsPerTick := float64(tick.NsPerOp())

	job := fleet.Job{Workload: "jbb-8wh", Seconds: 0.05}
	for seed := uint64(4000); seed < 4008; seed++ {
		job.Seeds = append(job.Seeds, seed)
	}
	eng := fleet.New(fleet.Config{Workers: 4})
	start := time.Now()
	results, err := eng.Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("fleet micro-run: %v", err)
	}
	elapsed := time.Since(start)
	chips := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("chip %d failed: %v", r.Seed, r.Err)
		}
		chips++
	}

	blob, err := json.MarshalIndent(map[string]any{
		"bench":           "ticks",
		"ns_per_tick":     nsPerTick,
		"ticks_per_sec":   1e9 / nsPerTick,
		"allocs_per_tick": tick.AllocsPerOp(),
		"fleet_chips":     chips,
		"fleet_workers":   eng.Workers(),
		"fleet_elapsed_s": elapsed.Seconds(),
		"chips_per_min":   float64(chips) / elapsed.Minutes(),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)

	if baseline > 0 && nsPerTick > baseline*regressionFactor {
		t.Errorf("tick latency regressed: %.0f ns/tick vs committed %.0f (limit %.0f)",
			nsPerTick, baseline, baseline*regressionFactor)
	}
}
