package engine_test

// `make bench-snapshot` harness: set ECCSPEC_BENCH_TICKS_OUT to a path
// and TestBenchSnapshot writes a BENCH_ticks.json performance snapshot
// — single-chip tick latency from BenchmarkEngineTick plus fleet
// throughput from a parallel micro-run — so CI archives a comparable
// number per commit. Without the env var the test skips, keeping plain
// `go test ./...` fast.

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"eccspec/internal/fleet"
)

func TestBenchSnapshot(t *testing.T) {
	out := os.Getenv("ECCSPEC_BENCH_TICKS_OUT")
	if out == "" {
		t.Skip("set ECCSPEC_BENCH_TICKS_OUT to write a benchmark snapshot")
	}

	tick := testing.Benchmark(BenchmarkEngineTick)
	nsPerTick := float64(tick.NsPerOp())

	job := fleet.Job{Workload: "jbb-8wh", Seconds: 0.05}
	for seed := uint64(4000); seed < 4008; seed++ {
		job.Seeds = append(job.Seeds, seed)
	}
	eng := fleet.New(fleet.Config{Workers: 4})
	start := time.Now()
	results, err := eng.Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("fleet micro-run: %v", err)
	}
	elapsed := time.Since(start)
	chips := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("chip %d failed: %v", r.Seed, r.Err)
		}
		chips++
	}

	blob, err := json.MarshalIndent(map[string]any{
		"bench":           "ticks",
		"ns_per_tick":     nsPerTick,
		"ticks_per_sec":   1e9 / nsPerTick,
		"allocs_per_tick": tick.AllocsPerOp(),
		"fleet_chips":     chips,
		"fleet_workers":   eng.Workers(),
		"fleet_elapsed_s": elapsed.Seconds(),
		"chips_per_min":   float64(chips) / elapsed.Minutes(),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
