package engine

import (
	"context"
	"errors"
	"testing"

	"eccspec/internal/chip"
	"eccspec/internal/control"
)

// fakeSim counts steps and optionally reports death on a given step.
type fakeSim struct {
	steps int
	dieAt int // Step returns false on this step (1-based); 0 = immortal
}

func (f *fakeSim) Step() bool {
	f.steps++
	return f.dieAt == 0 || f.steps < f.dieAt || f.steps > f.dieAt
}

// recorder logs every observer callback it receives.
type recorder struct {
	starts  []View
	ticks   []View
	stopV   View
	stopErr error
	stops   int
}

func (r *recorder) OnStart(v View) error { r.starts = append(r.starts, v); return nil }
func (r *recorder) OnTick(v View) error  { r.ticks = append(r.ticks, v); return nil }
func (r *recorder) OnStop(v View, err error) {
	r.stops++
	r.stopV, r.stopErr = v, err
}

func TestRunCompletes(t *testing.T) {
	sim := &fakeSim{}
	rec := &recorder{}
	rep, err := Run(context.Background(), sim, Config{Until: 10, Observers: []Observer{rec}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Tick != 10 || rep.Stopped {
		t.Fatalf("report = %+v, want Tick=10 Stopped=false", rep)
	}
	if sim.steps != 10 {
		t.Fatalf("sim stepped %d times, want 10", sim.steps)
	}
	if len(rec.starts) != 1 || rec.starts[0].Tick != 0 {
		t.Fatalf("OnStart calls = %+v, want one at Tick 0", rec.starts)
	}
	if len(rec.ticks) != 10 || rec.ticks[0].Tick != 1 || rec.ticks[9].Tick != 10 {
		t.Fatalf("OnTick saw %d ticks (first %+v), want 1..10", len(rec.ticks), rec.ticks[0])
	}
	if rec.stops != 1 || rec.stopV.Tick != 10 || rec.stopErr != nil {
		t.Fatalf("OnStop = %dx (%+v, %v), want once at Tick 10 with nil error",
			rec.stops, rec.stopV, rec.stopErr)
	}
}

func TestRunStartOffsetKeepsAbsoluteTicks(t *testing.T) {
	sim := &fakeSim{}
	rec := &recorder{}
	rep, err := Run(context.Background(), sim, Config{Start: 5, Until: 8, Observers: []Observer{rec}})
	if err != nil || rep.Tick != 8 {
		t.Fatalf("Run = (%+v, %v), want Tick=8", rep, err)
	}
	if sim.steps != 3 {
		t.Fatalf("sim stepped %d times, want 3", sim.steps)
	}
	want := []int{6, 7, 8}
	for i, v := range rec.ticks {
		if v.Tick != want[i] {
			t.Fatalf("tick %d observed as %d, want %d", i, v.Tick, want[i])
		}
	}
}

func TestOnStartErrorAbortsBeforeStepping(t *testing.T) {
	boom := errors.New("boom")
	sim := &fakeSim{}
	rec := &recorder{}
	_, err := Run(context.Background(), sim, Config{Until: 10, Observers: []Observer{
		Funcs{Start: func(View) error { return boom }},
		rec,
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if sim.steps != 0 {
		t.Fatalf("sim stepped %d times after OnStart failure, want 0", sim.steps)
	}
	if rec.stops != 0 {
		t.Fatalf("OnStop fired %d times for a run that never started", rec.stops)
	}
}

func TestObserverErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	sim := &fakeSim{}
	rec := &recorder{}
	rep, err := Run(context.Background(), sim, Config{Until: 10, Observers: []Observer{
		Funcs{Tick: func(v View) error {
			if v.Tick == 3 {
				return boom
			}
			return nil
		}},
		rec,
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if rep.Tick != 3 || sim.steps != 3 {
		t.Fatalf("rep.Tick=%d steps=%d, want both 3", rep.Tick, sim.steps)
	}
	// The failing observer short-circuits later observers' OnTick for
	// that tick, but everyone's OnStop still fires with the error.
	if len(rec.ticks) != 2 {
		t.Fatalf("later observer saw %d ticks, want 2", len(rec.ticks))
	}
	if rec.stops != 1 || !errors.Is(rec.stopErr, boom) {
		t.Fatalf("OnStop = %dx with err %v, want once with %v", rec.stops, rec.stopErr, boom)
	}
}

func TestErrStopEndsRunCleanly(t *testing.T) {
	sim := &fakeSim{}
	rec := &recorder{}
	rep, err := Run(context.Background(), sim, Config{Until: 10, Observers: []Observer{
		StopWhen(func(v View) bool { return v.Tick >= 4 }),
		rec,
	}})
	if err != nil {
		t.Fatalf("Run error = %v, want nil for ErrStop", err)
	}
	if rep.Tick != 4 || rep.Stopped {
		t.Fatalf("report = %+v, want Tick=4 Stopped=false", rep)
	}
	if rec.stops != 1 || rec.stopErr != nil {
		t.Fatalf("OnStop err = %v, want nil", rec.stopErr)
	}
}

func TestSimDeathStopsRun(t *testing.T) {
	sim := &fakeSim{dieAt: 5}
	rec := &recorder{}
	rep, err := Run(context.Background(), sim, Config{Until: 10, Observers: []Observer{rec}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Tick != 5 || !rep.Stopped {
		t.Fatalf("report = %+v, want Tick=5 Stopped=true", rep)
	}
	// Observers still see the fatal tick, flagged dead.
	last := rec.ticks[len(rec.ticks)-1]
	if len(rec.ticks) != 5 || last.Tick != 5 || last.Alive {
		t.Fatalf("final observed tick = %+v (of %d), want Tick=5 Alive=false", last, len(rec.ticks))
	}
}

func TestContextCancellationLeavesPartialRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sim := &fakeSim{}
	rec := &recorder{}
	rep, err := Run(ctx, sim, Config{Until: 1000, Observers: []Observer{
		Funcs{Tick: func(v View) error {
			if v.Tick == 2 {
				cancel()
			}
			return nil
		}},
		rec,
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// The tick that was in flight completed; nothing further ran, and the
	// report covers exactly the completed work.
	if rep.Tick != 2 || sim.steps != 2 {
		t.Fatalf("rep.Tick=%d steps=%d, want both 2", rep.Tick, sim.steps)
	}
	if rec.stops != 1 || !errors.Is(rec.stopErr, context.Canceled) {
		t.Fatalf("OnStop err = %v, want context.Canceled", rec.stopErr)
	}
}

func TestEveryNUsesAbsoluteTicks(t *testing.T) {
	sim := &fakeSim{}
	var fired []int
	_, err := Run(context.Background(), sim, Config{Start: 7, Until: 17, Observers: []Observer{
		EveryN{N: 5, Fn: func(v View) error { fired = append(fired, v.Tick); return nil }},
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A resumed run (Start 7) fires on the same absolute boundaries an
	// uninterrupted one would: 10 and 15, not 12 and 17.
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("EveryN fired at %v, want [10 15]", fired)
	}
}

func TestProgressReportsRelativeTicks(t *testing.T) {
	sim := &fakeSim{}
	type call struct{ done, total int }
	var calls []call
	_, err := Run(context.Background(), sim, Config{Start: 100, Until: 110, Observers: []Observer{
		&Progress{Every: 5, Fn: func(done, total int) { calls = append(calls, call{done, total}) }},
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []call{{5, 10}, {10, 10}, {10, 10}} // every 5, plus the stop flush
	if len(calls) != len(want) {
		t.Fatalf("Progress calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("Progress calls = %v, want %v", calls, want)
		}
	}
}

func TestCountTicksBatchesAndFlushes(t *testing.T) {
	sim := &fakeSim{}
	var adds []int64
	var total int64
	_, err := Run(context.Background(), sim, Config{Until: 10, Observers: []Observer{
		&CountTicks{Every: 4, Add: func(d int64) { adds = append(adds, d); total += d }},
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total != 10 {
		t.Fatalf("counted %d ticks, want 10", total)
	}
	want := []int64{4, 4, 2} // two full batches, remainder flushed at stop
	if len(adds) != len(want) || adds[0] != 4 || adds[1] != 4 || adds[2] != 2 {
		t.Fatalf("Add batches = %v, want %v", adds, want)
	}
}

func TestDeadlineStopsOnCheckBoundary(t *testing.T) {
	sim := &fakeSim{}
	rep, err := Run(context.Background(), sim, Config{Until: 1000, Observers: []Observer{
		&Deadline{Budget: 0, CheckEvery: 3}, // already expired at the first check
	}})
	if err != nil {
		t.Fatalf("Run error = %v, want nil (deadline is a clean stop)", err)
	}
	if rep.Tick != 3 || rep.Stopped {
		t.Fatalf("report = %+v, want Tick=3 Stopped=false", rep)
	}
}

func TestFuncsNilFieldsAreNoOps(t *testing.T) {
	sim := &fakeSim{}
	rep, err := Run(context.Background(), sim, Config{Until: 3, Observers: []Observer{Funcs{}}})
	if err != nil || rep.Tick != 3 {
		t.Fatalf("Run = (%+v, %v), want clean completion", rep, err)
	}
}

func TestTicksDrivesChipAndStopsEarly(t *testing.T) {
	c := chip.New(chip.DefaultParams(3, true, false))
	n := Ticks(c, nil, 10, nil)
	if n != 10 || c.Ticks() != 10 {
		t.Fatalf("Ticks ran %d (chip at %d), want 10", n, c.Ticks())
	}
	calls := 0
	n = Ticks(c, nil, 10, func(t int, rep chip.TickReport, acts []control.Action) bool {
		calls++
		if acts != nil {
			panic("acts must be nil without a controller")
		}
		return t < 3 // stop after the 4th tick
	})
	if n != 4 || calls != 4 {
		t.Fatalf("early stop ran %d ticks / %d calls, want 4", n, calls)
	}
	if c.Ticks() != 14 {
		t.Fatalf("chip tick counter = %d, want 14", c.Ticks())
	}
}

func TestLoopStopsEarly(t *testing.T) {
	if n := Loop(10, func(t int) bool { return t < 2 }); n != 3 {
		t.Fatalf("Loop ran %d steps, want 3", n)
	}
	if n := Loop(5, nilSafeStep()); n != 5 {
		t.Fatalf("Loop ran %d steps, want 5", n)
	}
}

func nilSafeStep() func(int) bool {
	return func(int) bool { return true }
}
