package trace

import (
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder("vdd", "errRate")
	r.Add(0, 0.8, 0.01)
	r.Add(1, 0.795, 0.02)
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	if r.Time(1) != 1 || r.Value(1, 0) != 0.795 {
		t.Fatal("sample access mismatch")
	}
	got := r.Column("errRate")
	if len(got) != 2 || got[0] != 0.01 || got[1] != 0.02 {
		t.Fatalf("column %v", got)
	}
	cols := r.Columns()
	if len(cols) != 2 || cols[0] != "vdd" {
		t.Fatalf("columns %v", cols)
	}
}

func TestRecorderPanicsOnColumnMismatch(t *testing.T) {
	r := NewRecorder("a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Add(0, 1.0)
}

func TestRecorderPanicsOnUnknownColumn(t *testing.T) {
	r := NewRecorder("a")
	r.Add(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Column("nope")
}

func TestNewRecorderPanicsWithoutColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder()
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder("v")
	r.Add(0.5, 0.8)
	r.Add(1.5, 0.75)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "time,v\n0.5,0.8\n1.5,0.75\n"
	if sb.String() != want {
		t.Fatalf("csv %q want %q", sb.String(), want)
	}
}

func TestColumnsCopyIsolated(t *testing.T) {
	r := NewRecorder("a", "b")
	cols := r.Columns()
	cols[0] = "mutated"
	if r.Columns()[0] != "a" {
		t.Fatal("Columns exposed internal state")
	}
}

func TestDownsample(t *testing.T) {
	r := NewRecorder("x")
	for i := 0; i < 10; i++ {
		r.Add(float64(i), float64(i)*2)
	}
	d := r.Downsample(3)
	if d.Len() != 4 { // samples 0,3,6,9
		t.Fatalf("downsampled len %d", d.Len())
	}
	if d.Time(1) != 3 || d.Value(1, 0) != 6 {
		t.Fatal("downsample kept wrong rows")
	}
	if r.Downsample(0).Len() != 10 {
		t.Fatal("k<=1 should copy all samples")
	}
}
