// Package trace records named time series during simulation runs and
// renders them as CSV or aligned text, supporting the paper's
// trace-style figures (supply voltage and error rate over time,
// Figs. 12 and 14).
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Recorder accumulates rows of (time, columns...) samples.
type Recorder struct {
	columns []string
	times   []float64
	rows    [][]float64
}

// NewRecorder creates a recorder with the given value column names (the
// time column is implicit).
func NewRecorder(columns ...string) *Recorder {
	if len(columns) == 0 {
		panic("trace: recorder needs at least one column")
	}
	return &Recorder{columns: append([]string(nil), columns...)}
}

// Columns returns the value column names.
func (r *Recorder) Columns() []string { return append([]string(nil), r.columns...) }

// Add appends one sample. The number of values must match the column
// count.
func (r *Recorder) Add(t float64, values ...float64) {
	if len(values) != len(r.columns) {
		panic(fmt.Sprintf("trace: %d values for %d columns", len(values), len(r.columns)))
	}
	r.times = append(r.times, t)
	r.rows = append(r.rows, append([]float64(nil), values...))
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.times) }

// Time returns the timestamp of sample i.
func (r *Recorder) Time(i int) float64 { return r.times[i] }

// Value returns column col of sample i.
func (r *Recorder) Value(i, col int) float64 { return r.rows[i][col] }

// Column returns the full series of one column by name. It panics on an
// unknown name.
func (r *Recorder) Column(name string) []float64 {
	for c, n := range r.columns {
		if n == name {
			out := make([]float64, len(r.rows))
			for i := range r.rows {
				out[i] = r.rows[i][c]
			}
			return out
		}
	}
	panic("trace: unknown column " + name)
}

// WriteCSV emits the series as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(r.columns, ",")); err != nil {
		return err
	}
	for i := range r.times {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%g", r.times[i])
		for _, v := range r.rows[i] {
			fmt.Fprintf(&sb, ",%g", v)
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Downsample returns a recorder keeping every k-th sample (useful when
// rendering long runs compactly). k <= 1 returns a copy.
func (r *Recorder) Downsample(k int) *Recorder {
	if k <= 1 {
		k = 1
	}
	out := NewRecorder(r.columns...)
	for i := 0; i < len(r.times); i += k {
		out.Add(r.times[i], r.rows[i]...)
	}
	return out
}
