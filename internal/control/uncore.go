package control

import (
	"fmt"

	"eccspec/internal/monitor"
	"eccspec/internal/policy"
	"eccspec/internal/variation"
)

// Uncore speculation is a natural extension the paper leaves on the
// table: its system scales only the core rails while "the uncore
// components, such as the L3 cache and memory controllers" stay at
// nominal (§IV-A4). The L3 is ECC-protected SRAM like the L2s, so the
// same mechanism applies — calibrate the L3's weakest line, give it a
// monitor, and run the floor/ceiling loop on the uncore rail.

// uncoreState holds the optional uncore-speculation extension's state.
type uncoreState struct {
	mon    Prober
	assign Assignment
	// UncoreDomainID tags uncore actions in Tick results.
}

// UncoreDomainID is the Action.Domain value used for uncore decisions.
const UncoreDomainID = -1

// AttachUncore enables uncore speculation: sweep the shared L3 for its
// weakest line, de-configure it, and drive the uncore rail from its
// correctable-error rate alongside the core domains. Call after New (or
// NewFirmwareApproximation) and before the control loop starts.
func (s *System) AttachUncore() (Assignment, error) {
	nominal := s.Chip.P.Point.NominalVdd
	for v := nominal; v >= s.Cfg.CalibFloorV; v -= s.Cfg.CalibStepV {
		set, way, found := s.sweepCache(s.Chip.L3, v)
		if !found {
			continue
		}
		a := Assignment{Domain: UncoreDomainID, Core: -1, Kind: variation.KindL3,
			Set: set, Way: way, OnsetV: v}
		mon := monitor.New(s.Chip.L3, monitor.Config{})
		mon.Activate(set, way)
		s.uncore = &uncoreState{mon: mon, assign: a}
		s.bindPolicyDomain(UncoreDomainID, a, s.Chip.UncoreRail)
		return a, nil
	}
	return Assignment{}, fmt.Errorf("control: no correctable errors found in the L3 above %.3f V",
		s.Cfg.CalibFloorV)
}

// UncoreAssignment returns the uncore extension's target line.
func (s *System) UncoreAssignment() (Assignment, bool) {
	if s.uncore == nil {
		return Assignment{}, false
	}
	return s.uncore.assign, true
}

// tickUncore runs one controller iteration for the uncore rail; it
// mirrors the per-domain logic in Tick.
func (s *System) tickUncore() (Action, bool) {
	if s.uncore == nil {
		return Action{}, false
	}
	mon := s.uncore.mon
	rail := s.Chip.UncoreRail
	mon.ProbeN(s.Cfg.ProbesPerTick, s.Chip.LastUncoreEffective())
	act := Action{Domain: UncoreDomainID}
	if mon.TakeEmergency() {
		act.Kind = Emergency
		act.ErrorRate = mon.ErrorRate()
		rail.StepUp(s.Cfg.EmergencySteps)
		mon.ResetCounters()
	} else if acc, errs := mon.Counters(); acc >= s.Cfg.DecisionProbes {
		rate := mon.ErrorRate()
		act.ErrorRate = rate
		act.Kind = s.applyDecision(rail, s.pol.Decide(policy.Input{
			Domain:    UncoreDomainID,
			Tick:      s.Chip.Ticks(),
			ErrorRate: rate,
			Accesses:  acc,
			Errors:    errs,
			TargetV:   rail.Target(),
			NominalV:  s.Chip.P.Point.NominalVdd,
			StepV:     rail.Params().StepV,
		}))
		mon.ResetCounters()
	} else {
		act.Kind = Pending
		act.ErrorRate = mon.ErrorRate()
	}
	act.NewTarget = rail.Target()
	return act, true
}
