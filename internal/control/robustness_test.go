package control

import (
	"testing"

	"eccspec/internal/workload"
)

// TestEmergencyPathUnderSuddenNoise: after converging with a quiet
// domain, unleash the resonance-matched voltage virus on the rail
// sibling. The effective voltage collapses into the deep error region;
// the controller must respond (emergency interrupt or a stream of
// step-ups), recover the rail, and keep both cores alive.
func TestEmergencyPathUnderSuddenNoise(t *testing.T) {
	c, s := testSystem(21)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		c.Step()
		s.Tick()
	}
	settled := c.Domains[0].Rail.Target()

	// Sudden worst-case noise on the shared rail.
	c.Cores[1].SetWorkload(workload.Virus(8, c.P.Point.FrequencyHz), 21)
	emergencies, ups := 0, 0
	for i := 0; i < 800; i++ {
		c.Step()
		for _, a := range s.Tick() {
			if a.Domain != 0 {
				continue
			}
			switch a.Kind {
			case Emergency:
				emergencies++
			case StepUp:
				ups++
			}
		}
	}
	if emergencies+ups == 0 {
		t.Fatal("controller never raised the rail under resonant noise")
	}
	after := c.Domains[0].Rail.Target()
	if after <= settled {
		t.Fatalf("rail did not rise under noise: %.3f -> %.3f", settled, after)
	}
	if !c.Cores[0].Alive() || !c.Cores[1].Alive() {
		t.Fatal("a core died despite the speculation safety net")
	}
}

// TestSpeculationSurvivesWorkloadChurn: cycle every core through a
// rotating set of benchmarks mid-flight; the controller must keep all
// cores alive throughout (the paper ran benchmarks back-to-back to
// verify exactly this, §IV-C).
func TestSpeculationSurvivesWorkloadChurn(t *testing.T) {
	c, s := testSystem(22)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	rotation := []string{"mcf", "crafty", "swim", "jbb-8wh", "crc", "stress-test"}
	for phase := 0; phase < len(rotation); phase++ {
		p, ok := workload.ByName(rotation[phase])
		if !ok {
			t.Fatalf("unknown benchmark %s", rotation[phase])
		}
		for _, co := range c.Cores {
			co.SetWorkload(p, 22)
		}
		for i := 0; i < 400; i++ {
			c.Step()
			s.Tick()
		}
		for _, co := range c.Cores {
			if !co.Alive() {
				t.Fatalf("core %d died during %s", co.ID, rotation[phase])
			}
		}
	}
}

// TestEmergencyRaisesByLargerIncrement: a forced emergency must move the
// rail by EmergencySteps at once, not the usual single step.
func TestEmergencyRaisesByLargerIncrement(t *testing.T) {
	c, s := testSystem(23)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	d := c.Domains[0]
	a, _ := s.Assignment(d.ID)
	// Park the rail deep in the error region so probes exceed the
	// emergency ceiling immediately.
	d.Rail.SetTarget(a.OnsetV - 0.060)
	before := d.Rail.Target()
	c.Step()
	acts := s.Tick()
	var hit bool
	for _, act := range acts {
		if act.Domain == d.ID && act.Kind == Emergency {
			hit = true
		}
	}
	if !hit {
		t.Fatal("no emergency action deep below onset")
	}
	want := before + float64(s.Cfg.EmergencySteps)*d.Rail.Params().StepV
	if got := d.Rail.Target(); got < want-1e-9 {
		t.Fatalf("emergency raised to %.3f, want >= %.3f", got, want)
	}
}

// TestMonitoredLineInvisibleToWorkload: the de-configured monitor line
// must never be allocated for workload data while speculation runs.
func TestMonitoredLineInvisibleToWorkload(t *testing.T) {
	c, s := testSystem(24)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), 24)
	}
	for i := 0; i < 500; i++ {
		c.Step()
		s.Tick()
	}
	for d := range c.Domains {
		a, _ := s.Assignment(d)
		cacheUnderTest := c.Cores[a.Core].CacheOf(a.Kind)
		if !cacheUnderTest.LineDisabled(a.Set, a.Way) {
			t.Fatalf("domain %d: monitored line re-entered service", d)
		}
	}
}
