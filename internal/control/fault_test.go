package control

import (
	"strings"
	"testing"

	"eccspec/internal/chip"
	"eccspec/internal/monitor"
)

// converge runs the closed loop for n ticks.
func converge(c *chip.Chip, s *System, n int) {
	for i := 0; i < n; i++ {
		c.Step()
		s.Tick()
	}
}

// TestFaultStuckZeroFailsSafeWhileSiblingsConverge breaks domain 0's
// monitor datapath (probes run, errors stuck at zero): the firmware
// self-test cross-check must fail the domain safe — rail back to nominal
// Vdd, monitor released — while every sibling domain keeps speculating
// below nominal.
func TestFaultStuckZeroFailsSafeWhileSiblingsConverge(t *testing.T) {
	c, s := testSystem(31)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	converge(c, s, 1200)

	mon, ok := s.ActiveMonitor(0).(*monitor.Monitor)
	if !ok {
		t.Fatal("domain 0 has no hardware monitor")
	}
	mon.SetFault(monitor.FaultStuckZero)

	var failed bool
	for i := 0; i < 50 && !failed; i++ {
		c.Step()
		for _, a := range s.Tick() {
			if a.Domain == 0 && a.Kind == FailSafe {
				failed = true
			}
		}
	}
	if !failed {
		t.Fatal("self-test never failed the stuck-at-zero domain safe")
	}
	reason, ok := s.FailedSafe(0)
	if !ok || !strings.Contains(reason, "self-test") {
		t.Fatalf("FailedSafe(0) = %q, %v; want a self-test reason", reason, ok)
	}
	if got := s.FailSafeDomains(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("FailSafeDomains() = %v, want [0]", got)
	}
	nominal := c.P.Point.NominalVdd
	if got := c.Domains[0].Rail.Target(); got != nominal {
		t.Fatalf("failed domain rail at %.3f V, want nominal %.3f V", got, nominal)
	}
	if s.ActiveMonitor(0) != nil {
		t.Fatal("failed domain still holds a monitor")
	}

	// Siblings must be untouched: still monitored, still below nominal.
	converge(c, s, 400)
	for _, d := range c.Domains[1:] {
		if s.ActiveMonitor(d.ID) == nil {
			t.Fatalf("sibling domain %d lost its monitor", d.ID)
		}
		if _, failed := s.FailedSafe(d.ID); failed {
			t.Fatalf("sibling domain %d failed safe", d.ID)
		}
		if got := d.Rail.Target(); got >= nominal {
			t.Fatalf("sibling domain %d no longer speculating: %.3f V", d.ID, got)
		}
	}
	for _, co := range c.Cores {
		if !co.Alive() {
			t.Fatalf("core %d died", co.ID)
		}
	}
}

// TestFaultSensorDropoutTripsWatchdog kills a domain's sensor outright
// (probes do nothing, counters freeze): the stall watchdog must fail the
// domain safe within its configured tick budget.
func TestFaultSensorDropoutTripsWatchdog(t *testing.T) {
	c, s := testSystem(32)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	converge(c, s, 400)

	mon, ok := s.ActiveMonitor(1).(*monitor.Monitor)
	if !ok {
		t.Fatal("domain 1 has no hardware monitor")
	}
	mon.SetFault(monitor.FaultDropout)

	deadline := s.Cfg.WatchdogStalledTicks + 5
	var failedAt int
	for i := 1; i <= deadline && failedAt == 0; i++ {
		c.Step()
		for _, a := range s.Tick() {
			if a.Domain == 1 && a.Kind == FailSafe {
				failedAt = i
			}
		}
	}
	if failedAt == 0 {
		t.Fatalf("watchdog never fired within %d ticks", deadline)
	}
	if failedAt < s.Cfg.WatchdogStalledTicks {
		t.Fatalf("watchdog fired after %d ticks, before its %d-tick budget",
			failedAt, s.Cfg.WatchdogStalledTicks)
	}
	reason, ok := s.FailedSafe(1)
	if !ok || !strings.Contains(reason, "stalled") {
		t.Fatalf("FailedSafe(1) = %q, %v; want a stall reason", reason, ok)
	}
	if got := c.Domains[1].Rail.Target(); got != c.P.Point.NominalVdd {
		t.Fatalf("stalled domain rail at %.3f V, want nominal", got)
	}
}

// TestFaultRecalibrationRestoresFailedDomain: after a fail-safe, a
// recalibration pass must clear the fault record and resume speculation
// on the domain.
func TestFaultRecalibrationRestoresFailedDomain(t *testing.T) {
	c, s := testSystem(33)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	converge(c, s, 400)
	mon := s.ActiveMonitor(0).(*monitor.Monitor)
	mon.SetFault(monitor.FaultStuckZero)
	converge(c, s, 50)
	if _, failed := s.FailedSafe(0); !failed {
		t.Fatal("domain 0 did not fail safe")
	}
	mon.SetFault(monitor.FaultNone) // field replacement / fault cleared

	if _, err := s.CalibrateDomain(c.Domains[0]); err != nil {
		t.Fatal(err)
	}
	if _, failed := s.FailedSafe(0); failed {
		t.Fatal("recalibration did not clear the fail-safe record")
	}
	if s.ActiveMonitor(0) == nil {
		t.Fatal("recalibration did not reactivate a monitor")
	}
	converge(c, s, 600)
	if got := c.Domains[0].Rail.Target(); got >= c.P.Point.NominalVdd {
		t.Fatalf("recalibrated domain not speculating: %.3f V", got)
	}
}

// TestFaultPDNTransientServicedByEmergency injects a 50 mV regulator
// transient under a converged rail: the monitor's emergency interrupt
// must fire and be serviced ahead of the regular decision path — the
// same tick's action already carries the EmergencySteps-sized raise —
// and the domain must ride out the transient without failing safe.
func TestFaultPDNTransientServicedByEmergency(t *testing.T) {
	c, s := testSystem(34)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	converge(c, s, 1200)

	d := c.Domains[0]
	d.Rail.SetDisturbance(0.050)
	var hit bool
	for i := 0; i < 100 && !hit; i++ {
		before := d.Rail.Target()
		c.Step()
		for _, a := range s.Tick() {
			if a.Domain != 0 || a.Kind != Emergency {
				continue
			}
			hit = true
			want := before + float64(s.Cfg.EmergencySteps)*d.Rail.Params().StepV
			if a.NewTarget < want-1e-9 {
				t.Fatalf("emergency raised to %.3f V in its own tick, want >= %.3f V",
					a.NewTarget, want)
			}
		}
	}
	if !hit {
		t.Fatal("no emergency interrupt under a 50 mV transient")
	}
	d.Rail.SetDisturbance(0)

	converge(c, s, 600)
	if _, failed := s.FailedSafe(0); failed {
		t.Fatal("transient must not fail the domain safe")
	}
	if s.ActiveMonitor(0) == nil {
		t.Fatal("domain lost its monitor after the transient")
	}
	for _, co := range c.Cores {
		if !co.Alive() {
			t.Fatalf("core %d died during the transient", co.ID)
		}
	}
	if s.Emergencies() == 0 {
		t.Fatal("emergency counter did not record the event")
	}
}
