package control

import (
	"testing"

	"eccspec/internal/chip"
	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

// testSystem builds a low-voltage scaled chip with idle workloads and a
// control system.
func testSystem(seed uint64) (*chip.Chip, *System) {
	p := chip.DefaultParams(seed, true, false)
	// A smaller shared L3 keeps the uncore calibration sweeps quick;
	// its weak-line statistics are not under test here.
	p.Hier.L3.Sets = 256
	p.Hier.L3.Ways = 16
	c := chip.New(p)
	for _, co := range c.Cores {
		co.SetWorkload(workload.Idle(), seed)
	}
	return c, New(c, DefaultConfig())
}

func TestMonitorsProvisionedEverywhere(t *testing.T) {
	c, s := testSystem(1)
	for _, co := range c.Cores {
		for _, kind := range []variation.Kind{variation.KindL2D, variation.KindL2I} {
			mon := s.Monitor(co.ID, kind)
			if mon == nil {
				t.Fatalf("no monitor for core %d %s", co.ID, kind)
			}
			if mon.Active() {
				t.Fatalf("monitor core %d %s active before calibration", co.ID, kind)
			}
		}
	}
}

func TestCalibrateDomainFindsWeakestLine(t *testing.T) {
	c, s := testSystem(2)
	d := c.Domains[0]
	a, err := s.CalibrateDomain(d)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: the weakest line across the domain's four L2 arrays.
	bestV := -1.0
	var bestCore int
	var bestKind variation.Kind
	var bestSet, bestWay int
	for _, id := range d.CoreIDs {
		co := c.Cores[id]
		for _, kind := range []variation.Kind{variation.KindL2D, variation.KindL2I} {
			set, way, p := co.CacheOf(kind).Array().WeakestLine()
			if p.Vmax() > bestV {
				bestV = p.Vmax()
				bestCore, bestKind, bestSet, bestWay = id, kind, set, way
			}
		}
	}
	if a.Core != bestCore || a.Kind != bestKind || a.Set != bestSet || a.Way != bestWay {
		t.Fatalf("calibration picked %v; ground-truth weakest is core %d %s set %d way %d (%.3f V)",
			a, bestCore, bestKind, bestSet, bestWay, bestV)
	}
	// Onset voltage must be within a few ramp widths of the line's
	// actual Vmax (detection with 4 reads/line fires ~2.5 widths above).
	if a.OnsetV > bestV+0.045 || a.OnsetV < bestV-0.04 {
		t.Fatalf("onset %.3f V far from weakest cell Vcrit %.3f V", a.OnsetV, bestV)
	}
}

func TestCalibrateActivatesAndDisables(t *testing.T) {
	c, s := testSystem(3)
	as, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != len(c.Domains) {
		t.Fatalf("%d assignments for %d domains", len(as), len(c.Domains))
	}
	for _, a := range as {
		mon := s.ActiveMonitor(a.Domain)
		if mon == nil || !mon.Active() {
			t.Fatalf("domain %d has no active monitor", a.Domain)
		}
		set, way := mon.Target()
		if set != a.Set || way != a.Way {
			t.Fatalf("monitor target mismatch for %v", a)
		}
		co := c.Cores[a.Core]
		if !co.CacheOf(a.Kind).LineDisabled(a.Set, a.Way) {
			t.Fatalf("assigned line not de-configured: %v", a)
		}
		got, ok := s.Assignment(a.Domain)
		if !ok || got != a {
			t.Fatalf("Assignment lookup mismatch for domain %d", a.Domain)
		}
	}
}

func TestRecalibrationReleasesOldLine(t *testing.T) {
	c, s := testSystem(4)
	d := c.Domains[0]
	a1, err := s.CalibrateDomain(d)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.CalibrateDomain(d)
	if err != nil {
		t.Fatal(err)
	}
	// Same chip, same age: recalibration finds the same line, and the
	// intermediate deactivation must not leak a disabled line.
	if a1.Core != a2.Core || a1.Set != a2.Set || a1.Way != a2.Way {
		t.Fatalf("recalibration drifted: %v vs %v", a1, a2)
	}
	co := c.Cores[a2.Core]
	if co.CacheOf(a2.Kind).DisabledLines() != 1 {
		t.Fatalf("%d disabled lines after recalibration, want 1",
			co.CacheOf(a2.Kind).DisabledLines())
	}
}

func TestTickConvergesToErrorBand(t *testing.T) {
	c, s := testSystem(5)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// Run the control loop until the rails settle.
	for i := 0; i < 1500; i++ {
		c.Step()
		s.Tick()
	}
	cfg := s.Cfg
	for _, d := range c.Domains {
		a, _ := s.Assignment(d.ID)
		target := d.Rail.Target()
		if target >= c.P.Point.NominalVdd {
			t.Fatalf("domain %d never speculated below nominal", d.ID)
		}
		// Converged voltage must sit near where the monitored line's
		// error probability lies inside [floor, ceiling].
		arr := c.Cores[a.Core].CacheOf(a.Kind).Array()
		veff := d.LastEffective()
		p := arr.FlipProbability(a.Set, a.Way, veff)
		if p < cfg.FloorRate/20 || p > cfg.CeilRate*20 {
			t.Fatalf("domain %d settled at %v (eff %v) where line error prob is %v",
				d.ID, target, veff, p)
		}
	}
	// No core may have died along the way.
	for _, co := range c.Cores {
		if !co.Alive() {
			t.Fatalf("core %d crashed during controlled speculation", co.ID)
		}
	}
}

func TestTickRaisesVoltageUnderNoise(t *testing.T) {
	// After convergence with idle neighbours, waking a heavy workload
	// on the domain raises droop; the controller must push the rail up.
	c, s := testSystem(6)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		c.Step()
		s.Tick()
	}
	before := c.Domains[0].Rail.Target()
	c.Cores[0].SetWorkload(workload.StressTest(), 6)
	c.Cores[1].SetWorkload(workload.StressTest(), 6)
	for i := 0; i < 800; i++ {
		c.Step()
		s.Tick()
	}
	after := c.Domains[0].Rail.Target()
	if after <= before {
		t.Fatalf("rail did not rise under load: %v -> %v", before, after)
	}
	if !c.Cores[0].Alive() || !c.Cores[1].Alive() {
		t.Fatal("cores crashed under load transition")
	}
}

func TestTickSkipsUncalibratedDomains(t *testing.T) {
	c, s := testSystem(7)
	c.Step()
	if acts := s.Tick(); len(acts) != 0 {
		t.Fatalf("actions for uncalibrated domains: %v", acts)
	}
}

func TestActionKindStrings(t *testing.T) {
	want := map[ActionKind]string{Hold: "hold", StepDown: "down", StepUp: "up",
		Emergency: "emergency", Pending: "pending", ActionKind(42): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d -> %q want %q", int(k), k.String(), s)
		}
	}
}

func TestAssignmentString(t *testing.T) {
	a := Assignment{Domain: 1, Core: 3, Kind: variation.KindL2I, Set: 9, Way: 2, OnsetV: 0.695}
	want := "domain 1 -> core 3 L2I set 9 way 2 (onset 0.695 V)"
	if a.String() != want {
		t.Fatalf("got %q", a.String())
	}
}

func TestCalibrateFailsWhenNoErrorsAboveFloor(t *testing.T) {
	c, s := testSystem(8)
	s.Cfg.CalibFloorV = 0.790 // nothing errors that close to nominal
	if _, err := s.CalibrateDomain(c.Domains[0]); err == nil {
		t.Fatal("expected calibration failure with impossible floor")
	}
}

func BenchmarkCalibrateDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, s := testSystem(uint64(i))
		if _, err := s.CalibrateDomain(c.Domains[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControlTick(b *testing.B) {
	c, s := testSystem(42)
	if _, err := s.Calibrate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
		s.Tick()
	}
}
