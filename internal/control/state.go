package control

// Checkpoint support: the control system's mutable state is which line
// each domain's speculation is keyed to (the assignment), the active
// monitor's counters, and the last observed error rates. Restoring
// re-activates the monitors directly from the assignments — no
// calibration sweep runs, so a restore is cheap and consumes no
// randomness.

import (
	"encoding/json"
	"fmt"
	"sort"

	"eccspec/internal/monitor"
)

// DomainControlState is one domain's controller state: its calibrated
// assignment, the active monitor's counters, and the telemetry rate.
type DomainControlState struct {
	Assignment Assignment    `json:"assignment"`
	Monitor    monitor.State `json:"monitor"`
	LastRate   float64       `json:"last_rate,omitempty"`
}

// State is the control system's full mutable state. Domains holds one
// entry per *calibrated* domain (uncalibrated domains have nothing to
// restore); Uncore is present when the uncore-speculation extension was
// attached.
type State struct {
	Domains []DomainControlState `json:"domains,omitempty"`
	Uncore  *DomainControlState  `json:"uncore,omitempty"`
	// PolicyState is the speculation policy's opaque mutable state.
	// Stateless policies (the default paper ladder) capture nil, so
	// default-policy checkpoints keep their historical shape.
	PolicyState json.RawMessage `json:"policy_state,omitempty"`
	// StableHolds is the adaptive-fidelity stability counter per domain.
	// Populated only on adaptive-fidelity chips, so full-fidelity blobs
	// keep their shape.
	StableHolds map[int]int `json:"stable_holds,omitempty"`
}

// CaptureState snapshots the control system. It errors when a domain's
// active probing agent is not the hardware ECC monitor (the firmware
// self-test approximation holds scheduling state that a checkpoint does
// not carry).
func (s *System) CaptureState() (State, error) {
	var st State
	ids := make([]int, 0, len(s.assigns))
	for id := range s.assigns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := s.assigns[id]
		mon, ok := s.active[id].(*monitor.Monitor)
		if !ok {
			return State{}, fmt.Errorf("control: domain %d probing agent %T is not checkpointable", id, s.active[id])
		}
		st.Domains = append(st.Domains, DomainControlState{
			Assignment: a,
			Monitor:    mon.CaptureState(),
			LastRate:   s.lastRate[id],
		})
	}
	if s.uncore != nil {
		mon, ok := s.uncore.mon.(*monitor.Monitor)
		if !ok {
			return State{}, fmt.Errorf("control: uncore probing agent %T is not checkpointable", s.uncore.mon)
		}
		st.Uncore = &DomainControlState{
			Assignment: s.uncore.assign,
			Monitor:    mon.CaptureState(),
		}
	}
	blob, err := s.pol.CaptureState()
	if err != nil {
		return State{}, fmt.Errorf("control: capture %s policy state: %w", s.pol.Name(), err)
	}
	st.PolicyState = blob
	if s.Chip.AdaptiveFidelity() && len(s.stableHolds) > 0 {
		st.StableHolds = make(map[int]int, len(s.stableHolds))
		for id, n := range s.stableHolds {
			st.StableHolds[id] = n
		}
	}
	return st, nil
}

// RestoreState re-establishes a captured control state on a freshly
// provisioned system: each recorded assignment's monitor is activated on
// its line (de-configuring it, as calibration did) and its counters are
// restored. Any currently active monitors are deactivated first.
func (s *System) RestoreState(st State) error {
	for id, mon := range s.active {
		mon.Deactivate()
		delete(s.active, id)
		delete(s.assigns, id)
		delete(s.lastRate, id)
	}
	clear(s.failed)
	clear(s.stalled)
	s.uncore = nil
	for _, ds := range st.Domains {
		a := ds.Assignment
		if a.Domain < 0 || a.Domain >= len(s.Chip.Domains) {
			return fmt.Errorf("control: state assignment for unknown domain %d", a.Domain)
		}
		p := s.probers[monKey{a.Core, a.Kind}]
		if p == nil {
			return fmt.Errorf("control: no provisioned monitor for core %d %s", a.Core, a.Kind)
		}
		mon, ok := p.(*monitor.Monitor)
		if !ok {
			return fmt.Errorf("control: probing agent %T for core %d %s is not checkpointable", p, a.Core, a.Kind)
		}
		if cfg := mon.Cache().Config(); a.Set < 0 || a.Set >= cfg.Sets || a.Way < 0 || a.Way >= cfg.Ways {
			return fmt.Errorf("control: assignment %s out of range for %s (%dx%d)", a, cfg.Name, cfg.Sets, cfg.Ways)
		}
		mon.Activate(a.Set, a.Way)
		mon.RestoreState(ds.Monitor)
		s.active[a.Domain] = mon
		s.assigns[a.Domain] = a
		s.bindPolicyDomain(a.Domain, a, s.Chip.Domains[a.Domain].Rail)
		if ds.LastRate != 0 {
			s.lastRate[a.Domain] = ds.LastRate
		}
	}
	if st.Uncore != nil {
		a := st.Uncore.Assignment
		if cfg := s.Chip.L3.Config(); a.Set < 0 || a.Set >= cfg.Sets || a.Way < 0 || a.Way >= cfg.Ways {
			return fmt.Errorf("control: uncore assignment %s out of range for %s (%dx%d)", a, cfg.Name, cfg.Sets, cfg.Ways)
		}
		mon := monitor.New(s.Chip.L3, monitor.Config{})
		mon.Activate(a.Set, a.Way)
		mon.RestoreState(st.Uncore.Monitor)
		s.uncore = &uncoreState{mon: mon, assign: a}
		s.bindPolicyDomain(UncoreDomainID, a, s.Chip.UncoreRail)
	}
	// Bind-then-restore: BindDomain re-derived every characterized
	// operating point above, and the overlay re-applies the mutable state
	// (a guardband freeze, tscache accounting) on top of it.
	if err := s.pol.RestoreState(st.PolicyState); err != nil {
		return fmt.Errorf("control: restore %s policy state: %w", s.pol.Name(), err)
	}
	clear(s.stableHolds)
	for id, n := range st.StableHolds {
		s.stableHolds[id] = n
	}
	return nil
}
