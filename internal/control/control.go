// Package control implements the centralized voltage control system
// (§III-B) and the calibration procedure (§III-C) of the paper's
// ECC-guided voltage speculation design.
//
// One controller instance runs per chip, standing in for the service
// microcontroller. After every chip tick it:
//
//  1. lets each voltage domain's active ECC monitor perform its probe
//     cycles at the domain's current effective voltage,
//  2. services any latched emergency interrupt with a large voltage
//     increment, and otherwise
//  3. once enough probes have accumulated, compares the observed
//     correctable-error rate against a floor and a ceiling: above the
//     ceiling the domain's rail steps up 5 mV, below the floor it steps
//     down 5 mV, in between it holds.
//
// Keeping every domain *inside* a band of persistent-but-benign
// correctable errors is the paper's core idea: the error rate of the
// domain's weakest line is a live measurement of remaining margin, so
// the supply tracks process variation, workload swings, and even
// resonant voltage noise without any timing-error recovery hardware.
//
// Calibration finds the line to monitor. It progressively lowers the
// probe voltage from nominal in 5 mV steps, sweeping every line of every
// L2 cache in the domain (data and instruction sides, as in Fig. 6's
// instruction-template sweep) until the first correctable error appears.
// That line — the weakest in the domain — is handed to its cache's ECC
// monitor and de-configured from normal allocation.
package control

import (
	"fmt"
	"sort"

	"eccspec/internal/cache"
	"eccspec/internal/chip"
	"eccspec/internal/monitor"
	"eccspec/internal/pdn"
	"eccspec/internal/policy"
	"eccspec/internal/sram"
	"eccspec/internal/variation"
)

// Config tunes the control system.
type Config struct {
	// FloorRate and CeilRate bound the target correctable-error rate
	// (paper: 1% and 5%).
	FloorRate float64
	CeilRate  float64
	// EmergencySteps is the rail increment used to service an
	// emergency interrupt (a "larger increment", §III-B).
	EmergencySteps int
	// ProbesPerTick is how many self-test cycles each active monitor
	// runs per control tick (hardware probes use idle cache cycles).
	ProbesPerTick int
	// DecisionProbes is the minimum accumulated accesses before a
	// floor/ceiling decision; it sets the rate resolution (1/floor at
	// least).
	DecisionProbes uint64
	// CalibStepV is the sweep's voltage decrement (paper: 5 mV).
	CalibStepV float64
	// CalibReadsPerLine is how many reads per line each sweep pass
	// performs.
	CalibReadsPerLine int
	// CalibFloorV aborts a sweep that somehow finds no errors before
	// reaching clearly unsafe territory.
	CalibFloorV float64
	// WatchdogStalledTicks is how many consecutive ticks a domain's
	// monitor may leave its access counter frozen before the controller
	// declares the sensor dead and fails the domain safe. A healthy
	// monitor advances its counter by ProbesPerTick every tick, so the
	// watchdog never fires without a fault. <= 0 disables it.
	WatchdogStalledTicks int
	// FidelityStableWindows is how many consecutive in-band (Hold)
	// decisions every speculating domain must accumulate before an
	// adaptive-fidelity chip may fast-forward (chip.EnterFastForward).
	// Irrelevant unless the chip has adaptive fidelity enabled; <= 0
	// falls back to the default.
	FidelityStableWindows int
}

// DefaultConfig returns the paper's operating parameters.
func DefaultConfig() Config {
	return Config{
		FloorRate:             0.01,
		CeilRate:              0.05,
		EmergencySteps:        5,
		ProbesPerTick:         50,
		DecisionProbes:        200,
		CalibStepV:            0.005,
		CalibReadsPerLine:     4,
		CalibFloorV:           0.350,
		WatchdogStalledTicks:  10,
		FidelityStableWindows: 4,
	}
}

// Assignment records which line a domain's speculation is keyed to.
type Assignment struct {
	Domain int
	Core   int
	Kind   variation.Kind
	Set    int
	Way    int
	// OnsetV is the sweep voltage at which the line first reported a
	// correctable error.
	OnsetV float64
}

// String renders the assignment for logs.
func (a Assignment) String() string {
	return fmt.Sprintf("domain %d -> core %d %s set %d way %d (onset %.3f V)",
		a.Domain, a.Core, a.Kind, a.Set, a.Way, a.OnsetV)
}

// ActionKind classifies a controller decision.
type ActionKind int

const (
	// Hold: error rate inside the band; no change.
	Hold ActionKind = iota
	// StepDown: rate below floor; rail lowered one step.
	StepDown
	// StepUp: rate above ceiling; rail raised one step.
	StepUp
	// Emergency: interrupt serviced; rail raised EmergencySteps.
	Emergency
	// Pending: not enough probes accumulated for a decision.
	Pending
	// FailSafe: the domain's monitor failed its self test or stalled;
	// the controller reverted the rail to nominal Vdd and stopped
	// speculating on this domain. Other domains keep speculating.
	FailSafe
)

// String names the action.
func (k ActionKind) String() string {
	switch k {
	case Hold:
		return "hold"
	case StepDown:
		return "down"
	case StepUp:
		return "up"
	case Emergency:
		return "emergency"
	case Pending:
		return "pending"
	case FailSafe:
		return "fail-safe"
	default:
		return "unknown"
	}
}

// Action is one domain's outcome for one controller tick.
type Action struct {
	Domain    int
	Kind      ActionKind
	ErrorRate float64
	NewTarget float64
}

// Prober is the probing-agent surface the controller drives: the
// hardware ECC monitor (monitor.Monitor) and its firmware self-test
// approximation (monitor.FirmwareSelfTest, the paper's §IV methodology)
// both implement it.
type Prober interface {
	Activate(set, way int)
	Deactivate()
	Active() bool
	Target() (set, way int)
	Probe(v float64) bool
	ProbeN(n int, v float64) int
	Counters() (accesses, errors uint64)
	ErrorRate() float64
	ResetCounters()
	TakeEmergency() bool
}

var (
	_ Prober = (*monitor.Monitor)(nil)
	_ Prober = (*monitor.FirmwareSelfTest)(nil)
)

// overheadReporter is implemented by probers whose probing steals core
// cycles (the firmware self-test); the controller charges the cost to
// the core that hosts the probe.
type overheadReporter interface {
	TakeOverheadSeconds() float64
}

// selfTester is implemented by probers with a built-in self test
// (monitor.Monitor). The controller cross-checks it whenever it reads a
// decision's worth of counters; probers without one are trusted.
type selfTester interface {
	SelfTest() bool
}

// System is the per-chip voltage control system. The shared machinery —
// probing, emergency servicing, the stall watchdog, self-test
// cross-checks and fail-safe — lives here; what to do with a completed
// decision window is delegated to a speculation policy
// (internal/policy). The default is the paper's floor/ceiling ladder
// built from Cfg.FloorRate/CeilRate, which reproduces the pre-registry
// controller exactly.
type System struct {
	Chip *chip.Chip
	Cfg  Config

	// pol decides what to do with each completed decision window.
	pol policy.Policy

	// probers holds the provisioned probing agent for every L2 cache
	// controller, keyed by (core, kind); only one per domain is active.
	probers  map[monKey]Prober
	active   map[int]Prober
	assigns  map[int]Assignment
	lastRate map[int]float64
	uncore   *uncoreState

	// failed records domains the controller has reverted to nominal
	// after a monitor fault, with the reason; stalled counts consecutive
	// frozen-counter ticks per domain for the watchdog; emergencies
	// counts serviced emergency interrupts. All three are process-local
	// telemetry, not checkpoint state.
	failed      map[int]string
	stalled     map[int]int
	emergencies int

	// stableHolds counts, per domain (UncoreDomainID included), the
	// consecutive in-band (Hold) decisions since the last control-loop
	// event. Maintained only when the chip has adaptive fidelity
	// enabled; once every speculating domain has been stable for
	// Cfg.FidelityStableWindows decisions, the chip may fast-forward.
	stableHolds map[int]int

	// acts is Tick's scratch, reused so the steady-state loop
	// allocates nothing.
	acts []Action
}

type monKey struct {
	core int
	kind variation.Kind
}

// New provisions the control system on a chip: a hardware ECC monitor on
// every L2 instruction and data cache controller, all initially inactive.
func New(c *chip.Chip, cfg Config) *System {
	s := newSystem(c, cfg)
	for _, co := range c.Cores {
		s.probers[monKey{co.ID, variation.KindL2D}] = monitor.New(co.Hier.L2D, monitor.Config{})
		s.probers[monKey{co.ID, variation.KindL2I}] = monitor.New(co.Hier.L2I, monitor.Config{})
	}
	return s
}

// NewFirmwareApproximation provisions the control system with firmware
// self-test agents instead of hardware monitors — the configuration the
// paper actually measured (§IV): real Itanium silicon has no ECC
// monitor, so the second hardware thread of each core runs the Fig. 7
// targeted test continuously. Probing steals core cycles, which Tick
// charges to the hosting core.
func NewFirmwareApproximation(c *chip.Chip, cfg Config) *System {
	s := newSystem(c, cfg)
	for _, co := range c.Cores {
		s.probers[monKey{co.ID, variation.KindL2D}] = monitor.NewFirmwareSelfTest(co.Hier, true, monitor.Config{})
		s.probers[monKey{co.ID, variation.KindL2I}] = monitor.NewFirmwareSelfTest(co.Hier, false, monitor.Config{})
	}
	return s
}

// NewWithPolicy provisions the control system like New but drives the
// given speculation policy instead of the default paper ladder. A nil
// policy falls back to the default.
func NewWithPolicy(c *chip.Chip, cfg Config, pol policy.Policy) *System {
	s := New(c, cfg)
	if pol != nil {
		s.pol = pol
	}
	return s
}

func newSystem(c *chip.Chip, cfg Config) *System {
	return &System{
		Chip: c,
		Cfg:  cfg,
		// The default policy is built from this system's own band so
		// experiments that sweep FloorRate/CeilRate (the ablation study)
		// keep working unchanged.
		pol:         policy.NewPaper(cfg.FloorRate, cfg.CeilRate),
		probers:     make(map[monKey]Prober),
		active:      make(map[int]Prober),
		assigns:     make(map[int]Assignment),
		lastRate:    make(map[int]float64),
		failed:      make(map[int]string),
		stalled:     make(map[int]int),
		stableHolds: make(map[int]int),
	}
}

// Policy returns the speculation policy driving this system's decisions.
func (s *System) Policy() policy.Policy { return s.pol }

// PolicyName returns the driving policy's registered name.
func (s *System) PolicyName() string { return s.pol.Name() }

// Monitor returns the provisioned probing agent for a cache controller.
func (s *System) Monitor(core int, kind variation.Kind) Prober {
	return s.probers[monKey{core, kind}]
}

// ActiveMonitor returns the domain's active probing agent (nil before
// calibration).
func (s *System) ActiveMonitor(domain int) Prober {
	return s.active[domain]
}

// LastErrorRate returns the error rate observed at the domain's most
// recent completed controller decision (the monitor's own counters reset
// after every decision, so this is the steady telemetry value).
func (s *System) LastErrorRate(domain int) float64 {
	return s.lastRate[domain]
}

// Assignment returns the domain's calibrated target line.
func (s *System) Assignment(domain int) (Assignment, bool) {
	a, ok := s.assigns[domain]
	return a, ok
}

// sweepCache performs one calibration pass over a cache at probe voltage
// v: write a pattern and read each line back CalibReadsPerLine times,
// stopping at the first line that reports a correctable error.
func (s *System) sweepCache(c *cache.Cache, v float64) (set, way int, found bool) {
	cfg := c.Config()
	var data [sram.WordsPerLine]uint64
	for i := range data {
		data[i] = 0x5555555555555555
	}
	for set := 0; set < cfg.Sets; set++ {
		for way := 0; way < cfg.Ways; way++ {
			if c.LineDisabled(set, way) {
				continue
			}
			c.WriteLine(set, way, data)
			for r := 0; r < s.Cfg.CalibReadsPerLine; r++ {
				res := c.ReadLine(set, way, v)
				if len(res.Events) > 0 {
					return set, way, true
				}
			}
		}
	}
	return 0, 0, false
}

// FindOnset locates the weakest L2 line among the domain's cores by
// progressively lowering the probe voltage until a sweep reports the
// first correctable error. It does not touch any monitor, so it can also
// serve as the "off-line calibration" step of the software baseline.
func (s *System) FindOnset(d *chip.Domain) (Assignment, error) {
	nominal := s.Chip.P.Point.NominalVdd
	for v := nominal; v >= s.Cfg.CalibFloorV; v -= s.Cfg.CalibStepV {
		for _, coreID := range d.CoreIDs {
			co := s.Chip.Cores[coreID]
			for _, kind := range []variation.Kind{variation.KindL2D, variation.KindL2I} {
				set, way, found := s.sweepCache(co.CacheOf(kind), v)
				if !found {
					continue
				}
				return Assignment{Domain: d.ID, Core: coreID, Kind: kind,
					Set: set, Way: way, OnsetV: v}, nil
			}
		}
	}
	return Assignment{}, fmt.Errorf("control: no correctable errors found above %.3f V in domain %d",
		s.Cfg.CalibFloorV, d.ID)
}

// CalibrateDomain runs FindOnset and activates the corresponding ECC
// monitor on the discovered line. Any previously active monitor in the
// domain is deactivated first (recalibration, §III-D).
func (s *System) CalibrateDomain(d *chip.Domain) (Assignment, error) {
	if old := s.active[d.ID]; old != nil {
		old.Deactivate()
		delete(s.active, d.ID)
		delete(s.assigns, d.ID)
	}
	delete(s.failed, d.ID)
	delete(s.stalled, d.ID)
	a, err := s.FindOnset(d)
	if err != nil {
		return Assignment{}, err
	}
	mon := s.probers[monKey{a.Core, a.Kind}]
	mon.Activate(a.Set, a.Way)
	s.active[d.ID] = mon
	s.assigns[d.ID] = a
	s.bindPolicyDomain(d.ID, a, d.Rail)
	return a, nil
}

// bindPolicyDomain hands a domain's characterization to the policy so
// schemes that need an offline operating point (guardband) have one.
func (s *System) bindPolicyDomain(domain int, a Assignment, r *pdn.Rail) {
	s.pol.BindDomain(policy.DomainInfo{
		Domain:   domain,
		OnsetV:   a.OnsetV,
		NominalV: s.Chip.P.Point.NominalVdd,
		StepV:    r.Params().StepV,
	})
}

// Calibrate runs CalibrateDomain for every domain and returns the
// assignments sorted by domain id.
func (s *System) Calibrate() ([]Assignment, error) {
	var out []Assignment
	for _, d := range s.Chip.Domains {
		a, err := s.CalibrateDomain(d)
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out, nil
}

// Tick runs one controller iteration: probe every domain's active
// monitor at its current effective voltage and apply the floor/ceiling
// policy. Call it after chip.Step. Domains without an active monitor are
// skipped. The returned slice is scratch owned by the system and is
// overwritten by the next Tick; callers that need actions beyond the
// current tick must copy them.
func (s *System) Tick() []Action {
	out := s.acts[:0]
	if act, ok := s.tickUncore(); ok {
		out = append(out, act)
	}
	for _, d := range s.Chip.Domains {
		mon := s.active[d.ID]
		if mon == nil {
			continue
		}
		accBefore, _ := mon.Counters()
		mon.ProbeN(s.Cfg.ProbesPerTick, d.LastEffective())
		if rep, ok := mon.(overheadReporter); ok {
			a := s.assigns[d.ID]
			frac := rep.TakeOverheadSeconds() / s.Chip.P.TickSeconds
			s.Chip.Cores[a.Core].SetOverheadFraction(frac)
		}
		// Stall watchdog: a monitor that was asked to probe but did not
		// advance its access counter is a dead sensor — its rate would
		// stay stale forever and no decision would ever fire again.
		if accAfter, _ := mon.Counters(); s.Cfg.ProbesPerTick > 0 &&
			s.Cfg.WatchdogStalledTicks > 0 && accAfter == accBefore {
			s.stalled[d.ID]++
			if s.stalled[d.ID] >= s.Cfg.WatchdogStalledTicks {
				out = append(out, s.failSafe(d, mon, "monitor stalled (sensor dropout)"))
				continue
			}
		} else if s.stalled[d.ID] != 0 {
			delete(s.stalled, d.ID)
		}
		act := Action{Domain: d.ID}
		if mon.TakeEmergency() {
			act.Kind = Emergency
			act.ErrorRate = mon.ErrorRate()
			s.lastRate[d.ID] = act.ErrorRate
			s.emergencies++
			d.Rail.StepUp(s.Cfg.EmergencySteps)
			mon.ResetCounters()
		} else if acc, errs := mon.Counters(); acc >= s.Cfg.DecisionProbes {
			// A decision's worth of counters is also when firmware
			// cross-checks the monitor's built-in self test: a stuck
			// datapath reads as a perfect zero rate and would otherwise
			// walk the rail off the voltage cliff.
			if st, ok := mon.(selfTester); ok && !st.SelfTest() {
				out = append(out, s.failSafe(d, mon, "self-test failed"))
				continue
			}
			rate := mon.ErrorRate()
			act.ErrorRate = rate
			s.lastRate[d.ID] = rate
			act.Kind = s.applyDecision(d.Rail, s.pol.Decide(policy.Input{
				Domain:    d.ID,
				Tick:      s.Chip.Ticks(),
				ErrorRate: rate,
				Accesses:  acc,
				Errors:    errs,
				TargetV:   d.Rail.Target(),
				NominalV:  s.Chip.P.Point.NominalVdd,
				StepV:     d.Rail.Params().StepV,
			}))
			mon.ResetCounters()
		} else {
			act.Kind = Pending
			act.ErrorRate = mon.ErrorRate()
		}
		act.NewTarget = d.Rail.Target()
		out = append(out, act)
	}
	s.acts = out
	if s.Chip.AdaptiveFidelity() {
		s.trackFidelity(out)
	}
	return out
}

// trackFidelity drives the adaptive-fidelity state machine from the
// tick's actions: in-band decisions accumulate stability, anything else
// — step decision, emergency, fail-safe (which covers failed self-tests
// and stalled sensors) — zeroes the domain's count and abandons
// fast-forward. When every speculating domain has held for
// Cfg.FidelityStableWindows consecutive decisions, the chip is allowed
// to fast-forward through the aggregate kernel.
func (s *System) trackFidelity(acts []Action) {
	for _, a := range acts {
		switch a.Kind {
		case Hold:
			s.stableHolds[a.Domain]++
		case Pending:
			// No decision completed; stability carries over.
		default:
			s.stableHolds[a.Domain] = 0
			s.Chip.DropFastForward()
		}
	}
	k := s.Cfg.FidelityStableWindows
	if k <= 0 {
		k = DefaultConfig().FidelityStableWindows
	}
	if len(s.active) == 0 && s.uncore == nil {
		// Nothing is speculating; there is no stability signal to
		// justify fast-forwarding.
		return
	}
	for id := range s.active {
		if s.stableHolds[id] < k {
			return
		}
	}
	if s.uncore != nil && s.stableHolds[UncoreDomainID] < k {
		return
	}
	s.Chip.EnterFastForward()
}

// applyDecision translates a policy decision into rail operations and
// the matching telemetry kind. SetTarget is classified by the direction
// the setpoint actually moved, so traces stay meaningful for ladder and
// non-ladder policies alike.
func (s *System) applyDecision(r *pdn.Rail, dec policy.Decision) ActionKind {
	switch dec.Verdict {
	case policy.StepUp:
		r.StepUp(stepsOrOne(dec.Steps))
		return StepUp
	case policy.StepDown:
		r.StepDown(stepsOrOne(dec.Steps))
		return StepDown
	case policy.SetTarget:
		before := r.Target()
		after := r.SetTarget(dec.TargetV)
		switch {
		case after > before:
			return StepUp
		case after < before:
			return StepDown
		default:
			return Hold
		}
	default:
		return Hold
	}
}

func stepsOrOne(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

// failSafe permanently stops speculating on a domain after a monitor
// fault: the monitor is deactivated (its line returns to service), the
// assignment is dropped, and the rail reverts to nominal Vdd where the
// design is unconditionally safe. Sibling domains are untouched.
// Recalibrating the domain (CalibrateDomain) restores speculation.
func (s *System) failSafe(d *chip.Domain, mon Prober, reason string) Action {
	rate := mon.ErrorRate()
	mon.Deactivate()
	delete(s.active, d.ID)
	delete(s.assigns, d.ID)
	delete(s.stalled, d.ID)
	s.failed[d.ID] = reason
	d.Rail.SetTarget(s.Chip.P.Point.NominalVdd)
	return Action{Domain: d.ID, Kind: FailSafe, ErrorRate: rate,
		NewTarget: d.Rail.Target()}
}

// FailedSafe reports whether the controller has failed the domain safe,
// and why.
func (s *System) FailedSafe(domain int) (reason string, ok bool) {
	reason, ok = s.failed[domain]
	return reason, ok
}

// FailSafeDomains returns the ids of all failed-safe domains, sorted.
func (s *System) FailSafeDomains() []int {
	if len(s.failed) == 0 {
		return nil
	}
	ids := make([]int, 0, len(s.failed))
	for id := range s.failed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Emergencies returns how many emergency interrupts this system has
// serviced in this process. The counter is telemetry, not checkpoint
// state: it restarts at zero after a restore.
func (s *System) Emergencies() int { return s.emergencies }
