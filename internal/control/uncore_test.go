package control

import (
	"testing"

	"eccspec/internal/chip"
	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

func TestAttachUncoreCalibratesL3(t *testing.T) {
	c, s := testSystem(31)
	a, err := s.AttachUncore()
	if err != nil {
		t.Fatal(err)
	}
	if a.Domain != UncoreDomainID || a.Kind != variation.KindL3 {
		t.Fatalf("assignment %+v", a)
	}
	if !c.L3.LineDisabled(a.Set, a.Way) {
		t.Fatal("uncore monitor line not de-configured")
	}
	got, ok := s.UncoreAssignment()
	if !ok || got != a {
		t.Fatal("UncoreAssignment lookup mismatch")
	}
	// Onset must sit above the uncore's hard floor: the early-warning
	// property, uncore edition.
	if a.OnsetV <= c.UncoreVmin() {
		t.Fatalf("L3 onset %.3f not above uncore floor %.3f", a.OnsetV, c.UncoreVmin())
	}
}

func TestUncoreAssignmentEmptyBeforeAttach(t *testing.T) {
	_, s := testSystem(32)
	if _, ok := s.UncoreAssignment(); ok {
		t.Fatal("assignment reported before AttachUncore")
	}
}

func TestUncoreTickConverges(t *testing.T) {
	c, s := testSystem(33)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachUncore(); err != nil {
		t.Fatal(err)
	}
	sawUncoreAction := false
	for i := 0; i < 1500; i++ {
		c.Step()
		for _, a := range s.Tick() {
			if a.Domain == UncoreDomainID && a.Kind != Pending {
				sawUncoreAction = true
			}
		}
	}
	if !sawUncoreAction {
		t.Fatal("no uncore controller decisions")
	}
	if c.UncoreRail.Target() >= c.P.Point.NominalVdd {
		t.Fatalf("uncore rail never speculated: %.3f", c.UncoreRail.Target())
	}
	if !c.UncoreAlive() {
		t.Fatal("uncore died under its own speculation")
	}
	// The uncore must settle where its monitored line's error
	// probability sits near the control band.
	a, _ := s.UncoreAssignment()
	p := c.L3.Array().FlipProbability(a.Set, a.Way, c.LastUncoreEffective())
	if p < s.Cfg.FloorRate/20 || p > s.Cfg.CeilRate*20 {
		t.Fatalf("uncore settled at %.3f where line error prob is %v",
			c.UncoreRail.Target(), p)
	}
}

func TestFirmwareApproximationFullLoop(t *testing.T) {
	// The §IV configuration end to end: self-test probers, calibration,
	// convergence, no crashes.
	c := chipForFirmware(34)
	s := NewFirmwareApproximation(c, DefaultConfig())
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		c.Step()
		s.Tick()
	}
	for _, d := range c.Domains {
		if d.Rail.Target() >= c.P.Point.NominalVdd {
			t.Fatalf("domain %d never speculated", d.ID)
		}
	}
	for _, co := range c.Cores {
		if !co.Alive() {
			t.Fatalf("core %d died under firmware-approximated control", co.ID)
		}
		// The probing core pays a cycle cost, visible as charged
		// overhead fractions; no assertion on magnitude here beyond
		// survival, which methodology-level tests quantify.
	}
}

func TestLastErrorRateTracksDecisions(t *testing.T) {
	c, s := testSystem(35)
	if s.LastErrorRate(0) != 0 {
		t.Fatal("rate nonzero before calibration")
	}
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		c.Step()
		s.Tick()
	}
	// After convergence, the last decision rate should sit in or near
	// the control band at least for one domain.
	any := false
	for d := range c.Domains {
		if r := s.LastErrorRate(d); r > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no domain ever recorded a nonzero decision rate")
	}
}

// chipForFirmware builds a chip whose cores run a light benchmark so the
// firmware self-test has realistic cache competition.
func chipForFirmware(seed uint64) *chip.Chip {
	c, _ := testSystem(seed)
	for _, co := range c.Cores {
		mcf, _ := workload.ByName("mcf")
		co.SetWorkload(mcf, seed)
	}
	return c
}
