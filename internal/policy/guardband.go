package policy

import (
	"encoding/json"
	"fmt"
)

// Static guardband reduction in the style of the MPSoC voltage-margin
// work (arXiv:2209.12134): an offline characterization measures each
// domain's real margin, and the running system then operates at a fixed
// reduced guardband above that measured point — no continuous feedback
// loop. Here the characterization is the calibration sweep's onset
// voltage (the first correctable error of the domain's weakest line),
// delivered through BindDomain; the policy walks the rail down one step
// per decision until it sits MarginSteps above the onset, then holds.
//
// The scheme's known weakness is exactly what the source paper argues:
// a static margin cannot see conditions drift. The policy therefore
// carries the standard fallback — any corrected error observed below
// nominal means the characterized margin was optimistic, at which point
// the domain backs off BackoffSteps and freezes there for the rest of
// the run (a field recall of the aggressive setting).

func init() {
	Register(Info{
		Name:        "guardband",
		Description: "static margin reduction from offline characterization (arXiv:2209.12134)",
		New:         NewGuardband,
	})
}

// Guardband defaults.
const (
	// DefaultMarginSteps is the retained guardband above the
	// characterized onset, in regulator steps (3 steps = 15 mV at the
	// paper's 5 mV step).
	DefaultMarginSteps = 3
	// DefaultBackoffSteps is the retreat applied when the static margin
	// proves too thin, in regulator steps above the setpoint that
	// observed the error.
	DefaultBackoffSteps = 2
)

// guardbandDomain is one domain's state. targetV derives from
// BindDomain (re-derived on restore); holdV/frozen are the mutable
// fallback state carried through checkpoints.
type guardbandDomain struct {
	targetV float64 // characterized reduced-guardband setpoint
	nominal float64
	stepV   float64

	Frozen bool    `json:"frozen,omitempty"`
	HoldV  float64 `json:"hold_v,omitempty"`
}

// Guardband is the static margin-reduction ladder.
type Guardband struct {
	MarginSteps  int
	BackoffSteps int
	domains      map[int]*guardbandDomain
}

// NewGuardband builds the policy with default margins.
func NewGuardband() Policy {
	return &Guardband{
		MarginSteps:  DefaultMarginSteps,
		BackoffSteps: DefaultBackoffSteps,
		domains:      make(map[int]*guardbandDomain),
	}
}

// Name implements Policy.
func (g *Guardband) Name() string { return "guardband" }

// BindDomain records the domain's characterized operating point:
// MarginSteps above the onset voltage, never above nominal. Rebinding
// (recalibration) resets the fallback state — it is a fresh
// characterization.
func (g *Guardband) BindDomain(d DomainInfo) {
	target := d.OnsetV + float64(g.MarginSteps)*d.StepV
	if target > d.NominalV {
		target = d.NominalV
	}
	g.domains[d.Domain] = &guardbandDomain{
		targetV: target,
		nominal: d.NominalV,
		stepV:   d.StepV,
	}
}

// Decide walks the rail toward the characterized setpoint one step per
// decision, holds once there, and backs off permanently on evidence the
// static margin was mischaracterized.
func (g *Guardband) Decide(in Input) Decision {
	d := g.domains[in.Domain]
	if d == nil {
		return Decision{Verdict: Hold}
	}
	if d.Frozen {
		if in.TargetV != d.HoldV {
			return Decision{Verdict: SetTarget, TargetV: d.HoldV}
		}
		return Decision{Verdict: Hold}
	}
	if in.Errors > 0 && in.TargetV < in.NominalV {
		// Corrected errors below nominal: the offline characterization
		// promised none at this setpoint. Retreat and stop trusting it.
		d.Frozen = true
		d.HoldV = in.TargetV + float64(g.BackoffSteps)*in.StepV
		if d.HoldV > in.NominalV {
			d.HoldV = in.NominalV
		}
		return Decision{Verdict: SetTarget, TargetV: d.HoldV}
	}
	if in.TargetV > d.targetV+in.StepV/2 {
		return Decision{Verdict: StepDown, Steps: 1}
	}
	return Decision{Verdict: Hold}
}

// CaptureState serializes the per-domain fallback state.
func (g *Guardband) CaptureState() ([]byte, error) {
	frozen := make(map[int]*guardbandDomain)
	for id, d := range g.domains {
		if d.Frozen {
			frozen[id] = d
		}
	}
	if len(frozen) == 0 {
		return nil, nil
	}
	return json.Marshal(frozen)
}

// RestoreState overlays captured fallback state onto bound domains.
func (g *Guardband) RestoreState(blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	var frozen map[int]*guardbandDomain
	if err := json.Unmarshal(blob, &frozen); err != nil {
		return fmt.Errorf("policy: guardband state: %w", err)
	}
	for id, st := range frozen {
		d := g.domains[id]
		if d == nil {
			return fmt.Errorf("policy: guardband state for unbound domain %d", id)
		}
		d.Frozen = st.Frozen
		d.HoldV = st.HoldV
	}
	return nil
}
