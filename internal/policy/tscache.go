package policy

import (
	"encoding/json"
	"fmt"
)

// Timing speculation in the style of TS Cache (arXiv:1904.11200): SRAM
// reads issue on an aggressive timing and a detection path catches the
// ones that mis-sampled, replaying them at full latency. Mapped onto
// this platform, the SECDED correction path plays the detector: a
// corrected event on the monitored line is a caught mis-speculation
// whose cost is one replay, and an error-free probe is a speculative
// hit that banked the aggressive timing's savings.
//
// Because every mis-speculation is repaired, the policy tolerates a far
// denser error stream than the paper's 1-5% band — it regulates the
// replay *overhead*, not the error count. Each decision window it
// accounts hits and replays, and steers the rail to keep the window's
// replay rate inside [LowRate, HighRate] while the cumulative replay
// overhead stays under MaxOverhead; blowing the overhead budget forces
// a step up even from inside the band.

func init() {
	Register(Info{
		Name:        "tscache",
		Description: "TS Cache-style timing speculation with speculative-hit/replay accounting (arXiv:1904.11200)",
		New:         NewTSCache,
	})
}

// TS Cache defaults.
const (
	// DefaultTSLowRate / DefaultTSHighRate bound the per-window replay
	// rate the policy steers into — deliberately deeper than the
	// paper's corrigible band because replays repair themselves.
	DefaultTSLowRate  = 0.08
	DefaultTSHighRate = 0.20
	// DefaultTSReplayPenalty is the cost of one replay in units of one
	// speculative access (detect + full-latency reissue).
	DefaultTSReplayPenalty = 4.0
	// DefaultTSMaxOverhead caps the cumulative replay overhead —
	// replays*penalty over total issue slots — before the policy
	// retreats regardless of the instantaneous rate.
	DefaultTSMaxOverhead = 0.5
)

// TSCacheStats is the policy's cumulative speculation accounting.
type TSCacheStats struct {
	// SpecHits counts probes that completed on the aggressive timing.
	SpecHits uint64 `json:"spec_hits"`
	// Replays counts probes the detection path caught and reissued.
	Replays uint64 `json:"replays"`
}

// Overhead returns the cumulative replay overhead fraction under the
// given per-replay penalty.
func (s TSCacheStats) Overhead(penalty float64) float64 {
	total := float64(s.SpecHits) + penalty*float64(s.Replays)
	if total == 0 {
		return 0
	}
	return penalty * float64(s.Replays) / total
}

// TSCache is the timing-speculation policy.
type TSCache struct {
	LowRate       float64
	HighRate      float64
	ReplayPenalty float64
	MaxOverhead   float64

	stats TSCacheStats
}

// NewTSCache builds the policy with default tuning.
func NewTSCache() Policy {
	return &TSCache{
		LowRate:       DefaultTSLowRate,
		HighRate:      DefaultTSHighRate,
		ReplayPenalty: DefaultTSReplayPenalty,
		MaxOverhead:   DefaultTSMaxOverhead,
	}
}

// Name implements Policy.
func (t *TSCache) Name() string { return "tscache" }

// BindDomain implements Policy; the scheme needs no characterization —
// it discovers the operating point from the replay stream.
func (t *TSCache) BindDomain(DomainInfo) {}

// Stats returns the cumulative speculative-hit/replay accounting.
func (t *TSCache) Stats() TSCacheStats { return t.stats }

// Decide books the window into the accounting, then steers: above the
// replay band (or over the cumulative overhead budget) step up, below
// the band step down, inside hold.
func (t *TSCache) Decide(in Input) Decision {
	t.stats.SpecHits += in.Accesses - in.Errors
	t.stats.Replays += in.Errors
	switch {
	case in.ErrorRate > t.HighRate:
		return Decision{Verdict: StepUp, Steps: 1}
	case t.stats.Overhead(t.ReplayPenalty) > t.MaxOverhead:
		return Decision{Verdict: StepUp, Steps: 1}
	case in.ErrorRate < t.LowRate:
		return Decision{Verdict: StepDown, Steps: 1}
	default:
		return Decision{Verdict: Hold}
	}
}

// CaptureState serializes the cumulative accounting.
func (t *TSCache) CaptureState() ([]byte, error) {
	if t.stats == (TSCacheStats{}) {
		return nil, nil
	}
	return json.Marshal(t.stats)
}

// RestoreState overlays captured accounting.
func (t *TSCache) RestoreState(blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	if err := json.Unmarshal(blob, &t.stats); err != nil {
		return fmt.Errorf("policy: tscache state: %w", err)
	}
	return nil
}
