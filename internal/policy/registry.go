package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Default is the policy a simulator runs when none is named: the
// source paper's floor/ceiling correctable-error-rate ladder.
const Default = "paper"

// Info describes one registered policy.
type Info struct {
	// Name addresses the policy everywhere a policy is named: CLI
	// flags, fleet job specs, the eccspecd API, checkpoints.
	Name string
	// Description is the one-liner shown by usage text and /healthz.
	Description string
	// New builds a fresh instance with the policy's default tuning.
	// Each control system gets its own instance; instances are never
	// shared between chips.
	New func() Policy
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds (or replaces) a policy by name. The per-policy files'
// init functions register the built-ins; tests and extensions may
// overwrite them. Empty names and nil constructors panic: both indicate
// a programming error, not runtime input.
func Register(info Info) {
	if info.Name == "" {
		panic("policy: Register with empty name")
	}
	if info.New == nil {
		panic("policy: Register " + info.Name + " with nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[info.Name] = info
}

// Get looks a policy up by name.
func Get(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// All returns every registered policy, sorted by name.
func All() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered policy names, sorted. Error messages for
// unknown names should quote this list.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, info := range all {
		names[i] = info.Name
	}
	return names
}

// Resolve canonicalizes a policy name: empty selects Default. It does
// not check registration — pair with Get or New for that.
func Resolve(name string) string {
	if name == "" {
		return Default
	}
	return name
}

// New instantiates a policy by name (empty selects Default). Unknown
// names error with the registered names spelled out.
func New(name string) (Policy, error) {
	name = Resolve(name)
	info, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return info.New(), nil
}
