package policy

import (
	"reflect"
	"strings"
	"testing"
)

// --- registry semantics ------------------------------------------------

func TestRegistryBuiltinsRegistered(t *testing.T) {
	want := []string{"conservative", "guardband", "paper", "tscache"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in policy %q missing from Names() = %v", w, names)
		}
	}
	if !reflect.DeepEqual(names, append([]string(nil), names...)) || !isSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}

func isSorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestRegistryRegisterOverwriteAndGet(t *testing.T) {
	Register(Info{Name: "test-dummy", Description: "first", New: func() Policy { return &Conservative{} }})
	Register(Info{Name: "test-dummy", Description: "second", New: func() Policy { return &Conservative{} }})
	t.Cleanup(func() {
		regMu.Lock()
		delete(registry, "test-dummy")
		regMu.Unlock()
	})
	info, ok := Get("test-dummy")
	if !ok {
		t.Fatal("Get after Register failed")
	}
	if info.Description != "second" {
		t.Fatalf("Register did not overwrite: got %q", info.Description)
	}
	n := 0
	for _, i := range All() {
		if i.Name == "test-dummy" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("All() lists test-dummy %d times after overwrite, want 1", n)
	}
}

func TestRegistryUnknownGetListsNames(t *testing.T) {
	if _, ok := Get("no-such-policy"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
	_, err := New("no-such-policy")
	if err == nil {
		t.Fatal("New of unknown name succeeded")
	}
	for _, want := range []string{"no-such-policy", "paper", "tscache", "guardband", "conservative"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-policy error %q does not mention %q", err, want)
		}
	}
}

func TestResolveAndDefault(t *testing.T) {
	if Resolve("") != Default {
		t.Fatalf("Resolve(\"\") = %q, want %q", Resolve(""), Default)
	}
	p, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "paper" {
		t.Fatalf("default policy is %q, want paper", p.Name())
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, bad := range []Info{
		{Name: "", New: func() Policy { return &Conservative{} }},
		{Name: "x", New: nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%+v) did not panic", bad)
				}
			}()
			Register(bad)
		}()
	}
}

// --- paper ladder ------------------------------------------------------

func TestPaperBand(t *testing.T) {
	p := NewPaper(0.01, 0.05)
	cases := []struct {
		rate float64
		want Verdict
	}{
		{0.0, StepDown}, {0.009, StepDown}, {0.01, Hold},
		{0.03, Hold}, {0.05, Hold}, {0.051, StepUp}, {0.9, StepUp},
	}
	for _, c := range cases {
		d := p.Decide(Input{ErrorRate: c.rate})
		if d.Verdict != c.want {
			t.Fatalf("rate %g: verdict %v, want %v", c.rate, d.Verdict, c.want)
		}
		if d.Verdict != Hold && d.Steps != 1 {
			t.Fatalf("rate %g: steps %d, want 1", c.rate, d.Steps)
		}
	}
}

// --- conservative ------------------------------------------------------

func TestConservativePinsNominal(t *testing.T) {
	c := &Conservative{}
	if d := c.Decide(Input{TargetV: 0.8, NominalV: 0.8}); d.Verdict != Hold {
		t.Fatalf("at nominal: %v, want hold", d.Verdict)
	}
	d := c.Decide(Input{TargetV: 0.75, NominalV: 0.8})
	if d.Verdict != SetTarget || d.TargetV != 0.8 {
		t.Fatalf("below nominal: %+v, want set-target 0.8", d)
	}
}

// --- guardband ---------------------------------------------------------

func TestGuardbandDescendsToCharacterizedTarget(t *testing.T) {
	g := NewGuardband().(*Guardband)
	g.BindDomain(DomainInfo{Domain: 0, OnsetV: 0.700, NominalV: 0.800, StepV: 0.005})
	want := 0.700 + float64(g.MarginSteps)*0.005
	v := 0.800
	for i := 0; i < 100; i++ {
		d := g.Decide(Input{Domain: 0, TargetV: v, NominalV: 0.800, StepV: 0.005})
		if d.Verdict == Hold {
			break
		}
		if d.Verdict != StepDown {
			t.Fatalf("step %d: verdict %v", i, d.Verdict)
		}
		v -= 0.005
	}
	if v > want+0.0026 || v < want-0.0026 {
		t.Fatalf("settled at %.3f V, want ~%.3f V", v, want)
	}
	// Unbound domains hold.
	if d := g.Decide(Input{Domain: 9, TargetV: 0.8}); d.Verdict != Hold {
		t.Fatalf("unbound domain: %v, want hold", d.Verdict)
	}
}

func TestGuardbandBacksOffOnErrorsAndFreezes(t *testing.T) {
	g := NewGuardband().(*Guardband)
	g.BindDomain(DomainInfo{Domain: 0, OnsetV: 0.700, NominalV: 0.800, StepV: 0.005})
	d := g.Decide(Input{Domain: 0, TargetV: 0.750, NominalV: 0.800, StepV: 0.005,
		Accesses: 200, Errors: 3, ErrorRate: 0.015})
	wantHold := 0.750 + float64(g.BackoffSteps)*0.005
	if d.Verdict != SetTarget || d.TargetV != wantHold {
		t.Fatalf("backoff: %+v, want set-target %.3f", d, wantHold)
	}
	// Frozen: further error-free windows never descend again.
	d = g.Decide(Input{Domain: 0, TargetV: wantHold, NominalV: 0.800, StepV: 0.005})
	if d.Verdict != Hold {
		t.Fatalf("after freeze: %v, want hold", d.Verdict)
	}
	// State round-trip preserves the freeze.
	blob, err := g.CaptureState()
	if err != nil || blob == nil {
		t.Fatalf("capture: blob=%v err=%v", blob, err)
	}
	g2 := NewGuardband().(*Guardband)
	g2.BindDomain(DomainInfo{Domain: 0, OnsetV: 0.700, NominalV: 0.800, StepV: 0.005})
	if err := g2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	d = g2.Decide(Input{Domain: 0, TargetV: wantHold, NominalV: 0.800, StepV: 0.005})
	if d.Verdict != Hold {
		t.Fatalf("restored policy forgot the freeze: %v", d.Verdict)
	}
	if err := g2.RestoreState([]byte("{bad")); err == nil {
		t.Fatal("corrupt state restored without error")
	}
}

func TestGuardbandRestoreUnboundDomainErrors(t *testing.T) {
	g := NewGuardband().(*Guardband)
	g.BindDomain(DomainInfo{Domain: 0, OnsetV: 0.7, NominalV: 0.8, StepV: 0.005})
	g.Decide(Input{Domain: 0, TargetV: 0.75, NominalV: 0.8, StepV: 0.005, Errors: 1, ErrorRate: 0.01})
	blob, _ := g.CaptureState()
	fresh := NewGuardband().(*Guardband) // no domains bound
	if err := fresh.RestoreState(blob); err == nil {
		t.Fatal("restore onto unbound domains did not error")
	}
}

// --- tscache -----------------------------------------------------------

func TestTSCacheBandAndAccounting(t *testing.T) {
	ts := NewTSCache().(*TSCache)
	d := ts.Decide(Input{Accesses: 200, Errors: 4, ErrorRate: 0.02})
	if d.Verdict != StepDown {
		t.Fatalf("under band: %v, want down", d.Verdict)
	}
	d = ts.Decide(Input{Accesses: 200, Errors: 24, ErrorRate: 0.12})
	if d.Verdict != Hold {
		t.Fatalf("in band: %v, want hold", d.Verdict)
	}
	d = ts.Decide(Input{Accesses: 200, Errors: 60, ErrorRate: 0.30})
	if d.Verdict != StepUp {
		t.Fatalf("over band: %v, want up", d.Verdict)
	}
	st := ts.Stats()
	if st.Replays != 4+24+60 || st.SpecHits != 196+176+140 {
		t.Fatalf("accounting wrong: %+v", st)
	}
	// State round-trip.
	blob, err := ts.CaptureState()
	if err != nil || blob == nil {
		t.Fatalf("capture: %v %v", blob, err)
	}
	ts2 := NewTSCache().(*TSCache)
	if err := ts2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if ts2.Stats() != st {
		t.Fatalf("restored stats %+v != %+v", ts2.Stats(), st)
	}
	if err := ts2.RestoreState([]byte("nope")); err == nil {
		t.Fatal("corrupt state restored without error")
	}
}

func TestTSCacheOverheadBudgetForcesRetreat(t *testing.T) {
	ts := NewTSCache().(*TSCache)
	// Saturate the cumulative overhead with heavy replay windows.
	for i := 0; i < 50; i++ {
		ts.Decide(Input{Accesses: 200, Errors: 60, ErrorRate: 0.30})
	}
	if ov := ts.Stats().Overhead(ts.ReplayPenalty); ov <= ts.MaxOverhead {
		t.Fatalf("test setup: overhead %.3f not above budget %.3f", ov, ts.MaxOverhead)
	}
	// In-band rate, but the budget is blown: must step up.
	d := ts.Decide(Input{Accesses: 200, Errors: 24, ErrorRate: 0.12})
	if d.Verdict != StepUp {
		t.Fatalf("over budget: %v, want up", d.Verdict)
	}
}

// --- determinism: same input sequence, same verdict trace ---------------

func TestPoliciesDeterministicDecisionTrace(t *testing.T) {
	inputs := make([]Input, 0, 60)
	v := 0.800
	for i := 0; i < 60; i++ {
		rate := float64(i%13) / 100
		inputs = append(inputs, Input{
			Domain: i % 4, Tick: i, ErrorRate: rate,
			Accesses: 200, Errors: uint64(rate * 200),
			TargetV: v, NominalV: 0.800, StepV: 0.005,
		})
		v -= 0.001
	}
	for _, name := range Names() {
		run := func() []Decision {
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < 4; d++ {
				p.BindDomain(DomainInfo{Domain: d, OnsetV: 0.690, NominalV: 0.800, StepV: 0.005})
			}
			out := make([]Decision, 0, len(inputs))
			for _, in := range inputs {
				out = append(out, p.Decide(in))
			}
			return out
		}
		if a, b := run(), run(); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical runs produced different decision traces", name)
		}
	}
}

func TestStatelessPoliciesCaptureNil(t *testing.T) {
	for _, name := range []string{"paper", "conservative"} {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := p.CaptureState()
		if err != nil || blob != nil {
			t.Fatalf("%s: capture = (%v, %v), want (nil, nil)", name, blob, err)
		}
		if err := p.RestoreState(nil); err != nil {
			t.Fatalf("%s: restore(nil): %v", name, err)
		}
	}
}
