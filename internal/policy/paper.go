package policy

// The source paper's policy (§III-B): keep every domain inside a band
// of persistent-but-benign correctable errors. Above the ceiling the
// rail steps up one notch, below the floor it steps down one notch, in
// between it holds. The error rate of the domain's weakest line is a
// live measurement of remaining margin, so this ladder tracks process
// variation, workload swings and voltage noise with no recovery
// hardware at all.

// Paper band defaults (the paper's 1% and 5%). internal/control builds
// its default policy from its own Config so experiments that sweep the
// band (the ablation study) keep working; these constants parameterize
// the registry's stock instance.
const (
	DefaultFloorRate = 0.01
	DefaultCeilRate  = 0.05
)

func init() {
	Register(Info{
		Name:        "paper",
		Description: "ECC feedback floor/ceiling error-rate ladder (the source paper, MICRO 2014)",
		New:         func() Policy { return NewPaper(DefaultFloorRate, DefaultCeilRate) },
	})
}

// Paper is the floor/ceiling correctable-error-rate ladder. It is
// stateless: every decision is a pure function of the window's rate.
type Paper struct {
	stateless
	// FloorRate and CeilRate bound the target correctable-error rate.
	FloorRate float64
	CeilRate  float64
}

// NewPaper builds the ladder with the given band.
func NewPaper(floor, ceil float64) *Paper {
	return &Paper{FloorRate: floor, CeilRate: ceil}
}

// Name implements Policy.
func (p *Paper) Name() string { return "paper" }

// BindDomain implements Policy; the ladder needs no characterization.
func (p *Paper) BindDomain(DomainInfo) {}

// Decide applies the band: above the ceiling step up, below the floor
// step down, inside hold. The comparisons are exactly the pre-registry
// control loop's, so the default policy is byte-identical to it.
func (p *Paper) Decide(in Input) Decision {
	switch {
	case in.ErrorRate > p.CeilRate:
		return Decision{Verdict: StepUp, Steps: 1}
	case in.ErrorRate < p.FloorRate:
		return Decision{Verdict: StepDown, Steps: 1}
	default:
		return Decision{Verdict: Hold}
	}
}
