package policy

// The no-speculation baseline: rails stay at the rated supply, exactly
// as a production system without any margin-reduction scheme runs. Its
// purpose in the registry is to anchor the compare harness — energy,
// Vdd reduction and DUE rate of every real policy are read against it.

func init() {
	Register(Info{
		Name:        "conservative",
		Description: "no speculation: every rail holds the rated nominal supply",
		New:         func() Policy { return &Conservative{} },
	})
}

// Conservative never leaves nominal. If anything has moved the rail (an
// emergency raise, a disturbance experiment), the next decision pins it
// back to nominal.
type Conservative struct {
	stateless
}

// Name implements Policy.
func (c *Conservative) Name() string { return "conservative" }

// BindDomain implements Policy; the baseline ignores characterization.
func (c *Conservative) BindDomain(DomainInfo) {}

// Decide pins the rail at nominal.
func (c *Conservative) Decide(in Input) Decision {
	if in.TargetV != in.NominalV {
		return Decision{Verdict: SetTarget, TargetV: in.NominalV}
	}
	return Decision{Verdict: Hold}
}
