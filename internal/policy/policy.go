// Package policy defines the pluggable speculation-policy contract the
// voltage control system (internal/control) drives, plus a process-wide
// registry of named policies.
//
// The control system owns the machinery every policy shares — monitor
// provisioning and probing, emergency-interrupt servicing, the stall
// watchdog and self-test cross-check, fail-safe reversion — and
// delegates exactly one thing: the per-domain decision once a window's
// worth of probes has accumulated. A Policy sees the window's observed
// correctable-error rate, the raw counters behind it, and the rail's
// current setpoint, and answers with a rail move. The paper's
// floor/ceiling error-rate ladder is one such policy (the default);
// competitors from the related work — TS Cache-style timing speculation
// (arXiv:1904.11200), static guardband reduction for MPSoCs
// (arXiv:2209.12134), and a no-speculation baseline — are registered
// alongside it, so experiments can race control strategies on identical
// chips.
//
// Determinism contract: a Policy must be a pure function of its inputs
// and its own explicit state. No clocks, no randomness, no global
// mutation — two policies of the same name fed the same decision
// sequence must emit the same verdicts, and CaptureState/RestoreState
// must round-trip every bit of mutable state so a restored run continues
// byte-identically to an uninterrupted one.
package policy

// Verdict classifies a policy's rail move.
type Verdict int

const (
	// Hold leaves the rail where it is.
	Hold Verdict = iota
	// StepDown lowers the rail Decision.Steps regulator steps.
	StepDown
	// StepUp raises the rail Decision.Steps regulator steps.
	StepUp
	// SetTarget moves the rail to the absolute setpoint
	// Decision.TargetV (used by characterization-driven policies that
	// think in volts, not steps).
	SetTarget
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Hold:
		return "hold"
	case StepDown:
		return "down"
	case StepUp:
		return "up"
	case SetTarget:
		return "set-target"
	default:
		return "unknown"
	}
}

// Input is everything a policy sees at one decision point. The control
// system fills it from the domain's active ECC monitor and rail; the
// monitor's counters cover exactly the window since the previous
// decision (they reset afterwards).
type Input struct {
	// Domain is the voltage domain deciding (control.UncoreDomainID,
	// i.e. -1, for the uncore rail).
	Domain int
	// Tick is the chip's control-tick counter at the decision.
	Tick int
	// ErrorRate is the window's correctable-error rate (Errors /
	// Accesses).
	ErrorRate float64
	// Accesses and Errors are the window's raw monitor counters.
	Accesses uint64
	Errors   uint64
	// TargetV is the rail's current regulator setpoint in volts.
	TargetV float64
	// NominalV is the operating point's rated supply in volts.
	NominalV float64
	// StepV is one regulator step in volts.
	StepV float64
}

// Decision is a policy's verdict for one domain at one decision point.
type Decision struct {
	Verdict Verdict
	// Steps is the move size for StepUp/StepDown; <= 0 means 1.
	Steps int
	// TargetV is the absolute setpoint for SetTarget.
	TargetV float64
}

// DomainInfo describes a calibrated domain to a policy: the offline
// characterization result every related-work scheme starts from.
type DomainInfo struct {
	// Domain is the voltage domain id (control.UncoreDomainID for the
	// uncore rail).
	Domain int
	// OnsetV is the calibration sweep voltage at which the domain's
	// weakest line first reported a correctable error.
	OnsetV float64
	// NominalV is the rated supply in volts.
	NominalV float64
	// StepV is one regulator step in volts.
	StepV float64
}

// Policy is one speculation control strategy. Implementations must obey
// the package determinism contract; the control system calls BindDomain
// once per calibrated domain (and again on recalibration or restore)
// before any Decide for that domain.
type Policy interface {
	// Name returns the policy's registered name.
	Name() string
	// BindDomain hands the policy a domain's calibration outcome.
	// Rebinding the same domain resets any per-domain state (a
	// recalibration is a fresh characterization).
	BindDomain(DomainInfo)
	// Decide answers one decision point.
	Decide(Input) Decision
	// CaptureState serializes the policy's mutable state (nil when the
	// policy is stateless). The blob rides the snapshot envelope.
	CaptureState() ([]byte, error)
	// RestoreState overlays previously captured state; it is called
	// after every domain has been re-bound.
	RestoreState([]byte) error
}

// stateless is embedded by policies with no mutable state.
type stateless struct{}

func (stateless) CaptureState() ([]byte, error) { return nil, nil }
func (stateless) RestoreState([]byte) error     { return nil }
