// Package plot renders time series as ASCII line charts for the
// eccspec CLI, so the paper's trace figures (voltage and error rate over
// time, error probability over voltage) can be eyeballed straight from
// a terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// markers are cycled per series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Chart configures a rendering.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// Width and Height are the plot area dimensions in characters
	// (defaults 64x16).
	Width, Height int
	// YLabel annotates the vertical axis.
	YLabel string
	// XLabel annotates the horizontal axis.
	XLabel string
}

// withDefaults fills zero fields.
func (c Chart) withDefaults() Chart {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 16
	}
	if c.Width < 8 {
		c.Width = 8
	}
	if c.Height < 4 {
		c.Height = 4
	}
	return c
}

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Render draws the chart to w. Series may have different X grids; the
// chart spans the union of their ranges. Empty input renders a note
// instead of axes.
func (c Chart) Render(w io.Writer, series ...Series) error {
	c = c.withDefaults()
	var xs, ys []float64
	for _, s := range series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return err
	}
	xMin, xMax := minMax(xs)
	yMin, yMax := minMax(ys)
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// A little vertical headroom keeps curves off the frame.
	pad := (yMax - yMin) * 0.05
	yMin -= pad
	yMax += pad

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			col := int(float64(c.Width-1) * (s.X[i] - xMin) / (xMax - xMin))
			row := int(float64(c.Height-1) * (yMax - s.Y[i]) / (yMax - yMin))
			if col >= 0 && col < c.Width && row >= 0 && row < c.Height {
				grid[row][col] = mark
			}
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	if len(series) > 1 || series[0].Name != "" {
		var legend []string
		for si, s := range series {
			name := s.Name
			if name == "" {
				name = fmt.Sprintf("series %d", si)
			}
			legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], name))
		}
		if _, err := fmt.Fprintf(w, "  [%s]\n", strings.Join(legend, "   ")); err != nil {
			return err
		}
	}
	labelW := 10
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, trim(yMax))
		case c.Height - 1:
			label = fmt.Sprintf("%*s", labelW, trim(yMin))
		case c.Height / 2:
			mid := (yMax + yMin) / 2
			if c.YLabel != "" {
				label = fmt.Sprintf("%*s", labelW, c.YLabel)
				_ = mid
			} else {
				label = fmt.Sprintf("%*s", labelW, trim(mid))
			}
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	xl := trim(xMin)
	xr := trim(xMax)
	gapLen := c.Width - len(xl) - len(xr)
	if gapLen < 1 {
		gapLen = 1
	}
	gap := strings.Repeat(" ", gapLen)
	if _, err := fmt.Fprintf(w, "%s  %s%s%s", strings.Repeat(" ", labelW), xl, gap, xr); err != nil {
		return err
	}
	if c.XLabel != "" {
		if _, err := fmt.Fprintf(w, "  (%s)", c.XLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// trim formats a float compactly.
func trim(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01 || av == 0:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
