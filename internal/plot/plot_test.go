package plot

import (
	"strings"
	"testing"
)

func TestRenderBasicShape(t *testing.T) {
	var sb strings.Builder
	c := Chart{Title: "ramp", Width: 20, Height: 6}
	err := c.Render(&sb, Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ramp") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + legend + 6 rows + x axis
	if len(lines) != 9 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderRisingLineOrientation(t *testing.T) {
	var sb strings.Builder
	c := Chart{Width: 30, Height: 10}
	err := c.Render(&sb, Series{X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// Find marker positions: high Y must be in an earlier (upper) row
	// and later column than low Y.
	var firstRow, firstCol, lastRow, lastCol int = -1, -1, -1, -1
	for r, row := range rows {
		for col, ch := range row {
			if ch == '*' {
				if firstRow == -1 {
					firstRow, firstCol = r, col
				}
				lastRow, lastCol = r, col
			}
		}
	}
	if firstRow == -1 {
		t.Fatal("no markers")
	}
	if !(firstRow < lastRow) || !(firstCol > lastCol) {
		t.Fatalf("orientation wrong: first (%d,%d) last (%d,%d)\n%s",
			firstRow, firstCol, lastRow, lastCol, sb.String())
	}
}

func TestRenderMultiSeriesLegend(t *testing.T) {
	var sb strings.Builder
	c := Chart{Width: 20, Height: 5}
	err := c.Render(&sb,
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Error("second marker missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := (Chart{Title: "t"}).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("empty chart output %q", sb.String())
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var sb strings.Builder
	c := Chart{Width: 16, Height: 5}
	err := c.Render(&sb, Series{X: []float64{5, 5, 5}, Y: []float64{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("constant series not plotted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Chart{}.withDefaults()
	if c.Width != 64 || c.Height != 16 {
		t.Fatalf("defaults %dx%d", c.Width, c.Height)
	}
	tiny := Chart{Width: 2, Height: 1}.withDefaults()
	if tiny.Width < 8 || tiny.Height < 4 {
		t.Fatalf("minimums not enforced: %dx%d", tiny.Width, tiny.Height)
	}
}

func TestTrimFormats(t *testing.T) {
	cases := map[float64]string{
		1234:   "1234",
		12.34:  "12.3",
		0.6789: "0.679",
		0:      "0.000",
	}
	for v, want := range cases {
		if got := trim(v); got != want {
			t.Errorf("trim(%v) = %q want %q", v, got, want)
		}
	}
}

func TestRenderYLabel(t *testing.T) {
	var sb strings.Builder
	c := Chart{Width: 20, Height: 7, YLabel: "V", XLabel: "time"}
	if err := c.Render(&sb, Series{X: []float64{0, 1}, Y: []float64{0.6, 0.7}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "V |") {
		t.Fatalf("y label missing:\n%s", out)
	}
	if !strings.Contains(out, "(time)") {
		t.Fatalf("x label missing:\n%s", out)
	}
}

func TestRenderManySeriesCyclesMarkers(t *testing.T) {
	var sb strings.Builder
	c := Chart{Width: 30, Height: 8}
	var series []Series
	for i := 0; i < 7; i++ { // more series than markers
		series = append(series, Series{
			Name: string(rune('a' + i)),
			X:    []float64{0, 1},
			Y:    []float64{float64(i), float64(i)},
		})
	}
	if err := c.Render(&sb, series...); err != nil {
		t.Fatal(err)
	}
	// The 7th series reuses the first marker.
	if !strings.Contains(sb.String(), "* g") {
		t.Fatalf("marker cycling broken:\n%s", sb.String())
	}
}
