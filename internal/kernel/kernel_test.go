package kernel_test

// Property tests for the batch kernels' two core contracts:
//
//   - Sample replays the scalar per-line loop (sram.ErrorProbabilities
//     plus per-line Poisson draws) bit for bit — same results, same
//     stream draws — across voltages and temperatures.
//   - Rates' memo is transparent: after any SetTemperature or
//     rail-target (voltage) change, a warm table returns exactly what a
//     freshly built, cold table computes at the new operating point.

import (
	"math"
	"sort"
	"testing"

	"eccspec/internal/kernel"
	"eccspec/internal/rng"
	"eccspec/internal/sram"
	"eccspec/internal/stats"
	"eccspec/internal/variation"
)

const (
	testSets = 64
	testWays = 8
)

// buildLines collects every line of a fresh array in the chip's
// sensitive-line order (descending onset voltage) and returns the array
// with its flattened table.
func buildLines(seed uint64) (*sram.Array, []kernel.Line) {
	m := variation.New(seed, variation.LowVoltage())
	a := sram.NewArray(m, 0, variation.KindL2D, testSets, testWays)
	lines := make([]kernel.Line, 0, testSets*testWays)
	for set := 0; set < testSets; set++ {
		for way := 0; way < testWays; way++ {
			lines = append(lines, kernel.Line{Set: set, Way: way, Profile: a.LineProfile(set, way)})
		}
	}
	sort.SliceStable(lines, func(i, j int) bool {
		return lines[i].Profile.Vmax() > lines[j].Profile.Vmax()
	})
	return a, lines
}

// scalarSample is the pre-kernel reference loop: per line in table
// order, exact probabilities from the sram model and one Poisson draw
// per nonzero probability.
func scalarSample(a *sram.Array, lines []kernel.Line, stream *rng.Stream, v, cutoff, perLine, fatalPerLine float64) (corrected int, trueMean float64, fatal bool, counts []kernel.LineCount) {
	for _, ln := range lines {
		if ln.Profile.Vmax() < cutoff {
			break
		}
		ps, pu := a.ErrorProbabilities(ln.Set, ln.Way, v)
		if ps > 0 {
			n := stats.SamplePoisson(stream, perLine*ps)
			corrected += n
			trueMean += perLine * ps
			if n > 0 {
				counts = append(counts, kernel.LineCount{Set: ln.Set, Way: ln.Way, N: n})
			}
		}
		if pu > 0 && stats.SamplePoisson(stream, fatalPerLine*pu) > 0 {
			fatal = true
		}
	}
	return corrected, trueMean, fatal, counts
}

func TestSampleMatchesScalarReference(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		a, lines := buildLines(seed)
		table := kernel.Build(a, variation.KindL2D, lines)
		vmax := lines[0].Profile.Vmax()
		const perLine, fatalPerLine = 750.0, 7.5
		draw := uint64(0)
		for _, tempC := range []float64{45, 61.5} {
			a.SetTemperature(tempC)
			// Sweep from well above the weakest onset (nothing live) down
			// into the regime where hundreds of lines have nonzero
			// probabilities, exercising both guards and the live path.
			for dv := -0.085; dv <= 0.02; dv += 0.0025 {
				v := vmax + dv
				cutoff := math.Inf(-1)
				if draw%3 == 0 {
					// Every third point: a finite onset cutoff, as the
					// chip's workload sampling uses.
					cutoff = v - 0.04
				}
				draw++
				sRef := rng.NewStream(seed, 0xEC, draw)
				sKer := rng.NewStream(seed, 0xEC, draw)
				wc, wm, wf, wl := scalarSample(a, lines, sRef, v, cutoff, perLine, fatalPerLine)
				gc, gm, gf, gl := table.SampleAll(sKer, v, cutoff, perLine, fatalPerLine)
				if gc != wc || gm != wm || gf != wf {
					t.Fatalf("seed %d v %.4f temp %.1f: kernel (%d, %g, %v) vs scalar (%d, %g, %v)",
						seed, v, tempC, gc, gm, gf, wc, wm, wf)
				}
				if len(gl) != len(wl) {
					t.Fatalf("seed %d v %.4f: %d per-line counts vs %d", seed, v, len(gl), len(wl))
				}
				for i := range gl {
					if gl[i] != wl[i] {
						t.Fatalf("seed %d v %.4f: count[%d] %+v vs %+v", seed, v, i, gl[i], wl[i])
					}
				}
				if sKer.State() != sRef.State() {
					t.Fatalf("seed %d v %.4f temp %.1f: stream states diverge (%#x vs %#x)",
						seed, v, tempC, sKer.State(), sRef.State())
				}
			}
		}
	}
}

// TestRatesInvalidation drives the aggregate memo through temperature
// and rail-target changes: every evaluation on the warm table must be
// identical to one from a cold table built fresh at the same operating
// point, i.e. the quantized-key memo may never serve a stale entry.
func TestRatesInvalidation(t *testing.T) {
	a, lines := buildLines(11)
	warm := kernel.Build(a, variation.KindL2D, lines)
	vmax := lines[0].Profile.Vmax()

	check := func(label string, v float64) {
		t.Helper()
		ps, pu, set, way := warm.Rates(v, false)
		cold := kernel.Build(a, variation.KindL2D, lines)
		cps, cpu, cset, cway := cold.Rates(v, false)
		if ps != cps || pu != cpu || set != cset || way != cway {
			t.Fatalf("%s: warm Rates (%g, %g, %d, %d) differs from cold (%g, %g, %d, %d)",
				label, ps, pu, set, way, cps, cpu, cset, cway)
		}
	}

	v1, v2 := vmax-0.03, vmax-0.045
	check("initial", v1)
	check("cached re-read", v1)

	// Rail-target change: a new setpoint lands in a different quantized
	// bucket and must be computed, not served from the v1 entry.
	check("rail target change", v2)
	check("rail target revert", v1)

	// Temperature change at an unchanged rail target: the quantized
	// temperature is part of the key, so the v1 entries cached at the
	// old temperature must not satisfy this lookup.
	a.SetTemperature(a.Temperature() + 12.5)
	check("temperature change", v1)
	check("temperature change, second target", v2)

	// Sub-bucket jitter: moving within one quantization bucket is the
	// one case the memo is allowed to coalesce, and the cold table
	// quantizes identically, so equality must still hold.
	check("sub-bucket jitter", v1+1e-5)
}
