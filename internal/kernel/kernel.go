// Package kernel holds the struct-of-arrays batch kernels behind the
// chip's per-tick hot path.
//
// The scalar tick loop walked every sensitive line of every array each
// tick and paid an erf evaluation per profiled cell, even though at
// operating voltages all but a handful of lines have flip probabilities
// that are zero to double precision. A Table flattens one array's
// sensitive-line profiles into sorted columns (line onset voltages,
// per-bit critical voltages/widths/word indices) plus precomputed
// conservative "certainly clean" thresholds, so a whole array's tick
// can be sampled with one comparison per line and exact probability
// math only for the few lines that can actually flip.
//
// Two kernels operate on a Table:
//
//   - Sample is the exact kernel: it reproduces the scalar loop's
//     floating-point operations and stream draws bit for bit, so
//     full-fidelity simulation stays byte-identical to the pre-kernel
//     implementation.
//   - Rates is the aggregate kernel for adaptive-fidelity fast-forward:
//     it sums the per-line event probabilities at a quantized
//     (voltage, temperature) point and memoizes the sums, so a stable
//     domain advances with one Poisson draw per (core, bank) instead
//     of a per-line walk. The quantized operating point is part of the
//     memo key, which is also the invalidation rule: any rail-target,
//     droop, or temperature change that moves the quantized point
//     recomputes, and recomputation always evaluates at the quantized
//     point itself so a cold cache (e.g. after checkpoint restore)
//     returns the same values a warm one would.
package kernel

import (
	"math"
	"sort"

	"eccspec/internal/rng"
	"eccspec/internal/sram"
	"eccspec/internal/stats"
	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

// safetyMarginV widens the conservative per-bit "certainly clean"
// threshold so float rounding in the one-comparison guard can never
// disagree with the exact (vcrit-v)/width < -8 test inside
// variation.FlipProbability: the guard may only ever skip cells whose
// exact flip probability is zero.
const safetyMarginV = 1e-9

// Line is one sensitive line handed to Build, in the same descending-
// onset-voltage order the chip's sensitive-line lists use.
type Line struct {
	Set, Way int
	Profile  *sram.Profile
}

// LineCount reports one line's sampled corrected-event count. The
// slice returned by Sample is scratch owned by the Table and is
// overwritten by the next Sample.
type LineCount struct {
	Set, Way int
	N        int
}

// rateEntry is one memoized aggregate evaluation; see Rates.
type rateEntry struct {
	ok     bool
	fp     bool
	wl     *workload.Workload
	vq, tq float64
	ps, pu float64
	repSet int32
	repWay int32
}

// rateEntries sizes the aggregate memo: enough buckets to cover the
// tick-to-tick droop jitter around a setpoint at both of the adjacent
// quantized temperatures without thrashing.
const rateEntries = 32

// Table is the struct-of-arrays view of one array's sensitive lines.
// It is built once per (array, age epoch) and shared by both kernels.
type Table struct {
	arr  *sram.Array
	kind variation.Kind

	// Per-line columns, ordered by descending onset voltage (the
	// chip's sensitive-line order).
	set   []int32
	way   []int32
	vmax  []float64 // Profile.Vmax per line
	vsafe []float64 // max over the line's cells of vcrit + 8*width + margin
	start []int32   // bit-column range per line; len(start) == lines+1

	// Per-bit columns, flattened in per-line profile order (descending
	// Vcrit within each line).
	vcrit []float64
	width []float64
	word  []int8
	// safeOrd/safeV hold each line's bit indices re-sorted by descending
	// "certainly clean" threshold (vcrit + 8*width + margin). At any
	// operating voltage the cells that can flip are exactly a prefix of
	// this order, so the per-bit threshold test becomes a prefix scan
	// with an early break instead of a walk over the whole profile.
	safeOrd []int32
	safeV   []float64
	cand    []int32 // lineProbabilities scratch: live bits of one line

	// exercised caches the workload footprint mask; wl identifies the
	// workload instance it was built for. fpIdx is the mask compacted
	// into line indices (vmax order preserved) so the sampling loop
	// never visits unexercised lines; allIdx is the identity order used
	// when the mask is off.
	wl        *workload.Workload
	exercised []bool
	fpIdx     []int32
	allIdx    []int32

	counts []LineCount // Sample scratch

	rates     [rateEntries]rateEntry
	rateClock int
}

// Build flattens the given sensitive lines (descending onset voltage)
// into a Table over the array.
func Build(arr *sram.Array, kind variation.Kind, lines []Line) *Table {
	t := &Table{
		arr:   arr,
		kind:  kind,
		set:   make([]int32, 0, len(lines)),
		way:   make([]int32, 0, len(lines)),
		vmax:  make([]float64, 0, len(lines)),
		vsafe: make([]float64, 0, len(lines)),
		start: make([]int32, 1, len(lines)+1),
	}
	maxBits := 0
	var bitSafe []float64
	for _, ln := range lines {
		t.set = append(t.set, int32(ln.Set))
		t.way = append(t.way, int32(ln.Way))
		t.vmax = append(t.vmax, ln.Profile.Vmax())
		lineSafe := 0.0
		for _, b := range ln.Profile.Bits {
			safe := b.Vcrit + 8*b.Width + safetyMarginV
			t.vcrit = append(t.vcrit, b.Vcrit)
			t.width = append(t.width, b.Width)
			t.word = append(t.word, int8(b.Word()))
			bitSafe = append(bitSafe, safe)
			if safe > lineSafe {
				lineSafe = safe
			}
		}
		t.vsafe = append(t.vsafe, lineSafe)
		t.start = append(t.start, int32(len(t.vcrit)))
		if n := len(ln.Profile.Bits); n > maxBits {
			maxBits = n
		}
	}
	t.safeOrd = make([]int32, len(bitSafe))
	t.safeV = make([]float64, len(bitSafe))
	t.cand = make([]int32, 0, maxBits)
	t.allIdx = make([]int32, len(lines))
	for i := range t.allIdx {
		t.allIdx[i] = int32(i)
	}
	for i := range lines {
		lo, hi := int(t.start[i]), int(t.start[i+1])
		for j := lo; j < hi; j++ {
			t.safeOrd[j] = int32(j)
		}
		ord := t.safeOrd[lo:hi]
		sort.Sort(&bySafeDesc{ord: ord, safe: bitSafe})
		for k, j := range ord {
			t.safeV[lo+k] = bitSafe[j]
		}
	}
	return t
}

// bySafeDesc orders a line's bit indices by descending clean threshold.
type bySafeDesc struct {
	ord  []int32
	safe []float64
}

func (s *bySafeDesc) Len() int           { return len(s.ord) }
func (s *bySafeDesc) Less(i, j int) bool { return s.safe[s.ord[i]] > s.safe[s.ord[j]] }
func (s *bySafeDesc) Swap(i, j int)      { s.ord[i], s.ord[j] = s.ord[j], s.ord[i] }

// Lines returns the number of sensitive lines in the table.
func (t *Table) Lines() int { return len(t.vmax) }

// EnsureFootprint (re)builds the cached workload-exercise mask. The
// mask is pure in (workload seed, kind, set, way), so it is keyed by
// workload instance and rebuilt only when the core's workload changes.
func (t *Table) EnsureFootprint(wl *workload.Workload) {
	if t.wl == wl {
		return
	}
	t.wl = wl
	if cap(t.exercised) < len(t.set) {
		t.exercised = make([]bool, len(t.set))
	}
	t.exercised = t.exercised[:len(t.set)]
	t.fpIdx = t.fpIdx[:0]
	for i := range t.exercised {
		t.exercised[i] = wl.Exercises(t.kind, int(t.set[i]), int(t.way[i]))
		if t.exercised[i] {
			t.fpIdx = append(t.fpIdx, int32(i))
		}
	}
	// The footprint is part of the aggregate's identity.
	for i := range t.rates {
		t.rates[i].ok = false
	}
}

// Sample is the exact batch kernel: one tick's worth of accesses over
// the table's lines at raw voltage v, drawing event counts from stream.
// perLine is the per-line access count, fatalPerLine the per-line
// exposure for uncorrectable sampling (perLine * FatalRateFactor), and
// cutoff the onset voltage below which lines are skipped (-Inf to
// disable, register-file mode). When footprint is true, lines outside
// the cached workload mask are skipped.
//
// The floating-point operations and stream draws are bit-for-bit those
// of the scalar loop it replaces (sram.Array.ErrorProbabilities plus
// per-line Poisson draws): the per-line and per-bit threshold guards
// only skip cells whose exact flip probability is zero, which
// contribute nothing to either probability and consume no draws.
func (t *Table) Sample(stream *rng.Stream, v, cutoff, perLine, fatalPerLine float64) (corrected int, trueMean float64, fatal bool, counts []LineCount) {
	return t.sample(stream, v, cutoff, perLine, fatalPerLine, true)
}

// SampleAll is Sample without the workload-footprint mask (register
// file: exercised continuously and completely).
func (t *Table) SampleAll(stream *rng.Stream, v, cutoff, perLine, fatalPerLine float64) (corrected int, trueMean float64, fatal bool, counts []LineCount) {
	return t.sample(stream, v, cutoff, perLine, fatalPerLine, false)
}

func (t *Table) sample(stream *rng.Stream, v, cutoff, perLine, fatalPerLine float64, footprint bool) (corrected int, trueMean float64, fatal bool, counts []LineCount) {
	t.counts = t.counts[:0]
	vEff := v - t.arr.Model.TempShift(t.arr.Temperature())
	var first, second [sram.WordsPerLine]float64
	idx := t.allIdx
	if footprint {
		idx = t.fpIdx
	}
	for _, i := range idx {
		if t.vmax[i] < cutoff {
			break
		}
		if vEff > t.vsafe[i] {
			// Every cell of the line is provably clean: the scalar
			// loop would compute (0, 0) and draw nothing.
			continue
		}
		ps, pu := t.lineProbabilities(int(i), vEff, &first, &second)
		if ps > 0 {
			n := stats.SamplePoissonFast(stream, perLine*ps)
			corrected += n
			trueMean += perLine * ps
			if n > 0 {
				t.counts = append(t.counts, LineCount{Set: int(t.set[i]), Way: int(t.way[i]), N: n})
			}
		}
		if pu > 0 && stats.SamplePoissonFast(stream, fatalPerLine*pu) > 0 {
			fatal = true
		}
	}
	return corrected, trueMean, fatal, t.counts
}

// lineProbabilities is the batch-table replay of
// sram.Array.ErrorProbabilities for line i at effective voltage vEff:
// identical accumulation order over the cells whose flip probability is
// nonzero, with threshold guards skipping only provably-zero cells.
func (t *Table) lineProbabilities(i int, vEff float64, first, second *[sram.WordsPerLine]float64) (ps, pu float64) {
	// The live cells — those the scalar loop's threshold guards would
	// not skip — are a prefix of the line's descending-threshold order.
	// Collect them, then restore profile order (ascending index) so the
	// accumulation below replays the scalar loop's float operations
	// exactly. The prefix is tiny, so insertion sort suffices, and the
	// standard two-profiled-cells-per-word line fits in stack scratch.
	var candBuf [2 * sram.WordsPerLine]int32
	lo, hi := t.start[i], t.start[i+1]
	cand := candBuf[:0]
	if int(hi-lo) > len(candBuf) {
		cand = t.cand[:0]
	}
	safeV := t.safeV[lo:hi]
	safeOrd := t.safeOrd[lo:hi]
	for k := 0; k < len(safeV); k++ {
		if vEff > safeV[k] {
			break
		}
		cand = append(cand, safeOrd[k])
	}
	for a := 1; a < len(cand); a++ {
		x := cand[a]
		b := a - 1
		for b >= 0 && cand[b] > x {
			cand[b+1] = cand[b]
			b--
		}
		cand[b+1] = x
	}
	// Word occupancy is tracked in bitmasks instead of clearing the
	// first/second arrays between lines: with ~1 live cell per line the
	// arrays are almost entirely untouched, and stale entries are masked
	// out by the occupancy bits. WordsPerLine is 8, so a byte suffices.
	anyClean := 1.0
	var haveFirst, haveSecond uint8
	for _, j := range cand {
		// variation.FlipProbability, manually inlined (the call sits on
		// the hot path's dominant loop and is too branchy for the
		// compiler to inline): bit-for-bit the same arithmetic.
		var pf float64
		if w := t.width[j]; w <= 0 {
			if vEff < t.vcrit[j] {
				pf = 1
			}
		} else {
			x := (t.vcrit[j] - vEff) / w
			switch {
			case x > 8:
				pf = 1
			case x < -8:
				pf = 0
			default:
				pf = 0.5 * (1 + math.Erf(x/math.Sqrt2))
			}
		}
		if pf == 0 {
			continue
		}
		anyClean *= 1 - pf
		w := t.word[j]
		if haveFirst&(1<<w) == 0 {
			haveFirst |= 1 << w
			first[w] = pf
		} else if haveSecond&(1<<w) == 0 {
			haveSecond |= 1 << w
			second[w] = pf
		}
	}
	pu = 0.0
	if haveSecond != 0 {
		uncClean := 1.0
		for w := 0; w < sram.WordsPerLine; w++ {
			if haveSecond&(1<<w) != 0 {
				uncClean *= 1 - first[w]*second[w]
			}
		}
		pu = 1 - uncClean
	}
	pAny := 1 - anyClean
	return pAny - pu, pu
}

// quantize rounds the operating point onto the aggregate-memo grid:
// half-millivolt voltage buckets and tenth-degree temperature buckets.
func quantize(v, tempC float64) (vq, tq float64) {
	return float64(int64(v*2000+0.5)) / 2000, float64(int64(tempC*10+0.5)) / 10
}

// Rates returns the table's summed per-access correctable and
// uncorrectable event probabilities at the quantized operating point
// nearest (v, current temperature), plus a representative line (the
// live line with the highest onset voltage) for event attribution.
// footprint selects whether the workload mask applies.
//
// Used by adaptive-fidelity fast-forward: corrected events for a whole
// (core, bank) follow Poisson(perLine * ps). Evaluations are memoized
// per (quantized voltage, quantized temperature, footprint identity);
// the quantized key doubles as the invalidation rule for rail and
// temperature changes, and because the sums are computed at the
// quantized point itself, a cold cache reproduces a warm one's values
// exactly.
func (t *Table) Rates(v float64, footprint bool) (ps, pu float64, repSet, repWay int) {
	vq, tq := quantize(v, t.arr.Temperature())
	wl := t.wl
	if !footprint {
		wl = nil
	}
	for i := range t.rates {
		e := &t.rates[i]
		if e.ok && e.fp == footprint && e.wl == wl && e.vq == vq && e.tq == tq {
			return e.ps, e.pu, int(e.repSet), int(e.repWay)
		}
	}
	var first, second [sram.WordsPerLine]float64
	vEff := vq - t.arr.Model.TempShift(tq)
	repSet, repWay = -1, -1
	for i := range t.vmax {
		if footprint && !t.exercised[i] {
			continue
		}
		if vEff > t.vsafe[i] {
			continue
		}
		lps, lpu := t.lineProbabilities(i, vEff, &first, &second)
		if lps > 0 || lpu > 0 {
			if repSet < 0 {
				repSet, repWay = int(t.set[i]), int(t.way[i])
			}
			ps += lps
			pu += lpu
		}
	}
	e := &t.rates[t.rateClock%rateEntries]
	t.rateClock++
	*e = rateEntry{ok: true, fp: footprint, wl: wl, vq: vq, tq: tq,
		ps: ps, pu: pu, repSet: int32(repSet), repWay: int32(repWay)}
	return ps, pu, repSet, repWay
}
