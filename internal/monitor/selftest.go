package monitor

import (
	"eccspec/internal/cache"
	"eccspec/internal/ecc"
)

// FirmwareSelfTest approximates the hardware ECC monitor the way the
// paper's own evaluation does (§IV-A2): real Itanium hardware has no ECC
// monitor, so System Firmware claims each core's second hardware thread
// and continuously runs the Fig. 7 targeted cache-line test against the
// designated weak line, while the primary thread keeps running the OS
// workload.
//
// Functionally it exposes the same Prober surface as the hardware
// Monitor, with two fidelity differences that the methodology experiment
// quantifies:
//
//   - it cannot de-configure the target line (that takes the hardware
//     design), so the line keeps serving workload data and every probe
//     pass perturbs cache state around it; and
//   - each probe costs real pipeline cycles on the core (the Fig. 7
//     dance is ~20 memory accesses), unlike the hardware monitor's
//     idle-cycle probing. ProbeOverheadSeconds reports the cost so
//     callers can charge it to the core.
type FirmwareSelfTest struct {
	cfg  Config
	hier *cache.Hierarchy
	// data selects the data-side (L2D) or instruction-side (L2I) test.
	data     bool
	set, way int
	active   bool

	accesses  uint64
	errors    uint64
	emergency bool

	// probeCost is the simulated wall time of one targeted test pass.
	probeCost float64
	costAccum float64
}

// NewFirmwareSelfTest builds a self-test agent on a core's hierarchy.
// data selects the L2D (true) or L2I (false) side.
func NewFirmwareSelfTest(h *cache.Hierarchy, data bool, cfg Config) *FirmwareSelfTest {
	cfgD := cfg.withDefaults()
	// One pass issues ~20 accesses, mostly L2 hits (9 cycles) plus the
	// branch/setup glue; ~300 core cycles per pass.
	clockHz := 340e6
	return &FirmwareSelfTest{
		cfg:       cfgD,
		hier:      h,
		data:      data,
		probeCost: 300.0 / clockHz,
	}
}

// Active reports whether the agent is probing a line.
func (f *FirmwareSelfTest) Active() bool { return f.active }

// Target returns the probed line's coordinates.
func (f *FirmwareSelfTest) Target() (set, way int) { return f.set, f.way }

// Activate points the agent at a line. Unlike the hardware monitor it
// cannot remove the line from service — a limitation of the firmware
// approximation the paper calls out.
func (f *FirmwareSelfTest) Activate(set, way int) {
	f.set, f.way = set, way
	f.active = true
	f.ResetCounters()
}

// Deactivate stops probing.
func (f *FirmwareSelfTest) Deactivate() {
	f.active = false
	f.ResetCounters()
}

// Probe runs one Fig. 7 targeted test pass at effective voltage v and
// returns whether the designated line raised an ECC event.
func (f *FirmwareSelfTest) Probe(v float64) bool {
	if !f.active {
		panic("monitor: firmware self-test probe while inactive")
	}
	events, _ := f.hier.TargetedL2Test(f.set, f.data, v)
	f.accesses++
	f.costAccum += f.probeCost
	hit := false
	for _, ev := range events {
		if ev.Set != f.set || ev.Way != f.way {
			continue
		}
		hit = true
		if ev.Status == ecc.Uncorrectable {
			f.emergency = true
		}
	}
	if hit {
		f.errors++
	}
	if f.accesses >= f.cfg.MinAccessesForEmergency &&
		f.ErrorRate() >= f.cfg.EmergencyCeiling {
		f.emergency = true
	}
	return hit
}

// ProbeN runs n passes and returns how many raised events.
func (f *FirmwareSelfTest) ProbeN(n int, v float64) int {
	hits := 0
	for i := 0; i < n; i++ {
		if f.Probe(v) {
			hits++
		}
	}
	return hits
}

// Counters returns accesses and errors since the last reset.
func (f *FirmwareSelfTest) Counters() (accesses, errors uint64) {
	return f.accesses, f.errors
}

// ErrorRate returns errors/accesses (0 before any access).
func (f *FirmwareSelfTest) ErrorRate() float64 {
	if f.accesses == 0 {
		return 0
	}
	return float64(f.errors) / float64(f.accesses)
}

// ResetCounters clears the counters.
func (f *FirmwareSelfTest) ResetCounters() { f.accesses, f.errors = 0, 0 }

// TakeEmergency returns and clears the emergency latch.
func (f *FirmwareSelfTest) TakeEmergency() bool {
	e := f.emergency
	f.emergency = false
	return e
}

// TakeOverheadSeconds returns and clears the accumulated core time spent
// running self-test passes; callers charge it to the core as lost
// cycles.
func (f *FirmwareSelfTest) TakeOverheadSeconds() float64 {
	c := f.costAccum
	f.costAccum = 0
	return c
}
