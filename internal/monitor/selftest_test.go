package monitor

import (
	"math"
	"testing"

	"eccspec/internal/cache"
	"eccspec/internal/variation"
)

// testSelfTestHierarchy builds a small hierarchy and locates the weakest
// L2D line.
func testSelfTestHierarchy(seed uint64) (*cache.Hierarchy, int, int, float64) {
	m := variation.New(seed, variation.LowVoltage())
	cfg := cache.HierarchyConfig{
		L1I:        cache.Config{Name: "L1I", Kind: variation.KindL1I, Sets: 8, Ways: 4, HitLatency: 1},
		L1D:        cache.Config{Name: "L1D", Kind: variation.KindL1D, Sets: 8, Ways: 4, HitLatency: 1},
		L2I:        cache.Config{Name: "L2I", Kind: variation.KindL2I, Sets: 64, Ways: 8, HitLatency: 9},
		L2D:        cache.Config{Name: "L2D", Kind: variation.KindL2D, Sets: 32, Ways: 8, HitLatency: 9},
		MemLatency: 100,
	}
	h := cache.NewHierarchy(cfg, 0, m, nil)
	set, way, p := h.L2D.Array().WeakestLine()
	return h, set, way, p.Vmax()
}

func TestSelfTestLifecycle(t *testing.T) {
	h, set, way, _ := testSelfTestHierarchy(1)
	st := NewFirmwareSelfTest(h, true, Config{})
	if st.Active() {
		t.Fatal("active before Activate")
	}
	st.Activate(set, way)
	if !st.Active() {
		t.Fatal("inactive after Activate")
	}
	gs, gw := st.Target()
	if gs != set || gw != way {
		t.Fatalf("target (%d,%d), want (%d,%d)", gs, gw, set, way)
	}
	// The firmware approximation cannot de-configure the line.
	if h.L2D.LineDisabled(set, way) {
		t.Fatal("firmware self-test must not de-configure the line")
	}
	st.Deactivate()
	if st.Active() {
		t.Fatal("still active after Deactivate")
	}
}

func TestSelfTestProbePanicsInactive(t *testing.T) {
	h, _, _, _ := testSelfTestHierarchy(2)
	st := NewFirmwareSelfTest(h, true, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Probe(0.8)
}

func TestSelfTestCleanAtSafeVoltage(t *testing.T) {
	h, set, way, _ := testSelfTestHierarchy(3)
	st := NewFirmwareSelfTest(h, true, Config{})
	st.Activate(set, way)
	if hits := st.ProbeN(100, 0.95); hits != 0 {
		t.Fatalf("%d hits at safe voltage", hits)
	}
	acc, errs := st.Counters()
	if acc != 100 || errs != 0 {
		t.Fatalf("counters %d/%d", errs, acc)
	}
}

func TestSelfTestMatchesHardwareMonitorRate(t *testing.T) {
	// At the weak line's onset voltage the firmware self-test must
	// measure the same error rate as the privileged hardware monitor —
	// this equivalence is what justified the paper's methodology.
	h, set, way, vmax := testSelfTestHierarchy(5)
	st := NewFirmwareSelfTest(h, true, Config{EmergencyCeiling: 0.999})
	st.Activate(set, way)
	st.ProbeN(1500, vmax)
	fwRate := st.ErrorRate()

	h2, set2, way2, vmax2 := testSelfTestHierarchy(5)
	mon := New(h2.L2D, Config{EmergencyCeiling: 0.999})
	mon.Activate(set2, way2)
	mon.ProbeN(1500, vmax2)
	hwRate := mon.ErrorRate()

	if math.Abs(fwRate-hwRate) > 0.08 {
		t.Fatalf("rates diverge: firmware %.3f vs hardware %.3f", fwRate, hwRate)
	}
	if fwRate < 0.2 {
		t.Fatalf("firmware self-test missed the weak line: rate %.3f", fwRate)
	}
}

func TestSelfTestAccumulatesOverhead(t *testing.T) {
	h, set, way, _ := testSelfTestHierarchy(7)
	st := NewFirmwareSelfTest(h, true, Config{})
	st.Activate(set, way)
	st.ProbeN(50, 0.9)
	c1 := st.TakeOverheadSeconds()
	if c1 <= 0 {
		t.Fatal("no overhead accumulated")
	}
	if c2 := st.TakeOverheadSeconds(); c2 != 0 {
		t.Fatalf("overhead not cleared: %v", c2)
	}
	st.ProbeN(100, 0.9)
	if c3 := st.TakeOverheadSeconds(); math.Abs(c3-2*c1) > 1e-12 {
		t.Fatalf("overhead not linear in probes: %v vs %v", c3, 2*c1)
	}
}

func TestSelfTestEmergencyDeepBelowOnset(t *testing.T) {
	h, set, way, vmax := testSelfTestHierarchy(9)
	st := NewFirmwareSelfTest(h, true, Config{EmergencyCeiling: 0.5, MinAccessesForEmergency: 10})
	st.Activate(set, way)
	st.ProbeN(40, vmax-0.08)
	if !st.TakeEmergency() {
		t.Fatal("no emergency at ~100% error rate")
	}
	if st.TakeEmergency() {
		t.Fatal("latch not cleared")
	}
}

func TestSelfTestInstructionSide(t *testing.T) {
	h, _, _, _ := testSelfTestHierarchy(11)
	set, way, p := h.L2I.Array().WeakestLine()
	st := NewFirmwareSelfTest(h, false, Config{EmergencyCeiling: 0.999})
	st.Activate(set, way)
	st.ProbeN(600, p.Vmax())
	if st.ErrorRate() < 0.2 {
		t.Fatalf("instruction-side self-test rate %.3f too low", st.ErrorRate())
	}
}
