package monitor

import (
	"math"
	"testing"

	"eccspec/internal/cache"
	"eccspec/internal/variation"
)

// testCache builds a small L2D-class cache and returns it with the
// coordinates and onset voltage of its weakest line.
func testCache(seed uint64) (*cache.Cache, int, int, float64) {
	m := variation.New(seed, variation.LowVoltage())
	c := cache.New(cache.Config{Name: "L2D", Kind: variation.KindL2D,
		Sets: 16, Ways: 4, HitLatency: 9}, 0, m)
	set, way, p := c.Array().WeakestLine()
	return c, set, way, p.Vmax()
}

func TestActivateDisablesLine(t *testing.T) {
	c, set, way, _ := testCache(1)
	mon := New(c, Config{})
	if mon.Active() {
		t.Fatal("monitor active before Activate")
	}
	mon.Activate(set, way)
	if !mon.Active() {
		t.Fatal("monitor inactive after Activate")
	}
	if !c.LineDisabled(set, way) {
		t.Fatal("target line not de-configured")
	}
	gs, gw := mon.Target()
	if gs != set || gw != way {
		t.Fatalf("target (%d,%d), want (%d,%d)", gs, gw, set, way)
	}
	mon.Deactivate()
	if mon.Active() || c.LineDisabled(set, way) {
		t.Fatal("Deactivate did not restore the line")
	}
}

func TestActivateMovesTarget(t *testing.T) {
	c, set, way, _ := testCache(2)
	mon := New(c, Config{})
	mon.Activate(set, way)
	other := (way + 1) % 4
	mon.Activate(set, other)
	if c.LineDisabled(set, way) {
		t.Fatal("old target still disabled after re-activation")
	}
	if !c.LineDisabled(set, other) {
		t.Fatal("new target not disabled")
	}
}

func TestProbePanicsWhileInactive(t *testing.T) {
	c, _, _, _ := testCache(3)
	mon := New(c, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mon.Probe(0.8)
}

func TestProbeCleanAtSafeVoltage(t *testing.T) {
	c, set, way, _ := testCache(4)
	mon := New(c, Config{})
	mon.Activate(set, way)
	hits := mon.ProbeN(500, 0.95)
	if hits != 0 {
		t.Fatalf("%d hits at safe voltage", hits)
	}
	acc, errs := mon.Counters()
	if acc != 500 || errs != 0 {
		t.Fatalf("counters %d/%d", errs, acc)
	}
	if mon.ErrorRate() != 0 {
		t.Fatalf("rate %v", mon.ErrorRate())
	}
}

func TestProbeRateTracksFlipProbability(t *testing.T) {
	c, set, way, vmax := testCache(5)
	mon := New(c, Config{EmergencyCeiling: 0.99})
	mon.Activate(set, way)
	// At the onset voltage the weakest cell flips ~half the time.
	mon.ProbeN(2000, vmax)
	rate := mon.ErrorRate()
	if math.Abs(rate-0.5) > 0.1 {
		t.Fatalf("rate %v at onset voltage, want ~0.5", rate)
	}
}

func TestErrorRateZeroBeforeAccesses(t *testing.T) {
	c, set, way, _ := testCache(6)
	mon := New(c, Config{})
	mon.Activate(set, way)
	if mon.ErrorRate() != 0 {
		t.Fatal("rate nonzero before any probe")
	}
}

func TestResetCounters(t *testing.T) {
	c, set, way, vmax := testCache(7)
	mon := New(c, Config{EmergencyCeiling: 0.99})
	mon.Activate(set, way)
	mon.ProbeN(100, vmax)
	mon.ResetCounters()
	acc, errs := mon.Counters()
	if acc != 0 || errs != 0 {
		t.Fatalf("counters after reset: %d/%d", errs, acc)
	}
}

func TestEmergencyLatchesAboveCeiling(t *testing.T) {
	c, set, way, vmax := testCache(8)
	mon := New(c, Config{EmergencyCeiling: 0.5, MinAccessesForEmergency: 10})
	mon.Activate(set, way)
	// Far below onset: every read errors, rate ~1.0 > 0.5.
	mon.ProbeN(50, vmax-0.08)
	if !mon.TakeEmergency() {
		t.Fatal("emergency not latched at ~100% error rate")
	}
	if mon.TakeEmergency() {
		t.Fatal("TakeEmergency did not clear the latch")
	}
}

func TestNoEmergencyBelowMinAccesses(t *testing.T) {
	c, set, way, vmax := testCache(9)
	mon := New(c, Config{EmergencyCeiling: 0.5, MinAccessesForEmergency: 1000})
	mon.Activate(set, way)
	// Probe above the pair-failure region so no uncorrectable fires,
	// but where single-bit errors are near-certain.
	p := c.Array().LineProfile(set, way)
	v := vmax - 0.02
	if pu := c.Array().UncorrectableProbability(set, way, v); pu > 1e-6 {
		t.Skipf("uncorrectable probability %v too high for this seed", pu)
	}
	_ = p
	mon.ProbeN(100, v)
	if mon.TakeEmergency() {
		t.Fatal("emergency latched before MinAccessesForEmergency")
	}
}

func TestProbeCountsAccessesOncePerCycle(t *testing.T) {
	c, set, way, _ := testCache(10)
	mon := New(c, Config{})
	mon.Activate(set, way)
	mon.ProbeN(137, 0.95)
	acc, _ := mon.Counters()
	if acc != 137 {
		t.Fatalf("accesses %d, want 137", acc)
	}
}

func TestMonitorDoesNotDisturbOtherLines(t *testing.T) {
	c, set, way, _ := testCache(11)
	otherWay := (way + 1) % 4
	// Park known data in a neighbouring line.
	var data [8]uint64
	for i := range data {
		data[i] = 0xDEAD0000 + uint64(i)
	}
	c.WriteLine(set, otherWay, data)
	mon := New(c, Config{})
	mon.Activate(set, way)
	mon.ProbeN(200, 0.95)
	res := c.ReadLine(set, otherWay, 0.95)
	if res.Data != data {
		t.Fatal("monitor probing corrupted a neighbouring line")
	}
}

func BenchmarkProbe(b *testing.B) {
	c, set, way, _ := testCache(42)
	mon := New(c, Config{})
	mon.Activate(set, way)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Probe(0.70)
	}
}
