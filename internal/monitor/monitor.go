// Package monitor implements the paper's hardware ECC monitor (§III-A):
// a small unit in each cache controller that continuously probes one
// designated weak cache line and reports its correctable-error rate.
//
// The monitor writes a test pattern into the line, reads it back, and
// counts two things: accesses and ECC-corrected events. Their ratio is
// the line's error rate at the current effective voltage — a direct,
// workload-independent measurement of the remaining timing margin. The
// voltage control system (internal/control) polls these counters to
// steer the supply.
//
// Every cache controller is provisioned with a monitor because the
// location of the weakest line is unknown at design time; calibration
// activates only the monitor guarding the weakest line per voltage
// domain and leaves the rest idle. The targeted line is de-configured
// from normal allocation, so probing steals only idle cache cycles and
// one line of capacity.
//
// An emergency mechanism backs up the periodic polling: when the
// observed error rate crosses the emergency ceiling (default 80%), the
// monitor latches an interrupt that the controller must service with a
// large voltage increment.
package monitor

import (
	"eccspec/internal/cache"
	"eccspec/internal/ecc"
	"eccspec/internal/sram"
)

// DefaultEmergencyCeiling is the error rate that latches the emergency
// interrupt.
const DefaultEmergencyCeiling = 0.80

// defaultPatterns are the march-style test patterns the monitor rotates
// through; alternating and solid patterns exercise both cell polarities.
var defaultPatterns = []uint64{
	0x5555555555555555,
	0xAAAAAAAAAAAAAAAA,
	0x0000000000000000,
	0xFFFFFFFFFFFFFFFF,
}

// patternImages holds the encoded line image of each test pattern.
// Probes rewrite the monitor line every cycle, so the images are
// encoded once here instead of per write.
var patternImages = func() [][sram.WordsPerLine]ecc.Codeword {
	imgs := make([][sram.WordsPerLine]ecc.Codeword, len(defaultPatterns))
	for i, p := range defaultPatterns {
		cw := ecc.Encode(p)
		for j := range imgs[i] {
			imgs[i][j] = cw
		}
	}
	return imgs
}()

// Config tunes a monitor.
type Config struct {
	// EmergencyCeiling is the error rate that latches the emergency
	// interrupt; <= 0 selects DefaultEmergencyCeiling.
	EmergencyCeiling float64
	// MinAccessesForEmergency avoids declaring an emergency from a
	// couple of unlucky reads; the rate check arms only after this many
	// accesses since the last counter reset.
	MinAccessesForEmergency uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.EmergencyCeiling <= 0 {
		c.EmergencyCeiling = DefaultEmergencyCeiling
	}
	if c.MinAccessesForEmergency == 0 {
		c.MinAccessesForEmergency = 20
	}
	return c
}

// FaultMode selects an injected hardware fault for a monitor. The zero
// value is a healthy monitor; the non-zero modes model the sensor
// failures the control loop must survive (internal/faultinject drives
// them, internal/control detects them via SelfTest and its stall
// watchdog).
type FaultMode int

const (
	// FaultNone is a healthy monitor.
	FaultNone FaultMode = iota
	// FaultStuckZero models a stuck-at datapath: probes still consume
	// cache cycles and count accesses, but no error is ever reported —
	// the controller would walk the voltage off a cliff if it trusted
	// the rate. The built-in self test catches it.
	FaultStuckZero
	// FaultDropout models a dead sensor: probes do nothing and the
	// counters freeze, so the controller sees a stale error rate
	// forever. Caught by the controller's stall watchdog.
	FaultDropout
	// FaultDUE models the probed line genuinely failing hard: every
	// probe raises an uncorrectable (detected-uncorrectable) event and
	// latches the emergency interrupt. The monitor itself is healthy —
	// this exercises the paper's emergency path, not the self test.
	FaultDUE
)

// Monitor is one cache controller's ECC monitor.
type Monitor struct {
	cfg   Config
	cache *cache.Cache
	// Target line; valid only while active.
	set, way int
	active   bool
	fault    FaultMode

	accesses  uint64
	errors    uint64
	emergency bool
	pattern   int
}

// New provisions a monitor on a cache controller, initially inactive.
func New(c *cache.Cache, cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), cache: c}
}

// Cache returns the cache this monitor is attached to.
func (m *Monitor) Cache() *cache.Cache { return m.cache }

// Active reports whether the monitor is probing a line.
func (m *Monitor) Active() bool { return m.active }

// Target returns the probed line's coordinates (valid while active).
func (m *Monitor) Target() (set, way int) { return m.set, m.way }

// Activate points the monitor at a line and removes that line from
// normal cache allocation. Counters reset.
func (m *Monitor) Activate(set, way int) {
	if m.active {
		m.Deactivate()
	}
	m.set, m.way = set, way
	m.cache.DisableLine(set, way)
	m.active = true
	m.ResetCounters()
}

// Deactivate stops probing and returns the line to service.
func (m *Monitor) Deactivate() {
	if !m.active {
		return
	}
	m.cache.EnableLine(m.set, m.way)
	m.active = false
	m.ResetCounters()
}

// Probe performs one self-test cycle at effective voltage v: write the
// next test pattern into the target line, read it back, update counters.
// It returns true when the read raised any ECC event. Probe panics if
// the monitor is inactive — activation is a calibration-time invariant.
func (m *Monitor) Probe(v float64) bool {
	if !m.active {
		panic("monitor: probe while inactive")
	}
	if m.fault == FaultDropout {
		// Dead sensor: no access happens, counters stay frozen.
		return false
	}
	m.cache.WriteLineEncoded(m.set, m.way, &patternImages[m.pattern])
	m.pattern = (m.pattern + 1) % len(defaultPatterns)
	res := m.cache.ProbeLine(m.set, m.way, v)
	m.accesses++
	switch m.fault {
	case FaultStuckZero:
		// The access happened (cell physics advanced as usual) but the
		// error report is stuck at zero.
		return false
	case FaultDUE:
		m.errors++
		m.emergency = true
		return true
	}
	hit := false
	for _, ev := range res.Events {
		if ev.Status == ecc.Corrected || ev.Status == ecc.Uncorrectable {
			hit = true
		}
		// An uncorrectable on the dedicated test line is not fatal to
		// the program (the line holds no architectural data) but is an
		// immediate emergency signal.
		if ev.Status == ecc.Uncorrectable {
			m.emergency = true
		}
	}
	if hit {
		m.errors++
	}
	if m.accesses >= m.cfg.MinAccessesForEmergency &&
		m.ErrorRate() >= m.cfg.EmergencyCeiling {
		m.emergency = true
	}
	return hit
}

// ProbeN performs n probe cycles and returns the number that raised
// events.
func (m *Monitor) ProbeN(n int, v float64) int {
	hits := 0
	for i := 0; i < n; i++ {
		if m.Probe(v) {
			hits++
		}
	}
	return hits
}

// Counters returns the access and error counts since the last reset.
func (m *Monitor) Counters() (accesses, errors uint64) {
	return m.accesses, m.errors
}

// ErrorRate returns errors/accesses (0 before any access).
func (m *Monitor) ErrorRate() float64 {
	if m.accesses == 0 {
		return 0
	}
	return float64(m.errors) / float64(m.accesses)
}

// ResetCounters clears the counters (the controller does this after each
// reading, per §III-A).
func (m *Monitor) ResetCounters() {
	m.accesses, m.errors = 0, 0
}

// TakeEmergency returns and clears the latched emergency interrupt.
func (m *Monitor) TakeEmergency() bool {
	e := m.emergency
	m.emergency = false
	return e
}

// SetFault injects (or with FaultNone clears) a hardware fault.
func (m *Monitor) SetFault(f FaultMode) { m.fault = f }

// Fault returns the currently injected fault mode.
func (m *Monitor) Fault() FaultMode { return m.fault }

// SelfTest models the monitor's built-in self test: a pure status check
// with no cache accesses or randomness (hardware BIST runs out-of-band).
// It reports false when the probe datapath is broken — stuck-at or
// sensor dropout. A FaultDUE monitor passes: the sensor works, the line
// under test genuinely fails, and the emergency path handles that.
func (m *Monitor) SelfTest() bool {
	return m.fault != FaultStuckZero && m.fault != FaultDropout
}

// State is a monitor's mutable state for checkpointing. The target line
// itself is recorded by the control system's assignment; State carries
// only what Activate does not reconstruct.
type State struct {
	Accesses  uint64 `json:"accesses"`
	Errors    uint64 `json:"errors"`
	Emergency bool   `json:"emergency,omitempty"`
	Pattern   int    `json:"pattern"`
}

// CaptureState reads the monitor's counters, latched interrupt, and
// pattern-rotation position.
func (m *Monitor) CaptureState() State {
	return State{Accesses: m.accesses, Errors: m.errors,
		Emergency: m.emergency, Pattern: m.pattern}
}

// RestoreState overwrites the counters, latched interrupt, and pattern
// position. Call after Activate (which resets them).
func (m *Monitor) RestoreState(st State) {
	m.accesses, m.errors = st.Accesses, st.Errors
	m.emergency = st.Emergency
	if len(defaultPatterns) > 0 {
		m.pattern = ((st.Pattern % len(defaultPatterns)) + len(defaultPatterns)) % len(defaultPatterns)
	}
}
