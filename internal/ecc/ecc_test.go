package ecc

import (
	"testing"
	"testing/quick"

	"eccspec/internal/rng"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xA5A5A5A5A5A5A5A5, 0x123456789ABCDEF0} {
		c := Encode(data)
		got, st, pos := Decode(c)
		if st != Clean {
			t.Errorf("data %#x: status %v, want clean", data, st)
		}
		if got != data {
			t.Errorf("data %#x: decoded %#x", data, got)
		}
		if pos != -1 {
			t.Errorf("data %#x: clean decode returned position %d", data, pos)
		}
	}
}

func TestSingleBitCorrectionAllPositions(t *testing.T) {
	data := uint64(0xDEADBEEFCAFEF00D)
	for pos := 0; pos < CodewordBits; pos++ {
		c := Encode(data)
		c.FlipBit(pos)
		got, st, corrected := Decode(c)
		if st != Corrected {
			t.Fatalf("flip at %d: status %v, want corrected", pos, st)
		}
		if got != data {
			t.Fatalf("flip at %d: decoded %#x, want %#x", pos, got, data)
		}
		if corrected != pos {
			t.Fatalf("flip at %d: reported position %d", pos, corrected)
		}
	}
}

func TestDoubleBitDetectionSample(t *testing.T) {
	data := uint64(0x0F0F0F0F00FF00FF)
	for p1 := 0; p1 < CodewordBits; p1 += 5 {
		for p2 := p1 + 1; p2 < CodewordBits; p2 += 7 {
			c := Encode(data)
			c.FlipBit(p1)
			c.FlipBit(p2)
			_, st, _ := Decode(c)
			if st != Uncorrectable {
				t.Fatalf("flips at %d,%d: status %v, want uncorrectable", p1, p2, st)
			}
		}
	}
}

func TestDoubleBitDetectionExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive double-bit scan skipped in -short")
	}
	data := uint64(0x5555AAAA3333CCCC)
	for p1 := 0; p1 < CodewordBits; p1++ {
		for p2 := p1 + 1; p2 < CodewordBits; p2++ {
			c := Encode(data)
			c.FlipBit(p1)
			c.FlipBit(p2)
			_, st, _ := Decode(c)
			if st != Uncorrectable {
				t.Fatalf("flips at %d,%d: status %v, want uncorrectable", p1, p2, st)
			}
		}
	}
}

func TestSyndromeZeroForCleanWord(t *testing.T) {
	for _, data := range []uint64{0, 42, ^uint64(0)} {
		if s := Syndrome(Encode(data)); s != 0 {
			t.Errorf("clean word %#x has syndrome %d", data, s)
		}
	}
}

func TestExtractDataRoundTrip(t *testing.T) {
	for _, data := range []uint64{0, 1, ^uint64(0), 0x8000000000000001} {
		if got := ExtractData(Encode(data)); got != data {
			t.Errorf("ExtractData(Encode(%#x)) = %#x", data, got)
		}
	}
}

func TestDataPositionsUniqueNonParity(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < WordBits; i++ {
		p := DataPosition(i)
		if p <= 0 || p >= CodewordBits {
			t.Fatalf("data bit %d at invalid position %d", i, p)
		}
		if IsCheckBit(p) {
			t.Fatalf("data bit %d mapped to check position %d", i, p)
		}
		if seen[p] {
			t.Fatalf("duplicate data position %d", p)
		}
		seen[p] = true
	}
}

func TestDataPositionPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DataPosition(64) did not panic")
		}
	}()
	DataPosition(WordBits)
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipBit(72) did not panic")
		}
	}()
	var c Codeword
	c.FlipBit(CodewordBits)
}

func TestIsCheckBit(t *testing.T) {
	checks := map[int]bool{0: true, 1: true, 2: true, 3: false, 4: true,
		5: false, 8: true, 16: true, 32: true, 64: true, 63: false, 71: false}
	for pos, want := range checks {
		if got := IsCheckBit(pos); got != want {
			t.Errorf("IsCheckBit(%d) = %v, want %v", pos, got, want)
		}
	}
}

func TestFlipBitInvolution(t *testing.T) {
	c := Encode(0xABCDEF)
	orig := c
	for pos := 0; pos < CodewordBits; pos++ {
		c.FlipBit(pos)
		c.FlipBit(pos)
	}
	if c != orig {
		t.Fatal("double flip did not restore codeword")
	}
}

func TestStatusString(t *testing.T) {
	if Clean.String() != "clean" || Corrected.String() != "corrected" ||
		Uncorrectable.String() != "uncorrectable" || Status(9).String() != "unknown" {
		t.Fatal("Status.String mismatch")
	}
}

// Property: the table-driven encoder matches the bit-level definition.
func TestQuickEncodeMatchesSlow(t *testing.T) {
	f := func(data uint64) bool {
		return Encode(data) == encodeSlow(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips arbitrary data.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, st, _ := Decode(Encode(data))
		return st == Clean && got == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single flip of arbitrary data is corrected back.
func TestQuickSingleFlipCorrected(t *testing.T) {
	f := func(data uint64, posSeed uint8) bool {
		pos := int(posSeed) % CodewordBits
		c := Encode(data)
		c.FlipBit(pos)
		got, st, cp := Decode(c)
		return st == Corrected && got == data && cp == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any distinct double flip is flagged uncorrectable (and never
// silently mis-corrected into Clean).
func TestQuickDoubleFlipDetected(t *testing.T) {
	f := func(data uint64, s1, s2 uint8) bool {
		p1 := int(s1) % CodewordBits
		p2 := int(s2) % CodewordBits
		if p1 == p2 {
			return true
		}
		c := Encode(data)
		c.FlipBit(p1)
		c.FlipBit(p2)
		_, st, _ := Decode(c)
		return st == Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Triple-bit errors are beyond the code's guarantees, but the decoder must
// still return a definite classification without panicking.
func TestTripleFlipNoPanic(t *testing.T) {
	st := rng.NewStream(1)
	for i := 0; i < 1000; i++ {
		c := Encode(st.Uint64())
		p1 := st.Intn(CodewordBits)
		p2 := (p1 + 1 + st.Intn(CodewordBits-1)) % CodewordBits
		p3 := (p2 + 1 + st.Intn(CodewordBits-1)) % CodewordBits
		if p3 == p1 {
			continue
		}
		c.FlipBit(p1)
		c.FlipBit(p2)
		c.FlipBit(p3)
		_, s, _ := Decode(c)
		_ = s
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	c := Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(c)
	}
}

func BenchmarkDecodeCorrected(b *testing.B) {
	c := Encode(0xDEADBEEF)
	c.FlipBit(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(c)
	}
}
