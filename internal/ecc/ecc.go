// Package ecc implements the single-error-correct, double-error-detect
// (SECDED) Hamming(72,64) code used by the simulated caches.
//
// Every 64-bit data word is stored with 8 check bits: 7 Hamming parity
// bits plus one overall parity bit. On a read, the decoder classifies the
// word as clean, corrected (exactly one bit flipped — the ECC hardware
// fixes it and reports a benign "correctable error" event), or detected
// uncorrectable (two bits flipped — a machine-check in real hardware).
//
// These classifications are the paper's entire feedback channel: the
// voltage speculation system drives supply voltage down until designated
// weak cells produce a steady trickle of *correctable* events, and backs
// off long before the uncorrectable regime.
//
// Layout. Codeword bit positions 1..71 hold the Hamming(71,64) code:
// positions 1, 2, 4, 8, 16, 32, 64 are parity bits and the remaining 64
// positions carry data bits in ascending order. Position 0 holds the
// overall parity of positions 1..71, extending the code to SECDED.
package ecc

import "math/bits"

// Status classifies the outcome of decoding a codeword.
type Status int

const (
	// Clean: no error detected.
	Clean Status = iota
	// Corrected: a single-bit error was detected and corrected. This is
	// the benign "correctable error" event that guides speculation.
	Corrected
	// Uncorrectable: a double-bit error was detected but cannot be
	// corrected. In the simulated chip this is a fatal machine check.
	Uncorrectable
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return "unknown"
	}
}

// WordBits is the number of data bits protected per codeword.
const WordBits = 64

// CodewordBits is the total number of stored bits per codeword.
const CodewordBits = 72

// Codeword is a 72-bit stored word: Lo holds bit positions 0..63 and the
// low 8 bits of Hi hold positions 64..71.
type Codeword struct {
	Lo uint64
	Hi uint64
}

// dataPositions[i] is the codeword position of data bit i: the positions
// 1..71 that are not powers of two, ascending.
var dataPositions [WordBits]int

// parityMaskLo/Hi[j] select the codeword bits participating in Hamming
// parity check j (positions whose index has bit j set), including the
// parity bit at position 1<<j itself.
var (
	parityMaskLo [7]uint64
	parityMaskHi [7]uint64
)

// encodeTable[b][v] is the full codeword (data placement plus parity
// contributions) of data byte b holding value v; Encode XORs eight
// lookups. Built once at init from the bit-level definition.
var encodeTable [8][256]Codeword

func init() {
	i := 0
	for pos := 1; pos <= 71; pos++ {
		if pos&(pos-1) != 0 { // not a power of two: data position
			dataPositions[i] = pos
			i++
		}
	}
	if i != WordBits {
		panic("ecc: data position table construction failed")
	}
	for j := 0; j < 7; j++ {
		for pos := 1; pos <= 71; pos++ {
			if pos&(1<<j) != 0 {
				if pos < 64 {
					parityMaskLo[j] |= 1 << uint(pos)
				} else {
					parityMaskHi[j] |= 1 << uint(pos-64)
				}
			}
		}
	}
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			encodeTable[b][v] = encodeSlow(uint64(v) << uint(8*b))
		}
	}
}

// bit returns codeword bit at position pos (0..71).
func (c Codeword) bit(pos int) uint64 {
	if pos < 64 {
		return (c.Lo >> uint(pos)) & 1
	}
	return (c.Hi >> uint(pos-64)) & 1
}

// setBit sets codeword bit pos to v (0 or 1).
func (c *Codeword) setBit(pos int, v uint64) {
	if pos < 64 {
		c.Lo = (c.Lo &^ (1 << uint(pos))) | (v << uint(pos))
	} else {
		c.Hi = (c.Hi &^ (1 << uint(pos-64))) | (v << uint(pos-64))
	}
}

// FlipBit inverts codeword bit pos (0..71). It is the fault-injection
// hook used by the SRAM model. FlipBit panics on an out-of-range
// position: fault coordinates are generated internally, so a bad position
// is a programming error.
func (c *Codeword) FlipBit(pos int) {
	if pos < 0 || pos >= CodewordBits {
		panic("ecc: FlipBit position out of range")
	}
	if pos < 64 {
		c.Lo ^= 1 << uint(pos)
	} else {
		c.Hi ^= 1 << uint(pos-64)
	}
}

// parity returns the XOR-parity (0 or 1) of the selected codeword bits.
func parity(lo, hi uint64) uint64 {
	return uint64((bits.OnesCount64(lo) + bits.OnesCount64(hi)) & 1)
}

// encodeSlow computes the SECDED codeword bit by bit; it defines the
// code and seeds the byte-wise encode table.
func encodeSlow(data uint64) Codeword {
	var c Codeword
	for i := 0; i < WordBits; i++ {
		c.setBit(dataPositions[i], (data>>uint(i))&1)
	}
	for j := 0; j < 7; j++ {
		// Parity bit at position 1<<j makes check j even. The bit is
		// currently 0, so set it to the parity of the other members.
		p := parity(c.Lo&parityMaskLo[j], c.Hi&parityMaskHi[j])
		c.setBit(1<<j, p)
	}
	// Overall parity over positions 1..71 makes the whole word even.
	c.setBit(0, parity(c.Lo&^1, c.Hi))
	return c
}

// Encode computes the SECDED codeword for a 64-bit data word. The code
// is linear, so the codeword is the XOR of the per-byte table entries.
func Encode(data uint64) Codeword {
	var c Codeword
	for b := 0; b < 8; b++ {
		e := &encodeTable[b][byte(data>>uint(8*b))]
		c.Lo ^= e.Lo
		c.Hi ^= e.Hi
	}
	return c
}

// ExtractData returns the 64 data bits of a codeword without any error
// checking. Use Decode for checked reads.
//
// Data bits occupy the six contiguous position runs between parity
// positions (3, 5..7, 9..15, 17..31, 33..63, 65..71), so extraction is
// a fixed sequence of shifts and masks rather than a per-bit loop; this
// is the hottest operation in cache sweeps.
func ExtractData(c Codeword) uint64 {
	lo := c.Lo
	return (lo>>3)&0x1 |
		(lo>>5)&0x7<<1 |
		(lo>>9)&0x7f<<4 |
		(lo>>17)&0x7fff<<11 |
		(lo>>33)&0x7fffffff<<26 |
		(c.Hi>>1)&0x7f<<57
}

// Syndrome returns the 7-bit Hamming syndrome of a codeword. A zero
// syndrome means no error among positions 1..71 (or an even number of
// compensating errors the code cannot see).
func Syndrome(c Codeword) int {
	s := 0
	for j := 0; j < 7; j++ {
		if parity(c.Lo&parityMaskLo[j], c.Hi&parityMaskHi[j]) != 0 {
			s |= 1 << j
		}
	}
	return s
}

// Decode checks and, if possible, corrects a codeword. It returns the
// decoded data word, the classification, and for Corrected results the
// codeword bit position that was repaired (-1 otherwise).
//
// Decoding rules (standard extended-Hamming):
//
//	syndrome == 0, overall parity even: clean
//	syndrome != 0, overall parity odd:  single error at position syndrome
//	syndrome == 0, overall parity odd:  single error in the parity bit
//	syndrome != 0, overall parity even: double error, uncorrectable
//
// On Uncorrectable the returned data is the best-effort raw extraction
// and must not be trusted.
func Decode(c Codeword) (data uint64, st Status, pos int) {
	s := Syndrome(c)
	odd := parity(c.Lo, c.Hi) != 0
	switch {
	case s == 0 && !odd:
		return ExtractData(c), Clean, -1
	case s != 0 && odd:
		if s >= CodewordBits {
			// A syndrome pointing outside the word means the error
			// pattern is not a single bit flip.
			return ExtractData(c), Uncorrectable, -1
		}
		c.FlipBit(s)
		return ExtractData(c), Corrected, s
	case s == 0 && odd:
		// The overall parity bit itself flipped; data is intact.
		c.FlipBit(0)
		return ExtractData(c), Corrected, 0
	default: // s != 0 && !odd
		return ExtractData(c), Uncorrectable, -1
	}
}

// DataPosition returns the codeword position that stores data bit i
// (0 <= i < 64). It panics on out-of-range i.
func DataPosition(i int) int {
	if i < 0 || i >= WordBits {
		panic("ecc: DataPosition index out of range")
	}
	return dataPositions[i]
}

// IsCheckBit reports whether codeword position pos holds a parity bit
// rather than a data bit.
func IsCheckBit(pos int) bool {
	if pos == 0 {
		return true
	}
	return pos&(pos-1) == 0
}
