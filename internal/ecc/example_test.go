package ecc_test

import (
	"fmt"

	"eccspec/internal/ecc"
)

// Example shows the SECDED life cycle: a stored word survives one bit
// flip (corrected, with a benign event) and detects two.
func Example() {
	data := uint64(0xCAFEF00D)
	cw := ecc.Encode(data)

	// One flipped cell: corrected transparently.
	cw1 := cw
	cw1.FlipBit(17)
	got, st, pos := ecc.Decode(cw1)
	fmt.Printf("single flip: %s at bit %d, data intact: %v\n", st, pos, got == data)

	// Two flipped cells in the same word: detected, not correctable.
	cw2 := cw
	cw2.FlipBit(17)
	cw2.FlipBit(42)
	_, st2, _ := ecc.Decode(cw2)
	fmt.Printf("double flip: %s\n", st2)

	// Output:
	// single flip: corrected at bit 17, data intact: true
	// double flip: uncorrectable
}
