package chip

// Checkpoint support: State captures every mutable quantity the tick
// loop consumes or accumulates, so a chip restored onto a freshly
// constructed specimen of the same seed continues bit-exactly. Derived
// quantities (weak-cell maps, rail resonances, logic floors, sensitive-
// line caches) are pure functions of the seed and are reconstructed by
// New, not serialized.
//
// Cache line *contents* are deliberately not part of the state: reads
// are the only faulting operation, every consumer of line data writes
// its pattern before reading (monitor probes, calibration sweeps), and
// event classification depends only on which stored bits flip — so the
// stored words cannot influence anything after a restore.

import (
	"fmt"
	"math"

	"eccspec/internal/mca"
	"eccspec/internal/sram"
)

// RailState is one supply line's mutable state (the resonance frequency
// is seed-derived and reconstructed).
type RailState struct {
	TargetV float64 `json:"target_v"`
}

// ArrayState is one SRAM structure's mutable state. Stream is the fault-
// sampling generator position; AgeHours rebuilds the aged weak-cell
// profiles; TempC feeds the temperature shift of the fault model.
type ArrayState struct {
	Stream   uint64  `json:"stream"`
	AgeHours float64 `json:"age_hours,omitempty"`
	TempC    float64 `json:"temp_c"`
}

// CoreState is one core's mutable state.
type CoreState struct {
	Alive    bool    `json:"alive"`
	Fatal    string  `json:"fatal,omitempty"`
	TempC    float64 `json:"temp_c"`
	EnergyJ  float64 `json:"energy_j"`
	MeterS   float64 `json:"meter_s"`
	Work     float64 `json:"work"`
	Overhead float64 `json:"overhead,omitempty"`
	LastEff  float64 `json:"last_eff"`
	LastAct  float64 `json:"last_act"`

	// Workload position: accumulated runtime and noise-stream state.
	// WorkloadElapsed and WorkloadNoise are meaningful only when a
	// workload is assigned (HasWorkload).
	HasWorkload     bool    `json:"has_workload,omitempty"`
	WorkloadElapsed float64 `json:"workload_elapsed,omitempty"`
	WorkloadNoise   uint64  `json:"workload_noise,omitempty"`

	L2D     ArrayState `json:"l2d"`
	L2I     ArrayState `json:"l2i"`
	L1D     ArrayState `json:"l1d"`
	L1I     ArrayState `json:"l1i"`
	RegFile ArrayState `json:"reg_file"`
}

// DomainState is one voltage domain's mutable state.
type DomainState struct {
	Rail    RailState `json:"rail"`
	LastEff float64   `json:"last_eff"`
}

// State is the chip's full mutable state.
type State struct {
	TimeS float64 `json:"time_s"`
	// Ticks is the integer control-tick counter. TimeS is kept
	// alongside it (not derived) because the accumulated float time
	// differs from Ticks*TickSeconds in the last ulp; see Chip.Time.
	Ticks  int    `json:"ticks,omitempty"`
	Stream uint64 `json:"stream"`

	Cores   []CoreState   `json:"cores"`
	Domains []DomainState `json:"domains"`

	UncoreRail  RailState  `json:"uncore_rail"`
	UncoreDead  bool       `json:"uncore_dead,omitempty"`
	UncoreEff   float64    `json:"uncore_eff"`
	LastUncoreW float64    `json:"last_uncore_w"`
	UncoreJ     float64    `json:"uncore_j"`
	UncoreS     float64    `json:"uncore_s"`
	L3          ArrayState `json:"l3"`

	MCA mca.LogState `json:"mca"`

	// Adaptive-fidelity state; all zero for full-fidelity runs, so
	// pre-fidelity blobs — and full-fidelity blobs from this version —
	// keep their exact shape.
	FastForward bool  `json:"fast_forward,omitempty"`
	FFTicks     int64 `json:"fast_forward_ticks,omitempty"`
	Dropbacks   int64 `json:"fidelity_dropbacks,omitempty"`
}

// CaptureState snapshots the chip's mutable state.
func (c *Chip) CaptureState() State {
	st := State{
		TimeS:       c.time,
		Ticks:       c.ticks,
		Stream:      c.stream.State(),
		UncoreRail:  RailState{TargetV: c.UncoreRail.Target()},
		UncoreDead:  c.uncoreDead,
		UncoreEff:   c.uncoreEff,
		LastUncoreW: c.lastUncoreW,
		L3:          captureArray(c.L3.Array()),
		MCA:         c.MCA.CaptureState(),
		FastForward: c.fastForward,
		FFTicks:     c.ffTicks,
		Dropbacks:   c.dropbacks,
	}
	st.UncoreJ, st.UncoreS = c.uncoreMeter.State()
	for _, co := range c.Cores {
		cs := CoreState{
			Alive:    co.alive,
			Fatal:    co.fatal,
			TempC:    co.tempC,
			Work:     co.work,
			Overhead: co.overhead,
			LastEff:  co.lastEff,
			LastAct:  co.lastAct,
			L2D:      captureArray(co.Hier.L2D.Array()),
			L2I:      captureArray(co.Hier.L2I.Array()),
			L1D:      captureArray(co.Hier.L1D.Array()),
			L1I:      captureArray(co.Hier.L1I.Array()),
			RegFile:  captureArray(co.RegFile),
		}
		cs.EnergyJ, cs.MeterS = co.meter.State()
		if co.wl != nil {
			cs.HasWorkload = true
			cs.WorkloadElapsed, cs.WorkloadNoise = co.wl.SnapshotState()
		}
		st.Cores = append(st.Cores, cs)
	}
	for _, d := range c.Domains {
		st.Domains = append(st.Domains, DomainState{
			Rail:    RailState{TargetV: d.Rail.Target()},
			LastEff: d.lastEff,
		})
	}
	return st
}

// RestoreState overwrites the chip's mutable state with a captured one.
// The chip must have been constructed with the same Params (same seed,
// geometry, and operating point) that produced the state; a geometry
// mismatch is reported as an error.
func (c *Chip) RestoreState(st State) error {
	if len(st.Cores) != len(c.Cores) {
		return fmt.Errorf("chip: state has %d cores, chip has %d", len(st.Cores), len(c.Cores))
	}
	if len(st.Domains) != len(c.Domains) {
		return fmt.Errorf("chip: state has %d domains, chip has %d", len(st.Domains), len(c.Domains))
	}
	c.time = st.TimeS
	c.ticks = st.Ticks
	if st.Ticks == 0 && st.TimeS > 0 {
		// Legacy state from before the integer counter: reconstruct it
		// from the accumulated time (exact for any realistic run
		// length; the accumulated error stays far below half a tick).
		c.ticks = int(math.Round(st.TimeS / c.P.TickSeconds))
	}
	c.stream.SetState(st.Stream)
	c.UncoreRail.SetTarget(st.UncoreRail.TargetV)
	c.uncoreDead = st.UncoreDead
	c.uncoreEff = st.UncoreEff
	c.lastUncoreW = st.LastUncoreW
	c.uncoreMeter.SetState(st.UncoreJ, st.UncoreS)
	restoreArray(c.L3.Array(), st.L3)
	c.MCA.RestoreState(st.MCA)
	for i, co := range c.Cores {
		cs := st.Cores[i]
		co.alive = cs.Alive
		co.fatal = cs.Fatal
		co.tempC = cs.TempC
		co.meter.SetState(cs.EnergyJ, cs.MeterS)
		co.work = cs.Work
		co.overhead = cs.Overhead
		co.lastEff = cs.LastEff
		co.lastAct = cs.LastAct
		if cs.HasWorkload {
			if co.wl == nil {
				return fmt.Errorf("chip: state core %d has a workload, chip core does not", i)
			}
			co.wl.RestoreState(cs.WorkloadElapsed, cs.WorkloadNoise)
		}
		restoreArray(co.Hier.L2D.Array(), cs.L2D)
		restoreArray(co.Hier.L2I.Array(), cs.L2I)
		restoreArray(co.Hier.L1D.Array(), cs.L1D)
		restoreArray(co.Hier.L1I.Array(), cs.L1I)
		restoreArray(co.RegFile, cs.RegFile)
		// Aged profiles invalidate the cached sensitive-line lists.
		co.InvalidateSensitivity()
	}
	for i, d := range c.Domains {
		d.Rail.SetTarget(st.Domains[i].Rail.TargetV)
		d.lastEff = st.Domains[i].LastEff
	}
	// Restored after the rails: SetTarget fires the rail-change hooks,
	// which must not count as drop-backs against the restored state.
	c.fastForward = st.FastForward && c.adaptiveFid
	c.ffTicks = st.FFTicks
	c.dropbacks = st.Dropbacks
	return nil
}

func captureArray(a *sram.Array) ArrayState {
	return ArrayState{Stream: a.StreamState(), AgeHours: a.Age(), TempC: a.Temperature()}
}

func restoreArray(a *sram.Array, st ArrayState) {
	a.SetAge(st.AgeHours)
	a.SetTemperature(st.TempC)
	a.SetStreamState(st.Stream)
}
