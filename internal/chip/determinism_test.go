package chip

import (
	"testing"

	"eccspec/internal/workload"
)

// TestChipDeterminism: two chips built from the same seed and driven
// identically produce identical tick reports — the simulation is a pure
// function of the seed, which is what makes experiments reproducible and
// the paper's "same lines err run after run" observation hold.
func TestChipDeterminism(t *testing.T) {
	build := func() *Chip {
		c := New(DefaultParams(1234, true, false))
		for i, co := range c.Cores {
			if i%2 == 0 {
				co.SetWorkload(workload.StressTest(), 1234)
			} else {
				co.SetWorkload(workload.Idle(), 1234)
			}
		}
		return c
	}
	a, b := build(), build()
	a.Domains[0].Rail.SetTarget(0.690)
	b.Domains[0].Rail.SetTarget(0.690)
	for tick := 0; tick < 300; tick++ {
		ra, rb := a.Step(), b.Step()
		for i := range ra.Cores {
			if ra.Cores[i] != rb.Cores[i] {
				t.Fatalf("tick %d core %d diverged:\n%+v\n%+v",
					tick, i, ra.Cores[i], rb.Cores[i])
			}
		}
	}
}

// TestChipSeedsDiffer: different seeds are different chips — their weak
// line maps must not coincide.
func TestChipSeedsDiffer(t *testing.T) {
	a := New(DefaultParams(1, true, false))
	b := New(DefaultParams(2, true, false))
	sa, wa, pa := a.Cores[0].Hier.L2D.Array().WeakestLine()
	sb, wb, pb := b.Cores[0].Hier.L2D.Array().WeakestLine()
	if sa == sb && wa == wb && pa.Vmax() == pb.Vmax() {
		t.Fatal("two different seeds produced the same weakest line")
	}
}

// TestWorkloadErrorDeterminismAcrossRuns: the same chip under the same
// workload at the same voltage reports roughly the same error counts in
// repeated runs (§II-D: "at the same Vdd levels, cores exhibit roughly
// the same number of errors in multiple runs").
func TestWorkloadErrorDeterminismAcrossRuns(t *testing.T) {
	count := func() int {
		c := New(DefaultParams(77, true, false))
		co := c.Cores[0]
		co.SetWorkload(workload.StressTest(), 77)
		for _, other := range c.Cores[1:] {
			other.SetWorkload(workload.Idle(), 77)
		}
		// Park near the weakest line's onset where errors are steady.
		_, _, p := co.Hier.L2D.Array().WeakestLine()
		c.DomainOf(0).Rail.SetTarget(p.Vmax() + 0.005)
		total := 0
		for tick := 0; tick < 500; tick++ {
			rep := c.Step()
			total += rep.Cores[0].CorrectedD + rep.Cores[0].CorrectedI
		}
		return total
	}
	a, b := count(), count()
	if a != b {
		// Identical seeds share identical streams, so the counts are
		// exactly equal — any difference means hidden global state.
		t.Fatalf("repeated runs differ: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no errors observed at the onset voltage")
	}
}
