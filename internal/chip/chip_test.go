package chip

import (
	"math"
	"testing"

	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

// testChip builds a low-voltage chip at scaled geometry.
func testChip(seed uint64) *Chip {
	return New(DefaultParams(seed, true, false))
}

func TestNewTopology(t *testing.T) {
	c := testChip(1)
	if len(c.Cores) != 8 {
		t.Fatalf("%d cores", len(c.Cores))
	}
	if len(c.Domains) != 4 {
		t.Fatalf("%d domains", len(c.Domains))
	}
	for id := 0; id < 8; id++ {
		dom := c.DomainOf(id)
		found := false
		for _, cid := range dom.CoreIDs {
			if cid == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("core %d not in its domain %d", id, dom.ID)
		}
	}
	// Core pairs share rails.
	if c.DomainOf(0) != c.DomainOf(1) || c.DomainOf(0) == c.DomainOf(2) {
		t.Fatal("core pair rail sharing broken")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	p := DefaultParams(1, true, false)
	p.NumCores = 7 // not divisible by CoresPerRail
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(p)
}

func TestDomainsStartAtNominal(t *testing.T) {
	c := testChip(1)
	for _, d := range c.Domains {
		if d.Rail.Target() != c.P.Point.NominalVdd {
			t.Fatalf("domain %d starts at %v", d.ID, d.Rail.Target())
		}
	}
	if c.UncoreRail.Target() != c.P.Point.NominalVdd {
		t.Fatal("uncore rail not at nominal")
	}
}

func TestStepAtNominalIsSafe(t *testing.T) {
	c := testChip(2)
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), c.P.Seed)
	}
	for i := 0; i < 100; i++ {
		rep := c.Step()
		for _, cr := range rep.Cores {
			if cr.Fatal {
				t.Fatalf("core %d died at nominal: %s", cr.CoreID, cr.FatalCause)
			}
			if cr.CorrectedD+cr.CorrectedI+cr.CorrectedRF != 0 {
				t.Fatalf("errors at nominal voltage on core %d", cr.CoreID)
			}
		}
	}
	if c.Time() < 0.099 {
		t.Fatalf("time %v after 100 ticks", c.Time())
	}
}

func TestStepPowerPlausible(t *testing.T) {
	c := testChip(3)
	c.Cores[0].SetWorkload(workload.StressTest(), 3)
	var rep TickReport
	for i := 0; i < 10; i++ {
		rep = c.Step()
	}
	p := rep.Cores[0].PowerW
	if p < 0.5 || p > 15 {
		t.Fatalf("core power %v W implausible", p)
	}
	if c.Cores[0].Energy() <= 0 {
		t.Fatal("no energy accumulated")
	}
	if c.UncoreEnergy() <= 0 {
		t.Fatal("no uncore energy accumulated")
	}
	if c.TotalEnergy() <= c.UncoreEnergy() {
		t.Fatal("total energy should include cores")
	}
}

func TestEffectiveBelowTargetUnderLoad(t *testing.T) {
	c := testChip(4)
	c.Cores[0].SetWorkload(workload.StressTest(), 4)
	rep := c.Step()
	if rep.Cores[0].Effective >= c.DomainOf(0).Rail.Target() {
		t.Fatalf("no droop: effective %v, target %v",
			rep.Cores[0].Effective, c.DomainOf(0).Rail.Target())
	}
}

func TestIdleCoreDroopsLessThanLoaded(t *testing.T) {
	c := testChip(5)
	c.Cores[0].SetWorkload(workload.StressTest(), 5)
	c.Cores[2].SetWorkload(workload.Idle(), 5)
	rep := c.Step()
	droopLoaded := c.Domains[0].Rail.Target() - rep.Cores[0].Effective
	droopIdle := c.Domains[1].Rail.Target() - rep.Cores[2].Effective
	if droopLoaded <= droopIdle {
		t.Fatalf("loaded droop %v not above idle droop %v", droopLoaded, droopIdle)
	}
}

func TestLogicCrashBelowFloor(t *testing.T) {
	c := testChip(6)
	co := c.Cores[0]
	co.SetWorkload(workload.Idle(), 6)
	c.DomainOf(0).Rail.SetTarget(co.LogicVmin() - 0.02)
	rep := c.Step()
	if !rep.Cores[0].Fatal || rep.Cores[0].FatalCause != "logic" {
		t.Fatalf("expected logic crash, got %+v", rep.Cores[0])
	}
	if co.Alive() {
		t.Fatal("core still alive after crash")
	}
	// Dead cores don't accumulate anything further.
	e := co.Energy()
	c.Step()
	if co.Energy() != e {
		t.Fatal("dead core accumulated energy")
	}
	co.Revive()
	if !co.Alive() || co.FatalCause() != "" {
		t.Fatal("revive failed")
	}
}

func TestCorrectableErrorsAppearBeforeCrash(t *testing.T) {
	// The paper's central empirical claim: as Vdd is lowered, benign
	// correctable errors always appear before the core actually fails.
	c := testChip(7)
	co := c.Cores[0]
	co.SetWorkload(workload.StressTest(), 7)
	dom := c.DomainOf(0)

	var firstErrV, crashV float64
	for v := c.P.Point.NominalVdd; v > 0.40; v -= 0.005 {
		dom.Rail.SetTarget(v)
		errs := 0
		crashed := false
		for i := 0; i < 50 && !crashed; i++ {
			rep := c.Step()
			errs += rep.Cores[0].CorrectedD + rep.Cores[0].CorrectedI
			crashed = rep.Cores[0].Fatal
		}
		if errs > 0 && firstErrV == 0 {
			firstErrV = v
		}
		if crashed {
			crashV = v
			break
		}
	}
	if crashV == 0 {
		t.Fatal("core never crashed in sweep")
	}
	if firstErrV == 0 {
		t.Fatal("no correctable errors before crash — ECC early warning broken")
	}
	if firstErrV <= crashV {
		t.Fatalf("first error at %v not above crash at %v", firstErrV, crashV)
	}
	if firstErrV-crashV < 0.015 {
		t.Fatalf("speculation margin only %v V at the low point", firstErrV-crashV)
	}
}

func TestSensitiveLinesContainWeakest(t *testing.T) {
	c := testChip(8)
	co := c.Cores[0]
	floor := c.SensitivityFloor()
	lines := co.SensitiveLines(variation.KindL2D, floor)
	if len(lines) == 0 {
		t.Fatal("no sensitive L2D lines found")
	}
	set, way, p := co.Hier.L2D.Array().WeakestLine()
	found := false
	for _, sl := range lines {
		if sl.Set == set && sl.Way == way {
			found = true
		}
		if sl.Profile.Vmax() < floor {
			t.Fatalf("line (%d,%d) below floor in sensitive list", sl.Set, sl.Way)
		}
	}
	if !found {
		t.Fatalf("weakest line (%d,%d, Vmax %v) missing from sensitive list",
			set, way, p.Vmax())
	}
	// Cached: second call returns identical slice.
	again := co.SensitiveLines(variation.KindL2D, floor)
	if &again[0] != &lines[0] {
		t.Fatal("sensitive lines not cached")
	}
	co.InvalidateSensitivity()
	fresh := co.SensitiveLines(variation.KindL2D, floor)
	if len(fresh) != len(lines) {
		t.Fatal("re-scan after invalidation differs")
	}
}

func TestOverheadReducesWork(t *testing.T) {
	c1, c2 := testChip(9), testChip(9)
	c1.Cores[0].SetWorkload(workload.StressTest(), 9)
	c2.Cores[0].SetWorkload(workload.StressTest(), 9)
	c2.Cores[0].SetOverheadFraction(0.5)
	for i := 0; i < 20; i++ {
		c1.Step()
		c2.Step()
	}
	w1, w2 := c1.Cores[0].Work(), c2.Cores[0].Work()
	if w2 >= w1 {
		t.Fatalf("overhead did not reduce work: %v vs %v", w2, w1)
	}
	if w2 < 0.45*w1 || w2 > 0.55*w1 {
		t.Fatalf("50%% overhead gave work ratio %v", w2/w1)
	}
}

func TestOverheadClamped(t *testing.T) {
	c := testChip(10)
	c.Cores[0].SetOverheadFraction(-1)
	c.Cores[0].SetOverheadFraction(2)
	// No panic and work still non-negative after a step.
	c.Cores[0].SetWorkload(workload.Idle(), 10)
	c.Step()
	if c.Cores[0].Work() < 0 {
		t.Fatal("negative work")
	}
}

func TestResetAccounting(t *testing.T) {
	c := testChip(11)
	c.Cores[0].SetWorkload(workload.StressTest(), 11)
	c.Step()
	c.Cores[0].ResetAccounting()
	if c.Cores[0].Energy() != 0 || c.Cores[0].Work() != 0 {
		t.Fatal("accounting not reset")
	}
}

func TestHighVoltagePointRegFileVulnerable(t *testing.T) {
	// At the nominal (2.53 GHz) point the paper sees a mix of cache and
	// register-file errors; at the low point, only L2 errors. Check the
	// model reproduces the structural difference.
	hi := New(DefaultParams(12, false, false))
	lo := New(DefaultParams(12, true, false))
	floorHi := hi.SensitivityFloor()
	floorLo := lo.SensitivityFloor()
	if n := len(hi.Cores[0].SensitiveLines(variation.KindRegFile, floorHi)); n == 0 {
		t.Error("high point: register file has no sensitive lines")
	}
	if n := len(lo.Cores[0].SensitiveLines(variation.KindRegFile, floorLo)); n != 0 {
		t.Errorf("low point: register file has %d sensitive lines, want 0", n)
	}
	if n := len(lo.Cores[0].SensitiveLines(variation.KindL2D, floorLo)); n == 0 {
		t.Error("low point: L2D has no sensitive lines")
	}
	// L1s stay robust at both points.
	if n := len(lo.Cores[0].SensitiveLines(variation.KindL1D, floorLo)); n != 0 {
		t.Errorf("low point: L1D has %d sensitive lines, want 0", n)
	}
}

func TestVirusWorkloadIncreasesDroop(t *testing.T) {
	clock := variation.LowVoltage().FrequencyHz
	cRes := testChip(13)
	cOff := testChip(13)
	cRes.Cores[1].SetWorkload(workload.Virus(8, clock), 13)
	cOff.Cores[1].SetWorkload(workload.Virus(0, clock), 13)
	repRes := cRes.Step()
	repOff := cOff.Step()
	droopRes := cRes.Domains[0].Rail.Target() - repRes.Cores[0].Effective
	droopOff := cOff.Domains[0].Rail.Target() - repOff.Cores[0].Effective
	if droopRes <= droopOff {
		t.Fatalf("NOP-8 virus droop %v not above NOP-0 %v (resonance missing)",
			droopRes, droopOff)
	}
}

func BenchmarkStepStress(b *testing.B) {
	c := testChip(42)
	for _, co := range c.Cores {
		co.SetWorkload(workload.StressTest(), 42)
	}
	// Warm sensitive-line caches.
	c.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func TestThermalModelHeatsUnderLoad(t *testing.T) {
	c := testChip(30)
	c.Cores[0].SetWorkload(workload.StressTest(), 30)
	c.Cores[2].SetWorkload(workload.Idle(), 30)
	start := c.Cores[0].Temperature()
	// Run well past the thermal time constant.
	var loaded, idle float64
	for i := 0; i < 6000; i++ {
		rep := c.Step()
		loaded = rep.Cores[0].TempC
		idle = rep.Cores[2].TempC
	}
	if loaded <= start {
		t.Fatalf("loaded core did not heat: %v -> %v", start, loaded)
	}
	if loaded <= idle+1 {
		t.Fatalf("loaded core (%.1fC) not hotter than idle core (%.1fC)", loaded, idle)
	}
	// Steady state should approach ambient + R*P.
	want := c.P.AmbientC + c.P.ThermalResistance*c.Cores[0].AveragePower()
	if math.Abs(loaded-want) > 3 {
		t.Fatalf("steady temp %.1fC, expected near %.1fC", loaded, want)
	}
}

func TestThermalFeedbackRaisesLeakage(t *testing.T) {
	// The same core at the same voltage draws more power hot than cold.
	p := DefaultParams(31, true, false)
	cold := p.CorePower.Total(0.8, p.Point.FrequencyHz, 0.5, 45)
	hot := p.CorePower.Total(0.8, p.Point.FrequencyHz, 0.5, 75)
	if hot <= cold {
		t.Fatalf("leakage not increasing with temperature: %v vs %v", hot, cold)
	}
}

func TestDefaultParamsAtInterpolates(t *testing.T) {
	p500 := DefaultParamsAt(1, 500e6, false)
	if p500.Point.FrequencyHz != 500e6 {
		t.Fatalf("frequency %v", p500.Point.FrequencyHz)
	}
	if p500.Point.NominalVdd <= 0.800 || p500.Point.NominalVdd >= 1.100 {
		t.Fatalf("nominal %v outside the anchor range", p500.Point.NominalVdd)
	}
	if p500.Rail.VNominal != p500.Point.NominalVdd {
		t.Fatal("rail nominal not aligned with the operating point")
	}
	// The chip must build and run at the interpolated point.
	c := New(p500)
	c.Cores[0].SetWorkload(workload.StressTest(), 1)
	rep := c.Step()
	if rep.Cores[0].Fatal {
		t.Fatal("interpolated chip died at nominal")
	}
}

func TestUncoreFloorAndRevive(t *testing.T) {
	c := testChip(40)
	if c.UncoreVmin() <= 0.4 || c.UncoreVmin() >= 0.6 {
		t.Fatalf("uncore floor %v implausible at the low point", c.UncoreVmin())
	}
	if !c.UncoreAlive() {
		t.Fatal("uncore dead at construction")
	}
	c.UncoreRail.SetTarget(c.UncoreVmin() - 0.03)
	c.Step()
	if c.UncoreAlive() {
		t.Fatal("uncore survived below its floor")
	}
	c.ReviveUncore()
	if !c.UncoreAlive() {
		t.Fatal("revive failed")
	}
	c.UncoreRail.SetTarget(c.P.Point.NominalVdd)
	c.Step()
	if !c.UncoreAlive() {
		t.Fatal("uncore died at nominal after revive")
	}
}

func TestLastUncoreWattsTracked(t *testing.T) {
	c := testChip(41)
	c.Step()
	if c.LastUncoreWatts() <= 0 {
		t.Fatal("no uncore power recorded")
	}
	if c.LastUncoreEffective() >= c.UncoreRail.Target() {
		t.Fatal("uncore effective voltage shows no droop")
	}
}

func TestMCALogReceivesWorkloadEvents(t *testing.T) {
	c := testChip(42)
	co := c.Cores[0]
	co.SetWorkload(workload.StressTest(), 42)
	_, _, p := co.Hier.L2D.Array().WeakestLine()
	c.DomainOf(0).Rail.SetTarget(p.Vmax() + 0.005)
	for i := 0; i < 400; i++ {
		c.Step()
		if !co.Alive() {
			co.Revive()
		}
	}
	if c.MCA.Len() == 0 {
		t.Fatal("no MCA events logged near the weak line's onset")
	}
	prof := c.MCA.Profile()
	if prof[0].Bank != "L2D" && prof[0].Bank != "L2I" {
		t.Fatalf("top profile entry in unexpected bank %q", prof[0].Bank)
	}
}
