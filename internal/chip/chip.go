// Package chip assembles the simulated chip multiprocessor: cores with
// private cache hierarchies, voltage domains shared by core pairs, a
// shared L3 on its own uncore rail, per-core register files, workload
// execution, power accounting, and crash detection.
//
// The geometry follows the paper's evaluation platform (Table I): an
// Intel Itanium 9560 with eight in-order cores, 16 KB L1s, 512 KB L2I,
// 256 KB L2D, a 32 MB shared L3, and independent supply lines for each
// core pair plus the uncore.
//
// Simulation advances in fixed control ticks (default 1 ms). Each tick:
//
//  1. every live core's workload produces a demand (activity, cache
//     traffic, oscillation);
//  2. each voltage domain converts its cores' demands to a PDN load and
//     computes the tick's worst-case effective voltage;
//  3. each core's workload traffic is converted to ECC events by
//     sampling its resident weak cache lines at the effective voltage —
//     the statistical counterpart of executing billions of accesses;
//  4. cores die if the effective voltage falls below their logic floor
//     or any read suffers an uncorrectable error;
//  5. power and useful work are integrated.
//
// The hardware ECC monitor and the voltage controller (internal/monitor,
// internal/control) run *between* ticks, exactly like the paper's service
// processor reading monitor counters and nudging rails.
package chip

import (
	"fmt"
	"math"
	"sort"

	"eccspec/internal/cache"
	"eccspec/internal/kernel"
	"eccspec/internal/mca"
	"eccspec/internal/pdn"
	"eccspec/internal/power"
	"eccspec/internal/rng"
	"eccspec/internal/sram"
	"eccspec/internal/stats"
	"eccspec/internal/variation"
	"eccspec/internal/workload"
)

// Params configures a chip.
type Params struct {
	// Seed fixes the chip's manufacturing outcome.
	Seed uint64
	// NumCores is the core count (Table I: 8).
	NumCores int
	// CoresPerRail is how many cores share one supply line (Table I: 2).
	CoresPerRail int
	// Point is the operating point's variation parameters.
	Point variation.Params
	// Hier is the cache geometry.
	Hier cache.HierarchyConfig
	// Rail configures the per-domain supply lines.
	Rail pdn.Params
	// CorePower and UncorePower are the power-model constants.
	CorePower   power.CoreParams
	UncorePower power.CoreParams
	// TickSeconds is the control tick length.
	TickSeconds float64
	// AmbientC is the enclosure ambient temperature.
	AmbientC float64
	// ThermalResistance (K/W) and ThermalTau (seconds) form each
	// core's first-order thermal model: steady-state temperature is
	// ambient + R*power, approached with time constant tau. Hotter
	// cores leak more and their cells weaken slightly, closing the
	// loop the other way: lower voltage -> less power -> cooler.
	ThermalResistance float64
	ThermalTau        float64
	// RegFileLines sizes the per-core register file array (Table I:
	// ~0.6 KB total, i.e. a handful of 64-byte rows).
	RegFileLines int
	// UncoreVminMu / UncoreVminSigma describe the uncore's hard floor
	// (memory controllers, interconnect): the analogue of the cores'
	// logic floor, used by the uncore-speculation extension.
	UncoreVminMu    float64
	UncoreVminSigma float64
	// RegFileAccessRate is the effective per-line rate (per second) at
	// which register-file reads can *report* ECC events. Architectural
	// register reads happen every cycle, but machine-check reporting of
	// corrected errors is rate-limited in real hardware; this constant
	// folds both into one observable-event rate.
	RegFileAccessRate float64
	// FatalRateFactor scales the access rate used when sampling
	// uncorrectable (machine-check) faults relative to the reportable
	// rate: double-bit faults bypass log throttling (more exposure)
	// but codeword interleaving and scrubbing suppress pair
	// alignments (less exposure).
	FatalRateFactor float64
	// RazorWindowV, when positive, puts the chip in Razor mode
	// (related work, §VI): timing faults in logic and caches are
	// detected by shadow latches and replayed instead of crashing the
	// core, down to a metastability wall RazorWindowV below the
	// normal logic floor. Replay demand is reported per tick via
	// CoreReport.ReplayRate; a Razor controller converts it to a
	// pipeline overhead.
	RazorWindowV float64
	// TrueEventFactor is the ratio of true corrected-error events to
	// *reported* (logged) events. Workload profiles carry reportable
	// L2 access rates — the raw access stream is ~1000x denser, but
	// corrected-error signalling is throttled. Reported counts drive
	// logging and policy triggers; the true rate drives the firmware
	// baseline's per-error handling overhead, where every event traps.
	TrueEventFactor float64
}

// DefaultParams returns the standard configuration for the given chip
// seed: the low-voltage operating point (340 MHz / 800 mV) with scaled
// cache geometry. Pass full=true for the full Table I geometry and
// low=false for the nominal 2.53 GHz / 1.1 V point.
func DefaultParams(seed uint64, low, full bool) Params {
	point := variation.LowVoltage()
	if !low {
		point = variation.HighVoltage()
	}
	hier := cache.ScaledConfig()
	if full {
		hier = cache.ItaniumConfig()
	}
	rail := pdn.DefaultParams(point.NominalVdd)
	// Place the PDN resonance where the paper's NOP-8 voltage virus
	// oscillates: clock / (8 FMAs + 8 NOPs).
	rail.FRes = point.FrequencyHz / float64(workload.VirusFMACount+8)
	corePower, uncorePower := power.DefaultCoreParams(), power.UncoreParams()
	uncoreVmin, uncoreVminSigma := 0.500, 0.008
	if !low {
		corePower, uncorePower = power.HighVoltageCoreParams(), power.HighVoltageUncoreParams()
		uncoreVmin, uncoreVminSigma = 0.920, 0.006
	}
	return Params{
		Seed:              seed,
		NumCores:          8,
		CoresPerRail:      2,
		Point:             point,
		Hier:              hier,
		Rail:              rail,
		CorePower:         corePower,
		UncorePower:       uncorePower,
		UncoreVminMu:      uncoreVmin,
		UncoreVminSigma:   uncoreVminSigma,
		TickSeconds:       1e-3,
		AmbientC:          45,
		ThermalResistance: 3.0,
		ThermalTau:        2.0,
		RegFileLines:      10,
		RegFileAccessRate: 100,
		FatalRateFactor:   10,
		TrueEventFactor:   1000,
	}
}

// DefaultParamsAt returns the standard configuration for an intermediate
// operating frequency between the paper's two characterized points,
// interpolating the variation model, rated voltage and power constants
// (the §II-A "production low-voltage system" range of 500 MHz - 1 GHz
// sits inside it).
func DefaultParamsAt(seed uint64, freqHz float64, full bool) Params {
	p := DefaultParams(seed, true, full)
	point := variation.PointAt(freqHz)
	t := math.Log(freqHz/variation.LowVoltage().FrequencyHz) /
		math.Log(variation.HighVoltage().FrequencyHz/variation.LowVoltage().FrequencyHz)
	p.Point = point
	p.Rail = pdn.DefaultParams(point.NominalVdd)
	p.Rail.FRes = point.FrequencyHz / float64(workload.VirusFMACount+8)
	p.CorePower = power.InterpolateCoreParams(power.DefaultCoreParams(), power.HighVoltageCoreParams(), t)
	p.UncorePower = power.InterpolateCoreParams(power.UncoreParams(), power.HighVoltageUncoreParams(), t)
	return p
}

// SensLine is one voltage-sensitive cache line on a core.
type SensLine struct {
	Set, Way int
	Profile  *sram.Profile
}

// Core is one processor core.
type Core struct {
	ID   int
	Hier *cache.Hierarchy
	// RegFile is the core's register file array; vulnerable only at the
	// high-voltage operating point.
	RegFile *sram.Array

	wl        *workload.Workload
	alive     bool
	fatal     string
	logicVmin float64
	tempC     float64
	meter     power.Meter
	work      float64
	overhead  float64
	lastEff   float64
	lastAct   float64

	sens map[variation.Kind][]SensLine
	kern map[variation.Kind]*kernel.Table
}

// Domain is one voltage domain: a supply rail shared by a set of cores.
type Domain struct {
	ID      int
	Rail    *pdn.Rail
	CoreIDs []int
	lastEff float64
}

// LastEffective returns the domain's effective voltage from the most
// recent tick (the setpoint before any tick has run).
func (d *Domain) LastEffective() float64 { return d.lastEff }

// CoreReport is one core's tick outcome.
type CoreReport struct {
	CoreID int
	// Effective is the tick's effective voltage at the core.
	Effective float64
	// CorrectedD / CorrectedI / CorrectedRF count workload-induced
	// correctable errors in the L2 data cache, L2 instruction cache and
	// register file, as *reported* by the throttled logging path.
	CorrectedD, CorrectedI, CorrectedRF int
	// TrueCorrected is the expected number of underlying corrected
	// events this tick (reported x TrueEventFactor, analytically),
	// which is what a firmware handler servicing every event sees.
	TrueCorrected float64
	// ReplayRate is the expected number of Razor replays this tick
	// (only populated in Razor mode): every detected timing fault in
	// logic or cache costs a pipeline replay.
	ReplayRate float64
	// Fatal is set when the core died this tick; FatalCause says why
	// ("logic" or "uncorrectable").
	Fatal      bool
	FatalCause string
	// PowerW is the core's power draw this tick.
	PowerW float64
	// TempC is the core's temperature at the end of the tick.
	TempC float64
}

// TickReport aggregates one Step.
type TickReport struct {
	Time  float64
	Cores []CoreReport
}

// Chip is the simulated CMP.
type Chip struct {
	P       Params
	Model   *variation.Model
	Cores   []*Core
	Domains []*Domain
	L3      *cache.Cache
	// UncoreRail supplies the L3 and memory controllers; the
	// speculation system leaves it at nominal.
	UncoreRail  *pdn.Rail
	uncoreMeter power.Meter
	// MCA is the corrected-error log: workload-induced ECC events are
	// reported here through per-bank throttling, mirroring the
	// firmware logging hooks of §IV-A4.
	MCA *mca.Log

	time        float64
	ticks       int
	stream      *rng.Stream
	uncoreVmin  float64
	uncoreDead  bool
	uncoreEff   float64
	lastUncoreW float64

	// Adaptive-fidelity state. With adaptiveFid enabled (off by
	// default) the control system calls EnterFastForward once the loop
	// has been stable long enough; fast-forwarded ticks draw one
	// aggregate Poisson sample per (core, bank) from the kernel's
	// summed line rates instead of walking lines. Any control-loop
	// event — step decision, emergency, fail-safe, injected fault,
	// failed self-test, rail-target change — drops straight back to
	// full fidelity.
	adaptiveFid bool
	fastForward bool
	ffTicks     int64
	dropbacks   int64

	// Per-tick scratch reused across Steps so the steady-state loop
	// allocates nothing.
	repCores []CoreReport
	demands  []workload.Demand
}

// New builds a chip from params.
func New(p Params) *Chip {
	if p.NumCores <= 0 || p.CoresPerRail <= 0 || p.NumCores%p.CoresPerRail != 0 {
		panic("chip: invalid core/rail configuration")
	}
	m := variation.New(p.Seed, p.Point)
	c := &Chip{
		P:      p,
		Model:  m,
		L3:     cache.New(p.Hier.L3, -1, m),
		MCA:    mca.NewLog(mca.DefaultConfig()),
		stream: rng.NewStream(p.Seed, 0xC819),
	}
	c.UncoreRail = pdn.NewRail("uncore", p.Seed, 1000, p.Rail)
	c.uncoreVmin = p.UncoreVminMu + p.UncoreVminSigma*rng.NormalAt(p.Seed, 0x07C0)
	c.uncoreEff = c.UncoreRail.Target()
	for i := 0; i < p.NumCores; i++ {
		core := &Core{
			ID:        i,
			Hier:      cache.NewHierarchy(p.Hier, i, m, c.L3),
			RegFile:   sram.NewArray(m, i, variation.KindRegFile, p.RegFileLines, 1),
			alive:     true,
			logicVmin: m.LogicVmin(i),
			tempC:     p.AmbientC,
			lastEff:   p.Point.NominalVdd,
			sens:      make(map[variation.Kind][]SensLine),
			kern:      make(map[variation.Kind]*kernel.Table),
		}
		core.RegFile.SetTemperature(p.AmbientC)
		core.Hier.L2D.Array().SetTemperature(p.AmbientC)
		core.Hier.L2I.Array().SetTemperature(p.AmbientC)
		c.Cores = append(c.Cores, core)
	}
	for d := 0; d < p.NumCores/p.CoresPerRail; d++ {
		dom := &Domain{
			ID:   d,
			Rail: pdn.NewRail(fmt.Sprintf("dom%d", d), p.Seed, d, p.Rail),
		}
		for k := 0; k < p.CoresPerRail; k++ {
			dom.CoreIDs = append(dom.CoreIDs, d*p.CoresPerRail+k)
		}
		dom.lastEff = dom.Rail.Target()
		c.Domains = append(c.Domains, dom)
	}
	// Any rail movement — controller step, experiment sweep, injected
	// disturbance — invalidates the premise of fast-forwarding.
	for _, dom := range c.Domains {
		dom.Rail.OnChange(c.DropFastForward)
	}
	c.UncoreRail.OnChange(c.DropFastForward)
	return c
}

// Adaptive-fidelity accessors ------------------------------------------

// SetAdaptiveFidelity enables (or disables) adaptive fidelity. Disabling
// also leaves fast-forward immediately.
func (c *Chip) SetAdaptiveFidelity(on bool) {
	c.adaptiveFid = on
	if !on {
		c.fastForward = false
	}
}

// AdaptiveFidelity reports whether adaptive fidelity is enabled.
func (c *Chip) AdaptiveFidelity() bool { return c.adaptiveFid }

// EnterFastForward switches event sampling to the aggregate kernel.
// A no-op unless adaptive fidelity is enabled.
func (c *Chip) EnterFastForward() {
	if c.adaptiveFid {
		c.fastForward = true
	}
}

// DropFastForward returns to exact per-line sampling (no-op when not
// fast-forwarding). Counted so telemetry can report drop-back churn.
func (c *Chip) DropFastForward() {
	if c.fastForward {
		c.fastForward = false
		c.dropbacks++
	}
}

// FastForward reports whether the chip is currently fast-forwarding.
func (c *Chip) FastForward() bool { return c.fastForward }

// FastForwardTicks returns how many ticks ran on the aggregate kernel.
func (c *Chip) FastForwardTicks() int64 { return c.ffTicks }

// FidelityDropbacks returns how many times fast-forward was abandoned
// for a control-loop event.
func (c *Chip) FidelityDropbacks() int64 { return c.dropbacks }

// Time returns the accumulated simulated time in seconds.
//
// Time is kept as its own float accumulator (time += TickSeconds each
// Step) rather than derived as Ticks()*TickSeconds: the accumulated sum
// differs from the product in the last ulp from the tenth tick on, and
// recorded telemetry timestamps are full-precision, so switching the
// derivation would silently change every trace ever compared against.
// The integer counter is authoritative for Ticks(); the accumulator is
// authoritative for Time().
func (c *Chip) Time() float64 { return c.time }

// Ticks returns the number of control ticks executed since construction
// (or since the tick count restored by RestoreState).
func (c *Chip) Ticks() int { return c.ticks }

// DomainOf returns the voltage domain containing the core.
func (c *Chip) DomainOf(coreID int) *Domain {
	return c.Domains[coreID/c.P.CoresPerRail]
}

// Core accessors -------------------------------------------------------

// SetWorkload assigns a workload profile to the core (nil profile name
// semantics are not supported; use workload.Idle() to park a core).
func (co *Core) SetWorkload(p workload.Profile, seed uint64) {
	co.wl = workload.New(p, rng.Hash(seed, uint64(co.ID)))
}

// Workload returns the running workload (nil if none assigned).
func (co *Core) Workload() *workload.Workload { return co.wl }

// Alive reports whether the core is still functioning.
func (co *Core) Alive() bool { return co.alive }

// FatalCause returns why the core died ("" while alive).
func (co *Core) FatalCause() string { return co.fatal }

// Revive restores a crashed core to service (experiments use this
// between sweep steps; real hardware would reboot).
func (co *Core) Revive() {
	co.alive = true
	co.fatal = ""
}

// LogicVmin returns the core's non-SRAM crash floor.
func (co *Core) LogicVmin() float64 { return co.logicVmin }

// LastEffective returns the effective voltage the core saw last tick.
func (co *Core) LastEffective() float64 { return co.lastEff }

// LastActivity returns the workload activity factor from the last tick.
func (co *Core) LastActivity() float64 { return co.lastAct }

// Temperature returns the core's current temperature in Celsius.
func (co *Core) Temperature() float64 { return co.tempC }

// Energy returns the core's accumulated energy in joules.
func (co *Core) Energy() float64 { return co.meter.Energy() }

// AveragePower returns the core's mean power so far.
func (co *Core) AveragePower() float64 { return co.meter.AveragePower() }

// Work returns the core's accumulated useful work (instructions).
func (co *Core) Work() float64 { return co.work }

// ResetAccounting clears the core's energy and work accumulators.
func (co *Core) ResetAccounting() {
	co.meter.Reset()
	co.work = 0
}

// SetOverheadFraction sets the fraction of the next ticks' cycles lost
// to firmware error handling (software-speculation baseline). Clamped to
// [0, 1].
func (co *Core) SetOverheadFraction(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	co.overhead = f
}

// SensitiveLines returns the core's voltage-sensitive lines in the given
// structure: every line whose weakest cell sits above the chip's
// relevance floor (anything weaker can never produce an error above the
// crash region). The first call scans the whole array and caches.
func (co *Core) SensitiveLines(kind variation.Kind, floor float64) []SensLine {
	if ls, ok := co.sens[kind]; ok {
		return ls
	}
	arr := co.arrayOf(kind)
	var out []SensLine
	for s := 0; s < arr.Sets; s++ {
		for w := 0; w < arr.Ways; w++ {
			p := arr.LineProfile(s, w)
			if p.Vmax() >= floor {
				out = append(out, SensLine{Set: s, Way: w, Profile: p})
			}
		}
	}
	// Sorted by descending onset voltage so per-tick sampling can stop
	// at the first line too strong to matter at the current voltage.
	sort.Slice(out, func(i, j int) bool {
		return out[i].Profile.Vmax() > out[j].Profile.Vmax()
	})
	co.sens[kind] = out
	return out
}

// InvalidateSensitivity drops cached sensitive-line lists and their
// batch-kernel tables (call after aging changes).
func (co *Core) InvalidateSensitivity() {
	co.sens = make(map[variation.Kind][]SensLine)
	co.kern = make(map[variation.Kind]*kernel.Table)
}

// kernelTable returns the core's batch-kernel table for the structure,
// building it from the sensitive-line list on first use. Cached beside
// the sensitive-line cache and invalidated with it.
func (co *Core) kernelTable(kind variation.Kind, floor float64) *kernel.Table {
	if t, ok := co.kern[kind]; ok {
		return t
	}
	sens := co.SensitiveLines(kind, floor)
	lines := make([]kernel.Line, len(sens))
	for i, sl := range sens {
		lines[i] = kernel.Line{Set: sl.Set, Way: sl.Way, Profile: sl.Profile}
	}
	t := kernel.Build(co.arrayOf(kind), kind, lines)
	co.kern[kind] = t
	return t
}

// arrayOf maps a structure kind to the core's SRAM array.
func (co *Core) arrayOf(kind variation.Kind) *sram.Array {
	switch kind {
	case variation.KindL2D:
		return co.Hier.L2D.Array()
	case variation.KindL2I:
		return co.Hier.L2I.Array()
	case variation.KindL1D:
		return co.Hier.L1D.Array()
	case variation.KindL1I:
		return co.Hier.L1I.Array()
	case variation.KindRegFile:
		return co.RegFile
	default:
		panic("chip: no array for kind " + kind.String())
	}
}

// CacheOf maps a structure kind to the core's cache (register file and
// logic have no cache).
func (co *Core) CacheOf(kind variation.Kind) *cache.Cache {
	switch kind {
	case variation.KindL2D:
		return co.Hier.L2D
	case variation.KindL2I:
		return co.Hier.L2I
	case variation.KindL1D:
		return co.Hier.L1D
	case variation.KindL1I:
		return co.Hier.L1I
	default:
		panic("chip: no cache for kind " + kind.String())
	}
}

// SensitivityFloor returns the voltage below which additional weak lines
// are irrelevant: a line whose weakest cell sits more than ~8 ramp widths
// under the lowest voltage any core can survive (the logic floor) has a
// flip probability of zero to double precision.
func (c *Chip) SensitivityFloor() float64 {
	return c.P.Point.LogicVminMu - 4*c.P.Point.LogicVminSigma - 8*c.P.Point.WidthMax
}

// Step advances the chip by one control tick. The returned report's
// Cores slice is scratch owned by the chip and is overwritten by the
// next Step; callers that need a report beyond the current tick must
// copy it.
func (c *Chip) Step() TickReport {
	dt := c.P.TickSeconds
	if c.fastForward {
		c.ffTicks++
	}
	if c.repCores == nil {
		c.repCores = make([]CoreReport, len(c.Cores))
		c.demands = make([]workload.Demand, len(c.Cores))
	}
	for i := range c.repCores {
		c.repCores[i] = CoreReport{}
		c.demands[i] = workload.Demand{}
	}
	rep := TickReport{Time: c.time, Cores: c.repCores}

	// Phase 1: collect demands.
	demands := c.demands
	for i, co := range c.Cores {
		if co.alive && co.wl != nil {
			demands[i] = co.wl.Demand(dt)
		}
	}

	// Phase 2: per-domain effective voltage.
	f := c.P.Point.FrequencyHz
	for _, dom := range c.Domains {
		var load pdn.Load
		for _, id := range dom.CoreIDs {
			co := c.Cores[id]
			d := demands[id]
			v := dom.Rail.Target()
			mean := c.P.CorePower.Current(v, f, d.Activity, co.tempC)
			osc := c.P.CorePower.Current(v, f, d.OscAmplitude, co.tempC)
			load = load.Add(pdn.Load{
				MeanCurrent:  mean,
				OscAmplitude: osc,
				OscFreqHz:    d.OscFreqHz,
			}, dom.Rail.Params())
		}
		dom.lastEff = dom.Rail.Effective(load)
	}

	// Phase 3-5: per-core events, crashes, accounting.
	for i, co := range c.Cores {
		cr := &rep.Cores[i]
		cr.CoreID = co.ID
		dom := c.DomainOf(co.ID)
		veff := dom.lastEff
		co.lastEff = veff
		cr.Effective = veff
		if !co.alive {
			continue
		}
		d := demands[i]
		co.lastAct = d.Activity

		// Crash on the logic floor first: no ECC warning there. Razor
		// shadow latches convert logic timing faults into replays and
		// push the hard wall down to the metastability window.
		logicFloor := co.logicVmin - c.P.RazorWindowV
		if veff < logicFloor {
			co.alive = false
			co.fatal = "logic"
			cr.Fatal, cr.FatalCause = true, co.fatal
			continue
		}
		if c.P.RazorWindowV > 0 {
			cr.ReplayRate += c.logicFaultRate(co, veff) * dt
		}

		if co.wl != nil {
			cd, trueD, fatalD := c.sampleWorkloadErrors(co, variation.KindL2D, d.L2DAccesses, veff)
			ci, trueI, fatalI := c.sampleWorkloadErrors(co, variation.KindL2I, d.L2IAccesses, veff)
			rfAccesses := c.P.RegFileAccessRate * dt
			crf, fatalRF := c.sampleRegFileErrors(co, rfAccesses, veff)
			cr.CorrectedD, cr.CorrectedI, cr.CorrectedRF = cd, ci, crf
			cr.TrueCorrected = (trueD + trueI) * c.P.TrueEventFactor
			if fatalD || fatalI || fatalRF {
				if c.P.RazorWindowV > 0 {
					// Razor detects and replays what would have been
					// an uncorrectable fault.
					cr.ReplayRate++
				} else {
					co.alive = false
					co.fatal = "uncorrectable"
					cr.Fatal, cr.FatalCause = true, co.fatal
					continue
				}
			}
			if c.P.RazorWindowV > 0 {
				// Every corrected-class timing fault is a replay too.
				cr.ReplayRate += cr.TrueCorrected
			}
		}

		watts := c.P.CorePower.Total(veff, f, d.Activity, co.tempC)
		co.meter.Accumulate(watts, dt)
		cr.PowerW = watts
		co.work += d.IPC * f * dt * (1 - co.overhead)

		// First-order thermal update; the new temperature feeds the
		// next tick's leakage and the SRAM fault model.
		if c.P.ThermalTau > 0 {
			steady := c.P.AmbientC + c.P.ThermalResistance*watts
			co.tempC += (steady - co.tempC) * dt / c.P.ThermalTau
			co.Hier.L2D.Array().SetTemperature(co.tempC)
			co.Hier.L2I.Array().SetTemperature(co.tempC)
			co.RegFile.SetTemperature(co.tempC)
		}
		cr.TempC = co.tempC
	}

	// Uncore: steady moderate activity at its own rail (left at nominal
	// by the paper's scheme; scaled by the uncore-speculation
	// extension). Droop follows its own current draw.
	uv := c.UncoreRail.Target()
	uw := c.P.UncorePower.Total(uv, f, 0.4, c.P.AmbientC)
	uLoad := pdn.Load{MeanCurrent: c.P.UncorePower.Current(uv, f, 0.4, c.P.AmbientC)}
	c.uncoreEff = c.UncoreRail.Effective(uLoad)
	if c.uncoreEff < c.uncoreVmin {
		c.uncoreDead = true
	}
	if !c.uncoreDead {
		c.uncoreMeter.Accumulate(uw, dt)
	}
	c.lastUncoreW = uw

	c.time += dt
	c.ticks++
	return rep
}

// sampleWorkloadErrors converts a tick's worth of L2 traffic into ECC
// event counts. Accesses spread uniformly over the workload's footprint;
// each sensitive, exercised line contributes Poisson-distributed
// correctable events (rare per access) and a fatal flag if a double-bit
// read occurs.
func (c *Chip) sampleWorkloadErrors(co *Core, kind variation.Kind, accesses float64, v float64) (corrected int, trueMean float64, fatal bool) {
	if accesses <= 0 {
		return 0, 0, false
	}
	arr := co.arrayOf(kind)
	cov := co.wl.P.L2DCoverage
	if kind == variation.KindL2I {
		cov = co.wl.P.L2ICoverage
	}
	footprint := cov * float64(arr.Lines())
	if footprint < 1 {
		return 0, 0, false
	}
	perLine := accesses / footprint
	t := co.kernelTable(kind, c.SensitivityFloor())
	t.EnsureFootprint(co.wl)
	if c.fastForward {
		return c.fastForwardSample(co, t, kind.String(), perLine, v, true)
	}
	// Lines whose weakest cell sits more than ~8 ramp widths above the
	// current voltage cannot flip; the table is sorted by onset voltage,
	// so the kernel stops at the first line too strong to matter.
	// Uncorrectable errors machine-check the core regardless of report
	// throttling, but codeword interleaving and scrubbing make
	// double-bit alignments far rarer than raw pair probability
	// suggests; the FatalRateFactor folds both effects.
	cutoff := v - 8*c.P.Point.WidthMax
	n, tm, fat, counts := t.Sample(c.stream, v, cutoff, perLine, perLine*c.P.FatalRateFactor)
	for _, lc := range counts {
		c.MCA.Report(mca.Event{Time: c.time, Core: co.ID,
			Bank: kind.String(), Set: lc.Set, Way: lc.Way, Count: lc.N})
	}
	return n, tm, fat
}

// sampleRegFileErrors does the same for the register file, which the
// workload exercises continuously and completely.
func (c *Chip) sampleRegFileErrors(co *Core, perLine float64, v float64) (corrected int, fatal bool) {
	if perLine <= 0 {
		return 0, false
	}
	t := co.kernelTable(variation.KindRegFile, c.SensitivityFloor())
	if c.fastForward {
		n, _, fat := c.fastForwardSample(co, t, "RegFile", perLine, v, false)
		return n, fat
	}
	n, _, fat, counts := t.SampleAll(c.stream, v, math.Inf(-1), perLine, perLine*c.P.FatalRateFactor)
	for _, lc := range counts {
		c.MCA.Report(mca.Event{Time: c.time, Core: co.ID,
			Bank: "RegFile", Set: lc.Set, Way: lc.Way, Count: lc.N})
	}
	return n, fat
}

// fastForwardSample advances one (core, bank) through a fast-forwarded
// tick: one aggregate Poisson draw for corrected events and one for
// uncorrectable exposure, from the kernel's summed line rates at the
// quantized operating point. Corrected events are attributed to the
// bank's most sensitive live line for MCA logging.
func (c *Chip) fastForwardSample(co *Core, t *kernel.Table, bank string, perLine, v float64, footprint bool) (corrected int, trueMean float64, fatal bool) {
	ps, pu, repSet, repWay := t.Rates(v, footprint)
	if ps > 0 {
		mean := perLine * ps
		corrected = stats.SamplePoissonFast(c.stream, mean)
		trueMean = mean
		if corrected > 0 {
			c.MCA.Report(mca.Event{Time: c.time, Core: co.ID,
				Bank: bank, Set: repSet, Way: repWay, Count: corrected})
		}
	}
	if pu > 0 && stats.SamplePoissonFast(c.stream, perLine*c.P.FatalRateFactor*pu) > 0 {
		fatal = true
	}
	return corrected, trueMean, fatal
}

// logicFaultRate returns the expected per-second rate of detectable
// logic timing faults at effective voltage v (Razor mode): each cycle
// faults with a probability that ramps up through the logic floor.
func (c *Chip) logicFaultRate(co *Core, v float64) float64 {
	const logicRampWidth = 0.004
	p := variation.FlipProbability(co.logicVmin, logicRampWidth, v)
	// Only a small fraction of cycles exercise the true critical path.
	const criticalPathDuty = 1e-3
	return p * criticalPathDuty * c.P.Point.FrequencyHz
}

// UncoreVmin returns the uncore's hard voltage floor.
func (c *Chip) UncoreVmin() float64 { return c.uncoreVmin }

// UncoreAlive reports whether the uncore is still functional (it dies if
// its rail is driven below the uncore floor).
func (c *Chip) UncoreAlive() bool { return !c.uncoreDead }

// ReviveUncore restores a failed uncore (characterization sweeps).
func (c *Chip) ReviveUncore() { c.uncoreDead = false }

// LastUncoreEffective returns the uncore rail's effective voltage from
// the most recent tick.
func (c *Chip) LastUncoreEffective() float64 { return c.uncoreEff }

// LastUncoreWatts returns the uncore power from the most recent tick.
func (c *Chip) LastUncoreWatts() float64 { return c.lastUncoreW }

// UncoreEnergy returns the uncore's accumulated energy in joules.
func (c *Chip) UncoreEnergy() float64 { return c.uncoreMeter.Energy() }

// TotalEnergy returns chip energy (cores + uncore) in joules.
func (c *Chip) TotalEnergy() float64 {
	e := c.uncoreMeter.Energy()
	for _, co := range c.Cores {
		e += co.Energy()
	}
	return e
}
