package loadtest

import (
	"strings"
	"testing"
)

// TestRotationFollowsMix checks the worker op rotation carries exactly
// the configured weights.
func TestRotationFollowsMix(t *testing.T) {
	rot := buildRotation(Mix{Submit: 2, Status: 4, Results: 3, List: 1})
	if len(rot) != 10 {
		t.Fatalf("rotation length %d, want 10", len(rot))
	}
	counts := map[Op]int{}
	for _, op := range rot {
		counts[op]++
	}
	want := map[Op]int{OpSubmit: 2, OpStatus: 4, OpResults: 3, OpList: 1}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("rotation has %d %s, want %d", counts[op], op, n)
		}
	}
}

// TestAssembleAndSLO folds synthetic samples into a report and checks
// both the accounting and the SLO verdicts on it.
func TestAssembleAndSLO(t *testing.T) {
	perWorker := [][]sample{
		{
			{op: OpSubmit, ms: 5, status: 202, accepted: true},
			{op: OpSubmit, ms: 2, status: 429, shed: true},
			{op: OpSubmit, ms: 2, status: 429, shed: true, malformedShed: true},
		},
		{
			{op: OpResults, ms: 3, status: 200},
			{op: OpResults, ms: 1, status: 304, notModified: true},
			{op: OpResults, ms: 8, status: 500, failedRead: true, err: true},
			{op: OpList, ms: 4, status: 429, rateLimited: true},
		},
	}
	r := assemble(Config{RPS: 100}, perWorker, 1e9, "f-1") // 1e9 ns = 1s elapsed
	if r.Requests != 7 || r.AcceptedSubmits != 1 || r.Shed != 2 || r.MalformedShed != 1 {
		t.Fatalf("accounting off: %+v", r)
	}
	if r.NotModified != 1 || r.FailedResultReads != 1 || r.RateLimited != 1 || r.Errors != 1 {
		t.Fatalf("accounting off: %+v", r)
	}
	sub := r.OpStat(OpSubmit)
	if sub.Count != 3 || sub.P99Ms != 5 || sub.Statuses["429"] != 2 {
		t.Fatalf("submit op stats off: %+v", sub)
	}

	err := r.CheckSLO(SLO{SubmitP99Ms: 1})
	if err == nil {
		t.Fatal("SLO passed despite malformed sheds, failed reads, errors, and p99 breach")
	}
	for _, want := range []string{"shed responses missing", "completed-result reads failed", "requests errored", "submit p99"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("SLO error does not name %q:\n%v", want, err)
		}
	}

	clean := assemble(Config{RPS: 100}, [][]sample{{
		{op: OpSubmit, ms: 5, status: 202, accepted: true},
		{op: OpResults, ms: 3, status: 200},
	}}, 1e9, "f-1")
	if err := clean.CheckSLO(SLO{SubmitP99Ms: 50, ReadP99Ms: 50}); err != nil {
		t.Fatalf("clean report failed SLO: %v", err)
	}
	// A throughput floor the tiny sample can't meet must fail.
	if err := clean.CheckSLO(SLO{MinThroughput: 1000}); err == nil {
		t.Fatal("throughput floor not enforced")
	}
}
