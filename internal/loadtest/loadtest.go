// Package loadtest drives a live eccspecd daemon with sustained,
// mixed, concurrent API traffic and turns what it measures into an
// SLO verdict: request throughput, per-operation latency percentiles
// (via internal/stats), shed/rate-limit accounting, and the
// correctness of the admission tier's backpressure responses.
//
// The harness is deliberately a closed-loop open-rate hybrid: a pacer
// goroutine releases request tokens at the configured rate while a
// bounded worker pool executes them, so the offered load stays at the
// target even when individual requests are slow, and the achieved
// throughput is an honest number rather than a self-limited one.
//
// The traffic mix models the daemon's real consumers — many readers
// polling a completed fleet's status and results (with If-None-Match
// revalidation), a listing dashboard, and a stream of fresh
// submissions that the bounded queue is expected to shed under
// pressure. Every response is validated against the API contract:
// a shed submission must carry Retry-After and the queue-depth
// headers, and a completed fleet's results must never fail to read.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"eccspec/internal/stats"
)

// Op names one request type in the mix.
type Op string

const (
	OpSubmit  Op = "submit"
	OpStatus  Op = "status"
	OpResults Op = "results"
	OpList    Op = "list"
)

// Mix weights the traffic by operation; zero-valued fields get the
// DefaultMix weight for that op only if every field is zero.
type Mix struct {
	Submit  int `json:"submit"`
	Status  int `json:"status"`
	Results int `json:"results"`
	List    int `json:"list"`
}

// DefaultMix is read-heavy with a steady submission stream — the
// shape of a dashboard-watching fleet operator.
var DefaultMix = Mix{Submit: 2, Status: 4, Results: 3, List: 1}

// total sums the weights.
func (m Mix) total() int { return m.Submit + m.Status + m.Results + m.List }

// SLO is the latency/throughput contract the run is asserted against.
type SLO struct {
	// SubmitP99Ms bounds the 99th-percentile submit latency in
	// milliseconds (a shed 429 counts — backpressure must be fast).
	SubmitP99Ms float64 `json:"submit_p99_ms"`
	// ReadP99Ms bounds the 99th-percentile latency of completed-result
	// reads.
	ReadP99Ms float64 `json:"read_p99_ms"`
	// MinThroughput is the floor on achieved requests/second.
	MinThroughput float64 `json:"min_throughput_rps"`
}

// Config parameterizes a run.
type Config struct {
	// BaseURL is the daemon under test, e.g. http://127.0.0.1:8347.
	BaseURL string
	// Duration is how long the storm lasts.
	Duration time.Duration
	// RPS is the offered request rate across all workers.
	RPS int
	// Workers bounds in-flight requests; <= 0 selects 32.
	Workers int
	// Mix weights the operations; the zero Mix selects DefaultMix.
	Mix Mix
	// SubmitSeconds is the simulated duration of submitted jobs (kept
	// tiny so the daemon's runner is busy but not swamped).
	SubmitSeconds float64
	// Priority is the admission class on submitted jobs.
	Priority int
	// APIKeys, when > 0, spreads requests over this many distinct
	// X-API-Key identities (exercises per-client rate limiting).
	APIKeys int
	// Timeout bounds one request; <= 0 selects 10s.
	Timeout time.Duration
}

// OpStats aggregates one operation's outcomes.
type OpStats struct {
	Op       Op             `json:"op"`
	Count    int            `json:"count"`
	Errors   int            `json:"errors"`
	Statuses map[string]int `json:"statuses"`
	P50Ms    float64        `json:"p50_ms"`
	P90Ms    float64        `json:"p90_ms"`
	P99Ms    float64        `json:"p99_ms"`
	MaxMs    float64        `json:"max_ms"`
}

// Report is the outcome of a run.
type Report struct {
	DurationS   float64 `json:"duration_s"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`

	Shed              int    `json:"shed_total"`                    // 429 queue-full responses
	MalformedShed     int    `json:"malformed_shed_total"`          // sheds missing required headers
	RateLimited       int    `json:"rate_limited_total"`            // 429s from the client rate limit
	NotModified       int    `json:"not_modified_total"`            // 304s on conditional reads
	FailedResultReads int    `json:"failed_completed_result_reads"` // completed /results reads that were not 200/304
	AcceptedSubmits   int    `json:"accepted_submits"`
	CompletedFleetID  string `json:"completed_fleet_id"`

	Ops []OpStats `json:"ops"`

	// Latency histogram over every request, in milliseconds.
	HistLoMs   float64 `json:"hist_lo_ms"`
	HistHiMs   float64 `json:"hist_hi_ms"`
	HistCounts []int   `json:"hist_counts"`
}

// sample is one completed request.
type sample struct {
	op     Op
	ms     float64
	status int
	err    bool
	// flags for contract accounting
	shed          bool
	malformedShed bool
	rateLimited   bool
	notModified   bool
	failedRead    bool
	accepted      bool
}

// Run executes the configured storm and returns its report. The
// daemon must be live; Run first submits and waits out one tiny fleet
// so the read mix has a completed, immutable target.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: no base URL")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.RPS <= 0 {
		cfg.RPS = 1000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.SubmitSeconds <= 0 {
		cfg.SubmitSeconds = 0.01
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		},
	}

	completedID, etag, err := primeCompletedFleet(ctx, client, cfg)
	if err != nil {
		return nil, fmt.Errorf("loadtest: priming a completed fleet: %w", err)
	}

	// The pacer releases tokens in 5ms slices so the offered rate
	// holds steady without a sub-millisecond ticker.
	const slice = 5 * time.Millisecond
	perSlice := float64(cfg.RPS) * slice.Seconds()
	tokens := make(chan struct{}, cfg.RPS) // one second of headroom
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	go func() {
		tick := time.NewTicker(slice)
		defer tick.Stop()
		carry := 0.0
		for {
			select {
			case <-runCtx.Done():
				close(tokens)
				return
			case <-tick.C:
				carry += perSlice
				for ; carry >= 1; carry-- {
					select {
					case tokens <- struct{}{}:
					default: // workers saturated; drop rather than burst later
					}
				}
			}
		}
	}()

	samples := make([][]sample, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := ""
			if cfg.APIKeys > 0 {
				key = fmt.Sprintf("loadtest-%d", w%cfg.APIKeys)
			}
			wk := worker{cfg: cfg, client: client, completedID: completedID, etag: etag, key: key}
			// Deterministic per-worker op rotation weighted by the mix.
			rotation := buildRotation(cfg.Mix)
			i := w // stagger workers through the rotation
			for range tokens {
				wk.do(rotation[i%len(rotation)], &samples[w])
				i++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return assemble(cfg, samples, elapsed, completedID), nil
}

// worker holds one goroutine's request state.
type worker struct {
	cfg         Config
	client      *http.Client
	completedID string
	etag        string
	key         string
	nthResults  int
}

// buildRotation expands the mix weights into a repeating op sequence.
func buildRotation(m Mix) []Op {
	var r []Op
	for i := 0; i < m.Submit; i++ {
		r = append(r, OpSubmit)
	}
	for i := 0; i < m.Status; i++ {
		r = append(r, OpStatus)
	}
	for i := 0; i < m.Results; i++ {
		r = append(r, OpResults)
	}
	for i := 0; i < m.List; i++ {
		r = append(r, OpList)
	}
	return r
}

// do executes one operation and appends its sample.
func (w *worker) do(op Op, out *[]sample) {
	var (
		req *http.Request
		err error
	)
	conditional := false
	switch op {
	case OpSubmit:
		body := fmt.Sprintf(`{"seeds":[1],"seconds":%g,"priority":%d}`, w.cfg.SubmitSeconds, w.cfg.Priority)
		req, err = http.NewRequest("POST", w.cfg.BaseURL+"/v1/fleets", strings.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	case OpStatus:
		req, err = http.NewRequest("GET", w.cfg.BaseURL+"/v1/fleets/"+w.completedID, nil)
	case OpResults:
		req, err = http.NewRequest("GET", w.cfg.BaseURL+"/v1/fleets/"+w.completedID+"/results", nil)
		// Every other read revalidates with If-None-Match, the way a
		// caching consumer would.
		w.nthResults++
		if req != nil && w.etag != "" && w.nthResults%2 == 0 {
			req.Header.Set("If-None-Match", w.etag)
			conditional = true
		}
	case OpList:
		req, err = http.NewRequest("GET", w.cfg.BaseURL+"/v1/fleets?limit=5", nil)
	}
	if err != nil {
		*out = append(*out, sample{op: op, err: true})
		return
	}
	if w.key != "" {
		req.Header.Set("X-API-Key", w.key)
	}

	t0 := time.Now()
	resp, err := w.client.Do(req)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	s := sample{op: op, ms: ms}
	if err != nil {
		s.err = true
		*out = append(*out, s)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.status = resp.StatusCode

	switch op {
	case OpSubmit:
		switch resp.StatusCode {
		case http.StatusAccepted:
			s.accepted = true
		case http.StatusTooManyRequests:
			if resp.Header.Get("X-Queue-Capacity") != "" {
				s.shed = true
				if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Queue-Depth") == "" {
					s.malformedShed = true
				}
			} else {
				s.rateLimited = true
			}
		default:
			s.err = true
		}
	case OpResults:
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotModified:
			s.notModified = true
			if !conditional {
				s.err = true // 304 without a conditional request is a bug
			}
		case http.StatusTooManyRequests:
			s.rateLimited = true
		default:
			s.failedRead = true
			s.err = true
		}
	default:
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			s.rateLimited = true
		default:
			s.err = true
		}
	}
	*out = append(*out, s)
}

// primeCompletedFleet submits a one-chip job and waits for it to
// finish, returning its id and results ETag.
func primeCompletedFleet(ctx context.Context, client *http.Client, cfg Config) (id, etag string, err error) {
	body := fmt.Sprintf(`{"seeds":[424242],"seconds":%g}`, cfg.SubmitSeconds)
	resp, err := client.Post(cfg.BaseURL+"/v1/fleets", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", "", err
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID == "" {
		return "", "", fmt.Errorf("submit response: %v (id %q)", err, sub.ID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if ctx.Err() != nil {
			return "", "", ctx.Err()
		}
		if time.Now().After(deadline) {
			return "", "", fmt.Errorf("fleet %s did not complete in time", sub.ID)
		}
		resp, err := client.Get(cfg.BaseURL + "/v1/fleets/" + sub.ID)
		if err != nil {
			return "", "", err
		}
		var st struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", "", err
		}
		switch st.Status {
		case "done":
			r2, err := client.Get(cfg.BaseURL + "/v1/fleets/" + sub.ID + "/results")
			if err != nil {
				return "", "", err
			}
			io.Copy(io.Discard, r2.Body)
			r2.Body.Close()
			return sub.ID, r2.Header.Get("ETag"), nil
		case "failed", "canceled":
			return "", "", fmt.Errorf("priming fleet %s ended %s", sub.ID, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// assemble folds the per-worker samples into the report.
func assemble(cfg Config, perWorker [][]sample, elapsed time.Duration, completedID string) *Report {
	r := &Report{
		DurationS:        elapsed.Seconds(),
		OfferedRPS:       float64(cfg.RPS),
		CompletedFleetID: completedID,
	}
	byOp := map[Op][]float64{}
	opStats := map[Op]*OpStats{}
	hist := stats.NewHistogram(0, 100, 50) // 2ms bins to 100ms; outliers clamp high
	for _, ss := range perWorker {
		for _, s := range ss {
			r.Requests++
			byOp[s.op] = append(byOp[s.op], s.ms)
			os, ok := opStats[s.op]
			if !ok {
				os = &OpStats{Op: s.op, Statuses: map[string]int{}}
				opStats[s.op] = os
			}
			os.Count++
			os.Statuses[fmt.Sprintf("%d", s.status)]++
			if s.err {
				os.Errors++
				r.Errors++
			}
			if s.shed {
				r.Shed++
			}
			if s.malformedShed {
				r.MalformedShed++
			}
			if s.rateLimited {
				r.RateLimited++
			}
			if s.notModified {
				r.NotModified++
			}
			if s.failedRead {
				r.FailedResultReads++
			}
			if s.accepted {
				r.AcceptedSubmits++
			}
			hist.Add(s.ms)
		}
	}
	if r.DurationS > 0 {
		r.AchievedRPS = float64(r.Requests) / r.DurationS
	}
	for op, ls := range byOp {
		os := opStats[op]
		os.P50Ms = stats.Percentile(ls, 50)
		os.P90Ms = stats.Percentile(ls, 90)
		os.P99Ms = stats.Percentile(ls, 99)
		os.MaxMs = stats.Max(ls)
	}
	for _, op := range []Op{OpSubmit, OpStatus, OpResults, OpList} {
		if os, ok := opStats[op]; ok {
			r.Ops = append(r.Ops, *os)
		}
	}
	r.HistLoMs, r.HistHiMs, r.HistCounts = hist.Lo, hist.Hi, hist.Counts
	return r
}

// OpStat returns the stats for one op (zero value if the op never ran).
func (r *Report) OpStat(op Op) OpStats {
	for _, os := range r.Ops {
		if os.Op == op {
			return os
		}
	}
	return OpStats{Op: op, Statuses: map[string]int{}}
}

// CheckSLO validates the report against the contract, returning an
// error naming every violation. Contract violations (malformed sheds,
// failed completed-result reads, transport errors) fail regardless of
// the latency numbers.
func (r *Report) CheckSLO(slo SLO) error {
	var fails []string
	if r.MalformedShed > 0 {
		fails = append(fails, fmt.Sprintf("%d shed responses missing Retry-After or queue-depth headers", r.MalformedShed))
	}
	if r.FailedResultReads > 0 {
		fails = append(fails, fmt.Sprintf("%d completed-result reads failed (want zero)", r.FailedResultReads))
	}
	if r.Errors > 0 {
		fails = append(fails, fmt.Sprintf("%d requests errored", r.Errors))
	}
	if slo.SubmitP99Ms > 0 {
		if p99 := r.OpStat(OpSubmit).P99Ms; p99 > slo.SubmitP99Ms {
			fails = append(fails, fmt.Sprintf("submit p99 %.2fms > SLO %.2fms", p99, slo.SubmitP99Ms))
		}
	}
	if slo.ReadP99Ms > 0 {
		if p99 := r.OpStat(OpResults).P99Ms; p99 > slo.ReadP99Ms {
			fails = append(fails, fmt.Sprintf("results p99 %.2fms > SLO %.2fms", p99, slo.ReadP99Ms))
		}
	}
	if slo.MinThroughput > 0 && r.AchievedRPS < slo.MinThroughput {
		fails = append(fails, fmt.Sprintf("achieved %.0f req/s < SLO floor %.0f req/s", r.AchievedRPS, slo.MinThroughput))
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("SLO violations:\n  - %s", strings.Join(fails, "\n  - "))
}

// Format renders the human-readable report table.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "loadtest: %d requests in %.2fs — offered %.0f req/s, achieved %.0f req/s, %d errors\n",
		r.Requests, r.DurationS, r.OfferedRPS, r.AchievedRPS, r.Errors)
	fmt.Fprintf(w, "admission: %d submits accepted, %d shed (queue full), %d rate-limited, %d conditional 304s\n",
		r.AcceptedSubmits, r.Shed, r.RateLimited, r.NotModified)
	fmt.Fprintf(w, "%-8s %8s %7s %9s %9s %9s %9s  statuses\n", "op", "count", "errors", "p50", "p90", "p99", "max")
	for _, os := range r.Ops {
		fmt.Fprintf(w, "%-8s %8d %7d %8.2fms %8.2fms %8.2fms %8.2fms  %s\n",
			os.Op, os.Count, os.Errors, os.P50Ms, os.P90Ms, os.P99Ms, os.MaxMs, formatStatuses(os.Statuses))
	}
}

// formatStatuses renders a status-count map deterministically.
func formatStatuses(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// Snapshot is the BENCH_api.json shape: the report plus the asserted
// SLO, so every archived run records both the numbers and the bar
// they cleared.
type Snapshot struct {
	Bench  string `json:"bench"`
	SLO    SLO    `json:"slo"`
	Report Report `json:"report"`
}

// WriteSnapshot writes the BENCH_api.json snapshot.
func WriteSnapshot(path string, slo SLO, r *Report) error {
	b, err := json.MarshalIndent(Snapshot{Bench: "api", SLO: slo, Report: *r}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
