package cluster

// Worker side of the cluster: the streaming execution endpoint a
// worker daemon serves, and the register/heartbeat client loop that
// keeps it in the coordinator's membership.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"eccspec/internal/engine"
	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// maxTaskBytes bounds an exec request body. Tasks carry resume blobs
// (a snapshot per migrating chip), so the cap is far above the fleet
// API's: 64 MiB covers hundreds of checkpoints.
const maxTaskBytes = 64 << 20

// Executor runs dispatched chip ranges on a local fleet engine,
// streaming checkpoints and results back as they happen.
type Executor struct {
	// Engine is the local worker pool the chips run on.
	Engine *fleet.Engine
	// Observers, when set, supplies extra per-chip engine observers —
	// the worker daemon plugs its tick metrics and chaos injector in
	// here, exactly as it does for locally submitted fleets.
	Observers func(seed uint64) []engine.Observer
}

// HandleExec serves PathExec: decode a Task, run it, and stream one
// JSON event per line (checkpoints as they pass, results as chips
// finish, a final done marker). The response is flushed after every
// event so the coordinator always holds the freshest checkpoint of
// every in-flight chip — that blob is what migration resumes from if
// this process dies mid-batch.
func (e *Executor) HandleExec(w http.ResponseWriter, r *http.Request) {
	var task Task
	body := http.MaxBytesReader(w, r.Body, maxTaskBytes)
	if err := json.NewDecoder(body).Decode(&task); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"bad task: %v"}`, err), http.StatusBadRequest)
		return
	}
	job := task.Spec
	if err := job.Validate(); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	job.Resume = task.Resume
	job.Observers = e.Observers

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	job.OnCheckpoint = func(seed uint64, ticks int, blob []byte) {
		emit(Event{Type: EventCheckpoint, Seed: seed, Ticks: ticks, Blob: blob})
	}
	job.OnResult = func(res fleet.ChipResult) {
		rec := store.FromResult(res)
		emit(Event{Type: EventResult, Seed: res.Seed, Chip: &rec})
	}

	// The request context aborts the run the moment the coordinator
	// cancels or the connection drops, so a chip migrated off this
	// worker stops burning its CPU here.
	if _, err := e.Engine.Run(r.Context(), job, nil); err != nil {
		emit(Event{Type: EventError, Err: err.Error()})
		return
	}
	emit(Event{Type: EventDone})
}

// MemberConfig drives RunMember, a worker daemon's registration and
// heartbeat loop.
type MemberConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Info is this worker's registration record.
	Info RegisterRequest
	// Interval is the heartbeat period; <= 0 selects 2s.
	Interval time.Duration
	// Degraded, when set, reports the worker's degraded state on each
	// heartbeat (the daemon wires its journal-health flag in here).
	Degraded func() (degraded bool, reason string)
	// Client substitutes the HTTP client; nil selects a 10s-timeout
	// default.
	Client *http.Client
	// Logf substitutes the logger; nil selects log.Printf.
	Logf func(format string, args ...any)
}

// RunMember registers the worker with the coordinator (retrying until
// it succeeds — the coordinator may come up later) and then heartbeats
// every Interval until ctx is canceled. A heartbeat answered 404 means
// the coordinator restarted and lost its membership, so the loop
// re-registers — that is what lets a restarted coordinator resume a
// journaled job: its workers walk right back in.
func RunMember(ctx context.Context, cfg MemberConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}

	post := func(path string, v any) (int, error) {
		body, err := json.Marshal(v)
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	register := func() bool {
		code, err := post(PathRegister, cfg.Info)
		if err != nil || code != http.StatusOK {
			if ctx.Err() == nil {
				logf("cluster: registering with %s: code %d err %v (will retry)", cfg.Coordinator, code, err)
			}
			return false
		}
		logf("cluster: registered with %s as %s", cfg.Coordinator, cfg.Info.ID)
		return true
	}

	registered := register()
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if !registered {
			registered = register()
			continue
		}
		hb := HeartbeatRequest{ID: cfg.Info.ID}
		if cfg.Degraded != nil {
			hb.Degraded, hb.Reason = cfg.Degraded()
		}
		code, err := post(PathHeartbeat, hb)
		switch {
		case err != nil:
			if ctx.Err() == nil {
				logf("cluster: heartbeat to %s failed: %v", cfg.Coordinator, err)
			}
		case code == http.StatusNotFound:
			logf("cluster: coordinator no longer knows %s; re-registering", cfg.Info.ID)
			registered = register()
		}
	}
}
