package cluster

// Worker side of the cluster: the streaming execution endpoint a
// worker daemon serves, and the register/heartbeat client loop that
// keeps it in the coordinator's membership.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"eccspec/internal/engine"
	"eccspec/internal/fleet"
	"eccspec/internal/rng"
	"eccspec/internal/store"
)

// maxTaskBytes bounds an exec request body. Tasks carry resume blobs
// (a snapshot per migrating chip), so the cap is far above the fleet
// API's: 64 MiB covers hundreds of checkpoints.
const maxTaskBytes = 64 << 20

// Executor runs dispatched chip ranges on a local fleet engine,
// streaming checkpoints and results back as they happen.
type Executor struct {
	// Engine is the local worker pool the chips run on.
	Engine *fleet.Engine
	// Observers, when set, supplies extra per-chip engine observers —
	// the worker daemon plugs its tick metrics and chaos injector in
	// here, exactly as it does for locally submitted fleets.
	Observers func(seed uint64) []engine.Observer
	// KeepAlive is the progress-keepalive period: while a task runs,
	// the stream emits an empty progress event at least this often so
	// the coordinator's stall watchdog can tell "slow chip" from
	// "wedged connection"; <= 0 selects 5s.
	KeepAlive time.Duration
}

// HandleExec serves PathExec: decode a Task, run it, and stream one
// JSON event per line (checkpoints as they pass, results as chips
// finish, a final done marker). The response is flushed after every
// event so the coordinator always holds the freshest checkpoint of
// every in-flight chip — that blob is what migration resumes from if
// this process dies mid-batch.
func (e *Executor) HandleExec(w http.ResponseWriter, r *http.Request) {
	var task Task
	body := http.MaxBytesReader(w, r.Body, maxTaskBytes)
	if err := json.NewDecoder(body).Decode(&task); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"bad task: %v"}`, err), http.StatusBadRequest)
		return
	}
	job := task.Spec
	if err := job.Validate(); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	job.Resume = task.Resume
	job.Observers = e.Observers

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var (
		mu     sync.Mutex
		seq    int64
		closed bool
	)
	enc := json.NewEncoder(w)
	// Every event carries a monotone per-stream sequence number so the
	// coordinator can dedupe a duplicated or replayed tail.
	emit := func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		seq++
		ev.Seq = seq
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The keepalive goroutine must never touch the ResponseWriter after
	// the handler returns; the closed flag fences it.
	defer func() {
		mu.Lock()
		closed = true
		mu.Unlock()
	}()
	keepAlive := e.KeepAlive
	if keepAlive <= 0 {
		keepAlive = 5 * time.Second
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(keepAlive)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-r.Context().Done():
				return
			case <-t.C:
				emit(Event{Type: EventProgress})
			}
		}
	}()
	job.OnCheckpoint = func(seed uint64, ticks int, blob []byte) {
		emit(Event{Type: EventCheckpoint, Seed: seed, Ticks: ticks, Blob: blob})
	}
	job.OnResult = func(res fleet.ChipResult) {
		rec := store.FromResult(res)
		emit(Event{Type: EventResult, Seed: res.Seed, Chip: &rec})
	}

	// The request context aborts the run the moment the coordinator
	// cancels or the connection drops, so a chip migrated off this
	// worker stops burning its CPU here.
	if _, err := e.Engine.Run(r.Context(), job, nil); err != nil {
		emit(Event{Type: EventError, Err: err.Error()})
		return
	}
	emit(Event{Type: EventDone})
}

// MemberConfig drives RunMember, a worker daemon's registration and
// heartbeat loop.
type MemberConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Info is this worker's registration record.
	Info RegisterRequest
	// Interval is the heartbeat period; <= 0 selects 2s. Each wait is
	// jittered by ±1/8 of the period from the worker's seeded stream,
	// so a fleet of workers that lost their coordinator at the same
	// instant drifts apart instead of knocking in lockstep.
	Interval time.Duration
	// Retry shapes the registration backoff: failed register attempts
	// wait exponentially longer with deterministic seeded jitter. The
	// zero value selects 250ms base, 4s cap; a zero JitterSeed derives
	// one from the worker ID, so every worker backs off on its own
	// replayable schedule — no thundering herd after a coordinator
	// restart.
	Retry store.RetryPolicy
	// Degraded, when set, reports the worker's degraded state on each
	// heartbeat (the daemon wires its journal-health flag in here).
	Degraded func() (degraded bool, reason string)
	// Client substitutes the HTTP client; nil selects a 10s-timeout
	// default on the bounded cluster transport.
	Client *http.Client
	// Logf substitutes the logger; nil selects log.Printf.
	Logf func(format string, args ...any)
}

// RunMember registers the worker with the coordinator (retrying with
// jittered exponential backoff until it succeeds — the coordinator may
// come up later) and then heartbeats every Interval until ctx is
// canceled. A heartbeat answered 404 means the coordinator restarted
// and lost its membership, so the loop re-registers — that is what
// lets a restarted coordinator resume a journaled job: its workers
// walk right back in, desynchronized by their per-worker jitter.
func RunMember(ctx context.Context, cfg MemberConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second, Transport: NewTransport()}
	}
	if cfg.Retry.BaseDelay <= 0 {
		cfg.Retry.BaseDelay = 250 * time.Millisecond
	}
	if cfg.Retry.MaxDelay <= 0 {
		cfg.Retry.MaxDelay = 4 * time.Second
	}
	if cfg.Retry.JitterSeed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.Info.ID))
		cfg.Retry.JitterSeed = h.Sum64()
	}
	jitter := rng.NewStream(cfg.Retry.JitterSeed, 0xBEA7)
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}

	post := func(path string, v any) (int, error) {
		body, err := json.Marshal(v)
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	register := func() bool {
		code, err := post(PathRegister, cfg.Info)
		if err != nil || code != http.StatusOK {
			if ctx.Err() == nil {
				logf("cluster: registering with %s: code %d err %v (will retry)", cfg.Coordinator, code, err)
			}
			return false
		}
		logf("cluster: registered with %s as %s", cfg.Coordinator, cfg.Info.ID)
		return true
	}

	// beatWait is the jittered heartbeat period: Interval ± 1/8,
	// drawn from the worker's seeded stream.
	beatWait := func() time.Duration {
		j := cfg.Interval / 8
		if j <= 0 {
			return cfg.Interval
		}
		return cfg.Interval - j + time.Duration(jitter.Uint64()%uint64(2*j+1))
	}

	for ctx.Err() == nil {
		// (Re-)register with jittered exponential backoff.
		for attempt := 1; !register(); attempt++ {
			if ctx.Err() != nil {
				return
			}
			sleepCtx(ctx, cfg.Retry.Delay(jitter, attempt))
			if ctx.Err() != nil {
				return
			}
		}
		// Heartbeat until the coordinator forgets us (a restart) or ctx
		// ends. Transport errors don't drop registration — the TTL
		// tolerates a few missed beats, and the next beat may get
		// through.
		for registered := true; registered; {
			sleepCtx(ctx, beatWait())
			if ctx.Err() != nil {
				return
			}
			hb := HeartbeatRequest{ID: cfg.Info.ID}
			if cfg.Degraded != nil {
				hb.Degraded, hb.Reason = cfg.Degraded()
			}
			code, err := post(PathHeartbeat, hb)
			switch {
			case err != nil:
				if ctx.Err() == nil {
					logf("cluster: heartbeat to %s failed: %v", cfg.Coordinator, err)
				}
			case code == http.StatusNotFound:
				logf("cluster: coordinator no longer knows %s; re-registering", cfg.Info.ID)
				registered = false
			}
		}
	}
}
