package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestMembershipLifecycle walks one worker through the full state
// machine on a fake clock: join, heartbeat, degrade, recover, TTL
// expiry, and revival by a late heartbeat.
func TestMembershipLifecycle(t *testing.T) {
	m := NewMembership(10 * time.Second)
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	m.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	if !m.Join(RegisterRequest{ID: "w1", URL: "http://a", Slots: 4}) {
		t.Fatal("first join should report new")
	}
	if m.Join(RegisterRequest{ID: "w1", URL: "http://a2", Slots: 8}) {
		t.Fatal("re-join of an existing ID should not report new")
	}
	if h := m.Healthy(); len(h) != 1 || h[0].URL != "http://a2" || h[0].Slots != 8 {
		t.Fatalf("re-join did not update the record: %+v", h)
	}

	if m.Heartbeat(HeartbeatRequest{ID: "ghost"}) {
		t.Fatal("heartbeat from an unknown ID should be rejected")
	}

	// A degraded report keeps the member but removes it from the
	// healthy set.
	advance(time.Second)
	if !m.Heartbeat(HeartbeatRequest{ID: "w1", Degraded: true, Reason: "journal trouble"}) {
		t.Fatal("degraded heartbeat should be accepted")
	}
	if len(m.Healthy()) != 0 {
		t.Fatal("degraded worker counted healthy")
	}
	if c := m.Counts(); c.Healthy != 0 || c.Degraded != 1 || c.Dead != 0 {
		t.Fatalf("counts = %+v, want 0 healthy / 1 degraded / 0 dead", c)
	}

	// A healthy heartbeat recovers it.
	advance(time.Second)
	m.Heartbeat(HeartbeatRequest{ID: "w1"})
	if len(m.Healthy()) != 1 {
		t.Fatal("recovered worker not healthy")
	}

	// Silence past the TTL kills it...
	advance(11 * time.Second)
	if c := m.Counts(); c.Healthy != 0 || c.Degraded != 0 || c.Dead != 1 {
		t.Fatalf("counts after TTL = %+v, want 0/0/1", c)
	}
	if s := m.Snapshot(); s[0].Reason != "heartbeat TTL expired" {
		t.Fatalf("dead reason = %q", s[0].Reason)
	}
	// ...and a late heartbeat proves the process alive again.
	if !m.Heartbeat(HeartbeatRequest{ID: "w1"}) {
		t.Fatal("late heartbeat should still be known")
	}
	if len(m.Healthy()) != 1 {
		t.Fatal("late heartbeat did not revive the worker")
	}

	m.MarkDead("w1", "stream broke")
	if c := m.Counts(); c.Healthy != 0 || c.Dead != 1 {
		t.Fatal("MarkDead did not kill the worker")
	}
	// Re-registration revives even an explicitly dead worker.
	m.Join(RegisterRequest{ID: "w1", URL: "http://a3", Slots: 2})
	if len(m.Healthy()) != 1 {
		t.Fatal("re-registration did not revive the worker")
	}

	m.AddChipsDone("w1", 7)
	if s := m.Snapshot(); s[0].ChipsDone != 7 {
		t.Fatalf("ChipsDone = %d, want 7", s[0].ChipsDone)
	}
}

// TestQuarantineStateMachine walks the dispatch circuit breaker on a
// fake clock: consecutive failures trip it, heartbeats and re-joins do
// not clear it, a failed half-open trial doubles the probe delay, and
// only a successful dispatch revives the worker.
func TestQuarantineStateMachine(t *testing.T) {
	m := NewMembership(time.Minute)
	m.SetQuarantinePolicy(3, 4*time.Second)
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	m.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	m.Join(RegisterRequest{ID: "w1", URL: "http://a", Slots: 2})

	// Two failures: still healthy, counter visible.
	for i := 0; i < 2; i++ {
		if m.RecordExecFailure("w1", "boom") {
			t.Fatalf("failure %d tripped the breaker early", i+1)
		}
	}
	if s := m.Snapshot(); s[0].State != StateHealthy || s[0].ConsecFails != 2 {
		t.Fatalf("after 2 failures: %+v", s[0])
	}
	// A success resets the counter entirely.
	m.RecordExecSuccess("w1")
	if s := m.Snapshot(); s[0].ConsecFails != 0 {
		t.Fatalf("success did not reset fails: %+v", s[0])
	}

	// Three straight failures trip quarantine with ProbeAt one delay out.
	for i := 0; i < 2; i++ {
		m.RecordExecFailure("w1", "boom")
	}
	if !m.RecordExecFailure("w1", "boom") {
		t.Fatal("third consecutive failure did not quarantine")
	}
	s := m.Snapshot()
	if s[0].State != StateQuarantined || s[0].Reason != "boom" {
		t.Fatalf("after trip: %+v", s[0])
	}
	if got := s[0].ProbeAt.Sub(now); got != 4*time.Second {
		t.Fatalf("first probe delay = %v, want 4s", got)
	}
	if m.Quarantines() != 1 {
		t.Fatalf("quarantine counter = %d, want 1", m.Quarantines())
	}

	// Quarantined workers are not healthy, but liveness still counts.
	if len(m.Healthy()) != 0 {
		t.Fatal("quarantined worker listed healthy")
	}
	if c := m.Counts(); c.Quarantined != 1 {
		t.Fatalf("counts = %+v", c)
	}

	// Neither a healthy heartbeat nor a re-join clears quarantine.
	advance(time.Second)
	m.Heartbeat(HeartbeatRequest{ID: "w1"})
	m.Join(RegisterRequest{ID: "w1", URL: "http://a2", Slots: 2})
	if s := m.Snapshot(); s[0].State != StateQuarantined {
		t.Fatalf("heartbeat/join cleared quarantine: %+v", s[0])
	}

	// A failed half-open trial doubles the probe delay; the counter
	// records one transition, not two.
	if !m.RecordExecFailure("w1", "still down") {
		t.Fatal("failed trial did not stay quarantined")
	}
	if s := m.Snapshot(); s[0].ProbeAt.Sub(now) != 8*time.Second {
		t.Fatalf("second probe delay = %v, want 8s", s[0].ProbeAt.Sub(now))
	}
	if m.Quarantines() != 1 {
		t.Fatalf("failed trial re-counted: %d", m.Quarantines())
	}

	// A successful trial revives the worker completely.
	m.RecordExecSuccess("w1")
	s = m.Snapshot()
	if s[0].State != StateHealthy || s[0].ConsecFails != 0 || !s[0].ProbeAt.IsZero() {
		t.Fatalf("successful trial did not revive: %+v", s[0])
	}

	// A quarantined worker that stops heartbeating entirely still dies
	// by TTL.
	for i := 0; i < 3; i++ {
		m.RecordExecFailure("w1", "boom")
	}
	advance(2 * time.Minute)
	if c := m.Counts(); c.Dead != 1 {
		t.Fatalf("silent quarantined worker should expire dead: %+v", c)
	}
}

// TestSchedulerSourcesInOrder checks next()'s sourcing order: own
// deque first, then orphans, then stealing the far half of the most
// loaded peer.
func TestSchedulerSourcesInOrder(t *testing.T) {
	s := newScheduler(10)
	s.addWorker("a")
	s.addWorker("b")
	s.seed("a", []int{0, 1, 2, 3, 4, 5})

	// Own deque, front first.
	got, ok := s.next("a", 2)
	if !ok || len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("own-deque batch = %v ok=%v", got, ok)
	}

	// b has nothing of its own and no orphans: it steals the far half
	// (2 of a's remaining 4) from the tail.
	got, ok = s.next("b", 8)
	if !ok || len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("stolen batch = %v ok=%v", got, ok)
	}
	if stolen, _ := s.stats(); stolen != 2 {
		t.Fatalf("stolen counter = %d, want 2", stolen)
	}

	// Orphans outrank stealing.
	s.release([]int{9})
	got, ok = s.next("b", 1)
	if !ok || len(got) != 1 || got[0] != 9 {
		t.Fatalf("orphan batch = %v ok=%v", got, ok)
	}
}

// TestSchedulerMigration checks removeWorker re-queues both the dead
// worker's deque and its in-flight chips, exactly once, and that a
// duplicate completion (the migration race) is dropped.
func TestSchedulerMigration(t *testing.T) {
	s := newScheduler(4)
	s.addWorker("a")
	s.addWorker("b")
	s.seed("a", []int{0, 1, 2, 3})

	batch, _ := s.next("a", 2) // 0,1 in flight on a
	if len(batch) != 2 {
		t.Fatalf("batch = %v", batch)
	}
	if got := s.inFlightOn("a"); got != 2 {
		t.Fatalf("inFlightOn(a) = %d, want 2", got)
	}
	if first, done := s.claimComplete(0); !first || done != 1 {
		t.Fatalf("first completion = %v/%d", first, done)
	}

	s.removeWorker("a")
	if _, mig := s.stats(); mig != 1 {
		t.Fatalf("migrated = %d, want 1 (chip 1 was in flight; chip 0 had completed)", mig)
	}
	// b inherits everything unfinished: queued 2,3 and in-flight 1.
	seen := map[int]bool{}
	for len(seen) < 3 {
		batch, ok := s.next("b", 4)
		if !ok {
			t.Fatalf("next(b) refused with %d/3 inherited", len(seen))
		}
		for _, c := range batch {
			seen[c] = true
			s.claimComplete(c)
		}
	}
	if seen[0] || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("b inherited %v, want {1,2,3}", seen)
	}

	// Duplicate completion of chip 1 is not a second completion.
	if first, _ := s.claimComplete(1); first {
		t.Fatal("duplicate completion reported first")
	}
	if !s.finished() {
		t.Fatal("all chips completed but finished() is false")
	}
}

// TestSchedulerBlocksUntilCancel checks next() parks an idle worker
// and cancel() releases it with ok=false.
func TestSchedulerBlocksUntilCancel(t *testing.T) {
	s := newScheduler(1)
	s.addWorker("a")
	s.addWorker("b")
	s.seed("a", []int{0})
	if _, ok := s.next("a", 1); !ok {
		t.Fatal("a got no work")
	}
	// Chip 0 is in flight on a; b must block, not spin or grab it.
	released := make(chan bool, 1)
	go func() {
		_, ok := s.next("b", 1)
		released <- ok
	}()
	select {
	case <-released:
		t.Fatal("next(b) returned while everything was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	s.cancel()
	select {
	case ok := <-released:
		if ok {
			t.Fatal("canceled next returned ok")
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not release the blocked worker")
	}
}
