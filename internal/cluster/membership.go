package cluster

// Membership is the coordinator's view of the worker population:
// who has registered, who is still heartbeating, and who has gone
// degraded or silent. It is pure bookkeeping — scheduling reacts to
// it, but never mutates it except to report a failed dispatch via
// MarkDead.

import (
	"sort"
	"sync"
	"time"
)

// Worker liveness states.
const (
	// StateHealthy workers accept new work.
	StateHealthy = "healthy"
	// StateDegraded workers are alive but have asked not to be
	// trusted (journal trouble, failing self-tests); they get no new
	// work and their in-flight chips migrate.
	StateDegraded = "degraded"
	// StateDead workers missed their TTL or broke a dispatch stream;
	// everything they held migrates. A dead worker that registers or
	// heartbeats again is revived.
	StateDead = "dead"
)

// Member is one worker's membership record.
type Member struct {
	ID         string
	URL        string
	Slots      int
	Version    string
	State      string
	Reason     string
	Registered time.Time
	LastBeat   time.Time
	// ChipsDone counts chips this worker completed across all jobs.
	ChipsDone int64
}

// Membership tracks registered workers with TTL-based failure
// detection. All methods are safe for concurrent use; expiry is
// evaluated lazily on every read, so there is no sweeper goroutine to
// leak.
type Membership struct {
	mu      sync.Mutex
	members map[string]*Member
	ttl     time.Duration
	now     func() time.Time
}

// DefaultTTL is the liveness window when none is configured.
const DefaultTTL = 10 * time.Second

// NewMembership builds an empty membership with the given liveness
// TTL (<= 0 selects DefaultTTL).
func NewMembership(ttl time.Duration) *Membership {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Membership{members: make(map[string]*Member), ttl: ttl, now: time.Now}
}

// SetClock substitutes the time source (tests).
func (m *Membership) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// TTL returns the liveness window.
func (m *Membership) TTL() time.Duration { return m.ttl }

// Join registers a worker, or revives/updates one that already
// exists. It reports whether the ID was new.
func (m *Membership) Join(req RegisterRequest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	w, ok := m.members[req.ID]
	if !ok {
		w = &Member{ID: req.ID, Registered: now}
		m.members[req.ID] = w
	}
	w.URL = req.URL
	w.Slots = req.Slots
	w.Version = req.Version
	w.State = StateHealthy
	w.Reason = ""
	w.LastBeat = now
	return !ok
}

// Heartbeat refreshes a worker's liveness, reporting whether the ID
// is known (an unknown ID tells the worker to re-register — the
// coordinator may have restarted and lost its membership). A degraded
// report moves the worker to StateDegraded; a healthy one revives even
// a dead worker, since the process is demonstrably alive.
func (m *Membership) Heartbeat(req HeartbeatRequest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.members[req.ID]
	if !ok {
		return false
	}
	w.LastBeat = m.now()
	if req.Degraded {
		w.State = StateDegraded
		w.Reason = req.Reason
	} else {
		w.State = StateHealthy
		w.Reason = ""
	}
	return true
}

// MarkDead declares a worker dead out-of-band — the scheduler calls it
// when a dispatch stream breaks before the TTL does.
func (m *Membership) MarkDead(id, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.members[id]; w != nil {
		w.State = StateDead
		w.Reason = reason
	}
}

// expireLocked applies the TTL: any non-dead worker silent past it is
// declared dead. Caller holds m.mu.
func (m *Membership) expireLocked() {
	cutoff := m.now().Add(-m.ttl)
	for _, w := range m.members {
		if w.State != StateDead && w.LastBeat.Before(cutoff) {
			w.State = StateDead
			w.Reason = "heartbeat TTL expired"
		}
	}
}

// Snapshot returns every member, expiry applied, sorted by ID.
func (m *Membership) Snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	out := make([]Member, 0, len(m.members))
	for _, w := range m.members {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Healthy returns the healthy members, expiry applied, sorted by ID.
func (m *Membership) Healthy() []Member {
	all := m.Snapshot()
	out := all[:0]
	for _, w := range all {
		if w.State == StateHealthy {
			out = append(out, w)
		}
	}
	return out
}

// Counts tallies members by state, expiry applied.
func (m *Membership) Counts() (healthy, degraded, dead int) {
	for _, w := range m.Snapshot() {
		switch w.State {
		case StateHealthy:
			healthy++
		case StateDegraded:
			degraded++
		default:
			dead++
		}
	}
	return
}

// AddChipsDone credits a worker with finished chips (members view).
func (m *Membership) AddChipsDone(id string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.members[id]; w != nil {
		w.ChipsDone += n
	}
}
