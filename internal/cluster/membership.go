package cluster

// Membership is the coordinator's view of the worker population:
// who has registered, who is still heartbeating, and who has gone
// degraded or silent. It is pure bookkeeping — scheduling reacts to
// it, but never mutates it except to report a failed dispatch via
// MarkDead.

import (
	"sort"
	"sync"
	"time"
)

// Worker liveness states.
const (
	// StateHealthy workers accept new work.
	StateHealthy = "healthy"
	// StateDegraded workers are alive but have asked not to be
	// trusted (journal trouble, failing self-tests); they get no new
	// work and their in-flight chips migrate.
	StateDegraded = "degraded"
	// StateQuarantined workers tripped the dispatch circuit breaker:
	// QuarantineAfter consecutive RPC failures. They may still be
	// heartbeating happily — quarantine is the coordinator's distrust
	// of the exec path, not of the process — so heartbeats refresh
	// their liveness without clearing the state. Only a successful
	// half-open trial dispatch (after ProbeAt) revives them; a failed
	// trial re-quarantines with a doubled probe delay.
	StateQuarantined = "quarantined"
	// StateDead workers missed their TTL or broke a dispatch stream;
	// everything they held migrates. A dead worker that registers or
	// heartbeats again is revived.
	StateDead = "dead"
)

// Member is one worker's membership record.
type Member struct {
	ID         string
	URL        string
	Slots      int
	Version    string
	State      string
	Reason     string
	Registered time.Time
	LastBeat   time.Time
	// ChipsDone counts chips this worker completed across all jobs.
	ChipsDone int64
	// ConsecFails counts consecutive failed dispatches; reset by any
	// success. At QuarantineAfter the worker is quarantined.
	ConsecFails int
	// ProbeAt is when a quarantined worker earns its next half-open
	// trial dispatch.
	ProbeAt time.Time
}

// Membership tracks registered workers with TTL-based failure
// detection. All methods are safe for concurrent use; expiry is
// evaluated lazily on every read, so there is no sweeper goroutine to
// leak.
type Membership struct {
	mu      sync.Mutex
	members map[string]*Member
	ttl     time.Duration
	now     func() time.Time

	quarantineAfter int
	probeDelay      time.Duration
	quarantines     int64 // cumulative healthy->quarantined transitions
}

// DefaultTTL is the liveness window when none is configured.
const DefaultTTL = 10 * time.Second

// Quarantine circuit-breaker defaults.
const (
	// DefaultQuarantineAfter is the consecutive-dispatch-failure count
	// that trips a worker into quarantine.
	DefaultQuarantineAfter = 3
	// DefaultProbeDelay is the wait before a quarantined worker's first
	// half-open trial dispatch; each failed trial doubles it.
	DefaultProbeDelay = 5 * time.Second
)

// NewMembership builds an empty membership with the given liveness
// TTL (<= 0 selects DefaultTTL) and the default quarantine policy.
func NewMembership(ttl time.Duration) *Membership {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Membership{
		members:         make(map[string]*Member),
		ttl:             ttl,
		now:             time.Now,
		quarantineAfter: DefaultQuarantineAfter,
		probeDelay:      DefaultProbeDelay,
	}
}

// SetQuarantinePolicy tunes the circuit breaker: after consecutive
// dispatch failures trip quarantine, probeDelay gates the first
// half-open trial (doubling per failed trial). Non-positive values
// keep the defaults.
func (m *Membership) SetQuarantinePolicy(after int, probeDelay time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if after > 0 {
		m.quarantineAfter = after
	}
	if probeDelay > 0 {
		m.probeDelay = probeDelay
	}
}

// SetClock substitutes the time source (tests).
func (m *Membership) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// TTL returns the liveness window.
func (m *Membership) TTL() time.Duration { return m.ttl }

// Join registers a worker, or revives/updates one that already
// exists. It reports whether the ID was new. A quarantined worker
// stays quarantined: re-registering proves the process is alive, not
// that the exec path works — only a successful trial dispatch does.
func (m *Membership) Join(req RegisterRequest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	w, ok := m.members[req.ID]
	if !ok {
		w = &Member{ID: req.ID, Registered: now}
		m.members[req.ID] = w
	}
	w.URL = req.URL
	w.Slots = req.Slots
	w.Version = req.Version
	if w.State != StateQuarantined {
		w.State = StateHealthy
		w.Reason = ""
	}
	w.LastBeat = now
	return !ok
}

// Heartbeat refreshes a worker's liveness, reporting whether the ID
// is known (an unknown ID tells the worker to re-register — the
// coordinator may have restarted and lost its membership). A degraded
// report moves the worker to StateDegraded; a healthy one revives even
// a dead worker, since the process is demonstrably alive.
func (m *Membership) Heartbeat(req HeartbeatRequest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.members[req.ID]
	if !ok {
		return false
	}
	w.LastBeat = m.now()
	switch {
	case req.Degraded:
		// A degraded self-report supersedes quarantine: the worker is
		// telling us not to trust it at all.
		w.State = StateDegraded
		w.Reason = req.Reason
	case w.State == StateQuarantined:
		// Liveness refreshed, distrust kept: the exec path has to prove
		// itself with a successful trial dispatch.
	default:
		w.State = StateHealthy
		w.Reason = ""
	}
	return true
}

// MarkDead declares a worker dead out-of-band — the scheduler calls it
// when a dispatch stream breaks before the TTL does.
func (m *Membership) MarkDead(id, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.members[id]; w != nil {
		w.State = StateDead
		w.Reason = reason
	}
}

// RecordExecFailure counts one failed dispatch against the worker and
// reports whether it is (now) quarantined. The circuit breaker trips
// at quarantineAfter consecutive failures; a failure while already
// quarantined is a failed half-open trial, which doubles the probe
// delay (capped at 64x).
func (m *Membership) RecordExecFailure(id, reason string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.members[id]
	if w == nil {
		return false
	}
	w.ConsecFails++
	if w.ConsecFails < m.quarantineAfter && w.State != StateQuarantined {
		return false
	}
	if w.State != StateQuarantined {
		m.quarantines++
	}
	w.State = StateQuarantined
	w.Reason = reason
	backoff := w.ConsecFails - m.quarantineAfter // 0 on first trip
	if backoff > 6 {
		backoff = 6
	}
	w.ProbeAt = m.now().Add(m.probeDelay << backoff)
	return true
}

// RecordExecSuccess counts one completed dispatch: the consecutive-
// failure counter resets, and a quarantined worker — this was its
// half-open trial — is revived.
func (m *Membership) RecordExecSuccess(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.members[id]
	if w == nil {
		return
	}
	w.ConsecFails = 0
	w.ProbeAt = time.Time{}
	if w.State == StateQuarantined {
		w.State = StateHealthy
		w.Reason = ""
	}
}

// Quarantines returns the cumulative count of quarantine transitions,
// for the daemon's metrics.
func (m *Membership) Quarantines() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantines
}

// expireLocked applies the TTL: any non-dead worker silent past it is
// declared dead. Caller holds m.mu.
func (m *Membership) expireLocked() {
	cutoff := m.now().Add(-m.ttl)
	for _, w := range m.members {
		if w.State != StateDead && w.LastBeat.Before(cutoff) {
			w.State = StateDead
			w.Reason = "heartbeat TTL expired"
		}
	}
}

// Snapshot returns every member, expiry applied, sorted by ID.
func (m *Membership) Snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	out := make([]Member, 0, len(m.members))
	for _, w := range m.members {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Healthy returns the healthy members, expiry applied, sorted by ID.
func (m *Membership) Healthy() []Member {
	all := m.Snapshot()
	out := all[:0]
	for _, w := range all {
		if w.State == StateHealthy {
			out = append(out, w)
		}
	}
	return out
}

// StateCounts tallies the membership by state.
type StateCounts struct {
	Healthy, Degraded, Quarantined, Dead int
}

// Counts tallies members by state, expiry applied.
func (m *Membership) Counts() StateCounts {
	var c StateCounts
	for _, w := range m.Snapshot() {
		switch w.State {
		case StateHealthy:
			c.Healthy++
		case StateDegraded:
			c.Degraded++
		case StateQuarantined:
			c.Quarantined++
		default:
			c.Dead++
		}
	}
	return c
}

// AddChipsDone credits a worker with finished chips (members view).
func (m *Membership) AddChipsDone(id string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.members[id]; w != nil {
		w.ChipsDone += n
	}
}
