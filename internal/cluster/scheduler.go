package cluster

// Work-stealing scheduler: the coordinator-side data structure that
// decides which worker simulates which chip next. Chips are indices
// into the job's seed slice. Each worker owns a deque seeded with a
// contiguous share of the job; owners pop from the front, thieves take
// the far half from the back, and chips orphaned by a dead worker wait
// in a shared pool that outranks stealing. Placement never affects
// results — every chip is deterministic in its seed — so the scheduler
// is free to chase pure load balance.

import "sync"

type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	total     int
	done      int
	completed []bool
	queues    map[string][]int // per-worker deques of pending chip indices
	inflight  map[int]string   // chip index -> worker currently running it
	orphans   []int            // chips re-queued off dead/degraded workers

	canceled bool

	stolen   int64 // chips moved by stealing
	migrated int64 // in-flight chips re-queued off a failed worker
}

func newScheduler(total int) *scheduler {
	s := &scheduler{
		total:     total,
		completed: make([]bool, total),
		queues:    make(map[string][]int),
		inflight:  make(map[int]string),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// addWorker gives a worker an (empty) deque so it can steal. Adding an
// existing worker is a no-op.
func (s *scheduler) addWorker(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[id]; !ok {
		s.queues[id] = nil
		s.cond.Broadcast()
	}
}

// seed appends chips to a worker's deque (initial sharding).
func (s *scheduler) seed(id string, chips []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queues[id] = append(s.queues[id], chips...)
	s.cond.Broadcast()
}

// next blocks until it can hand worker id a batch of up to max chips,
// marking them in flight. It returns ok=false when the job is finished
// or canceled, or the worker has been removed — the worker's agent
// should exit. Sourcing order: own deque, then the orphan pool, then
// stealing the far half of the most-loaded peer's deque.
func (s *scheduler) next(id string, max int) ([]int, bool) {
	if max < 1 {
		max = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.canceled || s.done == s.total {
			return nil, false
		}
		if _, ok := s.queues[id]; !ok {
			return nil, false // removed while waiting
		}
		if batch := s.takeLocked(id, max); len(batch) > 0 {
			for _, c := range batch {
				s.inflight[c] = id
			}
			return batch, true
		}
		// Everything pending is in flight elsewhere; wait for a
		// completion, a migration, or cancellation.
		s.cond.Wait()
	}
}

// takeLocked gathers up to max chips for id without blocking.
func (s *scheduler) takeLocked(id string, max int) []int {
	q := s.queues[id]
	if n := min(len(q), max); n > 0 {
		batch := append([]int(nil), q[:n]...)
		s.queues[id] = q[n:]
		return batch
	}
	if n := min(len(s.orphans), max); n > 0 {
		batch := append([]int(nil), s.orphans[:n]...)
		s.orphans = s.orphans[n:]
		return batch
	}
	// Steal: far half (rounded up) of the most-loaded peer's deque.
	victim, best := "", 0
	for w, vq := range s.queues {
		if w != id && len(vq) > best {
			victim, best = w, len(vq)
		}
	}
	if best == 0 {
		return nil
	}
	n := min((best+1)/2, max)
	vq := s.queues[victim]
	batch := append([]int(nil), vq[len(vq)-n:]...)
	s.queues[victim] = vq[:len(vq)-n]
	s.stolen += int64(n)
	return batch
}

// claimComplete marks a chip finished, reporting whether this was the
// first completion (a duplicate — a chip that raced on two workers
// around a migration — is dropped) and the total finished so far.
func (s *scheduler) claimComplete(chip int) (first bool, done int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, chip)
	if s.completed[chip] {
		return false, s.done
	}
	s.completed[chip] = true
	s.done++
	s.cond.Broadcast()
	return true, s.done
}

// release returns still-unfinished chips of a batch to the orphan pool
// without removing the worker (a failed dispatch the agent will retry,
// a task-level refusal, or a done-event that skipped chips). Released
// in-flight chips count as migrations: they left a worker mid-batch
// and will resume elsewhere — or on the same worker — from their
// freshest streamed checkpoint.
func (s *scheduler) release(chips []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range chips {
		if !s.completed[c] {
			if _, ok := s.inflight[c]; ok {
				s.migrated++
			}
			delete(s.inflight, c)
			s.orphans = append(s.orphans, c)
		}
	}
	s.cond.Broadcast()
}

// removeWorker migrates everything a failed worker held — its queued
// deque and its in-flight chips — into the orphan pool. Idempotent.
func (s *scheduler) removeWorker(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[id]
	if !ok {
		return
	}
	delete(s.queues, id)
	for _, c := range q {
		if !s.completed[c] {
			s.orphans = append(s.orphans, c)
		}
	}
	for c, w := range s.inflight {
		if w == id {
			delete(s.inflight, c)
			if !s.completed[c] {
				s.orphans = append(s.orphans, c)
				s.migrated++
			}
		}
	}
	s.cond.Broadcast()
}

// cancel unblocks every waiter; next returns ok=false from here on.
func (s *scheduler) cancel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.canceled = true
	s.cond.Broadcast()
}

// finished reports whether every chip has completed.
func (s *scheduler) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done == s.total
}

// inFlightOn counts chips currently running on worker id.
func (s *scheduler) inFlightOn(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, w := range s.inflight {
		if w == id {
			n++
		}
	}
	return n
}

// stats returns the steal/migration counters.
func (s *scheduler) stats() (stolen, migrated int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stolen, s.migrated
}
