package cluster

// End-to-end coordinator tests against real Executor workers served
// over loopback HTTP. The recurring assertion is the subsystem's
// contract: a cluster run's merged results are byte-identical — in
// their full JSON wire form, traces included — to a single-node run of
// the same job, no matter how chips were sharded, stolen, or migrated
// mid-flight off a dying worker.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// testJob is small enough to simulate in well under a second per chip
// but long enough (vs its checkpoint interval) to stream several
// checkpoints per chip.
func testJob(seeds ...uint64) fleet.Job {
	return fleet.Job{
		Seeds:           seeds,
		Workload:        "jbb-8wh",
		Seconds:         0.02,
		TraceEvery:      7,
		CheckpointEvery: 8, // a 0.02s job runs ~20 control ticks: 2 ckpts/chip
	}
}

// wireChips renders results in the exact JSON wire form the daemon
// persists and serves; comparing these strings is the byte-identity
// check.
func wireChips(t *testing.T, results []fleet.ChipResult) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		b, err := json.Marshal(store.FromResult(r))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// singleNode runs the job on a local engine — the reference output.
func singleNode(t *testing.T, job fleet.Job) []string {
	t.Helper()
	res, err := fleet.New(fleet.Config{Workers: 2}).Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	return wireChips(t, res)
}

// startWorker serves a real Executor over loopback and registers it.
func startWorker(t *testing.T, m *Membership, id string, slots int) *httptest.Server {
	t.Helper()
	ex := &Executor{Engine: fleet.New(fleet.Config{Workers: slots})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExec, ex.HandleExec)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	m.Join(RegisterRequest{ID: id, URL: ts.URL, Slots: slots})
	return ts
}

func newTestCoordinator(m *Membership) *Coordinator {
	return New(Config{
		Membership: m,
		WorkerWait: 10 * time.Second,
		Poll:       10 * time.Millisecond,
		Logf:       func(string, ...any) {},
	})
}

// TestClusterMatchesSingleNode is the headline contract: two workers,
// merged output byte-identical to one node, hooks all firing.
func TestClusterMatchesSingleNode(t *testing.T) {
	job := testJob(11, 12, 13, 14, 15)
	want := singleNode(t, job)

	m := NewMembership(time.Minute)
	startWorker(t, m, "w1", 2)
	startWorker(t, m, "w2", 2)
	c := newTestCoordinator(m)

	var ckpts, results, progress atomic.Int64
	var assignMu sync.Mutex
	assigned := make(map[uint64]string)
	job.OnCheckpoint = func(seed uint64, ticks int, blob []byte) { ckpts.Add(1) }
	job.OnResult = func(fleet.ChipResult) { results.Add(1) }
	job.OnAssign = func(seed uint64, worker string) {
		assignMu.Lock()
		assigned[seed] = worker
		assignMu.Unlock()
	}
	res, err := c.Run(context.Background(), job, func(done, total int) { progress.Add(1) })
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	got := wireChips(t, res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chip %d differs:\ncluster: %s\nsingle:  %s", i, got[i], want[i])
		}
	}

	if ckpts.Load() == 0 {
		t.Error("no checkpoints streamed back")
	}
	if results.Load() != int64(len(job.Seeds)) {
		t.Errorf("OnResult fired %d times, want %d", results.Load(), len(job.Seeds))
	}
	if progress.Load() != int64(len(job.Seeds)) {
		t.Errorf("progress fired %d times, want %d", progress.Load(), len(job.Seeds))
	}
	// OnAssign fires from the dispatch path before Run returns, so the
	// map is stable to read here.
	if len(assigned) != len(job.Seeds) {
		t.Errorf("OnAssign covered %d seeds, want %d", len(assigned), len(job.Seeds))
	}
	st := c.Stats()
	if st.ChipsDone != int64(len(job.Seeds)) || st.Dispatches == 0 || st.RemoteTicks == 0 {
		t.Errorf("stats = %+v", st)
	}
	if m.Snapshot()[0].ChipsDone+m.Snapshot()[1].ChipsDone != int64(len(job.Seeds)) {
		t.Errorf("membership chip credit does not sum to fleet size")
	}
}

// TestClusterPropertyRandomized fuzzes the topology: random worker
// counts, slot counts, batch caps, and seed sets must all merge to the
// single-node bytes. Fixed rand seed keeps failures reproducible.
func TestClusterPropertyRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation test")
	}
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 3; round++ {
		// Unique by construction: 53-wide strides dominate the <50 jitter.
		seeds := make([]uint64, 1+rng.Intn(6))
		for i := range seeds {
			seeds[i] = uint64(1000*round+53*i) + uint64(rng.Intn(50))
		}
		job := testJob(seeds...)
		job.TraceEvery = rng.Intn(10) // 0 = no trace
		want := singleNode(t, job)

		m := NewMembership(time.Minute)
		workers := 1 + rng.Intn(3)
		for w := 0; w < workers; w++ {
			startWorker(t, m, fmt.Sprintf("r%d-w%d", round, w), 1+rng.Intn(3))
		}
		c := New(Config{
			Membership: m,
			MaxBatch:   1 + rng.Intn(4),
			WorkerWait: 10 * time.Second,
			Poll:       10 * time.Millisecond,
			Logf:       func(string, ...any) {},
		})
		res, err := c.Run(context.Background(), job, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := wireChips(t, res)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d (%d workers): chip %d differs:\ncluster: %s\nsingle:  %s",
					round, workers, i, got[i], want[i])
			}
		}
	}
}

// severingProxy fronts a worker and cuts the exec response stream
// right after relaying the first checkpoint event — the wire signature
// of a worker crashing mid-batch with work checkpointed but unfinished.
// Only the first exec is severed; the test keeps the real worker URL
// out of the membership so every dispatch flows through the proxy.
func severingProxy(t *testing.T, workerURL string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var severed atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel() // abandoning the relay aborts the worker's run
		req, err := http.NewRequestWithContext(ctx, r.Method, workerURL+r.URL.Path, r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		flusher := w.(http.Flusher)
		sever := severed.Load() == 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // checkpoint lines are big
		for sc.Scan() {
			line := sc.Bytes()
			w.Write(line)
			w.Write([]byte("\n"))
			flusher.Flush()
			if sever && bytes.Contains(line, []byte(`"type":"ckpt"`)) {
				severed.Add(1)
				return
			}
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &severed
}

// TestWorkerDeathMigratesChips kills a worker's exec stream mid-batch
// (after a checkpoint went over the wire) and checks the survivor
// finishes the job with byte-identical results — checkpoint migration
// plus the first-completion-wins merge in one scenario. The quarantine
// threshold is 1 with an hour-long probe delay, so the broken stream
// trips the circuit breaker immediately and the doomed worker stays
// benched for the rest of the run.
func TestWorkerDeathMigratesChips(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation test")
	}
	job := testJob(21, 22, 23, 24)
	job.CheckpointEvery = 10 // checkpoint early so the sever hits mid-chip
	want := singleNode(t, job)

	m := NewMembership(time.Minute)
	m.SetQuarantinePolicy(1, time.Hour)
	// Doomed worker: a real executor, reached only through the proxy.
	ex := &Executor{Engine: fleet.New(fleet.Config{Workers: 2})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExec, ex.HandleExec)
	real := httptest.NewServer(mux)
	t.Cleanup(real.Close)
	proxy, severed := severingProxy(t, real.URL)
	m.Join(RegisterRequest{ID: "doomed", URL: proxy.URL, Slots: 2})
	startWorker(t, m, "survivor", 2)

	c := newTestCoordinator(m)
	res, err := c.Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	got := wireChips(t, res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chip %d differs after migration:\ncluster: %s\nsingle:  %s", i, got[i], want[i])
		}
	}
	if severed.Load() == 0 {
		t.Fatal("proxy never severed a stream; the scenario did not exercise migration")
	}
	if st := c.Stats(); st.ChipsMigrated == 0 {
		t.Errorf("no chips migrated: %+v", st)
	}
	for _, w := range m.Snapshot() {
		if w.ID == "doomed" && w.State != StateQuarantined {
			t.Errorf("doomed worker is %s, want quarantined", w.State)
		}
	}
	if m.Quarantines() != 1 {
		t.Errorf("quarantine counter = %d, want 1", m.Quarantines())
	}
}

// TestDegradedWorkerMigration flips a worker to degraded mid-run; the
// monitor must cancel its agent, re-queue its chips, and the healthy
// peer must still produce byte-identical output.
func TestDegradedWorkerMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation test")
	}
	job := testJob(31, 32, 33, 34, 35, 36)
	want := singleNode(t, job)

	m := NewMembership(time.Minute)
	startWorker(t, m, "wobbly", 1)
	startWorker(t, m, "steady", 2)
	c := newTestCoordinator(m)

	done := make(chan struct{})
	go func() {
		// Degrade shortly after dispatch begins; whether its first batch
		// was still in flight decides migration vs plain re-queue, and
		// both must merge identically.
		time.Sleep(30 * time.Millisecond)
		m.Heartbeat(HeartbeatRequest{ID: "wobbly", Degraded: true, Reason: "journal trouble"})
		close(done)
	}()
	res, err := c.Run(context.Background(), job, nil)
	<-done
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	got := wireChips(t, res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chip %d differs after degrade:\ncluster: %s\nsingle:  %s", i, got[i], want[i])
		}
	}
}

// TestNoWorkersFailsFast: a coordinator with an empty membership must
// give up after WorkerWait with every chip carrying the error.
func TestNoWorkersFailsFast(t *testing.T) {
	c := New(Config{
		Membership: NewMembership(time.Minute),
		WorkerWait: 50 * time.Millisecond,
		Poll:       5 * time.Millisecond,
		Logf:       func(string, ...any) {},
	})
	res, err := c.Run(context.Background(), testJob(1, 2), nil)
	if err == nil || !strings.Contains(err.Error(), "no healthy workers") {
		t.Fatalf("err = %v, want no-healthy-workers", err)
	}
	if len(res) != 2 || res[0].Err == nil || res[1].Err == nil {
		t.Fatalf("chips should carry the error: %+v", res)
	}
}

// TestRejectedTaskFailsChips: a worker that answers 400 (deterministic
// rejection) must fail exactly the dispatched chips — no requeue loop,
// no worker death.
func TestRejectedTaskFailsChips(t *testing.T) {
	m := NewMembership(time.Minute)
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, `{"error":"synthetic rejection"}`, http.StatusBadRequest)
	}))
	t.Cleanup(reject.Close)
	m.Join(RegisterRequest{ID: "rejector", URL: reject.URL, Slots: 4})

	c := newTestCoordinator(m)
	res, err := c.Run(context.Background(), testJob(41, 42, 43), nil)
	if err != nil {
		t.Fatalf("run should succeed with per-chip errors, got: %v", err)
	}
	for _, r := range res {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "rejected task") {
			t.Fatalf("chip %d: err = %v, want rejection", r.Seed, r.Err)
		}
	}
	if counts := m.Counts(); counts.Healthy != 1 || counts.Dead != 0 || counts.Quarantined != 0 {
		t.Errorf("rejecting worker should stay healthy: %+v", counts)
	}
}

// TestExecRejectsGarbage: the worker endpoint 400s undecodable and
// invalid tasks instead of opening a stream.
func TestExecRejectsGarbage(t *testing.T) {
	ex := &Executor{Engine: fleet.New(fleet.Config{Workers: 1})}
	ts := httptest.NewServer(http.HandlerFunc(ex.HandleExec))
	t.Cleanup(ts.Close)

	for name, body := range map[string]string{
		"not json":    "{",
		"invalid job": `{"spec":{"seeds":[],"seconds":1}}`,
		"bad seconds": `{"spec":{"seeds":[1],"seconds":-1}}`,
	} {
		resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}
