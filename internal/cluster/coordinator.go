package cluster

// Coordinator: the multi-node counterpart of fleet.Engine. Run has the
// same shape as fleet.Engine.Run — same job type, same ordered result
// slice, same hook surface — so the daemon's job runner can drive a
// cluster exactly the way it drives a local worker pool.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"eccspec/internal/fleet"
	"eccspec/internal/rng"
	"eccspec/internal/store"
)

// NewTransport returns the bounded transport every cluster client
// should dial through: a dial timeout catches partitioned links, a
// response-header timeout catches black-holed requests, and there is
// deliberately no overall request timeout — exec streams are long-
// lived and pace themselves with progress keepalives instead.
func NewTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 15 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 15 * time.Second,
		MaxIdleConnsPerHost:   16,
	}
}

// Config tunes a Coordinator.
type Config struct {
	// Membership is the worker registry the coordinator schedules
	// over (required).
	Membership *Membership
	// Client substitutes the dispatch HTTP client; nil selects one
	// built on Transport with no overall timeout (exec streams are
	// long-lived).
	Client *http.Client
	// Transport substitutes the default client's transport — the chaos
	// injector wraps the bounded default here; nil selects
	// NewTransport(). Ignored when Client is set.
	Transport http.RoundTripper
	// Retry bounds the per-worker dispatch retry loop: a failed
	// dispatch requeues its chips and retries after an exponential,
	// deterministically jittered backoff (the store's RetryPolicy
	// shape, seeded by Retry.JitterSeed) until the membership's
	// circuit breaker quarantines the worker. The zero value selects
	// the store defaults (2ms base, 250ms cap).
	Retry store.RetryPolicy
	// StallTimeout is the exec-stream watchdog: a stream that delivers
	// no event (progress keepalives included) for this long is
	// canceled, counted in Stats.StreamsStalled, and its chips
	// re-dispatched from their freshest checkpoints; <= 0 selects 60s.
	StallTimeout time.Duration
	// MaxBatch caps chips per dispatch; <= 0 selects 16. A worker's
	// batch is min(its registered slots, MaxBatch), so one dispatch
	// keeps the worker's whole pool busy without hoarding chips that
	// an idle peer could steal.
	MaxBatch int
	// WorkerWait bounds how long a run waits for a healthy worker —
	// at the start, and again whenever the whole population dies
	// mid-job; <= 0 selects 30s.
	WorkerWait time.Duration
	// Poll is the membership rescan interval while a job runs: how
	// quickly dead workers are detected beyond stream errors, and how
	// quickly late joiners are put to work; <= 0 selects 250ms.
	Poll time.Duration
	// Logf substitutes the logger; nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Stats are the coordinator's cumulative scheduling counters.
type Stats struct {
	// Dispatches counts exec calls sent to workers.
	Dispatches int64
	// ChipsDone counts chips completed remotely.
	ChipsDone int64
	// RemoteTicks sums the control ticks those chips simulated.
	RemoteTicks int64
	// ChipsStolen counts chips moved from a loaded worker's deque to
	// an idle one.
	ChipsStolen int64
	// ChipsMigrated counts in-flight chips re-queued off a dead,
	// degraded, or failed-dispatch worker.
	ChipsMigrated int64
	// Retries counts dispatch re-attempts scheduled by the backoff
	// loop after a failed dispatch.
	Retries int64
	// StreamsStalled counts exec streams the watchdog canceled for
	// silence.
	StreamsStalled int64
	// DupEvents counts stream events dropped by sequence-number
	// dedupe (replayed or duplicated tails).
	DupEvents int64
}

// Coordinator shards fleet jobs across the membership's workers.
type Coordinator struct {
	cfg    Config
	client *http.Client
	logf   func(format string, args ...any)

	dispatches atomic.Int64
	chipsDone  atomic.Int64
	ticks      atomic.Int64
	retries    atomic.Int64
	stalled    atomic.Int64
	dupEvents  atomic.Int64

	jitterMu sync.Mutex
	jitter   *rng.Stream // seeds dispatch-retry backoff (replayable)

	mu           sync.Mutex
	live         *runState // current run, nil between jobs
	baseStolen   int64     // folded-in counters of finished runs
	baseMigrated int64
}

// New builds a coordinator over the membership.
func New(cfg Config) *Coordinator {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.WorkerWait <= 0 {
		cfg.WorkerWait = 30 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 60 * time.Second
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		logf:   cfg.Logf,
		jitter: rng.NewStream(cfg.Retry.JitterSeed, 0xC1A0),
	}
	if c.client == nil {
		rt := cfg.Transport
		if rt == nil {
			rt = NewTransport()
		}
		c.client = &http.Client{Transport: rt}
	}
	if c.logf == nil {
		c.logf = log.Printf
	}
	return c
}

// retryDelay draws the jittered backoff before dispatch retry number
// attempt (1-based) from the coordinator's seeded stream.
func (c *Coordinator) retryDelay(attempt int) time.Duration {
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	return c.cfg.Retry.Delay(c.jitter, attempt)
}

// Membership returns the worker registry the coordinator schedules
// over.
func (c *Coordinator) Membership() *Membership { return c.cfg.Membership }

// Stats returns the cumulative scheduling counters, live run included.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Dispatches:     c.dispatches.Load(),
		ChipsDone:      c.chipsDone.Load(),
		RemoteTicks:    c.ticks.Load(),
		Retries:        c.retries.Load(),
		StreamsStalled: c.stalled.Load(),
		DupEvents:      c.dupEvents.Load(),
	}
	c.mu.Lock()
	s.ChipsStolen, s.ChipsMigrated = c.baseStolen, c.baseMigrated
	if c.live != nil {
		st, mg := c.live.sched.stats()
		s.ChipsStolen += st
		s.ChipsMigrated += mg
	}
	c.mu.Unlock()
	return s
}

// Placement returns the current run's live seed→worker placement
// (latest assignment wins; migrated chips show their new home), or nil
// when no job is running.
func (c *Coordinator) Placement() map[uint64]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live == nil {
		return nil
	}
	return c.live.placementCopy()
}

// InFlightOn counts chips currently dispatched to worker id.
func (c *Coordinator) InFlightOn(id string) int {
	c.mu.Lock()
	run := c.live
	c.mu.Unlock()
	if run == nil {
		return 0
	}
	return run.sched.inFlightOn(id)
}

// runState is the shared state of one Run: the job, the ordered result
// slice, the freshest checkpoint per unfinished seed, and the
// scheduler.
type runState struct {
	job        fleet.Job
	idx        map[uint64]int // seed -> result position
	results    []fleet.ChipResult
	sched      *scheduler
	onProgress func(done, total int)

	ckptMu sync.Mutex
	ckpts  map[uint64][]byte // freshest checkpoint per unfinished seed

	placeMu   sync.Mutex
	placement map[uint64]string

	emitMu sync.Mutex // serializes result delivery + callbacks
}

// deliver records one finished chip exactly once: the first completion
// wins (a migration can race a chip onto two workers), the duplicate
// is dropped. Returns whether this was the first.
func (r *runState) deliver(res fleet.ChipResult) bool {
	i, ok := r.idx[res.Seed]
	if !ok {
		return false
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	first, done := r.sched.claimComplete(i)
	if !first {
		return false
	}
	r.results[i] = res
	if r.job.OnResult != nil {
		r.job.OnResult(res)
	}
	if r.onProgress != nil {
		r.onProgress(done, len(r.results))
	}
	r.ckptMu.Lock()
	delete(r.ckpts, res.Seed)
	r.ckptMu.Unlock()
	return true
}

// placementCopy snapshots the live placement map.
func (r *runState) placementCopy() map[uint64]string {
	r.placeMu.Lock()
	defer r.placeMu.Unlock()
	out := make(map[uint64]string, len(r.placement))
	for k, v := range r.placement {
		out[k] = v
	}
	return out
}

// failRemaining stamps err on every chip that never completed.
func (r *runState) failRemaining(err error) {
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	r.sched.mu.Lock()
	defer r.sched.mu.Unlock()
	for i, done := range r.sched.completed {
		if !done {
			r.results[i] = fleet.ChipResult{Seed: r.job.Seeds[i], Err: err}
		}
	}
}

// Run shards the job's chips across the registered healthy workers and
// returns one ChipResult per seed in input order — byte-identical (in
// every serialized field) to fleet.Engine.Run of the same job on one
// node. Per-chip failures land in the chip's Err exactly as they do
// locally; Run itself errors on an invalid job, a canceled context, or
// a cluster with no healthy workers for longer than WorkerWait. The
// job's hooks are honored: OnAssign on every (re)placement,
// OnCheckpoint for every checkpoint streamed back, OnResult as chips
// finish, Resume blobs shipped to whichever worker draws the seed.
func (c *Coordinator) Run(ctx context.Context, job fleet.Job, onProgress func(done, total int)) ([]fleet.ChipResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	n := len(job.Seeds)
	run := &runState{
		job:        job,
		idx:        make(map[uint64]int, n),
		results:    make([]fleet.ChipResult, n),
		sched:      newScheduler(n),
		onProgress: onProgress,
		ckpts:      make(map[uint64][]byte, len(job.Resume)),
		placement:  make(map[uint64]string, n),
	}
	for i, s := range job.Seeds {
		run.idx[s] = i
		if blob, ok := job.Resume[s]; ok {
			run.ckpts[s] = blob
		}
	}

	// Wait for a population to schedule onto.
	members, err := c.waitWorkers(ctx)
	if err != nil {
		run.failRemaining(err)
		return run.results, err
	}

	// Initial shard: contiguous even ranges across the healthy set in
	// ID order. Late joiners start empty and steal.
	for k, m := range members {
		lo, hi := k*n/len(members), (k+1)*n/len(members)
		chips := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			chips = append(chips, i)
		}
		run.sched.addWorker(m.ID)
		run.sched.seed(m.ID, chips)
	}

	c.mu.Lock()
	c.live = run
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		st, mg := run.sched.stats()
		c.baseStolen += st
		c.baseMigrated += mg
		c.live = nil
		c.mu.Unlock()
	}()

	// One agent goroutine per worker. The monitor (below, on the Run
	// goroutine) spawns agents for joiners and cancels them for
	// workers gone dead or degraded; an agent also retires itself when
	// its worker breaks a dispatch stream.
	var (
		wg       sync.WaitGroup
		agentsMu sync.Mutex
		agents   = make(map[string]context.CancelFunc)
	)
	spawn := func(m Member) {
		run.sched.addWorker(m.ID)
		actx, cancel := context.WithCancel(ctx)
		agentsMu.Lock()
		agents[m.ID] = cancel
		agentsMu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			c.agent(actx, run, m)
			agentsMu.Lock()
			delete(agents, m.ID)
			agentsMu.Unlock()
		}()
	}
	for _, m := range members {
		spawn(m)
	}

	var stallSince time.Time
	var runErr error
	for !run.sched.finished() {
		if ctx.Err() != nil {
			runErr = ctx.Err()
			break
		}
		healthy := 0
		now := time.Now()
		for _, m := range c.cfg.Membership.Snapshot() {
			agentsMu.Lock()
			cancel, running := agents[m.ID]
			agentsMu.Unlock()
			switch {
			case m.State == StateHealthy:
				healthy++
				if !running {
					spawn(m)
				}
			case m.State == StateQuarantined:
				// Half-open probe: once the backoff gate passes, give
				// the worker one agent whose first dispatch is a trial
				// batch of one chip. A running probe is left alone —
				// its own success or failure settles the state.
				if !running && !now.Before(m.ProbeAt) {
					c.logf("cluster: probing quarantined worker %s with a trial dispatch", m.ID)
					spawn(m)
				}
			case running:
				cancel() // agent requeues its chips and exits
			}
		}
		if healthy > 0 {
			stallSince = time.Time{}
		} else if stallSince.IsZero() {
			stallSince = time.Now()
		} else if time.Since(stallSince) > c.cfg.WorkerWait {
			runErr = fmt.Errorf("cluster: job stalled: no healthy workers for %v", c.cfg.WorkerWait)
			break
		}
		sleepCtx(ctx, c.cfg.Poll)
	}
	run.sched.cancel()
	wg.Wait()

	if runErr == nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}
	if runErr != nil {
		run.failRemaining(runErr)
	}
	return run.results, runErr
}

// waitWorkers blocks until the membership has at least one healthy
// worker, up to WorkerWait.
func (c *Coordinator) waitWorkers(ctx context.Context) ([]Member, error) {
	deadline := time.Now().Add(c.cfg.WorkerWait)
	for {
		if members := c.cfg.Membership.Healthy(); len(members) > 0 {
			return members, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: no healthy workers registered within %v", c.cfg.WorkerWait)
		}
		sleepCtx(ctx, c.cfg.Poll)
	}
}

// agent is one worker's dispatch loop: draw a batch, stream it, repeat
// until the job finishes or the worker fails for good. A failed
// dispatch (broken stream, stalled stream, refused connection)
// immediately requeues the batch's unfinished chips with their
// freshest checkpoints, then retries this worker after a jittered
// exponential backoff — until the membership's circuit breaker
// quarantines it, at which point its deque migrates to the orphan pool
// and the agent retires. The monitor spawns a fresh agent for the
// half-open probe when the quarantine backoff gate passes; that
// agent's first dispatch is a trial batch of one chip.
func (c *Coordinator) agent(ctx context.Context, run *runState, m Member) {
	batch := m.Slots
	if batch < 1 {
		batch = 1
	}
	if batch > c.cfg.MaxBatch {
		batch = c.cfg.MaxBatch
	}
	trial := m.State == StateQuarantined
	fails := 0
	for {
		b := batch
		if trial {
			b = 1
		}
		chips, ok := run.sched.next(m.ID, b)
		if !ok {
			return
		}
		err := c.dispatch(ctx, run, m, chips)
		if err == nil {
			if trial {
				c.logf("cluster: worker %s survived its trial dispatch; back in rotation", m.ID)
			}
			trial, fails = false, 0
			c.cfg.Membership.RecordExecSuccess(m.ID)
			continue
		}
		// The batch's unfinished chips go straight back to the pool —
		// another worker can pick them up while this one backs off.
		run.sched.release(chips)
		if ctx.Err() != nil {
			return
		}
		fails++
		c.logf("cluster: worker %s failed dispatch (%d consecutive: %v)", m.ID, fails, err)
		if c.cfg.Membership.RecordExecFailure(m.ID, err.Error()) {
			c.logf("cluster: worker %s quarantined; migrating its queue", m.ID)
			run.sched.removeWorker(m.ID)
			return
		}
		c.retries.Add(1)
		sleepCtx(ctx, c.retryDelay(fails))
	}
}

// dispatch ships one batch to a worker and consumes its event stream.
// A nil return means the batch ran to completion (individual chip
// failures included — those are results, not transport errors); any
// error means the worker could not be trusted to finish and the caller
// must migrate.
func (c *Coordinator) dispatch(ctx context.Context, run *runState, m Member, chips []int) error {
	seeds := make([]uint64, len(chips))
	for i, ci := range chips {
		seeds[i] = run.job.Seeds[ci]
	}
	task := Task{Spec: run.job.WithSeeds(seeds)}
	run.ckptMu.Lock()
	for _, s := range seeds {
		if blob, ok := run.ckpts[s]; ok {
			if task.Resume == nil {
				task.Resume = make(map[uint64][]byte)
			}
			task.Resume[s] = blob
		}
	}
	run.ckptMu.Unlock()

	run.placeMu.Lock()
	for _, s := range seeds {
		run.placement[s] = m.ID
	}
	run.placeMu.Unlock()
	if run.job.OnAssign != nil {
		for _, s := range seeds {
			run.job.OnAssign(s, m.ID)
		}
	}
	c.dispatches.Add(1)

	body, err := json.Marshal(task)
	if err != nil {
		return fmt.Errorf("encoding task: %w", err)
	}
	// The stream gets its own cancel so the stall watchdog can cut it
	// without touching the agent's context.
	dctx, cancelStream := context.WithCancel(ctx)
	defer cancelStream()
	req, err := http.NewRequestWithContext(dctx, http.MethodPost, m.URL+PathExec, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusBadRequest {
		// A task rejection is deterministic — re-dispatching the same
		// chips would reject forever — so it fails the chips, not the
		// worker.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		reject := fmt.Errorf("cluster: worker %s rejected task: %s", m.ID, bytes.TrimSpace(msg))
		for _, s := range seeds {
			run.deliver(fleet.ChipResult{Seed: s, Err: reject})
		}
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("exec on %s: HTTP %d", m.ID, resp.StatusCode)
	}

	// Stall watchdog: a healthy worker's stream always has traffic —
	// checkpoints, results, or progress keepalives. Silence past
	// StallTimeout means the connection is wedged (a black-holed link
	// keeps the TCP session up but delivers nothing), so the watchdog
	// cancels the stream; the caller requeues the chips and their
	// freshest checkpoints re-dispatch elsewhere.
	stall := c.cfg.StallTimeout
	var stalledHere atomic.Bool
	dog := time.AfterFunc(stall, func() {
		stalledHere.Store(true)
		cancelStream()
	})
	defer dog.Stop()

	dec := json.NewDecoder(resp.Body)
	var lastSeq int64
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if stalledHere.Load() && ctx.Err() == nil {
				c.stalled.Add(1)
				return fmt.Errorf("exec stream from %s: no events for %v (stalled)", m.ID, stall)
			}
			return fmt.Errorf("exec stream from %s: %w", m.ID, err)
		}
		dog.Reset(stall)
		// Sequence dedupe: a duplicated or replayed stream tail re-
		// delivers events the coordinator has already applied. Numbered
		// events (Seq > 0) are idempotent — anything at or below the
		// high-water mark is dropped here.
		if ev.Seq > 0 {
			if ev.Seq <= lastSeq {
				c.dupEvents.Add(1)
				continue
			}
			lastSeq = ev.Seq
		}
		switch ev.Type {
		case EventProgress:
			// Keepalive: its only job was resetting the watchdog.
		case EventCheckpoint:
			run.ckptMu.Lock()
			run.ckpts[ev.Seed] = ev.Blob
			run.ckptMu.Unlock()
			if run.job.OnCheckpoint != nil {
				run.job.OnCheckpoint(ev.Seed, ev.Ticks, ev.Blob)
			}
		case EventResult:
			if ev.Chip == nil {
				continue
			}
			// A chip aborted by the worker's request context is not a
			// real result — it races a migration (the coordinator just
			// canceled this stream) and the chip is owed a re-run.
			if ev.Chip.Err == context.Canceled.Error() || ev.Chip.Err == context.DeadlineExceeded.Error() {
				continue
			}
			res, err := ev.Chip.ToResult()
			if err != nil {
				res = fleet.ChipResult{Seed: ev.Seed,
					Err: fmt.Errorf("cluster: undecodable result from %s: %v", m.ID, err)}
			}
			if run.deliver(res) {
				c.chipsDone.Add(1)
				c.ticks.Add(int64(res.Ticks))
				c.cfg.Membership.AddChipsDone(m.ID, 1)
			}
		case EventError:
			// The worker's engine refused or aborted the whole task
			// (in practice: its request context was canceled). The
			// chips are still owed — treat it like a broken stream.
			return fmt.Errorf("exec on %s: %s", m.ID, ev.Err)
		case EventDone:
			// Defensive: re-queue anything the worker somehow skipped.
			run.sched.release(chips)
			return nil
		}
	}
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
