package cluster

// Network-plane chaos against an in-process coordinator + real Executor
// workers: every injected scenario — partition windows, slow links,
// torn and duplicated exec streams, quarantine-and-recover, a wedged
// stream caught by the watchdog — must end with merged results
// byte-identical to a single-node run, and the injector's event log
// must reproduce exactly when the same plan + seed runs again.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"eccspec/internal/faultinject"
	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// chaosCoordinator builds a coordinator whose dispatch client rides the
// plan's injected transport, with test-sized retry and poll knobs.
func chaosCoordinator(t *testing.T, m *Membership, in *faultinject.Injector, stall time.Duration) *Coordinator {
	t.Helper()
	if stall <= 0 {
		stall = 5 * time.Second
	}
	return New(Config{
		Membership:   m,
		MaxBatch:     2,
		WorkerWait:   10 * time.Second,
		Poll:         5 * time.Millisecond,
		StallTimeout: stall,
		Retry: store.RetryPolicy{
			BaseDelay:  2 * time.Millisecond,
			MaxDelay:   20 * time.Millisecond,
			JitterSeed: in.Seed(),
		},
		Transport: in.Transport(NewTransport()),
		Logf:      func(string, ...any) {},
	})
}

// TestClusterChaosScenarios drives the cataloged client-side network
// faults. Each scenario runs twice: both runs must be byte-identical
// to the single-node reference, and their injected-event logs must
// match each other — the replayability contract on the network plane.
func TestClusterChaosScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation test")
	}
	scenarios := []struct {
		name string
		plan faultinject.Plan
		// check runs extra assertions against the first run's state.
		check func(t *testing.T, c *Coordinator, m *Membership)
	}{
		{
			name: "exec partition window",
			plan: faultinject.Plan{Seed: 7, Faults: []faultinject.Fault{
				{Kind: faultinject.NetPartition, Target: "exec", Start: 0, Duration: 2},
			}},
			check: func(t *testing.T, c *Coordinator, m *Membership) {
				if st := c.Stats(); st.Retries == 0 {
					t.Errorf("partition window rode out without retries: %+v", st)
				}
			},
		},
		{
			name: "slow link",
			plan: faultinject.Plan{Seed: 8, Faults: []faultinject.Fault{
				{Kind: faultinject.NetSlow, Target: "exec", Start: 0, Duration: 3, DelayMs: 10},
			}},
		},
		{
			name: "mid-stream reset",
			plan: faultinject.Plan{Seed: 9, Faults: []faultinject.Fault{
				{Kind: faultinject.NetResetStream, Target: "exec", Start: 0, Duration: 1, Line: 2},
			}},
			check: func(t *testing.T, c *Coordinator, m *Membership) {
				if st := c.Stats(); st.Retries == 0 && st.ChipsMigrated == 0 {
					t.Errorf("reset stream left no trace in stats: %+v", st)
				}
			},
		},
		{
			name: "truncated tail",
			plan: faultinject.Plan{Seed: 10, Faults: []faultinject.Fault{
				{Kind: faultinject.NetTruncateStream, Target: "exec", Start: 0, Duration: 1, Line: 1},
			}},
			check: func(t *testing.T, c *Coordinator, m *Membership) {
				if st := c.Stats(); st.Retries == 0 && st.ChipsMigrated == 0 {
					t.Errorf("truncated stream left no trace in stats: %+v", st)
				}
			},
		},
		{
			name: "duplicated events",
			plan: faultinject.Plan{Seed: 11, Faults: []faultinject.Fault{
				{Kind: faultinject.NetDupEvents, Target: "exec", Start: 0, Duration: 1},
			}},
			check: func(t *testing.T, c *Coordinator, m *Membership) {
				if st := c.Stats(); st.DupEvents == 0 {
					t.Errorf("duplicated stream produced no dedupe drops: %+v", st)
				}
			},
		},
	}

	job := testJob(61, 62, 63, 64, 65, 66)
	want := singleNode(t, job)
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var logs [][]faultinject.Event
			for run := 0; run < 2; run++ {
				m := NewMembership(time.Minute)
				startWorker(t, m, "w1", 2)
				startWorker(t, m, "w2", 2)
				in, err := faultinject.New(sc.plan)
				if err != nil {
					t.Fatal(err)
				}
				c := chaosCoordinator(t, m, in, 0)
				res, err := c.Run(context.Background(), job, nil)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				got := wireChips(t, res)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("run %d chip %d differs under %s:\ncluster: %s\nsingle:  %s",
							run, i, sc.name, got[i], want[i])
					}
				}
				if run == 0 && sc.check != nil {
					sc.check(t, c, m)
				}
				logs = append(logs, in.Events())
			}
			if !reflect.DeepEqual(logs[0], logs[1]) {
				t.Fatalf("injected-event logs diverged across identical runs:\n%+v\n%+v", logs[0], logs[1])
			}
			if len(logs[0]) == 0 {
				t.Fatal("scenario injected nothing; it proves nothing")
			}
		})
	}
}

// TestClusterChaosQuarantineRecover partitions the only worker's first
// dispatch with a threshold-1 breaker: the worker must quarantine, the
// half-open probe must revive it once the window passes, and the run
// must still match single-node bytes.
func TestClusterChaosQuarantineRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation test")
	}
	job := testJob(71, 72, 73, 74, 75, 76, 77, 78)
	want := singleNode(t, job)

	m := NewMembership(time.Minute)
	m.SetQuarantinePolicy(1, 30*time.Millisecond)
	startWorker(t, m, "only", 2)
	in, err := faultinject.New(faultinject.Plan{Seed: 5, Faults: []faultinject.Fault{
		{Kind: faultinject.NetPartition, Target: "exec", Start: 0, Duration: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c := chaosCoordinator(t, m, in, 0)
	res, err := c.Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	got := wireChips(t, res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chip %d differs after quarantine round-trip:\ncluster: %s\nsingle:  %s", i, got[i], want[i])
		}
	}
	if m.Quarantines() != 1 {
		t.Errorf("quarantine transitions = %d, want 1", m.Quarantines())
	}
	if s := m.Snapshot(); s[0].State != StateHealthy || s[0].ConsecFails != 0 {
		t.Errorf("worker not revived by its trial dispatch: %+v", s[0])
	}
	if evs := in.Events(); len(evs) != 1 || evs[0].Tick != 0 {
		t.Errorf("event log = %+v, want one apply at exec attempt 0", evs)
	}
}

// TestClusterChaosStallWatchdog registers a worker whose exec stream
// accepts the batch and then goes silent forever — the black-holed-
// but-connected failure mode no decoder error will ever surface. The
// watchdog must cut it, quarantine the worker, and let the real worker
// finish byte-identically.
func TestClusterChaosStallWatchdog(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation test")
	}
	job := testJob(81, 82, 83, 84, 85, 86)
	want := singleNode(t, job)

	m := NewMembership(time.Minute)
	m.SetQuarantinePolicy(1, time.Hour)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		<-r.Context().Done()
	}))
	t.Cleanup(hung.Close)
	m.Join(RegisterRequest{ID: "hung", URL: hung.URL, Slots: 2})

	// The real worker keeps its streams chatty (fast keepalives) so the
	// tight stall timeout only ever fires on the hung one.
	ex := &Executor{Engine: fleet.New(fleet.Config{Workers: 2}), KeepAlive: 25 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExec, ex.HandleExec)
	real := httptest.NewServer(mux)
	t.Cleanup(real.Close)
	m.Join(RegisterRequest{ID: "real", URL: real.URL, Slots: 2})

	in, err := faultinject.New(faultinject.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	c := chaosCoordinator(t, m, in, 500*time.Millisecond)
	res, err := c.Run(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	got := wireChips(t, res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chip %d differs after stalled stream:\ncluster: %s\nsingle:  %s", i, got[i], want[i])
		}
	}
	if st := c.Stats(); st.StreamsStalled == 0 {
		t.Errorf("watchdog never fired: %+v", st)
	}
	for _, w := range m.Snapshot() {
		if w.ID == "hung" && w.State != StateQuarantined {
			t.Errorf("hung worker is %s, want quarantined", w.State)
		}
	}
}
