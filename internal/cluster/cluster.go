// Package cluster turns the single-node fleet engine into a
// multi-node one: a coordinator that shards a fleet job's chips across
// N registered eccspecd worker daemons over HTTP, steals work from
// loaded workers for idle ones, and migrates in-flight chips off dead
// or degraded workers via the snapshot resume path — while keeping the
// merged, seed-ordered results byte-identical to a single-node run.
//
// The determinism argument is the same one internal/fleet makes for
// parallelism within one box, applied across boxes: every chip derives
// all of its randomness from its own seed and shares no state with its
// siblings, so WHERE a chip runs — locally, on worker A, on worker B
// after worker A died mid-chip and its last checkpoint was shipped
// over — cannot change WHAT it computes. Results are merged by input
// seed position, and the per-chip wire form (store.ChipRecord)
// round-trips every float bit-for-bit, so the coordinator's output is
// byte-identical to the same job on a single node.
//
// Topology and protocol:
//
//   - Workers register with the coordinator (POST /v1/cluster/register)
//     and heartbeat (POST /v1/cluster/heartbeat), reporting their
//     degraded state. A missed-heartbeat TTL or a degraded report
//     marks a worker unfit and triggers migration of its chips.
//   - The coordinator dispatches chip ranges with one streaming HTTP
//     call per batch (POST /v1/cluster/exec on the worker): the worker
//     answers with newline-delimited JSON events — periodic per-chip
//     checkpoints, then one result per chip, then a final done marker.
//     If the stream dies mid-batch, every chip without a result is
//     re-queued together with its freshest streamed checkpoint, and
//     whichever worker picks it up resumes from that blob.
//   - Scheduling is work-stealing: each worker owns a deque seeded
//     with an even contiguous share of the job; a worker that runs dry
//     first drains the orphan pool (chips off dead workers), then
//     steals the far half of the most-loaded survivor's deque.
package cluster

import (
	"eccspec/internal/fleet"
	"eccspec/internal/store"
)

// Coordinator-side endpoint paths (served by eccspecd -coordinator).
const (
	PathRegister  = "/v1/cluster/register"
	PathHeartbeat = "/v1/cluster/heartbeat"
	PathMembers   = "/v1/cluster/members"
)

// PathExec is the worker-side execution endpoint (served by
// eccspecd -join).
const PathExec = "/v1/cluster/exec"

// Task is one dispatched chip range: a self-contained fleet job scoped
// to the batch's seeds (see fleet.Job.WithSeeds) plus the freshest
// checkpoint blob, if any, for each seed being migrated mid-flight.
type Task struct {
	Spec   fleet.Job         `json:"spec"`
	Resume map[uint64][]byte `json:"resume,omitempty"`
}

// Event kinds streamed back by a worker executing a Task, one JSON
// object per line.
const (
	// EventCheckpoint carries a periodic simulator snapshot (Seed,
	// Ticks, Blob) so the coordinator can migrate the chip if this
	// worker dies before finishing it.
	EventCheckpoint = "ckpt"
	// EventResult carries one finished chip (Chip), errors included.
	EventResult = "result"
	// EventError reports a task-level failure (Err); no further events
	// follow.
	EventError = "error"
	// EventDone closes a fully executed task.
	EventDone = "done"
	// EventProgress is a keepalive with no payload: the worker emits it
	// periodically so a healthy but compute-bound stream always has
	// traffic for the coordinator's stall watchdog to observe.
	EventProgress = "progress"
)

// Event is one line of a worker's execution stream.
type Event struct {
	Type string `json:"type"`
	// Seq numbers events monotonically within one exec stream, starting
	// at 1. The coordinator drops any event whose Seq it has already
	// seen, which makes the stream idempotent: a duplicated or replayed
	// tail (an injected net-dup-events fault, a proxy retry) dedupes
	// instead of double-applying. 0 marks an unnumbered event.
	Seq  int64  `json:"seq,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// Ticks is the checkpoint's tick count (EventCheckpoint).
	Ticks int `json:"ticks,omitempty"`
	// Blob is the snapshot blob (EventCheckpoint; base64 in JSON).
	Blob []byte `json:"blob,omitempty"`
	// Chip is the finished chip in journal wire form (EventResult) —
	// the same encoding internal/store persists, so floats round-trip
	// bit-for-bit end to end.
	Chip *store.ChipRecord `json:"chip,omitempty"`
	// Err describes a task-level failure (EventError).
	Err string `json:"err,omitempty"`
}

// RegisterRequest announces (or re-announces) a worker to the
// coordinator.
type RegisterRequest struct {
	// ID names the worker; re-registering an existing ID revives it.
	ID string `json:"id"`
	// URL is the base URL the coordinator dials back for PathExec.
	URL string `json:"url"`
	// Slots is the worker's concurrent chip capacity (its fleet engine
	// worker count); the coordinator sizes dispatch batches with it.
	Slots int `json:"slots"`
	// Version is the worker's build version, for the members view.
	Version string `json:"version,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// TTL is the liveness window in seconds: a worker silent for
	// longer is declared dead and its chips migrate.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// HeartbeatRequest is a worker's periodic liveness report.
type HeartbeatRequest struct {
	ID string `json:"id"`
	// Degraded mirrors the worker daemon's degraded mode; a degraded
	// worker keeps its membership but receives no new work and its
	// in-flight chips migrate to healthy peers.
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// MemberView is one worker's row in the coordinator's members listing.
type MemberView struct {
	ID            string  `json:"id"`
	URL           string  `json:"url"`
	State         string  `json:"state"`
	Reason        string  `json:"reason,omitempty"`
	Slots         int     `json:"slots"`
	Version       string  `json:"version,omitempty"`
	AgeSeconds    float64 `json:"age_s"`
	LastBeatAgoS  float64 `json:"last_heartbeat_ago_s"`
	ChipsDone     int64   `json:"chips_done"`
	ChipsInFlight int     `json:"chips_in_flight"`
	// ConsecFails counts consecutive failed dispatches — the quarantine
	// circuit breaker's trip wire.
	ConsecFails int `json:"consec_fails,omitempty"`
	// ProbeInSeconds is how long until a quarantined worker's next
	// half-open trial dispatch (quarantined workers only; 0 = due now).
	ProbeInSeconds float64 `json:"probe_in_s,omitempty"`
}
