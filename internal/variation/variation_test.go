package variation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindL1I:     "L1I",
		KindL1D:     "L1D",
		KindL2I:     "L2I",
		KindL2D:     "L2D",
		KindL3:      "L3",
		KindRegFile: "RegFile",
		KindLogic:   "Logic",
		Kind(99):    "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind %d: got %q want %q", int(k), got, want)
		}
	}
}

func TestCellVcritDeterministic(t *testing.T) {
	m := New(42, LowVoltage())
	a := m.CellVcrit(3, KindL2D, 10, 2, 100)
	b := m.CellVcrit(3, KindL2D, 10, 2, 100)
	if a != b {
		t.Fatalf("CellVcrit not deterministic: %v vs %v", a, b)
	}
}

func TestCellVcritVariesByCoordinate(t *testing.T) {
	m := New(42, LowVoltage())
	base := m.CellVcrit(3, KindL2D, 10, 2, 100)
	variants := []float64{
		m.CellVcrit(4, KindL2D, 10, 2, 100),
		m.CellVcrit(3, KindL2I, 10, 2, 100),
		m.CellVcrit(3, KindL2D, 11, 2, 100),
		m.CellVcrit(3, KindL2D, 10, 3, 100),
		m.CellVcrit(3, KindL2D, 10, 2, 101),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d identical to base Vcrit", i)
		}
	}
}

func TestCellVcritVariesBySeed(t *testing.T) {
	a := New(1, LowVoltage()).CellVcrit(0, KindL2D, 0, 0, 0)
	b := New(2, LowVoltage()).CellVcrit(0, KindL2D, 0, 0, 0)
	if a == b {
		t.Fatal("different chip seeds gave identical Vcrit")
	}
}

func TestCellVcritDistribution(t *testing.T) {
	m := New(7, LowVoltage())
	kp := m.P.Kinds[KindL2D]
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for bit := 0; bit < n; bit++ {
		v := m.CellVcrit(0, KindL2D, bit/512, 0, bit%512)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	// Mean should be Mu + (fixed systematic offsets for core 0), i.e.
	// within a few systematic sigmas of Mu.
	if math.Abs(mean-kp.Mu) > 4*(m.P.SigmaCore+kp.SigmaStruct) {
		t.Errorf("mean Vcrit %v too far from Mu %v", mean, kp.Mu)
	}
	// Sample sd should be close to the random component.
	if math.Abs(sd-kp.SigmaRandom) > 0.15*kp.SigmaRandom {
		t.Errorf("sd %v too far from SigmaRandom %v", sd, kp.SigmaRandom)
	}
}

func TestLowVoltageSpreadWiderThanHigh(t *testing.T) {
	lo, hi := LowVoltage(), HighVoltage()
	if lo.Kinds[KindL2D].SigmaRandom <= hi.Kinds[KindL2D].SigmaRandom {
		t.Error("random spread should widen at low voltage")
	}
	if lo.SigmaCore <= 2*hi.SigmaCore {
		t.Error("core-to-core spread should widen substantially at low voltage")
	}
}

func TestL2WeakerThanL1AndL3(t *testing.T) {
	// The L2s' weak tail must sit above every other structure's, so the
	// first errors on a core rail always come from the L2 caches
	// (§II-C). The comparison is on tails (Mu + 5 sigma), not means:
	// the L3 has a higher mean than its robust-cell peers because the
	// uncore-speculation extension probes it on its own rail.
	tail := func(k KindParams) float64 { return k.Mu + 5*k.SigmaRandom }
	for _, p := range []Params{HighVoltage(), LowVoltage()} {
		if tail(p.Kinds[KindL2D]) <= tail(p.Kinds[KindL1D]) {
			t.Errorf("%s: L2D weak tail should exceed L1D's", p.Name)
		}
		if tail(p.Kinds[KindL2I]) <= tail(p.Kinds[KindL3]) {
			t.Errorf("%s: L2I weak tail should exceed L3's", p.Name)
		}
	}
}

func TestLogicVminBelowL2Tail(t *testing.T) {
	// The ECC early-warning property requires that L2 correctable errors
	// appear above the logic crash floor: the weak tail of L2 (Mu+4sigma)
	// must exceed LogicVminMu on average.
	for _, p := range []Params{HighVoltage(), LowVoltage()} {
		tail := p.Kinds[KindL2D].Mu + 4*p.Kinds[KindL2D].SigmaRandom
		if tail <= p.LogicVminMu {
			t.Errorf("%s: L2 weak tail %.3f not above logic Vmin %.3f",
				p.Name, tail, p.LogicVminMu)
		}
	}
}

func TestCellWidthBounds(t *testing.T) {
	m := New(11, LowVoltage())
	for bit := 0; bit < 10000; bit++ {
		w := m.CellWidth(1, KindL2I, bit/512, 1, bit%512)
		if w < m.P.WidthMin || w > m.P.WidthMax {
			t.Fatalf("width %v outside [%v,%v]", w, m.P.WidthMin, m.P.WidthMax)
		}
	}
}

func TestCoreSystematicStableAcrossPoints(t *testing.T) {
	// A chip's fast/slow core ordering must persist across operating
	// points (same normal deviate, scaled differently).
	hi := New(5, HighVoltage())
	lo := New(5, LowVoltage())
	for core := 0; core < 8; core++ {
		rHi := hi.CoreSystematic(core) / hi.P.SigmaCore
		rLo := lo.CoreSystematic(core) / lo.P.SigmaCore
		if math.Abs(rHi-rLo) > 1e-12 {
			t.Fatalf("core %d systematic deviate changed across points: %v vs %v",
				core, rHi, rLo)
		}
	}
}

func TestLogicVminVariesPerCore(t *testing.T) {
	m := New(13, LowVoltage())
	a := m.LogicVmin(0)
	b := m.LogicVmin(1)
	if a == b {
		t.Fatal("logic Vmin identical across cores")
	}
	for core := 0; core < 8; core++ {
		v := m.LogicVmin(core)
		if v < 0.5 || v > 0.7 {
			t.Errorf("low-V logic Vmin %v implausible for core %d", v, core)
		}
	}
}

func TestAgingShiftMonotone(t *testing.T) {
	m := New(17, LowVoltage())
	prev := 0.0
	for _, h := range []float64{0, 10, 100, 1000, 10000} {
		s := m.AgingShift(2, KindL2D, 5, 1, 99, h)
		if s < prev {
			t.Fatalf("aging shift decreased: %v at %vh after %v", s, h, prev)
		}
		prev = s
	}
}

func TestAgingShiftZeroAtZeroAge(t *testing.T) {
	m := New(17, LowVoltage())
	if s := m.AgingShift(0, KindL2D, 0, 0, 0, 0); s != 0 {
		t.Fatalf("aging shift at age 0: %v", s)
	}
}

func TestAgingCanReorderCells(t *testing.T) {
	// With a per-cell aging coefficient, a cell that starts stronger can
	// become weaker than another after enough hours. Find such a pair.
	m := New(19, LowVoltage())
	const hours = 20000
	found := false
	for bit := 0; bit < 2000 && !found; bit++ {
		v1 := m.CellVcrit(0, KindL2D, 0, 0, bit)
		v2 := m.CellVcrit(0, KindL2D, 0, 0, bit+2000)
		a1 := m.AgingShift(0, KindL2D, 0, 0, bit, hours)
		a2 := m.AgingShift(0, KindL2D, 0, 0, bit+2000, hours)
		if (v1 < v2) != (v1+a1 < v2+a2) {
			found = true
		}
	}
	if !found {
		t.Fatal("aging never reordered any cell pair; recalibration would be pointless")
	}
}

func TestTempShiftSmallWithin20C(t *testing.T) {
	m := New(23, LowVoltage())
	// Paper: +/-20C produced no measurable change; our shift must stay
	// below the 5 mV control step.
	if s := math.Abs(m.TempShift(60)); s >= 0.005 {
		t.Errorf("temp shift %v at +20C not below control step", s)
	}
	if s := math.Abs(m.TempShift(20)); s >= 0.005 {
		t.Errorf("temp shift %v at -20C not below control step", s)
	}
}

func TestFlipProbabilityShape(t *testing.T) {
	const vcrit, w = 0.650, 0.004
	if p := FlipProbability(vcrit, w, vcrit); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P at Vcrit = %v, want 0.5", p)
	}
	if p := FlipProbability(vcrit, w, vcrit+0.050); p > 1e-4 {
		t.Errorf("P 50mV above Vcrit = %v, want ~0", p)
	}
	if p := FlipProbability(vcrit, w, vcrit-0.050); p < 1-1e-4 {
		t.Errorf("P 50mV below Vcrit = %v, want ~1", p)
	}
}

func TestFlipProbabilityMonotoneInV(t *testing.T) {
	const vcrit, w = 0.650, 0.004
	prev := 1.1
	for v := 0.5; v <= 0.8; v += 0.001 {
		p := FlipProbability(vcrit, w, v)
		if p > prev+1e-12 {
			t.Fatalf("flip probability not monotone at v=%v", v)
		}
		prev = p
	}
}

func TestFlipProbabilityZeroWidth(t *testing.T) {
	if FlipProbability(0.6, 0, 0.59) != 1 {
		t.Error("zero-width cell below Vcrit should always flip")
	}
	if FlipProbability(0.6, 0, 0.61) != 0 {
		t.Error("zero-width cell above Vcrit should never flip")
	}
}

func TestQuickFlipProbabilityInUnitInterval(t *testing.T) {
	f := func(vcrit, w, v float64) bool {
		p := FlipProbability(math.Abs(vcrit), math.Abs(w), math.Abs(v))
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeakCellTailExists(t *testing.T) {
	// Scanning a realistic number of L2 cells must surface a weak tail:
	// some cell whose Vcrit is several sigma above the mean. This is the
	// raw material for "sensitive lines".
	m := New(31, LowVoltage())
	kp := m.P.Kinds[KindL2D]
	maxV := -1.0
	const cells = 200000
	for i := 0; i < cells; i++ {
		v := m.CellVcrit(0, KindL2D, i/512, 0, i%512)
		if v > maxV {
			maxV = v
		}
	}
	// The expected max of 200k normals is ~4.4 sigma above the core's
	// mean, but the core systematic offset can pull the whole array down
	// by a sigma or more, so test against a 3 sigma tail.
	if maxV < kp.Mu+3.0*kp.SigmaRandom {
		t.Errorf("no weak tail found: max Vcrit %v, Mu %v", maxV, kp.Mu)
	}
}

func BenchmarkCellVcrit(b *testing.B) {
	m := New(42, LowVoltage())
	for i := 0; i < b.N; i++ {
		m.CellVcrit(i&7, KindL2D, i&511, i&7, i&575)
	}
}

func TestPointAtAnchorsExact(t *testing.T) {
	lo, hi := LowVoltage(), HighVoltage()
	pLo := PointAt(lo.FrequencyHz)
	pHi := PointAt(hi.FrequencyHz)
	if pLo.NominalVdd != lo.NominalVdd || pHi.NominalVdd != hi.NominalVdd {
		t.Fatalf("anchor nominal voltages not exact: %v / %v", pLo.NominalVdd, pHi.NominalVdd)
	}
	if pLo.Kinds[KindL2D].Mu != lo.Kinds[KindL2D].Mu {
		t.Fatal("low anchor L2 mean drifted")
	}
}

func TestPointAtMonotoneBetweenAnchors(t *testing.T) {
	prevNom, prevSigma := 0.0, 1.0
	for _, f := range []float64{340e6, 500e6, 750e6, 1e9, 1.5e9, 2.53e9} {
		p := PointAt(f)
		if p.NominalVdd < prevNom {
			t.Fatalf("nominal voltage not rising with frequency at %.0f MHz", f/1e6)
		}
		if p.Kinds[KindL2D].SigmaRandom > prevSigma && f > 340e6 {
			t.Fatalf("L2 spread should shrink with frequency at %.0f MHz", f/1e6)
		}
		prevNom = p.NominalVdd
		prevSigma = p.Kinds[KindL2D].SigmaRandom
	}
}

func TestPointAtPanicsOutsideRange(t *testing.T) {
	for _, f := range []float64{100e6, 3e9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PointAt(%v) did not panic", f)
				}
			}()
			PointAt(f)
		}()
	}
}
