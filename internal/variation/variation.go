// Package variation models manufacturing process variation and its effect
// on the minimum reliable operating voltage of on-chip memory cells.
//
// The paper's entire mechanism rests on three empirical properties of a
// real low-voltage processor (MICRO 2014, §II):
//
//  1. Caches fail first. SRAM caches use the smallest transistors and are
//     the most sensitive structures; they determine Vccmin. At low voltage
//     only the L2 instruction/data caches report correctable errors, while
//     L1 (larger, more robust cells) and the register file stay clean.
//  2. Failures are deterministic. The same cache lines report correctable
//     errors run after run at the same voltage, because their cells sit in
//     the tail of the process-variation distribution.
//  3. Margins widen at low voltage. The voltage range between the first
//     correctable error and the crash point is ~4x wider at low Vdd, and
//     core-to-core Vmin variation is ~4x larger, because circuit delay
//     becomes far more voltage-sensitive near threshold.
//
// This package encodes those properties as a per-bit critical voltage:
//
//	Vcrit(bit) = mu(kind) + sys(core) + sys(core, kind) + sigma(kind)*N(bit)
//
// where every random term is a pure function of the chip seed and the
// bit's coordinates (see internal/rng), so a chip's weak-cell map is fixed
// at "manufacturing" time. A read at effective voltage V flips the bit
// with probability sigmoid((Vcrit-V)/w): comfortably above Vcrit reads are
// clean, near Vcrit they fail occasionally (the correctable-error regime
// the speculation system lives in), and far below they fail always.
package variation

import (
	"fmt"
	"math"

	"eccspec/internal/rng"
)

// Kind identifies a class of on-chip storage structure. Cell geometry (and
// therefore low-voltage robustness) differs by class: L2 caches use the
// densest, weakest cells; L1 and L3 use larger, more robust designs; the
// register file sits in between; Logic stands for non-SRAM core circuitry
// whose failure is a hard crash with no ECC warning.
type Kind int

const (
	KindL1I Kind = iota
	KindL1D
	KindL2I
	KindL2D
	KindL3
	KindRegFile
	KindLogic
	numKinds
)

// String returns the conventional short name of the structure class.
func (k Kind) String() string {
	switch k {
	case KindL1I:
		return "L1I"
	case KindL1D:
		return "L1D"
	case KindL2I:
		return "L2I"
	case KindL2D:
		return "L2D"
	case KindL3:
		return "L3"
	case KindRegFile:
		return "RegFile"
	case KindLogic:
		return "Logic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindParams holds the Vcrit distribution for one structure class at one
// operating point.
type KindParams struct {
	// Mu is the mean critical voltage of the class's cells, in volts.
	Mu float64
	// SigmaRandom is the per-cell random variation (dopant fluctuation
	// etc.), in volts.
	SigmaRandom float64
	// SigmaStruct is the per-(core, structure) systematic offset sigma,
	// in volts. It models within-die spatial correlation: cells in the
	// same array share part of their fate.
	SigmaStruct float64
}

// Params holds the full variation model configuration for one operating
// point (one frequency/nominal-voltage pair).
type Params struct {
	// Name labels the operating point ("high-2.53GHz", "low-340MHz").
	Name string
	// FrequencyHz is the clock the chip runs at this point.
	FrequencyHz float64
	// NominalVdd is the rated supply at this point, in volts.
	NominalVdd float64
	// Kinds maps each structure class to its Vcrit distribution.
	Kinds [numKinds]KindParams
	// SigmaCore is the per-core systematic variation shared by all
	// structures on the core, in volts.
	SigmaCore float64
	// LogicVminMu / LogicVminSigma describe the per-core hard crash
	// floor for non-SRAM logic, in volts.
	LogicVminMu    float64
	LogicVminSigma float64
	// WidthMin / WidthMax bound the per-cell sigmoid width w (volts).
	// The flip probability of a cell ramps from ~1% to ~99% over about
	// 9*w, so a few millivolts here yields the 20-50 mV per-line ramps
	// of Fig. 13.
	WidthMin float64
	WidthMax float64
	// TempCoeff shifts Vcrit per kelvin above the 40C reference
	// (volts/K). The paper found no measurable effect for +/-20C, so
	// this is small relative to the 5 mV control step.
	TempCoeff float64
	// AgingCoeff scales the NBTI-like Vcrit drift: a cell aged h hours
	// gains AgingCoeff * cellFactor * h^0.2 volts, where cellFactor is
	// a per-cell uniform in [0,1). Weak lines can therefore be
	// overtaken by faster-aging lines, which is why the paper
	// recalibrates periodically (§III-D).
	AgingCoeff float64
}

// HighVoltage returns the model parameters for the nominal operating
// point: 2.53 GHz at 1.1 V, matching the Itanium 9560's rated point.
//
// The constants are chosen so that emergent behaviour matches the paper's
// measurements: the first correctable error appears ~100 mV below nominal
// (the measured guardband), the minimum safe Vdd averages a bit more than
// 10% below nominal, and the correctable-error voltage range is narrow
// (a few tens of millivolts).
func HighVoltage() Params {
	p := Params{
		Name:           "high-2.53GHz",
		FrequencyHz:    2.53e9,
		NominalVdd:     1.100,
		SigmaCore:      0.005,
		LogicVminMu:    0.945,
		LogicVminSigma: 0.006,
		WidthMin:       0.002,
		WidthMax:       0.007,
		TempCoeff:      0.00010,
		AgingCoeff:     0.004,
	}
	p.Kinds[KindL1I] = KindParams{Mu: 0.820, SigmaRandom: 0.010, SigmaStruct: 0.003}
	p.Kinds[KindL1D] = KindParams{Mu: 0.820, SigmaRandom: 0.010, SigmaStruct: 0.003}
	p.Kinds[KindL2I] = KindParams{Mu: 0.880, SigmaRandom: 0.017, SigmaStruct: 0.004}
	p.Kinds[KindL2D] = KindParams{Mu: 0.880, SigmaRandom: 0.017, SigmaStruct: 0.004}
	p.Kinds[KindL3] = KindParams{Mu: 0.820, SigmaRandom: 0.010, SigmaStruct: 0.003}
	p.Kinds[KindRegFile] = KindParams{Mu: 0.910, SigmaRandom: 0.013, SigmaStruct: 0.004}
	p.Kinds[KindLogic] = KindParams{Mu: 0.900, SigmaRandom: 0.008, SigmaStruct: 0.003}
	return p
}

// LowVoltage returns the model parameters for the low-voltage operating
// point: 340 MHz at 800 mV. The 800 mV nominal is how the paper derived
// it: the voltage of the first correctable error at 340 MHz plus the same
// 100 mV guardband measured at the high point.
//
// Relative to HighVoltage, mean critical voltages drop (relaxed timing)
// while both random and systematic spreads grow ~2-4x (delay sensitivity
// amplification near threshold), which produces the 4x wider
// correctable-error range and 4x larger core-to-core Vmin variation the
// paper reports.
func LowVoltage() Params {
	p := Params{
		Name:           "low-340MHz",
		FrequencyHz:    340e6,
		NominalVdd:     0.800,
		SigmaCore:      0.028,
		LogicVminMu:    0.565,
		LogicVminSigma: 0.010,
		WidthMin:       0.006,
		WidthMax:       0.014,
		TempCoeff:      0.00010,
		AgingCoeff:     0.004,
	}
	p.Kinds[KindL1I] = KindParams{Mu: 0.310, SigmaRandom: 0.018, SigmaStruct: 0.006}
	p.Kinds[KindL1D] = KindParams{Mu: 0.310, SigmaRandom: 0.018, SigmaStruct: 0.006}
	p.Kinds[KindL2I] = KindParams{Mu: 0.377, SigmaRandom: 0.050, SigmaStruct: 0.008}
	p.Kinds[KindL2D] = KindParams{Mu: 0.377, SigmaRandom: 0.050, SigmaStruct: 0.008}
	p.Kinds[KindL3] = KindParams{Mu: 0.440, SigmaRandom: 0.022, SigmaStruct: 0.006}
	p.Kinds[KindRegFile] = KindParams{Mu: 0.340, SigmaRandom: 0.015, SigmaStruct: 0.006}
	p.Kinds[KindLogic] = KindParams{Mu: 0.520, SigmaRandom: 0.012, SigmaStruct: 0.005}
	return p
}

// Domain-separation tags for the hash keys below, so draws for different
// quantities never collide even with coincident coordinates.
const (
	tagCoreSys = iota + 0x100
	tagStructSys
	tagCellRandom
	tagCellWidth
	tagLogicVmin
	tagCellAging
)

// Model evaluates the variation model for one chip (one seed) at one
// operating point. Model is immutable and safe for concurrent use.
type Model struct {
	Seed uint64
	P    Params
}

// New returns a Model for the given chip seed and operating point.
func New(seed uint64, p Params) *Model {
	return &Model{Seed: seed, P: p}
}

// CoreSystematic returns the core-wide systematic Vcrit offset, in volts.
// It is deliberately independent of the operating point's name so that a
// chip's "fast" and "slow" cores keep their identity across operating
// points; only the magnitude (SigmaCore) changes.
func (m *Model) CoreSystematic(core int) float64 {
	return m.P.SigmaCore * rng.NormalAt(m.Seed, tagCoreSys, uint64(core))
}

// structSystematic returns the per-(core, structure) systematic offset.
func (m *Model) structSystematic(core int, kind Kind) float64 {
	kp := m.P.Kinds[kind]
	return kp.SigmaStruct * rng.NormalAt(m.Seed, tagStructSys, uint64(core), uint64(kind))
}

// Systematic returns the total systematic Vcrit offset shared by every
// cell of one structure: the core-wide component plus the per-structure
// component. Callers scanning many cells should hoist this out of the
// per-cell loop.
func (m *Model) Systematic(core int, kind Kind) float64 {
	return m.CoreSystematic(core) + m.structSystematic(core, kind)
}

// CellRandom returns the purely random (per-cell) component of a cell's
// critical voltage, in volts: SigmaRandom times an independent standard
// normal deviate keyed by the cell's coordinates. It uses the single-hash
// inverse-CDF sampler because array characterization evaluates millions
// of cells.
func (m *Model) CellRandom(core int, kind Kind, set, way, bit int) float64 {
	kp := m.P.Kinds[kind]
	return kp.SigmaRandom * rng.NormalInvAt(m.Seed, tagCellRandom, uint64(core),
		uint64(kind), uint64(set), uint64(way), uint64(bit))
}

// CellVcrit returns the critical voltage of one bit cell, in volts,
// before aging and temperature adjustments. Coordinates are
// (core, kind, set, way, bit); for core-external structures (L3) pass the
// structure's fixed id as core. CellVcrit is the convenience composition
// of Mu + Systematic + CellRandom; hot loops should use the parts.
func (m *Model) CellVcrit(core int, kind Kind, set, way, bit int) float64 {
	return m.P.Kinds[kind].Mu + m.Systematic(core, kind) +
		m.CellRandom(core, kind, set, way, bit)
}

// CellWidth returns the flip-probability sigmoid width w of one bit cell,
// in volts, drawn uniformly in [WidthMin, WidthMax].
func (m *Model) CellWidth(core int, kind Kind, set, way, bit int) float64 {
	u := rng.UniformAt(m.Seed, tagCellWidth, uint64(core), uint64(kind),
		uint64(set), uint64(way), uint64(bit))
	return m.P.WidthMin + u*(m.P.WidthMax-m.P.WidthMin)
}

// LogicVmin returns the hard crash floor of a core's non-SRAM logic, in
// volts. Below this voltage the core fails without any ECC warning; in a
// healthy configuration the L2 caches' uncorrectable point sits above it,
// which is exactly why ECC feedback works as an early-warning signal.
func (m *Model) LogicVmin(core int) float64 {
	z := rng.NormalAt(m.Seed, tagLogicVmin, uint64(core))
	return m.P.LogicVminMu + m.CoreSystematic(core) + m.P.LogicVminSigma*z
}

// AgingShift returns the upward Vcrit drift of a cell after ageHours of
// operation, in volts. The drift follows the classic NBTI power law
// (~t^0.2) with a per-cell random coefficient, so the identity of the
// weakest line in a domain can change over the chip's lifetime.
func (m *Model) AgingShift(core int, kind Kind, set, way, bit int, ageHours float64) float64 {
	if ageHours <= 0 || m.P.AgingCoeff == 0 {
		return 0
	}
	u := rng.UniformAt(m.Seed, tagCellAging, uint64(core), uint64(kind),
		uint64(set), uint64(way), uint64(bit))
	return m.P.AgingCoeff * u * math.Pow(ageHours, 0.2)
}

// TempShift returns the Vcrit adjustment for operating temperature tempC,
// in volts, relative to the 40C reference.
func (m *Model) TempShift(tempC float64) float64 {
	return m.P.TempCoeff * (tempC - 40.0)
}

// FlipProbability returns the probability that a cell with critical
// voltage vcrit and ramp width w flips when read at effective voltage v:
// the normal CDF of the voltage deficit — ~0 well above vcrit, 0.5 at
// vcrit, ~1 well below, ramping over roughly 5w.
//
// Gaussian (rather than logistic) tails matter: a structure whose cells
// sit tens of millivolts below the operating range must contribute
// *nothing* even across billions of accesses, which is how the paper's
// L1 caches and (at low voltage) register files stay silent while the L2
// caches chirp.
func FlipProbability(vcrit, w, v float64) float64 {
	if w <= 0 {
		if v < vcrit {
			return 1
		}
		return 0
	}
	x := (vcrit - v) / w
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
