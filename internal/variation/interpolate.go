package variation

import (
	"fmt"
	"math"
)

// PointAt returns variation parameters for an intermediate operating
// frequency between the two characterized anchors (340 MHz low-voltage
// and 2.53 GHz nominal), interpolating log-linearly in frequency.
//
// The paper characterizes only the two endpoints but notes that a
// production low-voltage system "would likely run at higher frequencies
// (500 MHz - 1 GHz) in order to keep performance at reasonable levels"
// (§II-A). Interpolation captures the first-order physics along that
// range: as frequency rises, the rated voltage rises, timing margins
// tighten (mean critical voltages track the nominal), and the
// delay-to-voltage amplification that widens every distribution near
// threshold fades out.
//
// PointAt panics outside [340 MHz, 2.53 GHz]; the anchors themselves are
// returned exactly.
func PointAt(freqHz float64) Params {
	lo, hi := LowVoltage(), HighVoltage()
	if freqHz < lo.FrequencyHz || freqHz > hi.FrequencyHz {
		panic(fmt.Sprintf("variation: frequency %.0f Hz outside characterized range", freqHz))
	}
	t := logFrac(freqHz, lo.FrequencyHz, hi.FrequencyHz)
	p := Params{
		Name:           fmt.Sprintf("interp-%.0fMHz", freqHz/1e6),
		FrequencyHz:    freqHz,
		NominalVdd:     lerp(lo.NominalVdd, hi.NominalVdd, t),
		SigmaCore:      lerp(lo.SigmaCore, hi.SigmaCore, t),
		LogicVminMu:    lerp(lo.LogicVminMu, hi.LogicVminMu, t),
		LogicVminSigma: lerp(lo.LogicVminSigma, hi.LogicVminSigma, t),
		WidthMin:       lerp(lo.WidthMin, hi.WidthMin, t),
		WidthMax:       lerp(lo.WidthMax, hi.WidthMax, t),
		TempCoeff:      lerp(lo.TempCoeff, hi.TempCoeff, t),
		AgingCoeff:     lerp(lo.AgingCoeff, hi.AgingCoeff, t),
	}
	for k := Kind(0); k < numKinds; k++ {
		p.Kinds[k] = KindParams{
			Mu:          lerp(lo.Kinds[k].Mu, hi.Kinds[k].Mu, t),
			SigmaRandom: lerp(lo.Kinds[k].SigmaRandom, hi.Kinds[k].SigmaRandom, t),
			SigmaStruct: lerp(lo.Kinds[k].SigmaStruct, hi.Kinds[k].SigmaStruct, t),
		}
	}
	return p
}

// logFrac maps x in [a, b] to [0, 1] on a logarithmic axis.
func logFrac(x, a, b float64) float64 {
	// ln(x/a) / ln(b/a) computed via the ratio of ratios; inputs are
	// validated positive by the caller.
	return ln(x/a) / ln(b/a)
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

func ln(x float64) float64 { return math.Log(x) }
