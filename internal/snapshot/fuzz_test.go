package snapshot

import (
	"testing"

	"eccspec"
)

// FuzzSnapshotRestore hands RestoreBlob arbitrary bytes: it must reject
// or accept, never panic — and anything it accepts must be a working
// simulator. The corpus seeds a genuine capture plus its classic
// corruptions (truncation, bit flips), so the CRC, version and decode
// paths all get explored from realistic starting points.
func FuzzSnapshotRestore(f *testing.F) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 42, Workload: "gcc"})
	if err != nil {
		f.Fatal(err)
	}
	if err := sim.Calibrate(); err != nil {
		f.Fatal(err)
	}
	stepN(sim, 50)
	blob, err := CaptureBlob(sim)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:len(blob)/2])
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add(blob[4:]) // header knocked off

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, st, err := RestoreBlob(data)
		if err != nil {
			return
		}
		if restored == nil || st == nil {
			t.Fatal("nil simulator accepted without error")
		}
		// An accepted snapshot must yield a live, steppable simulator.
		before := restored.Ticks()
		stepN(restored, 3)
		if restored.Ticks() != before+3 {
			t.Fatalf("restored simulator does not step: %d -> %d", before, restored.Ticks())
		}
	})
}
