// Package snapshot provides versioned, deterministic serialization of
// full simulator state — checkpoint and restore for the eccspec
// Simulator.
//
// The simulator is deterministic: every derived quantity (weak-cell
// maps, rail resonances, logic floors) is a pure function of the chip
// seed, and every stochastic draw comes from an explicitly positioned
// generator. A snapshot therefore only records the *construction
// options* plus the *mutable* state of each layer: tick counter,
// per-domain rail setpoints, PDN effective-voltage latches, monitor
// access/error counters and active weak-line targets, controller
// per-domain assignments, workload positions, RNG stream positions,
// trace buffers, and the aggregate power/energy integrals. Restore
// rebuilds the specimen from the options (cheap — no calibration sweep
// runs) and overlays the mutable state, after which continuing the run
// is byte-identical to never having stopped.
//
// Blobs carry a format-version header and a CRC32 integrity check (see
// blob.go); corrupt or truncated blobs produce clean errors, never
// panics.
package snapshot

import (
	"fmt"

	"eccspec"
	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/policy"
	"eccspec/internal/trace"
	"eccspec/internal/workload"
)

// Version is the current snapshot format version. Restore accepts only
// states whose version it knows how to interpret.
const Version = 1

// OptionsState pins the simulator construction parameters; together
// with the seed they determine every derived quantity of the specimen.
type OptionsState struct {
	Seed             uint64 `json:"seed"`
	HighVoltagePoint bool   `json:"high_voltage_point,omitempty"`
	FullGeometry     bool   `json:"full_geometry,omitempty"`
	Workload         string `json:"workload"`
	// Policy names the speculation policy that was driving the control
	// system. Empty (pre-policy blobs and the default) means the paper
	// ladder, so historical snapshots restore unchanged.
	Policy string `json:"policy,omitempty"`
	// Fidelity names the event-sampling fidelity. Empty (pre-fidelity
	// blobs and the default) means full fidelity, so historical
	// snapshots restore unchanged and full-fidelity blobs keep their
	// shape.
	Fidelity string `json:"fidelity,omitempty"`
}

// TraceState carries a telemetry recorder's accumulated rows, so a
// resumed traced run reproduces the full series.
type TraceState struct {
	Columns []string    `json:"columns"`
	Times   []float64   `json:"times"`
	Rows    [][]float64 `json:"rows"`
}

// CaptureTrace snapshots a recorder (nil recorder gives nil state).
func CaptureTrace(r *trace.Recorder) *TraceState {
	if r == nil {
		return nil
	}
	st := &TraceState{Columns: r.Columns()}
	cols := len(st.Columns)
	for i := 0; i < r.Len(); i++ {
		st.Times = append(st.Times, r.Time(i))
		row := make([]float64, cols)
		for c := 0; c < cols; c++ {
			row[c] = r.Value(i, c)
		}
		st.Rows = append(st.Rows, row)
	}
	return st
}

// RestoreTrace rebuilds a recorder from a trace state (nil state gives
// nil recorder).
func (ts *TraceState) RestoreTrace() (*trace.Recorder, error) {
	if ts == nil {
		return nil, nil
	}
	if len(ts.Columns) == 0 {
		return nil, fmt.Errorf("snapshot: trace state has no columns")
	}
	if len(ts.Times) != len(ts.Rows) {
		return nil, fmt.Errorf("snapshot: trace state has %d times but %d rows", len(ts.Times), len(ts.Rows))
	}
	r := trace.NewRecorder(ts.Columns...)
	for i, t := range ts.Times {
		if len(ts.Rows[i]) != len(ts.Columns) {
			return nil, fmt.Errorf("snapshot: trace row %d has %d values for %d columns", i, len(ts.Rows[i]), len(ts.Columns))
		}
		r.Add(t, ts.Rows[i]...)
	}
	return r, nil
}

// State is a full simulator snapshot.
type State struct {
	Version int           `json:"version"`
	Options OptionsState  `json:"options"`
	Ticks   int           `json:"ticks"`
	Chip    chip.State    `json:"chip"`
	Control control.State `json:"control"`
	// Trace is optional per-tick telemetry accumulated by the caller
	// (the fleet engine records it alongside the simulator).
	Trace *TraceState `json:"trace,omitempty"`
}

// Capture snapshots a simulator's full mutable state.
func Capture(sim *eccspec.Simulator) (*State, error) {
	ctl, err := sim.Control().CaptureState()
	if err != nil {
		return nil, err
	}
	o := sim.Opts()
	polName := o.Policy
	if polName == policy.Default {
		// Default-policy blobs keep their pre-registry shape.
		polName = ""
	}
	return &State{
		Version: Version,
		Options: OptionsState{
			Seed:             o.Seed,
			HighVoltagePoint: o.HighVoltagePoint,
			FullGeometry:     o.FullGeometry,
			Workload:         o.Workload,
			Policy:           polName,
			Fidelity:         o.Fidelity,
		},
		Ticks:   sim.Ticks(),
		Chip:    sim.Chip().CaptureState(),
		Control: ctl,
	}, nil
}

// Restore builds a fresh simulator from the snapshot's options and
// overlays the captured mutable state. The returned simulator continues
// byte-identically to the one Capture observed.
func Restore(st *State) (*eccspec.Simulator, error) {
	if st == nil {
		return nil, fmt.Errorf("snapshot: nil state")
	}
	if st.Version != Version {
		return nil, fmt.Errorf("snapshot: unsupported state version %d (supported: %d)", st.Version, Version)
	}
	if st.Ticks < 0 {
		return nil, fmt.Errorf("snapshot: negative tick count %d", st.Ticks)
	}
	if _, ok := workload.ByName(st.Options.Workload); !ok {
		return nil, fmt.Errorf("snapshot: unknown workload %q", st.Options.Workload)
	}
	if _, ok := policy.Get(policy.Resolve(st.Options.Policy)); !ok {
		return nil, fmt.Errorf("snapshot: unknown policy %q", st.Options.Policy)
	}
	sim, err := eccspec.NewSimulator(eccspec.Options{
		Seed:             st.Options.Seed,
		HighVoltagePoint: st.Options.HighVoltagePoint,
		FullGeometry:     st.Options.FullGeometry,
		Workload:         st.Options.Workload,
		Policy:           st.Options.Policy,
		Fidelity:         st.Options.Fidelity,
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if err := sim.Chip().RestoreState(st.Chip); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if err := sim.Control().RestoreState(st.Control); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return sim, nil
}

// CaptureBlob is Capture followed by Marshal.
func CaptureBlob(sim *eccspec.Simulator) ([]byte, error) {
	st, err := Capture(sim)
	if err != nil {
		return nil, err
	}
	return Marshal(st)
}

// RestoreBlob is Unmarshal followed by Restore; it also returns the
// decoded state so callers can inspect the tick counter and trace.
func RestoreBlob(blob []byte) (*eccspec.Simulator, *State, error) {
	st, err := Unmarshal(blob)
	if err != nil {
		return nil, nil, err
	}
	sim, err := Restore(st)
	if err != nil {
		return nil, nil, err
	}
	return sim, st, nil
}
