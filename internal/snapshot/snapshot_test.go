package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"eccspec"
	"eccspec/internal/control"
)

// newCalibrated builds a simulator, calibrates it, and runs it for the
// given number of ticks.
func newCalibrated(t *testing.T, seed uint64, ticks int) *eccspec.Simulator {
	t.Helper()
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: seed, Workload: "gcc"})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	if err := sim.Calibrate(); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	for i := 0; i < ticks; i++ {
		sim.Step()
	}
	return sim
}

// stepN advances a simulator by n ticks.
func stepN(sim *eccspec.Simulator, n int) {
	for i := 0; i < n; i++ {
		sim.Step()
	}
}

// TestRestoreContinuesByteIdentical is the core resume guarantee: a
// simulator captured mid-run, serialized, restored, and run for N more
// ticks ends in a state byte-identical to the original run never having
// been interrupted.
func TestRestoreContinuesByteIdentical(t *testing.T) {
	const midTicks, moreTicks = 300, 300
	orig := newCalibrated(t, 42, midTicks)

	blob, err := CaptureBlob(orig)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	resumed, st, err := RestoreBlob(blob)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if st.Ticks != midTicks {
		t.Fatalf("restored state has %d ticks, want %d", st.Ticks, midTicks)
	}
	if resumed.Ticks() != midTicks {
		t.Fatalf("restored simulator reports %d ticks, want %d", resumed.Ticks(), midTicks)
	}

	stepN(orig, moreTicks)
	stepN(resumed, moreTicks)

	origBlob, err := CaptureBlob(orig)
	if err != nil {
		t.Fatalf("capture original after continue: %v", err)
	}
	resumedBlob, err := CaptureBlob(resumed)
	if err != nil {
		t.Fatalf("capture resumed after continue: %v", err)
	}
	if !bytes.Equal(origBlob, resumedBlob) {
		t.Fatalf("resumed run diverged from uninterrupted run:\n  uninterrupted: %d bytes\n  resumed:       %d bytes",
			len(origBlob), len(resumedBlob))
	}

	// Spot-check user-facing observables too, so a future State field
	// omission that happens to serialize equal still gets caught.
	for d := 0; d < orig.NumDomains(); d++ {
		if ov, rv := orig.DomainVoltage(d), resumed.DomainVoltage(d); ov != rv {
			t.Errorf("domain %d voltage: uninterrupted %.6f, resumed %.6f", d, ov, rv)
		}
		if oe, re := orig.MonitorErrorRate(d), resumed.MonitorErrorRate(d); oe != re {
			t.Errorf("domain %d error rate: uninterrupted %v, resumed %v", d, oe, re)
		}
	}
	if op, rp := orig.TotalPower(), resumed.TotalPower(); op != rp {
		t.Errorf("total power: uninterrupted %v, resumed %v", op, rp)
	}
}

// TestRestoreWithUncoreSpeculation exercises the uncore extension's
// state path.
func TestRestoreWithUncoreSpeculation(t *testing.T) {
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Calibrate(); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if err := sim.EnableUncoreSpeculation(); err != nil {
		t.Fatalf("attach uncore: %v", err)
	}
	stepN(sim, 200)

	blob, err := CaptureBlob(sim)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	resumed, _, err := RestoreBlob(blob)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	stepN(sim, 200)
	stepN(resumed, 200)
	if ov, rv := sim.UncoreVoltage(), resumed.UncoreVoltage(); ov != rv {
		t.Fatalf("uncore voltage diverged: uninterrupted %.6f, resumed %.6f", ov, rv)
	}
	a, err := CaptureBlob(sim)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureBlob(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed uncore run diverged from uninterrupted run")
	}
}

// TestMarshalRoundTrip checks the envelope alone.
func TestMarshalRoundTrip(t *testing.T) {
	sim := newCalibrated(t, 3, 50)
	st, err := Capture(sim)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	blob, err := Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b1, _ := Marshal(st)
	b2, err := Marshal(got)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("state does not survive a marshal/unmarshal cycle byte-identically")
	}
}

// TestUnmarshalRejectsCorruption flips, truncates, and mangles blobs;
// every case must return a clean error and never panic.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	sim := newCalibrated(t, 11, 20)
	blob, err := CaptureBlob(sim)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"header-only", func(b []byte) []byte { return b[:headerLen-3] }, "truncated"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xFF
			return c
		}, "bad magic"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }, "length"},
		{"payload bit flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerLen+len(c[headerLen:])/2] ^= 0x10
			return c
		}, "CRC"},
		{"crc field flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(Magic)+8] ^= 0x01
			return c
		}, "CRC"},
		{"version field flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(Magic)] ^= 0x40
			return c
		}, "version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Unmarshal panicked: %v", r)
				}
			}()
			_, err := Unmarshal(tc.mutate(blob))
			if err == nil {
				t.Fatal("Unmarshal accepted a corrupted blob")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRestoreRejectsMismatchedState ensures decodable-but-wrong states
// fail cleanly rather than panicking deep in the simulator.
func TestRestoreRejectsMismatchedState(t *testing.T) {
	sim := newCalibrated(t, 5, 10)
	st, err := Capture(sim)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}

	t.Run("unknown workload", func(t *testing.T) {
		bad := *st
		bad.Options.Workload = "no-such-benchmark"
		if _, err := Restore(&bad); err == nil {
			t.Fatal("Restore accepted an unknown workload")
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		bad := *st
		bad.Version = Version + 1
		if _, err := Restore(&bad); err == nil {
			t.Fatal("Restore accepted an unsupported version")
		}
	})
	t.Run("geometry mismatch", func(t *testing.T) {
		bad := *st
		bad.Chip.Cores = bad.Chip.Cores[:1]
		if _, err := Restore(&bad); err == nil {
			t.Fatal("Restore accepted a core-count mismatch")
		}
	})
	t.Run("monitor out of range", func(t *testing.T) {
		bad := *st
		bad.Control.Domains = append([]control.DomainControlState(nil), st.Control.Domains...)
		bad.Control.Domains[0].Assignment.Set = 1 << 20
		if _, err := Restore(&bad); err == nil {
			t.Fatal("Restore accepted an out-of-range monitor assignment")
		}
	})
	t.Run("nil state", func(t *testing.T) {
		if _, err := Restore(nil); err == nil {
			t.Fatal("Restore accepted nil")
		}
	})
}
