package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"eccspec"
)

// newPolicySim builds a calibrated simulator running the named
// speculation policy and advances it ticks control ticks.
func newPolicySim(t *testing.T, seed uint64, pol string, ticks int) *eccspec.Simulator {
	t.Helper()
	sim, err := eccspec.NewSimulator(eccspec.Options{Seed: seed, Workload: "gcc", Policy: pol})
	if err != nil {
		t.Fatalf("new simulator (%s): %v", pol, err)
	}
	if err := sim.Calibrate(); err != nil {
		t.Fatalf("calibrate (%s): %v", pol, err)
	}
	stepN(sim, ticks)
	return sim
}

// TestRestoreNonDefaultPolicyByteIdentical proves the resume guarantee
// holds for every registered policy, including the stateful ones whose
// mutable state rides the control state's policy blob: interrupting a
// run at a checkpoint and continuing is byte-identical to never
// stopping.
func TestRestoreNonDefaultPolicyByteIdentical(t *testing.T) {
	const midTicks, moreTicks = 300, 300
	for _, pol := range eccspec.PolicyNames() {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			orig := newPolicySim(t, 42, pol, midTicks)
			blob, err := CaptureBlob(orig)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			resumed, st, err := RestoreBlob(blob)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if st.Ticks != midTicks {
				t.Fatalf("restored state has %d ticks, want %d", st.Ticks, midTicks)
			}
			if got := resumed.Opts().Policy; got != pol {
				t.Fatalf("restored simulator runs policy %q, want %q", got, pol)
			}
			stepN(orig, moreTicks)
			stepN(resumed, moreTicks)
			origBlob, err := CaptureBlob(orig)
			if err != nil {
				t.Fatal(err)
			}
			resumedBlob, err := CaptureBlob(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(origBlob, resumedBlob) {
				t.Fatalf("policy %s: resumed run diverged from uninterrupted run", pol)
			}
		})
	}
}

// TestCaptureOmitsDefaultPolicyName keeps default-policy blobs in their
// pre-registry shape: no policy name, no policy state.
func TestCaptureOmitsDefaultPolicyName(t *testing.T) {
	sim := newCalibrated(t, 5, 50)
	st, err := Capture(sim)
	if err != nil {
		t.Fatal(err)
	}
	if st.Options.Policy != "" {
		t.Fatalf("default-policy snapshot records policy %q, want empty", st.Options.Policy)
	}
	if st.Control.PolicyState != nil {
		t.Fatalf("default-policy snapshot carries policy state %s", st.Control.PolicyState)
	}
}

// TestRestoreRejectsUnknownPolicy: a blob naming an unregistered policy
// fails cleanly.
func TestRestoreRejectsUnknownPolicy(t *testing.T) {
	sim := newPolicySim(t, 5, "tscache", 50)
	st, err := Capture(sim)
	if err != nil {
		t.Fatal(err)
	}
	st.Options.Policy = "retired-policy"
	if _, err := Restore(st); err == nil || !strings.Contains(err.Error(), "retired-policy") {
		t.Fatalf("restore with unknown policy: err = %v, want mention of the name", err)
	}
}
