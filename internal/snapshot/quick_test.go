package snapshot

import (
	"bytes"
	"testing"
	"testing/quick"

	"eccspec"
)

// TestQuickRoundTripProperty is the randomized form of the resume
// guarantee: for arbitrary seeds and split points, Restore(Capture(sim))
// followed by N ticks equals the original simulator run for N ticks,
// compared byte-for-byte through the serializer. MaxCount is small
// because each trial pays a full calibration sweep.
func TestQuickRoundTripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration-heavy property test")
	}
	workloads := []string{"", "gcc", "mcf", "swim"}
	property := func(seed uint16, splitSel, moreSel uint8, wlSel uint8) bool {
		split := 20 + int(splitSel)%180 // 20..199 ticks before the checkpoint
		more := 20 + int(moreSel)%180   // 20..199 ticks after it
		opts := eccspec.Options{
			Seed:     uint64(seed),
			Workload: workloads[int(wlSel)%len(workloads)],
		}
		orig, err := eccspec.NewSimulator(opts)
		if err != nil {
			t.Logf("seed %d: new simulator: %v", seed, err)
			return false
		}
		if err := orig.Calibrate(); err != nil {
			t.Logf("seed %d: calibrate: %v", seed, err)
			return false
		}
		stepN(orig, split)

		blob, err := CaptureBlob(orig)
		if err != nil {
			t.Logf("seed %d: capture: %v", seed, err)
			return false
		}
		resumed, _, err := RestoreBlob(blob)
		if err != nil {
			t.Logf("seed %d: restore: %v", seed, err)
			return false
		}
		stepN(orig, more)
		stepN(resumed, more)

		a, err := CaptureBlob(orig)
		if err != nil {
			t.Logf("seed %d: recapture original: %v", seed, err)
			return false
		}
		b, err := CaptureBlob(resumed)
		if err != nil {
			t.Logf("seed %d: recapture resumed: %v", seed, err)
			return false
		}
		if !bytes.Equal(a, b) {
			t.Logf("seed %d split %d more %d wl %q: resumed run diverged",
				seed, split, more, opts.Workload)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnmarshalNeverPanics fuzzes the decoder with arbitrary bytes
// and with corrupted valid blobs: any input must produce (state, nil) or
// (nil, error), never a panic.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	valid, err := CaptureBlob(newCalibrated(t, 2, 10))
	if err != nil {
		t.Fatalf("capture: %v", err)
	}

	check := func(blob []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Unmarshal panicked on %d-byte input: %v", len(blob), r)
				ok = false
			}
		}()
		st, err := Unmarshal(blob)
		if (st == nil) == (err == nil) {
			t.Logf("Unmarshal returned st=%v err=%v", st != nil, err)
			return false
		}
		return true
	}

	arbitrary := func(raw []byte) bool { return check(raw) }
	if err := quick.Check(arbitrary, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	corruptValid := func(pos uint16, mask uint8) bool {
		c := append([]byte(nil), valid...)
		c[int(pos)%len(c)] ^= byte(mask | 1) // always flips at least one bit
		return check(c)
	}
	if err := quick.Check(corruptValid, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	prefix := func(cut uint16) bool { return check(valid[:int(cut)%len(valid)]) }
	if err := quick.Check(prefix, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
