package snapshot

// Blob envelope: a fixed magic, a format version, the payload length,
// and a CRC32 of the payload, followed by the JSON-encoded State. The
// JSON layer is what makes byte-identical resume sound: encoding/json
// renders float64 in shortest-round-trip form and parses uint64
// literals exactly, so every captured number survives a
// Marshal/Unmarshal cycle bit-for-bit.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Magic identifies an eccspec snapshot blob.
const Magic = "ECCSNAP\x00"

const headerLen = len(Magic) + 4 + 4 + 4 // magic, version, payload len, CRC32

// Marshal encodes a state into a self-checking blob.
func Marshal(st *State) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("snapshot: nil state")
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding state: %w", err)
	}
	return encodeEnvelope(uint32(st.Version), payload), nil
}

// Unmarshal decodes a blob, verifying magic, version, length, and CRC.
// Corrupt or truncated input yields an error, never a panic.
func Unmarshal(blob []byte) (*State, error) {
	version, payload, err := decodeEnvelope(blob)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("snapshot: decoding state: %w", err)
	}
	if st.Version != int(version) {
		return nil, fmt.Errorf("snapshot: header version %d does not match state version %d", version, st.Version)
	}
	return &st, nil
}

// encodeEnvelope frames a payload with magic, version, length and CRC.
func encodeEnvelope(version uint32, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// decodeEnvelope validates a framed blob and returns its version and
// payload.
func decodeEnvelope(blob []byte) (version uint32, payload []byte, err error) {
	if len(blob) < headerLen {
		return 0, nil, fmt.Errorf("snapshot: blob truncated (%d bytes, header is %d)", len(blob), headerLen)
	}
	if !bytes.Equal(blob[:len(Magic)], []byte(Magic)) {
		return 0, nil, fmt.Errorf("snapshot: bad magic (not an eccspec snapshot)")
	}
	rest := blob[len(Magic):]
	version = binary.LittleEndian.Uint32(rest[0:4])
	plen := binary.LittleEndian.Uint32(rest[4:8])
	sum := binary.LittleEndian.Uint32(rest[8:12])
	payload = rest[12:]
	if uint32(len(payload)) != plen {
		return 0, nil, fmt.Errorf("snapshot: payload length %d does not match header %d", len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return 0, nil, fmt.Errorf("snapshot: CRC mismatch (blob corrupt): got %08x, header says %08x", got, sum)
	}
	return version, payload, nil
}

// EncodePayload frames an arbitrary pre-encoded payload with the
// snapshot magic, a caller-chosen version, and a CRC — for tools that
// keep their own state formats (e.g. the lifetime example) but want the
// same integrity guarantees.
func EncodePayload(version uint32, payload []byte) []byte {
	return encodeEnvelope(version, payload)
}

// DecodePayload is the inverse of EncodePayload. It validates the
// framing and returns the version and payload; the caller interprets
// both.
func DecodePayload(blob []byte) (version uint32, payload []byte, err error) {
	return decodeEnvelope(blob)
}
