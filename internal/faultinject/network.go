package faultinject

// Network-plane delivery: an http.RoundTripper wrapper for the client
// side of every cluster RPC and a net.Listener wrapper for the server
// side. Both index traffic deterministically — one attempt counter per
// endpoint key (the URL path's last segment), one accept counter per
// listener — so a plan window like {start: 2, duration: 3} means "RPC
// attempts 2, 3 and 4 to this endpoint", reproducibly, regardless of
// wall-clock timing. Retried attempts draw fresh indices, which is how
// a bounded-retry client proves it rides out a finite outage window.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Transport wraps base with the plan's network faults. When the plan
// has none, base is returned unchanged — an empty plan is byte-
// identical to an uninjected build. A nil base selects
// http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	var faults []Fault
	for _, f := range in.plan.Faults {
		if f.Kind.net() && f.Target != "accept" {
			faults = append(faults, f)
		}
	}
	if len(faults) == 0 {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &chaosTransport{in: in, base: base, faults: faults}
}

type chaosTransport struct {
	in     *Injector
	base   http.RoundTripper
	faults []Fault

	mu     sync.Mutex
	counts map[string]int
}

// next assigns the attempt index for one request to the endpoint key.
func (t *chaosTransport) next(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counts == nil {
		t.counts = make(map[string]int)
	}
	n := t.counts[key]
	t.counts[key] = n + 1
	return n
}

// pathKey reduces a URL path to its endpoint key: the last segment, so
// "/v1/cluster/exec" and "/v1/cluster/heartbeat" key as "exec" and
// "heartbeat" no matter which host serves them.
func pathKey(p string) string {
	p = strings.TrimRight(p, "/")
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// active reports whether the fault applies to attempt n on key.
func (f Fault) active(key string, n int) bool {
	if f.Target != "" && f.Target != key {
		return false
	}
	if n < f.Start {
		return false
	}
	return f.Duration == 0 || n < f.Start+f.Duration
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := pathKey(req.URL.Path)
	n := t.next(key)
	var stream []Fault
	for _, f := range t.faults {
		if !f.active(key, n) {
			continue
		}
		switch f.Kind {
		case NetPartition:
			t.in.record(Event{Tick: n, Phase: "apply", Fault: f})
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("faultinject: partition (%s attempt %d)", key, n)}
		case NetBlackhole:
			t.in.record(Event{Tick: n, Phase: "apply", Fault: f})
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-time.After(time.Duration(f.DelayMs) * time.Millisecond):
			}
			return nil, &timeoutError{fmt.Sprintf("faultinject: blackhole (%s attempt %d)", key, n)}
		case NetSlow:
			t.in.record(Event{Tick: n, Phase: "apply", Fault: f})
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-time.After(time.Duration(f.DelayMs) * time.Millisecond):
			}
		case NetResetStream, NetTruncateStream, NetDupEvents:
			t.in.record(Event{Tick: n, Phase: "apply", Fault: f})
			stream = append(stream, f)
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || len(stream) == 0 {
		return resp, err
	}
	resp.Body = newChaosBody(resp.Body, stream)
	return resp, nil
}

// timeoutError is the net.Error a blackholed attempt surfaces: the
// client's own deadline machinery would produce the same shape.
type timeoutError struct{ msg string }

func (e *timeoutError) Error() string   { return e.msg }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// errStreamReset is the error a NetResetStream body surfaces.
var errStreamReset = errors.New("faultinject: connection reset mid-stream")

// chaosBody tears a streamed NDJSON response line by line: it forwards
// complete lines (optionally duplicated) and, after the configured line
// count, fails the next read with a reset error or a clean EOF.
type chaosBody struct {
	rc io.ReadCloser
	br *bufio.Reader

	buf      bytes.Buffer // decoded output waiting to be read
	lines    int          // complete lines forwarded (pre-duplication)
	cutAfter int          // lines allowed through; -1 = no cut
	truncate bool         // cut with EOF instead of a reset error
	dup      bool         // forward every line twice
	err      error        // sticky terminal error
}

func newChaosBody(rc io.ReadCloser, faults []Fault) io.ReadCloser {
	b := &chaosBody{rc: rc, br: bufio.NewReader(rc), cutAfter: -1}
	for _, f := range faults {
		switch f.Kind {
		case NetResetStream:
			b.cutAfter, b.truncate = f.Line, false
		case NetTruncateStream:
			b.cutAfter, b.truncate = f.Line, true
		case NetDupEvents:
			b.dup = true
		}
	}
	return b
}

func (b *chaosBody) Read(p []byte) (int, error) {
	for b.buf.Len() == 0 {
		if b.err != nil {
			return 0, b.err
		}
		if b.cutAfter >= 0 && b.lines >= b.cutAfter {
			if b.truncate {
				b.err = io.EOF
			} else {
				b.err = &net.OpError{Op: "read", Net: "tcp", Err: errStreamReset}
			}
			return 0, b.err
		}
		line, err := b.br.ReadBytes('\n')
		if len(line) > 0 {
			b.buf.Write(line)
			if line[len(line)-1] == '\n' {
				b.lines++
				if b.dup {
					b.buf.Write(line)
				}
			}
		}
		if err != nil {
			b.err = err
			break
		}
	}
	if b.buf.Len() == 0 {
		return 0, b.err
	}
	return b.buf.Read(p)
}

func (b *chaosBody) Close() error { return b.rc.Close() }

// Listener wraps ln with the plan's accept-plane faults: net-partition
// faults with Target "accept" immediately close matched incoming
// connections — a restart or refusal window as clients see it. With no
// such faults ln is returned unchanged.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	var faults []Fault
	for _, f := range in.plan.Faults {
		if f.Kind == NetPartition && f.Target == "accept" {
			faults = append(faults, f)
		}
	}
	if len(faults) == 0 {
		return ln
	}
	return &chaosListener{Listener: ln, in: in, faults: faults}
}

type chaosListener struct {
	net.Listener
	in     *Injector
	faults []Fault
	count  atomic.Int64
}

func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		n := int(l.count.Add(1) - 1)
		dropped := false
		for _, f := range l.faults {
			if !f.active("accept", n) {
				continue
			}
			l.in.record(Event{Tick: n, Phase: "apply", Fault: f})
			c.Close()
			dropped = true
			break
		}
		if !dropped {
			return c, nil
		}
	}
}
