// Package faultinject is the repo's seeded, deterministic fault
// injector: it delivers the adversity the paper claims the design
// survives (§V-D robustness: voltage noise, a resonance-seeking virus,
// the 80% emergency path) plus the infrastructure failures a
// production-scale daemon must absorb (worker panics, journal I/O
// errors, slow disks).
//
// Faults live on three planes:
//
//   - Simulated-hardware faults ride the observer engine: an Injector
//     hands out one engine.Observer per chip, and at the planned tick
//     that observer flips the target — a monitor's fault mode
//     (internal/monitor), a rail's external disturbance (internal/pdn)
//     — or panics the worker outright. The simulation itself stays
//     untouched; with no plan the observer list is empty and every
//     output is byte-identical to an uninjected run.
//
//   - Infrastructure faults intercept the store's journal writes via
//     Options.WriteHook: an operation counter indexes every
//     append/fsync, and planned windows of that index return errors or
//     inject latency.
//
//   - Network faults intercept cluster RPCs via an http.RoundTripper
//     wrapper (Injector.Transport) and a net.Listener wrapper
//     (Injector.Listener): a per-endpoint attempt counter indexes every
//     RPC, and planned windows of that index partition the link, black-
//     hole or slow it, or tear the streamed NDJSON response (reset,
//     truncate, duplicate lines). The hardened cluster tier must retry,
//     dedupe, and migrate its way back to byte-identical results.
//
// Everything is replayable: a Plan is plain data (JSON-serializable),
// all randomness downstream of a fault (retry jitter) derives from the
// plan seed, and the injector's event log is sorted deterministically —
// the same plan and seed produce byte-identical outcomes, which the
// chaos tests assert.
package faultinject

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eccspec/internal/chip"
	"eccspec/internal/control"
	"eccspec/internal/engine"
	"eccspec/internal/monitor"
)

// Kind names a fault class.
type Kind string

const (
	// MonitorStuckZero breaks a domain monitor's error datapath: probes
	// still run but report zero errors. The controller's self-test
	// cross-check must catch it before the rail walks off the cliff.
	MonitorStuckZero Kind = "monitor-stuck-zero"
	// MonitorDropout kills a domain's monitor: probes do nothing and
	// its counters freeze (a stale error rate forever). The
	// controller's stall watchdog must catch it.
	MonitorDropout Kind = "monitor-dropout"
	// DUEBurst makes the monitored line fail hard for the window: every
	// probe raises an uncorrectable event, driving the paper's
	// emergency interrupt path.
	DUEBurst Kind = "due-burst"
	// PDNTransient injects an extra rail droop (a regulator transient)
	// for the window, on top of the model's load-driven droop.
	PDNTransient Kind = "pdn-transient"
	// WorkerPanic panics the fleet worker simulating the target chip at
	// the start tick; the fleet must convert it to a per-chip error.
	WorkerPanic Kind = "worker-panic"
	// StoreError fails journal operations whose index falls in the
	// window; the store's bounded retry must ride it out (or surface a
	// clean error that flips the daemon into degraded mode).
	StoreError Kind = "store-error"
	// StoreSlow delays journal operations in the window by DelayMs.
	StoreSlow Kind = "store-slow"
	// NetPartition fails matched RPC attempts outright with a
	// connection-refused-style dial error (the link is down). With
	// Target "accept" it instead rides the server's listener and
	// resets matched incoming connections — a coordinator-restart /
	// refusal window as seen by clients.
	NetPartition Kind = "net-partition"
	// NetBlackhole holds matched RPC attempts for DelayMs and then
	// fails them with a timeout error — packets silently dropped, the
	// failure mode only a bounded client timeout can catch.
	NetBlackhole Kind = "net-blackhole"
	// NetSlow delays matched RPC attempts by DelayMs, then forwards
	// them — a congested or lossy link that still works.
	NetSlow Kind = "net-slow"
	// NetResetStream forwards the request but errors the response body
	// with a connection reset after Line complete NDJSON lines — a
	// mid-exec-stream cut.
	NetResetStream Kind = "net-reset-stream"
	// NetTruncateStream ends the response body with a clean EOF after
	// Line complete lines — a torn tail the reader cannot distinguish
	// from a finished stream except by the missing "done" event.
	NetTruncateStream Kind = "net-truncate-stream"
	// NetDupEvents delivers every NDJSON response line twice — a
	// replayed stream tail that idempotent, sequence-numbered event
	// handling must dedupe instead of double-applying.
	NetDupEvents Kind = "net-dup-events"
)

// simKinds are the fault kinds delivered through a chip's observer.
func (k Kind) sim() bool {
	switch k {
	case MonitorStuckZero, MonitorDropout, DUEBurst, PDNTransient, WorkerPanic:
		return true
	}
	return false
}

// store reports whether the kind intercepts journal operations.
func (k Kind) store() bool { return k == StoreError || k == StoreSlow }

// net reports whether the kind intercepts cluster RPCs.
func (k Kind) net() bool {
	switch k {
	case NetPartition, NetBlackhole, NetSlow, NetResetStream, NetTruncateStream, NetDupEvents:
		return true
	}
	return false
}

// stream reports whether the kind tears the streamed response body
// (rather than the request attempt itself).
func (k Kind) stream() bool {
	return k == NetResetStream || k == NetTruncateStream || k == NetDupEvents
}

// valid reports whether the kind is known.
func (k Kind) valid() bool { return k.sim() || k.store() || k.net() }

// Fault is one planned fault. Interpretation of Start/Duration depends
// on the plane: simulated-hardware faults count control ticks (absolute
// tick numbering, matching engine.View.Tick), store faults count
// journal operations (every append and fsync increments the index),
// and network faults count RPC attempts per endpoint (every request to
// a Target increments that target's index; retries draw fresh indices,
// so a window of Duration expires after Duration failing attempts).
type Fault struct {
	Kind Kind `json:"kind"`
	// Domain targets a voltage domain (hardware-plane faults only).
	Domain int `json:"domain,omitempty"`
	// Chip restricts the fault to the chip with this seed; 0 targets
	// every chip in the fleet.
	Chip uint64 `json:"chip,omitempty"`
	// Start is the first tick (hardware plane), journal-operation index
	// (store plane), or RPC-attempt index (network plane) at which the
	// fault is active.
	Start int `json:"start"`
	// Duration is how many ticks/operations/attempts the fault lasts; 0
	// means permanent (and for WorkerPanic, which is instantaneous,
	// ignored).
	Duration int `json:"duration,omitempty"`
	// DroopV is the injected droop in volts (PDNTransient only).
	DroopV float64 `json:"droop_v,omitempty"`
	// DelayMs is the injected latency in milliseconds (StoreSlow,
	// NetSlow, NetBlackhole).
	DelayMs int `json:"delay_ms,omitempty"`
	// Target restricts a network fault to RPCs whose URL path ends in
	// this segment ("exec", "register", "heartbeat", "members"); ""
	// matches every endpoint. The special target "accept" puts a
	// net-partition on the server's listener instead of the client.
	Target string `json:"target,omitempty"`
	// Line is the number of complete NDJSON lines delivered before a
	// stream fault cuts the body (NetResetStream, NetTruncateStream);
	// 0 cuts before the first line.
	Line int `json:"line,omitempty"`
}

// String renders the fault for event logs.
func (f Fault) String() string {
	s := string(f.Kind)
	if f.Kind.sim() && f.Kind != WorkerPanic {
		s += fmt.Sprintf(" domain %d", f.Domain)
	}
	if f.Kind == PDNTransient {
		s += fmt.Sprintf(" (%+.0f mV)", -1000*f.DroopV)
	}
	if f.Kind.net() {
		if f.Target != "" {
			s += " " + f.Target
		}
		if f.DelayMs > 0 {
			s += fmt.Sprintf(" (%d ms)", f.DelayMs)
		}
		if f.Kind == NetResetStream || f.Kind == NetTruncateStream {
			s += fmt.Sprintf(" after line %d", f.Line)
		}
	}
	return s
}

// Plan is a replayable fault scenario: a seed for all downstream
// randomness (retry jitter) and the fault list. Plain data — marshal it,
// store it, hand it to a daemon flag — and the outcome reproduces.
type Plan struct {
	Seed   uint64  `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault for a known kind and sane window.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if !f.Kind.valid() {
			return fmt.Errorf("faultinject: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Start < 0 || f.Duration < 0 {
			return fmt.Errorf("faultinject: fault %d (%s): negative start or duration", i, f.Kind)
		}
		if f.Domain < 0 {
			return fmt.Errorf("faultinject: fault %d (%s): negative domain", i, f.Kind)
		}
		if f.Kind == PDNTransient && f.DroopV == 0 {
			return fmt.Errorf("faultinject: fault %d: pdn-transient with zero droop", i)
		}
		if f.Kind == StoreSlow && f.DelayMs <= 0 {
			return fmt.Errorf("faultinject: fault %d: store-slow with non-positive delay", i)
		}
		if (f.Kind == NetSlow || f.Kind == NetBlackhole) && f.DelayMs <= 0 {
			return fmt.Errorf("faultinject: fault %d: %s with non-positive delay", i, f.Kind)
		}
		if f.Line < 0 {
			return fmt.Errorf("faultinject: fault %d (%s): negative line", i, f.Kind)
		}
		if f.Target != "" && !f.Kind.net() {
			return fmt.Errorf("faultinject: fault %d (%s): target is a network-plane field", i, f.Kind)
		}
		if f.Target == "accept" && f.Kind != NetPartition {
			return fmt.Errorf("faultinject: fault %d: target \"accept\" only supports net-partition", i)
		}
	}
	return nil
}

// HasStoreFaults reports whether any fault intercepts the journal.
func (p Plan) HasStoreFaults() bool {
	for _, f := range p.Faults {
		if f.Kind.store() {
			return true
		}
	}
	return false
}

// HasNetFaults reports whether any fault intercepts cluster RPCs.
func (p Plan) HasNetFaults() bool {
	for _, f := range p.Faults {
		if f.Kind.net() {
			return true
		}
	}
	return false
}

// LoadPlan reads and validates a JSON plan file.
func LoadPlan(path string) (Plan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faultinject: %w", err)
	}
	return ParsePlan(raw)
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(raw []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return Plan{}, fmt.Errorf("faultinject: bad plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Event records one injector action, for reports and determinism tests.
type Event struct {
	// Chip is the chip seed the event applied to (0 for store events).
	Chip uint64 `json:"chip,omitempty"`
	// Tick is the control tick (hardware plane), journal operation
	// index (store plane), or per-endpoint RPC attempt index (network
	// plane) of the event.
	Tick int `json:"tick"`
	// Phase is "apply", "clear", or "skip" (target had no active
	// monitor — e.g. the domain already failed safe).
	Phase string `json:"phase"`
	// Fault describes what was injected.
	Fault Fault `json:"fault"`
}

// Injector owns a plan and produces the hooks that deliver it: one
// engine.Observer per chip for the hardware plane, one StoreHook for
// the journal plane. Safe for concurrent use by fleet workers.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	events []Event

	storeOps atomic.Int64
}

// New validates the plan and builds an injector for it.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Seed returns the plan seed — the root for all randomness downstream
// of a fault (e.g. store retry jitter).
func (in *Injector) Seed() uint64 { return in.plan.Seed }

func (in *Injector) record(ev Event) {
	in.mu.Lock()
	in.events = append(in.events, ev)
	in.mu.Unlock()
}

// Events returns a copy of the event log, sorted by (chip, tick, fault
// string, phase) so reports are deterministic even when fleet workers
// recorded concurrently.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	out := append([]Event(nil), in.events...)
	in.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		as, bs := a.Fault.String(), b.Fault.String()
		if as != bs {
			return as < bs
		}
		return a.Phase < b.Phase
	})
	return out
}

// simulator is the surface the hardware-plane observer needs;
// *eccspec.Simulator implements it. Declared here so the injector does
// not depend on the root package.
type simulator interface {
	Chip() *chip.Chip
	Control() *control.System
}

// Observer returns the hardware-plane observer for the chip with the
// given seed: at each planned fault's start tick it applies the fault,
// and at start+duration it clears it. Chips a plan does not target get
// an observer that never fires; callers may attach it unconditionally.
func (in *Injector) Observer(chipSeed uint64) engine.Observer {
	var faults []Fault
	for _, f := range in.plan.Faults {
		if f.Kind.sim() && (f.Chip == 0 || f.Chip == chipSeed) {
			faults = append(faults, f)
		}
	}
	return &simObserver{in: in, chip: chipSeed, faults: faults}
}

type simObserver struct {
	in     *Injector
	chip   uint64
	faults []Fault
}

func (o *simObserver) OnStart(engine.View) error { return nil }
func (o *simObserver) OnStop(engine.View, error) {}

func (o *simObserver) OnTick(v engine.View) error {
	for _, f := range o.faults {
		if v.Tick == f.Start {
			o.deliver(v, f, true)
		} else if f.Duration > 0 && v.Tick == f.Start+f.Duration {
			o.deliver(v, f, false)
		}
	}
	return nil
}

// deliver applies (or clears) one fault on the simulator under test.
func (o *simObserver) deliver(v engine.View, f Fault, apply bool) {
	if f.Kind == WorkerPanic {
		if apply {
			o.in.record(Event{Chip: o.chip, Tick: v.Tick, Phase: "apply", Fault: f})
			panic(fmt.Sprintf("faultinject: planned worker panic at tick %d (chip %d)", v.Tick, o.chip))
		}
		return
	}
	sim, ok := v.Sim.(simulator)
	if !ok {
		o.in.record(Event{Chip: o.chip, Tick: v.Tick, Phase: "skip", Fault: f})
		return
	}
	c := sim.Chip()
	if f.Domain >= len(c.Domains) {
		o.in.record(Event{Chip: o.chip, Tick: v.Tick, Phase: "skip", Fault: f})
		return
	}
	phase := "apply"
	if !apply {
		phase = "clear"
	}
	switch f.Kind {
	case PDNTransient:
		rail := c.Domains[f.Domain].Rail
		if apply {
			rail.SetDisturbance(f.DroopV)
		} else {
			rail.SetDisturbance(0)
		}
	default: // monitor faults
		mon, ok := sim.Control().ActiveMonitor(f.Domain).(*monitor.Monitor)
		if !ok {
			// No active hardware monitor: never calibrated, firmware
			// prober, or the domain already failed safe.
			o.in.record(Event{Chip: o.chip, Tick: v.Tick, Phase: "skip", Fault: f})
			return
		}
		mode := monitor.FaultNone
		if apply {
			switch f.Kind {
			case MonitorStuckZero:
				mode = monitor.FaultStuckZero
			case MonitorDropout:
				mode = monitor.FaultDropout
			case DUEBurst:
				mode = monitor.FaultDUE
			}
		}
		mon.SetFault(mode)
	}
	// An injected fault (or its clearance) is a control-loop event: an
	// adaptive-fidelity chip must observe its consequences at full
	// per-line fidelity, not through aggregate rates. PDN transients
	// already drop via the rail-change hook; monitor faults need this
	// explicit drop.
	c.DropFastForward()
	o.in.record(Event{Chip: o.chip, Tick: v.Tick, Phase: phase, Fault: f})
}

// StoreHook returns a store.Options.WriteHook delivering the plan's
// journal faults. Every call advances a shared operation index; a fault
// is active while the index lies in [Start, Start+Duration) (Duration 0
// = permanent). Note that retried operations draw fresh indices, so an
// error window expires after Duration failing operations — exactly what
// a bounded-retry loop needs to prove it rides out a burst.
func (in *Injector) StoreHook() func(op string) error {
	var faults []Fault
	for _, f := range in.plan.Faults {
		if f.Kind.store() {
			faults = append(faults, f)
		}
	}
	if len(faults) == 0 {
		return nil
	}
	return func(op string) error {
		n := int(in.storeOps.Add(1) - 1)
		for _, f := range faults {
			if n < f.Start || (f.Duration > 0 && n >= f.Start+f.Duration) {
				continue
			}
			in.record(Event{Tick: n, Phase: "apply", Fault: f})
			switch f.Kind {
			case StoreSlow:
				time.Sleep(time.Duration(f.DelayMs) * time.Millisecond)
			case StoreError:
				return fmt.Errorf("faultinject: injected %s error at journal op %d", op, n)
			}
		}
		return nil
	}
}
