package faultinject_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"eccspec/internal/engine"
	"eccspec/internal/faultinject"
	"eccspec/internal/fleet"
)

func TestChaosPlanValidation(t *testing.T) {
	bad := []faultinject.Plan{
		{Faults: []faultinject.Fault{{Kind: "meteor-strike", Start: 1}}},
		{Faults: []faultinject.Fault{{Kind: faultinject.DUEBurst, Start: -1}}},
		{Faults: []faultinject.Fault{{Kind: faultinject.DUEBurst, Start: 1, Duration: -2}}},
		{Faults: []faultinject.Fault{{Kind: faultinject.MonitorDropout, Domain: -1}}},
		{Faults: []faultinject.Fault{{Kind: faultinject.PDNTransient, Start: 1, Duration: 1}}},
		{Faults: []faultinject.Fault{{Kind: faultinject.StoreSlow, Start: 1, Duration: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
		if _, err := faultinject.New(p); err == nil {
			t.Errorf("New accepted invalid plan %d", i)
		}
	}

	// A valid plan must survive a JSON round trip through ParsePlan.
	want := faultinject.Plan{Seed: 9, Faults: []faultinject.Fault{
		{Kind: faultinject.PDNTransient, Domain: 2, Start: 100, Duration: 10, DroopV: 0.03},
		{Kind: faultinject.StoreError, Start: 4, Duration: 2},
	}}
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faultinject.ParsePlan(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", got, want)
	}

	// Every catalog scenario must carry a valid plan.
	for _, sc := range faultinject.Scenarios() {
		if err := sc.Plan.Validate(); err != nil {
			t.Errorf("scenario %s: %v", sc.Name, err)
		}
		if found, ok := faultinject.ScenarioByName(sc.Name); !ok || found.Name != sc.Name {
			t.Errorf("ScenarioByName(%q) lookup failed", sc.Name)
		}
	}
}

// runScenario executes a scenario's simulation plane on a single-worker
// fleet and renders the injector's event log and the chip results into a
// canonical string — the unit of comparison for determinism tests.
func runScenario(t *testing.T, sc faultinject.Scenario) string {
	t.Helper()
	in, err := faultinject.New(sc.Plan)
	if err != nil {
		t.Fatal(err)
	}
	eng := fleet.New(fleet.Config{Workers: 1})
	results, err := eng.Run(context.Background(), fleet.Job{
		Seeds:    sc.Seeds,
		Workload: sc.Workload,
		Seconds:  sc.Seconds,
		Observers: func(seed uint64) []engine.Observer {
			return []engine.Observer{in.Observer(seed)}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, ev := range in.Events() {
		fmt.Fprintf(&b, "event chip=%d tick=%d %s %s\n", ev.Chip, ev.Tick, ev.Phase, ev.Fault)
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "chip %d: error: %v\n", r.Seed, r.Err)
			continue
		}
		fmt.Fprintf(&b, "chip %d: ticks=%d emergencies=%d failsafe=%v vdd=[", r.Seed, r.Ticks, r.Emergencies, r.FailSafe)
		for i, v := range r.DomainVdd {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6f", v)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// TestChaosPlanReplaysByteIdentical is the tentpole determinism
// contract: the same plan and seed produce byte-identical outcomes —
// the event log and every chip result match across independent runs.
func TestChaosPlanReplaysByteIdentical(t *testing.T) {
	sc, ok := faultinject.ScenarioByName("dead-monitor")
	if !ok {
		t.Fatal("dead-monitor scenario missing")
	}
	a := runScenario(t, sc)
	b := runScenario(t, sc)
	if a != b {
		t.Fatalf("same plan, same seed, different outcome:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "failsafe=[0 2]") {
		t.Fatalf("dead-monitor should fail domains 0 and 2 safe:\n%s", a)
	}
	if !strings.Contains(a, "apply monitor-stuck-zero domain 0") ||
		!strings.Contains(a, "apply monitor-dropout domain 2") {
		t.Fatalf("event log missing injections:\n%s", a)
	}
}

// TestChaosDUEBurstRecovers drives the burst-due scenario: the hard
// failure window must raise emergencies, and once it passes the domain
// must still be speculating (no fail-safe, setpoints below nominal).
func TestChaosDUEBurstRecovers(t *testing.T) {
	sc, ok := faultinject.ScenarioByName("burst-due")
	if !ok {
		t.Fatal("burst-due scenario missing")
	}
	in, err := faultinject.New(sc.Plan)
	if err != nil {
		t.Fatal(err)
	}
	eng := fleet.New(fleet.Config{Workers: 1})
	results, err := eng.Run(context.Background(), fleet.Job{
		Seeds: sc.Seeds, Workload: sc.Workload, Seconds: sc.Seconds,
		Observers: func(seed uint64) []engine.Observer {
			return []engine.Observer{in.Observer(seed)}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatalf("chip failed: %v", r.Err)
	}
	if r.Emergencies == 0 {
		t.Fatal("a DUE burst must drive the emergency path")
	}
	if len(r.FailSafe) != 0 {
		t.Fatalf("domain failed safe %v — a passing burst should not be terminal", r.FailSafe)
	}
	for d, v := range r.DomainVdd {
		if v >= r.NominalV {
			t.Fatalf("domain %d stopped speculating after the burst: %.3f V", d, v)
		}
	}
	// The window must have both edges in the log.
	var applied, cleared bool
	for _, ev := range in.Events() {
		if ev.Fault.Kind == faultinject.DUEBurst {
			applied = applied || ev.Phase == "apply"
			cleared = cleared || ev.Phase == "clear"
		}
	}
	if !applied || !cleared {
		t.Fatalf("burst window not fully delivered (applied=%v cleared=%v)", applied, cleared)
	}
}

// TestChaosWorkerPanicIsolated plans a worker panic for one chip of
// three: the fleet must convert it to that chip's error and finish the
// other two untouched.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	in, err := faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Kind: faultinject.WorkerPanic, Chip: 82, Start: 30},
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng := fleet.New(fleet.Config{Workers: 3})
	results, err := eng.Run(context.Background(), fleet.Job{
		Seeds: []uint64{81, 82, 83}, Seconds: 0.1,
		Observers: func(seed uint64) []engine.Observer {
			return []engine.Observer{in.Observer(seed)}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Seed == 82 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "worker panic") {
				t.Fatalf("chip 82: err = %v, want a recovered worker panic", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("healthy chip %d failed: %v", r.Seed, r.Err)
		}
		if r.Ticks == 0 || len(r.DomainVdd) == 0 {
			t.Fatalf("healthy chip %d has no results: %+v", r.Seed, r)
		}
	}
}

// TestChaosEmptyPlanAddsNothing pins the disabled-injector contract: an
// empty plan yields no store hook and observers that never record an
// event, so instrumented runs stay byte-identical to plain ones.
func TestChaosEmptyPlanAddsNothing(t *testing.T) {
	in, err := faultinject.New(faultinject.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if hook := in.StoreHook(); hook != nil {
		t.Fatal("empty plan produced a store hook")
	}
	eng := fleet.New(fleet.Config{Workers: 1})
	run := func(obs func(uint64) []engine.Observer) fleet.ChipResult {
		results, err := eng.Run(context.Background(), fleet.Job{
			Seeds: []uint64{7}, Seconds: 0.1, Observers: obs,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	plain := run(nil)
	injected := run(func(seed uint64) []engine.Observer {
		return []engine.Observer{in.Observer(seed)}
	})
	a := fmt.Sprintf("%d %d %v %v %.9f %.9f", plain.Ticks, plain.Emergencies, plain.FailSafe, plain.DomainVdd, plain.AvgReduction, plain.AvgPowerW)
	b := fmt.Sprintf("%d %d %v %v %.9f %.9f", injected.Ticks, injected.Emergencies, injected.FailSafe, injected.DomainVdd, injected.AvgReduction, injected.AvgPowerW)
	if a != b {
		t.Fatalf("empty injector changed the run:\n%s\n%s", a, b)
	}
	if evs := in.Events(); len(evs) != 0 {
		t.Fatalf("empty plan recorded events: %+v", evs)
	}
}
