package faultinject

import "time"

// Scenario is a named, ready-to-run chaos recipe: a plan plus the run
// parameters it was tuned for. The catalog below backs `eccspec chaos`
// and the chaos tests; CLI flags can override the run parameters but
// the plan itself is fixed so results stay comparable.
type Scenario struct {
	Name        string
	Description string
	// Workload and Seconds configure the simulated run.
	Workload string
	Seconds  float64
	// Seeds are the chip specimens to run (the CLI's -seed flag
	// replaces them).
	Seeds []uint64
	Plan  Plan
	// Workers sizes the in-process loopback cluster a network-plane
	// scenario runs through (0 selects 2 when the plan carries net
	// faults; irrelevant otherwise).
	Workers int
	// QuarantineAfter and ProbeDelay tune the coordinator's dispatch
	// circuit breaker for cluster scenarios (0 keeps the defaults).
	QuarantineAfter int
	ProbeDelay      time.Duration
}

// Scenarios returns the built-in chaos catalog, in presentation order.
//
// Tick numbers assume the default low-voltage operating point (1 ms
// control ticks): runs start converged enough for faults in the
// 100-400 tick range to land mid-speculation.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "burst-due",
			Description: "the monitored line fails hard for 5 ticks " +
				"(every probe raises an uncorrectable) — the emergency " +
				"interrupt path must lift the rail and the domain must " +
				"recover once the burst passes",
			Workload: "stress-test",
			Seconds:  0.6,
			Seeds:    []uint64{42},
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: DUEBurst, Domain: 1, Start: 250, Duration: 5},
				},
			},
		},
		{
			Name: "dead-monitor",
			Description: "domain 0's monitor datapath sticks at zero and " +
				"domain 2's sensor drops out — the controller must fail " +
				"both domains safe (nominal Vdd) while domains 1 and 3 " +
				"keep speculating",
			Workload: "stress-test",
			Seconds:  0.6,
			Seeds:    []uint64{42},
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: MonitorStuckZero, Domain: 0, Start: 200},
					{Kind: MonitorDropout, Domain: 2, Start: 260},
				},
			},
		},
		{
			Name: "virus-transient",
			Description: "a resonance-seeking load (stress-kernel swings) " +
				"composed with a 35 mV regulator transient on domains 0 " +
				"and 1 for 10 ticks — emergencies may fire; every core " +
				"must survive",
			Workload: "stress-kernel",
			Seconds:  0.6,
			Seeds:    []uint64{42},
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: PDNTransient, Domain: 0, Start: 300, Duration: 10, DroopV: 0.035},
					{Kind: PDNTransient, Domain: 1, Start: 305, Duration: 10, DroopV: 0.035},
				},
			},
		},
		{
			Name: "net-partition",
			Description: "the coordinator's first two exec dispatches " +
				"cannot connect — bounded retries with seeded backoff " +
				"must ride the window out and merged results must stay " +
				"byte-identical to a single-node run",
			Workload: "stress-test",
			Seconds:  0.05,
			Seeds:    []uint64{1, 2, 3, 4, 5, 6},
			Workers:  2,
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: NetPartition, Target: "exec", Start: 0, Duration: 2},
				},
			},
		},
		{
			Name: "net-slow-link",
			Description: "the first three exec dispatches cross a " +
				"congested link (25 ms each way) — nothing times out, " +
				"nothing retries, results match single-node bytes",
			Workload: "stress-test",
			Seconds:  0.05,
			Seeds:    []uint64{1, 2, 3, 4, 5, 6},
			Workers:  2,
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: NetSlow, Target: "exec", Start: 0, Duration: 3, DelayMs: 25},
				},
			},
		},
		{
			Name: "net-reset-stream",
			Description: "the first exec stream is reset after 2 event " +
				"lines — the coordinator must re-dispatch the batch from " +
				"its freshest checkpoints and still merge byte-identical " +
				"results",
			Workload: "stress-test",
			Seconds:  0.05,
			Seeds:    []uint64{1, 2, 3, 4, 5, 6},
			Workers:  2,
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: NetResetStream, Target: "exec", Start: 0, Duration: 1, Line: 2},
				},
			},
		},
		{
			Name: "net-torn-stream",
			Description: "the first exec stream truncates cleanly after " +
				"one line (no done marker) and the next is duplicated " +
				"line-for-line — retry must finish the truncated batch and " +
				"sequence-number dedupe must drop every replayed event",
			Workload: "stress-test",
			Seconds:  0.05,
			Seeds:    []uint64{1, 2, 3, 4, 5, 6},
			Workers:  2,
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: NetTruncateStream, Target: "exec", Start: 0, Duration: 1, Line: 1},
					{Kind: NetDupEvents, Target: "exec", Start: 1, Duration: 1},
				},
			},
		},
		{
			Name: "net-quarantine",
			Description: "a single worker's first dispatch fails with a " +
				"threshold-1 breaker — the worker quarantines, the " +
				"half-open probe revives it after 100 ms, and the fleet " +
				"still matches single-node bytes",
			Workload:        "stress-test",
			Seconds:         0.05,
			Seeds:           []uint64{1, 2, 3, 4, 5, 6},
			Workers:         1,
			QuarantineAfter: 1,
			ProbeDelay:      100 * time.Millisecond,
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: NetPartition, Target: "exec", Start: 0, Duration: 1},
				},
			},
		},
		{
			Name: "flaky-disk",
			Description: "journal appends hit a 3-operation error burst " +
				"and 2 ms stalls — the store's bounded retry must commit " +
				"every record and the journal must replay cleanly",
			Workload: "stress-test",
			Seconds:  0.3,
			Seeds:    []uint64{1, 2, 3},
			Plan: Plan{
				Seed: 7,
				Faults: []Fault{
					{Kind: StoreError, Start: 3, Duration: 3},
					{Kind: StoreSlow, Start: 8, Duration: 2, DelayMs: 2},
				},
			},
		},
	}
}

// ScenarioByName looks up a catalog entry.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
