package faultinject

// Scenario is a named, ready-to-run chaos recipe: a plan plus the run
// parameters it was tuned for. The catalog below backs `eccspec chaos`
// and the chaos tests; CLI flags can override the run parameters but
// the plan itself is fixed so results stay comparable.
type Scenario struct {
	Name        string
	Description string
	// Workload and Seconds configure the simulated run.
	Workload string
	Seconds  float64
	// Seeds are the chip specimens to run (the CLI's -seed flag
	// replaces them).
	Seeds []uint64
	Plan  Plan
}

// Scenarios returns the built-in chaos catalog, in presentation order.
//
// Tick numbers assume the default low-voltage operating point (1 ms
// control ticks): runs start converged enough for faults in the
// 100-400 tick range to land mid-speculation.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "burst-due",
			Description: "the monitored line fails hard for 5 ticks " +
				"(every probe raises an uncorrectable) — the emergency " +
				"interrupt path must lift the rail and the domain must " +
				"recover once the burst passes",
			Workload: "stress-test",
			Seconds:  0.6,
			Seeds:    []uint64{42},
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: DUEBurst, Domain: 1, Start: 250, Duration: 5},
				},
			},
		},
		{
			Name: "dead-monitor",
			Description: "domain 0's monitor datapath sticks at zero and " +
				"domain 2's sensor drops out — the controller must fail " +
				"both domains safe (nominal Vdd) while domains 1 and 3 " +
				"keep speculating",
			Workload: "stress-test",
			Seconds:  0.6,
			Seeds:    []uint64{42},
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: MonitorStuckZero, Domain: 0, Start: 200},
					{Kind: MonitorDropout, Domain: 2, Start: 260},
				},
			},
		},
		{
			Name: "virus-transient",
			Description: "a resonance-seeking load (stress-kernel swings) " +
				"composed with a 35 mV regulator transient on domains 0 " +
				"and 1 for 10 ticks — emergencies may fire; every core " +
				"must survive",
			Workload: "stress-kernel",
			Seconds:  0.6,
			Seeds:    []uint64{42},
			Plan: Plan{
				Seed: 42,
				Faults: []Fault{
					{Kind: PDNTransient, Domain: 0, Start: 300, Duration: 10, DroopV: 0.035},
					{Kind: PDNTransient, Domain: 1, Start: 305, Duration: 10, DroopV: 0.035},
				},
			},
		},
		{
			Name: "flaky-disk",
			Description: "journal appends hit a 3-operation error burst " +
				"and 2 ms stalls — the store's bounded retry must commit " +
				"every record and the journal must replay cleanly",
			Workload: "stress-test",
			Seconds:  0.3,
			Seeds:    []uint64{1, 2, 3},
			Plan: Plan{
				Seed: 7,
				Faults: []Fault{
					{Kind: StoreError, Start: 3, Duration: 3},
					{Kind: StoreSlow, Start: 8, Duration: 2, DelayMs: 2},
				},
			},
		},
	}
}

// ScenarioByName looks up a catalog entry.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
