package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// lineServer streams count NDJSON lines and returns the test server.
func lineServer(t *testing.T, count int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, _ := w.(http.Flusher)
		for i := 0; i < count; i++ {
			io.WriteString(w, `{"n":`+string(rune('0'+i))+"}\n")
			if fl != nil {
				fl.Flush()
			}
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func mustInjector(t *testing.T, p Plan) *Injector {
	t.Helper()
	in, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// An empty plan must hand back the base transport untouched: the
// injected build is byte-identical to an uninjected one.
func TestTransportEmptyPlanIdentity(t *testing.T) {
	in := mustInjector(t, Plan{})
	base := http.DefaultTransport
	if got := in.Transport(base); got != base {
		t.Fatalf("empty plan wrapped the transport: %T", got)
	}
	// A plan with only sim/store faults is also a no-op on the wire.
	in = mustInjector(t, Plan{Faults: []Fault{{Kind: DUEBurst, Start: 1}}})
	if got := in.Transport(base); got != base {
		t.Fatalf("sim-only plan wrapped the transport: %T", got)
	}
}

func TestTransportPartitionWindow(t *testing.T) {
	ts := lineServer(t, 1)
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetPartition, Target: "exec", Start: 0, Duration: 2},
	}})
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}

	// Attempts 0 and 1 are inside the window and must fail; attempt 2
	// is past it and must succeed. A different endpoint never matches.
	for i := 0; i < 2; i++ {
		if _, err := client.Get(ts.URL + "/v1/cluster/exec"); err == nil {
			t.Fatalf("attempt %d inside partition window succeeded", i)
		}
	}
	resp, err := client.Get(ts.URL + "/v1/cluster/exec")
	if err != nil {
		t.Fatalf("attempt 2 past the window: %v", err)
	}
	resp.Body.Close()
	resp, err = client.Get(ts.URL + "/v1/cluster/members")
	if err != nil {
		t.Fatalf("unmatched endpoint partitioned: %v", err)
	}
	resp.Body.Close()

	evs := in.Events()
	if len(evs) != 2 || evs[0].Tick != 0 || evs[1].Tick != 1 {
		t.Fatalf("event log = %+v, want applies at attempts 0 and 1", evs)
	}
}

func TestTransportBlackholeTimesOut(t *testing.T) {
	ts := lineServer(t, 1)
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetBlackhole, Start: 0, Duration: 1, DelayMs: 10},
	}})
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}
	_, err := client.Get(ts.URL + "/v1/cluster/exec")
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackhole error = %v, want a net.Error timeout", err)
	}
}

func TestTransportSlowForwards(t *testing.T) {
	ts := lineServer(t, 1)
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetSlow, Start: 0, DelayMs: 30},
	}})
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}
	t0 := time.Now()
	resp, err := client.Get(ts.URL + "/v1/cluster/exec")
	if err != nil {
		t.Fatalf("slow link dropped the request: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms of injected latency", d)
	}
}

func TestStreamResetAfterLine(t *testing.T) {
	ts := lineServer(t, 5)
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetResetStream, Start: 0, Duration: 1, Line: 2},
	}})
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}
	resp, err := client.Get(ts.URL + "/v1/cluster/exec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("stream was not reset; read %q", raw)
	}
	if got := strings.Count(string(raw), "\n"); got != 2 {
		t.Fatalf("forwarded %d lines before reset, want 2 (%q)", got, raw)
	}
}

func TestStreamTruncateCleanEOF(t *testing.T) {
	ts := lineServer(t, 5)
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetTruncateStream, Start: 0, Duration: 1, Line: 3},
	}})
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}
	resp, err := client.Get(ts.URL + "/v1/cluster/exec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("truncated stream must end in a clean EOF, got %v", err)
	}
	if got := strings.Count(string(raw), "\n"); got != 3 {
		t.Fatalf("forwarded %d lines, want 3 (%q)", got, raw)
	}
}

func TestStreamDupDoublesEveryLine(t *testing.T) {
	ts := lineServer(t, 3)
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetDupEvents, Start: 0, Duration: 1},
	}})
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}
	resp, err := client.Get(ts.URL + "/v1/cluster/exec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6: %q", len(lines), raw)
	}
	for i := 0; i < 6; i += 2 {
		if lines[i] != lines[i+1] {
			t.Fatalf("line %d not duplicated: %q vs %q", i/2, lines[i], lines[i+1])
		}
	}
}

// The same plan replayed against the same traffic produces the same
// event log — the network plane's replayability contract.
func TestNetEventLogDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Faults: []Fault{
		{Kind: NetPartition, Target: "exec", Start: 1, Duration: 2},
		{Kind: NetSlow, Target: "heartbeat", Start: 0, Duration: 3, DelayMs: 1},
	}}
	run := func() []Event {
		ts := lineServer(t, 1)
		in := mustInjector(t, plan)
		client := &http.Client{Transport: in.Transport(http.DefaultTransport)}
		for i := 0; i < 4; i++ {
			if resp, err := client.Get(ts.URL + "/v1/cluster/exec"); err == nil {
				resp.Body.Close()
			}
			if resp, err := client.Get(ts.URL + "/v1/cluster/heartbeat"); err == nil {
				resp.Body.Close()
			}
		}
		return in.Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event logs diverged:\n%+v\n%+v", a, b)
	}
	if len(a) != 5 { // exec attempts 1,2 + heartbeat attempts 0,1,2
		t.Fatalf("got %d events, want 5: %+v", len(a), a)
	}
}

func TestListenerAcceptWindow(t *testing.T) {
	in := mustInjector(t, Plan{Faults: []Fault{
		{Kind: NetPartition, Target: "accept", Start: 0, Duration: 1},
	}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ts.Listener = in.Listener(ln)
	ts.Start()
	defer ts.Close()

	// The first accepted connection is reset; a client that retries
	// (fresh connection) gets through because the window has passed.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	_, err = client.Get(ts.URL)
	if err == nil {
		t.Fatal("first connection survived the accept-window partition")
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("second connection: %v", err)
	}
	resp.Body.Close()
	evs := in.Events()
	if len(evs) != 1 || evs[0].Tick != 0 {
		t.Fatalf("event log = %+v, want one apply at accept 0", evs)
	}
}

// A listener with no accept faults is returned unchanged.
func TestListenerIdentity(t *testing.T) {
	in := mustInjector(t, Plan{Faults: []Fault{{Kind: NetPartition, Target: "exec", Start: 0}}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := in.Listener(ln); got != ln {
		t.Fatalf("fault-free listener was wrapped: %T", got)
	}
}
