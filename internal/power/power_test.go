package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDynamicScalesWithVSquared(t *testing.T) {
	p := DefaultCoreParams()
	p1 := p.Dynamic(0.800, 340e6, 1)
	p2 := p.Dynamic(0.400, 340e6, 1)
	if math.Abs(p1/p2-4) > 1e-9 {
		t.Fatalf("V^2 scaling broken: ratio %v", p1/p2)
	}
}

func TestDynamicLinearInActivityAndFrequency(t *testing.T) {
	p := DefaultCoreParams()
	if r := p.Dynamic(0.8, 340e6, 1.0) / p.Dynamic(0.8, 340e6, 0.5); math.Abs(r-2) > 1e-9 {
		t.Fatalf("activity scaling ratio %v", r)
	}
	if r := p.Dynamic(0.8, 680e6, 0.5) / p.Dynamic(0.8, 340e6, 0.5); math.Abs(r-2) > 1e-9 {
		t.Fatalf("frequency scaling ratio %v", r)
	}
}

func TestPaperPowerShape(t *testing.T) {
	// An 18% Vdd reduction must cut dynamic power by roughly a third
	// (0.82^2 = 0.6724) — the headline Fig. 10 -> Fig. 11 relationship.
	p := DefaultCoreParams()
	base := p.Dynamic(0.800, 340e6, 0.6)
	reduced := p.Dynamic(0.800*0.82, 340e6, 0.6)
	saving := 1 - reduced/base
	if math.Abs(saving-0.3276) > 1e-6 {
		t.Fatalf("dynamic saving %v, want 0.3276", saving)
	}
}

func TestLeakageGrowsWithVoltageAndTemp(t *testing.T) {
	p := DefaultCoreParams()
	if p.Leakage(0.9, 40) <= p.Leakage(0.7, 40) {
		t.Fatal("leakage not increasing in voltage")
	}
	if p.Leakage(0.8, 80) <= p.Leakage(0.8, 40) {
		t.Fatal("leakage not increasing in temperature")
	}
}

func TestLeakageReferencePoint(t *testing.T) {
	p := DefaultCoreParams()
	want := p.Vref * p.LeakI0
	if got := p.Leakage(p.Vref, 40); math.Abs(got-want) > 1e-12 {
		t.Fatalf("leakage at reference %v, want %v", got, want)
	}
}

func TestCorePowerPlausibleAtLowPoint(t *testing.T) {
	// One core at 800 mV / 340 MHz, moderate activity: single-digit
	// watts, leakage a minority share.
	p := DefaultCoreParams()
	dyn := p.Dynamic(0.800, 340e6, 0.6)
	leak := p.Leakage(0.800, 55)
	total := dyn + leak
	if total < 1 || total > 12 {
		t.Fatalf("core power %v W implausible", total)
	}
	if leak > dyn {
		t.Fatalf("leakage %v exceeds dynamic %v at the low point", leak, dyn)
	}
}

func TestTotalIsSum(t *testing.T) {
	p := DefaultCoreParams()
	want := p.Dynamic(0.75, 340e6, 0.5) + p.Leakage(0.75, 50)
	if got := p.Total(0.75, 340e6, 0.5, 50); math.Abs(got-want) > 1e-12 {
		t.Fatalf("total %v want %v", got, want)
	}
}

func TestCurrent(t *testing.T) {
	p := DefaultCoreParams()
	watts := p.Total(0.8, 340e6, 0.7, 45)
	if got := p.Current(0.8, 340e6, 0.7, 45); math.Abs(got-watts/0.8) > 1e-12 {
		t.Fatalf("current %v", got)
	}
	if p.Current(0, 340e6, 0.7, 45) != 0 {
		t.Fatal("current at V=0 should be 0")
	}
}

func TestUncoreBiggerThanCore(t *testing.T) {
	core, uncore := DefaultCoreParams(), UncoreParams()
	if uncore.Dynamic(0.8, 340e6, 0.5) <= core.Dynamic(0.8, 340e6, 0.5) {
		t.Fatal("uncore should draw more than a single core")
	}
}

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.Accumulate(10, 2)
	m.Accumulate(20, 1)
	if m.Energy() != 40 {
		t.Fatalf("energy %v", m.Energy())
	}
	if m.Seconds() != 3 {
		t.Fatalf("seconds %v", m.Seconds())
	}
	if math.Abs(m.AveragePower()-40.0/3) > 1e-12 {
		t.Fatalf("average %v", m.AveragePower())
	}
	m.Reset()
	if m.Energy() != 0 || m.Seconds() != 0 || m.AveragePower() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestQuickPowerNonNegative(t *testing.T) {
	p := DefaultCoreParams()
	f := func(v, act float64) bool {
		v = math.Mod(math.Abs(v), 1.3)
		act = math.Mod(math.Abs(act), 1.0)
		total := p.Total(v, 340e6, act, 55)
		return total >= 0 && !math.IsNaN(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTotal(b *testing.B) {
	p := DefaultCoreParams()
	for i := 0; i < b.N; i++ {
		p.Total(0.75, 340e6, 0.6, 52)
	}
}

func TestHighVoltageCorePowerPlausible(t *testing.T) {
	// ~15 W per core at the nominal point, consistent with a 170 W TDP
	// across eight cores plus uncore.
	p := HighVoltageCoreParams()
	total := p.Total(1.100, 2.53e9, 0.9, 70)
	if total < 8 || total > 25 {
		t.Fatalf("high-point core power %v W implausible", total)
	}
	u := HighVoltageUncoreParams()
	if u.Total(1.1, 2.53e9, 0.4, 70) <= total {
		t.Fatal("uncore should out-draw one core at the high point")
	}
}

func TestInterpolateCoreParamsEndpoints(t *testing.T) {
	lo, hi := DefaultCoreParams(), HighVoltageCoreParams()
	if got := InterpolateCoreParams(lo, hi, 0); got != lo {
		t.Fatalf("t=0 not the low anchor: %+v", got)
	}
	got := InterpolateCoreParams(lo, hi, 1)
	if math.Abs(got.CEff-hi.CEff) > 1e-15 || math.Abs(got.LeakI0-hi.LeakI0) > 1e-12 {
		t.Fatalf("t=1 not the high anchor: %+v", got)
	}
	mid := InterpolateCoreParams(lo, hi, 0.5)
	if mid.CEff <= hi.CEff || mid.CEff >= lo.CEff {
		t.Fatalf("midpoint CEff %v outside the anchors", mid.CEff)
	}
	if mid.Vref != (lo.Vref+hi.Vref)/2 {
		t.Fatalf("midpoint Vref %v", mid.Vref)
	}
}
