// Package power models per-core and uncore power consumption and energy
// accounting.
//
// Dynamic power follows the standard alpha*C*V^2*f law; leakage grows
// exponentially with voltage and temperature. The V^2 dependence is what
// turns the paper's 18% average voltage reduction into a 33% average
// power reduction (Figs. 10 and 11): (0.82)^2 ~= 0.67 of baseline dynamic
// power, with leakage savings on top.
//
// The package also converts power to supply current, which is what the
// PDN model (internal/pdn) needs to compute droop.
package power

import "math"

// CoreParams characterizes one core's power behaviour.
type CoreParams struct {
	// CEff is the effective switched capacitance at full activity, in
	// farads.
	CEff float64
	// LeakI0 is the leakage current at the reference point (Vref, 40C),
	// in amperes.
	LeakI0 float64
	// Vref is the leakage reference voltage.
	Vref float64
	// LeakKV is the exponential voltage sensitivity of leakage (1/V).
	LeakKV float64
	// LeakKT is the exponential temperature sensitivity (1/K).
	LeakKT float64
}

// DefaultCoreParams returns constants representative of one Itanium-class
// core at the low-voltage operating point: ~2 W per core at full activity,
// 800 mV and 340 MHz, with leakage around 15% of the total.
func DefaultCoreParams() CoreParams {
	return CoreParams{
		CEff:   26e-9,
		LeakI0: 0.40,
		Vref:   0.800,
		LeakKV: 3.0,
		LeakKT: 0.02,
	}
}

// HighVoltageCoreParams returns constants for the nominal operating
// point (2.53 GHz / 1.1 V): ~15 W per core at full activity, in line
// with the Itanium 9560's 170 W TDP over eight cores plus uncore. The
// effective capacitance differs from the low-voltage constants because
// the high-frequency mode gates different units; what matters for the
// reproduction is that supply current (and therefore PDN droop) is
// plausible at each point.
func HighVoltageCoreParams() CoreParams {
	return CoreParams{
		CEff:   5.5e-9,
		LeakI0: 1.8,
		Vref:   1.100,
		LeakKV: 3.0,
		LeakKT: 0.02,
	}
}

// HighVoltageUncoreParams returns the uncore constants at the nominal
// point.
func HighVoltageUncoreParams() CoreParams {
	return CoreParams{
		CEff:   18e-9,
		LeakI0: 5.0,
		Vref:   1.100,
		LeakKV: 3.0,
		LeakKT: 0.02,
	}
}

// UncoreParams returns constants for the shared uncore (L3, memory
// controllers, interconnect), which draws a few watts and is not scaled
// by the core speculation system.
func UncoreParams() CoreParams {
	return CoreParams{
		CEff:   90e-9,
		LeakI0: 1.2,
		Vref:   0.800,
		LeakKV: 3.0,
		LeakKT: 0.02,
	}
}

// InterpolateCoreParams blends the low- and high-point core power
// constants for an intermediate operating frequency (t=0 at the low
// anchor, t=1 at the high anchor). Used by the frequency-scaling
// extension experiments.
func InterpolateCoreParams(lo, hi CoreParams, t float64) CoreParams {
	l := func(a, b float64) float64 { return a + (b-a)*t }
	return CoreParams{
		CEff:   l(lo.CEff, hi.CEff),
		LeakI0: l(lo.LeakI0, hi.LeakI0),
		Vref:   l(lo.Vref, hi.Vref),
		LeakKV: l(lo.LeakKV, hi.LeakKV),
		LeakKT: l(lo.LeakKT, hi.LeakKT),
	}
}

// Dynamic returns the dynamic power in watts at supply voltage v,
// frequency f and activity factor activity (0..1).
func (p CoreParams) Dynamic(v, f, activity float64) float64 {
	return activity * p.CEff * v * v * f
}

// Leakage returns the leakage power in watts at supply voltage v and
// temperature tempC.
func (p CoreParams) Leakage(v, tempC float64) float64 {
	i := p.LeakI0 * math.Exp(p.LeakKV*(v-p.Vref)) * math.Exp(p.LeakKT*(tempC-40))
	return v * i
}

// Total returns dynamic plus leakage power in watts.
func (p CoreParams) Total(v, f, activity, tempC float64) float64 {
	return p.Dynamic(v, f, activity) + p.Leakage(v, tempC)
}

// Current returns the supply current in amperes for the given operating
// conditions (total power divided by voltage).
func (p CoreParams) Current(v, f, activity, tempC float64) float64 {
	if v <= 0 {
		return 0
	}
	return p.Total(v, f, activity, tempC) / v
}

// Meter integrates energy over time.
type Meter struct {
	joules  float64
	seconds float64
}

// Accumulate adds dt seconds at watts of power.
func (m *Meter) Accumulate(watts, dt float64) {
	m.joules += watts * dt
	m.seconds += dt
}

// Energy returns the accumulated energy in joules.
func (m *Meter) Energy() float64 { return m.joules }

// Seconds returns the accumulated time.
func (m *Meter) Seconds() float64 { return m.seconds }

// AveragePower returns the mean power in watts over the accumulated
// interval (0 if nothing was accumulated).
func (m *Meter) AveragePower() float64 {
	if m.seconds == 0 {
		return 0
	}
	return m.joules / m.seconds
}

// Reset clears the meter.
func (m *Meter) Reset() { *m = Meter{} }

// State returns the meter's accumulators (checkpoint support).
func (m *Meter) State() (joules, seconds float64) { return m.joules, m.seconds }

// SetState overwrites the meter's accumulators (checkpoint restore).
func (m *Meter) SetState(joules, seconds float64) {
	m.joules, m.seconds = joules, seconds
}
